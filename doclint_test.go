package whitemirror

// A doc-comment lint for the packages ARCHITECTURE.md documents as the
// exported surface of the attack pipeline: the facade plus the four core
// internal packages. Every exported top-level identifier — types, funcs,
// methods, consts and vars — must carry a doc comment, and every package
// must have a package comment. This is the enforceable form of the godoc
// pass: an undocumented export fails CI by name instead of rotting.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"strings"
	"testing"
)

// doclintPackages is the checked surface (directories relative to the
// repository root).
var doclintPackages = []string{
	".",
	"internal/attack",
	"internal/tcpreasm",
	"internal/tlsrec",
	"internal/pcapio",
}

func TestExportedIdentifiersDocumented(t *testing.T) {
	for _, dir := range doclintPackages {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for name, pkg := range pkgs {
			if strings.HasSuffix(name, "_test") {
				continue
			}
			lintPackage(t, fset, dir, pkg)
		}
	}
}

// lintPackage walks one package's files.
func lintPackage(t *testing.T, fset *token.FileSet, dir string, pkg *ast.Package) {
	t.Helper()
	hasPkgDoc := false
	for _, f := range pkg.Files {
		if f.Doc != nil && len(strings.TrimSpace(f.Doc.Text())) > 0 {
			hasPkgDoc = true
		}
		for _, decl := range f.Decls {
			lintDecl(t, fset, decl)
		}
	}
	if !hasPkgDoc {
		t.Errorf("%s: package %s has no package doc comment", dir, pkg.Name)
	}
}

// lintDecl reports every undocumented exported declaration.
func lintDecl(t *testing.T, fset *token.FileSet, decl ast.Decl) {
	t.Helper()
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || !exportedRecv(d) {
			return
		}
		if d.Doc == nil {
			t.Errorf("%s: exported func %s has no doc comment",
				fset.Position(d.Pos()), funcName(d))
		}
	case *ast.GenDecl:
		// A documented const/var/type block covers its members the way
		// godoc renders them; individually documented members also pass.
		blockDoc := d.Doc != nil
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() && !blockDoc && s.Doc == nil && s.Comment == nil {
					t.Errorf("%s: exported type %s has no doc comment",
						fset.Position(s.Pos()), s.Name.Name)
				}
			case *ast.ValueSpec:
				for _, n := range s.Names {
					if n.IsExported() && !blockDoc && s.Doc == nil && s.Comment == nil {
						t.Errorf("%s: exported %s has no doc comment",
							fset.Position(s.Pos()), n.Name)
					}
				}
			}
		}
	}
}

// exportedRecv reports whether a method's receiver type is exported
// (methods on unexported types are not part of the surface).
func exportedRecv(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	name := recvTypeName(d.Recv.List[0].Type)
	return name == "" || ast.IsExported(name)
}

// recvTypeName unwraps a receiver type expression to its type name.
func recvTypeName(expr ast.Expr) string {
	for {
		switch e := expr.(type) {
		case *ast.StarExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.Ident:
			return e.Name
		default:
			return ""
		}
	}
}

// funcName renders Recv.Method or Func for the failure message.
func funcName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return d.Name.Name
	}
	if n := recvTypeName(d.Recv.List[0].Type); n != "" {
		return n + "." + d.Name.Name
	}
	return d.Name.Name
}
