package whitemirror

// The doc-comment lint is now the doccheck analyzer in
// internal/lint/doccheck, run by wmlint and CI's lint-invariants job.
// This test is the thin compatibility wrapper: it runs just doccheck
// over the documented surface so `go test .` keeps failing by name when
// an export loses its doc comment, even if wmlint is skipped.

import (
	"testing"

	"repro/internal/lint/analysis"
	"repro/internal/lint/doccheck"
	"repro/internal/lint/loader"
)

func TestExportedIdentifiersDocumented(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the documented surface")
	}
	pkgs, err := loader.LoadModule(".",
		".", "./internal/attack", "./internal/tcpreasm", "./internal/tlsrec", "./internal/pcapio",
		"./internal/dataset", "./internal/statejson")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	checked := 0
	for _, pkg := range pkgs {
		if !doccheck.SurfacePackages[pkg.Path] {
			t.Errorf("loaded %s, which is not in doccheck.SurfacePackages", pkg.Path)
			continue
		}
		checked++
		var diags []analysis.Diagnostic
		pass := &analysis.Pass{
			Analyzer:  doccheck.Analyzer,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Path:      pkg.Path,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
		}
		if err := doccheck.Analyzer.Run(pass); err != nil {
			t.Fatalf("doccheck on %s: %v", pkg.Path, err)
		}
		allows, _ := analysis.CollectAllows(pkg.Fset, pkg.Files)
		kept, _, _ := analysis.FilterAllowed(pkg.Fset, diags, allows)
		for _, d := range kept {
			t.Errorf("%s: %s", pkg.Fset.Position(d.Pos), d.Message)
		}
	}
	if want := len(doccheck.SurfacePackages); checked != want {
		t.Errorf("checked %d packages, want the %d in doccheck.SurfacePackages", checked, want)
	}
}
