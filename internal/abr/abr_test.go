package abr

import (
	"testing"
	"time"

	"repro/internal/media"
)

func TestBufferAddClamp(t *testing.T) {
	b := NewBuffer(10 * time.Second)
	b.Add(7 * time.Second)
	b.Add(7 * time.Second)
	if b.Level != 10*time.Second {
		t.Errorf("Level = %v, want capacity clamp at 10s", b.Level)
	}
	if !b.Full() {
		t.Error("Full() = false at capacity")
	}
}

func TestBufferDrainAndStall(t *testing.T) {
	b := NewBuffer(30 * time.Second)
	b.Add(5 * time.Second)
	if stall := b.Drain(3 * time.Second); stall != 0 {
		t.Errorf("stall = %v, want 0", stall)
	}
	if b.Level != 2*time.Second {
		t.Errorf("Level = %v", b.Level)
	}
	if stall := b.Drain(5 * time.Second); stall != 3*time.Second {
		t.Errorf("stall = %v, want 3s", stall)
	}
	if b.Level != 0 {
		t.Errorf("Level = %v after underrun", b.Level)
	}
}

func TestBufferFlush(t *testing.T) {
	b := NewBuffer(30 * time.Second)
	b.Add(12 * time.Second)
	b.Flush()
	if b.Level != 0 {
		t.Errorf("Level = %v after Flush", b.Level)
	}
}

func TestBufferDefaultCapacity(t *testing.T) {
	b := NewBuffer(0)
	if b.Capacity != 240*time.Second {
		t.Errorf("default capacity = %v", b.Capacity)
	}
}

func TestThroughputRuleSelect(t *testing.T) {
	r := &ThroughputRule{Ladder: media.DefaultLadder}
	cases := []struct {
		bps  float64
		want int
	}{
		{100_000, 0},     // below the lowest rung: floor at 0
		{500_000, 0},     // 0.8*500k = 400k: only 235p fits
		{3_000_000, 2},   // 2.4M: 720p fits, 1080p does not
		{100_000_000, 4}, // everything fits: top rung
		{5_400_000, 3},   // 4.32M: 1080p just fits
	}
	for _, c := range cases {
		if got := r.Select(nil, c.bps); got != c.want {
			t.Errorf("Select(%v bps) = %d, want %d", c.bps, got, c.want)
		}
	}
}

func TestThroughputRuleMonotone(t *testing.T) {
	r := &ThroughputRule{Ladder: media.DefaultLadder}
	prev := -1
	for bps := 100_000.0; bps < 50_000_000; bps *= 1.3 {
		got := r.Select(nil, bps)
		if got < prev {
			t.Fatalf("quality decreased as throughput rose: %d after %d", got, prev)
		}
		prev = got
	}
}

func TestBufferRuleRegions(t *testing.T) {
	r := &BufferRule{Ladder: media.DefaultLadder}
	b := NewBuffer(240 * time.Second)

	b.Level = 5 * time.Second // inside reservoir
	if got := r.Select(b, 0); got != 0 {
		t.Errorf("reservoir Select = %d", got)
	}
	b.Level = 200 * time.Second // above cushion
	if got := r.Select(b, 0); got != len(media.DefaultLadder)-1 {
		t.Errorf("cushion Select = %d", got)
	}
	b.Level = 60 * time.Second // mid-ramp
	got := r.Select(b, 0)
	if got <= 0 || got >= len(media.DefaultLadder)-1 {
		t.Errorf("mid-ramp Select = %d, want interior rung", got)
	}
}

func TestBufferRuleMonotoneInLevel(t *testing.T) {
	r := &BufferRule{Ladder: media.DefaultLadder}
	b := NewBuffer(240 * time.Second)
	prev := -1
	for s := 0; s <= 240; s += 5 {
		b.Level = time.Duration(s) * time.Second
		got := r.Select(b, 0)
		if got < prev {
			t.Fatalf("quality decreased as buffer grew: %d after %d at %ds", got, prev, s)
		}
		prev = got
	}
}

func TestFixedRuleClamps(t *testing.T) {
	f := &FixedRule{Ladder: media.DefaultLadder, Index: 2}
	if got := f.Select(nil, 0); got != 2 {
		t.Errorf("Select = %d", got)
	}
	f.Index = 99
	if got := f.Select(nil, 0); got != len(media.DefaultLadder)-1 {
		t.Errorf("over-index Select = %d", got)
	}
	f.Index = -5
	if got := f.Select(nil, 0); got != 0 {
		t.Errorf("under-index Select = %d", got)
	}
}

func TestControllersHaveNames(t *testing.T) {
	for _, c := range []Controller{
		&ThroughputRule{Ladder: media.DefaultLadder},
		&BufferRule{Ladder: media.DefaultLadder},
		&FixedRule{Ladder: media.DefaultLadder},
	} {
		if c.Name() == "" {
			t.Errorf("%T has empty name", c)
		}
	}
}

func TestEstimatorEWMA(t *testing.T) {
	var e ThroughputEstimator
	if e.Estimate() != 0 {
		t.Error("estimate nonzero before observations")
	}
	// 1 MB in 1 s = 8 Mbit/s.
	e.Observe(1_000_000, time.Second)
	if got := e.Estimate(); got != 8_000_000 {
		t.Errorf("first estimate = %v", got)
	}
	// A slower sample pulls the EWMA down but not all the way.
	e.Observe(250_000, time.Second) // 2 Mbit/s
	got := e.Estimate()
	if got >= 8_000_000 || got <= 2_000_000 {
		t.Errorf("EWMA = %v, want between 2M and 8M", got)
	}
}

func TestEstimatorIgnoresZeroElapsed(t *testing.T) {
	var e ThroughputEstimator
	e.Observe(1000, 0)
	if e.Estimate() != 0 {
		t.Error("zero-elapsed observation should be ignored")
	}
}
