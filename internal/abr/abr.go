// Package abr implements the client-side adaptive-bitrate machinery the
// interactive player runs: a playback buffer model and two rate-selection
// rules (throughput-based and buffer-based). Quality decisions shape the
// server→client traffic volume that the baseline fingerprinting attacks
// consume; the White Mirror side-channel itself is quality-independent,
// which the ablation benches demonstrate by sweeping the controller.
package abr

import (
	"time"

	"repro/internal/media"
)

// Buffer models the client's media buffer: seconds of playable content.
type Buffer struct {
	// Level is the buffered media duration.
	Level time.Duration
	// Capacity is the maximum the player will buffer ahead (Netflix
	// buffers about four minutes).
	Capacity time.Duration
}

// NewBuffer returns an empty buffer with the given capacity.
func NewBuffer(capacity time.Duration) *Buffer {
	if capacity <= 0 {
		capacity = 240 * time.Second
	}
	return &Buffer{Capacity: capacity}
}

// Add credits downloaded media time, clamped at capacity.
func (b *Buffer) Add(d time.Duration) {
	b.Level += d
	if b.Level > b.Capacity {
		b.Level = b.Capacity
	}
}

// Drain debits played media time; it returns the stall time incurred if
// the requested duration exceeded the buffer (rebuffering).
func (b *Buffer) Drain(d time.Duration) (stall time.Duration) {
	if d <= b.Level {
		b.Level -= d
		return 0
	}
	stall = d - b.Level
	b.Level = 0
	return stall
}

// Full reports whether the buffer is at capacity.
func (b *Buffer) Full() bool { return b.Level >= b.Capacity }

// Flush empties the buffer (used when a non-default choice discards the
// prefetched branch).
func (b *Buffer) Flush() { b.Level = 0 }

// Controller selects the ladder rung for the next chunk.
type Controller interface {
	// Select returns the quality index for the next chunk given the
	// current buffer level and a recent-throughput estimate in bits/s.
	Select(buf *Buffer, throughputBps float64) int
	Name() string
}

// ThroughputRule picks the highest rung whose bitrate fits within a
// safety fraction of measured throughput. It reacts fast but oscillates
// on jittery links.
type ThroughputRule struct {
	Ladder []media.Quality
	// Safety is the fraction of throughput considered spendable
	// (default 0.8).
	Safety float64
}

// Name implements Controller.
func (t *ThroughputRule) Name() string { return "throughput" }

// Select implements Controller.
func (t *ThroughputRule) Select(_ *Buffer, throughputBps float64) int {
	safety := t.Safety
	if safety <= 0 || safety > 1 {
		safety = 0.8
	}
	budget := throughputBps * safety
	best := 0
	for i, q := range t.Ladder {
		if float64(q.Bitrate) <= budget {
			best = i
		}
	}
	return best
}

// BufferRule is a BBA-style controller: quality is a piecewise-linear
// function of buffer occupancy between a reservoir and a cushion,
// ignoring throughput except as a floor.
type BufferRule struct {
	Ladder []media.Quality
	// Reservoir is the buffer level below which the lowest rung is used
	// (default 15s). Cushion is the level at which the top rung unlocks
	// (default 120s).
	Reservoir, Cushion time.Duration
}

// Name implements Controller.
func (b *BufferRule) Name() string { return "buffer" }

// Select implements Controller.
func (b *BufferRule) Select(buf *Buffer, _ float64) int {
	res := b.Reservoir
	if res <= 0 {
		res = 15 * time.Second
	}
	cush := b.Cushion
	if cush <= res {
		cush = 120 * time.Second
	}
	level := buf.Level
	switch {
	case level <= res:
		return 0
	case level >= cush:
		return len(b.Ladder) - 1
	}
	frac := float64(level-res) / float64(cush-res)
	idx := int(frac * float64(len(b.Ladder)-1))
	if idx >= len(b.Ladder) {
		idx = len(b.Ladder) - 1
	}
	return idx
}

// FixedRule always selects one rung, used to hold quality constant in
// experiments isolating the side-channel from ABR dynamics.
type FixedRule struct {
	Ladder []media.Quality
	Index  int
}

// Name implements Controller.
func (f *FixedRule) Name() string { return "fixed" }

// Select implements Controller.
func (f *FixedRule) Select(*Buffer, float64) int {
	if f.Index < 0 {
		return 0
	}
	if f.Index >= len(f.Ladder) {
		return len(f.Ladder) - 1
	}
	return f.Index
}

// ThroughputEstimator keeps an exponentially weighted moving average of
// per-chunk delivery rates, the estimate feeding Controller.Select.
type ThroughputEstimator struct {
	// Alpha is the EWMA weight of the newest sample (default 0.3).
	Alpha float64
	est   float64
	seen  bool
}

// Observe records one chunk download: size in bytes over elapsed time.
func (t *ThroughputEstimator) Observe(bytes int, elapsed time.Duration) {
	if elapsed <= 0 {
		return
	}
	sample := float64(bytes) * 8 / elapsed.Seconds()
	alpha := t.Alpha
	if alpha <= 0 || alpha > 1 {
		alpha = 0.3
	}
	if !t.seen {
		t.est, t.seen = sample, true
		return
	}
	t.est = alpha*sample + (1-alpha)*t.est
}

// Estimate returns the current throughput estimate in bits/s (zero before
// any observation).
func (t *ThroughputEstimator) Estimate() float64 { return t.est }
