package script

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/wire"
)

func TestBandersnatchValidates(t *testing.T) {
	g := Bandersnatch()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTinyScriptValidates(t *testing.T) {
	if err := TinyScript().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBandersnatchShape(t *testing.T) {
	g := Bandersnatch()
	if g.Start != "S0" {
		t.Errorf("start = %q", g.Start)
	}
	cps := g.ChoicePoints()
	if len(cps) < 8 {
		t.Errorf("choice points = %d, want >= 8", len(cps))
	}
	// The first choice point must be the food question, the paper's Q1.
	if cps[0].Choice.Trait != TraitFood {
		t.Errorf("Q1 trait = %v", cps[0].Choice.Trait)
	}
	// There must be sensitive choices (violence, politics) per the paper.
	traits := map[Trait]bool{}
	sensitive := 0
	for _, cp := range cps {
		traits[cp.Choice.Trait] = true
		if cp.Choice.Sensitive {
			sensitive++
		}
	}
	for _, want := range []Trait{TraitFood, TraitMusic, TraitViolence, TraitPolitics} {
		if !traits[want] {
			t.Errorf("missing trait %v in graph", want)
		}
	}
	if sensitive == 0 {
		t.Error("no sensitive choices in graph")
	}
	// Every choice must use the ten-second window.
	for _, cp := range cps {
		if cp.Choice.Window != 10*time.Second {
			t.Errorf("choice at %s window = %v", cp.ID, cp.Choice.Window)
		}
	}
}

func TestWalkAllDefaults(t *testing.T) {
	g := Bandersnatch()
	decisions := make([]bool, BandersnatchMaxChoices)
	for i := range decisions {
		decisions[i] = true
	}
	p, err := g.Walk(decisions)
	if err != nil {
		t.Fatal(err)
	}
	last, _ := g.Segment(p.Segments[len(p.Segments)-1])
	if !last.Ending {
		t.Errorf("all-defaults walk ended at non-ending %q", last.ID)
	}
	if len(p.Decisions) == 0 {
		t.Error("no decisions consumed")
	}
}

func TestWalkAllAlternatives(t *testing.T) {
	g := Bandersnatch()
	decisions := make([]bool, BandersnatchMaxChoices)
	p, err := g.Walk(decisions)
	if err != nil {
		t.Fatal(err)
	}
	last, _ := g.Segment(p.Segments[len(p.Segments)-1])
	if !last.Ending {
		t.Errorf("all-alternatives walk ended at non-ending %q", last.ID)
	}
}

func TestWalkDecisionsRespected(t *testing.T) {
	g := TinyScript()
	p, err := g.Walk([]bool{true, false})
	if err != nil {
		t.Fatal(err)
	}
	want := []SegmentID{"Seg0", "S1", "Q2seg", "S2'"}
	if len(p.Segments) != len(want) {
		t.Fatalf("segments = %v", p.Segments)
	}
	for i := range want {
		if p.Segments[i] != want[i] {
			t.Errorf("segment[%d] = %q, want %q", i, p.Segments[i], want[i])
		}
	}
}

func TestWalkStopsWhenDecisionsExhausted(t *testing.T) {
	g := TinyScript()
	p, err := g.Walk(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Segments) != 1 || p.Segments[0] != "Seg0" {
		t.Errorf("segments = %v, want just Seg0", p.Segments)
	}
}

func TestChoicesAlong(t *testing.T) {
	g := TinyScript()
	p, _ := g.Walk([]bool{false, true})
	met := g.ChoicesAlong(p)
	if len(met) != 2 {
		t.Fatalf("met = %d choices", len(met))
	}
	if met[0].TookDefault || !met[1].TookDefault {
		t.Errorf("decisions = %v, %v", met[0].TookDefault, met[1].TookDefault)
	}
	if met[0].Choice.Question != "Q1" {
		t.Errorf("first question = %q", met[0].Choice.Question)
	}
}

func TestWalkPropertyAlwaysReachesEndingOrChoice(t *testing.T) {
	g := Bandersnatch()
	f := func(bits uint16) bool {
		decisions := make([]bool, BandersnatchMaxChoices)
		for i := range decisions {
			decisions[i] = bits&(1<<i) != 0
		}
		p, err := g.Walk(decisions)
		if err != nil {
			return false
		}
		last, ok := g.Segment(p.Segments[len(p.Segments)-1])
		if !ok {
			return false
		}
		// With a full decision vector the walk must reach an ending.
		return last.Ending
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 256}); err != nil {
		t.Error(err)
	}
}

func TestWalkDeterministic(t *testing.T) {
	g := Bandersnatch()
	rng := wire.NewRNG(99)
	for trial := 0; trial < 20; trial++ {
		decisions := make([]bool, BandersnatchMaxChoices)
		for i := range decisions {
			decisions[i] = rng.Bool(0.5)
		}
		p1, err1 := g.Walk(decisions)
		p2, err2 := g.Walk(decisions)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if len(p1.Segments) != len(p2.Segments) {
			t.Fatal("walk not deterministic")
		}
	}
}

func TestValidateCatchesMissingSuccessor(t *testing.T) {
	g := NewGraph("broken")
	g.Add(&Segment{ID: "a", Title: "a", Duration: time.Minute, Next: "ghost"})
	if err := g.Validate(); err == nil {
		t.Error("missing successor not caught")
	}
}

func TestValidateCatchesIdenticalBranches(t *testing.T) {
	g := NewGraph("broken")
	g.Add(&Segment{ID: "a", Title: "a", Duration: time.Minute, Choice: &Choice{
		Question: "?", Default: "b", Alternative: "b", Window: time.Second}})
	g.Add(&Segment{ID: "b", Title: "b", Duration: time.Minute, Ending: true})
	if err := g.Validate(); err == nil {
		t.Error("identical branches not caught")
	}
}

func TestValidateCatchesUnreachable(t *testing.T) {
	g := NewGraph("broken")
	g.Add(&Segment{ID: "a", Title: "a", Duration: time.Minute, Ending: true})
	g.Add(&Segment{ID: "orphan", Title: "o", Duration: time.Minute, Ending: true})
	if err := g.Validate(); err == nil {
		t.Error("unreachable segment not caught")
	}
}

func TestValidateCatchesEndingWithSuccessor(t *testing.T) {
	g := NewGraph("broken")
	g.Add(&Segment{ID: "a", Title: "a", Duration: time.Minute, Ending: true, Next: "a"})
	if err := g.Validate(); err == nil {
		t.Error("ending with successor not caught")
	}
}

func TestValidateCatchesNoEndingReachable(t *testing.T) {
	g := NewGraph("broken")
	g.Add(&Segment{ID: "a", Title: "a", Duration: time.Minute, Next: "b"})
	g.Add(&Segment{ID: "b", Title: "b", Duration: time.Minute, Next: "a"})
	if err := g.Validate(); err == nil {
		t.Error("endless cycle not caught")
	}
}

func TestValidateCatchesZeroWindow(t *testing.T) {
	g := NewGraph("broken")
	g.Add(&Segment{ID: "a", Title: "a", Duration: time.Minute, Choice: &Choice{
		Question: "?", Default: "b", Alternative: "c"}})
	g.Add(&Segment{ID: "b", Title: "b", Duration: time.Minute, Ending: true})
	g.Add(&Segment{ID: "c", Title: "c", Duration: time.Minute, Ending: true})
	if err := g.Validate(); err == nil {
		t.Error("zero decision window not caught")
	}
}

func TestAddDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate Add did not panic")
		}
	}()
	g := NewGraph("dup")
	g.Add(&Segment{ID: "a", Title: "a", Ending: true})
	g.Add(&Segment{ID: "a", Title: "a again", Ending: true})
}

func TestDOTOutput(t *testing.T) {
	dot := Bandersnatch().DOT()
	for _, want := range []string{"digraph", "diamond", "doublecircle", "default"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q", want)
		}
	}
}

func TestChoiceOptionsOrder(t *testing.T) {
	c := Choice{Default: "d", Alternative: "a"}
	opts := c.Options()
	if opts[0] != "d" || opts[1] != "a" {
		t.Errorf("Options = %v", opts)
	}
}
