package script

import "time"

// decisionWindow is the ten-second choice timer the paper describes.
const decisionWindow = 10 * time.Second

// Bandersnatch builds the case-study graph used throughout the
// reproduction. It is a schematic interactive-movie script, not a copy of
// the film: the three choice prompts quoted in the paper (a breakfast
// choice, a visit-or-follow choice, and a tea-or-shout choice) anchor the
// early structure, and the remainder is an original synthetic continuation
// with the same shape — binary choices, a default branch per choice,
// loop-backs, and multiple endings. Traits annotate what each choice
// would reveal about a viewer, mirroring the paper's benign-to-sensitive
// range.
//
// Segment durations are one tenth of film scale. Every quantity the
// experiments measure — record lengths, the ten-second decision windows,
// prefetch-stall gaps — is independent of segment duration; scaling down
// keeps simulated media volume (and therefore simulation and capture
// cost) proportionate without changing any observable the attack uses.
func Bandersnatch() *Graph {
	g := NewGraph("Bandersnatch (schematic)")

	seg := func(id SegmentID, title string, d time.Duration, next SegmentID) {
		g.Add(&Segment{ID: id, Title: title, Duration: d, Next: next})
	}
	choice := func(id SegmentID, title string, d time.Duration, q string,
		def, alt SegmentID, trait Trait, sensitive bool) {
		g.Add(&Segment{ID: id, Title: title, Duration: d, Choice: &Choice{
			Question: q, Default: def, Alternative: alt,
			Trait: trait, Sensitive: sensitive, Window: decisionWindow,
		}})
	}
	end := func(id SegmentID, title string, d time.Duration) {
		g.Add(&Segment{ID: id, Title: title, Duration: d, Ending: true})
	}

	// Segment 0: common opening for all viewers (per the paper's Figure 1),
	// ending at Q1, the breakfast-cereal question.
	choice("S0", "Opening: morning at home", 48*time.Second,
		"Frosties or Sugar Puffs?",
		"S1", "S1b", TraitFood, false)

	// Both breakfast branches converge on the bus ride; the choice leaks a
	// benign preference only.
	seg("S1", "Breakfast: default cereal", 9*time.Second, "S2")
	seg("S1b", "Breakfast: other cereal", 9*time.Second, "S2")

	// Q2: music choice on the bus (benign).
	choice("S2", "Bus ride to the studio", 18*time.Second,
		"Listen to the compilation tape or the band album?",
		"S3", "S3b", TraitMusic, false)
	seg("S3", "Arrival: default soundtrack", 12*time.Second, "S4")
	seg("S3b", "Arrival: alternative soundtrack", 12*time.Second, "S4")

	// Q3: accept or refuse the studio job offer — structural fork.
	choice("S4", "The studio pitch", 36*time.Second,
		"Accept the job offer or refuse?",
		"S5", "S6", TraitCuriosity, false)

	// Accepting leads to a short arc that loops back (the film's famous
	// "wrong choice, try again" structure).
	seg("S5", "Working at the studio", 24*time.Second, "S5x")
	end("S5x", "Early ending: the rushed game fails", 12*time.Second)

	// Refusing continues the main storyline.
	choice("S6", "Working from home", 42*time.Second,
		"Visit therapist or follow Colin?",
		"S7", "S8", TraitAnxiety, true)

	// Therapist arc (default).
	choice("S7", "At the therapist", 30*time.Second,
		"Talk about your mother or about work?",
		"S9", "S9b", TraitAnxiety, true)
	seg("S9", "Session: family history", 24*time.Second, "S10")
	seg("S9b", "Session: work stress", 24*time.Second, "S10")

	// Colin arc (non-default) rejoins at S10 after a detour.
	choice("S8", "At Colin's flat", 36*time.Second,
		"Take the offer or decline it?",
		"S8a", "S8b", TraitCuriosity, true)
	seg("S8a", "The balcony conversation", 18*time.Second, "S10")
	seg("S8b", "Leaving early", 12*time.Second, "S10")

	// Q: frustration scene quoted in the paper.
	choice("S10", "Deadline pressure at home", 48*time.Second,
		"Throw tea over computer or shout at dad?",
		"S11", "S11b", TraitViolence, true)
	seg("S11", "Aftermath: the ruined machine", 18*time.Second, "S12")
	seg("S11b", "Aftermath: the argument", 18*time.Second, "S12")

	// Political-leaning fork: which pamphlet to pick up in the waiting
	// room (synthetic; exercises the paper's political-inclination trait).
	choice("S12", "The waiting room", 24*time.Second,
		"Pick up the workers' pamphlet or the market gazette?",
		"S13", "S13b", TraitPolitics, true)
	seg("S13", "Reading: collectivist pamphlet", 12*time.Second, "S14")
	seg("S13b", "Reading: market gazette", 12*time.Second, "S14")

	// Final confrontation with three outcomes via two stacked choices.
	choice("S14", "The confrontation", 36*time.Second,
		"Back down or press on?",
		"S15", "S16", TraitViolence, true)
	end("S15", "Ending: walking away", 24*time.Second)
	choice("S16", "Point of no return", 18*time.Second,
		"Hide the evidence or call for help?",
		"S17", "S18", TraitViolence, true)
	end("S17", "Ending: the cover-up", 30*time.Second)
	end("S18", "Ending: the confession", 30*time.Second)

	return g
}

// BandersnatchMaxChoices is the largest number of choices any path through
// the case-study graph can meet (S0→S2→S4→S6→S8→S10→S12→S14→S16), used to
// size decision vectors.
const BandersnatchMaxChoices = 9

// TinyScript builds a minimal two-choice graph matching the paper's
// Figure 1 example exactly: Segment 0 → Q1 → (S1|S1') → Q2 → (S2|S2').
// Used by the Figure 1 experiment and in unit tests.
func TinyScript() *Graph {
	g := NewGraph("Figure 1 example")
	g.Add(&Segment{ID: "Seg0", Title: "Segment 0", Duration: 2 * time.Minute, Choice: &Choice{
		Question: "Q1", Default: "S1", Alternative: "S1'",
		Trait: TraitNone, Window: decisionWindow,
	}})
	g.Add(&Segment{ID: "S1", Title: "S1 (default)", Duration: 2 * time.Minute, Next: "Q2seg"})
	g.Add(&Segment{ID: "S1'", Title: "S1' (alternative)", Duration: 2 * time.Minute, Next: "Q2seg"})
	g.Add(&Segment{ID: "Q2seg", Title: "Segment before Q2", Duration: 2 * time.Minute, Choice: &Choice{
		Question: "Q2", Default: "S2", Alternative: "S2'",
		Trait: TraitNone, Window: decisionWindow,
	}})
	g.Add(&Segment{ID: "S2", Title: "S2 (default)", Duration: 2 * time.Minute, Ending: true})
	g.Add(&Segment{ID: "S2'", Title: "S2' (alternative)", Duration: 2 * time.Minute, Ending: true})
	return g
}
