// Package script models the branching narrative of an interactive movie:
// a directed graph of playable segments where some segments end at a
// choice point offering two options, one of which is the default branch
// that the player prefetches.
//
// The White Mirror attack reconstructs a viewer's walk through this graph
// from the type-1/type-2 state-report side-channel, so the graph is a
// first-class object: the attack uses it to constrain decoding and the
// behavioural profiler uses per-choice trait annotations to interpret the
// recovered path.
package script

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// SegmentID names one playable segment.
type SegmentID string

// Trait labels the behavioural signal a choice carries, mirroring the
// paper's observation that choices range from benign (food, music) to
// sensitive (violence affinity, political inclination).
type Trait string

// Traits used by the Bandersnatch case-study graph.
const (
	TraitFood      Trait = "food-preference"
	TraitMusic     Trait = "music-preference"
	TraitAnxiety   Trait = "state-of-mind"
	TraitViolence  Trait = "affinity-to-violence"
	TraitPolitics  Trait = "political-inclination"
	TraitCuriosity Trait = "curiosity"
	TraitNone      Trait = "none"
)

// Choice is a binary decision at the end of a segment.
type Choice struct {
	// Question is the on-screen prompt (e.g. a breakfast-cereal choice).
	Question string
	// Default is the branch the player prefetches; taken automatically if
	// the viewer lets the ten-second timer expire.
	Default SegmentID
	// Alternative is the non-default branch Si'; selecting it triggers a
	// type-2 state report and cancels the prefetch.
	Alternative SegmentID
	// Trait annotates what the decision reveals about the viewer.
	Trait Trait
	// Sensitive marks traits the paper calls sensitive rather than benign.
	Sensitive bool
	// Window is how long the viewer has to decide (ten seconds for
	// Bandersnatch).
	Window time.Duration
}

// Options returns the two branches in presentation order, default first.
func (c Choice) Options() [2]SegmentID {
	return [2]SegmentID{c.Default, c.Alternative}
}

// Segment is one contiguous run of video content.
type Segment struct {
	ID SegmentID
	// Title is a human-readable label used in reports.
	Title string
	// Duration is the segment's play time.
	Duration time.Duration
	// Choice, when non-nil, ends the segment at a choice point.
	Choice *Choice
	// Next, for choiceless segments, is the single successor ("" for an
	// ending).
	Next SegmentID
	// Ending marks a terminal segment.
	Ending bool
}

// Graph is a validated branching script.
type Graph struct {
	Title    string
	Start    SegmentID
	segments map[SegmentID]*Segment
	order    []SegmentID // insertion order for deterministic iteration
}

// NewGraph returns an empty graph with the given title.
func NewGraph(title string) *Graph {
	return &Graph{Title: title, segments: make(map[SegmentID]*Segment)}
}

// Add inserts a segment. Adding a duplicate ID panics: graphs are built
// from static literals and a duplicate is a programming error.
func (g *Graph) Add(s *Segment) {
	if _, dup := g.segments[s.ID]; dup {
		panic(fmt.Sprintf("script: duplicate segment %q", s.ID))
	}
	g.segments[s.ID] = s
	g.order = append(g.order, s.ID)
	if g.Start == "" {
		g.Start = s.ID
	}
}

// Segment looks up a segment by ID.
func (g *Graph) Segment(id SegmentID) (*Segment, bool) {
	s, ok := g.segments[id]
	return s, ok
}

// Segments returns all segments in insertion order.
func (g *Graph) Segments() []*Segment {
	out := make([]*Segment, 0, len(g.order))
	for _, id := range g.order {
		out = append(out, g.segments[id])
	}
	return out
}

// ChoicePoints returns the segments that end at a choice, in insertion
// order. The i-th element is the i-th potential question a viewer can
// meet, matching the paper's Q1, Q2, … numbering along any given path.
func (g *Graph) ChoicePoints() []*Segment {
	var out []*Segment
	for _, id := range g.order {
		if g.segments[id].Choice != nil {
			out = append(out, g.segments[id])
		}
	}
	return out
}

// Validate checks structural invariants:
//   - the start segment exists,
//   - every referenced successor exists,
//   - every choice's default and alternative differ,
//   - endings have no successors,
//   - every segment is reachable from the start, and
//   - every path from the start reaches an ending (no cycles without exit
//     are tolerated; cycles are allowed in Bandersnatch-style scripts, so
//     the check is that an ending is reachable from every segment).
func (g *Graph) Validate() error {
	start, ok := g.segments[g.Start]
	if !ok {
		return fmt.Errorf("script %q: start segment %q missing", g.Title, g.Start)
	}
	_ = start
	for _, id := range g.order {
		s := g.segments[id]
		switch {
		case s.Ending:
			if s.Next != "" || s.Choice != nil {
				return fmt.Errorf("script %q: ending %q has successors", g.Title, id)
			}
		case s.Choice != nil:
			c := s.Choice
			if c.Default == c.Alternative {
				return fmt.Errorf("script %q: choice at %q has identical branches", g.Title, id)
			}
			for _, succ := range c.Options() {
				if _, ok := g.segments[succ]; !ok {
					return fmt.Errorf("script %q: choice at %q references missing segment %q",
						g.Title, id, succ)
				}
			}
			if c.Window <= 0 {
				return fmt.Errorf("script %q: choice at %q has no decision window", g.Title, id)
			}
		default:
			if s.Next == "" {
				return fmt.Errorf("script %q: segment %q has no successor and is not an ending",
					g.Title, id)
			}
			if _, ok := g.segments[s.Next]; !ok {
				return fmt.Errorf("script %q: segment %q references missing segment %q",
					g.Title, id, s.Next)
			}
		}
	}
	// Reachability from start.
	reached := g.reachableFrom(g.Start)
	for _, id := range g.order {
		if !reached[id] {
			return fmt.Errorf("script %q: segment %q unreachable from start", g.Title, id)
		}
	}
	// An ending must be reachable from every segment.
	for _, id := range g.order {
		if !g.endingReachableFrom(id) {
			return fmt.Errorf("script %q: no ending reachable from %q", g.Title, id)
		}
	}
	return nil
}

func (g *Graph) successors(id SegmentID) []SegmentID {
	s := g.segments[id]
	if s == nil || s.Ending {
		return nil
	}
	if s.Choice != nil {
		return []SegmentID{s.Choice.Default, s.Choice.Alternative}
	}
	return []SegmentID{s.Next}
}

func (g *Graph) reachableFrom(id SegmentID) map[SegmentID]bool {
	seen := map[SegmentID]bool{id: true}
	stack := []SegmentID{id}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, next := range g.successors(cur) {
			if !seen[next] {
				seen[next] = true
				stack = append(stack, next)
			}
		}
	}
	return seen
}

func (g *Graph) endingReachableFrom(id SegmentID) bool {
	for r := range g.reachableFrom(id) {
		if s := g.segments[r]; s != nil && s.Ending {
			return true
		}
	}
	return false
}

// Path is a walk through the graph: the segments visited and, for each
// choice met, whether the default branch was taken.
type Path struct {
	Segments []SegmentID
	// Decisions[i] is true if the i-th choice encountered took the
	// default branch.
	Decisions []bool
}

// Walk follows decisions from the start: each time a choice point is met
// the next decision is consumed (true = default). The walk ends at an
// ending segment or when decisions are exhausted at a choice point.
// maxSegments guards against cycles when decisions run out.
func (g *Graph) Walk(decisions []bool) (Path, error) {
	var p Path
	cur := g.Start
	for steps := 0; ; steps++ {
		if steps > 10000 {
			return p, fmt.Errorf("script %q: walk exceeded 10000 segments (cycle without exit?)", g.Title)
		}
		s, ok := g.segments[cur]
		if !ok {
			return p, fmt.Errorf("script %q: walk reached missing segment %q", g.Title, cur)
		}
		p.Segments = append(p.Segments, cur)
		if s.Ending {
			return p, nil
		}
		if s.Choice == nil {
			cur = s.Next
			continue
		}
		if len(p.Decisions) >= len(decisions) {
			return p, nil // out of decisions: stop at the choice point
		}
		takeDefault := decisions[len(p.Decisions)]
		p.Decisions = append(p.Decisions, takeDefault)
		if takeDefault {
			cur = s.Choice.Default
		} else {
			cur = s.Choice.Alternative
		}
	}
}

// WalkPaths enumerates every complete root-to-ending walk of the graph
// whose decision vector has at most maxChoices entries, invoking fn once
// per walk. Branches are explored default-first, so the all-default walk
// to the earliest ending is always delivered first. The Path handed to fn
// holds fresh copies of both slices: callbacks may retain them (the
// attack's path table does exactly that).
func (g *Graph) WalkPaths(maxChoices int, fn func(Path)) {
	var segs []SegmentID
	var decs []bool
	var rec func(id SegmentID)
	rec = func(id SegmentID) {
		base := len(segs)
		defer func() { segs = segs[:base] }()
		for {
			s, ok := g.segments[id]
			if !ok {
				return
			}
			segs = append(segs, id)
			if s.Ending {
				fn(Path{
					Segments:  append([]SegmentID(nil), segs...),
					Decisions: append([]bool(nil), decs...),
				})
				return
			}
			if s.Choice == nil {
				id = s.Next
				continue
			}
			if len(decs) >= maxChoices {
				return // too deep; prune
			}
			for _, takeDefault := range [2]bool{true, false} {
				decs = append(decs, takeDefault)
				if takeDefault {
					rec(s.Choice.Default)
				} else {
					rec(s.Choice.Alternative)
				}
				decs = decs[:len(decs)-1]
			}
			return
		}
	}
	rec(g.Start)
}

// ChoicesMet returns the choice metadata encountered along a path, in
// order, paired with the decision made.
type MetChoice struct {
	At          SegmentID
	Choice      Choice
	TookDefault bool
}

// ChoicesAlong resolves the choices met on a path.
func (g *Graph) ChoicesAlong(p Path) []MetChoice {
	var out []MetChoice
	di := 0
	for _, id := range p.Segments {
		s := g.segments[id]
		if s == nil || s.Choice == nil {
			continue
		}
		if di >= len(p.Decisions) {
			break
		}
		out = append(out, MetChoice{At: id, Choice: *s.Choice, TookDefault: p.Decisions[di]})
		di++
	}
	return out
}

// DOT renders the graph in Graphviz dot syntax for documentation.
func (g *Graph) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=LR;\n", g.Title)
	ids := append([]SegmentID(nil), g.order...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		s := g.segments[id]
		shape := "box"
		if s.Choice != nil {
			shape = "diamond"
		}
		if s.Ending {
			shape = "doublecircle"
		}
		fmt.Fprintf(&b, "  %q [shape=%s label=%q];\n", id, shape, s.Title)
	}
	for _, id := range ids {
		s := g.segments[id]
		if s.Choice != nil {
			fmt.Fprintf(&b, "  %q -> %q [label=\"default\"];\n", id, s.Choice.Default)
			fmt.Fprintf(&b, "  %q -> %q [style=dashed];\n", id, s.Choice.Alternative)
		} else if s.Next != "" {
			fmt.Fprintf(&b, "  %q -> %q;\n", id, s.Next)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
