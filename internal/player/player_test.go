package player

import (
	"testing"
	"time"

	"repro/internal/abr"
	"repro/internal/media"
	"repro/internal/script"
)

// stubEnv is a deterministic Env: chunk fetches take a fixed latency per
// byte, decisions follow a scripted vector, and every report is logged.
type stubEnv struct {
	perByte   time.Duration
	decisions []bool
	delayFrac float64
	di        int

	reports []loggedReport
	fetches int
}

type loggedReport struct {
	kind EventKind
	cp   script.SegmentID
	sel  script.SegmentID
	at   time.Time
}

func (e *stubEnv) FetchChunk(now time.Time, c media.Chunk) time.Time {
	e.fetches++
	return now.Add(time.Duration(c.Size) * e.perByte)
}

func (e *stubEnv) SendReport(now time.Time, kind EventKind, cp, sel script.SegmentID, _ int64) {
	e.reports = append(e.reports, loggedReport{kind: kind, cp: cp, sel: sel, at: now})
}

func (e *stubEnv) Decide(script.Choice) (bool, float64) {
	d := true
	if e.di < len(e.decisions) {
		d = e.decisions[e.di]
	}
	e.di++
	frac := e.delayFrac
	if frac == 0 {
		frac = 0.5
	}
	return d, frac
}

func (e *stubEnv) Throughput() float64 { return 50_000_000 }

func (e *stubEnv) byKind(k EventKind) []loggedReport {
	var out []loggedReport
	for _, r := range e.reports {
		if r.kind == k {
			out = append(out, r)
		}
	}
	return out
}

func testConfig(g *script.Graph) Config {
	enc := media.Encode(g, media.DefaultLadder, 1)
	return Config{
		Graph:    g,
		Encoding: enc,
		Control:  &abr.FixedRule{Ladder: media.DefaultLadder, Index: 2},
		Prefetch: true,
		Start:    time.Unix(1700000000, 0),
	}
}

func TestPlayTinyScriptDefaults(t *testing.T) {
	g := script.TinyScript()
	env := &stubEnv{perByte: time.Microsecond, decisions: []bool{true, true}}
	res, err := Play(testConfig(g), env)
	if err != nil {
		t.Fatal(err)
	}
	// Two choices, both default: two type-1 reports, zero type-2.
	if got := len(env.byKind(EventType1)); got != 2 {
		t.Errorf("type-1 reports = %d, want 2", got)
	}
	if got := len(env.byKind(EventType2)); got != 0 {
		t.Errorf("type-2 reports = %d, want 0", got)
	}
	if len(res.Choices) != 2 || !res.Choices[0].TookDefault || !res.Choices[1].TookDefault {
		t.Errorf("choices = %+v", res.Choices)
	}
	wantPath := []script.SegmentID{"Seg0", "S1", "Q2seg", "S2"}
	if len(res.Path.Segments) != len(wantPath) {
		t.Fatalf("path = %v", res.Path.Segments)
	}
	for i := range wantPath {
		if res.Path.Segments[i] != wantPath[i] {
			t.Errorf("path[%d] = %s, want %s", i, res.Path.Segments[i], wantPath[i])
		}
	}
}

func TestPlayNonDefaultEmitsType2(t *testing.T) {
	g := script.TinyScript()
	env := &stubEnv{perByte: time.Microsecond, decisions: []bool{true, false}}
	res, err := Play(testConfig(g), env)
	if err != nil {
		t.Fatal(err)
	}
	t2 := env.byKind(EventType2)
	if len(t2) != 1 {
		t.Fatalf("type-2 reports = %d, want 1", len(t2))
	}
	if t2[0].cp != "Q2seg" || t2[0].sel != "S2'" {
		t.Errorf("type-2 report = %+v", t2[0])
	}
	if last := res.Path.Segments[len(res.Path.Segments)-1]; last != "S2'" {
		t.Errorf("final segment = %s, want S2'", last)
	}
}

func TestType1PrecedesType2AtSameChoice(t *testing.T) {
	g := script.TinyScript()
	env := &stubEnv{perByte: time.Microsecond, decisions: []bool{false, false}}
	if _, err := Play(testConfig(g), env); err != nil {
		t.Fatal(err)
	}
	// Reports alternate: type-1, type-2, type-1, type-2, with each type-2
	// strictly after its type-1.
	var lastType1 time.Time
	for _, r := range env.reports {
		switch r.kind {
		case EventType1:
			lastType1 = r.at
		case EventType2:
			if !r.at.After(lastType1) {
				t.Errorf("type-2 at %v not after its type-1 at %v", r.at, lastType1)
			}
		}
	}
}

func TestDecisionDelayRespected(t *testing.T) {
	g := script.TinyScript()
	env := &stubEnv{perByte: time.Nanosecond, decisions: []bool{false, false}, delayFrac: 0.8}
	res, err := Play(testConfig(g), env)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Choices {
		gap := c.DecidedAt.Sub(c.QuestionAt)
		if gap < 7*time.Second { // 0.8 of the 10s window, minus nothing
			t.Errorf("decision gap %v, want >= ~8s", gap)
		}
	}
}

func TestPrefetchHappensDuringWindow(t *testing.T) {
	g := script.TinyScript()
	env := &stubEnv{perByte: time.Microsecond, decisions: []bool{true, true}, delayFrac: 0.9}
	res, err := Play(testConfig(g), env)
	if err != nil {
		t.Fatal(err)
	}
	if res.Choices[0].PrefetchedChunks == 0 {
		t.Error("no default-branch chunks prefetched during a 9s window")
	}
}

func TestPrefetchDisabled(t *testing.T) {
	g := script.TinyScript()
	cfg := testConfig(g)
	cfg.Prefetch = false
	env := &stubEnv{perByte: time.Microsecond, decisions: []bool{true, true}}
	res, err := Play(cfg, env)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Choices {
		if c.PrefetchedChunks != 0 {
			t.Errorf("prefetched %d chunks with prefetch disabled", c.PrefetchedChunks)
		}
	}
}

func TestDiscardedPrefetchRefetched(t *testing.T) {
	// With a non-default choice, the alternative segment is fetched in
	// full, so total fetches exceed the default-only case.
	g := script.TinyScript()
	envDefault := &stubEnv{perByte: time.Microsecond, decisions: []bool{true, true}, delayFrac: 0.9}
	if _, err := Play(testConfig(g), envDefault); err != nil {
		t.Fatal(err)
	}
	envAlt := &stubEnv{perByte: time.Microsecond, decisions: []bool{false, false}, delayFrac: 0.9}
	if _, err := Play(testConfig(g), envAlt); err != nil {
		t.Fatal(err)
	}
	if envAlt.fetches <= envDefault.fetches-2 {
		t.Errorf("alternative path fetched %d chunks vs %d for default; discarded prefetch not refetched",
			envAlt.fetches, envDefault.fetches)
	}
}

func TestTelemetryFires(t *testing.T) {
	g := script.TinyScript()
	cfg := testConfig(g)
	cfg.TelemetryInterval = 30 * time.Second
	env := &stubEnv{perByte: time.Microsecond, decisions: []bool{true, true}}
	_, err := Play(cfg, env)
	if err != nil {
		t.Fatal(err)
	}
	// TinyScript plays ~8 minutes of content: expect ~16 telemetry events.
	n := len(env.byKind(EventTelemetry))
	if n < 8 {
		t.Errorf("telemetry events = %d, want >= 8 over ~8min", n)
	}
}

func TestBandersnatchFullSession(t *testing.T) {
	g := script.Bandersnatch()
	env := &stubEnv{perByte: 100 * time.Nanosecond,
		decisions: []bool{true, false, false, true, false, true, true, false, true}}
	res, err := Play(testConfig(g), env)
	if err != nil {
		t.Fatal(err)
	}
	last, _ := g.Segment(res.Path.Segments[len(res.Path.Segments)-1])
	if !last.Ending {
		t.Errorf("session did not reach an ending: %s", last.ID)
	}
	if len(env.byKind(EventType1)) != len(res.Choices) {
		t.Errorf("type-1 count %d != choices %d", len(env.byKind(EventType1)), len(res.Choices))
	}
	var nonDefault int
	for _, c := range res.Choices {
		if !c.TookDefault {
			nonDefault++
		}
	}
	if len(env.byKind(EventType2)) != nonDefault {
		t.Errorf("type-2 count %d != non-default choices %d",
			len(env.byKind(EventType2)), nonDefault)
	}
	if res.EndedAt.Before(cfgStart()) {
		t.Error("virtual clock went backwards")
	}
}

func cfgStart() time.Time { return time.Unix(1700000000, 0) }

func TestPlayConfigValidation(t *testing.T) {
	g := script.TinyScript()
	if _, err := Play(Config{}, &stubEnv{}); err == nil {
		t.Error("empty config accepted")
	}
	cfg := testConfig(g)
	cfg.Control = nil
	if _, err := Play(cfg, &stubEnv{}); err == nil {
		t.Error("nil controller accepted")
	}
	cfg = testConfig(g)
	cfg.TelemetryInterval = -time.Second
	if _, err := Play(cfg, &stubEnv{}); err == nil {
		t.Error("negative telemetry interval accepted")
	}
}

func TestVirtualTimeMonotone(t *testing.T) {
	g := script.Bandersnatch()
	env := &stubEnv{perByte: time.Microsecond, decisions: make([]bool, 9)}
	res, err := Play(testConfig(g), env)
	if err != nil {
		t.Fatal(err)
	}
	prev := time.Time{}
	for _, r := range env.reports {
		if r.at.Before(prev) {
			t.Fatalf("report times went backwards: %v then %v", prev, r.at)
		}
		prev = r.at
	}
	if res.EndedAt.Before(prev) {
		t.Error("EndedAt before last report")
	}
}
