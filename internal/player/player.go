// Package player implements the interactive streaming client's state
// machine: chunked segment playback with an ABR controller and buffer,
// the check-pointed choice-question flow the paper describes (type-1
// report when a question appears, default-branch prefetch during the
// ten-second window, type-2 report plus prefetch cancellation when the
// viewer picks the non-default option), and periodic telemetry uploads.
//
// The player is transport-agnostic: an Env implementation supplies chunk
// fetch timing and consumes the client's application writes. The session
// package wires an Env backed by the CDN model and netem; tests wire
// trivial Envs.
package player

import (
	"fmt"
	"time"

	"repro/internal/abr"
	"repro/internal/media"
	"repro/internal/script"
)

// EventKind labels one client-side application event.
type EventKind int

// Event kinds.
const (
	// EventChunkRequest is an ordinary media chunk request.
	EventChunkRequest EventKind = iota
	// EventType1 is the choice-point-reached state report.
	EventType1
	// EventType2 is the non-default-selection state report.
	EventType2
	// EventTelemetry is a periodic playback-quality upload.
	EventTelemetry
)

// String names the kind.
func (k EventKind) String() string {
	switch k {
	case EventChunkRequest:
		return "chunk-request"
	case EventType1:
		return "type-1"
	case EventType2:
		return "type-2"
	case EventTelemetry:
		return "telemetry"
	default:
		return fmt.Sprintf("event(%d)", int(k))
	}
}

// Env is the player's window on the world.
type Env interface {
	// FetchChunk issues a chunk request at now and returns the time the
	// chunk's last byte arrives. Implementations record both the client
	// request write and the server response bytes.
	FetchChunk(now time.Time, c media.Chunk) time.Time
	// SendReport records a client application write of the given kind at
	// now (type-1, type-2 or telemetry; chunk requests are recorded by
	// FetchChunk).
	SendReport(now time.Time, kind EventKind, cp script.SegmentID, sel script.SegmentID, positionMs int64)
	// Decide returns the viewer's decision at a choice question: whether
	// the default branch is taken and the fraction of the window consumed
	// before committing (1.0 = timer expiry).
	Decide(c script.Choice) (tookDefault bool, delayFrac float64)
	// Throughput returns the current downlink estimate in bits/s.
	Throughput() float64
}

// ChoiceRecord is the ground truth for one choice met during playback.
type ChoiceRecord struct {
	At          script.SegmentID
	Question    string
	TookDefault bool
	// QuestionAt is when the question appeared (type-1 sent).
	QuestionAt time.Time
	// DecidedAt is when the decision committed (type-2 sent if
	// non-default).
	DecidedAt time.Time
	// PrefetchedChunks counts default-branch chunks fetched during the
	// window; discarded if the alternative was chosen.
	PrefetchedChunks int
}

// Result summarizes one playback session.
type Result struct {
	Path    script.Path
	Choices []ChoiceRecord
	// Stalls is the total rebuffering time.
	Stalls time.Duration
	// EndedAt is the virtual time playback finished.
	EndedAt time.Time
	// ChunksFetched counts every chunk downloaded, including discarded
	// prefetches.
	ChunksFetched int
}

// Config parameterizes a playback run.
type Config struct {
	Graph    *script.Graph
	Encoding *media.Encoding
	Control  abr.Controller
	// BufferCapacity bounds the client buffer (default 4 minutes).
	BufferCapacity time.Duration
	// TelemetryInterval spaces periodic uploads (default 60s of playback;
	// zero disables).
	TelemetryInterval time.Duration
	// Prefetch enables default-branch prefetching during choice windows
	// (the film's behaviour; disabling it ablates the timing channel).
	Prefetch bool
	// Start is the virtual wall-clock start of the session.
	Start time.Time
}

// Play runs a full interactive session and returns the ground truth.
func Play(cfg Config, env Env) (Result, error) {
	if cfg.Graph == nil || cfg.Encoding == nil {
		return Result{}, fmt.Errorf("player: config needs graph and encoding")
	}
	if cfg.Control == nil {
		return Result{}, fmt.Errorf("player: config needs an ABR controller")
	}
	if cfg.TelemetryInterval < 0 {
		return Result{}, fmt.Errorf("player: negative telemetry interval")
	}

	p := &playback{
		cfg:        cfg,
		env:        env,
		buf:        abr.NewBuffer(cfg.BufferCapacity),
		now:        cfg.Start,
		skipChunks: make(map[script.SegmentID]int),
	}
	cur := cfg.Graph.Start
	var res Result
	for steps := 0; ; steps++ {
		if steps > 10000 {
			return res, fmt.Errorf("player: session exceeded 10000 segments")
		}
		seg, ok := cfg.Graph.Segment(cur)
		if !ok {
			return res, fmt.Errorf("player: missing segment %q", cur)
		}
		res.Path.Segments = append(res.Path.Segments, cur)

		if err := p.streamSegment(seg); err != nil {
			return res, err
		}
		if seg.Ending {
			break
		}
		if seg.Choice == nil {
			cur = seg.Next
			continue
		}

		rec, next, err := p.choicePoint(seg)
		if err != nil {
			return res, err
		}
		res.Choices = append(res.Choices, rec)
		res.Path.Decisions = append(res.Path.Decisions, rec.TookDefault)
		cur = next
	}
	res.Stalls = p.stalls
	res.EndedAt = p.now
	res.ChunksFetched = p.chunks
	return res, nil
}

// playback is the mutable state of one session.
type playback struct {
	cfg            Config
	env            Env
	buf            *abr.Buffer
	now            time.Time
	played         time.Duration // total media time played
	stalls         time.Duration
	chunks         int
	sinceTelemetry time.Duration
	// skipChunks counts prefetched chunks already fetched (and credited)
	// for a segment about to stream, so they are not fetched twice.
	skipChunks map[script.SegmentID]int
}

// streamSegment downloads and plays one segment to completion.
func (p *playback) streamSegment(seg *script.Segment) error {
	chunks, err := p.chunksFor(seg.ID)
	if err != nil {
		return err
	}
	skip := p.skipChunks[seg.ID]
	delete(p.skipChunks, seg.ID)
	for i, c := range chunks {
		if i < skip {
			continue // prefetched during the choice window, already credited
		}
		p.fetchIntoBuffer(c)
	}
	// Play out the segment in real time. The fetch loop (plus prefetch
	// credit) put seg.Duration of media in the buffer.
	p.playOut(seg.Duration)
	return nil
}

// chunksFor selects quality per current conditions and returns the
// segment's chunk list at that quality.
func (p *playback) chunksFor(id script.SegmentID) ([]media.Chunk, error) {
	qi := p.cfg.Control.Select(p.buf, p.env.Throughput())
	return p.cfg.Encoding.Chunks(id, qi)
}

// fetchIntoBuffer downloads one chunk, advancing virtual time to the
// download completion when the buffer cannot absorb more ahead of the
// playhead (steady-state pacing), and crediting the buffer.
func (p *playback) fetchIntoBuffer(c media.Chunk) {
	done := p.env.FetchChunk(p.now, c)
	p.chunks++
	elapsed := done.Sub(p.now)
	if elapsed < 0 {
		elapsed = 0
	}
	// Playback consumes buffer while the download runs.
	p.consume(p.now, elapsed)
	p.now = done
	p.buf.Add(c.Duration)
	// If the buffer is full, the player paces: it waits until one chunk
	// duration drains before the next request.
	if p.buf.Full() {
		p.advance(c.Duration)
	}
}

// playOut drains d of media time in real time.
func (p *playback) playOut(d time.Duration) {
	p.advance(d)
}

// advance moves the wall clock and playhead together by d.
func (p *playback) advance(d time.Duration) {
	if d <= 0 {
		return
	}
	p.now = p.now.Add(d)
	p.consume(p.now.Add(-d), d)
}

// consume drains media from the buffer for the wall-time span
// [start, start+d], charging stalls on underrun, and fires telemetry
// ticks. Ticks are stamped at the instant the interval actually elapsed
// inside the span — not at the span's edge — so a periodic upload lands
// where its timer fired, not wherever the event loop's next stride
// happened to end (which would synchronize it with whatever event closed
// the stride, e.g. a choice point).
func (p *playback) consume(start time.Time, d time.Duration) {
	if d <= 0 {
		return
	}
	stall := p.buf.Drain(d)
	p.stalls += stall
	p.played += d - stall
	if p.cfg.TelemetryInterval > 0 {
		pre := p.sinceTelemetry
		p.sinceTelemetry += d
		for at := start.Add(p.cfg.TelemetryInterval - pre); p.sinceTelemetry >= p.cfg.TelemetryInterval; at = at.Add(p.cfg.TelemetryInterval) {
			p.sinceTelemetry -= p.cfg.TelemetryInterval
			p.env.SendReport(at, EventTelemetry, "", "", p.playedMs())
		}
	}
}

func (p *playback) playedMs() int64 { return p.played.Milliseconds() }

// choicePoint runs the question flow at the end of seg and returns the
// ground-truth record plus the next segment.
func (p *playback) choicePoint(seg *script.Segment) (ChoiceRecord, script.SegmentID, error) {
	c := seg.Choice
	rec := ChoiceRecord{At: seg.ID, Question: c.Question, QuestionAt: p.now}

	// Question appears: the browser posts the type-1 state report.
	p.env.SendReport(p.now, EventType1, seg.ID, "", p.playedMs())

	// The viewer deliberates for delayFrac of the window. Meanwhile the
	// player prefetches the default branch.
	tookDefault, delayFrac := p.env.Decide(*c)
	decideAfter := time.Duration(float64(c.Window) * delayFrac)
	deadline := p.now.Add(decideAfter)

	var prefetched []media.Chunk
	if p.cfg.Prefetch {
		chunks, err := p.chunksFor(c.Default)
		if err != nil {
			return rec, "", err
		}
		for _, ch := range chunks {
			if !p.now.Before(deadline) {
				break
			}
			done := p.env.FetchChunk(p.now, ch)
			p.chunks++
			if done.After(deadline) {
				// The decision lands mid-download; the chunk still
				// completes (bytes were committed to the wire).
				p.now = done
				prefetched = append(prefetched, ch)
				break
			}
			p.now = done
			prefetched = append(prefetched, ch)
		}
	}
	if p.now.Before(deadline) {
		p.now = deadline
	}
	rec.PrefetchedChunks = len(prefetched)
	rec.TookDefault = tookDefault
	rec.DecidedAt = p.now

	if tookDefault {
		// Prefetched chunks are kept: credit them now (they were not
		// credited during the window so a cancel could discard them).
		for _, ch := range prefetched {
			p.buf.Add(ch.Duration)
		}
		// Remaining default chunks stream as part of the segment loop on
		// the next iteration; mark the prefetched prefix as consumed by
		// storing a skip count.
		p.skipChunks[c.Default] = len(prefetched)
		return rec, c.Default, nil
	}

	// Non-default: the browser posts the type-2 report, the prefetched
	// default bytes are discarded, and fetching restarts on Si'.
	p.env.SendReport(p.now, EventType2, seg.ID, c.Alternative, p.playedMs())
	return rec, c.Alternative, nil
}
