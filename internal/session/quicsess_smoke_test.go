package session

import (
	"testing"

	"repro/internal/media"
	"repro/internal/profiles"
	"repro/internal/quicrec"
	"repro/internal/script"
	"repro/internal/viewer"
	"repro/internal/wire"
)

func TestQUICSessionSmoke(t *testing.T) {
	g := script.Bandersnatch()
	enc := media.Encode(g, media.DefaultLadder, 42)
	pop := viewer.SamplePopulation(1, wire.NewRNG(1))
	tr, err := Run(Config{Graph: g, Encoding: enc, Viewer: pop[0],
		Condition: profiles.Fig2Ubuntu, Seed: 42, Transport: quicrec.TransportQUIC,
		OmitServerPayload: false})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("client dgs=%d server dgs=%d writes=%d cbytes=%d sbytes=%d",
		len(tr.ClientToServer.Datagrams), len(tr.ServerToClient.Datagrams),
		len(tr.ClientWrites), len(tr.ClientToServer.Bytes), len(tr.ServerToClient.Bytes))
	// offsets must tile Bytes
	var sum int
	for _, d := range tr.ClientToServer.Datagrams {
		if int(d.Offset) != sum {
			t.Fatalf("client datagram offset %d want %d", d.Offset, sum)
		}
		sum += d.Size
	}
	if sum != len(tr.ClientToServer.Bytes) {
		t.Fatalf("client datagrams cover %d of %d bytes", sum, len(tr.ClientToServer.Bytes))
	}
	sum = 0
	for _, d := range tr.ServerToClient.Datagrams {
		if int(d.Offset) != sum {
			t.Fatalf("server datagram offset %d want %d", d.Offset, sum)
		}
		sum += d.Size
	}
	if sum != len(tr.ServerToClient.Bytes) {
		t.Fatalf("server datagrams cover %d of %d bytes", sum, len(tr.ServerToClient.Bytes))
	}
	for _, w := range tr.ClientWrites {
		if len(w.Records) != 0 || len(w.Datagrams) == 0 {
			t.Fatalf("write %v: records=%d datagrams=%d", w.Label, len(w.Records), len(w.Datagrams))
		}
	}
}
