// Package session orchestrates one complete simulated viewing: a viewer
// with behavioural attributes watches the interactive title under an
// operational condition, the player exchanges chunk requests, state
// reports and media with the CDN across the emulated network, and both
// directions of the TLS byte stream are materialized with per-write
// timestamps. The output Trace carries labeled ground truth (which
// client records are type-1/type-2 and which choices were made) so the
// attack's output can be scored.
package session

import (
	"fmt"
	"time"

	"repro/internal/abr"
	"repro/internal/cdn"
	"repro/internal/media"
	"repro/internal/netem"
	"repro/internal/player"
	"repro/internal/profiles"
	"repro/internal/script"
	"repro/internal/statejson"
	"repro/internal/tlsrec"
	"repro/internal/viewer"
	"repro/internal/wire"
)

// WriteLabel classifies one client-side TLS application write for ground
// truth.
type WriteLabel int

// Write labels.
const (
	LabelHandshake WriteLabel = iota
	LabelRequest
	LabelType1
	LabelType2
	LabelTelemetry
)

// String names the label.
func (l WriteLabel) String() string {
	switch l {
	case LabelHandshake:
		return "handshake"
	case LabelRequest:
		return "request"
	case LabelType1:
		return "type-1"
	case LabelType2:
		return "type-2"
	case LabelTelemetry:
		return "telemetry"
	default:
		return fmt.Sprintf("label(%d)", int(l))
	}
}

// LabeledWrite is one client application write and the TLS records it
// produced.
type LabeledWrite struct {
	Label   WriteLabel
	Time    time.Time
	Plain   int // plaintext bytes handed to TLS
	Records []tlsrec.Record
}

// DirStream is one direction's wire bytes plus the write schedule needed
// to timestamp TCP segments.
type DirStream struct {
	// Bytes is the TLS record byte stream.
	Bytes []byte
	// Writes gives (stream offset, time) checkpoints: bytes at or after
	// Offset were written at Time. Offsets are strictly increasing.
	Writes []WriteMark
}

// WriteMark timestamps a range of stream bytes.
type WriteMark struct {
	Offset int64
	Time   time.Time
}

// TimeAt resolves the write time covering stream offset off.
func (d *DirStream) TimeAt(off int64) time.Time {
	// Binary search for the last mark with Offset <= off.
	lo, hi := 0, len(d.Writes)
	for lo < hi {
		mid := (lo + hi) / 2
		if d.Writes[mid].Offset <= off {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		if len(d.Writes) > 0 {
			return d.Writes[0].Time
		}
		return time.Time{}
	}
	return d.Writes[lo-1].Time
}

// mark appends a write checkpoint.
func (d *DirStream) mark(off int64, t time.Time) {
	d.Writes = append(d.Writes, WriteMark{Offset: off, Time: t})
}

// Trace is the full observable output of one session plus ground truth.
type Trace struct {
	Viewer    viewer.Viewer
	Condition profiles.Condition
	Profile   profiles.Profile
	SessionID string

	ClientToServer DirStream
	ServerToClient DirStream

	// ClientWrites is the labeled ground truth of every client
	// application write, in time order.
	ClientWrites []LabeledWrite
	// ServerRecords is the ground-truth record sequence of the server
	// direction — identical to what parsing ServerToClient.Bytes recovers,
	// but available even when the payload was not materialized
	// (Config.OmitServerPayload).
	ServerRecords []tlsrec.Record
	// Result is the player-level ground truth (path, choices, stalls).
	Result player.Result
}

// GroundTruthDecisions extracts the decision vector (true = default).
func (t *Trace) GroundTruthDecisions() []bool {
	return append([]bool(nil), t.Result.Path.Decisions...)
}

// Config parameterizes a session run.
type Config struct {
	Graph     *script.Graph
	Encoding  *media.Encoding
	Viewer    viewer.Viewer
	Condition profiles.Condition
	SessionID string
	Seed      uint64
	// Controller overrides the default buffer-based ABR rule.
	Controller abr.Controller
	// TelemetryInterval spaces telemetry uploads (default 60s; negative
	// disables).
	TelemetryInterval time.Duration
	// DisablePrefetch turns off default-branch prefetching (ablation).
	DisablePrefetch bool
	// Start is the virtual session start (default a fixed epoch so runs
	// are reproducible).
	Start time.Time
	// Defense, when non-nil, transforms client application writes before
	// encryption (countermeasure evaluation). It returns the possibly
	// split plaintext sizes to write.
	Defense func(label WriteLabel, plain int) []int
	// OmitServerPayload skips materializing the server direction's byte
	// stream (tens of megabytes of opaque media bodies per session); the
	// trace still carries exact offsets, timings and ServerRecords.
	// Profiling and experiment workloads that never serialize the trace to
	// pcap set this — it removes the dominant memory cost of a session.
	OmitServerPayload bool
	// RecordVersion selects the TLS record-layer generation both
	// directions speak. The zero value is RecordTLS12 — the stack the
	// paper measured in 2019. RecordTLS13 swaps the condition profile's
	// suite for its 1.3 equivalent (profiles.Profile.ForVersion) and
	// synthesizes RFC 8446 framing: hellos in the clear, a dummy
	// ChangeCipherSpec, and every later record as outer application_data.
	RecordVersion tlsrec.RecordVersion
	// Padding applies an RFC 8446 record-padding policy to every
	// protected record in both directions (TLS 1.3 only; 1.2 has no such
	// mechanism and ignores it). Random policies draw from dedicated
	// seeded streams, so lean and full runs stay byte-identical.
	Padding tlsrec.PaddingPolicy
}

// Run simulates one session.
func Run(cfg Config) (*Trace, error) {
	if cfg.Graph == nil {
		return nil, fmt.Errorf("session: config needs a graph")
	}
	if cfg.Encoding == nil {
		return nil, fmt.Errorf("session: config needs an encoding")
	}
	if cfg.SessionID == "" {
		cfg.SessionID = "session-1"
	}
	if cfg.Start.IsZero() {
		cfg.Start = time.Unix(1735689600, 0) // 2025-01-01T00:00:00Z epoch for traces
	}
	prof := profiles.Lookup(cfg.Condition).ForVersion(cfg.RecordVersion)
	recVer := cfg.RecordVersion.WireVersion()
	rng := wire.NewRNG(cfg.Seed)

	// Stream buffers. The client direction is small and always pooled.
	// The server direction carries tens of megabytes of opaque media
	// bodies: lean sessions skip materializing it entirely (a discard
	// Writer keeps the offsets exact), full-fidelity sessions borrow a
	// pooled arena and the trace keeps an exact-size copy.
	cBuf := wire.GetWriter(1 << 20)
	defer wire.PutWriter(cBuf)
	var sBuf *wire.Writer
	if cfg.OmitServerPayload {
		sBuf = wire.NewDiscardWriter()
	} else {
		sBuf = wire.GetWriter(20 << 20)
		defer wire.PutWriter(sBuf)
	}

	env := &simEnv{
		trace: &Trace{
			Viewer:    cfg.Viewer,
			Condition: cfg.Condition,
			Profile:   prof,
			SessionID: cfg.SessionID,
			// A typical walk meets ~50-150 labeled writes.
			ClientWrites: make([]LabeledWrite, 0, 96),
		},
		server:   cdn.New(cfg.Graph, cfg.Encoding),
		builder:  statejson.NewBuilder(prof, cfg.Graph.Title, cfg.SessionID, rng.Fork(1)),
		uplink:   netem.NewPath(prof.Net, rng.Fork(2)),
		downlink: netem.NewPath(prof.Net, rng.Fork(3)),
		cEnc:     tlsrec.NewEncryptor(prof.Suite, prof.Splitter, recVer, rng.Fork(4)),
		// The server direction carries megabytes of media; its bodies are
		// opaque to every analysis (only lengths and timing are used), so
		// they are zero-filled (nil rng) to keep simulation fast.
		sEnc:    tlsrec.NewEncryptor(prof.Suite, prof.Splitter, recVer, nil),
		viewer:  cfg.Viewer,
		decider: rng.Fork(6),
		defense: cfg.Defense,
		cBuf:    cBuf,
		sBuf:    sBuf,
	}
	env.sEnc.Server = true
	if cfg.RecordVersion == tlsrec.RecordTLS13 {
		// Padding draws come from dedicated streams so the RNG consumption
		// of the session model itself is untouched by the policy.
		env.cEnc.SetPadding(cfg.Padding, rng.Fork(7))
		env.sEnc.SetPadding(cfg.Padding, rng.Fork(8))
	}

	// TLS handshake opens the connection.
	env.handshake(cfg.Start, prof.ClientHelloLen)

	controller := cfg.Controller
	if controller == nil {
		controller = &abr.BufferRule{Ladder: cfg.Encoding.Ladder}
	}
	telemetry := cfg.TelemetryInterval
	if telemetry == 0 {
		telemetry = 60 * time.Second
	}
	if telemetry < 0 {
		telemetry = 0
	}

	res, err := player.Play(player.Config{
		Graph:             cfg.Graph,
		Encoding:          cfg.Encoding,
		Control:           controller,
		TelemetryInterval: telemetry,
		Prefetch:          !cfg.DisablePrefetch,
		Start:             cfg.Start.Add(200 * time.Millisecond), // after handshake
	}, env)
	if err != nil {
		return nil, err
	}
	env.trace.Result = res
	env.trace.ClientToServer.Bytes = env.cBuf.CopyBytes()
	env.trace.ServerToClient.Bytes = env.sBuf.CopyBytes()
	return env.trace, nil
}

// simEnv implements player.Env against the CDN/netem/TLS models.
type simEnv struct {
	trace    *Trace
	server   *cdn.Server
	builder  *statejson.Builder
	uplink   *netem.Path
	downlink *netem.Path
	cEnc     *tlsrec.Encryptor
	sEnc     *tlsrec.Encryptor
	viewer   viewer.Viewer
	decider  *wire.RNG
	defense  func(WriteLabel, int) []int
	est      abr.ThroughputEstimator

	cBuf *wire.Writer
	sBuf *wire.Writer
}

// handshake writes both directions' handshake transcripts.
func (e *simEnv) handshake(t time.Time, helloLen int) {
	e.trace.ClientToServer.mark(int64(e.cBuf.Len()), t)
	recs := e.cEnc.HandshakeTranscript(e.cBuf, t, helloLen)
	e.trace.ClientWrites = append(e.trace.ClientWrites, LabeledWrite{
		Label: LabelHandshake, Time: t, Plain: helloLen, Records: recs,
	})
	// Server side: ServerHello+cert chain (~3700B), CCS, Finished.
	st := t.Add(e.downlink.RTT() / 2)
	e.trace.ServerToClient.mark(int64(e.sBuf.Len()), st)
	srecs := e.sEnc.HandshakeTranscript(e.sBuf, st, 3700)
	e.trace.ServerRecords = append(e.trace.ServerRecords, srecs...)
}

// writeClient encrypts one client application write, with the defense
// transform applied if configured.
func (e *simEnv) writeClient(t time.Time, label WriteLabel, plain int) {
	e.trace.ClientToServer.mark(int64(e.cBuf.Len()), t)
	var recs []tlsrec.Record
	if e.defense == nil {
		recs = e.cEnc.WriteApplicationData(e.cBuf, t, plain)
	} else {
		for _, n := range e.defense(label, plain) {
			recs = append(recs, e.cEnc.WriteApplicationData(e.cBuf, t, n)...)
		}
	}
	e.trace.ClientWrites = append(e.trace.ClientWrites, LabeledWrite{
		Label: label, Time: t, Plain: plain, Records: recs,
	})
}

// FetchChunk implements player.Env: request upstream, response downstream.
func (e *simEnv) FetchChunk(now time.Time, c media.Chunk) time.Time {
	// Client request.
	reqBody := e.builder.RequestBody()
	reqArrive := e.uplink.Transfer(now, len(reqBody)+60) // + TCP/IP headers
	e.writeClient(now, LabelRequest, len(reqBody))

	// Server response: chunk bytes stream down the bottleneck link.
	respSize := e.server.ChunkResponseSize(c)
	respStart := reqArrive
	e.trace.ServerToClient.mark(int64(e.sBuf.Len()), respStart)
	srecs := e.sEnc.WriteApplicationData(e.sBuf, respStart, respSize)
	e.trace.ServerRecords = append(e.trace.ServerRecords, srecs...)
	done := e.downlink.Transfer(respStart, respSize)
	e.est.Observe(respSize, done.Sub(now))
	return done
}

// SendReport implements player.Env for type-1/type-2/telemetry writes.
func (e *simEnv) SendReport(now time.Time, kind player.EventKind, cp, sel script.SegmentID, positionMs int64) {
	switch kind {
	case player.EventType1:
		body, _, err := e.builder.Type1(cp, positionMs)
		if err != nil {
			panic(fmt.Sprintf("session: type-1 synthesis: %v", err))
		}
		if _, err := e.server.HandleReport(body); err != nil {
			panic(fmt.Sprintf("session: server rejected type-1: %v", err))
		}
		e.writeClient(now, LabelType1, len(body))
		e.uplink.Transfer(now, len(body)+60)
	case player.EventType2:
		body, _, err := e.builder.Type2(cp, sel, positionMs)
		if err != nil {
			panic(fmt.Sprintf("session: type-2 synthesis: %v", err))
		}
		if _, err := e.server.HandleReport(body); err != nil {
			panic(fmt.Sprintf("session: server rejected type-2: %v", err))
		}
		e.writeClient(now, LabelType2, len(body))
		e.uplink.Transfer(now, len(body)+60)
	case player.EventTelemetry:
		body := e.builder.TelemetryBody()
		e.writeClient(now, LabelTelemetry, len(body))
		e.uplink.Transfer(now, len(body)+60)
	default:
		panic(fmt.Sprintf("session: unexpected report kind %v", kind))
	}
}

// Decide implements player.Env via the viewer behavioural model.
func (e *simEnv) Decide(c script.Choice) (bool, float64) {
	return viewer.Decide(e.viewer, c, e.decider)
}

// Throughput implements player.Env.
func (e *simEnv) Throughput() float64 {
	if t := e.est.Estimate(); t > 0 {
		return t
	}
	return e.uplink.Params.BandwidthBps
}
