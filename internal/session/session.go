// Package session orchestrates one complete simulated viewing: a viewer
// with behavioural attributes watches the interactive title under an
// operational condition, the player exchanges chunk requests, state
// reports and media with the CDN across the emulated network, and both
// directions of the TLS byte stream are materialized with per-write
// timestamps. The output Trace carries labeled ground truth (which
// client records are type-1/type-2 and which choices were made) so the
// attack's output can be scored.
package session

import (
	"fmt"
	"time"

	"repro/internal/abr"
	"repro/internal/cdn"
	"repro/internal/media"
	"repro/internal/netem"
	"repro/internal/player"
	"repro/internal/profiles"
	"repro/internal/quicrec"
	"repro/internal/script"
	"repro/internal/statejson"
	"repro/internal/tlsrec"
	"repro/internal/viewer"
	"repro/internal/wire"
)

// WriteLabel classifies one client-side TLS application write for ground
// truth.
type WriteLabel int

// Write labels.
const (
	LabelHandshake WriteLabel = iota
	LabelRequest
	LabelType1
	LabelType2
	LabelTelemetry
)

// String names the label.
func (l WriteLabel) String() string {
	switch l {
	case LabelHandshake:
		return "handshake"
	case LabelRequest:
		return "request"
	case LabelType1:
		return "type-1"
	case LabelType2:
		return "type-2"
	case LabelTelemetry:
		return "telemetry"
	default:
		return fmt.Sprintf("label(%d)", int(l))
	}
}

// LabeledWrite is one client application write and the wire units it
// produced: TLS records over TCP, QUIC datagrams over UDP. Exactly one of
// Records and Datagrams is populated, per the session's transport.
type LabeledWrite struct {
	Label   WriteLabel
	Time    time.Time
	Plain   int // plaintext bytes handed to TLS
	Records []tlsrec.Record
	// Datagrams is the write's UDP datagram burst (TransportQUIC only),
	// including any dummy datagrams a random-padding sizing policy added —
	// the burst-level ground truth the attack trains on.
	Datagrams []quicrec.Datagram
}

// DirStream is one direction's wire bytes plus the write schedule needed
// to timestamp TCP segments (or, for QUIC, the datagram boundaries needed
// to frame UDP packets).
type DirStream struct {
	// Bytes is the TLS record byte stream (TCP) or the concatenated QUIC
	// packet bytes (QUIC).
	Bytes []byte
	// Writes gives (stream offset, time) checkpoints: bytes at or after
	// Offset were written at Time. Offsets are strictly increasing.
	Writes []WriteMark
	// Datagrams frames Bytes into UDP datagrams (TransportQUIC only; nil
	// for TCP). Each descriptor's Offset/Size addresses a contiguous span
	// of Bytes and its Time is the datagram's send instant — capture emits
	// exactly one UDP frame per entry. Includes handshake flights and
	// ack-only datagrams, in send order.
	Datagrams []quicrec.Datagram
}

// WriteMark timestamps a range of stream bytes.
type WriteMark struct {
	Offset int64
	Time   time.Time
}

// TimeAt resolves the write time covering stream offset off.
func (d *DirStream) TimeAt(off int64) time.Time {
	// Binary search for the last mark with Offset <= off.
	lo, hi := 0, len(d.Writes)
	for lo < hi {
		mid := (lo + hi) / 2
		if d.Writes[mid].Offset <= off {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		if len(d.Writes) > 0 {
			return d.Writes[0].Time
		}
		return time.Time{}
	}
	return d.Writes[lo-1].Time
}

// mark appends a write checkpoint.
func (d *DirStream) mark(off int64, t time.Time) {
	d.Writes = append(d.Writes, WriteMark{Offset: off, Time: t})
}

// Trace is the full observable output of one session plus ground truth.
type Trace struct {
	Viewer    viewer.Viewer
	Condition profiles.Condition
	Profile   profiles.Profile
	SessionID string
	// Transport records which wire transport the session spoke; the zero
	// value is TransportTCP (TLS records over TCP).
	Transport quicrec.Transport

	ClientToServer DirStream
	ServerToClient DirStream

	// ClientWrites is the labeled ground truth of every client
	// application write, in time order.
	ClientWrites []LabeledWrite
	// ServerRecords is the ground-truth record sequence of the server
	// direction — identical to what parsing ServerToClient.Bytes recovers,
	// but available even when the payload was not materialized
	// (Config.OmitServerPayload).
	ServerRecords []tlsrec.Record
	// Result is the player-level ground truth (path, choices, stalls).
	Result player.Result
}

// GroundTruthDecisions extracts the decision vector (true = default).
func (t *Trace) GroundTruthDecisions() []bool {
	return append([]bool(nil), t.Result.Path.Decisions...)
}

// Release drops the trace's materialized wire data — both directions'
// byte streams, write schedules, datagram frames, the labeled client
// writes and the server record ground truth — so the memory (tens of
// megabytes per full-fidelity session) can be reclaimed the moment a
// consumer has serialized or scored the trace. The player-level ground
// truth (Result, GroundTruthDecisions) and the identity fields survive,
// which is exactly what corpus sidecar metadata needs after the pcap has
// been flushed. Streaming consumers (dataset.GenerateTo) call this per
// point to hold resident memory constant in corpus size; a released
// trace cannot be serialized again.
func (t *Trace) Release() {
	t.ClientToServer = DirStream{}
	t.ServerToClient = DirStream{}
	t.ClientWrites = nil
	t.ServerRecords = nil
}

// Config parameterizes a session run.
type Config struct {
	Graph     *script.Graph
	Encoding  *media.Encoding
	Viewer    viewer.Viewer
	Condition profiles.Condition
	SessionID string
	Seed      uint64
	// Controller overrides the default buffer-based ABR rule.
	Controller abr.Controller
	// TelemetryInterval spaces telemetry uploads (default 60s; negative
	// disables).
	TelemetryInterval time.Duration
	// DisablePrefetch turns off default-branch prefetching (ablation).
	DisablePrefetch bool
	// Start is the virtual session start (default a fixed epoch so runs
	// are reproducible).
	Start time.Time
	// Defense, when non-nil, transforms client application writes before
	// encryption (countermeasure evaluation). It returns the possibly
	// split plaintext sizes to write.
	Defense func(label WriteLabel, plain int) []int
	// OmitServerPayload skips materializing the server direction's byte
	// stream (tens of megabytes of opaque media bodies per session); the
	// trace still carries exact offsets, timings and ServerRecords.
	// Profiling and experiment workloads that never serialize the trace to
	// pcap set this — it removes the dominant memory cost of a session.
	OmitServerPayload bool
	// RecordVersion selects the TLS record-layer generation both
	// directions speak. The zero value is RecordTLS12 — the stack the
	// paper measured in 2019. RecordTLS13 swaps the condition profile's
	// suite for its 1.3 equivalent (profiles.Profile.ForVersion) and
	// synthesizes RFC 8446 framing: hellos in the clear, a dummy
	// ChangeCipherSpec, and every later record as outer application_data.
	RecordVersion tlsrec.RecordVersion
	// Padding applies an RFC 8446 record-padding policy to every
	// protected record in both directions (TLS 1.3 only; 1.2 has no such
	// mechanism and ignores it). Random policies draw from dedicated
	// seeded streams, so lean and full runs stay byte-identical.
	Padding tlsrec.PaddingPolicy
	// Transport selects the wire transport. The zero value is
	// TransportTCP — TLS records over TCP, the stack the paper measured.
	// TransportQUIC replaces the record layer with QUIC v1 datagrams over
	// UDP (quicrec): record boundaries disappear, the condition profile
	// shifts for HTTP/3 framing (profiles.Profile.ForTransport), and
	// RecordVersion/Padding are ignored — QUIC's protection is always
	// 1.3-style and sizing defenses are expressed via Sizing instead.
	Transport quicrec.Transport
	// Sizing is the QUIC datagram-sizing policy (TransportQUIC only).
	// The zero value is the default 1350-byte cap; padding policies model
	// datagram-level defenses the way Padding does for TLS 1.3 records.
	Sizing quicrec.SizingPolicy
}

// Run simulates one session.
func Run(cfg Config) (*Trace, error) {
	if cfg.Graph == nil {
		return nil, fmt.Errorf("session: config needs a graph")
	}
	if cfg.Encoding == nil {
		return nil, fmt.Errorf("session: config needs an encoding")
	}
	if cfg.SessionID == "" {
		cfg.SessionID = "session-1"
	}
	if cfg.Start.IsZero() {
		cfg.Start = time.Unix(1735689600, 0) // 2025-01-01T00:00:00Z epoch for traces
	}
	prof := profiles.Lookup(cfg.Condition).ForVersion(cfg.RecordVersion).ForTransport(cfg.Transport)
	recVer := cfg.RecordVersion.WireVersion()
	rng := wire.NewRNG(cfg.Seed)

	// Stream buffers. The client direction is small and always pooled.
	// The server direction carries tens of megabytes of opaque media
	// bodies: lean sessions skip materializing it entirely (a discard
	// Writer keeps the offsets exact), full-fidelity sessions borrow a
	// pooled arena and the trace keeps an exact-size copy.
	cBuf := wire.GetWriter(1 << 20)
	defer wire.PutWriter(cBuf)
	var sBuf *wire.Writer
	if cfg.OmitServerPayload {
		sBuf = wire.NewDiscardWriter()
	} else {
		sBuf = wire.GetWriter(20 << 20)
		defer wire.PutWriter(sBuf)
	}

	env := &simEnv{
		trace: &Trace{
			Viewer:    cfg.Viewer,
			Condition: cfg.Condition,
			Profile:   prof,
			SessionID: cfg.SessionID,
			Transport: cfg.Transport,
			// A typical walk meets ~50-150 labeled writes.
			ClientWrites: make([]LabeledWrite, 0, 96),
		},
		server:   cdn.New(cfg.Graph, cfg.Encoding),
		builder:  statejson.NewBuilder(prof, cfg.Graph.Title, cfg.SessionID, rng.Fork(1)),
		uplink:   netem.NewPath(prof.Net, rng.Fork(2)),
		downlink: netem.NewPath(prof.Net, rng.Fork(3)),
		cEnc:     tlsrec.NewEncryptor(prof.Suite, prof.Splitter, recVer, rng.Fork(4)),
		// The server direction carries megabytes of media; its bodies are
		// opaque to every analysis (only lengths and timing are used), so
		// they are zero-filled (nil rng) to keep simulation fast.
		sEnc:    tlsrec.NewEncryptor(prof.Suite, prof.Splitter, recVer, nil),
		viewer:  cfg.Viewer,
		decider: rng.Fork(6),
		defense: cfg.Defense,
		cBuf:    cBuf,
		sBuf:    sBuf,
	}
	env.sEnc.Server = true
	if cfg.RecordVersion == tlsrec.RecordTLS13 {
		// Padding draws come from dedicated streams so the RNG consumption
		// of the session model itself is untouched by the policy.
		env.cEnc.SetPadding(cfg.Padding, rng.Fork(7))
		env.sEnc.SetPadding(cfg.Padding, rng.Fork(8))
	}
	if cfg.Transport == quicrec.TransportQUIC {
		// QUIC endpoints draw from forks 9 and 10, past every label the
		// TCP path consumes, so adding the transport cannot perturb any
		// existing seeded stream.
		env.transport = quicrec.TransportQUIC
		env.cQ = quicrec.NewConn(quicrec.Params{Sizing: cfg.Sizing}, false, rng.Fork(9))
		env.sQ = quicrec.NewConn(quicrec.Params{Sizing: cfg.Sizing}, true, rng.Fork(10))
	}

	// TLS handshake opens the connection.
	env.handshake(cfg.Start, prof.ClientHelloLen)

	controller := cfg.Controller
	if controller == nil {
		controller = &abr.BufferRule{Ladder: cfg.Encoding.Ladder}
	}
	telemetry := cfg.TelemetryInterval
	if telemetry == 0 {
		telemetry = 60 * time.Second
	}
	if telemetry < 0 {
		telemetry = 0
	}

	res, err := player.Play(player.Config{
		Graph:             cfg.Graph,
		Encoding:          cfg.Encoding,
		Control:           controller,
		TelemetryInterval: telemetry,
		Prefetch:          !cfg.DisablePrefetch,
		Start:             cfg.Start.Add(200 * time.Millisecond), // after handshake
	}, env)
	if err != nil {
		return nil, err
	}
	env.trace.Result = res
	env.trace.ClientToServer.Bytes = env.cBuf.CopyBytes()
	env.trace.ServerToClient.Bytes = env.sBuf.CopyBytes()
	return env.trace, nil
}

// simEnv implements player.Env against the CDN/netem/TLS models.
type simEnv struct {
	trace    *Trace
	server   *cdn.Server
	builder  *statejson.Builder
	uplink   *netem.Path
	downlink *netem.Path
	cEnc     *tlsrec.Encryptor
	sEnc     *tlsrec.Encryptor
	viewer   viewer.Viewer
	decider  *wire.RNG
	defense  func(WriteLabel, int) []int
	est      abr.ThroughputEstimator

	// QUIC mode: when transport is TransportQUIC, cQ/sQ replace cEnc/sEnc
	// as the wire synthesizers and the encryptors go unused.
	transport quicrec.Transport
	cQ, sQ    *quicrec.Conn

	cBuf *wire.Writer
	sBuf *wire.Writer
}

// appendClientDGs back-computes stream offsets for datagrams just written
// to cBuf and records them in the client direction's frame schedule.
func (e *simEnv) appendClientDGs(dgs []quicrec.Datagram) []quicrec.Datagram {
	stampOffsets(dgs, int64(e.cBuf.Len()))
	e.trace.ClientToServer.Datagrams = append(e.trace.ClientToServer.Datagrams, dgs...)
	return dgs
}

// appendServerDGs is the server-direction counterpart. Descriptors are
// kept even in lean mode (a discard writer still advances Len), exactly
// as ServerRecords survives OmitServerPayload on the TCP path.
func (e *simEnv) appendServerDGs(dgs []quicrec.Datagram) []quicrec.Datagram {
	stampOffsets(dgs, int64(e.sBuf.Len()))
	e.trace.ServerToClient.Datagrams = append(e.trace.ServerToClient.Datagrams, dgs...)
	return dgs
}

// stampOffsets assigns each datagram its stream offset, given the buffer
// length measured after the whole run was written.
func stampOffsets(dgs []quicrec.Datagram, end int64) {
	off := end
	for i := len(dgs) - 1; i >= 0; i-- {
		off -= int64(dgs[i].Size)
		dgs[i].Offset = off
	}
}

// clientAck emits one ack-only client datagram (never a labeled write).
func (e *simEnv) clientAck(t time.Time) {
	d := e.cQ.WriteAck(e.cBuf, t)
	e.appendClientDGs([]quicrec.Datagram{d})
}

// serverAck emits one ack-only server datagram.
func (e *simEnv) serverAck(t time.Time) {
	d := e.sQ.WriteAck(e.sBuf, t)
	e.appendServerDGs([]quicrec.Datagram{d})
}

// lerpTime spreads item i of n across [start, start+span].
func lerpTime(start time.Time, span time.Duration, i, n int) time.Time {
	if n <= 1 {
		return start.Add(span)
	}
	return start.Add(span * time.Duration(i+1) / time.Duration(n))
}

// handshake writes both directions' handshake transcripts.
func (e *simEnv) handshake(t time.Time, helloLen int) {
	if e.transport == quicrec.TransportQUIC {
		e.quicHandshake(t, helloLen)
		return
	}
	e.trace.ClientToServer.mark(int64(e.cBuf.Len()), t)
	recs := e.cEnc.HandshakeTranscript(e.cBuf, t, helloLen)
	e.trace.ClientWrites = append(e.trace.ClientWrites, LabeledWrite{
		Label: LabelHandshake, Time: t, Plain: helloLen, Records: recs,
	})
	// Server side: ServerHello+cert chain (~3700B), CCS, Finished.
	st := t.Add(e.downlink.RTT() / 2)
	e.trace.ServerToClient.mark(int64(e.sBuf.Len()), st)
	srecs := e.sEnc.HandshakeTranscript(e.sBuf, st, 3700)
	e.trace.ServerRecords = append(e.trace.ServerRecords, srecs...)
}

// quicHandshake exchanges both QUIC handshake flights: the client's
// padded Initial and the server's coalesced Initial+Handshake response.
// Long-header datagrams are the attack's cue to skip the handshake, the
// QUIC analogue of skipping records until ChangeCipherSpec.
func (e *simEnv) quicHandshake(t time.Time, helloLen int) {
	e.trace.ClientToServer.mark(int64(e.cBuf.Len()), t)
	dgs := e.appendClientDGs(e.cQ.HandshakeTranscript(e.cBuf, t, helloLen))
	e.trace.ClientWrites = append(e.trace.ClientWrites, LabeledWrite{
		Label: LabelHandshake, Time: t, Plain: helloLen, Datagrams: dgs,
	})
	st := t.Add(e.downlink.RTT() / 2)
	e.trace.ServerToClient.mark(int64(e.sBuf.Len()), st)
	e.appendServerDGs(e.sQ.HandshakeTranscript(e.sBuf, st, 3700))
	// Client acks the server flight; the connection is now 1-RTT.
	e.clientAck(st.Add(e.uplink.RTT() / 2))
}

// writeClient encrypts one client application write, with the defense
// transform applied if configured.
func (e *simEnv) writeClient(t time.Time, label WriteLabel, plain int) {
	e.trace.ClientToServer.mark(int64(e.cBuf.Len()), t)
	if e.transport == quicrec.TransportQUIC {
		var dgs []quicrec.Datagram
		if e.defense == nil {
			dgs = e.cQ.WriteApplicationData(e.cBuf, t, plain)
		} else {
			for _, n := range e.defense(label, plain) {
				dgs = append(dgs, e.cQ.WriteApplicationData(e.cBuf, t, n)...)
			}
		}
		dgs = e.appendClientDGs(dgs)
		e.trace.ClientWrites = append(e.trace.ClientWrites, LabeledWrite{
			Label: label, Time: t, Plain: plain, Datagrams: dgs,
		})
		// The server acks the flight half an RTT out.
		e.serverAck(t.Add(e.downlink.RTT() / 2))
		return
	}
	var recs []tlsrec.Record
	if e.defense == nil {
		recs = e.cEnc.WriteApplicationData(e.cBuf, t, plain)
	} else {
		for _, n := range e.defense(label, plain) {
			recs = append(recs, e.cEnc.WriteApplicationData(e.cBuf, t, n)...)
		}
	}
	e.trace.ClientWrites = append(e.trace.ClientWrites, LabeledWrite{
		Label: label, Time: t, Plain: plain, Records: recs,
	})
}

// FetchChunk implements player.Env: request upstream, response downstream.
func (e *simEnv) FetchChunk(now time.Time, c media.Chunk) time.Time {
	// Client request.
	reqBody := e.builder.RequestBody()
	reqArrive := e.uplink.Transfer(now, len(reqBody)+60) // + TCP/IP headers
	e.writeClient(now, LabelRequest, len(reqBody))

	// Server response: chunk bytes stream down the bottleneck link.
	respSize := e.server.ChunkResponseSize(c)
	respStart := reqArrive
	e.trace.ServerToClient.mark(int64(e.sBuf.Len()), respStart)
	if e.transport == quicrec.TransportQUIC {
		dgs := e.sQ.WriteApplicationData(e.sBuf, respStart, respSize)
		done := e.downlink.Transfer(respStart, respSize)
		// Datagram departures pace the bottleneck link: restamp the
		// synthesizer's nominal spacing across the transfer window.
		span := done.Sub(respStart)
		for i := range dgs {
			dgs[i].Time = lerpTime(respStart, span, i, len(dgs))
		}
		dgs = e.appendServerDGs(dgs)
		// The client acks roughly every tenth datagram of the download.
		for i := 9; i < len(dgs); i += 10 {
			e.clientAck(dgs[i].Time.Add(e.uplink.RTT() / 2))
		}
		e.est.Observe(respSize, done.Sub(now))
		return done
	}
	srecs := e.sEnc.WriteApplicationData(e.sBuf, respStart, respSize)
	e.trace.ServerRecords = append(e.trace.ServerRecords, srecs...)
	done := e.downlink.Transfer(respStart, respSize)
	e.est.Observe(respSize, done.Sub(now))
	return done
}

// SendReport implements player.Env for type-1/type-2/telemetry writes.
func (e *simEnv) SendReport(now time.Time, kind player.EventKind, cp, sel script.SegmentID, positionMs int64) {
	switch kind {
	case player.EventType1:
		body, _, err := e.builder.Type1(cp, positionMs)
		if err != nil {
			panic(fmt.Sprintf("session: type-1 synthesis: %v", err))
		}
		if _, err := e.server.HandleReport(body); err != nil {
			panic(fmt.Sprintf("session: server rejected type-1: %v", err))
		}
		e.writeClient(now, LabelType1, len(body))
		e.uplink.Transfer(now, len(body)+60)
	case player.EventType2:
		body, _, err := e.builder.Type2(cp, sel, positionMs)
		if err != nil {
			panic(fmt.Sprintf("session: type-2 synthesis: %v", err))
		}
		if _, err := e.server.HandleReport(body); err != nil {
			panic(fmt.Sprintf("session: server rejected type-2: %v", err))
		}
		e.writeClient(now, LabelType2, len(body))
		e.uplink.Transfer(now, len(body)+60)
	case player.EventTelemetry:
		body := e.builder.TelemetryBody()
		e.writeClient(now, LabelTelemetry, len(body))
		e.uplink.Transfer(now, len(body)+60)
	default:
		panic(fmt.Sprintf("session: unexpected report kind %v", kind))
	}
}

// Decide implements player.Env via the viewer behavioural model.
func (e *simEnv) Decide(c script.Choice) (bool, float64) {
	return viewer.Decide(e.viewer, c, e.decider)
}

// Throughput implements player.Env.
func (e *simEnv) Throughput() float64 {
	if t := e.est.Estimate(); t > 0 {
		return t
	}
	return e.uplink.Params.BandwidthBps
}
