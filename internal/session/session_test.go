package session

import (
	"testing"
	"time"

	"repro/internal/media"
	"repro/internal/profiles"
	"repro/internal/script"
	"repro/internal/statejson"
	"repro/internal/tlsrec"
	"repro/internal/viewer"
	"repro/internal/wire"
)

func testTrace(t *testing.T, seed uint64, cond profiles.Condition) *Trace {
	t.Helper()
	g := script.Bandersnatch()
	enc := media.Encode(g, media.DefaultLadder, 42)
	pop := viewer.SamplePopulation(1, wire.NewRNG(seed))
	tr, err := Run(Config{
		Graph:     g,
		Encoding:  enc,
		Viewer:    pop[0],
		Condition: cond,
		SessionID: "t-sess",
		Seed:      seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestRunProducesBothStreams(t *testing.T) {
	tr := testTrace(t, 1, profiles.Fig2Ubuntu)
	if len(tr.ClientToServer.Bytes) == 0 || len(tr.ServerToClient.Bytes) == 0 {
		t.Fatal("empty stream(s)")
	}
	// Server direction must dwarf the client direction (video download).
	if len(tr.ServerToClient.Bytes) < 10*len(tr.ClientToServer.Bytes) {
		t.Errorf("s2c %d bytes vs c2s %d: media volume implausible",
			len(tr.ServerToClient.Bytes), len(tr.ClientToServer.Bytes))
	}
}

func TestClientStreamParsesAsTLS(t *testing.T) {
	tr := testTrace(t, 2, profiles.Fig2Ubuntu)
	recs, rest, err := tlsrec.ParseStream(tr.ClientToServer.Bytes, tr.ClientToServer.TimeAt)
	if err != nil {
		t.Fatal(err)
	}
	if rest != 0 {
		t.Errorf("unparsed client bytes: %d", rest)
	}
	if len(recs) < 10 {
		t.Errorf("client records = %d, implausibly few", len(recs))
	}
	// First record is a handshake record.
	if recs[0].Type != tlsrec.ContentHandshake {
		t.Errorf("first record type = %v", recs[0].Type)
	}
}

func TestGroundTruthConsistency(t *testing.T) {
	tr := testTrace(t, 3, profiles.Fig2Ubuntu)
	// Count labeled writes.
	var n1, n2 int
	for _, w := range tr.ClientWrites {
		switch w.Label {
		case LabelType1:
			n1++
		case LabelType2:
			n2++
		}
	}
	if n1 != len(tr.Result.Choices) {
		t.Errorf("type-1 writes %d != choices met %d", n1, len(tr.Result.Choices))
	}
	var nonDefault int
	for _, d := range tr.GroundTruthDecisions() {
		if !d {
			nonDefault++
		}
	}
	if n2 != nonDefault {
		t.Errorf("type-2 writes %d != non-default decisions %d", n2, nonDefault)
	}
}

func TestRecordLengthsMatchProfileBands(t *testing.T) {
	tr := testTrace(t, 4, profiles.Fig2Ubuntu)
	p := tr.Profile
	lo1, hi1 := p.Type1RecordRange()
	lo2, hi2 := p.Type2RecordRange()
	for _, w := range tr.ClientWrites {
		if len(w.Records) != 1 && (w.Label == LabelType1 || w.Label == LabelType2) {
			t.Fatalf("%v write produced %d records", w.Label, len(w.Records))
		}
		switch w.Label {
		case LabelType1:
			if l := w.Records[0].Length; l < lo1 || l > hi1 {
				t.Errorf("type-1 record %d outside band [%d,%d]", l, lo1, hi1)
			}
		case LabelType2:
			if l := w.Records[0].Length; l < lo2 || l > hi2 {
				t.Errorf("type-2 record %d outside band [%d,%d]", l, lo2, hi2)
			}
		}
	}
}

func TestServerSawSameReports(t *testing.T) {
	// Server-side ingested reports must mirror the client's ground truth
	// exactly: same count, same order of kinds.
	g := script.Bandersnatch()
	enc := media.Encode(g, media.DefaultLadder, 42)
	pop := viewer.SamplePopulation(1, wire.NewRNG(5))
	tr, err := Run(Config{Graph: g, Encoding: enc, Viewer: pop[0],
		Condition: profiles.Fig2Windows, SessionID: "s", Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var wantKinds []statejson.Kind
	for _, w := range tr.ClientWrites {
		switch w.Label {
		case LabelType1:
			wantKinds = append(wantKinds, statejson.Type1)
		case LabelType2:
			wantKinds = append(wantKinds, statejson.Type2)
		}
	}
	_ = wantKinds
	// The trace does not retain the server, so re-derive: count type-2 =
	// non-default decisions (already covered); here check positions are
	// monotone.
	var prev time.Time
	for _, w := range tr.ClientWrites {
		if w.Time.Before(prev) {
			t.Fatalf("client writes out of order: %v then %v", prev, w.Time)
		}
		prev = w.Time
	}
}

func TestWriteMarksMonotone(t *testing.T) {
	tr := testTrace(t, 6, profiles.Fig2Ubuntu)
	for _, d := range []DirStream{tr.ClientToServer, tr.ServerToClient} {
		var prevOff int64 = -1
		for _, m := range d.Writes {
			if m.Offset <= prevOff {
				t.Fatalf("write marks not strictly increasing: %d after %d", m.Offset, prevOff)
			}
			prevOff = m.Offset
		}
	}
}

func TestTimeAtResolution(t *testing.T) {
	d := DirStream{}
	t0 := time.Unix(100, 0)
	t1 := time.Unix(200, 0)
	d.mark(0, t0)
	d.mark(1000, t1)
	if got := d.TimeAt(0); !got.Equal(t0) {
		t.Errorf("TimeAt(0) = %v", got)
	}
	if got := d.TimeAt(999); !got.Equal(t0) {
		t.Errorf("TimeAt(999) = %v", got)
	}
	if got := d.TimeAt(1000); !got.Equal(t1) {
		t.Errorf("TimeAt(1000) = %v", got)
	}
	if got := d.TimeAt(5000); !got.Equal(t1) {
		t.Errorf("TimeAt(5000) = %v", got)
	}
}

func TestRunDeterministic(t *testing.T) {
	a := testTrace(t, 7, profiles.Fig2Ubuntu)
	b := testTrace(t, 7, profiles.Fig2Ubuntu)
	if len(a.ClientToServer.Bytes) != len(b.ClientToServer.Bytes) {
		t.Fatal("client streams differ across identical seeds")
	}
	if len(a.ClientWrites) != len(b.ClientWrites) {
		t.Fatal("write counts differ")
	}
	for i := range a.ClientWrites {
		if a.ClientWrites[i].Label != b.ClientWrites[i].Label ||
			!a.ClientWrites[i].Time.Equal(b.ClientWrites[i].Time) {
			t.Fatalf("write %d differs", i)
		}
	}
}

func TestRunSeedsDiffer(t *testing.T) {
	a := testTrace(t, 8, profiles.Fig2Ubuntu)
	b := testTrace(t, 9, profiles.Fig2Ubuntu)
	if len(a.ClientToServer.Bytes) == len(b.ClientToServer.Bytes) &&
		len(a.ClientWrites) == len(b.ClientWrites) &&
		len(a.Result.Path.Segments) == len(b.Result.Path.Segments) {
		// Paths could coincide, but all three matching exactly with the
		// same byte count means the seed is being ignored.
		same := true
		for i := range a.ClientToServer.Bytes {
			if a.ClientToServer.Bytes[i] != b.ClientToServer.Bytes[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical traces")
		}
	}
}

func TestDefenseTransformApplied(t *testing.T) {
	g := script.Bandersnatch()
	enc := media.Encode(g, media.DefaultLadder, 42)
	pop := viewer.SamplePopulation(1, wire.NewRNG(10))
	// Pad every state report to 4096 bytes.
	tr, err := Run(Config{
		Graph: g, Encoding: enc, Viewer: pop[0],
		Condition: profiles.Fig2Ubuntu, Seed: 10,
		Defense: func(label WriteLabel, plain int) []int {
			if label == LabelType1 || label == LabelType2 {
				return []int{4096}
			}
			return []int{plain}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range tr.ClientWrites {
		if w.Label == LabelType1 || w.Label == LabelType2 {
			want := tr.Profile.Suite.CiphertextLen(4096)
			if w.Records[0].Length != want {
				t.Fatalf("%v record = %d, want padded %d", w.Label, w.Records[0].Length, want)
			}
		}
	}
}

func TestTimingGapAtNonDefaultChoice(t *testing.T) {
	// The residual timing channel: hunt for a viewer/seed that takes a
	// non-default branch and confirm the type-2 write exists at the
	// decision time recorded in ground truth.
	for seed := uint64(1); seed < 30; seed++ {
		tr := testTrace(t, seed, profiles.Fig2Ubuntu)
		for i, c := range tr.Result.Choices {
			if c.TookDefault {
				continue
			}
			// Find the matching type-2 write.
			found := false
			for _, w := range tr.ClientWrites {
				if w.Label == LabelType2 && w.Time.Equal(c.DecidedAt) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("seed %d choice %d: no type-2 write at decision time", seed, i)
			}
			return // one confirmed instance suffices
		}
	}
	t.Skip("no non-default choice in 30 seeds (improbable)")
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	g := script.TinyScript()
	if _, err := Run(Config{Graph: g}); err == nil {
		t.Error("missing encoding accepted")
	}
}
