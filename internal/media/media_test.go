package media

import (
	"math"
	"testing"
	"time"

	"repro/internal/script"
)

func testEncoding(t *testing.T) (*script.Graph, *Encoding) {
	t.Helper()
	g := script.Bandersnatch()
	return g, Encode(g, DefaultLadder, 42)
}

func TestEncodeCoversAllSegmentsAndQualities(t *testing.T) {
	g, e := testEncoding(t)
	for _, seg := range g.Segments() {
		for qi := range DefaultLadder {
			chunks, err := e.Chunks(seg.ID, qi)
			if err != nil {
				t.Fatalf("Chunks(%s, %d): %v", seg.ID, qi, err)
			}
			if len(chunks) == 0 {
				t.Errorf("segment %s quality %d has no chunks", seg.ID, qi)
			}
		}
	}
}

func TestChunkDurationsSumToSegment(t *testing.T) {
	g, e := testEncoding(t)
	for _, seg := range g.Segments() {
		chunks, _ := e.Chunks(seg.ID, 0)
		var total time.Duration
		for i, c := range chunks {
			if c.Duration <= 0 || c.Duration > ChunkDuration {
				t.Errorf("%s chunk %d duration %v", seg.ID, i, c.Duration)
			}
			if c.Index != i {
				t.Errorf("%s chunk index %d != position %d", seg.ID, c.Index, i)
			}
			total += c.Duration
		}
		if total != seg.Duration {
			t.Errorf("%s chunk durations sum to %v, segment is %v", seg.ID, total, seg.Duration)
		}
	}
}

func TestChunkSizesScaleWithBitrate(t *testing.T) {
	g, e := testEncoding(t)
	for _, seg := range g.Segments() {
		low, _ := e.SegmentBytes(seg.ID, 0)
		high, _ := e.SegmentBytes(seg.ID, len(DefaultLadder)-1)
		if high <= low {
			t.Errorf("%s: 4k bytes %d <= 235p bytes %d", seg.ID, high, low)
		}
	}
}

func TestEncodeDeterministic(t *testing.T) {
	g := script.Bandersnatch()
	e1 := Encode(g, DefaultLadder, 7)
	e2 := Encode(g, DefaultLadder, 7)
	for _, seg := range g.Segments() {
		c1, _ := e1.Chunks(seg.ID, 2)
		c2, _ := e2.Chunks(seg.ID, 2)
		for i := range c1 {
			if c1[i].Size != c2[i].Size {
				t.Fatalf("%s chunk %d differs across identical seeds", seg.ID, i)
			}
		}
	}
}

func TestEncodeSeedChangesSizes(t *testing.T) {
	g := script.Bandersnatch()
	e1 := Encode(g, DefaultLadder, 1)
	e2 := Encode(g, DefaultLadder, 2)
	diff := false
	for _, seg := range g.Segments() {
		c1, _ := e1.Chunks(seg.ID, 0)
		c2, _ := e2.Chunks(seg.ID, 0)
		for i := range c1 {
			if c1[i].Size != c2[i].Size {
				diff = true
			}
		}
	}
	if !diff {
		t.Error("different seeds produced identical encodings")
	}
}

func TestAverageBitrateNearNominal(t *testing.T) {
	g, e := testEncoding(t)
	// Across all segments, the mean realized bitrate at a rung should be
	// within ~35% of nominal (complexity and VBR dispersion included).
	for qi, q := range DefaultLadder {
		var sum float64
		var n int
		for _, seg := range g.Segments() {
			br, err := e.AverageBitrate(seg.ID, qi)
			if err != nil {
				t.Fatal(err)
			}
			sum += br
			n++
		}
		mean := sum / float64(n)
		if ratio := mean / float64(q.Bitrate); math.Abs(ratio-1) > 0.35 {
			t.Errorf("quality %s mean bitrate %.0f is %.2fx nominal", q.Name, mean, ratio)
		}
	}
}

func TestIntraTitleBitratesOverlap(t *testing.T) {
	// The paper's §II claim: segments of the same title at the same rung
	// have overlapping bitrates, so bitrate cannot identify the branch.
	// Check that the spread across segments is small relative to the gap
	// between ladder rungs.
	g, e := testEncoding(t)
	var minBR, maxBR float64 = math.MaxFloat64, 0
	for _, seg := range g.Segments() {
		br, _ := e.AverageBitrate(seg.ID, 2)
		if br < minBR {
			minBR = br
		}
		if br > maxBR {
			maxBR = br
		}
	}
	rungGap := float64(DefaultLadder[3].Bitrate - DefaultLadder[2].Bitrate)
	if maxBR-minBR > rungGap {
		t.Errorf("intra-title bitrate spread %.0f exceeds inter-rung gap %.0f",
			maxBR-minBR, rungGap)
	}
}

func TestChunksErrors(t *testing.T) {
	_, e := testEncoding(t)
	if _, err := e.Chunks("ghost", 0); err == nil {
		t.Error("missing segment not reported")
	}
	if _, err := e.Chunks("S0", 99); err == nil {
		t.Error("bad quality index not reported")
	}
	if _, err := e.Chunks("S0", -1); err == nil {
		t.Error("negative quality index not reported")
	}
}

func TestBuildManifest(t *testing.T) {
	g, e := testEncoding(t)
	m := BuildManifest(g, e)
	if m.Title != g.Title {
		t.Errorf("title = %q", m.Title)
	}
	if len(m.ChunkCounts) != len(g.Segments()) {
		t.Errorf("manifest covers %d segments, want %d", len(m.ChunkCounts), len(g.Segments()))
	}
	s0, _ := g.Segment("S0")
	wantChunks := int(math.Ceil(s0.Duration.Seconds() / ChunkDuration.Seconds()))
	if m.ChunkCounts["S0"] != wantChunks {
		t.Errorf("S0 chunk count = %d, want %d", m.ChunkCounts["S0"], wantChunks)
	}
}

func TestEncodeEmptyLadderDefaults(t *testing.T) {
	g := script.TinyScript()
	e := Encode(g, nil, 1)
	if len(e.Ladder) != len(DefaultLadder) {
		t.Errorf("empty ladder not defaulted")
	}
}

func TestMinimumChunkSize(t *testing.T) {
	g, e := testEncoding(t)
	for _, seg := range g.Segments() {
		for qi := range DefaultLadder {
			chunks, _ := e.Chunks(seg.ID, qi)
			for _, c := range chunks {
				if c.Size < 256 {
					t.Errorf("%s q%d chunk %d size %d below floor", seg.ID, qi, c.Index, c.Size)
				}
			}
		}
	}
}
