// Package media models the encoded-video side of the streaming substrate:
// bitrate ladders, the decomposition of script segments into fixed-duration
// chunks, and a variable-bitrate chunk size model.
//
// The attack never inspects chunk contents — only their sizes and timing —
// so chunks carry sizes, not samples. Sizes are drawn from a seeded
// log-normal VBR model per (segment, quality) pair, giving the realistic
// dispersion that inter-video fingerprinting baselines rely on while
// keeping within-title bitrates equal across branches (the paper's §II
// argument for why bitrate cannot separate segments of the same title).
package media

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/script"
	"repro/internal/wire"
)

// ChunkDuration is the fixed media time per chunk. Netflix DASH uses
// multi-second GOP-aligned chunks; four seconds is representative.
const ChunkDuration = 4 * time.Second

// Quality is one rung of the bitrate ladder.
type Quality struct {
	Name string
	// Bitrate is the nominal encode rate in bits per second.
	Bitrate int
}

// DefaultLadder is a representative Netflix-like AVC ladder.
var DefaultLadder = []Quality{
	{Name: "235p", Bitrate: 320_000},
	{Name: "480p", Bitrate: 1_050_000},
	{Name: "720p", Bitrate: 2_350_000},
	{Name: "1080p", Bitrate: 4_300_000},
	{Name: "4k", Bitrate: 15_600_000},
}

// Chunk is one fetchable unit of media.
type Chunk struct {
	Segment script.SegmentID
	// Index is the chunk's position within its segment.
	Index int
	// QualityIdx indexes the ladder the chunk was encoded at.
	QualityIdx int
	// Size is the chunk's encoded size in bytes.
	Size int
	// Duration is the media time the chunk covers (the final chunk of a
	// segment may be shorter).
	Duration time.Duration
}

// Encoding is the chunked form of a whole script: every segment encoded at
// every ladder rung.
type Encoding struct {
	Ladder []Quality
	chunks map[script.SegmentID][][]Chunk // segment -> quality -> chunks
}

// Encode chunks every segment of g at every rung of ladder. Chunk sizes
// are seeded from seed so identical titles encode identically across runs
// — crucial for the baseline experiments, which fingerprint sizes.
func Encode(g *script.Graph, ladder []Quality, seed uint64) *Encoding {
	if len(ladder) == 0 {
		ladder = DefaultLadder
	}
	enc := &Encoding{
		Ladder: ladder,
		chunks: make(map[script.SegmentID][][]Chunk),
	}
	rng := wire.NewRNG(seed)
	for _, seg := range g.Segments() {
		perQuality := make([][]Chunk, len(ladder))
		// Each segment gets one complexity factor shared across qualities
		// (a talky scene is cheap at every rung; an action scene dear).
		// Sigma is kept small: segments of the same title are encoded
		// against the same ladder targets, which is precisely the paper's
		// §II argument that bitrate cannot separate same-title branches.
		complexity := rng.Fork(uint64(len(seg.ID))).LogNormal(0, 0.08)
		for qi, q := range ladder {
			perQuality[qi] = chunkSegment(seg, qi, q, complexity,
				rng.Fork(uint64(qi)*1000+uint64(len(seg.Title))))
		}
		enc.chunks[seg.ID] = perQuality
	}
	return enc
}

// chunkSegment cuts one segment at one quality into chunks.
func chunkSegment(seg *script.Segment, qi int, q Quality, complexity float64, rng *wire.RNG) []Chunk {
	var chunks []Chunk
	remaining := seg.Duration
	for idx := 0; remaining > 0; idx++ {
		d := ChunkDuration
		if remaining < d {
			d = remaining
		}
		nominal := float64(q.Bitrate) / 8 * d.Seconds() * complexity
		// VBR dispersion around the nominal size: sigma 0.18 matches the
		// coefficient of variation of DASH traces used in prior work.
		size := int(rng.LogNormal(0, 0.18) * nominal)
		if size < 256 {
			size = 256
		}
		chunks = append(chunks, Chunk{
			Segment: seg.ID, Index: idx, QualityIdx: qi,
			Size: size, Duration: d,
		})
		remaining -= d
	}
	return chunks
}

// encodeCache shares Encodings across sessions and experiments: encoding
// the title is pure in (graph content, ladder, seed), and the result is
// immutable after construction, so every layer that simulates the same
// title can hold one copy instead of re-encoding per session. The cache is
// safe for concurrent use; worker pools hit it from many goroutines.
var encodeCache struct {
	sync.Mutex
	m map[string]*Encoding
}

// encodeCacheLimit bounds the cache; when full it is emptied wholesale
// (encodings are cheap to rebuild and experiment suites cycle few keys).
const encodeCacheLimit = 64

// encodeKey fingerprints everything Encode's output depends on: the exact
// segment inventory (IDs, titles, durations, in order), the ladder and the
// seed. Graph pointer identity deliberately does not matter — repeated
// script.Bandersnatch() calls build fresh but identical graphs.
func encodeKey(g *script.Graph, ladder []Quality, seed uint64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\x00%d\x00", g.Title, seed)
	for _, q := range ladder {
		fmt.Fprintf(&b, "%s:%d\x00", q.Name, q.Bitrate)
	}
	for _, seg := range g.Segments() {
		fmt.Fprintf(&b, "%s\x01%s\x01%d\x00", seg.ID, seg.Title, seg.Duration)
	}
	return b.String()
}

// EncodeCached returns a shared Encoding for (g, ladder, seed), encoding
// at most once per distinct key. The returned Encoding is read-only and
// safe to share across goroutines.
func EncodeCached(g *script.Graph, ladder []Quality, seed uint64) *Encoding {
	if len(ladder) == 0 {
		ladder = DefaultLadder
	}
	key := encodeKey(g, ladder, seed)
	encodeCache.Lock()
	if e, ok := encodeCache.m[key]; ok {
		encodeCache.Unlock()
		return e
	}
	encodeCache.Unlock()

	e := Encode(g, ladder, seed)

	encodeCache.Lock()
	defer encodeCache.Unlock()
	if prior, ok := encodeCache.m[key]; ok {
		return prior // a racing encoder won; keep one canonical copy
	}
	if encodeCache.m == nil || len(encodeCache.m) >= encodeCacheLimit {
		encodeCache.m = make(map[string]*Encoding)
	}
	encodeCache.m[key] = e
	return e
}

// Chunks returns the chunk list for a segment at a quality index.
func (e *Encoding) Chunks(id script.SegmentID, qualityIdx int) ([]Chunk, error) {
	per, ok := e.chunks[id]
	if !ok {
		return nil, fmt.Errorf("media: segment %q not in encoding", id)
	}
	if qualityIdx < 0 || qualityIdx >= len(per) {
		return nil, fmt.Errorf("media: quality index %d out of range [0,%d)",
			qualityIdx, len(per))
	}
	return per[qualityIdx], nil
}

// SegmentBytes totals the encoded size of a segment at a quality.
func (e *Encoding) SegmentBytes(id script.SegmentID, qualityIdx int) (int, error) {
	chunks, err := e.Chunks(id, qualityIdx)
	if err != nil {
		return 0, err
	}
	var total int
	for _, c := range chunks {
		total += c.Size
	}
	return total, nil
}

// AverageBitrate returns a segment's realized average bitrate in bits per
// second at a quality — the quantity prior-work classifiers fingerprint.
func (e *Encoding) AverageBitrate(id script.SegmentID, qualityIdx int) (float64, error) {
	chunks, err := e.Chunks(id, qualityIdx)
	if err != nil {
		return 0, err
	}
	var bytes int
	var dur time.Duration
	for _, c := range chunks {
		bytes += c.Size
		dur += c.Duration
	}
	if dur == 0 {
		return 0, nil
	}
	return float64(bytes) * 8 / dur.Seconds(), nil
}

// Manifest is the client-visible index of a title: which segments exist,
// their chunk counts and the ladder. It mirrors the role of a DASH MPD.
type Manifest struct {
	Title  string
	Ladder []Quality
	// ChunkCounts maps segment to the number of chunks (quality-invariant
	// because chunking is duration-based).
	ChunkCounts map[script.SegmentID]int
}

// BuildManifest derives the manifest for an encoding of g.
func BuildManifest(g *script.Graph, e *Encoding) Manifest {
	m := Manifest{
		Title:       g.Title,
		Ladder:      e.Ladder,
		ChunkCounts: make(map[script.SegmentID]int),
	}
	for _, seg := range g.Segments() {
		if chunks, err := e.Chunks(seg.ID, 0); err == nil {
			m.ChunkCounts[seg.ID] = len(chunks)
		}
	}
	return m
}
