package nodoc // want `doccheck: package nodoc has no package doc comment`

// Fine is documented; only the package comment is missing.
func Fine() {}
