// Package docpkg exercises doccheck: exported identifiers need doc
// comments; unexported ones don't.
package docpkg

// Documented carries a doc comment — sanctioned.
type Documented struct{}

// Method is documented too.
func (Documented) Method() {}

func (Documented) Bare() {} // want `doccheck: exported func Documented\.Bare has no doc comment`

type Naked struct{} // want `doccheck: exported type Naked has no doc comment`

func Undocumented() {} // want `doccheck: exported func Undocumented has no doc comment`

var Loose = 1 // want `doccheck: exported Loose has no doc comment`

// A documented block covers its members the way godoc renders them.
var (
	Covered  = 1
	AlsoFine = 2
)

const (
	TightConst = 3 // an end-of-line comment counts as the member's doc
)

const LooseConst = 4 // want `doccheck: exported LooseConst has no doc comment`

// unexported needs nothing.
func unexported() {}

type hidden struct{}

// String is a method on an unexported type — not part of the surface.
func (hidden) String() string { return "" }
