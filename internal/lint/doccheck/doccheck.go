// Package doccheck is the analyzer form of the repo's doc-comment lint:
// every exported top-level identifier — types, funcs, methods, consts
// and vars — must carry a doc comment, and every package must have a
// package comment. It encodes the same rules doclint_test.go enforced
// with a hand-rolled go/ast walk (PR 5), so an undocumented export
// fails wmlint and CI by name instead of rotting.
//
// Which packages constitute the documented surface is the driver's
// decision (wmlint runs doccheck on the facade and the four core attack
// packages ARCHITECTURE.md documents); the analyzer itself checks
// whatever package it is handed.
package doccheck

import (
	"go/ast"
	"strings"

	"repro/internal/lint/analysis"
)

// SurfacePackages is the documented surface: the facade plus the core
// internal packages ARCHITECTURE.md maps (the same set doclint_test.go
// checked), extended with the dataset pipeline packages whose corpus
// format DATASET.md documents. The driver consults this via AppliesTo.
var SurfacePackages = map[string]bool{
	"repro":                    true,
	"repro/internal/attack":    true,
	"repro/internal/tcpreasm":  true,
	"repro/internal/tlsrec":    true,
	"repro/internal/pcapio":    true,
	"repro/internal/dataset":   true,
	"repro/internal/statejson": true,
}

// Analyzer is the doccheck checker.
var Analyzer = &analysis.Analyzer{
	Name: "doccheck",
	Doc: "exported identifiers and packages in the documented surface " +
		"must carry doc comments",
	AppliesTo: func(pkgPath string) bool { return SurfacePackages[pkgPath] },
	Run:       run,
}

func run(pass *analysis.Pass) error {
	hasPkgDoc := false
	for _, f := range pass.Files {
		if f.Doc != nil && len(strings.TrimSpace(f.Doc.Text())) > 0 {
			hasPkgDoc = true
		}
		for _, decl := range f.Decls {
			checkDecl(pass, decl)
		}
	}
	if !hasPkgDoc && len(pass.Files) > 0 {
		pass.Reportf(pass.Files[0].Name.Pos(),
			"doccheck: package %s has no package doc comment", pass.Pkg.Name())
	}
	return nil
}

// checkDecl reports every undocumented exported declaration.
func checkDecl(pass *analysis.Pass, decl ast.Decl) {
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || !exportedRecv(d) {
			return
		}
		if d.Doc == nil {
			pass.Reportf(d.Pos(), "doccheck: exported func %s has no doc comment",
				funcName(d))
		}
	case *ast.GenDecl:
		// A documented const/var/type block covers its members the way
		// godoc renders them; individually documented members also pass.
		// Inside a parenthesized group an end-of-line comment counts too
		// (the `TightConst = 3 // meaning` idiom godoc renders beside the
		// value); for standalone declarations godoc ignores trailing
		// comments, so only a leading doc comment documents them.
		blockDoc := d.Doc != nil
		grouped := d.Lparen.IsValid()
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() && !blockDoc && s.Doc == nil &&
					!(grouped && s.Comment != nil) {
					pass.Reportf(s.Pos(), "doccheck: exported type %s has no doc comment",
						s.Name.Name)
				}
			case *ast.ValueSpec:
				for _, n := range s.Names {
					if n.IsExported() && !blockDoc && s.Doc == nil &&
						!(grouped && s.Comment != nil) {
						pass.Reportf(s.Pos(), "doccheck: exported %s has no doc comment",
							n.Name)
					}
				}
			}
		}
	}
}

// exportedRecv reports whether a method's receiver type is exported
// (methods on unexported types are not part of the surface).
func exportedRecv(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	name := recvTypeName(d.Recv.List[0].Type)
	return name == "" || ast.IsExported(name)
}

// recvTypeName unwraps a receiver type expression to its type name.
func recvTypeName(expr ast.Expr) string {
	for {
		switch e := expr.(type) {
		case *ast.StarExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.Ident:
			return e.Name
		default:
			return ""
		}
	}
}

// funcName renders Recv.Method or Func for the diagnostic.
func funcName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return d.Name.Name
	}
	if n := recvTypeName(d.Recv.List[0].Type); n != "" {
		return n + "." + d.Name.Name
	}
	return d.Name.Name
}
