package doccheck_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/doccheck"
)

func TestDoccheck(t *testing.T) {
	analysistest.Run(t, "testdata/src", doccheck.Analyzer, "docpkg", "nodoc")
}
