// Package detrand proves the reproducibility invariant at compile time:
// in determinism-critical packages, output may depend only on explicit
// inputs (seed, capture bytes, configuration) — never on wall clocks,
// process-global randomness, undocumented environment, or map iteration
// order.
//
// The paper reproduction's headline guarantee is byte-identical event
// streams and inferences at any worker count (WM_WORKERS) and any shard
// count (MonitorOptions.Shards). The equivalence tests enforce that
// dynamically; this analyzer rejects the four nondeterminism sources
// that have historically threatened it:
//
//   - time.Now / time.Since: wall-clock reads. Time must come from the
//     capture clock (packet timestamps) or the simulated session clock.
//   - package-global math/rand: draws from a process-shared source that
//     scheduling perturbs. Use a forked seeded stream (wire.RNG.Stream).
//   - os.Getenv outside documented knobs (WM_WORKERS): ambient
//     environment silently changing results.
//   - ranging over a map while appending to an outer slice, sending on a
//     channel, or emitting events: iteration order leaks into ordered
//     output. Collect keys and sort first (the sortedKeys idiom); an
//     append that is sorted later in the same block is sanctioned.
package detrand

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// criticalSegments are the determinism-critical packages, identified by
// the final import-path segment (so fixtures named like the real
// packages exercise the analyzer).
var criticalSegments = map[string]bool{
	"session":   true,
	"dataset":   true,
	"statejson": true,
	"wire":      true,
	"parallel":  true,
	"attack":    true,
	"capture":   true,
	"quicrec":   true,
}

// allowedEnv are the documented environment knobs (README "Performance";
// everything else must arrive through explicit configuration).
var allowedEnv = map[string]bool{
	"WM_WORKERS": true,
}

// globalRandExempt are the math/rand package functions that do NOT touch
// the process-global source: constructors for explicitly-seeded
// generators are exactly the sanctioned alternative.
var globalRandExempt = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

// Analyzer is the detrand checker.
var Analyzer = &analysis.Analyzer{
	Name: "detrand",
	Doc: "forbid wall clocks, global randomness, undocumented env and " +
		"map-order-dependent emission in determinism-critical packages",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !criticalSegments[lastSegment(pass.Path)] {
		return nil
	}
	for _, f := range pass.Files {
		checkSelectors(pass, f)
		checkMapRanges(pass, f)
	}
	return nil
}

func lastSegment(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// funcPkgPath resolves an identifier to a package-level function and
// returns its package path and name.
func funcPkgPath(pass *analysis.Pass, id *ast.Ident) (string, string, bool) {
	obj, ok := pass.TypesInfo.Uses[id]
	if !ok {
		return "", "", false
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", "", false
	}
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		return "", "", false // methods never alias the globals we ban
	}
	return fn.Pkg().Path(), fn.Name(), true
}

// checkSelectors flags every reference — call or function value — to a
// banned package-level function.
func checkSelectors(pass *analysis.Pass, f *ast.File) {
	// os.Getenv/LookupEnv are judged per call site (the argument decides),
	// so remember which selector nodes belong to a sanctioned call.
	envOK := map[*ast.Ident]bool{}
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id := calleeIdent(call.Fun)
		if id == nil {
			return true
		}
		pkg, name, ok := funcPkgPath(pass, id)
		if !ok || pkg != "os" || (name != "Getenv" && name != "LookupEnv") {
			return true
		}
		if len(call.Args) == 1 {
			if tv, ok := pass.TypesInfo.Types[call.Args[0]]; ok && tv.Value != nil {
				key := strings.Trim(tv.Value.String(), `"`)
				if allowedEnv[key] {
					envOK[id] = true
					return true
				}
			}
		}
		return true
	})
	ast.Inspect(f, func(n ast.Node) bool {
		id := identOf(n)
		if id == nil {
			return true
		}
		pkg, name, ok := funcPkgPath(pass, id)
		if !ok {
			return true
		}
		switch {
		case pkg == "time" && (name == "Now" || name == "Since" || name == "Until"):
			pass.Reportf(id.Pos(), "detrand: time.%s reads the wall clock in "+
				"determinism-critical package %s; derive time from the capture "+
				"clock (packet timestamps) or the session clock", name, pass.Path)
		case (pkg == "math/rand" || pkg == "math/rand/v2") && !globalRandExempt[name]:
			pass.Reportf(id.Pos(), "detrand: math/rand.%s draws from the "+
				"process-global source; fork a seeded stream instead "+
				"(wire.RNG.Stream)", name)
		case pkg == "os" && (name == "Getenv" || name == "LookupEnv") && !envOK[id]:
			pass.Reportf(id.Pos(), "detrand: os.%s outside the documented knobs "+
				"(WM_WORKERS) couples output to the ambient environment; thread "+
				"the setting through explicit configuration", name)
		}
		return true
	})
}

// identOf unwraps the identifier a selector or bare reference names.
func identOf(n ast.Node) *ast.Ident {
	switch e := n.(type) {
	case *ast.SelectorExpr:
		return e.Sel
	}
	return nil
}

// calleeIdent unwraps a call's function expression to its identifier.
func calleeIdent(fun ast.Expr) *ast.Ident {
	switch e := fun.(type) {
	case *ast.Ident:
		return e
	case *ast.SelectorExpr:
		return e.Sel
	case *ast.ParenExpr:
		return calleeIdent(e.X)
	}
	return nil
}

// checkMapRanges flags map iterations whose bodies feed ordered output.
func checkMapRanges(pass *analysis.Pass, f *ast.File) {
	// Walk with enough context to see the statement list a range lives
	// in, so the sanctioned collect-then-sort idiom can be recognized.
	var walkBlock func(stmts []ast.Stmt)
	var walkStmt func(s ast.Stmt, following []ast.Stmt)

	walkBlock = func(stmts []ast.Stmt) {
		for i, s := range stmts {
			walkStmt(s, stmts[i+1:])
		}
	}
	walkStmt = func(s ast.Stmt, following []ast.Stmt) {
		switch st := s.(type) {
		case *ast.RangeStmt:
			if tv, ok := pass.TypesInfo.Types[st.X]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					checkMapRangeBody(pass, st, following)
				}
			}
			walkBlock(st.Body.List)
		case *ast.BlockStmt:
			walkBlock(st.List)
		case *ast.IfStmt:
			walkBlock(st.Body.List)
			if st.Else != nil {
				walkStmt(st.Else, nil)
			}
		case *ast.ForStmt:
			walkBlock(st.Body.List)
		case *ast.SwitchStmt:
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					walkBlock(cc.Body)
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					walkBlock(cc.Body)
				}
			}
		case *ast.SelectStmt:
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					walkBlock(cc.Body)
				}
			}
		case *ast.LabeledStmt:
			walkStmt(st.Stmt, following)
		}
	}
	for _, decl := range f.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
			walkBlock(fd.Body.List)
		}
	}
	// Function literals anywhere (composite literals, defers, arguments).
	ast.Inspect(f, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			walkBlock(fl.Body.List)
		}
		return true
	})
}

// checkMapRangeBody inspects one map-range body for order leaks.
func checkMapRangeBody(pass *analysis.Pass, rs *ast.RangeStmt, following []ast.Stmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(st.Pos(), "detrand: channel send inside a range over a "+
				"map leaks iteration order; collect into a slice and sort first "+
				"(sortedKeys idiom)")
		case *ast.CallExpr:
			if name := calleeName(st.Fun); name == "emit" || name == "Emit" ||
				name == "onEvent" || name == "OnEvent" {
				pass.Reportf(st.Pos(), "detrand: %s inside a range over a map "+
					"emits events in iteration order; collect, sort, then emit "+
					"(sortedKeys idiom)", name)
				return true
			}
			if isAppendToOuter(pass, st, rs) && !sortedLater(pass, st, following) {
				pass.Reportf(st.Pos(), "detrand: range over map appends to an "+
					"ordered output without a later sort; collect keys and sort "+
					"(sortedKeys idiom) before emitting")
			}
		}
		return true
	})
}

// calleeName names a called function or method.
func calleeName(fun ast.Expr) string {
	if id := calleeIdent(fun); id != nil {
		return id.Name
	}
	return ""
}

// isAppendToOuter reports whether call is append(dst, ...) with dst
// declared outside the range statement (so iteration order escapes it).
func isAppendToOuter(pass *analysis.Pass, call *ast.CallExpr, rs *ast.RangeStmt) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	if obj := pass.TypesInfo.Uses[id]; obj == nil || obj != types.Universe.Lookup("append") {
		return false
	}
	if len(call.Args) == 0 {
		return false
	}
	base, ok := call.Args[0].(*ast.Ident)
	if !ok {
		// Appending straight to a field or index: always an escape.
		return true
	}
	obj := pass.TypesInfo.Uses[base]
	if obj == nil {
		return false
	}
	return obj.Pos() < rs.Pos() || obj.Pos() >= rs.End()
}

// sortedLater reports whether a statement after the range sorts the
// slice the append targets — the sanctioned collect-then-sort idiom.
func sortedLater(pass *analysis.Pass, call *ast.CallExpr, following []ast.Stmt) bool {
	base, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return false
	}
	target := pass.TypesInfo.Uses[base]
	if target == nil {
		return false
	}
	for _, s := range following {
		found := false
		ast.Inspect(s, func(n ast.Node) bool {
			c, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			sel, ok := c.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgID, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			if pn, ok := pass.TypesInfo.Uses[pkgID].(*types.PkgName); !ok ||
				(pn.Imported().Path() != "sort" && pn.Imported().Path() != "slices") {
				return true
			}
			for _, a := range c.Args {
				ast.Inspect(a, func(an ast.Node) bool {
					if aid, ok := an.(*ast.Ident); ok && pass.TypesInfo.Uses[aid] == target {
						found = true
					}
					return !found
				})
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}
