// Package session is a detrand fixture shaped like a determinism-
// critical package (the final path segment gates the analyzer).
package session

import (
	"math/rand"
	"os"
	"sort"
	"time"
)

// wallClock reads the wall clock two ways.
func wallClock(start time.Time) time.Duration {
	_ = time.Now()           // want `detrand: time\.Now reads the wall clock`
	return time.Since(start) // want `detrand: time\.Since reads the wall clock`
}

// clockValue passes the clock as a function value.
func clockValue() func() time.Time {
	return time.Now // want `detrand: time\.Now reads the wall clock`
}

// okClock derives time from an explicit input — sanctioned.
func okClock(captureTS time.Time) time.Time {
	return captureTS.Add(3 * time.Second)
}

// globalRand draws from the process-global source.
func globalRand() int {
	rand.Shuffle(4, func(i, j int) {}) // want `detrand: math/rand\.Shuffle draws from the process-global source`
	return rand.Intn(8)                // want `detrand: math/rand\.Intn draws from the process-global source`
}

// seededRand forks an explicit source — sanctioned.
func seededRand(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(8)
}

// envKnobs reads the environment.
func envKnobs() (string, string) {
	ok := os.Getenv("WM_WORKERS") // documented knob — sanctioned
	bad := os.Getenv("WM_DEBUG")  // want `detrand: os\.Getenv outside the documented knobs`
	return ok, bad
}

// envLookup uses the two-value form on an undocumented key.
func envLookup() bool {
	_, found := os.LookupEnv("HOME") // want `detrand: os\.LookupEnv outside the documented knobs`
	return found
}

// emitUnsorted appends map keys straight into ordered output.
func emitUnsorted(m map[string]int, out []string) []string {
	for k := range m {
		out = append(out, k) // want `detrand: range over map appends to an ordered output`
	}
	return out
}

// emitSorted collects then sorts — the sanctioned idiom.
func emitSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// localAppend appends into a slice scoped inside the loop — no escape.
func localAppend(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		local := []int{}
		local = append(local, vs...)
		n += len(local)
	}
	return n
}

// sendUnsorted leaks iteration order over a channel.
func sendUnsorted(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k // want `detrand: channel send inside a range over a map`
	}
}

// emitter mimics the monitor's event sink.
type emitter struct{}

// emit delivers one event.
func (emitter) emit(v int) {}

// emitInRange calls an emit-shaped sink in iteration order.
func emitInRange(m map[int]int, e emitter) {
	for _, v := range m {
		e.emit(v) // want `detrand: emit inside a range over a map`
	}
}

// counters accumulate commutatively — sanctioned.
func counters(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
