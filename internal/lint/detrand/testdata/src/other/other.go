// Package other is a detrand fixture for a package OUTSIDE the
// determinism-critical set: the same constructs draw no diagnostics.
package other

import (
	"math/rand"
	"os"
	"time"
)

// Free reads clocks, global randomness and the environment — all fine
// in a non-critical package (CLIs report wall time, for example).
func Free() (time.Time, int, string) {
	return time.Now(), rand.Intn(8), os.Getenv("WM_DEBUG")
}

// Emit leaks map order — also fine outside the critical set.
func Emit(m map[string]int, out []string) []string {
	for k := range m {
		out = append(out, k)
	}
	return out
}
