package detrand_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/detrand"
)

func TestDetrand(t *testing.T) {
	analysistest.Run(t, "testdata/src", detrand.Analyzer, "session", "other")
}
