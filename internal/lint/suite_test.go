package lint_test

import (
	"bytes"
	"testing"

	"repro/internal/lint"
)

// TestSuiteShape pins the analyzer roster: five checkers, in reporting
// order, each with a name and doc.
func TestSuiteShape(t *testing.T) {
	want := []string{"detrand", "spanown", "atomiccursor", "eventcase", "doccheck"}
	suite := lint.Suite()
	if len(suite) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(suite), len(want))
	}
	for i, a := range suite {
		if a.Name != want[i] {
			t.Errorf("suite[%d] = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %s has no doc", a.Name)
		}
		if a.Run == nil {
			t.Errorf("analyzer %s has no run function", a.Name)
		}
	}
}

// TestTreeIsClean is the wmlint smoke test: the whole module must carry
// zero unsuppressed diagnostics and zero stale //lint:allow markers.
// This is the same bar CI's lint-invariants job enforces via
// `go run ./cmd/wmlint ./...`.
func TestTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	res, err := lint.Run("../..", "./...")
	if err != nil {
		t.Fatalf("lint.Run: %v", err)
	}
	if res.Packages == 0 {
		t.Fatal("lint.Run analyzed zero packages — loader matched nothing")
	}
	if !res.Clean() {
		var buf bytes.Buffer
		res.Print(&buf)
		t.Errorf("tree is not lint-clean:\n%s", buf.String())
	}
}
