// Package lint assembles the wmlint suite: the analyzers that prove the
// engine's invariants (determinism, span ownership, cursor atomicity,
// event exhaustiveness, documented surface) and the driver that runs
// them over module packages, honoring //lint:allow markers.
//
// The suite is stdlib-only by necessity — the build environment is
// offline and golang.org/x/tools is not vendored — so the framework
// under internal/lint/analysis mirrors the go/analysis contract locally
// and cmd/wmlint is the multichecker. The analyzers would port to the
// upstream framework (and go vet -vettool) mechanically if the
// dependency ever lands.
package lint

import (
	"fmt"
	"go/token"
	"io"

	"repro/internal/lint/analysis"
	"repro/internal/lint/atomiccursor"
	"repro/internal/lint/detrand"
	"repro/internal/lint/doccheck"
	"repro/internal/lint/eventcase"
	"repro/internal/lint/loader"
	"repro/internal/lint/spanown"
)

// Suite is the wmlint analyzer set, in reporting order.
func Suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		detrand.Analyzer,
		spanown.Analyzer,
		atomiccursor.Analyzer,
		eventcase.Analyzer,
		doccheck.Analyzer,
	}
}

// Result is one driver run's outcome.
type Result struct {
	// Fset positions the diagnostics.
	Fset *token.FileSet
	// Diags are the unsuppressed findings, in presentation order.
	Diags []analysis.Diagnostic
	// Suppressed are findings silenced by //lint:allow markers.
	Suppressed []analysis.Diagnostic
	// Unused are markers that silenced nothing (stale exceptions).
	Unused []analysis.Allow
	// Packages counts the packages analyzed.
	Packages int
}

// Run loads the packages matching patterns in the module at dir and
// runs the whole suite over them.
func Run(dir string, patterns ...string) (*Result, error) {
	pkgs, err := loader.LoadModule(dir, patterns...)
	if err != nil {
		return nil, err
	}
	res := &Result{Packages: len(pkgs)}
	for _, pkg := range pkgs {
		res.Fset = pkg.Fset
		allows, badMarkers := analysis.CollectAllows(pkg.Fset, pkg.Files)
		var diags []analysis.Diagnostic
		diags = append(diags, badMarkers...)
		for _, a := range Suite() {
			if a.AppliesTo != nil && !a.AppliesTo(pkg.Path) {
				continue
			}
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Path:      pkg.Path,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("wmlint: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
		kept, suppressed, unused := analysis.FilterAllowed(pkg.Fset, diags, allows)
		res.Diags = append(res.Diags, kept...)
		res.Suppressed = append(res.Suppressed, suppressed...)
		res.Unused = append(res.Unused, unused...)
	}
	return res, nil
}

// Print renders a run's findings the way a compiler would, one line per
// diagnostic, followed by a summary.
func (r *Result) Print(w io.Writer) {
	for _, d := range r.Diags {
		fmt.Fprintf(w, "%s: %s\n", r.Fset.Position(d.Pos), d.Message)
	}
	for _, a := range r.Unused {
		fmt.Fprintf(w, "%s:%d: unused lint:allow %s marker (%s) — delete it\n",
			a.File, a.Line, a.Analyzer, a.Reason)
	}
	fmt.Fprintf(w, "wmlint: %d packages, %d findings (%d suppressed by lint:allow)\n",
		r.Packages, len(r.Diags), len(r.Suppressed))
}

// Clean reports whether the run found nothing actionable: no
// unsuppressed diagnostics and no stale markers.
func (r *Result) Clean() bool {
	return len(r.Diags) == 0 && len(r.Unused) == 0
}
