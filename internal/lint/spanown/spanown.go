// Package spanown proves the zero-copy ownership discipline at compile
// time: byte slices that sub-slice a pcapio arena or PacketRing — a
// pcapio.Record's Data, a tcpreasm.Chunk's Data, a layers.Packet's
// Payload, a PacketRing.AllocFrame result — are loans. The reader or
// ring recycles their backing storage, so a loan may be read, copied, or
// handed onward through an ownership-transfer call (FeedPacketOwned,
// FeedOwned), but never retained: storing one in a struct field, sending
// it over a channel, or capturing it in a goroutine keeps a pointer into
// memory that will be rewritten under it.
//
// The analyzer runs a forward taint pass per function: expressions
// derived from a span source (including sub-slices and local aliases)
// are tainted, and a taint reaching a field store, channel send, or
// goroutine is reported. Copies launder taint — append(dst, span...)
// spreads bytes, copy(dst, span) fills dst — and passing a span as an
// ordinary call argument is fine (the callee's own code is analyzed in
// its own pass). Intentional retention (an owner implementing the
// release discipline itself) carries a //lint:allow spanown marker.
package spanown

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// Analyzer is the spanown checker.
var Analyzer = &analysis.Analyzer{
	Name: "spanown",
	Doc: "flag retention (field store, channel send, goroutine capture) " +
		"of pcapio/tcpreasm arena sub-slices without an explicit copy",
	Run: run,
}

// spanSources maps (package path suffix, type name) to the field whose
// slices are loans from that type's arena.
var spanFields = map[[2]string]string{
	{"pcapio", "Record"}:  "Data",
	{"tcpreasm", "Chunk"}: "Data",
	{"layers", "Packet"}:  "Payload",
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkFunc(pass, fd.Body)
			}
		}
	}
	return nil
}

// checker is the per-function taint state.
type checker struct {
	pass    *analysis.Pass
	tainted map[types.Object]bool
}

func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	c := &checker{pass: pass, tainted: map[types.Object]bool{}}
	c.walkStmts(body.List)
}

// walkStmts runs the forward pass over a statement list.
func (c *checker) walkStmts(stmts []ast.Stmt) {
	for _, s := range stmts {
		c.walkStmt(s)
	}
}

func (c *checker) walkStmt(s ast.Stmt) {
	switch st := s.(type) {
	case *ast.AssignStmt:
		c.assign(st)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for i, name := range vs.Names {
						if i < len(vs.Values) && c.taintedExpr(vs.Values[i]) {
							c.taint(name)
						}
					}
				}
			}
		}
	case *ast.SendStmt:
		if c.taintedExpr(st.Value) {
			c.pass.Reportf(st.Pos(), "spanown: sending an arena span over a "+
				"channel retains it past the feed; copy it "+
				"(append([]byte(nil), s...)) or transfer ownership "+
				"(FeedPacketOwned/FeedOwned)")
		}
	case *ast.GoStmt:
		c.checkGo(st)
	case *ast.BlockStmt:
		c.walkStmts(st.List)
	case *ast.IfStmt:
		if st.Init != nil {
			c.walkStmt(st.Init)
		}
		c.walkStmts(st.Body.List)
		if st.Else != nil {
			c.walkStmt(st.Else)
		}
	case *ast.ForStmt:
		if st.Init != nil {
			c.walkStmt(st.Init)
		}
		c.walkStmts(st.Body.List)
	case *ast.RangeStmt:
		if c.taintedExpr(st.X) {
			// Ranging over a tainted [][]byte taints the element binding.
			if id, ok := st.Value.(*ast.Ident); ok {
				c.taint(id)
			}
		}
		c.walkStmts(st.Body.List)
	case *ast.SwitchStmt:
		for _, cc := range st.Body.List {
			if clause, ok := cc.(*ast.CaseClause); ok {
				c.walkStmts(clause.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, cc := range st.Body.List {
			if clause, ok := cc.(*ast.CaseClause); ok {
				c.walkStmts(clause.Body)
			}
		}
	case *ast.SelectStmt:
		for _, cc := range st.Body.List {
			if clause, ok := cc.(*ast.CommClause); ok {
				if clause.Comm != nil {
					c.walkStmt(clause.Comm)
				}
				c.walkStmts(clause.Body)
			}
		}
	case *ast.LabeledStmt:
		c.walkStmt(st.Stmt)
	case *ast.ExprStmt:
		// Calls with func-literal arguments: analyze the literal bodies
		// with the current taint (synchronous callbacks see live spans;
		// retention inside them is still retention).
		ast.Inspect(st.X, func(n ast.Node) bool {
			if fl, ok := n.(*ast.FuncLit); ok {
				c.walkStmts(fl.Body.List)
				return false
			}
			return true
		})
	}
}

// assign updates taint and reports tainted stores into fields/indexes.
func (c *checker) assign(st *ast.AssignStmt) {
	for i, lhs := range st.Lhs {
		var rhs ast.Expr
		if len(st.Rhs) == len(st.Lhs) {
			rhs = st.Rhs[i]
		} else if len(st.Rhs) == 1 {
			rhs = st.Rhs[0] // multi-value: be conservative, taint nothing
			if i > 0 {
				continue
			}
			if _, ok := rhs.(*ast.CallExpr); ok {
				continue
			}
		}
		if rhs == nil {
			continue
		}
		hot := c.taintedExpr(rhs)
		switch l := lhs.(type) {
		case *ast.Ident:
			if l.Name == "_" {
				continue
			}
			if hot {
				c.taint(l)
			} else if obj := c.objOf(l); obj != nil {
				delete(c.tainted, obj)
			}
		case *ast.SelectorExpr:
			if hot && c.isFieldStore(l) {
				c.pass.Reportf(st.Pos(), "spanown: storing an arena span in a "+
					"struct field retains it past the feed; copy it "+
					"(append([]byte(nil), s...)) or transfer ownership "+
					"(FeedPacketOwned/FeedOwned)")
			}
		case *ast.IndexExpr:
			if hot {
				c.pass.Reportf(st.Pos(), "spanown: storing an arena span in a "+
					"container retains it past the feed; copy it "+
					"(append([]byte(nil), s...)) first")
			}
		}
	}
}

// checkGo reports spans escaping into a goroutine: tainted arguments, or
// tainted free variables captured by a func literal.
func (c *checker) checkGo(st *ast.GoStmt) {
	for _, arg := range st.Call.Args {
		if c.taintedExpr(arg) {
			c.pass.Reportf(st.Pos(), "spanown: goroutine receives an arena span; "+
				"the arena may recycle it concurrently — copy it before handing off")
			return
		}
	}
	if fl, ok := st.Call.Fun.(*ast.FuncLit); ok {
		reported := false
		ast.Inspect(fl.Body, func(n ast.Node) bool {
			if reported {
				return false
			}
			if id, ok := n.(*ast.Ident); ok {
				if obj := c.objOf(id); obj != nil && c.tainted[obj] {
					c.pass.Reportf(st.Pos(), "spanown: goroutine closure captures "+
						"arena span %q; the arena may recycle it concurrently — "+
						"copy it before handing off", id.Name)
					reported = true
				}
			}
			return true
		})
	}
}

func (c *checker) taint(id *ast.Ident) {
	if obj := c.defOrUse(id); obj != nil {
		c.tainted[obj] = true
	}
}

func (c *checker) objOf(id *ast.Ident) types.Object {
	return c.defOrUse(id)
}

func (c *checker) defOrUse(id *ast.Ident) types.Object {
	if obj, ok := c.pass.TypesInfo.Defs[id]; ok && obj != nil {
		return obj
	}
	return c.pass.TypesInfo.Uses[id]
}

// isFieldStore reports whether sel names a struct field (not a package
// member or method).
func (c *checker) isFieldStore(sel *ast.SelectorExpr) bool {
	s, ok := c.pass.TypesInfo.Selections[sel]
	return ok && s.Kind() == types.FieldVal
}

// taintedExpr reports whether e evaluates to an arena span.
func (c *checker) taintedExpr(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.Ident:
		obj := c.objOf(x)
		return obj != nil && c.tainted[obj]
	case *ast.ParenExpr:
		return c.taintedExpr(x.X)
	case *ast.SelectorExpr:
		return c.isSpanField(x)
	case *ast.SliceExpr:
		return c.taintedExpr(x.X)
	case *ast.CallExpr:
		return c.taintedCall(x)
	}
	return false
}

// isSpanField matches sel against the span-loan fields (Record.Data,
// Chunk.Data, Packet.Payload).
func (c *checker) isSpanField(sel *ast.SelectorExpr) bool {
	s, ok := c.pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return false
	}
	recv := s.Recv()
	for {
		if p, ok := recv.(*types.Pointer); ok {
			recv = p.Elem()
			continue
		}
		break
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	key := [2]string{lastSegment(named.Obj().Pkg().Path()), named.Obj().Name()}
	return spanFields[key] == sel.Sel.Name
}

// taintedCall propagates taint through the calls that carry it:
// PacketRing.AllocFrame mints a loan, append carries one when a span is
// appended as an element (appending its bytes with ... is a copy).
func (c *checker) taintedCall(call *ast.CallExpr) bool {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if s, ok := c.pass.TypesInfo.Selections[sel]; ok && s.Kind() == types.MethodVal {
			fn := s.Obj()
			if fn.Name() == "AllocFrame" && fn.Pkg() != nil &&
				lastSegment(fn.Pkg().Path()) == "pcapio" {
				return true
			}
		}
	}
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" {
		if obj := c.pass.TypesInfo.Uses[id]; obj == types.Universe.Lookup("append") {
			if len(call.Args) > 0 && c.taintedExpr(call.Args[0]) {
				return true
			}
			for _, a := range call.Args[1:] {
				if c.taintedExpr(a) {
					// span... spreads bytes into a fresh backing array — a
					// copy; span as an element keeps the slice header.
					if call.Ellipsis.IsValid() && a == call.Args[len(call.Args)-1] {
						continue
					}
					return true
				}
			}
		}
	}
	return false
}

func lastSegment(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
