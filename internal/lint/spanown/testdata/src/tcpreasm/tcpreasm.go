// Package tcpreasm is a spanown fixture stub mirroring the real
// reassembly chunk shape.
package tcpreasm

// Chunk is one delivered run of contiguous payload.
type Chunk struct {
	// Data is the span loaned from the feed.
	Data []byte
}
