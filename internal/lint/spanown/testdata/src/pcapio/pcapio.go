// Package pcapio is a spanown fixture stub: the analyzer matches span
// sources by (package path suffix, type, field/method), so these shapes
// mirror the real repro/internal/pcapio surface.
package pcapio

// Record is one captured frame; Data sub-slices the reader's arena.
type Record struct {
	// Data is the arena loan.
	Data []byte
}

// PacketRing is the caller-owned recycling frame arena.
type PacketRing struct{}

// AllocFrame copies b into a ring block and returns the ring-owned span.
func (r *PacketRing) AllocFrame(b []byte) []byte { return append([]byte(nil), b...) }

// Release hands one span back to the ring.
func (r *PacketRing) Release(span []byte) {}
