// Package spanuser exercises the spanown retention rules against the
// fixture stubs.
package spanuser

import (
	"pcapio"
	"tcpreasm"
)

// holder retains byte slices.
type holder struct {
	buf  []byte
	all  [][]byte
	byID map[int][]byte
}

// use reads a span synchronously (always fine).
func use(b []byte) int { return len(b) }

// fieldStore retains spans in struct fields.
func (h *holder) fieldStore(rec pcapio.Record, c tcpreasm.Chunk) {
	h.buf = rec.Data // want `spanown: storing an arena span in a struct field`
	h.buf = c.Data   // want `spanown: storing an arena span in a struct field`
}

// aliasedStore retains through a local alias and a sub-slice.
func (h *holder) aliasedStore(rec pcapio.Record) {
	d := rec.Data
	h.buf = d[4:8]           // want `spanown: storing an arena span in a struct field`
	h.all = append(h.all, d) // want `spanown: storing an arena span in a struct field`
}

// containerStore retains through a map slot.
func (h *holder) containerStore(rec pcapio.Record) {
	h.byID[1] = rec.Data // want `spanown: storing an arena span in a container`
}

// ringStore retains a ring allocation.
func (h *holder) ringStore(ring *pcapio.PacketRing, frame []byte) {
	h.buf = ring.AllocFrame(frame) // want `spanown: storing an arena span in a struct field`
}

// copyStore copies first — sanctioned.
func (h *holder) copyStore(rec pcapio.Record) {
	h.buf = append([]byte(nil), rec.Data...)
	dup := make([]byte, len(rec.Data))
	copy(dup, rec.Data)
	h.buf = dup
}

// reassign launders taint by overwriting the alias.
func (h *holder) reassign(rec pcapio.Record) {
	d := rec.Data
	d = append([]byte(nil), d...)
	h.buf = d
}

// channelSend leaks a span to another goroutine's lifetime.
func channelSend(rec pcapio.Record, ch chan []byte) {
	ch <- rec.Data // want `spanown: sending an arena span over a channel`
	d := rec.Data[2:]
	ch <- d // want `spanown: sending an arena span over a channel`
	ch <- append([]byte(nil), rec.Data...)
}

// goCapture hands spans to goroutines.
func goCapture(rec pcapio.Record) {
	d := rec.Data
	go use(rec.Data) // want `spanown: goroutine receives an arena span`
	go func() {      // want `spanown: goroutine closure captures arena span "d"`
		use(d)
	}()
	safe := append([]byte(nil), d...)
	go use(safe)
}

// passThrough forwards spans as plain call arguments — fine, the callee
// is analyzed on its own.
func passThrough(rec pcapio.Record) int {
	return use(rec.Data)
}
