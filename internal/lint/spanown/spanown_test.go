package spanown_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/spanown"
)

func TestSpanown(t *testing.T) {
	analysistest.Run(t, "testdata/src", spanown.Analyzer, "spanuser")
}
