// Package analysistest runs a wmlint analyzer over fixture packages and
// checks its diagnostics against // want comments, mirroring the
// golang.org/x/tools/go/analysis/analysistest contract: a fixture line
// that should be flagged carries a comment like
//
//	x := time.Now() // want `time\.Now`
//
// where each backquoted (or double-quoted) string is a regular
// expression that must match exactly one diagnostic reported on that
// line, and every diagnostic must be matched by exactly one want.
package analysistest

import (
	"fmt"
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint/analysis"
	"repro/internal/lint/loader"
)

// wantRx extracts the quoted expectations from a want comment.
var wantRx = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// expectation is one want regexp awaiting a diagnostic.
type expectation struct {
	rx      *regexp.Regexp
	matched bool
}

// Run loads the packages below srcRoot (GOPATH-style: srcRoot/<path>),
// runs the analyzer on each, and reports every mismatch between wants
// and diagnostics as a test error.
func Run(t *testing.T, srcRoot string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	pkgs, err := loader.LoadTree(srcRoot, paths...)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	for _, pkg := range pkgs {
		runPackage(t, a, pkg)
	}
}

// runPackage checks one fixture package.
func runPackage(t *testing.T, a *analysis.Analyzer, pkg *loader.Package) {
	t.Helper()
	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Path:      pkg.Path,
		Pkg:       pkg.Types,
		TypesInfo: pkg.TypesInfo,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("%s: analyzer %s: %v", pkg.Path, a.Name, err)
	}
	analysis.SortDiagnostics(pkg.Fset, diags)

	wants := collectWants(t, pkg)
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		key := posKey(pos)
		exps := wants[key]
		hit := false
		for _, e := range exps {
			if !e.matched && e.rx.MatchString(d.Message) {
				e.matched, hit = true, true
				break
			}
		}
		if !hit {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for key, exps := range wants {
		for _, e := range exps {
			if !e.matched {
				t.Errorf("%s: want %q matched no diagnostic", key, e.rx)
			}
		}
	}
}

// collectWants parses every want comment in the package.
func collectWants(t *testing.T, pkg *loader.Package) map[string][]*expectation {
	t.Helper()
	wants := map[string][]*expectation{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(text), "/*"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, q := range wantRx.FindAllString(text[len("want "):], -1) {
					var pat string
					if q[0] == '`' {
						pat = q[1 : len(q)-1]
					} else {
						var err error
						pat, err = strconv.Unquote(q)
						if err != nil {
							t.Fatalf("%s: bad want string %s: %v", pos, q, err)
						}
					}
					rx, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
					}
					key := posKey(pos)
					wants[key] = append(wants[key], &expectation{rx: rx})
				}
			}
		}
	}
	return wants
}

// posKey renders a file:line key.
func posKey(pos token.Position) string {
	return fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
}
