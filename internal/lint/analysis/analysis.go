// Package analysis is the stdlib-only core of the wmlint static-analysis
// suite: the Analyzer/Pass/Diagnostic contract the repo's invariant
// checkers are written against.
//
// The shape deliberately mirrors golang.org/x/tools/go/analysis — an
// Analyzer owns a Run function that inspects one type-checked package
// through a Pass and reports Diagnostics — so the checkers could migrate
// to the upstream framework mechanically if the dependency ever lands.
// This module vendors nothing and the build environment is offline, so
// the drivers (cmd/wmlint, the analysistest harness) are local too.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one invariant checker: a name diagnostics are attributed
// to (and that //lint:allow markers reference), documentation, and the
// per-package Run function.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and allow markers.
	Name string
	// Doc states the invariant the analyzer proves and the sanctioned
	// alternatives its diagnostics point to.
	Doc string
	// AppliesTo, when non-nil, restricts which packages the driver runs
	// the analyzer on (by import path). Analyzers that gate on package
	// identity themselves leave it nil. Test harnesses bypass it.
	AppliesTo func(pkgPath string) bool
	// Run inspects one package and reports findings via pass.Report.
	Run func(pass *Pass) error
}

// Pass carries one type-checked package through an Analyzer.Run call.
type Pass struct {
	// Analyzer is the checker this pass runs.
	Analyzer *Analyzer
	// Fset maps token positions for every file in the pass.
	Fset *token.FileSet
	// Files are the package's parsed source files (no test files).
	Files []*ast.File
	// Path is the package's import path.
	Path string
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds the type-checker's expression/object maps.
	TypesInfo *types.Info
	// Report delivers one finding.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding: a position, the analyzer that produced it,
// and a message naming the broken invariant and the sanctioned fix.
type Diagnostic struct {
	// Pos locates the finding.
	Pos token.Pos
	// Analyzer names the producing checker (the allow-marker key).
	Analyzer string
	// Message states the invariant violation and what to do instead.
	Message string
}
