package analysis

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// allowPrefix is the marker comment that suppresses one diagnostic:
//
//	//lint:allow <analyzer> <reason>
//
// The marker covers its own source line and, when it stands alone on a
// line, the line immediately below it. The reason is mandatory — an
// exception with no recorded rationale is itself a diagnostic.
const allowPrefix = "//lint:allow"

// Allow is one parsed //lint:allow marker.
type Allow struct {
	// File and Line locate the marker.
	File string
	Line int
	// Analyzer is the checker the marker silences.
	Analyzer string
	// Reason is the recorded rationale (never empty for a valid marker).
	Reason string
	// standalone reports that the marker owns its line, so it also
	// covers the next line.
	standalone bool
}

// Covers reports whether the marker suppresses a diagnostic of the
// given analyzer at file:line.
func (a Allow) Covers(analyzer, file string, line int) bool {
	if a.Analyzer != analyzer || a.File != file {
		return false
	}
	return line == a.Line || (a.standalone && line == a.Line+1)
}

// CollectAllows extracts every //lint:allow marker from the files.
// Malformed markers (missing analyzer or reason) come back as
// diagnostics attributed to the pseudo-analyzer "allow".
func CollectAllows(fset *token.FileSet, files []*ast.File) ([]Allow, []Diagnostic) {
	var allows []Allow
	var bad []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, allowPrefix)
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					bad = append(bad, Diagnostic{Pos: c.Pos(), Analyzer: "allow",
						Message: "malformed lint:allow marker: want //lint:allow <analyzer> <reason>"})
					continue
				}
				reason := strings.TrimSpace(strings.TrimPrefix(
					strings.TrimSpace(rest), fields[0]))
				allows = append(allows, Allow{
					File:       pos.Filename,
					Line:       pos.Line,
					Analyzer:   fields[0],
					Reason:     reason,
					standalone: standaloneComment(fset, f, c),
				})
			}
		}
	}
	return allows, bad
}

// standaloneComment reports whether c is the only thing on its line (a
// marker above the flagged line, rather than trailing it).
func standaloneComment(fset *token.FileSet, f *ast.File, c *ast.Comment) bool {
	line := fset.Position(c.Pos()).Line
	standalone := true
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || !standalone {
			return false
		}
		if fset.Position(n.Pos()).Line <= line && fset.Position(n.End()).Line >= line {
			switch n.(type) {
			case *ast.File, *ast.GenDecl, *ast.FuncDecl, *ast.BlockStmt,
				*ast.StructType, *ast.InterfaceType, *ast.FieldList,
				*ast.CaseClause, *ast.CommClause, *ast.CompositeLit:
				return true // containers may span the line; look inside
			case *ast.Comment, *ast.CommentGroup:
				return false // comments (the marker itself included) don't count
			}
			if fset.Position(n.Pos()).Line == line || fset.Position(n.End()).Line == line {
				standalone = false
			}
			return false
		}
		return true
	})
	return standalone
}

// FilterAllowed splits diagnostics into kept and suppressed according
// to the markers, and reports markers that suppressed nothing (an
// unused exception is stale and should be deleted).
func FilterAllowed(fset *token.FileSet, diags []Diagnostic, allows []Allow) (kept, suppressed []Diagnostic, unused []Allow) {
	usedMarker := make([]bool, len(allows))
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		hit := -1
		for i, a := range allows {
			if a.Covers(d.Analyzer, pos.Filename, pos.Line) {
				hit = i
				break
			}
		}
		if hit >= 0 {
			usedMarker[hit] = true
			suppressed = append(suppressed, d)
		} else {
			kept = append(kept, d)
		}
	}
	for i, a := range allows {
		if !usedMarker[i] {
			unused = append(unused, a)
		}
	}
	SortDiagnostics(fset, kept)
	SortDiagnostics(fset, suppressed)
	return kept, suppressed, unused
}

// SortDiagnostics orders diagnostics by file, line, column, analyzer —
// the stable presentation order every driver uses.
func SortDiagnostics(fset *token.FileSet, diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
}
