package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

const allowSrc = `package p

func trailing() {
	bad() //lint:allow detrand trailing marker covers its own line
}

func standalone() {
	//lint:allow spanown standalone marker covers the next line
	alsoBad()
}

func malformed() {
	oops() //lint:allow detrand
}

//lint:allow eventcase this one suppresses nothing and is stale
func clean() {}
`

func parseAllowSrc(t *testing.T) (*token.FileSet, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "allow_src.go", allowSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, f
}

// lineStart returns a Pos on the given 1-based line of the parsed file.
func lineStart(fset *token.FileSet, f *ast.File, line int) token.Pos {
	return fset.File(f.Pos()).LineStart(line)
}

func TestCollectAllows(t *testing.T) {
	fset, f := parseAllowSrc(t)
	allows, bad := CollectAllows(fset, []*ast.File{f})
	if len(allows) != 3 {
		t.Fatalf("got %d allows, want 3: %+v", len(allows), allows)
	}
	if len(bad) != 1 {
		t.Fatalf("got %d malformed markers, want 1: %+v", len(bad), bad)
	}
	trailing, standalone, stale := allows[0], allows[1], allows[2]
	if trailing.Analyzer != "detrand" || trailing.standalone {
		t.Errorf("trailing marker parsed as %+v", trailing)
	}
	if trailing.Reason != "trailing marker covers its own line" {
		t.Errorf("trailing reason = %q", trailing.Reason)
	}
	if standalone.Analyzer != "spanown" || !standalone.standalone {
		t.Errorf("standalone marker parsed as %+v", standalone)
	}
	if stale.Analyzer != "eventcase" || !stale.standalone {
		t.Errorf("stale marker parsed as %+v", stale)
	}
	if bad[0].Analyzer != "allow" {
		t.Errorf("malformed marker attributed to %q, want pseudo-analyzer allow", bad[0].Analyzer)
	}
}

func TestCovers(t *testing.T) {
	fset, f := parseAllowSrc(t)
	allows, _ := CollectAllows(fset, []*ast.File{f})
	trailing, standalone := allows[0], allows[1]

	if !trailing.Covers("detrand", "allow_src.go", trailing.Line) {
		t.Error("trailing marker must cover its own line")
	}
	if trailing.Covers("detrand", "allow_src.go", trailing.Line+1) {
		t.Error("trailing marker must not cover the next line")
	}
	if trailing.Covers("spanown", "allow_src.go", trailing.Line) {
		t.Error("marker must be analyzer-specific")
	}
	if trailing.Covers("detrand", "other.go", trailing.Line) {
		t.Error("marker must be file-specific")
	}
	if !standalone.Covers("spanown", "allow_src.go", standalone.Line+1) {
		t.Error("standalone marker must cover the line below it")
	}
}

func TestFilterAllowed(t *testing.T) {
	fset, f := parseAllowSrc(t)
	allows, _ := CollectAllows(fset, []*ast.File{f})
	trailing, standalone := allows[0], allows[1]

	diags := []Diagnostic{
		{Pos: lineStart(fset, f, standalone.Line+1), Analyzer: "spanown", Message: "covered by standalone"},
		{Pos: lineStart(fset, f, trailing.Line), Analyzer: "spanown", Message: "wrong analyzer, kept"},
		{Pos: lineStart(fset, f, trailing.Line), Analyzer: "detrand", Message: "covered by trailing"},
	}
	kept, suppressed, unused := FilterAllowed(fset, diags, allows)
	if len(kept) != 1 || kept[0].Message != "wrong analyzer, kept" {
		t.Errorf("kept = %+v, want exactly the wrong-analyzer diagnostic", kept)
	}
	if len(suppressed) != 2 {
		t.Errorf("suppressed = %+v, want both covered diagnostics", suppressed)
	}
	if len(unused) != 1 || unused[0].Analyzer != "eventcase" {
		t.Errorf("unused = %+v, want exactly the stale eventcase marker", unused)
	}
}
