package atomiccursor_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/atomiccursor"
)

func TestAtomicCursor(t *testing.T) {
	analysistest.Run(t, "testdata/src", atomiccursor.Analyzer, "cursor")
}
