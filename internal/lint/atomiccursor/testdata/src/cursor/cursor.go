// Package cursor exercises atomiccursor: fields accessed via
// sync/atomic anywhere in the package must be accessed atomically
// everywhere.
package cursor

import "sync/atomic"

// ring is an SPSC-style ring with old-style atomic cursor fields.
type ring struct {
	head uint64
	tail uint64
	name string
}

// push advances the tail atomically (this is what marks the fields).
func (r *ring) push() {
	t := atomic.LoadUint64(&r.tail)
	atomic.StoreUint64(&r.tail, t+1)
	_ = atomic.LoadUint64(&r.head)
}

// lenRacy mixes a plain read of tail with an atomic read of head — the
// Dekker-parking bug class.
func (r *ring) lenRacy() uint64 {
	return r.tail - atomic.LoadUint64(&r.head) // want `atomiccursor: plain access to field ring\.tail`
}

// reset writes both cursors plainly.
func (r *ring) reset() {
	r.head = 0 // want `atomiccursor: plain access to field ring\.head`
	r.tail = 0 // want `atomiccursor: plain access to field ring\.tail`
}

// label reads an unrelated plain field — fine.
func (r *ring) label() string { return r.name }

// plainCounter never sees sync/atomic, so plain access everywhere is
// fine.
type plainCounter struct {
	n int64
}

// bump increments plainly.
func (c *plainCounter) bump() { c.n++ }

// value reads plainly.
func (c *plainCounter) value() int64 { return c.n }
