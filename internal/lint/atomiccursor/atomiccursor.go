// Package atomiccursor proves the SPSC cursor discipline at compile
// time: a struct field that any code in the package accesses through
// sync/atomic (atomic.LoadUint64(&s.f), atomic.AddInt64(&s.f), ...) is
// a shared cursor, and every other access to it must be atomic too. A
// plain read or write of such a field — typically a "it's only stats"
// shortcut — is exactly the Dekker-parking bug class the sharded
// monitor's internal/parallel.SPSC rings are vulnerable to: the racy
// access tears, or the compiler hoists it out of the loop that was
// supposed to observe the other goroutine's store.
//
// Fields declared with the typed atomics (atomic.Uint64 and friends)
// are immune by construction — plain access doesn't compile — which is
// also the sanctioned migration the diagnostic suggests.
package atomiccursor

import (
	"fmt"
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// Analyzer is the atomiccursor checker.
var Analyzer = &analysis.Analyzer{
	Name: "atomiccursor",
	Doc: "a struct field accessed via sync/atomic anywhere in the package " +
		"must never be read or written plainly elsewhere",
	Run: run,
}

func run(pass *analysis.Pass) error {
	// Pass 1: collect the fields used atomically, and remember the
	// selector nodes that appear inside atomic call arguments so pass 2
	// can skip them.
	atomicFields := map[types.Object]string{} // field -> atomic func name
	inAtomicArg := map[*ast.SelectorExpr]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				un, ok := arg.(*ast.UnaryExpr)
				if !ok || un.Op.String() != "&" {
					continue
				}
				fieldSel, ok := un.X.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				s, ok := pass.TypesInfo.Selections[fieldSel]
				if !ok || s.Kind() != types.FieldVal {
					continue
				}
				atomicFields[s.Obj()] = fn.Name()
				inAtomicArg[fieldSel] = true
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return nil
	}
	// Pass 2: every other selector of those fields is a racy plain
	// access.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || inAtomicArg[sel] {
				return true
			}
			s, ok := pass.TypesInfo.Selections[sel]
			if !ok || s.Kind() != types.FieldVal {
				return true
			}
			if fnName, hot := atomicFields[s.Obj()]; hot {
				pass.Reportf(sel.Pos(), "atomiccursor: plain access to field %s, "+
					"which %s elsewhere in this package accesses atomically — the "+
					"race tears or gets hoisted; use sync/atomic here too, or "+
					"migrate the field to the typed atomic.%s",
					fieldDesc(s), "atomic."+fnName, typedAtomicFor(s.Obj().Type()))
			}
			return true
		})
	}
	return nil
}

// fieldDesc renders Type.field for the diagnostic.
func fieldDesc(s *types.Selection) string {
	recv := s.Recv()
	for {
		if p, ok := recv.(*types.Pointer); ok {
			recv = p.Elem()
			continue
		}
		break
	}
	name := recv.String()
	if named, ok := recv.(*types.Named); ok {
		name = named.Obj().Name()
	}
	return fmt.Sprintf("%s.%s", name, s.Obj().Name())
}

// typedAtomicFor names the sync/atomic wrapper type for a plain field
// type (the migration the diagnostic suggests).
func typedAtomicFor(t types.Type) string {
	if b, ok := t.Underlying().(*types.Basic); ok {
		switch b.Kind() {
		case types.Uint32:
			return "Uint32"
		case types.Uint64:
			return "Uint64"
		case types.Int32:
			return "Int32"
		case types.Int64:
			return "Int64"
		case types.Bool:
			return "Bool"
		case types.Uintptr:
			return "Uintptr"
		}
	}
	return "Value"
}
