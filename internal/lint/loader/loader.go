// Package loader type-checks Go packages for the wmlint analyzers
// without golang.org/x/tools: target packages are parsed from source and
// their dependencies are imported from compiler export data produced by
// `go list -export`, so loading works offline from the build cache.
//
// Two entry points cover the two drivers. LoadModule resolves package
// patterns inside a module the way cmd/wmlint needs (the real tree);
// LoadTree type-checks a GOPATH-style source directory the way the
// analysistest fixtures need (testdata/src/<path>), recursing into
// sibling fixture packages from source and taking the standard library
// from export data.
package loader

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package.
type Package struct {
	// Path is the package's import path.
	Path string
	// Dir is the directory the sources were read from.
	Dir string
	// Fset maps positions for Files (shared across one load).
	Fset *token.FileSet
	// Files are the parsed non-test sources, in file-name order.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// TypesInfo carries the type-checker's maps for Files.
	TypesInfo *types.Info
}

// listEntry is the subset of `go list -json` output the loader reads.
type listEntry struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	ImportMap  map[string]string
}

// goList runs `go list -export -deps -json` in dir and decodes the
// stream.
func goList(dir string, patterns []string) ([]listEntry, error) {
	args := append([]string{"list", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("loader: go list %s: %w", strings.Join(patterns, " "), err)
	}
	var entries []listEntry
	dec := json.NewDecoder(strings.NewReader(string(out)))
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("loader: decoding go list output: %w", err)
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// exportImporter resolves imports from compiler export data via the gc
// importer, with per-package ImportMap indirection layered on top.
type exportImporter struct {
	gc        types.ImporterFrom
	mu        sync.Mutex
	exports   map[string]string // import path -> export data file
	importMap map[string]string // current package's vendor/module map
}

func newExportImporter(fset *token.FileSet) *exportImporter {
	e := &exportImporter{exports: map[string]string{}}
	e.gc = importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		e.mu.Lock()
		file, ok := e.exports[path]
		e.mu.Unlock()
		if !ok {
			return nil, fmt.Errorf("loader: no export data for %q", path)
		}
		return os.Open(file)
	}).(types.ImporterFrom)
	return e
}

func (e *exportImporter) add(entries []listEntry) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, ent := range entries {
		if ent.Export != "" {
			e.exports[ent.ImportPath] = ent.Export
		}
	}
}

func (e *exportImporter) has(path string) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	_, ok := e.exports[path]
	return ok
}

// Import implements types.Importer.
func (e *exportImporter) Import(path string) (*types.Package, error) {
	return e.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom.
func (e *exportImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if e.importMap != nil {
		if mapped, ok := e.importMap[path]; ok {
			path = mapped
		}
	}
	return e.gc.ImportFrom(path, dir, mode)
}

// parseDir parses the named files of one package directory.
func parseDir(fset *token.FileSet, dir string, names []string) ([]*ast.File, error) {
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// newInfo allocates the TypesInfo maps every pass consumes.
func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}

// typeCheck runs the type checker over one package's parsed files.
func typeCheck(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := newInfo()
	var firstErr error
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	pkg, err := conf.Check(path, fset, files, info)
	if firstErr != nil {
		return nil, nil, fmt.Errorf("loader: type-checking %s: %w", path, firstErr)
	}
	if err != nil {
		return nil, nil, fmt.Errorf("loader: type-checking %s: %w", path, err)
	}
	return pkg, info, nil
}

// LoadModule loads the packages matching patterns in the module rooted
// at dir: targets are parsed and type-checked from source, dependencies
// come from export data, test files are excluded (the invariants live
// in production code; the doc lint never covered tests either).
func LoadModule(dir string, patterns ...string) ([]*Package, error) {
	entries, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := newExportImporter(fset)
	imp.add(entries)
	var pkgs []*Package
	for _, ent := range entries {
		if ent.DepOnly || ent.Standard || len(ent.GoFiles) == 0 {
			continue
		}
		files, err := parseDir(fset, ent.Dir, append([]string(nil), ent.GoFiles...))
		if err != nil {
			return nil, fmt.Errorf("loader: parsing %s: %w", ent.ImportPath, err)
		}
		imp.importMap = ent.ImportMap
		tpkg, info, err := typeCheck(fset, ent.ImportPath, files, imp)
		imp.importMap = nil
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, &Package{Path: ent.ImportPath, Dir: ent.Dir,
			Fset: fset, Files: files, Types: tpkg, TypesInfo: info})
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// treeLoader type-checks a GOPATH-style source tree (import path ==
// directory under root), recursing into tree packages from source and
// resolving everything else from export data fetched lazily via
// `go list -export -deps`.
type treeLoader struct {
	root string
	fset *token.FileSet
	imp  *exportImporter
	pkgs map[string]*Package
	seen map[string]bool // import-cycle guard
}

// Import implements types.Importer for fixture source trees.
func (l *treeLoader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if fi, err := os.Stat(filepath.Join(l.root, filepath.FromSlash(path))); err == nil && fi.IsDir() {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	if !l.imp.has(path) {
		entries, err := goList(l.root, []string{path})
		if err != nil {
			return nil, err
		}
		l.imp.add(entries)
	}
	return l.imp.Import(path)
}

// load parses and type-checks one tree package (memoized).
func (l *treeLoader) load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.seen[path] {
		return nil, fmt.Errorf("loader: import cycle through %q", path)
	}
	l.seen[path] = true
	dir := filepath.Join(l.root, filepath.FromSlash(path))
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("loader: %w", err)
	}
	var names []string
	for _, de := range des {
		if n := de.Name(); strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
			names = append(names, n)
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("loader: no Go files in %s", dir)
	}
	files, err := parseDir(l.fset, dir, names)
	if err != nil {
		return nil, fmt.Errorf("loader: parsing %s: %w", path, err)
	}
	tpkg, info, err := typeCheck(l.fset, path, files, l)
	if err != nil {
		return nil, err
	}
	p := &Package{Path: path, Dir: dir, Fset: l.fset, Files: files,
		Types: tpkg, TypesInfo: info}
	l.pkgs[path] = p
	return p, nil
}

// LoadTree loads the named packages from a GOPATH-style source root
// (the analysistest fixture layout: root/<import path>/*.go).
func LoadTree(root string, paths ...string) ([]*Package, error) {
	fset := token.NewFileSet()
	l := &treeLoader{root: root, fset: fset, imp: newExportImporter(fset),
		pkgs: map[string]*Package{}, seen: map[string]bool{}}
	var out []*Package
	for _, path := range paths {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}
