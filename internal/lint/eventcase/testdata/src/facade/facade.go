// Package facade re-exports the events fixture through type aliases,
// the way the repo's root package re-exports attack's event types.
package facade

import "events"

// Aliases mirror whitemirror.go: consumers switch on these names, and
// eventcase must count them as the event types they alias.
type (
	// Event is the aliased event interface.
	Event = events.Event
	// FlowDetected aliases events.FlowDetected.
	FlowDetected = events.FlowDetected
	// ChoiceInferred aliases events.ChoiceInferred.
	ChoiceInferred = events.ChoiceInferred
	// SessionFinalized aliases events.SessionFinalized.
	SessionFinalized = events.SessionFinalized
	// FlowExpired aliases events.FlowExpired.
	FlowExpired = events.FlowExpired
	// QUICFlowObserved aliases events.QUICFlowObserved.
	QUICFlowObserved = events.QUICFlowObserved
)
