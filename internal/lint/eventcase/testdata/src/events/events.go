// Package events is an eventcase fixture mirroring the Monitor event
// interface: a sealed interface with an unexported marker method and
// five concrete event types.
package events

// Event is the sealed event interface (the marker method is how the
// analyzer recognizes it).
type Event interface{ monitorEvent() }

// FlowDetected mirrors the real first-report event.
type FlowDetected struct{}

// ChoiceInferred mirrors the real per-report decode event.
type ChoiceInferred struct{}

// SessionFinalized mirrors the real final-inference event.
type SessionFinalized struct{}

// FlowExpired mirrors the real window-eviction event.
type FlowExpired struct{}

// QUICFlowObserved mirrors the real QUIC-handshake event.
type QUICFlowObserved struct{}

func (FlowDetected) monitorEvent()     {}
func (ChoiceInferred) monitorEvent()   {}
func (SessionFinalized) monitorEvent() {}
func (FlowExpired) monitorEvent()      {}
func (QUICFlowObserved) monitorEvent() {}
