// Package consumer exercises eventcase against the events fixture.
package consumer

import "events"

// Exhaustive lists every event type — sanctioned.
func Exhaustive(ev events.Event) string {
	switch ev.(type) {
	case events.FlowDetected:
		return "detected"
	case events.ChoiceInferred:
		return "choice"
	case events.SessionFinalized:
		return "final"
	case events.FlowExpired:
		return "expired"
	case events.QUICFlowObserved:
		return "quic"
	}
	return ""
}

// Ignoring documents deliberate ignores with empty cases — sanctioned.
func Ignoring(ev events.Event) int {
	n := 0
	switch ev.(type) {
	case events.FlowDetected, events.ChoiceInferred, events.QUICFlowObserved:
		// seen, deliberately uncounted
	case events.SessionFinalized:
		n++
	case events.FlowExpired:
		n--
	}
	return n
}

// Partial drops three event types on the floor.
func Partial(ev events.Event) int {
	switch ev.(type) { // want `eventcase: type switch over the Monitor event interface is missing cases ChoiceInferred, FlowDetected, QUICFlowObserved`
	case events.SessionFinalized:
		return 1
	case events.FlowExpired:
		return -1
	}
	return 0
}

// DefaultDoesNotExcuse hides the drop behind a default clause.
func DefaultDoesNotExcuse(ev events.Event) int {
	switch ev.(type) { // want `eventcase: type switch over the Monitor event interface is missing cases ChoiceInferred, FlowDetected, FlowExpired, QUICFlowObserved`
	case events.SessionFinalized:
		return 1
	default:
		return 0
	}
}

// PointerCases count as coverage of their element type.
func PointerCases(ev events.Event) string {
	switch ev.(type) {
	case *events.FlowDetected, events.FlowDetected:
		return "detected"
	case events.ChoiceInferred:
		return "choice"
	case events.SessionFinalized:
		return "final"
	case events.FlowExpired:
		return "expired"
	case events.QUICFlowObserved:
		return "quic"
	}
	return ""
}

// InterfaceCase covers everything through the interface itself.
func InterfaceCase(ev events.Event) string {
	switch ev.(type) {
	case nil:
		return "nil"
	case events.Event:
		return "event"
	}
	return ""
}

// NotAnEventSwitch is a type switch over a different interface — out of
// scope.
func NotAnEventSwitch(v any) string {
	switch v.(type) {
	case int:
		return "int"
	}
	return ""
}
