package consumer

import "facade"

// AliasExhaustive switches on the aliased re-exports; each alias must
// count as coverage of the event type it names — sanctioned.
func AliasExhaustive(ev facade.Event) string {
	switch ev.(type) {
	case facade.FlowDetected:
		return "detected"
	case facade.ChoiceInferred:
		return "choice"
	case facade.SessionFinalized:
		return "final"
	case facade.FlowExpired:
		return "expired"
	case facade.QUICFlowObserved:
		return "quic"
	}
	return ""
}

// AliasPartial drops aliased event types on the floor.
func AliasPartial(ev facade.Event) int {
	switch ev.(type) { // want `eventcase: type switch over the Monitor event interface is missing cases ChoiceInferred, FlowDetected, QUICFlowObserved`
	case facade.SessionFinalized:
		return 1
	case facade.FlowExpired:
		return -1
	}
	return 0
}
