// Package eventcase proves Monitor-event exhaustiveness at compile
// time: a type switch over the Monitor event interface (attack.Event,
// re-exported as whitemirror.MonitorEvent) must name every concrete
// event type — FlowDetected, ChoiceInferred, SessionFinalized,
// FlowExpired — so that adding a fifth event type turns every consumer
// that would silently drop it into a build-time (well, lint-time)
// failure instead of a silent observability hole.
//
// The event interface is recognized structurally, by its unexported
// monitorEvent() marker method, and the required case set is computed
// from the interface's defining package — whatever concrete types
// implement the marker there — so the analyzer extends itself when a
// new event type lands. A default clause does not excuse missing cases
// (that is precisely the silent-drop shape); a consumer that genuinely
// cares about a subset lists the rest as empty cases or carries a
// //lint:allow eventcase marker with its reason.
package eventcase

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
)

// markerMethod structurally identifies the Monitor event interface.
const markerMethod = "monitorEvent"

// Analyzer is the eventcase checker.
var Analyzer = &analysis.Analyzer{
	Name: "eventcase",
	Doc: "type switches over the Monitor event interface must be " +
		"exhaustive over all concrete event types",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSwitchStmt)
			if !ok {
				return true
			}
			checkSwitch(pass, ts)
			return true
		})
	}
	return nil
}

// checkSwitch verifies one type switch when its tag is an event
// interface.
func checkSwitch(pass *analysis.Pass, ts *ast.TypeSwitchStmt) {
	tag := switchTag(ts)
	if tag == nil {
		return
	}
	tv, ok := pass.TypesInfo.Types[tag]
	if !ok {
		return
	}
	iface, ok := tv.Type.Underlying().(*types.Interface)
	if !ok {
		return
	}
	marker := findMarker(iface)
	if marker == nil {
		return
	}
	required := eventTypes(marker, iface)
	if len(required) == 0 {
		return
	}
	covered := map[string]bool{}
	var coverAll bool
	for _, clause := range ts.Body.List {
		cc, ok := clause.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, cexpr := range cc.List {
			if id, ok := cexpr.(*ast.Ident); ok && id.Name == "nil" {
				continue
			}
			ctv, ok := pass.TypesInfo.Types[cexpr]
			if !ok {
				continue
			}
			// Unalias so facade re-exports (`FlowDetected = attack.FlowDetected`)
			// count as the event type they name under materialized aliases.
			t := types.Unalias(ctv.Type)
			if p, ok := t.(*types.Pointer); ok {
				t = types.Unalias(p.Elem())
			}
			if sub, ok := t.Underlying().(*types.Interface); ok {
				// An interface case (e.g. the event interface itself)
				// covers every required type that implements it.
				all := true
				for _, req := range required {
					if !types.Implements(req.typ, sub) && !types.Implements(types.NewPointer(req.typ), sub) {
						all = false
					}
				}
				if all {
					coverAll = true
				}
				continue
			}
			if named, ok := t.(*types.Named); ok {
				covered[named.Obj().Name()] = true
			}
		}
	}
	if coverAll {
		return
	}
	var missing []string
	for _, req := range required {
		if !covered[req.name] {
			missing = append(missing, req.name)
		}
	}
	if len(missing) > 0 {
		pass.Reportf(ts.Pos(), "eventcase: type switch over the Monitor event "+
			"interface is missing cases %s; handle every event type (an empty "+
			"case documents a deliberate ignore) so new events cannot be "+
			"silently dropped", strings.Join(missing, ", "))
	}
}

// switchTag extracts the x of `switch v := x.(type)`.
func switchTag(ts *ast.TypeSwitchStmt) ast.Expr {
	var assert ast.Expr
	switch a := ts.Assign.(type) {
	case *ast.ExprStmt:
		assert = a.X
	case *ast.AssignStmt:
		if len(a.Rhs) == 1 {
			assert = a.Rhs[0]
		}
	}
	ta, ok := assert.(*ast.TypeAssertExpr)
	if !ok {
		return nil
	}
	return ta.X
}

// findMarker returns the monitorEvent marker method if iface carries it.
func findMarker(iface *types.Interface) *types.Func {
	for i := 0; i < iface.NumMethods(); i++ {
		if m := iface.Method(i); m.Name() == markerMethod {
			return m
		}
	}
	return nil
}

// eventType is one required concrete event type.
type eventType struct {
	name string
	typ  types.Type
}

// eventTypes enumerates the concrete types in the marker method's
// defining package that implement the event interface — the required
// case set, computed fresh so new event types extend the check.
func eventTypes(marker *types.Func, iface *types.Interface) []eventType {
	pkg := marker.Pkg()
	if pkg == nil {
		return nil
	}
	var out []eventType
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if _, isIface := named.Underlying().(*types.Interface); isIface {
			continue
		}
		if types.Implements(named, iface) || types.Implements(types.NewPointer(named), iface) {
			out = append(out, eventType{name: tn.Name(), typ: named})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}
