package eventcase_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/eventcase"
)

func TestEventcase(t *testing.T) {
	analysistest.Run(t, "testdata/src", eventcase.Analyzer, "consumer")
}
