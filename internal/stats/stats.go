// Package stats provides the small statistical toolkit the experiment
// harness uses: histograms over arbitrary integer bins (for the Figure 2
// record-length distributions), confusion matrices with accuracy metrics,
// percentiles, and plain-text table/bar rendering for terminal reports.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Bin is one histogram bucket over an inclusive integer range. Lo or Hi
// may be open (math.MinInt / math.MaxInt) for the paper's "<=x" / ">=y"
// edge bins.
type Bin struct {
	Lo, Hi int
}

// Label renders the bin the way the paper's Figure 2 axis does.
func (b Bin) Label() string {
	switch {
	case b.Lo == math.MinInt && b.Hi == math.MaxInt:
		return "all"
	case b.Lo == math.MinInt:
		return fmt.Sprintf("<=%d", b.Hi)
	case b.Hi == math.MaxInt:
		return fmt.Sprintf(">=%d", b.Lo)
	case b.Lo == b.Hi:
		return fmt.Sprintf("%d", b.Lo)
	default:
		return fmt.Sprintf("%d-%d", b.Lo, b.Hi)
	}
}

// Contains reports whether v falls in the bin.
func (b Bin) Contains(v int) bool { return v >= b.Lo && v <= b.Hi }

// Histogram counts values per bin for several named series (e.g. the
// type-1 / type-2 / others classes of Figure 2).
type Histogram struct {
	Bins   []Bin
	Series []string
	counts map[string][]int
	totals map[string]int
}

// NewHistogram creates a histogram over bins for the named series.
func NewHistogram(bins []Bin, series ...string) *Histogram {
	h := &Histogram{
		Bins: bins, Series: series,
		counts: make(map[string][]int, len(series)),
		totals: make(map[string]int, len(series)),
	}
	for _, s := range series {
		h.counts[s] = make([]int, len(bins))
	}
	return h
}

// Observe adds one value to a series. Values outside every bin are still
// counted in the series total (they dilute percentages, matching how the
// paper's percentages are normalized per class).
func (h *Histogram) Observe(series string, v int) {
	c, ok := h.counts[series]
	if !ok {
		return
	}
	h.totals[series]++
	for i, b := range h.Bins {
		if b.Contains(v) {
			c[i]++
			return
		}
	}
}

// Count returns the raw count for a series and bin index.
func (h *Histogram) Count(series string, bin int) int {
	return h.counts[series][bin]
}

// Total returns the number of observations in a series.
func (h *Histogram) Total(series string) int { return h.totals[series] }

// Percent returns the percentage of a series' observations in a bin.
func (h *Histogram) Percent(series string, bin int) float64 {
	t := h.totals[series]
	if t == 0 {
		return 0
	}
	return 100 * float64(h.counts[series][bin]) / float64(t)
}

// Render draws the histogram as a text table: bins as rows, one
// percentage column per series.
func (h *Histogram) Render(title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	header := append([]string{"SSL record length"}, h.Series...)
	rows := [][]string{}
	for i, bin := range h.Bins {
		row := []string{bin.Label()}
		for _, s := range h.Series {
			row = append(row, fmt.Sprintf("%.1f%%", h.Percent(s, i)))
		}
		rows = append(rows, row)
	}
	b.WriteString(RenderTable(header, rows))
	return b.String()
}

// ConfusionMatrix tallies predicted-vs-actual labels.
type ConfusionMatrix struct {
	Labels []string
	index  map[string]int
	cells  [][]int
}

// NewConfusionMatrix creates a matrix over the label set.
func NewConfusionMatrix(labels ...string) *ConfusionMatrix {
	m := &ConfusionMatrix{Labels: labels, index: make(map[string]int)}
	for i, l := range labels {
		m.index[l] = i
	}
	m.cells = make([][]int, len(labels))
	for i := range m.cells {
		m.cells[i] = make([]int, len(labels))
	}
	return m
}

// Observe records one (actual, predicted) pair; unknown labels are
// ignored.
func (m *ConfusionMatrix) Observe(actual, predicted string) {
	a, ok1 := m.index[actual]
	p, ok2 := m.index[predicted]
	if !ok1 || !ok2 {
		return
	}
	m.cells[a][p]++
}

// Count returns the cell count for (actual, predicted).
func (m *ConfusionMatrix) Count(actual, predicted string) int {
	a, ok1 := m.index[actual]
	p, ok2 := m.index[predicted]
	if !ok1 || !ok2 {
		return 0
	}
	return m.cells[a][p]
}

// Accuracy is the fraction of observations on the diagonal.
func (m *ConfusionMatrix) Accuracy() float64 {
	var correct, total int
	for i := range m.cells {
		for j, c := range m.cells[i] {
			total += c
			if i == j {
				correct += c
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}

// Recall returns the per-class recall for a label.
func (m *ConfusionMatrix) Recall(label string) float64 {
	i, ok := m.index[label]
	if !ok {
		return 0
	}
	var row int
	for _, c := range m.cells[i] {
		row += c
	}
	if row == 0 {
		return 0
	}
	return float64(m.cells[i][i]) / float64(row)
}

// Precision returns the per-class precision for a label.
func (m *ConfusionMatrix) Precision(label string) float64 {
	j, ok := m.index[label]
	if !ok {
		return 0
	}
	var col int
	for i := range m.cells {
		col += m.cells[i][j]
	}
	if col == 0 {
		return 0
	}
	return float64(m.cells[j][j]) / float64(col)
}

// Render draws the matrix with per-class recall.
func (m *ConfusionMatrix) Render() string {
	header := append([]string{"actual\\predicted"}, m.Labels...)
	header = append(header, "recall")
	var rows [][]string
	for i, l := range m.Labels {
		row := []string{l}
		for j := range m.Labels {
			row = append(row, fmt.Sprintf("%d", m.cells[i][j]))
		}
		row = append(row, fmt.Sprintf("%.1f%%", 100*m.Recall(l)))
		rows = append(rows, row)
	}
	return RenderTable(header, rows)
}

// Percentile returns the p-th percentile (0-100) of values using linear
// interpolation; it returns 0 for an empty slice.
func Percentile(values []float64, p float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	var sum float64
	for _, v := range values {
		sum += v
	}
	return sum / float64(len(values))
}

// Min returns the minimum (0 for empty input).
func Min(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	m := values[0]
	for _, v := range values[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// RenderTable draws a padded ASCII table.
func RenderTable(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// RenderBar draws a simple horizontal bar for percentage p.
func RenderBar(p float64, width int) string {
	if width <= 0 {
		width = 40
	}
	n := int(p / 100 * float64(width))
	if n > width {
		n = width
	}
	if n < 0 {
		n = 0
	}
	return strings.Repeat("#", n) + strings.Repeat(".", width-n)
}
