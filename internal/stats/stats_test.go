package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestBinLabels(t *testing.T) {
	cases := []struct {
		b    Bin
		want string
	}{
		{Bin{math.MinInt, 2188}, "<=2188"},
		{Bin{4334, math.MaxInt}, ">=4334"},
		{Bin{2211, 2213}, "2211-2213"},
		{Bin{7, 7}, "7"},
		{Bin{math.MinInt, math.MaxInt}, "all"},
	}
	for _, c := range cases {
		if got := c.b.Label(); got != c.want {
			t.Errorf("Label = %q, want %q", got, c.want)
		}
	}
}

func TestBinContains(t *testing.T) {
	b := Bin{10, 20}
	for _, v := range []int{10, 15, 20} {
		if !b.Contains(v) {
			t.Errorf("Contains(%d) = false", v)
		}
	}
	for _, v := range []int{9, 21} {
		if b.Contains(v) {
			t.Errorf("Contains(%d) = true", v)
		}
	}
}

func TestHistogramPercentages(t *testing.T) {
	h := NewHistogram([]Bin{{0, 9}, {10, 19}, {20, math.MaxInt}}, "a", "b")
	for _, v := range []int{1, 2, 3, 12, 25} {
		h.Observe("a", v)
	}
	h.Observe("b", 15)
	if got := h.Percent("a", 0); got != 60 {
		t.Errorf("a/bin0 = %v%%", got)
	}
	if got := h.Percent("a", 1); got != 20 {
		t.Errorf("a/bin1 = %v%%", got)
	}
	if got := h.Percent("b", 1); got != 100 {
		t.Errorf("b/bin1 = %v%%", got)
	}
	if got := h.Total("a"); got != 5 {
		t.Errorf("Total(a) = %d", got)
	}
}

func TestHistogramUnknownSeriesIgnored(t *testing.T) {
	h := NewHistogram([]Bin{{0, 10}}, "a")
	h.Observe("ghost", 5) // must not panic
	if h.Total("ghost") != 0 {
		t.Error("ghost series recorded")
	}
}

func TestHistogramOutOfBinValueDilutes(t *testing.T) {
	h := NewHistogram([]Bin{{0, 9}}, "a")
	h.Observe("a", 5)
	h.Observe("a", 100) // outside every bin
	if got := h.Percent("a", 0); got != 50 {
		t.Errorf("percent = %v, want 50 (diluted)", got)
	}
}

func TestHistogramRender(t *testing.T) {
	h := NewHistogram([]Bin{{math.MinInt, 9}, {10, math.MaxInt}}, "type-1", "others")
	h.Observe("type-1", 5)
	h.Observe("others", 50)
	out := h.Render("demo")
	for _, want := range []string{"demo", "type-1", "others", "<=9", ">=10", "100.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestConfusionMatrixMetrics(t *testing.T) {
	m := NewConfusionMatrix("x", "y")
	// 3 correct x, 1 x→y, 2 correct y.
	m.Observe("x", "x")
	m.Observe("x", "x")
	m.Observe("x", "x")
	m.Observe("x", "y")
	m.Observe("y", "y")
	m.Observe("y", "y")
	if got := m.Accuracy(); math.Abs(got-5.0/6) > 1e-12 {
		t.Errorf("Accuracy = %v", got)
	}
	if got := m.Recall("x"); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("Recall(x) = %v", got)
	}
	if got := m.Precision("y"); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("Precision(y) = %v", got)
	}
	if got := m.Count("x", "y"); got != 1 {
		t.Errorf("Count(x,y) = %d", got)
	}
}

func TestConfusionMatrixEmptyAndUnknown(t *testing.T) {
	m := NewConfusionMatrix("a")
	if m.Accuracy() != 0 || m.Recall("a") != 0 || m.Precision("a") != 0 {
		t.Error("empty matrix metrics nonzero")
	}
	m.Observe("ghost", "a") // ignored
	if m.Accuracy() != 0 {
		t.Error("unknown label recorded")
	}
	if m.Recall("ghost") != 0 || m.Precision("ghost") != 0 || m.Count("ghost", "a") != 0 {
		t.Error("unknown label metrics nonzero")
	}
}

func TestConfusionMatrixRender(t *testing.T) {
	m := NewConfusionMatrix("t1", "t2")
	m.Observe("t1", "t1")
	out := m.Render()
	for _, want := range []string{"t1", "t2", "recall", "100.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestPercentile(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		p, want float64
	}{
		{0, 1}, {100, 5}, {50, 3}, {25, 2},
	}
	for _, c := range cases {
		if got := Percentile(vals, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("empty percentile = %v", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	vals := []float64{5, 1, 3}
	Percentile(vals, 50)
	if vals[0] != 5 || vals[1] != 1 || vals[2] != 3 {
		t.Error("Percentile sorted its input in place")
	}
}

func TestPercentileBoundsProperty(t *testing.T) {
	f := func(raw []float64, p float64) bool {
		var vals []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return true
		}
		p = math.Mod(math.Abs(p), 100)
		got := Percentile(vals, p)
		return got >= Min(vals) && got <= Percentile(vals, 100)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeanMin(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
	if got := Min([]float64{3, 1, 2}); got != 1 {
		t.Errorf("Min = %v", got)
	}
	if Mean(nil) != 0 || Min(nil) != 0 {
		t.Error("empty-input Mean/Min nonzero")
	}
}

func TestRenderTableAlignment(t *testing.T) {
	out := RenderTable([]string{"col", "verylongheader"},
		[][]string{{"a", "1"}, {"longcell", "2"}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d", len(lines))
	}
	// All lines align to the same width for the first column.
	if !strings.HasPrefix(lines[3], "longcell  ") {
		t.Errorf("row misaligned: %q", lines[3])
	}
}

func TestRenderBar(t *testing.T) {
	if got := RenderBar(50, 10); got != "#####....." {
		t.Errorf("bar = %q", got)
	}
	if got := RenderBar(200, 4); got != "####" {
		t.Errorf("overflow bar = %q", got)
	}
	if got := RenderBar(-5, 4); got != "...." {
		t.Errorf("negative bar = %q", got)
	}
}
