package baseline

import (
	"testing"
	"time"

	"repro/internal/media"
	"repro/internal/profiles"
	"repro/internal/script"
	"repro/internal/session"
	"repro/internal/tlsrec"
	"repro/internal/viewer"
	"repro/internal/wire"
)

// sampleAt builds a synthetic Sample with the given record sizes spaced
// by the given gaps.
func sampleAt(label string, sizes []int, gaps []time.Duration) Sample {
	s := Sample{Label: label}
	t := time.Unix(1000, 0)
	for i, size := range sizes {
		s.Times = append(s.Times, t)
		s.Lengths = append(s.Lengths, size)
		if i < len(gaps) {
			t = t.Add(gaps[i])
		} else {
			t = t.Add(10 * time.Millisecond)
		}
	}
	return s
}

func TestBitrateFingerprintWindows(t *testing.T) {
	// 1 MB at t=0s and 1 MB at t=15s: two windows.
	s := sampleAt("x", []int{1_000_000, 1_000_000}, []time.Duration{15 * time.Second})
	fp := BitrateFingerprintOf(s)
	if len(fp) != 2 {
		t.Fatalf("fingerprint windows = %d, want 2", len(fp))
	}
	if fp[0] != 800_000 || fp[1] != 800_000 {
		t.Errorf("fingerprint = %v, want [800000 800000]", fp)
	}
}

func TestBitrateFingerprintEmpty(t *testing.T) {
	if fp := BitrateFingerprintOf(Sample{}); fp != nil {
		t.Errorf("empty fingerprint = %v", fp)
	}
}

func TestBitrateDistanceIdentityAndScale(t *testing.T) {
	a := BitrateFingerprint{1e6, 2e6, 3e6}
	if d := a.Distance(a); d != 0 {
		t.Errorf("self-distance = %v", d)
	}
	b := BitrateFingerprint{2e6, 4e6, 6e6} // double everything
	if d := a.Distance(b); d < 0.5 {
		t.Errorf("2x-scaled distance = %v, want ~log(2)", d)
	}
}

func TestBitrateClassifierSeparatesTitles(t *testing.T) {
	// Two "titles" at clearly different bitrates.
	low := sampleAt("low", repeatInt(100_000, 30), nil)
	high := sampleAt("high", repeatInt(900_000, 30), nil)
	c, err := NewBitrateClassifier([]Sample{low, high})
	if err != nil {
		t.Fatal(err)
	}
	probe := sampleAt("?", repeatInt(110_000, 30), nil)
	if got := c.Classify(probe); got != "low" {
		t.Errorf("Classify = %q, want low", got)
	}
	probe2 := sampleAt("?", repeatInt(850_000, 30), nil)
	if got := c.Classify(probe2); got != "high" {
		t.Errorf("Classify = %q, want high", got)
	}
}

func TestBitrateClassifierNeedsRefs(t *testing.T) {
	if _, err := NewBitrateClassifier(nil); err == nil {
		t.Error("empty reference set accepted")
	}
}

func TestBurstsSplitOnGap(t *testing.T) {
	s := sampleAt("x", []int{100, 200, 300},
		[]time.Duration{10 * time.Millisecond, time.Second})
	bursts := Bursts(s)
	if len(bursts) != 2 {
		t.Fatalf("bursts = %v", bursts)
	}
	if bursts[0] != 300 || bursts[1] != 300 {
		t.Errorf("bursts = %v, want [300 300]", bursts)
	}
}

func TestBurstClassifierMajorityVote(t *testing.T) {
	mk := func(label string, unit int) Sample {
		var sizes []int
		var gaps []time.Duration
		for i := 0; i < 10; i++ {
			sizes = append(sizes, unit)
			gaps = append(gaps, time.Second)
		}
		return Sample{Label: label, Times: timesFrom(gaps), Lengths: sizes}
	}
	refs := []Sample{mk("a", 1000), mk("a", 1100), mk("b", 50_000), mk("b", 52_000)}
	c, err := NewBurstClassifier(refs, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Classify(mk("?", 1050)); got != "a" {
		t.Errorf("Classify = %q, want a", got)
	}
	if got := c.Classify(mk("?", 51_000)); got != "b" {
		t.Errorf("Classify = %q, want b", got)
	}
}

func timesFrom(gaps []time.Duration) []time.Time {
	t := time.Unix(1000, 0)
	out := []time.Time{t}
	for _, g := range gaps[:len(gaps)-1] {
		t = t.Add(g)
		out = append(out, t)
	}
	return out
}

func TestADUsReconstruction(t *testing.T) {
	s := sampleAt("x", []int{1000, 2000, 3000, 4000},
		[]time.Duration{time.Millisecond, 200 * time.Millisecond, time.Millisecond})
	adus := ADUs(s)
	if len(adus) != 2 {
		t.Fatalf("ADUs = %+v", adus)
	}
	if adus[0].Bytes != 3000 || adus[1].Bytes != 7000 {
		t.Errorf("ADU bytes = %d, %d", adus[0].Bytes, adus[1].Bytes)
	}
}

func TestIsVideoStreamOnRealTrace(t *testing.T) {
	g := script.Bandersnatch()
	enc := media.Encode(g, media.DefaultLadder, 42)
	pop := viewer.SamplePopulation(1, wire.NewRNG(21))
	tr, err := session.Run(session.Config{
		Graph: g, Encoding: enc, Viewer: pop[0],
		Condition: profiles.Fig2Ubuntu, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	recs, _, err := tlsrec.ParseStream(tr.ServerToClient.Bytes, tr.ServerToClient.TimeAt)
	if err != nil {
		t.Fatal(err)
	}
	s := FromServerRecords(recs, "bandersnatch")
	isVideo, large := IsVideoStream(s)
	if !isVideo {
		t.Errorf("video session not recognized as video (%d large ADUs)", large)
	}
	if s.Duration() <= 0 {
		t.Error("sample duration not positive")
	}
}

func TestIsVideoStreamRejectsSmallTransfer(t *testing.T) {
	s := sampleAt("web", repeatInt(2000, 20), nil)
	if isVideo, _ := IsVideoStream(s); isVideo {
		t.Error("small transfer classified as video")
	}
}

// TestIntraTitleSegmentsConfusable reproduces the paper's §II argument:
// bitrate fingerprints of two same-title segments at the same quality are
// too close to separate, while two different synthetic titles separate
// cleanly.
func TestIntraTitleSegmentsConfusable(t *testing.T) {
	g := script.Bandersnatch()
	enc := media.Encode(g, media.DefaultLadder, 42)
	mkSample := func(id script.SegmentID) Sample {
		chunks, err := enc.Chunks(id, 2)
		if err != nil {
			t.Fatal(err)
		}
		s := Sample{Label: string(id)}
		at := time.Unix(1000, 0)
		for _, c := range chunks {
			s.Times = append(s.Times, at)
			s.Lengths = append(s.Lengths, c.Size)
			at = at.Add(c.Duration)
		}
		return s
	}
	s1 := mkSample("S1")   // default breakfast branch
	s1b := mkSample("S1b") // alternative breakfast branch
	d := BitrateFingerprintOf(s1).Distance(BitrateFingerprintOf(s1b))
	// Same title, same ladder: distance must be small (splits are within
	// VBR noise). A different title at a different rung separates by an
	// order of magnitude more.
	other := mkSample("S1")
	for i := range other.Lengths {
		other.Lengths[i] *= 8 // a different title at a much higher rate
	}
	dOther := BitrateFingerprintOf(s1).Distance(BitrateFingerprintOf(other))
	if d*4 > dOther {
		t.Errorf("intra-title distance %v vs inter-title %v: branches too separable", d, dOther)
	}
}

func repeatInt(v, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = v
	}
	return out
}
