// Package baseline re-implements the prior-work traffic-analysis
// techniques the paper's §II argues cannot distinguish segments of the
// same interactive title, because they rely on inter-video features:
//
//   - bitrate fingerprinting in the style of Reed & Kranch [1]: windowed
//     average downlink bitrate vectors matched by distance;
//   - burst-series fingerprinting in the style of Schuster et al. [2]:
//     per-period burst-size sequences classified by kNN;
//   - an ADU (application data unit) heuristic in the style of
//     Silhouette [3]: reconstructing object sizes from uninterrupted
//     server-to-client runs.
//
// The ablation experiment (A1 in DESIGN.md) runs these against pairs of
// same-title segments (where they hover near chance, reproducing the
// paper's argument) and against different synthetic titles (where they
// perform well, confirming the implementations are not strawmen).
package baseline

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/tlsrec"
)

// Sample is the downlink view a baseline consumes: server→client record
// lengths and times, aggregated from an attack.Observation.
type Sample struct {
	// Times and Lengths are parallel: one entry per server record.
	Times   []time.Time
	Lengths []int
	// Label is the ground-truth identity used for training/scoring.
	Label string
}

// FromServerRecords builds a Sample from server-side records.
func FromServerRecords(recs []tlsrec.Record, label string) Sample {
	s := Sample{Label: label}
	for _, r := range recs {
		if r.Type != tlsrec.ContentApplicationData {
			continue
		}
		s.Times = append(s.Times, r.Time)
		s.Lengths = append(s.Lengths, r.Length)
	}
	return s
}

// Duration returns the sample's time span.
func (s Sample) Duration() time.Duration {
	if len(s.Times) < 2 {
		return 0
	}
	return s.Times[len(s.Times)-1].Sub(s.Times[0])
}

// --- Bitrate fingerprinting (Reed & Kranch style) ---------------------------

// BitrateFingerprint is a vector of windowed average bitrates (bits/s).
type BitrateFingerprint []float64

// BitrateWindow is the aggregation window.
const BitrateWindow = 10 * time.Second

// BitrateFingerprintOf computes the fingerprint of a sample.
func BitrateFingerprintOf(s Sample) BitrateFingerprint {
	if len(s.Times) == 0 {
		return nil
	}
	start := s.Times[0]
	var fp BitrateFingerprint
	var window int64
	cur := 0
	for i, t := range s.Times {
		w := int(t.Sub(start) / BitrateWindow)
		for cur < w {
			fp = append(fp, float64(window*8)/BitrateWindow.Seconds())
			window = 0
			cur++
		}
		window += int64(s.Lengths[i])
	}
	fp = append(fp, float64(window*8)/BitrateWindow.Seconds())
	return fp
}

// Distance is the mean absolute log-ratio between aligned windows — a
// scale-aware comparison that tolerates length mismatch by comparing the
// overlapping prefix.
func (a BitrateFingerprint) Distance(b BitrateFingerprint) float64 {
	n := min(len(a), len(b))
	if n == 0 {
		return math.Inf(1)
	}
	var sum float64
	for i := 0; i < n; i++ {
		x, y := a[i]+1, b[i]+1
		sum += math.Abs(math.Log(x / y))
	}
	return sum / float64(n)
}

// BitrateClassifier matches a fingerprint to the nearest labeled
// reference.
type BitrateClassifier struct {
	refs []Sample
	fps  []BitrateFingerprint
}

// NewBitrateClassifier indexes the reference samples.
func NewBitrateClassifier(refs []Sample) (*BitrateClassifier, error) {
	if len(refs) == 0 {
		return nil, fmt.Errorf("baseline: bitrate classifier needs references")
	}
	c := &BitrateClassifier{refs: refs}
	for _, r := range refs {
		c.fps = append(c.fps, BitrateFingerprintOf(r))
	}
	return c, nil
}

// Classify returns the label of the nearest reference.
func (c *BitrateClassifier) Classify(s Sample) string {
	fp := BitrateFingerprintOf(s)
	best, bestD := "", math.Inf(1)
	for i, ref := range c.fps {
		if d := fp.Distance(ref); d < bestD {
			best, bestD = c.refs[i].Label, d
		}
	}
	return best
}

// --- Burst-series fingerprinting (Schuster et al. style) --------------------

// BurstGap is the quiet time that terminates a burst.
const BurstGap = 500 * time.Millisecond

// Bursts aggregates a sample into burst sizes: total bytes delivered in
// runs separated by gaps longer than BurstGap.
func Bursts(s Sample) []float64 {
	if len(s.Times) == 0 {
		return nil
	}
	var bursts []float64
	cur := float64(s.Lengths[0])
	for i := 1; i < len(s.Times); i++ {
		if s.Times[i].Sub(s.Times[i-1]) > BurstGap {
			bursts = append(bursts, cur)
			cur = 0
		}
		cur += float64(s.Lengths[i])
	}
	bursts = append(bursts, cur)
	return bursts
}

// BurstClassifier is a kNN over truncated burst-size series.
type BurstClassifier struct {
	K int

	refs   []Sample
	series [][]float64
}

// NewBurstClassifier indexes references.
func NewBurstClassifier(refs []Sample, k int) (*BurstClassifier, error) {
	if len(refs) == 0 {
		return nil, fmt.Errorf("baseline: burst classifier needs references")
	}
	if k <= 0 {
		k = 3
	}
	c := &BurstClassifier{K: k, refs: refs}
	for _, r := range refs {
		c.series = append(c.series, Bursts(r))
	}
	return c, nil
}

// burstDistance compares burst series over the overlapping prefix with a
// log-ratio metric.
func burstDistance(a, b []float64) float64 {
	n := min(len(a), len(b))
	if n == 0 {
		return math.Inf(1)
	}
	var sum float64
	for i := 0; i < n; i++ {
		sum += math.Abs(math.Log((a[i] + 1) / (b[i] + 1)))
	}
	// Penalize length mismatch: unmatched bursts count as full misses.
	mismatch := float64(len(a)+len(b)-2*n) * 0.5
	return (sum + mismatch) / float64(n)
}

// Classify returns the majority label among the k nearest references.
func (c *BurstClassifier) Classify(s Sample) string {
	q := Bursts(s)
	type scored struct {
		d     float64
		label string
	}
	all := make([]scored, 0, len(c.series))
	for i, ref := range c.series {
		all = append(all, scored{d: burstDistance(q, ref), label: c.refs[i].Label})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].d < all[j].d })
	k := min(c.K, len(all))
	votes := map[string]int{}
	for _, s := range all[:k] {
		votes[s.label]++
	}
	best, bestV := "", -1
	for l, v := range votes {
		if v > bestV || (v == bestV && l < best) {
			best, bestV = l, v
		}
	}
	return best
}

// --- ADU reconstruction (Silhouette style) -----------------------------------

// ADU is one reconstructed application data unit (e.g. a video chunk):
// contiguous server bytes uninterrupted by a client-visible gap.
type ADU struct {
	Bytes int
	Start time.Time
}

// ADUGap is the quiet time that splits ADUs (shorter than BurstGap:
// object boundaries inside a burst).
const ADUGap = 80 * time.Millisecond

// ADUs reconstructs application data units from a sample.
func ADUs(s Sample) []ADU {
	if len(s.Times) == 0 {
		return nil
	}
	var out []ADU
	cur := ADU{Bytes: s.Lengths[0], Start: s.Times[0]}
	for i := 1; i < len(s.Times); i++ {
		if s.Times[i].Sub(s.Times[i-1]) > ADUGap {
			out = append(out, cur)
			cur = ADU{Start: s.Times[i]}
		}
		cur.Bytes += s.Lengths[i]
	}
	out = append(out, cur)
	return out
}

// IsVideoStream applies Silhouette's screening heuristic: video streams
// show many large ADUs with regular pacing. It returns the classification
// plus the large-ADU count that produced it.
func IsVideoStream(s Sample) (bool, int) {
	const largeADU = 100_000 // bytes; a low-quality 4s chunk exceeds this
	adus := ADUs(s)
	large := 0
	for _, a := range adus {
		if a.Bytes >= largeADU {
			large++
		}
	}
	// Even a minute of video yields a steady run of large ADUs; web
	// browsing yields isolated ones.
	return large >= 5, large
}
