// QUIC removed the attack's unit of observation: TLS record boundaries
// are invisible inside 1-RTT packets, so record lengths cannot be parsed
// off the wire. What survives is the burst — an application write flushed
// as a run of datagrams closely spaced in time. A type-1 report still
// produces a characteristic number of wire bytes; they just arrive as two
// ~1350-byte datagrams instead of one 2212-byte record. Grouping
// datagrams by inter-arrival gap and summing their sizes recovers a
// length feature the existing interval-band machinery trains on
// unchanged (Dubin et al.; Bahramali et al.).

package attack

import "time"

// Burst segmentation defaults. The gap threshold sits far above the
// synthesizer's intra-write datagram spacing (hundreds of microseconds)
// and far below the inter-write spacing of player behaviour (hundreds of
// milliseconds), so one application write maps to exactly one burst. The
// floor excludes ack-only datagrams (~50 bytes), which interleave with
// data in both directions and otherwise smear burst totals.
const (
	// DefaultBurstGap closes a burst when the next contributing datagram
	// arrives this much after the previous one.
	DefaultBurstGap = 25 * time.Millisecond
	// DefaultBurstMinBytes is the smallest datagram that contributes to a
	// burst; smaller datagrams (acks, keepalives) are transparent.
	DefaultBurstMinBytes = 96
)

// Burst is one gap-delimited run of datagrams in a single direction.
type Burst struct {
	// Bytes is the summed size of the contributing datagrams.
	Bytes int
	// Datagrams counts the contributing datagrams.
	Datagrams int
	// Start and End are the first and last contributing arrival times.
	Start, End time.Time
}

// BurstSegmenter groups one direction's datagrams into bursts. Feed
// datagrams in arrival order; completed bursts come back as they close.
// Segmentation is a pure function of the flow's own datagram sequence —
// no wall clock, no cross-flow state — which is what makes the streaming
// monitor's burst stream provably identical to a batch pass over the
// same capture.
//
// The zero value is ready to use with the default gap and size floor.
type BurstSegmenter struct {
	// Gap overrides DefaultBurstGap when positive.
	Gap time.Duration
	// MinBytes overrides DefaultBurstMinBytes when positive.
	MinBytes int

	open Burst
	last time.Time // arrival time of the last contributing datagram
}

func (s *BurstSegmenter) gap() time.Duration {
	if s.Gap > 0 {
		return s.Gap
	}
	return DefaultBurstGap
}

func (s *BurstSegmenter) minBytes() int {
	if s.MinBytes > 0 {
		return s.MinBytes
	}
	return DefaultBurstMinBytes
}

// Feed observes one datagram of size n arriving at ts. It returns the
// burst the datagram closed, if any, and whether one closed.
//
// Sub-floor datagrams never contribute bytes and never extend a burst's
// life, but they still run the gap check: a lone ack arriving long after
// a write's last data datagram is exactly the silence that proves the
// burst is over. Out-of-order arrivals (UDP reorders; so do taps) fold
// into the open burst, extending its span backward if needed, rather
// than fabricating a phantom gap.
func (s *BurstSegmenter) Feed(ts time.Time, n int) (Burst, bool) {
	var closed Burst
	var ok bool
	if s.open.Datagrams > 0 && ts.Sub(s.last) > s.gap() {
		closed, ok = s.open, true
		s.open = Burst{}
	}
	if n >= s.minBytes() {
		if s.open.Datagrams == 0 {
			s.open = Burst{Start: ts, End: ts}
		}
		s.open.Bytes += n
		s.open.Datagrams++
		if ts.Before(s.open.Start) {
			s.open.Start = ts
		}
		if ts.After(s.open.End) {
			s.open.End = ts
		}
		if ts.After(s.last) {
			s.last = ts
		}
	}
	return closed, ok
}

// Flush closes and returns the open burst, if any. Call it when the flow
// ends (idle expiry, monitor close, end of capture) so the final write is
// not lost.
func (s *BurstSegmenter) Flush() (Burst, bool) {
	if s.open.Datagrams == 0 {
		return Burst{}, false
	}
	b := s.open
	s.open = Burst{}
	s.last = time.Time{}
	return b, true
}
