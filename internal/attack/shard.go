package attack

import (
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/layers"
	"repro/internal/parallel"
	"repro/internal/pcapio"
)

// Sharded monitor engine. With MonitorOptions.Shards > 0 the Monitor
// fans out across N worker goroutines, RSS-style: the dispatcher (the
// caller's goroutine) parses pcap framing, decodes each packet and hands
// it to the shard owning its canonical flow hash over a bounded SPSC
// ring; each shard is a complete single-threaded Monitor core — its own
// assembler, record scanners, window state and timing wheel — that never
// touches another shard's flows. Determinism is restored at the edges:
//
//   - Every dispatched message carries a global sequence number, and
//     every event a shard emits is tagged (seq, flowFirstSeq, emission
//     index). The dispatcher merges per-shard event batches by that tag,
//     which reproduces the exact single-threaded emission order: packet
//     events in dispatch order, sweep and close events in flow
//     first-seen order within their barrier.
//   - Idle sweeps are decided by the dispatcher (which owns the sweep
//     cadence) and broadcast as a barrier message at their own sequence
//     number, one slot before the packet that triggered them — so
//     expirations sort ahead of that packet's events, keeping the merged
//     stream monotone in capture time.
//   - Events are only delivered up to the merge watermark: the highest
//     sequence every shard has fully processed (an idle shard is counted
//     as caught up). Nothing can arrive out of order later.
//   - Close runs as a sequence of cross-shard phases mirroring the
//     single-threaded close, with per-shard results reduced by stamped
//     chronology ((seq, key) of the state update), so ties — equal
//     (matched, score) finals, equal-size fallbacks — resolve exactly as
//     the single-threaded run resolved them.
//
// The result is pinned by TestShardEquivalence: byte-identical event
// streams and inferences at shards ∈ {0, 1, 2, 4, 8}.
//
// The caller-owned PacketRing is single-consumer state, so shards never
// release spans into it directly: each shard core's assembler routes
// released spans into a per-shard batch the dispatcher drains back to
// the ring on its own goroutine.

// shardQueueDepth bounds each shard's inbox. Full inboxes block the
// dispatcher (backpressure), so slow shards bound memory instead of
// growing a backlog.
const shardQueueDepth = 512

// pumpEvery is how many dispatched packets pass between merge pumps
// (event delivery + ring release drains) during a feed call.
const pumpEvery = 128

type shardMsgKind uint8

const (
	msgPacket shardMsgKind = iota
	msgSweep
	msgCall
)

// shardMsg is one unit of work on a shard's inbox.
type shardMsg struct {
	kind  shardMsgKind
	seq   uint64
	clock time.Time // dispatcher's capture clock at dispatch

	pkt *layers.Packet // msgPacket

	exempt     layers.FlowKey // msgSweep: the triggering packet's flow
	haveExempt bool

	call func(*Monitor) // msgCall: runs on the shard's goroutine
}

// evTag orders one event in the merged stream.
type evTag struct {
	seq uint64 // dispatch sequence of the producing message
	key uint64 // flow first-seen sequence (0 for packet-driven events)
	sub uint32 // emission index within the message
}

func (a evTag) less(b evTag) bool {
	if a.seq != b.seq {
		return a.seq < b.seq
	}
	if a.key != b.key {
		return a.key < b.key
	}
	return a.sub < b.sub
}

type taggedEvent struct {
	tag evTag
	ev  Event
}

// monShard is one worker: a Monitor core, its inbox, and the outboxes
// the dispatcher drains (events for the merge, released ring spans).
type monShard struct {
	core *Monitor
	in   *parallel.SPSC[shardMsg]

	mu       sync.Mutex
	out      []taggedEvent
	rel      [][]byte // ring spans released by this shard's assembler
	relBytes int64

	curSeq uint64 // sequence of the message being processed (shard-side)
	sub    uint32 // emission counter within it (shard-side)

	lastSent uint64        // highest seq dispatched to this shard (dispatcher-side)
	lastDone atomic.Uint64 // highest seq fully processed (events published first)
}

// run is the shard worker loop.
func (s *monShard) run(wg *sync.WaitGroup) {
	defer wg.Done()
	for {
		msg, ok := s.in.Pop()
		if !ok {
			return
		}
		s.curSeq = msg.seq
		s.sub = 0
		c := s.core
		c.seqCtx = msg.seq
		if msg.clock.After(c.clock) {
			c.clock = msg.clock
		}
		switch msg.kind {
		case msgPacket:
			c.ingestDecoded(msg.pkt)
		case msgSweep:
			c.sweepNow(msg.exempt, msg.haveExempt)
		case msgCall:
			msg.call(c)
		}
		// Publish completion only after every event of this message is in
		// the outbox: the dispatcher's watermark then guarantees merged
		// batches are complete prefixes.
		s.lastDone.Store(msg.seq)
	}
}

// shardEngine is the dispatcher-side state of a sharded Monitor.
type shardEngine struct {
	atk     *Attacker
	onEvent func(Event)
	win     *Window // resolved copy; nil in batch mode
	ring    *pcapio.PacketRing

	cr    *pcapio.ChunkReader
	arena []byte // feedPacket copies frames into chained blocks

	clock      time.Time
	sinceSweep int
	sweptAt    time.Time
	sweeps     int64

	seq       uint64
	shards    []*monShard
	wg        sync.WaitGroup
	pending   []taggedEvent // merged-but-undelivered events
	sincePump int

	extraFinalized int // engine-emitted SessionFinalized (close fallback)

	closed  bool
	stopped bool // worker goroutines joined
	err     error
}

func newShardEngine(a *Attacker, opts MonitorOptions) *shardEngine {
	e := &shardEngine{atk: a, onEvent: opts.OnEvent, ring: opts.FrameRing}
	if opts.Window != nil {
		w := opts.Window.withDefaults()
		e.win = &w
	}
	for i := 0; i < opts.Shards; i++ {
		core := NewMonitor(a, MonitorOptions{OnEvent: opts.OnEvent, Window: opts.Window})
		s := &monShard{core: core, in: parallel.NewSPSC[shardMsg](shardQueueDepth)}
		// Events route into the tagged outbox instead of the callback;
		// core.onEvent stays set so the live hypothesis engine keys off it
		// exactly as it would single-threaded.
		core.tagSink = func(ev Event) {
			s.mu.Lock()
			s.out = append(s.out, taggedEvent{evTag{s.curSeq, core.evKey, s.sub}, ev})
			s.sub++
			s.mu.Unlock()
		}
		if e.ring != nil {
			// The ring is single-consumer (the dispatcher); shard-side
			// releases are batched and drained at the next pump. QUIC
			// datagram payloads (core.relSpan) batch through the same
			// funnel as reassembled TCP spans.
			release := func(span []byte) {
				s.mu.Lock()
				s.rel = append(s.rel, span)
				s.relBytes += int64(len(span))
				s.mu.Unlock()
			}
			core.asm.SetReleaseFunc(release)
			core.relSpan = release
		}
		e.shards = append(e.shards, s)
		e.wg.Add(1)
		go s.run(&e.wg)
	}
	return e
}

// shardOf maps a canonical flow key to its owning shard: FNV-1a over
// both endpoints. The hash is fixed (not seeded) so a capture shards
// identically across runs.
func shardOf(k layers.FlowKey, n int) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= prime64
	}
	src, dst := k.SrcAddr.As16(), k.DstAddr.As16()
	for _, b := range src {
		mix(b)
	}
	for _, b := range dst {
		mix(b)
	}
	mix(byte(k.SrcPort >> 8))
	mix(byte(k.SrcPort))
	mix(byte(k.DstPort >> 8))
	mix(byte(k.DstPort))
	// FNV's low bits mix weakly (each multiply only propagates upward),
	// and n is usually a power of two; finish with an avalanche round so
	// the modulo sees every input bit.
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return int(h % uint64(n))
}

func (s *monShard) send(msg shardMsg) {
	s.lastSent = msg.seq
	s.in.Push(msg)
}

// dispatchFrame decodes one frame on the dispatcher and routes it. The
// sweep decision is made here — the dispatcher owns the packet-count and
// clock-jump cadence — and broadcast as a barrier one sequence slot
// ahead of the triggering packet.
func (e *shardEngine) dispatchFrame(ts time.Time, frame []byte, ringOwned bool) {
	if ts.After(e.clock) {
		e.clock = ts
	}
	p, err := layers.DecodePacket(ts, frame)
	if err != nil {
		if ringOwned && e.ring != nil {
			e.ring.ReleaseExcept(frame, nil) // non-TCP or foreign traffic
		}
		return
	}
	if ringOwned && e.ring != nil {
		// Headers go back to the ring immediately; only the TCP payload
		// travels to the owning shard.
		e.ring.ReleaseExcept(frame, p.Payload)
	}
	canon, _ := p.Flow().Canonical()
	if e.win != nil && e.sweepDue() {
		e.seq++
		e.sweeps++
		for _, s := range e.shards {
			s.send(shardMsg{kind: msgSweep, seq: e.seq, clock: e.clock,
				exempt: canon, haveExempt: true})
		}
	}
	e.seq++
	e.shards[shardOf(canon, len(e.shards))].send(
		shardMsg{kind: msgPacket, seq: e.seq, clock: e.clock, pkt: p})
	e.sincePump++
	if e.sincePump >= pumpEvery {
		e.pump()
	}
}

// sweepDue mirrors Monitor.sweepDue on the dispatcher's clock.
func (e *shardEngine) sweepDue() bool {
	e.sinceSweep++
	if e.sweptAt.IsZero() {
		e.sweptAt = e.clock
	}
	if e.sinceSweep >= e.win.SweepInterval ||
		e.clock.Sub(e.sweptAt) >= e.win.IdleTimeout/4 {
		e.sinceSweep = 0
		e.sweptAt = e.clock
		return true
	}
	return false
}

// pump drains shard outboxes, recycles released ring spans, and delivers
// every merged event at or below the watermark — the highest sequence
// all shards have fully processed.
func (e *shardEngine) pump() {
	e.sincePump = 0
	wm := e.seq
	for _, s := range e.shards {
		if done := s.lastDone.Load(); done < s.lastSent && done < wm {
			wm = done
		}
	}
	e.collect()
	e.deliver(wm)
}

// collect moves shard outboxes into the engine's pending merge set and
// recycles released ring spans.
func (e *shardEngine) collect() {
	for _, s := range e.shards {
		s.mu.Lock()
		e.pending = append(e.pending, s.out...)
		s.out = s.out[:0]
		rel := s.rel
		s.rel, s.relBytes = nil, 0
		s.mu.Unlock()
		for _, span := range rel {
			e.ring.Release(span)
		}
	}
}

// deliver sorts and emits every pending event tagged at or below wm.
func (e *shardEngine) deliver(wm uint64) {
	if len(e.pending) == 0 {
		return
	}
	if e.onEvent == nil {
		e.pending = e.pending[:0]
		return
	}
	var ready, later []taggedEvent
	for _, te := range e.pending {
		if te.tag.seq <= wm {
			ready = append(ready, te)
		} else {
			later = append(later, te)
		}
	}
	if len(ready) == 0 {
		return
	}
	sort.Slice(ready, func(i, j int) bool { return ready[i].tag.less(ready[j].tag) })
	e.pending = later
	for _, te := range ready {
		e.onEvent(te.ev)
	}
}

// callAll runs fn on every shard's goroutine (against its core) at one
// barrier sequence and waits for all of them. fn may write to
// shard-indexed result slots without locking — the WaitGroup orders
// those writes before the dispatcher reads them.
func (e *shardEngine) callAll(fn func(c *Monitor, i int)) {
	e.seq++
	seq := e.seq
	var wg sync.WaitGroup
	wg.Add(len(e.shards))
	for i, s := range e.shards {
		i := i
		s.send(shardMsg{kind: msgCall, seq: seq, clock: e.clock, call: func(c *Monitor) {
			defer wg.Done()
			fn(c, i)
		}})
	}
	wg.Wait()
}

// callOne runs fn on one shard's goroutine and waits.
func (e *shardEngine) callOne(i int, fn func(c *Monitor)) {
	e.seq++
	done := make(chan struct{})
	e.shards[i].send(shardMsg{kind: msgCall, seq: e.seq, clock: e.clock, call: func(c *Monitor) {
		defer close(done)
		fn(c)
	}})
	<-done
}

// feed ingests raw pcap bytes (Monitor.Feed / feedOwned, sharded).
func (e *shardEngine) feed(chunk []byte, owned bool) error {
	if e.closed {
		return errors.New("attack: monitor is closed")
	}
	if e.err != nil {
		return e.err
	}
	if e.cr == nil {
		e.cr = pcapio.NewChunkReader()
	}
	if owned {
		e.cr.FeedOwned(chunk)
	} else {
		e.cr.Feed(chunk)
	}
	for {
		rec, ok, err := e.cr.Next()
		if err != nil {
			e.err = wrapReadErr(e.cr.HeaderDone(), err)
			return e.err
		}
		if !ok {
			e.pump()
			return nil
		}
		e.dispatchFrame(rec.Timestamp, rec.Data, false)
	}
}

// feedPacket ingests one copied frame (Monitor.FeedPacket, sharded).
func (e *shardEngine) feedPacket(ts time.Time, frame []byte) error {
	if e.closed {
		return errors.New("attack: monitor is closed")
	}
	if e.err != nil {
		return e.err
	}
	if cap(e.arena)-len(e.arena) < len(frame) {
		size := frameArenaBlock
		if len(frame) > size {
			size = len(frame)
		}
		e.arena = make([]byte, 0, size)
	}
	e.arena = append(e.arena, frame...)
	e.dispatchFrame(ts, e.arena[len(e.arena)-len(frame):], false)
	return nil
}

// feedPacketOwned ingests one caller-owned frame (Monitor.FeedPacketOwned,
// sharded). Ring slots of refused frames are handed straight back.
func (e *shardEngine) feedPacketOwned(ts time.Time, frame []byte) error {
	if e.closed || e.err != nil {
		if e.ring != nil {
			e.ring.ReleaseExcept(frame, nil)
		}
		if e.closed {
			return errors.New("attack: monitor is closed")
		}
		return e.err
	}
	e.dispatchFrame(ts, frame, true)
	return nil
}

// shutdown closes every inbox and joins the workers. After it returns
// the cores are quiescent and safe to read from the dispatcher.
func (e *shardEngine) shutdown() {
	if e.stopped {
		return
	}
	e.stopped = true
	for _, s := range e.shards {
		s.in.Close()
	}
	e.wg.Wait()
}

// close finalizes the sharded monitor (Monitor.Close).
func (e *shardEngine) close() (*Inference, error) {
	if e.closed {
		return nil, errors.New("attack: monitor already closed")
	}
	e.closed = true
	if e.err != nil {
		e.shutdown()
		return nil, e.err
	}
	if e.cr != nil {
		if err := e.cr.TailErr(); err != nil {
			e.err = wrapReadErr(e.cr.HeaderDone(), err)
			e.shutdown()
			return nil, e.err
		}
	}
	var inf *Inference
	var err error
	if e.win != nil {
		inf, err = e.closeWindowed()
	} else {
		inf, err = e.closeBatch()
	}
	e.shutdown()
	e.collect()
	e.deliver(e.seq) // everything is processed; deliver the full merge
	return inf, err
}

// shardCloseSnap is one shard's reducible close-time state.
type shardCloseSnap struct {
	bestFinal   *Inference
	bestMatched int
	bestScore   float64
	bestStamp   evStamp
	firstFinal  *evStamp
	high        int64 // fallbackHigh
}

func snapCore(c *Monitor) shardCloseSnap {
	return shardCloseSnap{
		bestFinal:   c.bestFinal,
		bestMatched: c.bestMatched,
		bestScore:   c.bestScore,
		bestStamp:   c.bestStamp,
		firstFinal:  c.firstFinal,
		high:        c.fallbackHigh(),
	}
}

// closeWindowed runs the windowed close as cross-shard phases, each the
// sharded image of one closeWindowed step, with stamped reduces between
// them so every tie resolves as the single-threaded chronology would.
func (e *shardEngine) closeWindowed() (*Inference, error) {
	n := len(e.shards)

	// Phase 1: flows with enough in-band evidence finalize as sessions.
	snaps := make([]shardCloseSnap, n)
	e.callAll(func(c *Monitor, i int) {
		c.closeFinalizeSessions()
		snaps[i] = snapCore(c)
	})
	best, bestShard := reduceBest(snaps)

	// Phase 2: no session anywhere — the batch rule attacks the largest
	// still-open conversation, if it outweighs every stashed fallback.
	if best == nil {
		type openCand struct {
			canon    layers.FlowKey
			bytes    int64
			firstSeq uint64
			ok       bool
		}
		open := make([]openCand, n)
		e.callAll(func(c *Monitor, i int) {
			var oc openCand
			oc.canon, oc.bytes, oc.firstSeq, oc.ok = c.largestOpen()
			open[i] = oc
		})
		high := int64(0)
		for _, sn := range snaps {
			if sn.high > high {
				high = sn.high
			}
		}
		pick := -1
		for i, oc := range open {
			if !oc.ok {
				continue
			}
			if pick < 0 || oc.bytes > open[pick].bytes ||
				(oc.bytes == open[pick].bytes && oc.firstSeq < open[pick].firstSeq) {
				pick = i
			}
		}
		if pick >= 0 && open[pick].bytes > high {
			e.callOne(pick, func(c *Monitor) {
				c.finalizeLargest(open[pick].canon)
				snaps[pick] = snapCore(c)
			})
			best, bestShard = reduceBest(snaps)
		}
	}

	// Phase 3: everything still open expires with reason "close". When a
	// session already won, shards with no local final skip fallback
	// stashing — the single-threaded run would have stopped stashing at
	// the first final.
	suppress := best != nil
	e.callAll(func(c *Monitor, i int) {
		c.suppressFallback = suppress
		c.closeExpireRest()
		c.suppressFallback = false
		snaps[i] = snapCore(c)
	})
	best, bestShard = reduceBest(snaps)
	_ = bestShard

	if best == nil {
		// Phase 4: no session ever — the largest expired viable flow is
		// the attack target. Per-shard fallback histories are strictly
		// increasing in bytes; the single-threaded run would have kept
		// the globally largest, first-stashed of equals.
		var fb *fallbackCand
		for i := range e.shards {
			var cands []fallbackCand
			e.callOne(i, func(c *Monitor) { cands = c.fallbacks })
			for k := range cands {
				cand := &cands[k]
				if fb == nil || cand.bytes > fb.bytes ||
					(cand.bytes == fb.bytes && cand.at.less(fb.at)) {
					fb = cand
				}
			}
		}
		if fb != nil {
			e.extraFinalized++
			e.seq++
			e.pending = append(e.pending, taggedEvent{evTag{seq: e.seq},
				SessionFinalized{Flow: fb.flow, Inference: fb.inf}})
			return fb.inf, nil
		}
		return nil, ErrNoTLSConversation
	}
	return best.bestFinal, nil
}

// reduceBest picks the winning finalized inference across shards: best
// (matched, score), earliest stamp of equals — the single-threaded
// "first final wins ties" rule replayed from the stamps.
func reduceBest(snaps []shardCloseSnap) (*shardCloseSnap, int) {
	var best *shardCloseSnap
	idx := -1
	for i := range snaps {
		sn := &snaps[i]
		if sn.bestFinal == nil {
			continue
		}
		if best == nil || sn.bestMatched > best.bestMatched ||
			(sn.bestMatched == best.bestMatched && sn.bestScore > best.bestScore) ||
			(sn.bestMatched == best.bestMatched && sn.bestScore == best.bestScore &&
				sn.bestStamp.less(best.bestStamp)) {
			best, idx = sn, i
		}
	}
	return best, idx
}

// batchCand is one viable flow in the batch-close candidate set.
type batchCand struct {
	canon     layers.FlowKey
	clientKey layers.FlowKey
	client    string // clientKey.String(), the batch candidate order
	bytes     int64
}

// batchCandidates lists this core's viable flows (batch close).
func (m *Monitor) batchCandidates() []batchCand {
	var out []batchCand
	for _, k := range m.order {
		if f := m.flows[k]; f != nil && f.viable() {
			out = append(out, batchCand{canon: k, clientKey: f.clientKey,
				client: f.clientKey.String(), bytes: f.totalBytes()})
		}
	}
	return out
}

// batchBest scores this core's in-band candidate flows like selectFlow:
// best (matched, score) among flows with hard reports, first of equals
// in clientKey order.
func (m *Monitor) batchBest() (inf *Inference, matched int, score float64, client layers.FlowKey, ok bool) {
	var cands []*monFlow
	for _, k := range m.order {
		if f := m.flows[k]; f != nil && f.viable() {
			cands = append(cands, f)
		}
	}
	sort.SliceStable(cands, func(i, j int) bool {
		return cands[i].clientKey.String() < cands[j].clientKey.String()
	})
	matched = -1
	for _, f := range cands {
		hards := m.hardCount(f)
		if hards == 0 {
			continue
		}
		fi, err := m.atk.Infer(f.observation())
		if err != nil {
			continue
		}
		fm, fs := hards, 0.0
		if len(fi.Hypotheses) > 0 {
			fm, fs = fi.Hypotheses[0].Matched, fi.Hypotheses[0].Score
		}
		if fm > matched || (fm == matched && fs > score) {
			inf, matched, score, client, ok = fi, fm, fs, f.clientKey, true
		}
	}
	return inf, matched, score, client, ok
}

// inferFlow runs the full inference on one of this core's flows and
// reports the client key for the SessionFinalized event.
func (m *Monitor) inferFlow(canon layers.FlowKey) (*Inference, layers.FlowKey, error) {
	f, ok := m.flows[canon]
	if !ok {
		return nil, layers.FlowKey{}, errors.New("attack: flow vanished before inference")
	}
	inf, err := m.atk.Infer(f.observation())
	return inf, f.clientKey, err
}

// closeBatch runs the batch close across shards: the candidate set is
// the union of per-shard viable flows in clientKey order, and selection
// follows selectFlow exactly — single candidate short-circuit, then
// best (matched, score) among reporting flows, then the largest
// conversation.
func (e *shardEngine) closeBatch() (*Inference, error) {
	n := len(e.shards)
	lists := make([][]batchCand, n)
	e.callAll(func(c *Monitor, i int) { lists[i] = c.batchCandidates() })
	var all []batchCand
	owner := map[string]int{} // clientKey string -> shard
	byClient := map[string]batchCand{}
	for i, list := range lists {
		for _, bc := range list {
			all = append(all, bc)
			owner[bc.client] = i
			byClient[bc.client] = bc
		}
	}
	if len(all) == 0 {
		return nil, ErrNoTLSConversation
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].client < all[j].client })

	finish := func(shard int, canon layers.FlowKey) (*Inference, error) {
		var inf *Inference
		var client layers.FlowKey
		var err error
		e.callOne(shard, func(c *Monitor) { inf, client, err = c.inferFlow(canon) })
		if err != nil {
			return nil, err
		}
		e.seq++
		e.pending = append(e.pending, taggedEvent{evTag{seq: e.seq},
			SessionFinalized{Flow: client, Inference: inf}})
		return inf, nil
	}

	if len(all) == 1 {
		return finish(owner[all[0].client], all[0].canon)
	}

	// Per-shard bests, then the cross-shard reduce with the clientKey
	// tie-break the sorted single-threaded scan implies.
	type shardBest struct {
		inf     *Inference
		matched int
		score   float64
		client  layers.FlowKey
		ok      bool
	}
	bests := make([]shardBest, n)
	e.callAll(func(c *Monitor, i int) {
		var sb shardBest
		sb.inf, sb.matched, sb.score, sb.client, sb.ok = c.batchBest()
		bests[i] = sb
	})
	pick := -1
	for i, sb := range bests {
		if !sb.ok {
			continue
		}
		if pick < 0 || sb.matched > bests[pick].matched ||
			(sb.matched == bests[pick].matched && sb.score > bests[pick].score) ||
			(sb.matched == bests[pick].matched && sb.score == bests[pick].score &&
				sb.client.String() < bests[pick].client.String()) {
			pick = i
		}
	}
	if pick >= 0 {
		e.seq++
		e.pending = append(e.pending, taggedEvent{evTag{seq: e.seq},
			SessionFinalized{Flow: bests[pick].client, Inference: bests[pick].inf}})
		return bests[pick].inf, nil
	}

	// No in-band evidence anywhere: attack the largest conversation
	// (first of equals in clientKey order — `all` is already sorted).
	largest := all[0]
	for _, bc := range all[1:] {
		if bc.bytes > largest.bytes {
			largest = bc
		}
	}
	return finish(owner[largest.client], largest.canon)
}

// stats aggregates per-shard snapshots (Monitor.Stats, sharded).
func (e *shardEngine) stats() MonitorStats {
	n := len(e.shards)
	sts := make([]MonitorStats, n)
	if e.stopped {
		// Workers joined (post-Close): the cores are safe to read here.
		for i, s := range e.shards {
			sts[i] = s.core.Stats()
		}
	} else {
		e.callAll(func(c *Monitor, i int) { sts[i] = c.Stats() })
	}
	agg := MonitorStats{Sweeps: e.sweeps, Shards: make([]ShardStats, n)}
	for i, st := range sts {
		agg.Flows += st.Flows
		agg.LiveFlows += st.LiveFlows
		agg.RejectedFlows += st.RejectedFlows
		agg.FinalizedSessions += st.FinalizedSessions
		agg.ExpiredFlows += st.ExpiredFlows
		agg.RetainedBytes += st.RetainedBytes
		agg.SweepTouched += st.SweepTouched
		s := e.shards[i]
		s.mu.Lock()
		pendingRel := s.relBytes
		s.mu.Unlock()
		agg.Shards[i] = ShardStats{
			Flows:         st.Flows,
			LiveFlows:     st.LiveFlows,
			RejectedFlows: st.RejectedFlows,
			RetainedBytes: st.RetainedBytes,
			RingPending:   pendingRel,
		}
		agg.RetainedBytes += pendingRel
	}
	agg.FinalizedSessions += e.extraFinalized
	if e.cr != nil {
		agg.RetainedBytes += int64(e.cr.Buffered())
	}
	return agg
}
