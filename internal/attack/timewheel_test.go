package attack

import (
	"math/rand"
	"testing"
	"time"
)

func twAt(epoch time.Time, s float64) time.Time {
	return epoch.Add(time.Duration(s * float64(time.Second)))
}

// TestTimeWheelBucketRotation walks the clock tick by tick past a spread
// of deadlines and checks each entry pops on the first advance whose
// clock tick covers its deadline — no earlier pop beyond tick
// granularity, no missed entry.
func TestTimeWheelBucketRotation(t *testing.T) {
	epoch := time.Unix(1700000000, 0)
	w := newTimeWheel(epoch, 64*time.Second) // tick = 1s
	if w.tick != time.Second {
		t.Fatalf("tick = %v, want 1s", w.tick)
	}

	deadlines := []float64{1.2, 2.9, 3.0, 7.5, 40, 63.9, 64.1, 200}
	for i, s := range deadlines {
		w.schedule(&twEntry{deadline: twAt(epoch, s), ord: uint64(i)})
	}
	if w.size != len(deadlines) {
		t.Fatalf("size = %d, want %d", w.size, len(deadlines))
	}

	seen := map[uint64]float64{}
	for sec := 1; sec <= 210; sec++ {
		now := twAt(epoch, float64(sec))
		for _, e := range w.advance(now) {
			if _, dup := seen[e.ord]; dup {
				t.Fatalf("entry %d popped twice", e.ord)
			}
			seen[e.ord] = float64(sec)
			// An entry may pop up to one tick before its deadline (tick
			// granularity) and must pop no later than the first advance
			// past it.
			s := deadlines[e.ord]
			if float64(sec) < s-1 {
				t.Errorf("entry %d (deadline %gs) popped early at %ds", e.ord, s, sec)
			}
			if float64(sec) > s+1 {
				t.Errorf("entry %d (deadline %gs) popped late at %ds", e.ord, s, sec)
			}
		}
	}
	if len(seen) != len(deadlines) {
		t.Fatalf("popped %d entries, want %d", len(seen), len(deadlines))
	}
	if w.size != 0 {
		t.Fatalf("size = %d after draining, want 0", w.size)
	}
}

// TestTimeWheelClockJump jumps the clock far beyond one level-0
// revolution (and beyond a level-1 revolution) in a single advance; every
// scheduled entry must pop exactly once, and entries beyond the jump must
// stay scheduled.
func TestTimeWheelClockJump(t *testing.T) {
	epoch := time.Unix(1700000000, 0)
	w := newTimeWheel(epoch, 64*time.Second)

	// Deadlines spanning level 0 (<64s), level 1 (<4096s), level 2, and
	// one past the jump target.
	due := []float64{0.5, 10, 63, 64, 500, 4095, 4097, 9000}
	w.schedule(&twEntry{deadline: twAt(epoch, 99999), ord: 1000})
	for i, s := range due {
		w.schedule(&twEntry{deadline: twAt(epoch, s), ord: uint64(i)})
	}

	got := w.advance(twAt(epoch, 10000)) // one jump across two revolutions
	if len(got) != len(due) {
		t.Fatalf("jump popped %d entries, want %d", len(got), len(due))
	}
	for i, e := range got {
		if e.ord != uint64(i) {
			t.Errorf("pop %d has ord %d, want %d (ord-sorted)", i, e.ord, i)
		}
	}
	if w.size != 1 {
		t.Fatalf("size = %d after jump, want 1 (the 99999s entry)", w.size)
	}
	if late := w.advance(twAt(epoch, 100001)); len(late) != 1 || late[0].ord != 1000 {
		t.Fatalf("far entry pop = %v, want the single ord-1000 entry", late)
	}
}

// TestTimeWheelReArm models a flow seeing traffic after its entry was
// scheduled: on pop, the caller re-schedules at the refreshed deadline
// instead of expiring. The entry must keep popping (and re-arming) until
// the refreshed deadline actually passes.
func TestTimeWheelReArm(t *testing.T) {
	epoch := time.Unix(1700000000, 0)
	w := newTimeWheel(epoch, 64*time.Second)

	e := &twEntry{deadline: twAt(epoch, 5), ord: 1}
	w.schedule(e)

	// Traffic at t=5 pushes the real deadline to t=69; the stale entry
	// pops at its old slot and gets re-armed.
	pops := 0
	expired := false
	for sec := 1; sec <= 80 && !expired; sec++ {
		for _, p := range w.advance(twAt(epoch, float64(sec))) {
			pops++
			refreshed := twAt(epoch, 69)
			if refreshed.After(twAt(epoch, float64(sec))) {
				p.deadline = refreshed
				w.schedule(p)
			} else {
				expired = true
			}
		}
	}
	if !expired {
		t.Fatal("re-armed entry never expired")
	}
	if pops < 2 {
		t.Fatalf("entry popped %d times, want >= 2 (stale pop + final expiry)", pops)
	}
	if w.size != 0 {
		t.Fatalf("size = %d, want 0", w.size)
	}
}

// TestTimeWheelIdenticalDeadlineOrder pins expiry-order determinism:
// entries sharing one deadline pop in ord order regardless of insertion
// order, so sharded and unsharded sweeps expire equal-deadline flows
// identically.
func TestTimeWheelIdenticalDeadlineOrder(t *testing.T) {
	epoch := time.Unix(1700000000, 0)
	deadline := twAt(epoch, 30)
	for trial := 0; trial < 8; trial++ {
		w := newTimeWheel(epoch, 64*time.Second)
		ords := rand.New(rand.NewSource(int64(trial))).Perm(50)
		for _, o := range ords {
			w.schedule(&twEntry{deadline: deadline, ord: uint64(o)})
		}
		got := w.advance(twAt(epoch, 31))
		if len(got) != 50 {
			t.Fatalf("trial %d: popped %d, want 50", trial, len(got))
		}
		for i, e := range got {
			if e.ord != uint64(i) {
				t.Fatalf("trial %d: pop %d has ord %d, want %d", trial, i, e.ord, i)
			}
		}
	}
}

// TestTimeWheelHorizonClamp schedules a deadline beyond the wheel's
// representable range; the clamp must keep it poppable (via cascade
// re-schedule) rather than parking it a full revolution away.
func TestTimeWheelHorizonClamp(t *testing.T) {
	epoch := time.Unix(1700000000, 0)
	w := newTimeWheel(epoch, 64*time.Second)
	horizon := float64(levelSpan(twLevels)) // in ticks = seconds here
	w.schedule(&twEntry{deadline: twAt(epoch, horizon*3), ord: 7})

	if got := w.advance(twAt(epoch, horizon*2)); len(got) != 0 {
		t.Fatalf("entry popped %v before its deadline", got)
	}
	if got := w.advance(twAt(epoch, horizon*3+1)); len(got) != 1 || got[0].ord != 7 {
		t.Fatalf("clamped entry pop = %v, want ord 7", got)
	}
}
