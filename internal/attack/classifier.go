package attack

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/quicrec"
	"repro/internal/tlsrec"
)

// Class is the attacker-side label for a client record.
type Class int

// Classes.
const (
	ClassOther Class = iota
	ClassType1
	ClassType2
)

// String names the class the way the paper does.
func (c Class) String() string {
	switch c {
	case ClassType1:
		return "type-1"
	case ClassType2:
		return "type-2"
	default:
		return "others"
	}
}

// Example is one labeled training record length.
type Example struct {
	Length int
	Class  Class
}

// Classifier assigns a class to a record length, with a confidence score
// in (0, 1] used by the graph-constrained decoder.
type Classifier interface {
	Classify(length int) (Class, float64)
	Name() string
}

// Trainer builds a classifier from labeled examples.
type Trainer interface {
	Train(examples []Example) (Classifier, error)
}

// SoftClassifier is an optional refinement a classifier can implement: a
// weak secondary hypothesis for records that fall just outside every
// learned band. Real report lengths drift between profiling and attack
// (session tokens, position digits, browser builds shift bodies by a few
// bytes), so a record a handful of bytes off a band is far more likely a
// drifted report than ordinary traffic. The constrained decoder uses
// these as speculative, timestamped evidence — following the
// traffic-analysis literature's point that length and timing carry the
// signal together. Implementations return (ClassOther, 0) when no band
// is near.
type SoftClassifier interface {
	SoftClassify(length int) (Class, float64)
}

// --- Interval-band classifier (the paper's rule) ---------------------------

// IntervalBand is the paper's classifier: type-1 and type-2 records each
// fall in a narrow learned [lo, hi] band of record lengths; everything
// outside both bands is "others". Bands are widened by a configurable
// margin to absorb unseen jitter.
type IntervalBand struct {
	T1Lo, T1Hi int
	T2Lo, T2Hi int
}

// Name implements Classifier.
func (c *IntervalBand) Name() string { return "interval-band" }

// Classify implements Classifier.
func (c *IntervalBand) Classify(length int) (Class, float64) {
	switch {
	case length >= c.T1Lo && length <= c.T1Hi:
		return ClassType1, 1.0
	case length >= c.T2Lo && length <= c.T2Hi:
		return ClassType2, 1.0
	}
	// Confidence that it is "other" decays near the band edges.
	d := float64(minDistance(length, c.T1Lo, c.T1Hi, c.T2Lo, c.T2Hi))
	conf := 1 - math.Exp(-d/8)
	if conf < 0.5 {
		conf = 0.5
	}
	return ClassOther, conf
}

// softRadius bounds how far outside a band a record may fall and still
// count as a drifted-report candidate. It mirrors the trainer's default
// widening margin: drift beyond another margin-width is indistinguishable
// from foreign traffic.
const softRadius = 32

// SoftClassify implements SoftClassifier: records within softRadius of a
// band are weak candidates for that band's class, with confidence
// decaying in the distance. In-band records never reach here (Classify
// already claimed them).
func (c *IntervalBand) SoftClassify(length int) (Class, float64) {
	d1 := bandDistance(length, c.T1Lo, c.T1Hi)
	d2 := bandDistance(length, c.T2Lo, c.T2Hi)
	cls, d := ClassType1, d1
	if d2 < d {
		cls, d = ClassType2, d2
	}
	if d > softRadius {
		return ClassOther, 0
	}
	return cls, 0.5 * math.Exp(-float64(d)/24)
}

// bandDistance is the distance from v to the closed interval [lo, hi].
func bandDistance(v, lo, hi int) int {
	switch {
	case v < lo:
		return lo - v
	case v > hi:
		return v - hi
	default:
		return 0
	}
}

func minDistance(v int, bounds ...int) int {
	best := math.MaxInt
	for _, b := range bounds {
		if d := abs(v - b); d < best {
			best = d
		}
	}
	return best
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// IntervalBandTrainer learns the bands from labeled examples.
type IntervalBandTrainer struct {
	// Margin widens each learned band by this many bytes on both sides.
	// The default of 24 covers the session-token length jitter observed
	// across browsers (the paper's Figure 2 bands are up to ~30 bytes
	// wide), so a band learned from few examples still generalizes; the
	// pollution check below rejects the margin if it swallows "other"
	// traffic.
	Margin int
	// PadEnvelope widens each band by the maximum number of bytes a
	// TLS 1.3 record-padding policy can add to a record
	// (tlsrec.PaddingPolicy.Envelope). Padded training examples cover
	// only the pads that happened to be drawn: an attack-time record may
	// carry up to Envelope more padding than the largest observed example
	// — or up to Envelope less than the smallest — so both edges widen.
	// The separability and pollution checks run on the widened bands, so
	// a policy wide enough to smear the classes together fails training
	// loudly instead of misclassifying quietly.
	PadEnvelope int
}

// Train implements Trainer.
func (t *IntervalBandTrainer) Train(examples []Example) (Classifier, error) {
	margin := t.Margin
	if margin == 0 {
		margin = 24
	}
	widen := margin + t.PadEnvelope
	t1 := lengthsOf(examples, ClassType1)
	t2 := lengthsOf(examples, ClassType2)
	if len(t1) == 0 || len(t2) == 0 {
		return nil, fmt.Errorf("attack: interval-band training needs both type-1 and type-2 examples (have %d/%d)",
			len(t1), len(t2))
	}
	c := &IntervalBand{
		T1Lo: minInt(t1) - widen, T1Hi: maxInt(t1) + widen,
		T2Lo: minInt(t2) - widen, T2Hi: maxInt(t2) + widen,
	}
	if c.T1Hi >= c.T2Lo {
		return nil, fmt.Errorf("attack: type-1 band [%d,%d] overlaps type-2 band [%d,%d]; condition not separable",
			c.T1Lo, c.T1Hi, c.T2Lo, c.T2Hi)
	}
	// "Other" examples inside a learned band mean the side-channel is
	// polluted under this condition; refuse rather than misclassify.
	for _, e := range examples {
		if e.Class != ClassOther {
			continue
		}
		if (e.Length >= c.T1Lo && e.Length <= c.T1Hi) ||
			(e.Length >= c.T2Lo && e.Length <= c.T2Hi) {
			return nil, fmt.Errorf("attack: 'other' record of %d bytes falls inside a learned band", e.Length)
		}
	}
	return c, nil
}

// TrainerFor returns the interval-band trainer matched to the record
// layer the profiled service speaks: under TLS 1.3 the learned bands
// widen by the padding policy's envelope (training examples only cover
// the pads that happened to be drawn); under 1.2 the policy is
// meaningless and ignored. Every entry point that trains from
// version-aware sessions — the facade, the experiment drivers, wmattack
// — goes through here so the envelope rule lives in one place.
func TrainerFor(ver tlsrec.RecordVersion, pad tlsrec.PaddingPolicy) Trainer {
	t := &IntervalBandTrainer{}
	if ver == tlsrec.RecordTLS13 {
		t.PadEnvelope = pad.Envelope()
	}
	return t
}

// TrainerForQUIC is TrainerFor's counterpart when the profiled service
// speaks QUIC: training examples are burst totals, and the datagram
// sizing policy plays the role TLS 1.3 record padding plays — a
// PadRandom policy inflates a write by up to its envelope beyond what
// any one training example shows, so the learned bands must widen by
// that much to hold at attack time.
func TrainerForQUIC(pol quicrec.SizingPolicy) Trainer {
	return &IntervalBandTrainer{PadEnvelope: pol.Envelope()}
}

// --- Nearest-centroid classifier -------------------------------------------

// NearestCentroid classifies by distance to per-class mean lengths; it
// needs no band separation but degrades gracefully when classes smear.
type NearestCentroid struct {
	Centroids map[Class]float64
	// Spread is the average within-class deviation, scaling confidence.
	Spread float64
}

// Name implements Classifier.
func (c *NearestCentroid) Name() string { return "nearest-centroid" }

// Classify implements Classifier.
func (c *NearestCentroid) Classify(length int) (Class, float64) {
	best, bestD := ClassOther, math.MaxFloat64
	var secondD = math.MaxFloat64
	for cls, ctr := range c.Centroids {
		d := math.Abs(float64(length) - ctr)
		if d < bestD {
			second := bestD
			bestD, best = d, cls
			secondD = second
		} else if d < secondD {
			secondD = d
		}
	}
	spread := c.Spread
	if spread <= 0 {
		spread = 1
	}
	// Confidence from the margin between best and second-best distances.
	conf := (secondD - bestD) / (secondD + bestD + spread)
	if conf < 0.34 {
		conf = 0.34
	}
	if conf > 1 {
		conf = 1
	}
	return best, conf
}

// NearestCentroidTrainer learns per-class centroids.
type NearestCentroidTrainer struct{}

// Train implements Trainer.
func (NearestCentroidTrainer) Train(examples []Example) (Classifier, error) {
	sums := map[Class]float64{}
	counts := map[Class]int{}
	for _, e := range examples {
		sums[e.Class] += float64(e.Length)
		counts[e.Class]++
	}
	if counts[ClassType1] == 0 || counts[ClassType2] == 0 {
		return nil, fmt.Errorf("attack: centroid training needs type-1 and type-2 examples")
	}
	c := &NearestCentroid{Centroids: map[Class]float64{}}
	for cls, n := range counts {
		c.Centroids[cls] = sums[cls] / float64(n)
	}
	// Spread: mean absolute deviation across classes.
	var dev float64
	for _, e := range examples {
		dev += math.Abs(float64(e.Length) - c.Centroids[e.Class])
	}
	c.Spread = dev / float64(len(examples))
	return c, nil
}

// --- kNN classifier ---------------------------------------------------------

// KNN is a k-nearest-neighbours classifier over record lengths.
type KNN struct {
	K int
	// points are sorted by length for binary-search neighbourhoods.
	points []Example
}

// Name implements Classifier.
func (c *KNN) Name() string { return fmt.Sprintf("knn-%d", c.K) }

// Classify implements Classifier.
func (c *KNN) Classify(length int) (Class, float64) {
	k := c.K
	if k <= 0 {
		k = 5
	}
	if k > len(c.points) {
		k = len(c.points)
	}
	// Locate insertion point, then expand outward.
	i := sort.Search(len(c.points), func(i int) bool {
		return c.points[i].Length >= length
	})
	votes := map[Class]int{}
	lo, hi := i-1, i
	for n := 0; n < k; n++ {
		switch {
		case lo < 0 && hi >= len(c.points):
			n = k // both sides exhausted
		case lo < 0:
			votes[c.points[hi].Class]++
			hi++
		case hi >= len(c.points):
			votes[c.points[lo].Class]++
			lo--
		case length-c.points[lo].Length <= c.points[hi].Length-length:
			votes[c.points[lo].Class]++
			lo--
		default:
			votes[c.points[hi].Class]++
			hi++
		}
	}
	best, bestVotes, total := ClassOther, 0, 0
	for cls, v := range votes {
		total += v
		if v > bestVotes {
			best, bestVotes = cls, v
		}
	}
	if total == 0 {
		return ClassOther, 0.34
	}
	return best, float64(bestVotes) / float64(total)
}

// KNNTrainer builds a KNN classifier.
type KNNTrainer struct {
	K int
}

// Train implements Trainer.
func (t KNNTrainer) Train(examples []Example) (Classifier, error) {
	if len(examples) == 0 {
		return nil, fmt.Errorf("attack: knn training needs examples")
	}
	pts := append([]Example(nil), examples...)
	sort.Slice(pts, func(i, j int) bool { return pts[i].Length < pts[j].Length })
	k := t.K
	if k <= 0 {
		k = 5
	}
	return &KNN{K: k, points: pts}, nil
}

// --- helpers ----------------------------------------------------------------

func lengthsOf(examples []Example, cls Class) []int {
	var out []int
	for _, e := range examples {
		if e.Class == cls {
			out = append(out, e.Length)
		}
	}
	return out
}

func minInt(xs []int) int {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

func maxInt(xs []int) int {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}
