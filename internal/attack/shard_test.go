package attack

import (
	"fmt"
	"net/netip"
	"reflect"
	"testing"
	"time"

	"repro/internal/layers"
	"repro/internal/profiles"
)

// gapOrderingEvents builds the crafted gap capture and returns the event
// stream: a real session fed partway (flow A, with in-band evidence), a
// second two-direction flow B opened alongside it, then — after a
// ten-minute silence — B aborts with an RST whose timestamp jump
// triggers the idle sweep.
func gapOrderingEvents(t *testing.T, atk *Attacker, data []byte, shards int) []Event {
	t.Helper()
	var events []Event
	m := NewMonitor(atk, MonitorOptions{
		Shards: shards,
		Window: &Window{IdleTimeout: 60 * time.Second},
		OnEvent: func(ev Event) {
			events = append(events, ev)
		},
	})
	n := feedMonitorPackets(t, m, data, 0.6)
	if n == 0 {
		t.Fatal("no packets fed")
	}

	bKey := layers.FlowKey{
		SrcAddr: netip.MustParseAddr("192.168.1.77"),
		DstAddr: netip.MustParseAddr("198.51.100.99"),
		SrcPort: 40100, DstPort: 443,
	}
	base := m.lastClock(t)
	syn, err := layers.BuildTCPFrame(bKey, layers.Ethernet{}, layers.TCP{Seq: 1, Flags: layers.TCPSyn}, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	synAck, err := layers.BuildTCPFrame(bKey.Reverse(), layers.Ethernet{}, layers.TCP{Seq: 1, Ack: 2, Flags: layers.TCPSyn | layers.TCPAck}, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	rst, err := layers.BuildTCPFrame(bKey, layers.Ethernet{}, layers.TCP{Seq: 2, Flags: layers.TCPRst}, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, step := range []struct {
		ts    time.Time
		frame []byte
	}{
		{base.Add(time.Second), syn},
		{base.Add(time.Second + 50*time.Millisecond), synAck},
		{base.Add(10 * time.Minute), rst}, // the clock jump AND flow B's own abort
	} {
		if err := m.FeedPacket(step.ts, step.frame); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Close(); err != nil {
		t.Fatal(err)
	}
	return events
}

// lastClock exposes the monitor's capture clock to the gap test (the
// crafted flow-B packets must postdate the session's tail).
func (m *Monitor) lastClock(t *testing.T) time.Time {
	t.Helper()
	if m.eng != nil {
		return m.eng.clock
	}
	return m.clock
}

// TestMonitorSweepOrderingOnClockJump pins the idle-sweep ordering fix:
// when one packet's timestamp jump triggers the sweep, flows the sweep
// finalizes must emit BEFORE any event caused by that packet, keeping
// the event stream monotone in capture time. Here the silent session
// (flow A) must finalize before flow B's RST-driven expiry — the old
// post-packet sweep emitted them in the opposite order. The sharded
// engine must produce the identical stream.
func TestMonitorSweepOrderingOnClockJump(t *testing.T) {
	cond := profiles.Fig2Ubuntu
	atk := trainedAttacker(t, cond, []uint64{101, 102, 103})
	tr := runSession(t, 555, cond)
	data := capturedSession(t, tr, 7)

	want := gapOrderingEvents(t, atk, data, 0)

	finalizedAt, rstExpiredAt := -1, -1
	for i, ev := range want {
		switch e := ev.(type) {
		case SessionFinalized:
			if finalizedAt < 0 {
				finalizedAt = i
			}
		case FlowExpired:
			if e.Reason == "rst" {
				rstExpiredAt = i
			}
		}
	}
	if finalizedAt < 0 {
		t.Fatal("silent session never finalized on the clock jump")
	}
	if rstExpiredAt < 0 {
		t.Fatal("flow B's RST expiry never fired")
	}
	if finalizedAt > rstExpiredAt {
		t.Fatalf("sweep finalization (event %d) emitted after the triggering packet's expiry (event %d); stream not monotone in capture time",
			finalizedAt, rstExpiredAt)
	}
	// Capture-time monotonicity across the jump, the property the
	// ordering fix exists for.
	var last time.Time
	for i, ev := range want {
		var at time.Time
		switch e := ev.(type) {
		case FlowDetected:
			at = e.At
		case ChoiceInferred:
			at = e.At
		case FlowExpired:
			at = e.At
		default:
			continue
		}
		if at.Before(last) {
			t.Fatalf("event %d at %v precedes event time %v; stream not monotone", i, at, last)
		}
		last = at
	}

	for _, shards := range []int{1, 2, 4} {
		got := gapOrderingEvents(t, atk, data, shards)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("shards=%d: gap-capture event stream diverged from single-threaded (%d vs %d events)",
				shards, len(got), len(want))
		}
	}
}

// feedFlowStorm feeds n one-packet flows spread over one second, then
// walks the capture clock forward in 20s steps so clock-jump sweeps age
// every flow out through the timing wheel. Returns the monitor's final
// stats before Close.
func feedFlowStorm(t *testing.T, m *Monitor, n int) MonitorStats {
	t.Helper()
	base := time.Unix(1700000000, 0)
	for i := 0; i < n; i++ {
		key := layers.FlowKey{
			SrcAddr: netip.MustParseAddr(fmt.Sprintf("10.0.%d.%d", i/250%250+1, i%250+1)),
			DstAddr: netip.MustParseAddr("198.51.100.99"),
			SrcPort: uint16(1025 + i%60000), DstPort: 443,
		}
		frame, err := layers.BuildTCPFrame(key, layers.Ethernet{}, layers.TCP{Seq: 1, Flags: layers.TCPSyn}, nil, uint16(i))
		if err != nil {
			t.Fatal(err)
		}
		ts := base.Add(time.Duration(i) * time.Millisecond / 10)
		if err := m.FeedPacket(ts, frame); err != nil {
			t.Fatal(err)
		}
	}
	// A single long-lived flow ticks the clock forward; each 20s jump
	// exceeds IdleTimeout/4 and forces a sweep.
	tick := layers.FlowKey{
		SrcAddr: netip.MustParseAddr("192.168.9.9"),
		DstAddr: netip.MustParseAddr("198.51.100.99"),
		SrcPort: 39999, DstPort: 443,
	}
	for step := 1; step <= 6; step++ {
		frame, err := layers.BuildTCPFrame(tick, layers.Ethernet{}, layers.TCP{Seq: uint32(step), Flags: layers.TCPAck}, nil, uint16(step))
		if err != nil {
			t.Fatal(err)
		}
		if err := m.FeedPacket(base.Add(time.Duration(step)*20*time.Second), frame); err != nil {
			t.Fatal(err)
		}
	}
	return m.Stats()
}

// TestMonitorTenThousandFlows holds ten thousand concurrent flows in one
// rolling window and ages them all out: the timing wheel must do
// O(expired + re-armed) work — not O(flows) per sweep — and the sharded
// engine must spread the flows evenly and reach the same counts.
func TestMonitorTenThousandFlows(t *testing.T) {
	const flows = 10000
	atk := trainedAttacker(t, profiles.Fig2Ubuntu, []uint64{101})

	m := NewMonitor(atk, MonitorOptions{Window: &Window{IdleTimeout: 60 * time.Second}})
	st := feedFlowStorm(t, m, flows)
	if _, err := m.Close(); err != ErrNoTLSConversation {
		t.Fatalf("Close error = %v, want ErrNoTLSConversation", err)
	}
	if st.ExpiredFlows != flows {
		t.Errorf("ExpiredFlows = %d, want %d (every stormed flow idles out)", st.ExpiredFlows, flows)
	}
	if st.Flows != 1 {
		t.Errorf("Flows = %d at end, want 1 (only the clock-tick flow)", st.Flows)
	}
	if st.Sweeps == 0 {
		t.Fatal("no sweeps ran")
	}
	// The O(expired) bound: a linear table scan touches flows × sweeps
	// entries (~ 60k+ here); the wheel touches each flow once at expiry
	// plus a handful of re-arms.
	if st.SweepTouched > 3*flows {
		t.Errorf("SweepTouched = %d across %d sweeps; want O(expired) ~ %d, not O(flows × sweeps)",
			st.SweepTouched, st.Sweeps, flows)
	}
	if st.RetainedBytes > 1<<20 {
		t.Errorf("RetainedBytes = %d after storm, want bounded", st.RetainedBytes)
	}

	// Sharded: same aggregate counts, near-even flow distribution.
	ms := NewMonitor(atk, MonitorOptions{Shards: 4, Window: &Window{IdleTimeout: 60 * time.Second}})
	sts := feedFlowStorm(t, ms, flows)
	if _, err := ms.Close(); err != ErrNoTLSConversation {
		t.Fatalf("sharded Close error = %v, want ErrNoTLSConversation", err)
	}
	if sts.ExpiredFlows != flows {
		t.Errorf("sharded ExpiredFlows = %d, want %d", sts.ExpiredFlows, flows)
	}
	if len(sts.Shards) != 4 {
		t.Fatalf("Stats.Shards has %d entries, want 4", len(sts.Shards))
	}
	if sts.SweepTouched > 3*flows {
		t.Errorf("sharded SweepTouched = %d, want O(expired)", sts.SweepTouched)
	}
}

// TestMonitorShardBalance checks the RSS hash spreads a flow storm
// evenly: with 4 shards and thousands of flows, every shard should hold
// between half and twice the even share at peak.
func TestMonitorShardBalance(t *testing.T) {
	const flows = 4000
	atk := trainedAttacker(t, profiles.Fig2Ubuntu, []uint64{101})
	m := NewMonitor(atk, MonitorOptions{Shards: 4, Window: &Window{IdleTimeout: 600 * time.Second}})
	base := time.Unix(1700000000, 0)
	for i := 0; i < flows; i++ {
		key := layers.FlowKey{
			SrcAddr: netip.MustParseAddr(fmt.Sprintf("10.1.%d.%d", i/250%250+1, i%250+1)),
			DstAddr: netip.MustParseAddr("198.51.100.99"),
			SrcPort: uint16(1025 + i%60000), DstPort: 443,
		}
		frame, err := layers.BuildTCPFrame(key, layers.Ethernet{}, layers.TCP{Seq: 1, Flags: layers.TCPSyn}, nil, uint16(i))
		if err != nil {
			t.Fatal(err)
		}
		if err := m.FeedPacket(base.Add(time.Duration(i)*time.Millisecond), frame); err != nil {
			t.Fatal(err)
		}
	}
	st := m.Stats()
	if _, err := m.Close(); err != ErrNoTLSConversation {
		t.Fatalf("Close error = %v, want ErrNoTLSConversation", err)
	}
	if st.Flows != flows {
		t.Fatalf("aggregate Flows = %d, want %d", st.Flows, flows)
	}
	share := flows / 4
	for i, sh := range st.Shards {
		if sh.Flows < share/2 || sh.Flows > share*2 {
			t.Errorf("shard %d holds %d flows; want within [%d, %d] of the even share %d",
				i, sh.Flows, share/2, share*2, share)
		}
	}
}
