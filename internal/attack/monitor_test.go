package attack

import (
	"bytes"
	"io"
	"net/netip"
	"reflect"
	"testing"
	"time"

	"repro/internal/capture"
	"repro/internal/layers"
	"repro/internal/pcapio"
	"repro/internal/profiles"
	"repro/internal/session"
)

// capturedSession renders one session to pcap bytes.
func capturedSession(t *testing.T, tr *session.Trace, seed uint64) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := capture.WritePcap(&buf, tr, capture.Options{Seed: seed}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// feedMonitor drives a monitor with fixed-size chunks and closes it.
func feedMonitor(t *testing.T, m *Monitor, data []byte, chunk int) *Inference {
	t.Helper()
	for off := 0; off < len(data); off += chunk {
		end := off + chunk
		if end > len(data) {
			end = len(data)
		}
		if err := m.Feed(data[off:end]); err != nil {
			t.Fatal(err)
		}
	}
	inf, err := m.Close()
	if err != nil {
		t.Fatal(err)
	}
	return inf
}

// TestMonitorMatchesInferPcap pins the wrapper contract inside the
// package: a monitor fed in arbitrary chunks returns the exact Inference
// the one-shot path produces (the root-level equivalence test extends
// this to whole datasets and 1-byte feeds).
func TestMonitorMatchesInferPcap(t *testing.T) {
	cond := profiles.Fig2Ubuntu
	atk := trainedAttacker(t, cond, []uint64{101, 102, 103})
	tr := runSession(t, 555, cond)
	data := capturedSession(t, tr, 7)

	want, err := atk.InferPcap(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, chunk := range []int{997, 64 << 10, len(data)} {
		got := feedMonitor(t, NewMonitor(atk, MonitorOptions{}), data, chunk)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("chunk %d: monitor inference differs from InferPcap", chunk)
		}
	}
}

// TestMonitorFeedPacket drives the per-packet entry point and requires
// the same result as the byte-chunk path.
func TestMonitorFeedPacket(t *testing.T) {
	cond := profiles.Fig2Ubuntu
	atk := trainedAttacker(t, cond, []uint64{101, 102, 103})
	tr := runSession(t, 556, cond)
	data := capturedSession(t, tr, 9)

	want, err := atk.InferPcap(data)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := pcapio.NewBytesReader(data)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMonitor(atk, MonitorOptions{})
	for {
		rec, err := pr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := m.FeedPacket(rec.Timestamp, rec.Data); err != nil {
			t.Fatal(err)
		}
	}
	got, err := m.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("FeedPacket inference differs from InferPcap")
	}
}

// TestMonitorEvents checks the live event stream: one FlowDetected, a
// ChoiceInferred per in-band report, and a SessionFinalized carrying the
// same inference Close returns.
func TestMonitorEvents(t *testing.T) {
	cond := profiles.Fig2Ubuntu
	atk := trainedAttacker(t, cond, []uint64{101, 102, 103})
	tr := runSession(t, 557, cond)
	data := capturedSession(t, tr, 11)

	var detected []FlowDetected
	var choices []ChoiceInferred
	var finals []SessionFinalized
	m := NewMonitor(atk, MonitorOptions{OnEvent: func(ev Event) {
		switch e := ev.(type) {
		case FlowDetected:
			detected = append(detected, e)
		case ChoiceInferred:
			choices = append(choices, e)
		case SessionFinalized:
			finals = append(finals, e)
		}
	}})
	inf := feedMonitor(t, m, data, 32<<10)

	if len(detected) != 1 {
		t.Fatalf("FlowDetected fired %d times, want 1", len(detected))
	}
	if detected[0].Flow.DstPort != 443 {
		t.Errorf("detected flow %v is not client->server", detected[0].Flow)
	}
	hard := 0
	for _, c := range inf.Classified {
		if c.Class != ClassOther {
			hard++
		}
	}
	if len(choices) != hard {
		t.Errorf("ChoiceInferred fired %d times, want one per in-band report (%d)", len(choices), hard)
	}
	for i := 1; i < len(choices); i++ {
		if choices[i].At.Before(choices[i-1].At) {
			t.Error("ChoiceInferred events out of capture order")
		}
	}
	if len(finals) != 1 {
		t.Fatalf("SessionFinalized fired %d times, want 1", len(finals))
	}
	if !reflect.DeepEqual(finals[0].Inference, inf) {
		t.Error("SessionFinalized inference differs from Close result")
	}
	// The live engine's final running decisions should agree with the
	// final inference for a clean wired capture.
	if len(choices) > 0 {
		last := choices[len(choices)-1]
		if len(last.Decisions) > 0 && !reflect.DeepEqual(last.Decisions, inf.Decisions) {
			t.Errorf("running decisions %v, final %v", last.Decisions, inf.Decisions)
		}
	}
}

// TestPrefixAlignerMatchesBatchScore proves the incremental column
// recurrence reproduces the batch aligner bit-for-bit: after absorbing
// every observation, each path's final column cell equals the raw
// Needleman–Wunsch score of the full alignment.
func TestPrefixAlignerMatchesBatchScore(t *testing.T) {
	cond := profiles.Fig2Ubuntu
	atk := trainedAttacker(t, cond, []uint64{101, 102, 103})
	tr := runSession(t, 558, cond)
	obs := observationFromTrace(t, tr)
	classified := ClassifyRecords(obs.ClientRecords, atk.Classifier)
	table, err := PathTableFor(atk.Graph, atk.MaxChoices)
	if err != nil {
		t.Fatal(err)
	}
	var anchor time.Time
	if len(obs.ClientRecords) > 0 {
		anchor = obs.ClientRecords[0].Time
	}
	events := observedEvents(classified, anchor)
	if len(events) == 0 {
		t.Fatal("no observations in session")
	}

	prm := DecodeParams{}.withDefaults()
	pa := newPrefixAligner(table, prm)
	for _, ev := range events {
		pa.observe(ev)
	}
	maxM := 0
	for i := range table.Paths {
		if m := len(table.Paths[i].Events); m > maxM {
			maxM = m
		}
	}
	batch := newAligner(maxM, len(events))
	for pi := range table.Paths {
		want := batch.score(table.Paths[pi].Events, events, prm)
		got := pa.cols[pi][len(table.Paths[pi].Events)]
		if got != want {
			t.Fatalf("path %d: incremental %v != batch %v", pi, got, want)
		}
	}
}

// feedMonitorPackets drives a monitor packet by packet without closing,
// returning the records fed.
func feedMonitorPackets(t *testing.T, m *Monitor, data []byte, frac float64) int {
	t.Helper()
	pr, err := pcapio.NewBytesReader(data)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := pr.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	n := int(float64(len(recs)) * frac)
	for _, rec := range recs[:n] {
		if err := m.FeedPacket(rec.Timestamp, rec.Data); err != nil {
			t.Fatal(err)
		}
	}
	return n
}

// TestMonitorWindowFinFinalizes pins the rolling-window FIN path: the
// session finalizes the moment its FIN exchange is delivered — before
// Close — with the very inference the one-shot batch path produces, and
// the monitor's flow table is empty afterwards.
func TestMonitorWindowFinFinalizes(t *testing.T) {
	cond := profiles.Fig2Ubuntu
	atk := trainedAttacker(t, cond, []uint64{101, 102, 103})
	tr := runSession(t, 561, cond)
	data := capturedSession(t, tr, 13)
	want, err := atk.InferPcap(data)
	if err != nil {
		t.Fatal(err)
	}

	var finals []SessionFinalized
	var closed bool
	var finalizedBeforeClose bool
	m := NewMonitor(atk, MonitorOptions{
		Window: &Window{},
		OnEvent: func(ev Event) {
			if f, ok := ev.(SessionFinalized); ok {
				finals = append(finals, f)
				finalizedBeforeClose = finalizedBeforeClose || !closed
			}
		},
	})
	feedMonitorPackets(t, m, data, 1.0)
	if len(finals) != 1 {
		t.Fatalf("SessionFinalized fired %d times during the feed, want 1 (on FIN)", len(finals))
	}
	if !finalizedBeforeClose {
		t.Error("finalization waited for Close; the FIN should have triggered it")
	}
	if st := m.Stats(); st.Flows != 0 || st.RetainedBytes != 0 {
		t.Errorf("flow state retained after FIN finalization: %+v", st)
	}
	closed = true
	got, err := m.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("windowed inference differs from batch InferPcap")
	}
	if !reflect.DeepEqual(finals[0].Inference, want) {
		t.Error("SessionFinalized inference differs from batch InferPcap")
	}
}

// TestMonitorWindowRstFinalizes: a reset mid-session finalizes the flow
// immediately with the partial path decoded so far.
func TestMonitorWindowRstFinalizes(t *testing.T) {
	cond := profiles.Fig2Ubuntu
	atk := trainedAttacker(t, cond, []uint64{101, 102, 103})
	tr := runSession(t, 562, cond)
	data := capturedSession(t, tr, 17)
	full, err := atk.InferPcap(data)
	if err != nil {
		t.Fatal(err)
	}

	var finals []SessionFinalized
	m := NewMonitor(atk, MonitorOptions{
		Window: &Window{},
		OnEvent: func(ev Event) {
			if f, ok := ev.(SessionFinalized); ok {
				finals = append(finals, f)
			}
		},
	})
	feedMonitorPackets(t, m, data, 0.6)
	if len(finals) != 0 {
		t.Fatal("finalized before any close signal")
	}

	// The eavesdropper sees the connection reset mid-film.
	ep := capture.DefaultEndpoints()
	key := layers.FlowKey{SrcAddr: ep.ClientAddr, DstAddr: ep.ServerAddr,
		SrcPort: ep.ClientPort, DstPort: ep.ServerPort}
	rst, err := layers.BuildTCPFrame(key, layers.Ethernet{}, layers.TCP{Seq: 1, Flags: layers.TCPRst}, nil, 9)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.FeedPacket(tr.Result.EndedAt, rst); err != nil {
		t.Fatal(err)
	}
	if len(finals) != 1 {
		t.Fatalf("SessionFinalized fired %d times after RST, want 1", len(finals))
	}
	inf := finals[0].Inference
	if len(inf.Classified) == 0 || len(inf.Classified) >= len(full.Classified) {
		t.Errorf("RST inference classified %d records, want a proper partial of %d",
			len(inf.Classified), len(full.Classified))
	}
	if len(inf.Decisions) == 0 {
		t.Error("partial-path inference carries no decisions")
	}
}

// TestMonitorWindowIdleExpiry is the mid-session flow-expiry contract:
// a session that goes silent finalizes via the idle sweep, emitting a
// partial-path SessionFinalized whose inference carries the decode margin
// over the confirmed prefix.
func TestMonitorWindowIdleExpiry(t *testing.T) {
	cond := profiles.Fig2Ubuntu
	atk := trainedAttacker(t, cond, []uint64{101, 102, 103})
	tr := runSession(t, 563, cond)
	data := capturedSession(t, tr, 19)
	full, err := atk.InferPcap(data)
	if err != nil {
		t.Fatal(err)
	}

	var finals []SessionFinalized
	var expired []FlowExpired
	m := NewMonitor(atk, MonitorOptions{
		Window: &Window{IdleTimeout: 60 * time.Second},
		OnEvent: func(ev Event) {
			switch e := ev.(type) {
			case SessionFinalized:
				finals = append(finals, e)
			case FlowExpired:
				expired = append(expired, e)
			}
		},
	})
	feedMonitorPackets(t, m, data, 0.6)

	// Ten minutes later an unrelated connection sends one packet; the
	// sweep must age the silent session out.
	other := layers.FlowKey{
		SrcAddr: netip.MustParseAddr("192.168.1.50"),
		DstAddr: netip.MustParseAddr("198.51.100.99"),
		SrcPort: 40000, DstPort: 443,
	}
	frame, err := layers.BuildTCPFrame(other, layers.Ethernet{}, layers.TCP{Seq: 1, Flags: layers.TCPSyn}, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.FeedPacket(tr.Result.EndedAt.Add(10*time.Minute), frame); err != nil {
		t.Fatal(err)
	}
	if len(finals) != 1 {
		t.Fatalf("SessionFinalized fired %d times after idle, want 1", len(finals))
	}
	inf := finals[0].Inference
	if len(inf.Classified) == 0 || len(inf.Classified) >= len(full.Classified) {
		t.Errorf("idle inference classified %d records, want a proper partial of %d",
			len(inf.Classified), len(full.Classified))
	}
	if len(inf.Hypotheses) == 0 {
		t.Error("partial-path inference carries no hypotheses")
	}
	if inf.DecodeMargin < 0 {
		t.Errorf("confirmed-prefix DecodeMargin = %v", inf.DecodeMargin)
	}
	// The partial decode must agree with the full decode on the prefix of
	// choices whose evidence it saw.
	n := len(inf.Decisions)
	if n > len(full.Decisions) {
		n = len(full.Decisions)
	}
	agree := 0
	for i := 0; i < n; i++ {
		if inf.Decisions[i] == full.Decisions[i] {
			agree++
		}
	}
	if n > 0 && agree*2 < n {
		t.Errorf("partial decode agrees on %d/%d prefix choices", agree, n)
	}
}

// TestMonitorWindowRejectsNoiseFlows is the eviction regression from the
// rolling-window work: noise flows the monitor has (implicitly) rejected
// must stop accumulating state. 16 concurrent bulk-streaming flows ride
// along one interactive session; with a window configured, every noise
// flow must enter rejected probation once it has produced enough
// reportless records, most must be terminally evicted after the bounded
// re-check, the monitor's retained memory must stay far below the stream
// volume, and the interactive session must still be found and decoded.
func TestMonitorWindowRejectsNoiseFlows(t *testing.T) {
	cond := profiles.Fig2Ubuntu
	atk := trainedAttacker(t, cond, []uint64{101, 102, 103})
	tr := runSession(t, 564, cond)
	var buf bytes.Buffer
	if err := capture.WritePcapMulti(&buf, tr, capture.MultiOptions{
		Options:    capture.Options{Seed: 23},
		NoiseFlows: 16,
	}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	// The first in-band report arrives ~record 12 on interactive flows
	// (see the soak defaults); 20 keeps the session clear of rejection
	// while noise flows trip it quickly.
	win := &Window{IdleTimeout: 120 * time.Second,
		RejectAfterRecords: 20, RecheckEvery: 8, RecheckBudget: 2}
	var finals []SessionFinalized
	var rejectedEvictions int
	m := NewMonitor(atk, MonitorOptions{Window: win, OnEvent: func(ev Event) {
		switch e := ev.(type) {
		case SessionFinalized:
			finals = append(finals, e)
		case FlowExpired:
			if e.Reason == "rejected" {
				rejectedEvictions++
			}
		}
	}})
	var peak int64
	const chunk = 256 << 10
	for off := 0; off < len(data); off += chunk {
		end := off + chunk
		if end > len(data) {
			end = len(data)
		}
		if err := m.Feed(data[off:end]); err != nil {
			t.Fatal(err)
		}
		if st := m.Stats(); st.RetainedBytes > peak {
			peak = st.RetainedBytes
		}
	}
	inf, err := m.Close()
	if err != nil {
		t.Fatal(err)
	}

	// The interactive flow finalized as the session and decoded fully.
	ep := capture.DefaultEndpoints()
	found := false
	for _, f := range finals {
		if f.Flow.SrcAddr == ep.ClientAddr && f.Flow.SrcPort == ep.ClientPort {
			found = true
		}
	}
	if !found {
		t.Errorf("interactive flow never finalized as a session (finals: %d)", len(finals))
	}
	correct, total := ScoreDecisions(inf.Decisions, tr.GroundTruthDecisions())
	if correct != total {
		t.Errorf("decode with 16 noise flows: %d/%d choices", correct, total)
	}

	// Eviction really happened, and really bounded memory: the capture
	// carries 17 flows of media-scale traffic, the monitor must retain a
	// small fraction of it at any instant.
	if rejectedEvictions < 8 {
		t.Errorf("only %d noise flows terminally evicted, want >= 8 of 16", rejectedEvictions)
	}
	if peak > int64(len(data))/8 {
		t.Errorf("peak retained %d bytes on a %d-byte capture; window is not releasing", peak, len(data))
	}
	t.Logf("capture %d bytes, peak retained %d, rejected evictions %d", len(data), peak, rejectedEvictions)
}

// TestMonitorWindowRejectsSlowDripNoise pins the rate-based rejection
// rule: a reportless flow that drips records too slowly to ever reach the
// count threshold must still be rejected — and terminally evicted — once
// it has been quiet for RejectQuiet of capture clock, because a deployed
// tap reasons in reports per minute, not in record counts. The
// bulk-streaming noise flows of an interleaved capture are exactly that
// shape: ~1 client record every few seconds, far below RejectAfterRecords
// over a whole session.
func TestMonitorWindowRejectsSlowDripNoise(t *testing.T) {
	cond := profiles.Fig2Ubuntu
	atk := trainedAttacker(t, cond, []uint64{101, 102, 103})
	tr := runSession(t, 564, cond) // long session: plenty of capture clock
	var buf bytes.Buffer
	if err := capture.WritePcapMulti(&buf, tr, capture.MultiOptions{
		Options:    capture.Options{Seed: 41},
		NoiseFlows: 6,
	}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	// A count threshold no drip flow can reach, so any rejection observed
	// is the clock rule's doing; one probation round keeps eviction inside
	// the capture.
	win := &Window{
		RejectAfterRecords: 100000,
		RejectQuiet:        60 * time.Second, RejectQuietMinRecords: 4,
		RecheckBudget: 1,
	}
	var finals []SessionFinalized
	var rejected []FlowExpired
	m := NewMonitor(atk, MonitorOptions{Window: win, OnEvent: func(ev Event) {
		switch e := ev.(type) {
		case SessionFinalized:
			finals = append(finals, e)
		case FlowExpired:
			if e.Reason == "rejected" {
				rejected = append(rejected, e)
			}
		}
	}})
	inf := feedMonitor(t, m, data, 256<<10)

	if len(rejected) == 0 {
		t.Fatal("no slow-drip flow was rejected by the quiet-period rule")
	}
	for _, e := range rejected {
		if e.Records >= win.RejectAfterRecords {
			t.Errorf("flow %v evicted with %d records — the count rule fired, not the clock rule",
				e.Flow, e.Records)
		}
	}
	// The interactive session is unharmed: its first report lands well
	// inside the quiet window, so it finalizes and decodes fully.
	ep := capture.DefaultEndpoints()
	found := false
	for _, f := range finals {
		if f.Flow.SrcAddr == ep.ClientAddr && f.Flow.SrcPort == ep.ClientPort {
			found = true
		}
	}
	if !found {
		t.Error("interactive flow never finalized as a session")
	}
	correct, total := ScoreDecisions(inf.Decisions, tr.GroundTruthDecisions())
	if correct != total {
		t.Errorf("decode under quiet-period rejection: %d/%d choices", correct, total)
	}
	t.Logf("%d slow-drip flows rejected (records per flow: %v)", len(rejected), recordCounts(rejected))
}

// recordCounts extracts the per-flow classified-record counts of expiry
// events for the test log.
func recordCounts(evs []FlowExpired) []int {
	out := make([]int, len(evs))
	for i, e := range evs {
		out[i] = e.Records
	}
	return out
}

// otherOnlyClassifier never places a record in a report band — the view
// an attacker trained under the wrong condition has of a capture.
type otherOnlyClassifier struct{}

func (otherOnlyClassifier) Classify(int) (Class, float64) { return ClassOther, 0 }

func (otherOnlyClassifier) Name() string { return "other-only" }

// TestMonitorWindowFallbackWithoutReports pins the batch fallback in
// rolling-window mode: when no flow ever classifies an in-band report
// (wrong training condition, defended traffic), Close must still attack
// the capture's largest conversation — byte-identical to InferPcap —
// rather than expiring everything and erroring. The quiet-period
// rejection rule is disabled here so the flow survives to Close with its
// full observation; the companion test below covers the rejected case.
func TestMonitorWindowFallbackWithoutReports(t *testing.T) {
	cond := profiles.Fig2Ubuntu
	atk := trainedAttacker(t, cond, []uint64{101, 102, 103})
	blind := *atk
	blind.Classifier = otherOnlyClassifier{}
	tr := runSession(t, 565, cond)
	data := capturedSession(t, tr, 29)

	want, err := blind.InferPcap(data)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMonitor(&blind, MonitorOptions{Window: &Window{RejectQuiet: -1}})
	got := feedMonitor(t, m, data, 128<<10)
	if !reflect.DeepEqual(got, want) {
		t.Error("windowed fallback inference differs from batch InferPcap")
	}
}

// TestMonitorWindowFallbackSurvivesRejection extends the zero-report
// fallback to the long-flow case: a reportless conversation that crosses
// the rejection threshold — and is even terminally evicted before its FIN
// — must still yield a largest-conversation inference at Close (decoded
// over the pre-rejection prefix), never an error.
func TestMonitorWindowFallbackSurvivesRejection(t *testing.T) {
	cond := profiles.Fig2Ubuntu
	atk := trainedAttacker(t, cond, []uint64{101, 102, 103})
	blind := *atk
	blind.Classifier = otherOnlyClassifier{}
	tr := runSession(t, 556, cond) // 140 app records: crosses every threshold below
	data := capturedSession(t, tr, 31)

	m := NewMonitor(&blind, MonitorOptions{
		Window: &Window{RejectAfterRecords: 20, RecheckEvery: 8, RecheckBudget: 2},
	})
	inf := feedMonitor(t, m, data, 128<<10)
	if inf == nil {
		t.Fatal("no inference")
	}
	if len(inf.Classified) == 0 {
		t.Error("fallback inference classified nothing")
	}
	if len(inf.Classified) >= 140 {
		t.Errorf("fallback classified %d records; expected the pre-rejection prefix only", len(inf.Classified))
	}
}

// TestMonitorFeedPacketOwnedReleasesOnError: a capture loop feeding a
// closed (or poisoned) monitor must get its ring slots back, or the ring
// grows one frame per packet — the leak the ring exists to prevent.
func TestMonitorFeedPacketOwnedReleasesOnError(t *testing.T) {
	cond := profiles.Fig2Ubuntu
	atk := trainedAttacker(t, cond, []uint64{101, 102, 103})
	ring := pcapio.NewPacketRing(4 << 10)
	m := NewMonitor(atk, MonitorOptions{Window: &Window{}, FrameRing: ring})
	if _, err := m.Close(); err == nil {
		t.Fatal("Close on an empty packet-fed monitor should report no conversation")
	}
	for i := 0; i < 10; i++ {
		slot := ring.AllocFrame(make([]byte, 1200))
		if err := m.FeedPacketOwned(time.Unix(int64(i), 0), slot); err == nil {
			t.Fatal("feed after Close should error")
		}
	}
	if ring.InUse() != 0 {
		t.Fatalf("ring holds %d bytes after error-path feeds; slots leaked", ring.InUse())
	}
}
