package attack

import (
	"bytes"
	"io"
	"reflect"
	"testing"
	"time"

	"repro/internal/capture"
	"repro/internal/pcapio"
	"repro/internal/profiles"
	"repro/internal/session"
)

// capturedSession renders one session to pcap bytes.
func capturedSession(t *testing.T, tr *session.Trace, seed uint64) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := capture.WritePcap(&buf, tr, capture.Options{Seed: seed}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// feedMonitor drives a monitor with fixed-size chunks and closes it.
func feedMonitor(t *testing.T, m *Monitor, data []byte, chunk int) *Inference {
	t.Helper()
	for off := 0; off < len(data); off += chunk {
		end := off + chunk
		if end > len(data) {
			end = len(data)
		}
		if err := m.Feed(data[off:end]); err != nil {
			t.Fatal(err)
		}
	}
	inf, err := m.Close()
	if err != nil {
		t.Fatal(err)
	}
	return inf
}

// TestMonitorMatchesInferPcap pins the wrapper contract inside the
// package: a monitor fed in arbitrary chunks returns the exact Inference
// the one-shot path produces (the root-level equivalence test extends
// this to whole datasets and 1-byte feeds).
func TestMonitorMatchesInferPcap(t *testing.T) {
	cond := profiles.Fig2Ubuntu
	atk := trainedAttacker(t, cond, []uint64{101, 102, 103})
	tr := runSession(t, 555, cond)
	data := capturedSession(t, tr, 7)

	want, err := atk.InferPcap(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, chunk := range []int{997, 64 << 10, len(data)} {
		got := feedMonitor(t, NewMonitor(atk, MonitorOptions{}), data, chunk)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("chunk %d: monitor inference differs from InferPcap", chunk)
		}
	}
}

// TestMonitorFeedPacket drives the per-packet entry point and requires
// the same result as the byte-chunk path.
func TestMonitorFeedPacket(t *testing.T) {
	cond := profiles.Fig2Ubuntu
	atk := trainedAttacker(t, cond, []uint64{101, 102, 103})
	tr := runSession(t, 556, cond)
	data := capturedSession(t, tr, 9)

	want, err := atk.InferPcap(data)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := pcapio.NewBytesReader(data)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMonitor(atk, MonitorOptions{})
	for {
		rec, err := pr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := m.FeedPacket(rec.Timestamp, rec.Data); err != nil {
			t.Fatal(err)
		}
	}
	got, err := m.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("FeedPacket inference differs from InferPcap")
	}
}

// TestMonitorEvents checks the live event stream: one FlowDetected, a
// ChoiceInferred per in-band report, and a SessionFinalized carrying the
// same inference Close returns.
func TestMonitorEvents(t *testing.T) {
	cond := profiles.Fig2Ubuntu
	atk := trainedAttacker(t, cond, []uint64{101, 102, 103})
	tr := runSession(t, 557, cond)
	data := capturedSession(t, tr, 11)

	var detected []FlowDetected
	var choices []ChoiceInferred
	var finals []SessionFinalized
	m := NewMonitor(atk, MonitorOptions{OnEvent: func(ev Event) {
		switch e := ev.(type) {
		case FlowDetected:
			detected = append(detected, e)
		case ChoiceInferred:
			choices = append(choices, e)
		case SessionFinalized:
			finals = append(finals, e)
		}
	}})
	inf := feedMonitor(t, m, data, 32<<10)

	if len(detected) != 1 {
		t.Fatalf("FlowDetected fired %d times, want 1", len(detected))
	}
	if detected[0].Flow.DstPort != 443 {
		t.Errorf("detected flow %v is not client->server", detected[0].Flow)
	}
	hard := 0
	for _, c := range inf.Classified {
		if c.Class != ClassOther {
			hard++
		}
	}
	if len(choices) != hard {
		t.Errorf("ChoiceInferred fired %d times, want one per in-band report (%d)", len(choices), hard)
	}
	for i := 1; i < len(choices); i++ {
		if choices[i].At.Before(choices[i-1].At) {
			t.Error("ChoiceInferred events out of capture order")
		}
	}
	if len(finals) != 1 {
		t.Fatalf("SessionFinalized fired %d times, want 1", len(finals))
	}
	if !reflect.DeepEqual(finals[0].Inference, inf) {
		t.Error("SessionFinalized inference differs from Close result")
	}
	// The live engine's final running decisions should agree with the
	// final inference for a clean wired capture.
	if len(choices) > 0 {
		last := choices[len(choices)-1]
		if len(last.Decisions) > 0 && !reflect.DeepEqual(last.Decisions, inf.Decisions) {
			t.Errorf("running decisions %v, final %v", last.Decisions, inf.Decisions)
		}
	}
}

// TestPrefixAlignerMatchesBatchScore proves the incremental column
// recurrence reproduces the batch aligner bit-for-bit: after absorbing
// every observation, each path's final column cell equals the raw
// Needleman–Wunsch score of the full alignment.
func TestPrefixAlignerMatchesBatchScore(t *testing.T) {
	cond := profiles.Fig2Ubuntu
	atk := trainedAttacker(t, cond, []uint64{101, 102, 103})
	tr := runSession(t, 558, cond)
	obs := observationFromTrace(t, tr)
	classified := ClassifyRecords(obs.ClientRecords, atk.Classifier)
	table, err := PathTableFor(atk.Graph, atk.MaxChoices)
	if err != nil {
		t.Fatal(err)
	}
	var anchor time.Time
	if len(obs.ClientRecords) > 0 {
		anchor = obs.ClientRecords[0].Time
	}
	events := observedEvents(classified, anchor)
	if len(events) == 0 {
		t.Fatal("no observations in session")
	}

	prm := DecodeParams{}.withDefaults()
	pa := newPrefixAligner(table, prm)
	for _, ev := range events {
		pa.observe(ev)
	}
	maxM := 0
	for i := range table.Paths {
		if m := len(table.Paths[i].Events); m > maxM {
			maxM = m
		}
	}
	batch := newAligner(maxM, len(events))
	for pi := range table.Paths {
		want := batch.score(table.Paths[pi].Events, events, prm)
		got := pa.cols[pi][len(table.Paths[pi].Events)]
		if got != want {
			t.Fatalf("path %d: incremental %v != batch %v", pi, got, want)
		}
	}
}
