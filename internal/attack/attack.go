package attack

import (
	"fmt"
	"time"

	"repro/internal/script"
	"repro/internal/session"
)

// TrainingSetFromTraces converts labeled session traces into classifier
// training examples: every client application write contributes its
// records with the ground-truth label. This mirrors the paper's setup,
// where the attacker first observes instrumented sessions under a known
// condition to learn that condition's bands.
//
// QUIC traces carry no client records — record boundaries are sealed
// inside 1-RTT packets — so QUIC examples are wire bursts: labeled
// writes whose datagrams arrive within the segmentation gap of each
// other merge into one example whose length is the summed datagram
// size, exactly what the monitor's BurstSegmenter will recover from the
// capture. A report posted back-to-back with a chunk request trains as
// the composite the eavesdropper actually sees.
func TrainingSetFromTraces(traces []*session.Trace) []Example {
	var out []Example
	for _, tr := range traces {
		quic := false
		for _, w := range tr.ClientWrites {
			if len(w.Datagrams) > 0 {
				quic = true
				break
			}
		}
		if quic {
			out = append(out, quicBurstExamples(tr)...)
			continue
		}
		for _, w := range tr.ClientWrites {
			cls := classOfLabel(w.Label)
			if w.Label == session.LabelHandshake {
				continue // not application data
			}
			for _, r := range w.Records {
				out = append(out, Example{Length: r.Length, Class: cls})
			}
		}
	}
	return out
}

func classOfLabel(l session.WriteLabel) Class {
	switch l {
	case session.LabelType1:
		return ClassType1
	case session.LabelType2:
		return ClassType2
	default:
		return ClassOther
	}
}

// quicBurstExamples groups a QUIC trace's labeled client writes into the
// bursts the wire shows, using the same gap rule as BurstSegmenter: a
// write whose first datagram lands within DefaultBurstGap of the
// previous write's last datagram joins the open burst. A burst's class
// is the strongest report it contains (type-2 over type-1 over other) —
// reports never co-occur within one gap, but a report and the chunk
// request it triggers routinely do.
//
// Report bursts that a telemetry beacon happened to land on are
// discarded: the profiler knows its own labels, and one collision would
// widen a report band by an entire telemetry payload, overlapping the
// other class and making the condition untrainable. At attack time the
// same collision merely pushes that one burst out of band, costing at
// most the affected choice.
func quicBurstExamples(tr *session.Trace) []Example {
	var out []Example
	var open, telemetry bool
	var bytes int
	var cls Class
	var last time.Time
	flush := func() {
		if open && !(telemetry && cls != ClassOther) {
			out = append(out, Example{Length: bytes, Class: cls})
		}
		open, telemetry, bytes, cls = false, false, 0, ClassOther
	}
	for _, w := range tr.ClientWrites {
		// The handshake travels in long-header datagrams, which the
		// monitor's segmenter never feeds into bursts.
		if w.Label == session.LabelHandshake || len(w.Datagrams) == 0 {
			continue
		}
		if open && w.Datagrams[0].Time.Sub(last) > DefaultBurstGap {
			flush()
		}
		open = true
		telemetry = telemetry || w.Label == session.LabelTelemetry
		for _, d := range w.Datagrams {
			bytes += d.Size
		}
		if c := classOfLabel(w.Label); c > cls {
			cls = c
		}
		if end := w.Datagrams[len(w.Datagrams)-1].Time; end.After(last) {
			last = end
		}
	}
	flush()
	return out
}

// HasBothClasses reports whether the traces contain at least one type-1
// and one type-2 training example — the attacker's stopping condition
// while profiling (a viewer who took only defaults never sent a type-2).
// It scans the labeled writes directly instead of materializing a
// training set, as it runs once per profiling session.
func HasBothClasses(traces []*session.Trace) bool {
	var t1, t2 bool
	for _, tr := range traces {
		for _, w := range tr.ClientWrites {
			switch w.Label {
			case session.LabelType1:
				t1 = t1 || len(w.Records) > 0 || len(w.Datagrams) > 0
			case session.LabelType2:
				t2 = t2 || len(w.Records) > 0 || len(w.Datagrams) > 0
			}
			if t1 && t2 {
				return true
			}
		}
	}
	return false
}

// Attacker bundles a trained classifier with the title's script graph.
type Attacker struct {
	Classifier Classifier
	// Graph, when non-nil, enables graph-constrained decoding.
	Graph *script.Graph
	// MaxChoices bounds path enumeration depth for constrained decoding.
	MaxChoices int
	// Decode tunes the constrained decoder's alignment score; the zero
	// value selects DefaultDecodeParams.
	Decode DecodeParams
}

// NewAttacker trains a classifier from labeled traces using the paper's
// interval-band rule and returns an attacker for the given graph.
func NewAttacker(training []*session.Trace, g *script.Graph, maxChoices int) (*Attacker, error) {
	return NewAttackerWithTrainer(&IntervalBandTrainer{}, training, g, maxChoices)
}

// NewAttackerWithTrainer is NewAttacker with an explicit classifier
// trainer — the hook for padding-aware profiling (an IntervalBandTrainer
// carrying the policy's PadEnvelope) or for the ablation classifiers.
func NewAttackerWithTrainer(t Trainer, training []*session.Trace, g *script.Graph, maxChoices int) (*Attacker, error) {
	clf, err := t.Train(TrainingSetFromTraces(training))
	if err != nil {
		return nil, err
	}
	return &Attacker{Classifier: clf, Graph: g, MaxChoices: maxChoices}, nil
}

// Inference is the attack's output for one capture.
type Inference struct {
	// Choices is the decoded choice sequence.
	Choices []InferredChoice
	// Decisions is the boolean form (true = default branch).
	Decisions []bool
	// Path is the reconstructed walk when a graph was supplied.
	Path script.Path
	// Classified retains the per-record classifications for reporting.
	Classified []ClassifiedRecord
	// UsedConstrainedDecode reports whether the graph search replaced the
	// plain decode.
	UsedConstrainedDecode bool
	// Hypotheses is the constrained decoder's ranked top-k candidate list
	// (present whenever a graph was supplied, even when the plain decode
	// was kept). Scores are per-event normalized and comparable across
	// sessions.
	Hypotheses []PathHypothesis
	// DecodeMargin is the score gap between the best and second-best
	// hypotheses — a calibrated confidence in the decode (0 when fewer
	// than two candidate paths exist).
	DecodeMargin float64
}

// Infer runs the attack on an extracted observation.
func (a *Attacker) Infer(obs *Observation) (*Inference, error) {
	if a.Classifier == nil {
		return nil, fmt.Errorf("attack: attacker has no classifier")
	}
	classified := ClassifyRecords(obs.ClientRecords, a.Classifier)
	choices := DecodeChoices(classified)
	inf := &Inference{
		Choices:    choices,
		Decisions:  Decisions(choices),
		Classified: classified,
	}
	if a.Graph == nil {
		return inf, nil
	}
	maxChoices := a.MaxChoices
	if maxChoices <= 0 {
		maxChoices = 16
	}
	// Score every candidate path against the observation using the
	// memoized per-graph table; the ranked list and margin are reported
	// even when the plain decode wins.
	table, err := PathTableFor(a.Graph, maxChoices)
	if err != nil {
		return inf, err
	}
	var anchor time.Time
	if len(obs.ClientRecords) > 0 {
		anchor = obs.ClientRecords[0].Time
	}
	hyps, err := table.Decode(classified, anchor, a.Decode)
	if err != nil {
		return inf, err
	}
	inf.Hypotheses = hyps
	if len(hyps) > 1 {
		if m := hyps[0].Score - hyps[1].Score; m > 0 {
			inf.DecodeMargin = m
		}
	}
	// Prefer the plain decode when it already corresponds to a valid
	// complete path; otherwise the best hypothesis repairs it.
	if pathValid(a.Graph, inf.Decisions) {
		p, err := a.Graph.Walk(inf.Decisions)
		if err == nil {
			inf.Path = p
			return inf, nil
		}
	}
	best := hyps[0]
	inf.Decisions = best.Decisions
	inf.UsedConstrainedDecode = true
	p, err := a.Graph.Walk(best.Decisions)
	if err != nil {
		return inf, err
	}
	inf.Path = p
	inf.Choices = rebuildChoices(table, best, classified)
	return inf, nil
}

// rebuildChoices reconstructs the choice sequence for a constrained
// decode from the winning alignment: each choice's timestamps come from
// the observed records its expected events matched, and choices whose
// events went unobserved — including any the decoder flipped against the
// plain decode — carry zero timestamps rather than stale ones.
func rebuildChoices(table *PathTable, best PathHypothesis, recs []ClassifiedRecord) []InferredChoice {
	out := make([]InferredChoice, len(best.Decisions))
	for i, d := range best.Decisions {
		out[i] = InferredChoice{Index: i, TookDefault: d}
	}
	// Locate the winning path's expected events to pair with the match
	// table (Decode copied the decision vector, so compare by value).
	var events []ExpectedEvent
	for i := range table.Paths {
		if boolsEqual(table.Paths[i].Decisions, best.Decisions) {
			events = table.Paths[i].Events
			break
		}
	}
	if len(events) != len(best.match) {
		return out
	}
	for i, e := range events {
		ri := best.match[i]
		if ri < 0 || ri >= len(recs) || e.Choice >= len(out) {
			continue
		}
		t := recs[ri].Record.Time
		switch e.Class {
		case ClassType1:
			out[e.Choice].QuestionAt = t
		case ClassType2:
			if !out[e.Choice].TookDefault {
				out[e.Choice].DecidedAt = t
			}
		}
	}
	return out
}

func boolsEqual(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// pathValid reports whether decisions walk g to an ending while consuming
// exactly the full vector.
func pathValid(g *script.Graph, decisions []bool) bool {
	p, err := g.Walk(decisions)
	if err != nil {
		return false
	}
	if len(p.Decisions) != len(decisions) {
		return false
	}
	last, ok := g.Segment(p.Segments[len(p.Segments)-1])
	return ok && last.Ending
}

// InferPcap runs the one-shot attack on capture bytes. It is a thin
// wrapper over the streaming engine — a Monitor fed the whole capture at
// once and closed — and returns exactly what the same capture yields when
// fed in chunks of any size.
func (a *Attacker) InferPcap(pcapBytes []byte) (*Inference, error) {
	m := NewMonitor(a, MonitorOptions{})
	// The caller's bytes are read-only for the call's duration, so the
	// reader adopts them without the streaming path's defensive copy.
	if err := m.feedOwned(pcapBytes); err != nil {
		return nil, err
	}
	return m.Close()
}

// ScoreDecisions compares inferred against ground-truth decisions and
// returns (correct, total). Extra or missing trailing choices count as
// wrong, so slips are penalized rather than silently truncated.
func ScoreDecisions(inferred, truth []bool) (correct, total int) {
	total = len(truth)
	if len(inferred) > total {
		total = len(inferred)
	}
	for i := 0; i < len(truth) && i < len(inferred); i++ {
		if truth[i] == inferred[i] {
			correct++
		}
	}
	return correct, total
}
