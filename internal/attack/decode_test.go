package attack

import (
	"testing"
	"time"

	"repro/internal/script"
	"repro/internal/tlsrec"
)

// stubClassifier maps crafted record lengths to classes for decoder
// scenarios: 2000-2999 → type-1, 3000-3999 → type-2, everything else
// "other", all at full confidence.
type stubClassifier struct{}

func (stubClassifier) Name() string { return "stub" }

func (stubClassifier) Classify(length int) (Class, float64) {
	switch {
	case length >= 2000 && length < 3000:
		return ClassType1, 1
	case length >= 3000 && length < 4000:
		return ClassType2, 1
	}
	return ClassOther, 1
}

// at builds a classified record with a capture timestamp offset seconds
// after the epoch anchor.
func classifiedAt(cls Class, offset float64) ClassifiedRecord {
	return ClassifiedRecord{
		Record:     tlsrec.Record{Time: anchorEpoch.Add(time.Duration(offset * float64(time.Second)))},
		Class:      cls,
		Confidence: 1,
	}
}

var anchorEpoch = time.Unix(1735689600, 0)

func TestPathTableMemoized(t *testing.T) {
	g := script.Bandersnatch()
	t1, err := PathTableFor(g, script.BandersnatchMaxChoices)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := PathTableFor(g, script.BandersnatchMaxChoices)
	if err != nil {
		t.Fatal(err)
	}
	if t1 != t2 {
		t.Error("PathTableFor rebuilt the table for the same (graph, maxChoices)")
	}
	t3, err := PathTableFor(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if t3 == t1 {
		t.Error("different maxChoices shared a table")
	}
	// The cache keys on graph content, not pointer identity: a fresh but
	// identical graph (every script.Bandersnatch() call builds one) hits
	// the same table instead of leaking a new one per build.
	t4, err := PathTableFor(script.Bandersnatch(), script.BandersnatchMaxChoices)
	if err != nil {
		t.Fatal(err)
	}
	if t4 != t1 {
		t.Error("identical graph content rebuilt the table")
	}
	// A structurally different graph gets its own table.
	t5, err := PathTableFor(script.TinyScript(), script.BandersnatchMaxChoices)
	if err != nil {
		t.Fatal(err)
	}
	if t5 == t1 {
		t.Error("structurally different graphs shared a table")
	}
}

func TestPathTableFirstPathIsAllDefaults(t *testing.T) {
	tab, err := NewPathTable(script.Bandersnatch(), script.BandersnatchMaxChoices)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Paths) == 0 {
		t.Fatal("empty table")
	}
	for i, d := range tab.Paths[0].Decisions {
		if !d {
			t.Errorf("first enumerated path takes the alternative at choice %d", i)
		}
	}
}

func TestPathTableEventTimeline(t *testing.T) {
	g := script.TinyScript() // Seg0(120s) -> Q1 -> S1/S1'(120s) -> Q2seg(120s) -> Q2 -> endings
	tab, err := NewPathTable(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Find the [default, non-default] path.
	var p *TablePath
	for i := range tab.Paths {
		d := tab.Paths[i].Decisions
		if len(d) == 2 && d[0] && !d[1] {
			p = &tab.Paths[i]
		}
	}
	if p == nil {
		t.Fatal("no [default, non-default] path in table")
	}
	// Expected: T1 at 120s (Seg0 plays out), T1 at 365s (three segments
	// plus the nominal half of Q1's ten-second window), T2 at 370s
	// (mid-window).
	if len(p.Events) != 3 {
		t.Fatalf("events = %d, want 3", len(p.Events))
	}
	wantOffsets := []float64{120, 365, 370}
	wantClasses := []Class{ClassType1, ClassType1, ClassType2}
	for i, e := range p.Events {
		if e.Class != wantClasses[i] {
			t.Errorf("event %d class = %v, want %v", i, e.Class, wantClasses[i])
		}
		if diff := e.Offset - wantOffsets[i]; diff < -0.01 || diff > 0.01 {
			t.Errorf("event %d offset = %.1f, want %.1f", i, e.Offset, wantOffsets[i])
		}
		if e.Slack <= 0 {
			t.Errorf("event %d has no slack", i)
		}
	}
	// Slack must grow along the path (drift and deliberation accumulate).
	if p.Events[1].Slack <= p.Events[0].Slack {
		t.Errorf("slack did not grow: %.1f then %.1f", p.Events[0].Slack, p.Events[1].Slack)
	}
}

// TestWalkPathsCallbackSlicesRetainable is the slice-aliasing regression
// test: the pre-table enumerator handed callbacks sub-slices of a shared
// backing array, so a callback that retained them (as the path table
// does) saw later branches overwrite earlier decisions.
func TestWalkPathsCallbackSlicesRetainable(t *testing.T) {
	g := script.Bandersnatch()
	var retained [][]bool
	g.WalkPaths(script.BandersnatchMaxChoices, func(p script.Path) {
		retained = append(retained, p.Decisions)
	})
	// Re-enumerate and compare: if the callback slices aliased shared
	// state, the retained copies would have been clobbered.
	i := 0
	g.WalkPaths(script.BandersnatchMaxChoices, func(p script.Path) {
		if i >= len(retained) {
			t.Fatalf("second enumeration yielded more paths (%d+)", i)
		}
		if !boolsEqual(retained[i], p.Decisions) {
			t.Errorf("retained path %d was clobbered: %v vs %v", i, retained[i], p.Decisions)
		}
		i++
	})
	if i != len(retained) {
		t.Errorf("enumeration count changed: %d vs %d", i, len(retained))
	}
	// Distinct paths must be distinct vectors.
	seen := map[string]bool{}
	for _, d := range retained {
		key := ""
		for _, v := range d {
			if v {
				key += "D"
			} else {
				key += "A"
			}
		}
		if seen[key] {
			t.Errorf("duplicate decision vector %s — aliasing corrupted enumeration", key)
		}
		seen[key] = true
	}
}

func TestDecodeReturnsIndependentDecisionCopies(t *testing.T) {
	g := script.Bandersnatch()
	tab, err := PathTableFor(g, script.BandersnatchMaxChoices)
	if err != nil {
		t.Fatal(err)
	}
	recs := []ClassifiedRecord{classifiedAt(ClassOther, 0.2), classifiedAt(ClassType1, 48)}
	hyps, err := tab.Decode(recs, anchorEpoch, DecodeParams{})
	if err != nil {
		t.Fatal(err)
	}
	want := append([]bool(nil), hyps[0].Decisions...)
	for i := range hyps[0].Decisions {
		hyps[0].Decisions[i] = !hyps[0].Decisions[i]
	}
	again, err := tab.Decode(recs, anchorEpoch, DecodeParams{})
	if err != nil {
		t.Fatal(err)
	}
	if !boolsEqual(again[0].Decisions, want) {
		t.Errorf("mutating a returned hypothesis corrupted the shared table: %v vs %v",
			again[0].Decisions, want)
	}
}

// TestDecodeShortPathBiasFixed is the unit form of the session-003 bug:
// when band drift hides every type-1 and some type-2 reports, only four
// late-session type-2 observations survive. The pre-fix scorer preferred
// the three-choice escape path (fewest penalties in total); the
// time-aware, normalized score must keep a path long enough to explain a
// report captured ~400s into the session.
func TestDecodeShortPathBiasFixed(t *testing.T) {
	g := script.Bandersnatch()
	recs := []ClassifiedRecord{
		classifiedAt(ClassOther, 0.2), // chunk request anchors the clock
		classifiedAt(ClassType2, 56),  // Q1 non-default
		classifiedAt(ClassType2, 90),  // Q2 non-default
		classifiedAt(ClassType2, 224), // Q5 non-default
		classifiedAt(ClassType2, 399), // Q8 non-default
	}
	hyp, err := ConstrainedDecode(g, recs, script.BandersnatchMaxChoices)
	if err != nil {
		t.Fatal(err)
	}
	if len(hyp.Decisions) <= 3 {
		t.Fatalf("short-path bias: decoded %d-choice path %v from a 400s observation span",
			len(hyp.Decisions), hyp.Decisions)
	}
	// The first two choices are pinned non-default by the early type-2s.
	if hyp.Decisions[0] || hyp.Decisions[1] {
		t.Errorf("early non-defaults lost: %v", hyp.Decisions)
	}
	if hyp.Matched != 4 {
		t.Errorf("matched %d of 4 hard observations", hyp.Matched)
	}
}

func TestDecodeTopKRankedAndMarginNonNegative(t *testing.T) {
	g := script.Bandersnatch()
	tab, err := PathTableFor(g, script.BandersnatchMaxChoices)
	if err != nil {
		t.Fatal(err)
	}
	recs := []ClassifiedRecord{
		classifiedAt(ClassOther, 0.2),
		classifiedAt(ClassType1, 48),
		classifiedAt(ClassType1, 85),
		classifiedAt(ClassType1, 133),
	}
	hyps, err := tab.Decode(recs, anchorEpoch, DecodeParams{TopK: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(hyps) != 5 {
		t.Fatalf("TopK=5 returned %d hypotheses", len(hyps))
	}
	for i := 1; i < len(hyps); i++ {
		if hyps[i].Score > hyps[i-1].Score+1e-9 {
			t.Errorf("hypotheses not ranked: #%d %.4f > #%d %.4f",
				i+1, hyps[i].Score, i, hyps[i-1].Score)
		}
	}
	// Three timed type-1s and no type-2 pin the all-defaults walk.
	for i, d := range hyps[0].Decisions {
		if !d {
			t.Errorf("choice %d decoded non-default", i)
		}
	}
}

func TestSoftClassifyNearBand(t *testing.T) {
	c := &IntervalBand{T1Lo: 2317, T1Hi: 2367, T2Lo: 3102, T2Hi: 3150}
	cls, conf := c.SoftClassify(2305) // 12 below the type-1 band
	if cls != ClassType1 || conf <= 0 {
		t.Errorf("SoftClassify(2305) = %v/%.2f, want weak type-1", cls, conf)
	}
	cls2, conf2 := c.SoftClassify(3100) // 2 below the type-2 band
	if cls2 != ClassType2 || conf2 <= conf {
		t.Errorf("SoftClassify(3100) = %v/%.2f, want stronger type-2 than %.2f", cls2, conf2, conf)
	}
	if _, far := c.SoftClassify(500); far != 0 {
		t.Errorf("SoftClassify(500) = %.2f, want 0 (no band near)", far)
	}
	if _, pad := c.SoftClassify(4141); pad != 0 {
		t.Errorf("SoftClassify(4141) = %.2f, want 0 (padded defense must stay dark)", pad)
	}
}

// TestInferClearsTimestampsOnFlippedChoices pins the stale-timestamp fix:
// when the constrained decode flips a choice against the plain decode,
// the rebuilt choice must not keep the plain decode's timestamps — a
// default choice must have a zero DecidedAt, and timestamps that do
// survive must come from records the winning alignment actually matched.
func TestInferClearsTimestampsOnFlippedChoices(t *testing.T) {
	g := script.Bandersnatch()
	atk := &Attacker{Classifier: stubClassifier{}, Graph: g, MaxChoices: script.BandersnatchMaxChoices}
	mk := func(length int, offset float64) tlsrec.Record {
		return tlsrec.Record{
			Type: tlsrec.ContentApplicationData, Length: length,
			Time: anchorEpoch.Add(time.Duration(offset * float64(time.Second))),
		}
	}
	// Three type-1s at the all-defaults question times plus a stray
	// type-2: the plain decode reads [D, D, A], which stalls mid-graph
	// (invalid), so the engine repairs to [D, D, D] — flipping choice 2
	// while keeping the vector length, the case that used to leak the
	// stale DecidedAt through.
	obs := &Observation{ClientRecords: []tlsrec.Record{
		mk(500, 0.2), // chunk request, anchors the clock
		mk(2500, 48),
		mk(2500, 85),
		mk(2500, 133),
		mk(3500, 136), // stray type-2 (e.g. a drifted telemetry burst)
	}}
	inf, err := atk.Infer(obs)
	if err != nil {
		t.Fatal(err)
	}
	if !inf.UsedConstrainedDecode {
		t.Fatal("expected the constrained decode to repair the plain decode")
	}
	want := []bool{true, true, true}
	if !boolsEqual(inf.Decisions, want) {
		t.Fatalf("decisions = %v, want %v", inf.Decisions, want)
	}
	if len(inf.Choices) != 3 {
		t.Fatalf("choices = %d, want 3", len(inf.Choices))
	}
	for i, c := range inf.Choices {
		if c.TookDefault && !c.DecidedAt.IsZero() {
			t.Errorf("choice %d: default but stale DecidedAt %v survived the flip", i, c.DecidedAt)
		}
		if c.QuestionAt.IsZero() {
			t.Errorf("choice %d: matched type-1 timestamp was dropped", i)
			continue
		}
		// QuestionAt must be one of the observed type-1 record times.
		found := false
		for _, r := range obs.ClientRecords {
			if r.Length == 2500 && r.Time.Equal(c.QuestionAt) {
				found = true
			}
		}
		if !found {
			t.Errorf("choice %d: QuestionAt %v matches no observed type-1 record", i, c.QuestionAt)
		}
	}
}

// TestInferReportsHypothesesWithPlainDecode verifies the calibrated
// hypothesis list and margin are exposed even when the plain decode wins.
func TestInferReportsHypothesesWithPlainDecode(t *testing.T) {
	g := script.Bandersnatch()
	atk := &Attacker{Classifier: stubClassifier{}, Graph: g, MaxChoices: script.BandersnatchMaxChoices}
	obs := &Observation{ClientRecords: []tlsrec.Record{
		{Type: tlsrec.ContentApplicationData, Length: 500, Time: anchorEpoch},
		{Type: tlsrec.ContentApplicationData, Length: 2500, Time: anchorEpoch.Add(48 * time.Second)},
		{Type: tlsrec.ContentApplicationData, Length: 2500, Time: anchorEpoch.Add(85 * time.Second)},
		{Type: tlsrec.ContentApplicationData, Length: 2500, Time: anchorEpoch.Add(133 * time.Second)},
	}}
	inf, err := atk.Infer(obs)
	if err != nil {
		t.Fatal(err)
	}
	if inf.UsedConstrainedDecode {
		t.Fatal("plain decode should have been valid")
	}
	if len(inf.Hypotheses) == 0 {
		t.Fatal("no hypotheses reported alongside the plain decode")
	}
	if inf.DecodeMargin < 0 {
		t.Errorf("negative decode margin %f", inf.DecodeMargin)
	}
	if !boolsEqual(inf.Hypotheses[0].Decisions, inf.Decisions) {
		t.Errorf("top hypothesis %v disagrees with plain decode %v",
			inf.Hypotheses[0].Decisions, inf.Decisions)
	}
}
