package attack

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/layers"
	"repro/internal/pcapio"
	"repro/internal/tcpreasm"
	"repro/internal/tlsrec"
)

// Monitor is the incremental form of the attack: an on-path eavesdropper
// that watches traffic as it happens. Packets (or raw pcap bytes in
// chunks of any size) are fed as they arrive; the monitor demultiplexes
// them into per-TCP-flow reassembly states, scans each flow's TLS records
// as they complete, classifies client records against the trained bands
// and maintains a live partial-path hypothesis per candidate flow by
// extending the graph alignment one observation at a time. Typed events
// fire on the way (FlowDetected, ChoiceInferred, SessionFinalized) and
// Close returns the final Inference for the best candidate flow.
//
// The one-shot Attacker.InferPcap is a thin wrapper over a Monitor: for a
// single-conversation capture the result is byte-identical at any feed
// granularity, down to single-byte chunks. For captures holding several
// TLS conversations the monitor improves on the old largest-flow rule: it
// attacks the flow whose record sequence best matches the title's script
// graph, which is what lets it find the interactive session among
// concurrent bulk-streaming noise.
//
// A Monitor is single-session state and not safe for concurrent use.
type Monitor struct {
	atk     *Attacker
	onEvent func(Event)

	cr    *pcapio.ChunkReader
	asm   *tcpreasm.Assembler
	flows map[layers.FlowKey]*monFlow // keyed by canonical conversation key
	order []layers.FlowKey            // canonical keys, first-seen order
	arena []byte                      // FeedPacket copies frames here

	table      *PathTable // lazily built when the attacker has a graph
	tableTried bool       // one-shot: a failed build is not retried per record
	prm        DecodeParams

	closed bool
	err    error
}

// MonitorOptions tunes a Monitor.
type MonitorOptions struct {
	// OnEvent, when non-nil, receives typed events synchronously as they
	// fire during Feed/FeedPacket/Close. It also enables the live
	// per-record hypothesis engine (ChoiceInferred events); without it the
	// monitor only tracks flow state, which keeps the one-shot wrapper as
	// cheap as the old batch path.
	OnEvent func(Event)
}

// Event is a typed notification emitted by a Monitor.
type Event interface{ monitorEvent() }

// FlowDetected fires once per flow, when the first in-band state report
// classifies on it — the moment the eavesdropper knows which of the
// interleaved connections carries the interactive session.
type FlowDetected struct {
	// Flow is the client→server flow key.
	Flow layers.FlowKey
	// At is the capture time of the triggering record.
	At time.Time
	// Length is the record length that fell into a learned band.
	Length int
	// Class is the report class that triggered detection.
	Class Class
}

// ChoiceInferred fires on each new in-band report: the running decode
// state after absorbing it.
type ChoiceInferred struct {
	// Flow is the client→server flow key.
	Flow layers.FlowKey
	// At is the capture time of the triggering record.
	At time.Time
	// Choice is the index of the latest choice the evidence pertains to.
	Choice int
	// TookDefault is the running belief about that choice.
	TookDefault bool
	// Decisions is the current best full-path hypothesis (nil when the
	// attacker has no graph; then only the plain running decode exists).
	Decisions []bool
	// DecodeMargin is the running score margin between the best hypothesis
	// and the best hypothesis disagreeing on a *confirmed* choice. A
	// type-1 report confirms every choice before it (the latest stays open
	// until its type-2 arrives or the next type-1 rules it out); a type-2
	// confirms its own choice. 0 while nothing discriminates, or without a
	// graph.
	DecodeMargin float64
}

// SessionFinalized fires from Close with the chosen flow's inference.
type SessionFinalized struct {
	// Flow is the client→server flow key of the attacked conversation.
	Flow layers.FlowKey
	// Inference is the final attack output, identical to what
	// Attacker.InferPcap returns for the same capture.
	Inference *Inference
}

func (FlowDetected) monitorEvent()     {}
func (ChoiceInferred) monitorEvent()   {}
func (SessionFinalized) monitorEvent() {}

// monDir is one direction of a monitored conversation: the reassembly
// stream, the chunk cursor into it, and the record scanner riding on top.
type monDir struct {
	stream   *tcpreasm.Stream
	consumed int // chunks consumed from the stream
	sc       *tlsrec.RecordScanner
	taken    int // complete records taken from the scanner
}

// monFlow is one TCP conversation under observation.
type monFlow struct {
	canonical layers.FlowKey
	clientKey layers.FlowKey
	client    monDir
	server    monDir
	detected  bool

	// Live decode state (populated only when the monitor has OnEvent).
	anchor       time.Time
	classified   int // client application records classified so far
	hards        int // in-band (type-1/type-2) records among them
	plainChoices []InferredChoice
	pa           *prefixAligner
}

// NewMonitor returns a streaming monitor for a trained attacker.
func NewMonitor(a *Attacker, opts MonitorOptions) *Monitor {
	asm := tcpreasm.NewAssembler()
	// Every feed path hands the assembler stable memory: pcap chunks live
	// in the ChunkReader's grow-only buffer and FeedPacket copies frames
	// into the monitor's arena, so reassembly owns payloads without
	// copying each segment again.
	asm.SetStablePayloads(true)
	prm := a.Decode.withDefaults()
	return &Monitor{
		atk:     a,
		onEvent: opts.OnEvent,
		asm:     asm,
		flows:   make(map[layers.FlowKey]*monFlow),
		prm:     prm,
	}
}

// NewMonitor is the method form of the package constructor.
func (a *Attacker) NewMonitor(opts MonitorOptions) *Monitor {
	return NewMonitor(a, opts)
}

// emit delivers one event to the callback, if any.
func (m *Monitor) emit(ev Event) {
	if m.onEvent != nil {
		m.onEvent(ev)
	}
}

// Feed ingests raw pcap bytes — the global header followed by records —
// in chunks of any size, including single bytes and mid-packet splits.
// Complete packets are processed as soon as their last byte arrives. The
// chunk is copied; the caller may reuse its buffer.
func (m *Monitor) Feed(chunk []byte) error {
	return m.feed(chunk, false)
}

// feedOwned is the whole-capture fast path: the one-shot wrapper owns its
// bytes outright, so the reader adopts them with no copy.
func (m *Monitor) feedOwned(chunk []byte) error {
	return m.feed(chunk, true)
}

func (m *Monitor) feed(chunk []byte, owned bool) error {
	if m.closed {
		return errors.New("attack: monitor is closed")
	}
	if m.err != nil {
		return m.err
	}
	if m.cr == nil {
		m.cr = pcapio.NewChunkReader()
	}
	if owned {
		m.cr.FeedOwned(chunk)
	} else {
		m.cr.Feed(chunk)
	}
	for {
		rec, ok, err := m.cr.Next()
		if err != nil {
			m.err = wrapReadErr(m.cr.HeaderDone(), err)
			return m.err
		}
		if !ok {
			return nil
		}
		m.ingestFrame(rec.Timestamp, rec.Data)
	}
}

// FeedPacket ingests one captured frame directly (for consumers that
// already demultiplex packets, e.g. a live capture loop). The frame is
// copied; the caller may reuse its buffer.
func (m *Monitor) FeedPacket(ts time.Time, frame []byte) error {
	if m.closed {
		return errors.New("attack: monitor is closed")
	}
	if m.err != nil {
		return m.err
	}
	m.arena = append(m.arena, frame...)
	m.ingestFrame(ts, m.arena[len(m.arena)-len(frame):])
	return nil
}

// wrapReadErr mirrors the batch path's error wrapping: file-header
// problems surface as extraction errors, per-record problems as capture
// read errors.
func wrapReadErr(headerDone bool, err error) error {
	if !headerDone {
		return fmt.Errorf("attack: %w", err)
	}
	return fmt.Errorf("attack: reading capture: %w", err)
}

// ingestFrame decodes one frame and advances the owning flow.
func (m *Monitor) ingestFrame(ts time.Time, frame []byte) {
	p, err := layers.DecodePacket(ts, frame)
	if err != nil {
		return // non-TCP or foreign traffic
	}
	st := m.asm.Feed(p)
	canon, _ := p.Flow().Canonical()
	f, ok := m.flows[canon]
	if !ok {
		f = &monFlow{canonical: canon}
		m.flows[canon] = f
		m.order = append(m.order, canon)
	}
	dir, isClient := f.direction(st.Key)
	if dir.stream == nil {
		dir.stream = st
		dir.sc = tlsrec.NewRecordScanner()
		if isClient {
			f.clientKey = st.Key
		}
	}
	// Drain newly delivered chunks into the record scanner. A scanner
	// that has hit a framing error stays stuck (the direction is not
	// TLS), exactly as the batch extraction treats that conversation.
	for _, c := range st.DeliveredChunks(dir.consumed) {
		dir.consumed++
		if dir.sc.Err() == nil {
			dir.sc.Feed(c.Time, c.Data)
		}
	}
	if dir.sc.Err() != nil {
		return
	}
	recs := dir.sc.Records()
	for i := dir.taken; i < len(recs); i++ {
		if isClient {
			m.onClientRecord(f, recs[i])
		}
	}
	dir.taken = len(recs)
}

// direction resolves which side of the conversation a directional key is,
// using the batch orienter's rule: the endpoint talking to a well-known
// port is the client; with two ephemeral ports, the first direction seen
// is taken as client→server.
func (f *monFlow) direction(k layers.FlowKey) (*monDir, bool) {
	switch {
	case f.client.stream != nil && f.client.stream.Key == k:
		return &f.client, true
	case f.server.stream != nil && f.server.stream.Key == k:
		return &f.server, false
	case k.DstPort < 1024 && k.SrcPort >= 1024:
		return &f.client, true
	case k.SrcPort < 1024 && k.DstPort >= 1024:
		return &f.server, false
	case f.client.stream == nil:
		return &f.client, true
	default:
		return &f.server, false
	}
}

// onClientRecord absorbs one completed client-side record: anchor the
// session clock, classify application data, emit detection and running
// choice events, and extend the live alignment. Without an event
// callback none of that state is observable before Close (which
// classifies through Infer anyway), so the whole step is skipped and the
// one-shot wrapper stays as cheap as the old batch path.
func (m *Monitor) onClientRecord(f *monFlow, rec tlsrec.Record) {
	if m.onEvent == nil {
		return
	}
	if f.anchor.IsZero() {
		f.anchor = rec.Time // first client record — the decode anchor
	}
	if rec.Type != tlsrec.ContentApplicationData {
		return
	}
	soft, _ := m.atk.Classifier.(SoftClassifier)
	cr := classifyRecord(rec, m.atk.Classifier, soft)
	idx := f.classified
	f.classified++

	hard := cr.Class == ClassType1 || cr.Class == ClassType2
	if hard {
		f.hards++
		if !f.detected {
			f.detected = true
			m.emit(FlowDetected{Flow: f.clientKey, At: rec.Time, Length: rec.Length, Class: cr.Class})
		}
		// Plain running decode: a type-1 opens a choice, a type-2 before
		// the next type-1 flips the latest one to non-default.
		switch cr.Class {
		case ClassType1:
			f.plainChoices = append(f.plainChoices, InferredChoice{
				Index: len(f.plainChoices), TookDefault: true, QuestionAt: rec.Time,
			})
		case ClassType2:
			if n := len(f.plainChoices); n > 0 {
				f.plainChoices[n-1].TookDefault = false
				f.plainChoices[n-1].DecidedAt = rec.Time
			}
		}
	}
	ev, ok := observedEventFrom(cr, idx, f.anchor)
	if !ok {
		return
	}
	if t := m.liveTable(); t != nil {
		if f.pa == nil {
			f.pa = newPrefixAligner(t, m.prm)
		}
		f.pa.observe(ev)
	}
	if !hard || len(f.plainChoices) == 0 {
		// An orphan type-2 (no type-1 opened a choice yet) is a classifier
		// slip — the plain decode ignores it, and there is no choice to
		// report an event about.
		return
	}
	ci := ChoiceInferred{
		Flow:   f.clientKey,
		At:     rec.Time,
		Choice: len(f.plainChoices) - 1,
	}
	if f.pa != nil {
		// A type-1 report confirms every *earlier* choice (had the viewer
		// gone non-default at the latest one, its type-2 would still be
		// pending); a type-2 confirms its own choice too. The margin is
		// computed over exactly the confirmed prefix.
		confirmed := len(f.plainChoices)
		if cr.Class == ClassType1 {
			confirmed--
		}
		best, margin := f.pa.ranking(confirmed)
		ci.Decisions = append([]bool(nil), f.pa.table.Paths[best].Decisions...)
		ci.DecodeMargin = margin
		if ci.Choice >= 0 && ci.Choice < len(ci.Decisions) {
			ci.TookDefault = ci.Decisions[ci.Choice]
		}
	} else if ci.Choice >= 0 {
		ci.TookDefault = f.plainChoices[ci.Choice].TookDefault
	}
	m.emit(ci)
}

// liveTable lazily builds the shared decoding table for the live engine.
// A failed build is remembered and not retried on every record.
func (m *Monitor) liveTable() *PathTable {
	if m.tableTried || m.atk.Graph == nil {
		return m.table
	}
	m.tableTried = true
	maxChoices := m.atk.MaxChoices
	if maxChoices <= 0 {
		maxChoices = 16
	}
	t, err := PathTableFor(m.atk.Graph, maxChoices)
	if err != nil {
		return nil // fall back to the plain running decode
	}
	m.table = t
	return t
}

// observation assembles the attacker's view of one monitored flow.
func (f *monFlow) observation() *Observation {
	return &Observation{
		ClientRecords: f.client.sc.Records(),
		ServerRecords: f.server.sc.Records(),
	}
}

// viable reports whether a flow is a complete, TLS-parsable conversation
// — the batch extraction's admission rule.
func (f *monFlow) viable() bool {
	return f.client.stream != nil && f.server.stream != nil &&
		f.client.sc.Err() == nil && f.server.sc.Err() == nil
}

// Close finalizes the monitor: it verifies the feed ended on a clean pcap
// boundary, picks the best candidate flow, runs the full inference on it,
// emits SessionFinalized and returns the Inference. For single-TLS-flow
// captures the result is byte-identical to the batch Attacker.InferPcap;
// among multiple candidates the flow whose records the script graph
// explains best wins (falling back to the largest flow when no in-band
// reports classified anywhere).
func (m *Monitor) Close() (*Inference, error) {
	if m.closed {
		return nil, errors.New("attack: monitor already closed")
	}
	m.closed = true
	if m.err != nil {
		return nil, m.err
	}
	if m.cr != nil {
		if err := m.cr.TailErr(); err != nil {
			m.err = wrapReadErr(m.cr.HeaderDone(), err)
			return nil, m.err
		}
	}

	// Candidate flows, ordered like the batch extraction (by client key).
	var cands []*monFlow
	for _, k := range m.order {
		if f := m.flows[k]; f.viable() {
			cands = append(cands, f)
		}
	}
	sort.SliceStable(cands, func(i, j int) bool {
		return cands[i].clientKey.String() < cands[j].clientKey.String()
	})
	if len(cands) == 0 {
		return nil, ErrNoTLSConversation
	}

	chosen, inf, err := m.selectFlow(cands)
	if err != nil {
		return nil, err
	}
	m.emit(SessionFinalized{Flow: chosen.clientKey, Inference: inf})
	return inf, nil
}

// selectFlow picks the conversation to attack. With a single candidate —
// the whole-capture, one-conversation case InferPcap wraps — the choice
// is trivial and the inference runs exactly once, preserving byte
// equivalence with the batch path. With several candidates, every flow
// that produced in-band reports is scored by how well the graph explains
// it (hard observations matched by its best hypothesis, then hypothesis
// score, then size); when no flow produced reports the largest one wins,
// which is the batch rule.
func (m *Monitor) selectFlow(cands []*monFlow) (*monFlow, *Inference, error) {
	if len(cands) == 1 {
		inf, err := m.atk.Infer(cands[0].observation())
		return cands[0], inf, err
	}
	var best *monFlow
	var bestInf *Inference
	bestMatched, bestScore := -1, 0.0
	for _, f := range cands {
		hards := m.hardCount(f)
		if hards == 0 {
			continue
		}
		inf, err := m.atk.Infer(f.observation())
		if err != nil {
			continue
		}
		matched, score := hards, 0.0
		if len(inf.Hypotheses) > 0 {
			matched, score = inf.Hypotheses[0].Matched, inf.Hypotheses[0].Score
		}
		if matched > bestMatched || (matched == bestMatched && score > bestScore) {
			best, bestInf, bestMatched, bestScore = f, inf, matched, score
		}
	}
	if best != nil {
		return best, bestInf, nil
	}
	// No in-band evidence anywhere: attack the largest conversation.
	for _, f := range cands {
		if best == nil || f.totalBytes() > best.totalBytes() {
			best = f
		}
	}
	inf, err := m.atk.Infer(best.observation())
	return best, inf, err
}

// hardCount returns the number of in-band (type-1/type-2) client records
// on a flow. With a live event callback the running counter is already
// maintained; otherwise — records were not classified during the feed to
// keep the one-shot path cheap — the client records are classified here,
// once, for the multi-candidate selection that needs them.
func (m *Monitor) hardCount(f *monFlow) int {
	if m.onEvent != nil {
		return f.hards
	}
	n := 0
	for _, r := range f.client.sc.Records() {
		if r.Type != tlsrec.ContentApplicationData {
			continue
		}
		if cls, _ := m.atk.Classifier.Classify(r.Length); cls == ClassType1 || cls == ClassType2 {
			n++
		}
	}
	return n
}

// totalBytes is the conversation's delivered byte count, both directions.
func (f *monFlow) totalBytes() int64 {
	return f.client.stream.Len() + f.server.stream.Len()
}
