package attack

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/layers"
	"repro/internal/pcapio"
	"repro/internal/quicrec"
	"repro/internal/tcpreasm"
	"repro/internal/tlsrec"
)

// Monitor is the incremental form of the attack: an on-path eavesdropper
// that watches traffic as it happens. Packets (or raw pcap bytes in
// chunks of any size) are fed as they arrive; the monitor demultiplexes
// them into per-TCP-flow reassembly states, scans each flow's TLS records
// as they complete, classifies client records against the trained bands
// and maintains a live partial-path hypothesis per candidate flow by
// extending the graph alignment one observation at a time. UDP flows
// whose first datagram sniffs as QUIC run the same pipeline over burst
// features instead: client datagrams are grouped into gap-delimited
// bursts (BurstSegmenter) and each completed burst classifies as a
// pseudo-record of its summed size. Typed events fire on the way
// (FlowDetected, ChoiceInferred, SessionFinalized, FlowExpired,
// QUICFlowObserved) and Close returns the final Inference for the best
// candidate flow.
//
// The one-shot Attacker.InferPcap is a thin wrapper over a Monitor: for a
// single-conversation capture the result is byte-identical at any feed
// granularity, down to single-byte chunks. For captures holding several
// TLS conversations the monitor improves on the old largest-flow rule: it
// attacks the flow whose record sequence best matches the title's script
// graph, which is what lets it find the interactive session among
// concurrent bulk-streaming noise.
//
// By default the monitor retains every flow's reassembled stream until
// Close — the batch-equivalence contract needs the full observation. A
// real deployment watches a link tap for hours; MonitorOptions.Window
// turns on the rolling-window mode for that regime: consumed reassembly
// chunks are released the moment the record scanner has seen them, flows
// finalize individually on FIN/RST or an idle timeout (emitting
// SessionFinalized or FlowExpired as they go), and noise flows that never
// produce an in-band report are rejected and eventually evicted, so one
// monitor runs indefinitely in memory bounded by the set of concurrently
// live conversations rather than by uptime.
//
// A Monitor is single-session state and not safe for concurrent use.
type Monitor struct {
	atk     *Attacker
	onEvent func(Event)
	win     *Window
	ring    *pcapio.PacketRing
	relSpan func([]byte) // releases a UDP payload span once consumed
	eng     *shardEngine // non-nil when MonitorOptions.Shards > 0: all calls delegate

	cr    *pcapio.ChunkReader
	asm   *tcpreasm.Assembler
	flows map[layers.FlowKey]*monFlow // keyed by canonical conversation key
	order []layers.FlowKey            // canonical keys, first-seen order
	arena []byte                      // FeedPacket copies frames into chained blocks

	clock       time.Time // high-water capture timestamp
	sinceSweep  int       // packets since the last idle sweep
	sweptAt     time.Time // capture clock of the last idle sweep
	flowsGone   int       // m.order entries whose flow was dropped
	finalized   int       // SessionFinalized emitted (window mode)
	expired     int       // FlowExpired emitted (window mode)
	rejectedNow int       // flows currently in rejected probation

	wheel      *timeWheel // idle-expiry deadlines (window mode)
	sweeps     int64      // idle sweeps run
	sweepTouch int64      // wheel entries examined across all sweeps

	// Event sequencing. seqCtx is the global ingest sequence of the packet
	// (or sweep barrier, or close phase) being processed; evKey is the
	// flow-level sort key within that sequence step (0 for packet events —
	// one flow per packet — and the flow's first-seen sequence for sweep
	// and close events, so a merged multi-shard stream orders expirations
	// exactly as the single-threaded table scan did). tagSink, when set by
	// the shard engine, receives every event tagged for the merge instead
	// of the user callback.
	seqCtx  uint64
	evKey   uint64
	tagSink func(Event)

	// Best finalized inference so far (window mode), by the same
	// (matched, score) rule selectFlow applies at batch Close. The stamp
	// of the first noteFinal and of the best one let the shard engine
	// replay the "first final wins ties" chronology across shards.
	bestFinal   *Inference
	bestMatched int
	bestScore   float64
	bestStamp   evStamp
	firstFinal  *evStamp

	// Largest-flow fallback (window mode): until a session finalizes, the
	// largest viable flow to expire keeps its inference, preserving the
	// batch rule that a capture with no classified reports still attacks
	// its biggest conversation. Costs one Infer per new-largest expiry and
	// nothing once a real session has been seen. The slice is strictly
	// increasing in bytes; single-threaded readers use only the last
	// element, the shard engine filters the history by stamp to
	// reconstruct the global chronology.
	fallbacks []fallbackCand

	// suppressFallback gates fallback stashing during the sharded close:
	// a shard whose local bestFinal is nil must not stash when another
	// shard has already finalized a session.
	suppressFallback bool

	table      *PathTable // lazily built when the attacker has a graph
	tableTried bool       // one-shot: a failed build is not retried per record
	prm        DecodeParams

	closed bool
	err    error
}

// evStamp is a point in the global ingest chronology: the packet (or
// barrier) sequence plus the flow-level key within it. Stamps order
// cross-shard state updates the way a single-threaded run ordered them.
type evStamp struct {
	seq, key uint64
}

func (a evStamp) less(b evStamp) bool {
	return a.seq < b.seq || (a.seq == b.seq && a.key < b.key)
}

// fallbackCand is one stashed largest-flow fallback inference.
type fallbackCand struct {
	inf   *Inference
	flow  layers.FlowKey
	bytes int64
	at    evStamp
}

// Window configures the monitor's rolling-window mode: bounded-memory
// operation over an indefinite link tap. The zero value of each field
// selects its default.
type Window struct {
	// IdleTimeout finalizes a flow when no packet has arrived on it for
	// this long on the capture clock (the high-water frame timestamp, so
	// replayed captures age exactly as live links do). Default 90s.
	IdleTimeout time.Duration
	// RejectAfterRecords is the number of classified client application
	// records with zero in-band reports after which a flow is rejected:
	// its record descriptors are released and it enters bounded re-check
	// probation. Default 128.
	RejectAfterRecords int
	// RejectQuiet is the rate-based rejection rule — the figure a
	// deployed tap actually reasons in is reports per minute of capture
	// clock, not records. A flow that has classified application records
	// for this long (measured on the capture clock from its first
	// classified record) without a single in-band report is rejected no
	// matter how few records it produced, which is what evicts slow-drip
	// noise the count rule would tolerate for many minutes. The count
	// rule stays in force as a floor for dense flows (whichever threshold
	// is crossed first rejects), and RejectQuietMinRecords guards the
	// clock rule against near-silent flows. An interactive session's
	// first report lands well inside the window (~49s after the first
	// record under the calibrated profiles; a late report still
	// rehabilitates). Zero selects the default of 150s; negative disables
	// the clock rule, leaving count-only rejection.
	RejectQuiet time.Duration
	// RejectQuietMinRecords is the least number of classified client
	// application records before RejectQuiet may reject a flow, so a
	// conversation that has barely spoken is not condemned by the clock
	// alone. Default 12.
	RejectQuietMinRecords int
	// RecheckEvery is the number of further application records between
	// re-checks of a rejected flow. Default 64. In-probation re-checks
	// also fire once per RejectQuiet interval of capture clock, so a
	// slow-drip flow's bounded probation ends in bounded time, not just
	// in a bounded record count.
	RecheckEvery int
	// RecheckBudget is how many re-check rounds a rejected flow gets
	// before terminal eviction (its reassembly stops buffering entirely).
	// A flow that produces an in-band report during probation is
	// rehabilitated immediately, outside the re-check cadence. Default 4.
	RecheckBudget int
	// SweepInterval is how many ingested packets pass between idle
	// sweeps. Default 256. A sweep also fires early whenever the capture
	// clock jumps by a quarter of IdleTimeout since the last sweep — the
	// packet-count cadence alone would let a sparse tap (one packet after
	// a long silence) keep idle flows alive arbitrarily long, so the
	// clock-jump rule is what actually bounds expiry latency; lowering
	// SweepInterval only tightens the dense-traffic cadence.
	SweepInterval int
}

// withDefaults resolves zero fields.
func (w Window) withDefaults() Window {
	if w.IdleTimeout <= 0 {
		w.IdleTimeout = 90 * time.Second
	}
	if w.RejectAfterRecords <= 0 {
		w.RejectAfterRecords = 128
	}
	switch {
	case w.RejectQuiet < 0:
		w.RejectQuiet = 0 // disabled: count-only rejection
	case w.RejectQuiet == 0:
		w.RejectQuiet = 150 * time.Second
	}
	if w.RejectQuietMinRecords <= 0 {
		w.RejectQuietMinRecords = 12
	}
	if w.RecheckEvery <= 0 {
		w.RecheckEvery = 64
	}
	if w.RecheckBudget <= 0 {
		w.RecheckBudget = 4
	}
	if w.SweepInterval <= 0 {
		w.SweepInterval = defaultSweepInterval
	}
	return w
}

// defaultSweepInterval is the default packet count between idle sweeps
// (Window.SweepInterval).
const defaultSweepInterval = 256

// minSessionHards is the least in-band report count for a finalizing flow
// to be inferred as an interactive session rather than expired as noise —
// 1, the same admission rule the batch selectFlow applies, so a windowed
// run never discards a flow the batch path would have attacked. (An
// accidental band collision on a bulk flow does cost one Infer and a
// low-matched SessionFinalized; selection by (matched, score) still
// rejects it as the final answer.)
const minSessionHards = 1

// frameArenaBlock sizes the FeedPacket copy arena's blocks; retired
// blocks are pinned only by the chunks that still reference them, so the
// rolling window releases them wholesale as flows are consumed.
const frameArenaBlock = 256 << 10

// recordFootprint approximates one retained record descriptor's heap cost
// for Stats accounting.
const recordFootprint = 96

// MonitorOptions tunes a Monitor.
type MonitorOptions struct {
	// OnEvent, when non-nil, receives typed events synchronously as they
	// fire during Feed/FeedPacket/Close. It also enables the live
	// per-record hypothesis engine (ChoiceInferred events); without it the
	// monitor only tracks flow state, which keeps the one-shot wrapper as
	// cheap as the old batch path.
	OnEvent func(Event)
	// Window, when non-nil, turns on the rolling-window mode: released
	// chunk memory, per-flow FIN/RST/idle finalization, and noise-flow
	// eviction. Per-record classification runs even without OnEvent (the
	// window needs the counters), but the hypothesis engine still needs
	// the callback.
	Window *Window
	// FrameRing, when non-nil, is the caller-owned ring backing
	// FeedPacketOwned slots. The monitor routes every frame span it stops
	// referencing back to the ring — headers immediately after decode,
	// payloads when the rolling window releases their chunks — so a live
	// capture loop reading frames into ring slots makes no per-packet
	// copy and recycles slot memory in steady state.
	FrameRing *pcapio.PacketRing
	// Shards, when > 0, runs the monitor sharded across that many
	// worker goroutines: flows are distributed by canonical-key hash
	// (RSS-style), each shard owns its own reassembly, scanners and
	// window state, and per-shard events are merged back into one
	// deterministic stream. The event stream, the Close inference and
	// the error behavior are byte-identical at every shard count,
	// including Shards == 0 (the single-threaded path); OnEvent still
	// runs on the feeding goroutine. Feeding calls remain
	// single-caller: a Monitor is one tap's state at any shard count.
	Shards int
}

// Event is a typed notification emitted by a Monitor.
type Event interface{ monitorEvent() }

// FlowDetected fires once per flow, when the first in-band state report
// classifies on it — the moment the eavesdropper knows which of the
// interleaved connections carries the interactive session.
type FlowDetected struct {
	// Flow is the client→server flow key.
	Flow layers.FlowKey
	// At is the capture time of the triggering record.
	At time.Time
	// Length is the record length that fell into a learned band.
	Length int
	// Class is the report class that triggered detection.
	Class Class
}

// ChoiceInferred fires on each new in-band report: the running decode
// state after absorbing it.
type ChoiceInferred struct {
	// Flow is the client→server flow key.
	Flow layers.FlowKey
	// At is the capture time of the triggering record.
	At time.Time
	// Choice is the index of the latest choice the evidence pertains to.
	Choice int
	// TookDefault is the running belief about that choice.
	TookDefault bool
	// Decisions is the current best full-path hypothesis (nil when the
	// attacker has no graph; then only the plain running decode exists).
	Decisions []bool
	// DecodeMargin is the running score margin between the best hypothesis
	// and the best hypothesis disagreeing on a *confirmed* choice. A
	// type-1 report confirms every choice before it (the latest stays open
	// until its type-2 arrives or the next type-1 rules it out); a type-2
	// confirms its own choice. 0 while nothing discriminates, or without a
	// graph.
	DecodeMargin float64
}

// SessionFinalized fires with a flow's final inference: from Close in
// batch mode, and additionally per flow in rolling-window mode the moment
// the flow finalizes (FIN/RST exchange or idle timeout) — a mid-session
// expiry carries the partial path decoded so far with its
// confirmed-prefix DecodeMargin.
type SessionFinalized struct {
	// Flow is the client→server flow key of the attacked conversation.
	Flow layers.FlowKey
	// Inference is the final attack output, identical to what
	// Attacker.InferPcap returns for the same capture.
	Inference *Inference
}

// FlowExpired fires in rolling-window mode when a flow leaves the monitor
// without finalizing as an interactive session: its close arrived, it
// idled out, or rejection probation settled.
type FlowExpired struct {
	// Flow is the client→server flow key when the client side was seen,
	// else the canonical conversation key.
	Flow layers.FlowKey
	// At is the capture-clock time of the eviction.
	At time.Time
	// Reason is "fin", "rst", "idle", "rejected" or "close".
	Reason string
	// Records is the number of client application records classified.
	Records int
	// Bytes is the delivered byte volume, both directions.
	Bytes int64
}

// QUICFlowObserved fires once per UDP flow whose traffic sniffs as QUIC,
// on the first parseable long-header datagram — the eavesdropper's cue
// that a QUIC handshake is underway and the flow will be observed as
// bursts rather than records. It is informational: detection of the
// interactive session still fires FlowDetected when the first in-band
// burst classifies.
type QUICFlowObserved struct {
	// Flow is the client→server flow key when the client side was seen,
	// else the canonical conversation key.
	Flow layers.FlowKey
	// At is the capture time of the triggering datagram.
	At time.Time
	// Version is the QUIC version from the long header (1 for v1).
	Version uint32
	// DCIDLen is the destination connection ID length the header carried.
	DCIDLen int
}

func (FlowDetected) monitorEvent()     {}
func (ChoiceInferred) monitorEvent()   {}
func (SessionFinalized) monitorEvent() {}
func (FlowExpired) monitorEvent()      {}
func (QUICFlowObserved) monitorEvent() {}

// MonitorStats is a point-in-time snapshot of a monitor's footprint, the
// figure the soak harness asserts stays flat over an indefinite feed.
type MonitorStats struct {
	// Flows is the number of tracked conversation entries, including
	// evicted tombstones awaiting their FIN/idle drop.
	Flows int
	// LiveFlows are flows that can still finalize as a session.
	LiveFlows int
	// RejectedFlows are flows currently in rejected probation.
	RejectedFlows int
	// FinalizedSessions counts SessionFinalized events so far.
	FinalizedSessions int
	// ExpiredFlows counts FlowExpired events so far.
	ExpiredFlows int
	// RetainedBytes approximates the monitor's retained buffer memory:
	// reassembly chunks and pending segments, record descriptors, and the
	// unconsumed tail of the pcap feed buffer.
	RetainedBytes int64
	// Sweeps counts idle sweeps run so far (window mode).
	Sweeps int64
	// SweepTouched counts timing-wheel entries examined across all
	// sweeps. With the wheel this grows O(expired + re-armed), not
	// O(flows × sweeps) — the soak asserts the gap.
	SweepTouched int64
	// Shards holds one entry per shard when the monitor runs sharded
	// (MonitorOptions.Shards > 0); nil on the single-threaded path. The
	// top-level fields aggregate across shards either way.
	Shards []ShardStats
}

// ShardStats is one shard's slice of a sharded monitor's footprint.
type ShardStats struct {
	// Flows is the shard's tracked conversation count.
	Flows int
	// LiveFlows are the shard's flows that can still finalize.
	LiveFlows int
	// RejectedFlows are the shard's flows in rejected probation.
	RejectedFlows int
	// RetainedBytes is the shard's retained buffer memory.
	RetainedBytes int64
	// RingPending is the byte volume of ring spans the shard has
	// released but the dispatcher has not yet recycled.
	RingPending int64
}

// monDir is one direction of a monitored conversation: the reassembly
// stream, the chunk cursor into it, and the record scanner riding on top.
type monDir struct {
	stream   *tcpreasm.Stream
	consumed int // chunks consumed from the stream (absolute index)
	sc       *tlsrec.RecordScanner
	taken    int // complete records taken from the scanner (absolute index)
}

// quicFlow is the QUIC/UDP replacement for the two reassembly directions:
// direction bookkeeping, the client-side burst segmenter, and the
// pseudo-records its completed bursts produce.
type quicFlow struct {
	sniffed    bool // first datagram examined
	observed   bool // QUICFlowObserved emitted
	haveClient bool
	haveServer bool
	serverKey  layers.FlowKey
	seg        BurstSegmenter
	// recs are the completed client bursts as pseudo-records: Length is
	// the burst's summed datagram bytes, Time its first arrival. They are
	// what observation() hands the attacker in place of scanned records.
	recs        []tlsrec.Record
	clientBytes int64
	serverBytes int64
}

// monFlow is one TCP or QUIC conversation under observation. quic is
// non-nil for UDP flows; then the monDir pair stays unused.
type monFlow struct {
	canonical layers.FlowKey
	clientKey layers.FlowKey
	client    monDir
	server    monDir
	quic      *quicFlow
	detected  bool
	firstSeq  uint64   // global ingest sequence of the flow's first packet
	ent       *twEntry // idle-expiry wheel entry (window mode)

	// Rolling-window state.
	lastSeen     time.Time
	firstAppAt   time.Time // capture time of the first classified app record
	dead         bool      // non-TLS or terminally evicted: streams discarded
	rejected     bool      // zero-report probation
	announced    bool      // FlowExpired already emitted (tombstones expire once)
	nextRecheck  int       // classified-record count of the next probation check
	nextRecheckT time.Time // capture-clock deadline of the next probation check
	rechecks     int       // probation rounds left before terminal eviction

	// Live decode state (populated only when the monitor has OnEvent).
	anchor       time.Time
	classified   int // client application records classified so far
	hards        int // in-band (type-1/type-2) records among them
	plainChoices []InferredChoice
	pa           *prefixAligner
}

// NewMonitor returns a streaming monitor for a trained attacker.
func NewMonitor(a *Attacker, opts MonitorOptions) *Monitor {
	if opts.Shards > 0 {
		return &Monitor{atk: a, eng: newShardEngine(a, opts)}
	}
	asm := tcpreasm.NewAssembler()
	// Every feed path hands the assembler stable memory: pcap chunks live
	// in the ChunkReader's grow-only buffer, FeedPacket copies frames
	// into the monitor's arena and FeedPacketOwned slots are caller-owned,
	// so reassembly owns payloads without copying each segment again.
	asm.SetStablePayloads(true)
	if opts.FrameRing != nil {
		// Unreferenced payload spans flow back to the caller's ring; spans
		// from other feed paths are foreign to it and ignored.
		asm.SetReleaseFunc(opts.FrameRing.Release)
	}
	var relSpan func([]byte)
	if opts.FrameRing != nil {
		relSpan = opts.FrameRing.Release
	}
	prm := a.Decode.withDefaults()
	m := &Monitor{
		atk:     a,
		onEvent: opts.OnEvent,
		ring:    opts.FrameRing,
		relSpan: relSpan,
		asm:     asm,
		flows:   make(map[layers.FlowKey]*monFlow),
		prm:     prm,
	}
	if opts.Window != nil {
		w := opts.Window.withDefaults()
		m.win = &w
	}
	return m
}

// NewMonitor is the method form of the package constructor.
func (a *Attacker) NewMonitor(opts MonitorOptions) *Monitor {
	return NewMonitor(a, opts)
}

// emit delivers one event: tagged into the shard engine's merge when the
// monitor is a shard core, straight to the callback otherwise.
func (m *Monitor) emit(ev Event) {
	if m.tagSink != nil {
		m.tagSink(ev)
		return
	}
	if m.onEvent != nil {
		m.onEvent(ev)
	}
}

// Feed ingests raw pcap bytes — the global header followed by records —
// in chunks of any size, including single bytes and mid-packet splits.
// Complete packets are processed as soon as their last byte arrives. The
// chunk is copied; the caller may reuse its buffer.
func (m *Monitor) Feed(chunk []byte) error {
	if m.eng != nil {
		return m.eng.feed(chunk, false)
	}
	return m.feed(chunk, false)
}

// feedOwned is the whole-capture fast path: the one-shot wrapper owns its
// bytes outright, so the reader adopts them with no copy.
func (m *Monitor) feedOwned(chunk []byte) error {
	if m.eng != nil {
		return m.eng.feed(chunk, true)
	}
	return m.feed(chunk, true)
}

func (m *Monitor) feed(chunk []byte, owned bool) error {
	if m.closed {
		return errors.New("attack: monitor is closed")
	}
	if m.err != nil {
		return m.err
	}
	if m.cr == nil {
		m.cr = pcapio.NewChunkReader()
	}
	if owned {
		m.cr.FeedOwned(chunk)
	} else {
		m.cr.Feed(chunk)
	}
	for {
		rec, ok, err := m.cr.Next()
		if err != nil {
			m.err = wrapReadErr(m.cr.HeaderDone(), err)
			return m.err
		}
		if !ok {
			return nil
		}
		m.ingestFrame(rec.Timestamp, rec.Data, false)
	}
}

// FeedPacket ingests one captured frame directly (for consumers that
// already demultiplex packets, e.g. a live capture loop). The frame is
// copied; the caller may reuse its buffer.
func (m *Monitor) FeedPacket(ts time.Time, frame []byte) error {
	if m.eng != nil {
		return m.eng.feedPacket(ts, frame)
	}
	if m.closed {
		return errors.New("attack: monitor is closed")
	}
	if m.err != nil {
		return m.err
	}
	if cap(m.arena)-len(m.arena) < len(frame) {
		size := frameArenaBlock
		if len(frame) > size {
			size = len(frame)
		}
		// Chained blocks instead of one growing arena: a retired block is
		// pinned only by the chunks still referencing it, so the rolling
		// window releases copy memory as it consumes the stream.
		m.arena = make([]byte, 0, size)
	}
	m.arena = append(m.arena, frame...)
	m.ingestFrame(ts, m.arena[len(m.arena)-len(frame):], false)
	return nil
}

// FeedPacketOwned ingests one captured frame without copying it: the
// caller transfers ownership and must keep the bytes stable. Paired with
// MonitorOptions.FrameRing — the caller reads each frame into a ring slot
// (PacketRing.Alloc/AllocFrame) and every span the monitor stops
// referencing is released back to the ring — the live path makes no
// per-packet copy and recycles a bounded set of blocks indefinitely.
// Without a ring the frames are simply garbage-collected once the rolling
// window drops them.
func (m *Monitor) FeedPacketOwned(ts time.Time, frame []byte) error {
	if m.eng != nil {
		return m.eng.feedPacketOwned(ts, frame)
	}
	if m.closed || m.err != nil {
		// The frame will never be referenced; hand the slot straight back
		// so a capture loop feeding a dead monitor cannot leak its ring.
		if m.ring != nil {
			m.ring.ReleaseExcept(frame, nil)
		}
		if m.closed {
			return errors.New("attack: monitor is closed")
		}
		return m.err
	}
	m.ingestFrame(ts, frame, true)
	return nil
}

// wrapReadErr mirrors the batch path's error wrapping: file-header
// problems surface as extraction errors, per-record problems as capture
// read errors.
func wrapReadErr(headerDone bool, err error) error {
	if !headerDone {
		return fmt.Errorf("attack: %w", err)
	}
	return fmt.Errorf("attack: reading capture: %w", err)
}

// ingestFrame decodes one frame and advances the owning flow. ringOwned
// marks frames fed through FeedPacketOwned, whose unreferenced spans go
// back to the caller's ring.
func (m *Monitor) ingestFrame(ts time.Time, frame []byte, ringOwned bool) {
	if ts.After(m.clock) {
		m.clock = ts
	}
	p, err := layers.DecodePacket(ts, frame)
	if err != nil {
		if ringOwned && m.ring != nil {
			m.ring.ReleaseExcept(frame, nil) // non-TCP or foreign traffic
		}
		return
	}
	if ringOwned && m.ring != nil {
		// Only the TCP payload can be retained by reassembly; the frame's
		// link/network/transport headers go straight back to the ring.
		m.ring.ReleaseExcept(frame, p.Payload)
	}
	m.seqCtx++
	if m.win != nil && m.sweepDue() {
		// Sweep BEFORE the packet's own events so a clock jump expires
		// idle flows ahead of whatever this packet emits — the event
		// stream stays monotone in capture time. The triggering packet's
		// own flow is exempt: its arrival is the traffic that disproves
		// idleness, even if the timestamp gap alone says otherwise.
		canon, _ := p.Flow().Canonical()
		m.seqCtx++ // the sweep consumed the previous sequence slot
		m.sweepNow(canon, true)
	}
	m.ingestDecoded(p)
}

// ingestDecoded runs one decoded packet through reassembly, scanning and
// window maintenance. The capture clock and the idle sweep have already
// been handled by the caller (ingestFrame single-threaded, the shard
// dispatcher when sharded).
func (m *Monitor) ingestDecoded(p *layers.Packet) {
	m.evKey = 0
	if p.Proto == layers.IPProtocolUDP {
		m.ingestDatagram(p)
		return
	}
	ts := p.Timestamp
	st := m.asm.Feed(p)
	canon, _ := p.Flow().Canonical()
	f := m.flowFor(canon, ts)
	f.lastSeen = ts
	dir, isClient := f.direction(st.Key)
	if dir.stream == nil {
		dir.stream = st
		dir.sc = tlsrec.NewRecordScanner()
		if isClient {
			f.clientKey = st.Key
		}
	}
	// Drain newly delivered chunks into the record scanner. A scanner
	// that has hit a framing error stays stuck (the direction is not
	// TLS), exactly as the batch extraction treats that conversation.
	for _, c := range st.DeliveredChunks(dir.consumed) {
		dir.consumed++
		if dir.sc.Err() == nil {
			dir.sc.Feed(c.Time, c.Data)
		}
	}
	if dir.sc.Err() != nil {
		// Not TLS: the conversation can never be attacked, so stop
		// buffering it in every mode (its data is never read again).
		m.deadenFlow(f)
	} else if !f.dead {
		recs := dir.sc.Records()
		if base := dir.sc.Released(); dir.taken < base+len(recs) {
			for _, r := range recs[dir.taken-base:] {
				if isClient {
					m.onClientRecord(f, r)
				}
			}
			dir.taken = base + len(recs)
		}
	}
	if m.win != nil {
		m.maintainFlow(f, dir, isClient)
		m.maybeFinalize(f, ts)
	}
}

// flowFor finds or creates the tracked flow for a canonical key,
// scheduling its idle-expiry wheel entry in window mode.
func (m *Monitor) flowFor(canon layers.FlowKey, ts time.Time) *monFlow {
	f, ok := m.flows[canon]
	if !ok {
		f = &monFlow{canonical: canon, firstSeq: m.seqCtx}
		if canon.Proto == layers.IPProtocolUDP {
			f.quic = &quicFlow{}
		}
		m.flows[canon] = f
		m.order = append(m.order, canon)
		if m.win != nil {
			if m.wheel == nil {
				m.wheel = newTimeWheel(ts, m.win.IdleTimeout)
			}
			f.ent = &twEntry{deadline: ts.Add(m.win.IdleTimeout), ord: f.firstSeq, flow: f}
			m.wheel.schedule(f.ent)
		}
	}
	return f
}

// ingestDatagram advances a UDP flow by one datagram. The first datagram
// decides whether the flow is QUIC at all (the fixed bit); non-QUIC UDP
// is deadened exactly as a non-TLS TCP conversation would be. Long-header
// datagrams — the handshake — are announced once (QUICFlowObserved) and
// excluded from burst segmentation; client short-header datagrams drive
// the burst segmenter, and each completed burst replays through the
// record pipeline as a pseudo-record of the burst's summed size. Nothing
// beyond sizes and times is retained, so the payload span goes back to
// the caller's ring immediately.
func (m *Monitor) ingestDatagram(p *layers.Packet) {
	if m.relSpan != nil {
		defer m.relSpan(p.Payload)
	}
	ts := p.Timestamp
	canon, _ := p.Flow().Canonical()
	f := m.flowFor(canon, ts)
	f.lastSeen = ts
	if f.dead {
		return
	}
	q := f.quic
	if q == nil {
		return // 5-tuple collision between transports cannot happen (Proto keys the map)
	}
	if !q.sniffed {
		q.sniffed = true
		if !quicrec.Sniff(p.Payload) {
			// Not QUIC (plain DNS, WebRTC, ...): never attackable, stop
			// tracking its bytes in every mode.
			m.deadenFlow(f)
			return
		}
	}
	isClient := f.quicDirection(p.Flow())
	if isClient {
		if !q.haveClient {
			q.haveClient = true
			f.clientKey = p.Flow()
		}
		q.clientBytes += int64(len(p.Payload))
	} else {
		if !q.haveServer {
			q.haveServer = true
			q.serverKey = p.Flow()
		}
		q.serverBytes += int64(len(p.Payload))
	}
	if len(p.Payload) > 0 && quicrec.IsLongHeader(p.Payload[0]) {
		if !q.observed {
			if ver, dcidLen, ok := quicrec.ParseLongHeader(p.Payload); ok {
				q.observed = true
				m.emit(QUICFlowObserved{Flow: f.eventKey(), At: ts, Version: ver, DCIDLen: dcidLen})
			}
		}
		return // handshake flights never join bursts
	}
	if isClient {
		if b, ok := q.seg.Feed(ts, len(p.Payload)); ok {
			m.quicBurst(f, b)
		}
	}
	if m.win != nil {
		m.noiseTick(f, func() { q.recs = q.recs[:0] })
	}
}

// quicBurst records one completed client burst as a pseudo-record and
// runs it through the same classify/detect/decode step a scanned TLS
// record takes.
func (m *Monitor) quicBurst(f *monFlow, b Burst) {
	rec := tlsrec.Record{Type: tlsrec.ContentApplicationData, Length: b.Bytes, Time: b.Start}
	f.quic.recs = append(f.quic.recs, rec)
	m.onClientRecord(f, rec)
}

// flushQUIC closes a QUIC flow's open burst — the flow is ending, so the
// silence that would have closed it will never be observed.
func (m *Monitor) flushQUIC(f *monFlow) {
	if f.quic == nil || f.dead {
		return
	}
	if b, ok := f.quic.seg.Flush(); ok {
		m.quicBurst(f, b)
	}
}

// quicDirection resolves whether a directional UDP key is the client
// side, by the same orientation rule direction() applies to TCP.
func (f *monFlow) quicDirection(k layers.FlowKey) bool {
	q := f.quic
	switch {
	case q.haveClient && f.clientKey == k:
		return true
	case q.haveServer && q.serverKey == k:
		return false
	case k.DstPort < 1024 && k.SrcPort >= 1024:
		return true
	case k.SrcPort < 1024 && k.DstPort >= 1024:
		return false
	default:
		return !q.haveClient
	}
}

// deadenFlow marks a conversation as unattackable and evicts its buffers:
// reassembly stops retaining payloads and already-scanned descriptors are
// dropped. Candidate selection is unaffected — the flow was never viable.
func (m *Monitor) deadenFlow(f *monFlow) {
	if f.dead {
		return
	}
	f.dead = true
	if f.rejected {
		f.rejected = false
		m.rejectedNow--
	}
	for _, d := range []*monDir{&f.client, &f.server} {
		if d.stream != nil {
			d.stream.Discard()
		}
		if d.sc != nil {
			d.sc.ReleaseRecords(d.sc.Released() + len(d.sc.Records()))
		}
	}
	if f.quic != nil {
		f.quic.recs = nil
	}
}

// maintainFlow is the rolling-window bookkeeping after one packet: the
// touched direction's consumed chunks are released, the server side's
// record descriptors (which the attack never reads) are dropped, and the
// client side drives the noise-rejection state machine.
func (m *Monitor) maintainFlow(f *monFlow, dir *monDir, isClient bool) {
	dir.stream.ReleaseThrough(dir.consumed)
	if !isClient {
		dir.sc.ReleaseRecords(dir.sc.Released() + len(dir.sc.Records()))
		return
	}
	m.noiseTick(f, func() { dir.sc.ReleaseRecords(dir.taken) })
}

// noiseTick drives the zero-report rejection state machine for one flow's
// client side after a packet on it. dropRecs releases the flow's retained
// client record descriptors — scanner records for TCP, burst
// pseudo-records for QUIC — which is the only transport-specific part of
// the machine.
func (m *Monitor) noiseTick(f *monFlow, dropRecs func()) {
	if f.dead {
		return
	}
	if f.detected {
		if f.rejected {
			// A hard report arrived during probation: rehabilitated. Its
			// earliest descriptors are gone, so a finalize sees a partial
			// observation — the price of having looked like noise.
			f.rejected = false
			m.rejectedNow--
		}
		return
	}
	w := m.win
	if !f.rejected {
		// Two rejection triggers: the count rule (dense flows trip it in
		// seconds) and the clock rule (a slow drip of reportless records
		// trips it after RejectQuiet of capture time, long before its
		// record count would).
		quiet := w.RejectQuiet > 0 && !f.firstAppAt.IsZero() &&
			f.classified >= w.RejectQuietMinRecords &&
			m.clock.Sub(f.firstAppAt) >= w.RejectQuiet
		if f.classified >= w.RejectAfterRecords || quiet {
			// Before the descriptors go: if no session has been seen yet,
			// this flow may still end up the batch-rule fallback target
			// (largest conversation of a reportless capture), so its decode
			// over the pre-rejection prefix is stashed now — rejection must
			// never turn a zero-report capture into an error.
			if m.bestFinal == nil && !m.suppressFallback && f.viable() && f.totalBytes() > m.fallbackHigh() {
				m.stashFallback(f)
			}
			f.rejected = true
			m.rejectedNow++
			f.rechecks = w.RecheckBudget
			f.nextRecheck = f.classified + w.RecheckEvery
			if w.RejectQuiet > 0 {
				f.nextRecheckT = m.clock.Add(w.RejectQuiet)
			}
			dropRecs()
		}
		return
	}
	// Rejected probation: keep descriptors drained; after the bounded
	// re-check budget with still zero reports, evict terminally. Re-checks
	// fire on whichever cadence — record count or capture clock — comes
	// first, so slow drips cannot stretch probation indefinitely.
	dropRecs()
	recheckDue := f.classified >= f.nextRecheck ||
		(!f.nextRecheckT.IsZero() && !m.clock.Before(f.nextRecheckT))
	if recheckDue {
		f.rechecks--
		f.nextRecheck = f.classified + w.RecheckEvery
		if w.RejectQuiet > 0 {
			f.nextRecheckT = m.clock.Add(w.RejectQuiet)
		}
		if f.rechecks <= 0 {
			f.rejected = false
			m.rejectedNow--
			m.deadenFlow(f)
			m.expired++
			f.announced = true
			m.emit(FlowExpired{Flow: f.eventKey(), At: m.clock,
				Reason: "rejected", Records: f.classified, Bytes: f.totalBytes()})
		}
	}
}

// maybeFinalize finalizes a flow whose transport state ended: both
// directions saw their FIN delivered, or either direction was reset.
func (m *Monitor) maybeFinalize(f *monFlow, at time.Time) {
	cs, ss := f.client.stream, f.server.stream
	if cs == nil || ss == nil {
		return
	}
	switch {
	case cs.Aborted() || ss.Aborted():
		m.finalizeFlow(f, at, "rst")
	case cs.Complete() && ss.Complete():
		m.finalizeFlow(f, at, "fin")
	}
}

// sweepDue advances the sweep cadence by one packet and reports whether
// an idle sweep should run now: every Window.SweepInterval packets, or
// sooner when the capture clock has jumped a quarter of the idle timeout
// since the last sweep, so a sparse tap (one packet after a long
// silence) still ages flows out promptly.
func (m *Monitor) sweepDue() bool {
	m.sinceSweep++
	if m.sweptAt.IsZero() {
		m.sweptAt = m.clock
	}
	return m.sinceSweep >= m.win.SweepInterval ||
		m.clock.Sub(m.sweptAt) >= m.win.IdleTimeout/4
}

// sweepNow runs the idle sweep: flows with no traffic for IdleTimeout on
// the capture clock finalize, which is how conversations that vanish
// without a close (a device leaving the network) still leave the window.
// The timing wheel makes this O(expired + re-armed) — only entries whose
// deadline slot the clock crossed are examined, never the whole table.
// Popped entries whose flow saw traffic since scheduling re-arm at the
// refreshed deadline; entries whose flow is already gone are dropped
// (dropFlow leaves them in the wheel for exactly this lazy check).
//
// exempt (when haveExempt) is the canonical key of the packet that
// triggered the sweep: its own flow is never expired by it, even when
// the packet's timestamp jump exceeds the idle timeout — the flow is
// provably not idle, its next packet is already in hand. Expiry order is
// the flow's first-seen order (twEntry.ord), matching the former linear
// table scan.
func (m *Monitor) sweepNow(exempt layers.FlowKey, haveExempt bool) {
	m.sinceSweep = 0
	m.sweptAt = m.clock
	m.sweeps++
	m.compactOrder()
	if m.wheel == nil {
		return
	}
	for _, e := range m.wheel.advance(m.clock) {
		m.sweepTouch++
		f := e.flow
		if m.flows[f.canonical] != f {
			continue // dropped since scheduling; stale entry
		}
		alive := f.lastSeen.IsZero() || f.lastSeen.Add(m.win.IdleTimeout).After(m.clock) ||
			(haveExempt && f.canonical == exempt)
		if alive {
			// Re-arm at the refreshed deadline. For the exempt flow this
			// may still be in the past (its packet has not landed yet);
			// schedule clamps past deadlines one tick out, and the next
			// pop re-checks against the then-updated lastSeen.
			e.deadline = f.lastSeen.Add(m.win.IdleTimeout)
			m.wheel.schedule(e)
			continue
		}
		m.evKey = f.firstSeq
		m.finalizeFlow(f, m.clock, "idle")
	}
	m.evKey = 0
}

// compactOrder rebuilds the first-seen order without dropped flows.
func (m *Monitor) compactOrder() {
	if m.flowsGone <= 64 || m.flowsGone*2 <= len(m.order) {
		return
	}
	kept := m.order[:0]
	for _, k := range m.order {
		if _, ok := m.flows[k]; ok {
			kept = append(kept, k)
		}
	}
	m.order, m.flowsGone = kept, 0
}

// finalizeFlow concludes one flow and removes it from the monitor. A
// viable flow with enough in-band evidence is inferred and emitted as a
// SessionFinalized — for a mid-session idle expiry that inference carries
// the partial path decoded so far and its confirmed-prefix DecodeMargin —
// and everything else expires.
func (m *Monitor) finalizeFlow(f *monFlow, at time.Time, reason string) {
	defer m.dropFlow(f)
	// A QUIC flow's last write never sees the gap that would close it.
	m.flushQUIC(f)
	if !f.dead && f.viable() && m.hardCount(f) >= minSessionHards {
		if inf, err := m.atk.Infer(f.observation()); err == nil {
			matched, score := m.hardCount(f), 0.0
			if len(inf.Hypotheses) > 0 {
				matched, score = inf.Hypotheses[0].Matched, inf.Hypotheses[0].Score
			}
			m.noteFinal(inf, matched, score)
			m.finalized++
			m.emit(SessionFinalized{Flow: f.clientKey, Inference: inf})
			return
		}
	}
	// A currently-rejected flow's retained records are the post-rejection
	// tail; its richer pre-rejection prefix was already stashed when the
	// rejection hit, so don't overwrite that with a worse observation.
	if m.bestFinal == nil && !m.suppressFallback && !f.dead && !f.rejected &&
		f.viable() && f.totalBytes() > m.fallbackHigh() {
		m.stashFallback(f)
	}
	if !f.announced {
		m.expired++
		f.announced = true
		m.emit(FlowExpired{Flow: f.eventKey(), At: at, Reason: reason,
			Records: f.classified, Bytes: f.totalBytes()})
	}
}

// noteFinal keeps the best finalized inference by the same
// (matched, score) rule selectFlow applies at batch Close: strictly
// better wins, the first of equals stays. Each call is stamped so the
// shard engine can reconstruct the single-threaded chronology.
func (m *Monitor) noteFinal(inf *Inference, matched int, score float64) {
	st := evStamp{m.seqCtx, m.evKey}
	if m.firstFinal == nil {
		s := st
		m.firstFinal = &s
	}
	if m.bestFinal == nil || matched > m.bestMatched ||
		(matched == m.bestMatched && score > m.bestScore) {
		m.bestFinal, m.bestMatched, m.bestScore, m.bestStamp = inf, matched, score, st
	}
}

// fallbackHigh is the byte size of the best fallback stashed so far —
// the threshold a flow must beat to become the new fallback target.
func (m *Monitor) fallbackHigh() int64 {
	if n := len(m.fallbacks); n > 0 {
		return m.fallbacks[n-1].bytes
	}
	return 0
}

// stashFallback records a flow's inference as the current largest-flow
// fallback. Callers gate on fallbackHigh, so the slice stays strictly
// increasing in bytes; the stamp history lets the shard engine replay
// which candidate a single-threaded run would have held at any point.
func (m *Monitor) stashFallback(f *monFlow) {
	if inf, err := m.atk.Infer(f.observation()); err == nil {
		m.fallbacks = append(m.fallbacks, fallbackCand{
			inf: inf, flow: f.clientKey, bytes: f.totalBytes(),
			at: evStamp{m.seqCtx, m.evKey},
		})
	}
}

// dropFlow releases a flow's reassembly state and forgets it. A later
// packet on the same 5-tuple starts a fresh conversation, which is how
// port reuse on a long tap should read.
func (m *Monitor) dropFlow(f *monFlow) {
	if f.rejected {
		f.rejected = false
		m.rejectedNow--
	}
	if f.client.stream != nil {
		m.asm.Drop(f.client.stream.Key)
	}
	if f.server.stream != nil {
		m.asm.Drop(f.server.stream.Key)
	}
	delete(m.flows, f.canonical)
	m.flowsGone++
}

// eventKey is the key flow-level events carry: client→server when known.
func (f *monFlow) eventKey() layers.FlowKey {
	if f.client.stream != nil {
		return f.clientKey
	}
	if f.quic != nil && f.quic.haveClient {
		return f.clientKey
	}
	return f.canonical
}

// direction resolves which side of the conversation a directional key is,
// using the batch orienter's rule: the endpoint talking to a well-known
// port is the client; with two ephemeral ports, the first direction seen
// is taken as client→server.
func (f *monFlow) direction(k layers.FlowKey) (*monDir, bool) {
	switch {
	case f.client.stream != nil && f.client.stream.Key == k:
		return &f.client, true
	case f.server.stream != nil && f.server.stream.Key == k:
		return &f.server, false
	case k.DstPort < 1024 && k.SrcPort >= 1024:
		return &f.client, true
	case k.SrcPort < 1024 && k.DstPort >= 1024:
		return &f.server, false
	case f.client.stream == nil:
		return &f.client, true
	default:
		return &f.server, false
	}
}

// onClientRecord absorbs one completed client-side record: anchor the
// session clock, classify application data, emit detection and running
// choice events, and extend the live alignment. Without an event callback
// or a rolling window none of that state is observable before Close
// (which classifies through Infer anyway), so the whole step is skipped
// and the one-shot wrapper stays as cheap as the old batch path. With a
// window but no callback only the counters the window needs are kept.
func (m *Monitor) onClientRecord(f *monFlow, rec tlsrec.Record) {
	live := m.onEvent != nil
	if !live && m.win == nil {
		return
	}
	if f.anchor.IsZero() {
		f.anchor = rec.Time // first client record — the decode anchor
	}
	if rec.Type != tlsrec.ContentApplicationData {
		return
	}
	soft, _ := m.atk.Classifier.(SoftClassifier)
	cr := classifyRecord(rec, m.atk.Classifier, soft)
	idx := f.classified
	f.classified++
	if f.firstAppAt.IsZero() {
		f.firstAppAt = rec.Time // starts the quiet-period rejection clock
	}

	hard := cr.Class == ClassType1 || cr.Class == ClassType2
	if hard {
		f.hards++
		if !f.detected {
			f.detected = true
			m.emit(FlowDetected{Flow: f.clientKey, At: rec.Time, Length: rec.Length, Class: cr.Class})
		}
		// Plain running decode: a type-1 opens a choice, a type-2 before
		// the next type-1 flips the latest one to non-default.
		switch cr.Class {
		case ClassType1:
			f.plainChoices = append(f.plainChoices, InferredChoice{
				Index: len(f.plainChoices), TookDefault: true, QuestionAt: rec.Time,
			})
		case ClassType2:
			if n := len(f.plainChoices); n > 0 {
				f.plainChoices[n-1].TookDefault = false
				f.plainChoices[n-1].DecidedAt = rec.Time
			}
		}
	}
	if !live || f.rejected {
		// Window-only bookkeeping, or a flow in rejected probation whose
		// hypothesis engine is paused: counters are all that is needed.
		return
	}
	ev, ok := observedEventFrom(cr, idx, f.anchor)
	if !ok {
		return
	}
	if t := m.liveTable(); t != nil {
		if f.pa == nil {
			f.pa = newPrefixAligner(t, m.prm)
		}
		f.pa.observe(ev)
	}
	if !hard || len(f.plainChoices) == 0 {
		// An orphan type-2 (no type-1 opened a choice yet) is a classifier
		// slip — the plain decode ignores it, and there is no choice to
		// report an event about.
		return
	}
	ci := ChoiceInferred{
		Flow:   f.clientKey,
		At:     rec.Time,
		Choice: len(f.plainChoices) - 1,
	}
	if f.pa != nil {
		// A type-1 report confirms every *earlier* choice (had the viewer
		// gone non-default at the latest one, its type-2 would still be
		// pending); a type-2 confirms its own choice too. The margin is
		// computed over exactly the confirmed prefix.
		confirmed := len(f.plainChoices)
		if cr.Class == ClassType1 {
			confirmed--
		}
		best, margin := f.pa.ranking(confirmed)
		ci.Decisions = append([]bool(nil), f.pa.table.Paths[best].Decisions...)
		ci.DecodeMargin = margin
		if ci.Choice >= 0 && ci.Choice < len(ci.Decisions) {
			ci.TookDefault = ci.Decisions[ci.Choice]
		}
	} else if ci.Choice >= 0 {
		ci.TookDefault = f.plainChoices[ci.Choice].TookDefault
	}
	m.emit(ci)
}

// liveTable lazily builds the shared decoding table for the live engine.
// A failed build is remembered and not retried on every record.
func (m *Monitor) liveTable() *PathTable {
	if m.tableTried || m.atk.Graph == nil {
		return m.table
	}
	m.tableTried = true
	maxChoices := m.atk.MaxChoices
	if maxChoices <= 0 {
		maxChoices = 16
	}
	t, err := PathTableFor(m.atk.Graph, maxChoices)
	if err != nil {
		return nil // fall back to the plain running decode
	}
	m.table = t
	return t
}

// observation assembles the attacker's view of one monitored flow. For a
// QUIC flow the client "records" are its burst pseudo-records; the server
// direction contributes only its existence (the attack never reads server
// record contents anyway).
func (f *monFlow) observation() *Observation {
	if f.quic != nil {
		return &Observation{ClientRecords: f.quic.recs}
	}
	return &Observation{
		ClientRecords: f.client.sc.Records(),
		ServerRecords: f.server.sc.Records(),
	}
}

// viable reports whether a flow is a complete, attackable conversation —
// the batch extraction's admission rule: both directions seen and
// parsable as the flow's transport.
func (f *monFlow) viable() bool {
	if f.quic != nil {
		return f.quic.haveClient && f.quic.haveServer
	}
	return f.client.stream != nil && f.server.stream != nil &&
		f.client.sc.Err() == nil && f.server.sc.Err() == nil
}

// Stats snapshots the monitor's flow table and retained memory.
func (m *Monitor) Stats() MonitorStats {
	if m.eng != nil {
		return m.eng.stats()
	}
	st := MonitorStats{
		Flows:             len(m.flows),
		RejectedFlows:     m.rejectedNow,
		FinalizedSessions: m.finalized,
		ExpiredFlows:      m.expired,
		Sweeps:            m.sweeps,
		SweepTouched:      m.sweepTouch,
	}
	if m.cr != nil {
		st.RetainedBytes += int64(m.cr.Buffered())
	}
	for _, f := range m.flows {
		if !f.dead {
			st.LiveFlows++
		}
		for _, d := range []*monDir{&f.client, &f.server} {
			if d.stream != nil {
				st.RetainedBytes += d.stream.BufferedBytes()
			}
			if d.sc != nil {
				st.RetainedBytes += int64(len(d.sc.Records())) * recordFootprint
			}
		}
		if f.quic != nil {
			st.RetainedBytes += int64(len(f.quic.recs)) * recordFootprint
		}
	}
	return st
}

// Close finalizes the monitor: it verifies the feed ended on a clean pcap
// boundary, picks the best candidate flow, runs the full inference on it,
// emits SessionFinalized and returns the Inference. For single-TLS-flow
// captures the result is byte-identical to the batch Attacker.InferPcap;
// among multiple candidates the flow whose records the script graph
// explains best wins (falling back to the largest flow when no in-band
// reports classified anywhere). In rolling-window mode every still-open
// flow finalizes first — emitting its own SessionFinalized or FlowExpired
// — and the best inference across the whole run is returned.
func (m *Monitor) Close() (*Inference, error) {
	if m.eng != nil {
		return m.eng.close()
	}
	if m.closed {
		return nil, errors.New("attack: monitor already closed")
	}
	m.closed = true
	if m.err != nil {
		return nil, m.err
	}
	if m.cr != nil {
		if err := m.cr.TailErr(); err != nil {
			m.err = wrapReadErr(m.cr.HeaderDone(), err)
			return nil, m.err
		}
	}
	if m.win != nil {
		return m.closeWindowed()
	}

	// End of feed: QUIC flows' open bursts close now — the silence that
	// would have closed them will never be observed.
	for _, k := range m.order {
		if f, ok := m.flows[k]; ok {
			m.flushQUIC(f)
		}
	}

	// Candidate flows, ordered like the batch extraction (by client key).
	var cands []*monFlow
	for _, k := range m.order {
		if f := m.flows[k]; f.viable() {
			cands = append(cands, f)
		}
	}
	sort.SliceStable(cands, func(i, j int) bool {
		return cands[i].clientKey.String() < cands[j].clientKey.String()
	})
	if len(cands) == 0 {
		return nil, ErrNoTLSConversation
	}

	chosen, inf, err := m.selectFlow(cands)
	if err != nil {
		return nil, err
	}
	m.emit(SessionFinalized{Flow: chosen.clientKey, Inference: inf})
	return inf, nil
}

// closeWindowed drains the window at end of feed: candidate flows
// finalize (in deterministic first-seen order), and if no session was
// ever finalized the largest still-viable conversation is attacked — the
// batch fallback for captures whose reports never classified. Everything
// else expires with reason "close". The phases are separate methods so
// the shard engine can run each across all shards with a global reduce
// between them.
func (m *Monitor) closeWindowed() (*Inference, error) {
	m.closeFinalizeSessions()
	if m.bestFinal == nil {
		// The batch rule attacks the capture's biggest conversation; an
		// already-expired flow (tracked by the fallback) may outweigh
		// everything still open.
		if canon, bytes, _, ok := m.largestOpen(); ok && bytes > m.fallbackHigh() {
			m.finalizeLargest(canon)
		}
	}
	m.closeExpireRest()
	if m.bestFinal == nil && len(m.fallbacks) > 0 {
		// Nothing ever classified as a session; the largest expired viable
		// flow is the attack target, as in the batch path.
		fb := m.fallbacks[len(m.fallbacks)-1]
		m.finalized++
		m.emit(SessionFinalized{Flow: fb.flow, Inference: fb.inf})
		return fb.inf, nil
	}
	if m.bestFinal == nil {
		return nil, ErrNoTLSConversation
	}
	return m.bestFinal, nil
}

// remainingFlows returns the still-open flows in first-seen order.
// m.order can hold a key twice when a finalized flow's 5-tuple was
// reused; dedupe so no flow finalizes more than once.
func (m *Monitor) remainingFlows() []*monFlow {
	m.compactOrder()
	var remaining []*monFlow
	seen := make(map[layers.FlowKey]bool, len(m.order))
	for _, k := range m.order {
		if seen[k] {
			continue
		}
		seen[k] = true
		if f, ok := m.flows[k]; ok {
			remaining = append(remaining, f)
		}
	}
	return remaining
}

// closeFinalizeSessions is the first close phase: every flow with enough
// in-band evidence finalizes as a session, in first-seen order.
func (m *Monitor) closeFinalizeSessions() {
	for _, f := range m.remainingFlows() {
		if _, ok := m.flows[f.canonical]; !ok {
			continue
		}
		if !f.dead && f.viable() && m.hardCount(f) >= minSessionHards {
			m.evKey = f.firstSeq
			m.finalizeFlow(f, m.clock, "close")
		}
	}
	m.evKey = 0
}

// largestOpen finds the largest still-open viable flow — the candidate
// for the batch largest-conversation fallback at close.
func (m *Monitor) largestOpen() (canon layers.FlowKey, bytes int64, firstSeq uint64, ok bool) {
	var largest *monFlow
	for _, f := range m.remainingFlows() {
		if f.dead || !f.viable() {
			continue
		}
		if largest == nil || f.totalBytes() > largest.totalBytes() {
			largest = f
		}
	}
	if largest == nil {
		return layers.FlowKey{}, 0, 0, false
	}
	return largest.canonical, largest.totalBytes(), largest.firstSeq, true
}

// finalizeLargest runs the largest-conversation attack on one still-open
// flow and finalizes it. A failed Infer leaves the flow for
// closeExpireRest.
func (m *Monitor) finalizeLargest(canon layers.FlowKey) {
	f, ok := m.flows[canon]
	if !ok {
		return
	}
	if inf, err := m.atk.Infer(f.observation()); err == nil {
		m.evKey = f.firstSeq
		m.noteFinal(inf, 0, 0)
		m.finalized++
		m.emit(SessionFinalized{Flow: f.clientKey, Inference: inf})
		m.dropFlow(f)
		m.evKey = 0
	}
}

// closeExpireRest is the final close phase: whatever is still open
// expires with reason "close", in first-seen order.
func (m *Monitor) closeExpireRest() {
	for _, f := range m.remainingFlows() {
		if _, ok := m.flows[f.canonical]; ok {
			m.evKey = f.firstSeq
			m.finalizeFlow(f, m.clock, "close")
		}
	}
	m.evKey = 0
}

// selectFlow picks the conversation to attack. With a single candidate —
// the whole-capture, one-conversation case InferPcap wraps — the choice
// is trivial and the inference runs exactly once, preserving byte
// equivalence with the batch path. With several candidates, every flow
// that produced in-band reports is scored by how well the graph explains
// it (hard observations matched by its best hypothesis, then hypothesis
// score, then size); when no flow produced reports the largest one wins,
// which is the batch rule.
func (m *Monitor) selectFlow(cands []*monFlow) (*monFlow, *Inference, error) {
	if len(cands) == 1 {
		inf, err := m.atk.Infer(cands[0].observation())
		return cands[0], inf, err
	}
	var best *monFlow
	var bestInf *Inference
	bestMatched, bestScore := -1, 0.0
	for _, f := range cands {
		hards := m.hardCount(f)
		if hards == 0 {
			continue
		}
		inf, err := m.atk.Infer(f.observation())
		if err != nil {
			continue
		}
		matched, score := hards, 0.0
		if len(inf.Hypotheses) > 0 {
			matched, score = inf.Hypotheses[0].Matched, inf.Hypotheses[0].Score
		}
		if matched > bestMatched || (matched == bestMatched && score > bestScore) {
			best, bestInf, bestMatched, bestScore = f, inf, matched, score
		}
	}
	if best != nil {
		return best, bestInf, nil
	}
	// No in-band evidence anywhere: attack the largest conversation.
	for _, f := range cands {
		if best == nil || f.totalBytes() > best.totalBytes() {
			best = f
		}
	}
	inf, err := m.atk.Infer(best.observation())
	return best, inf, err
}

// hardCount returns the number of in-band (type-1/type-2) client records
// on a flow. With a live event callback or a rolling window the running
// counter is already maintained; otherwise — records were not classified
// during the feed to keep the one-shot path cheap — the client records
// are classified here, once, for the multi-candidate selection that needs
// them.
func (m *Monitor) hardCount(f *monFlow) int {
	if m.onEvent != nil || m.win != nil {
		return f.hards
	}
	n := 0
	var recs []tlsrec.Record
	if f.quic != nil {
		recs = f.quic.recs
	} else {
		recs = f.client.sc.Records()
	}
	for _, r := range recs {
		if r.Type != tlsrec.ContentApplicationData {
			continue
		}
		if cls, _ := m.atk.Classifier.Classify(r.Length); cls == ClassType1 || cls == ClassType2 {
			n++
		}
	}
	return n
}

// totalBytes is the conversation's delivered byte count, both directions.
func (f *monFlow) totalBytes() int64 {
	if f.quic != nil {
		return f.quic.clientBytes + f.quic.serverBytes
	}
	var n int64
	if f.client.stream != nil {
		n += f.client.stream.Len()
	}
	if f.server.stream != nil {
		n += f.server.stream.Len()
	}
	return n
}
