package attack

import (
	"sort"
	"time"
)

// Timing-wheel idle expiry. The rolling-window Monitor used to find idle
// flows by scanning the whole flow table every sweep — O(flows) per sweep
// no matter how few flows actually expired, which is hopeless at
// core-link scale (tens of thousands of concurrent flows, most of them
// healthy). The hierarchical wheel below makes a sweep O(expired +
// cascaded): each flow holds exactly one wheel entry keyed by its idle
// deadline on the capture clock, and advancing the wheel pops only the
// slots the clock actually crossed.
//
// Layout: twLevels levels of twSlots slots. Level 0 slots span one tick,
// level L slots span twSlots^L ticks, so the wheel covers
// twSlots^twLevels ticks before the top level saturates (deadlines past
// the horizon are clamped to the last representable tick and re-examined
// when popped — re-scheduling on pop is the standard cascade). With the
// Monitor's tick of IdleTimeout/twSlots, one level-0 revolution is one
// idle timeout, and the horizon is ~64^3 timeouts — unreachable in
// practice, but still correct if reached.
//
// Entries are lazily invalidated rather than removed: dropFlow leaves the
// entry in place and expiry re-checks flow identity on pop, and a flow
// that saw traffic after its entry was scheduled is re-armed (re-inserted
// at its new deadline) instead of expired. Equal deadlines pop in a
// deterministic order: advance sorts due entries by ord, the flow's
// first-seen sequence number, which is exactly the first-seen table order
// the linear scan used.

const (
	twSlotBits = 6
	twSlots    = 1 << twSlotBits // 64 slots per level
	twLevels   = 4
)

// twEntry is one scheduled deadline. Entries chain into their slot as a
// singly-linked list; next is owned by the wheel between schedule and
// pop.
type twEntry struct {
	deadline time.Time // expire when the capture clock passes this
	ord      uint64    // tie-break: first-seen sequence of the flow
	flow     *monFlow  // back-pointer for the expiry check (nil in tests)
	next     *twEntry
}

// timeWheel is a hierarchical timing wheel over the capture clock.
// Absolute tick numbers are time since epoch divided by tick; the wheel
// never runs backward (advance clamps to the high-water tick).
type timeWheel struct {
	tick  time.Duration
	epoch time.Time
	cur   int64 // absolute tick the wheel has advanced through
	slots [twLevels][twSlots]*twEntry
	size  int
}

// newTimeWheel sizes a wheel so one level-0 revolution spans roughly one
// idle timeout. The tick floor keeps degenerate timeouts from creating a
// zero-duration tick.
func newTimeWheel(epoch time.Time, idle time.Duration) *timeWheel {
	tick := idle / twSlots
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	return &timeWheel{tick: tick, epoch: epoch}
}

// tickOf maps an absolute time to its tick number. Times at or before
// the epoch land on tick 0.
func (w *timeWheel) tickOf(t time.Time) int64 {
	d := t.Sub(w.epoch)
	if d <= 0 {
		return 0
	}
	return int64(d / w.tick)
}

// levelSpan returns the tick span of one slot at the given level.
func levelSpan(level int) int64 {
	return 1 << (twSlotBits * level)
}

// schedule inserts e at the slot covering its deadline. Deadlines in the
// past (or the present tick) go one tick ahead so the next advance pops
// them; deadlines past the wheel horizon clamp to the outermost slot.
func (w *timeWheel) schedule(e *twEntry) {
	t := w.tickOf(e.deadline)
	if t <= w.cur {
		t = w.cur + 1
	}
	if max := w.cur + levelSpan(twLevels) - 1; t > max {
		t = max
	}
	delta := t - w.cur
	level := 0
	for level < twLevels-1 && delta >= levelSpan(level+1) {
		level++
	}
	idx := (t >> (twSlotBits * level)) % twSlots
	e.next = w.slots[level][idx]
	w.slots[level][idx] = e
	w.size++
}

// advance moves the wheel to now and returns every entry whose deadline
// has passed, sorted by ord (deterministic under identical deadlines).
// Entries popped by slot rotation whose deadline is still in the future
// — cascades from outer levels, and clamped far-horizon entries — are
// re-scheduled relative to the new position, not returned.
func (w *timeWheel) advance(now time.Time) []*twEntry {
	to := w.tickOf(now)
	if to <= w.cur {
		return nil
	}
	var popped *twEntry
	for level := 0; level < twLevels; level++ {
		shift := uint(twSlotBits * level)
		from, upto := w.cur>>shift, to>>shift
		n := upto - from
		if n <= 0 {
			break // outer levels have not rotated either
		}
		if n > twSlots {
			n = twSlots // a full revolution drains every slot once
		}
		for i := int64(1); i <= n; i++ {
			idx := (from + i) % twSlots
			for e := w.slots[level][idx]; e != nil; {
				next := e.next
				e.next = popped
				popped = e
				e = next
			}
			w.slots[level][idx] = nil
		}
	}
	w.cur = to

	var due []*twEntry
	for e := popped; e != nil; {
		next := e.next
		e.next = nil
		if w.tickOf(e.deadline) <= to {
			w.size--
			due = append(due, e)
		} else {
			w.size-- // schedule re-counts it
			w.schedule(e)
		}
		e = next
	}
	sort.Slice(due, func(i, j int) bool { return due[i].ord < due[j].ord })
	return due
}
