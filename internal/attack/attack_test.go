package attack

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/capture"
	"repro/internal/media"
	"repro/internal/profiles"
	"repro/internal/script"
	"repro/internal/session"
	"repro/internal/tlsrec"
	"repro/internal/viewer"
	"repro/internal/wire"
)

// runSession simulates one Bandersnatch viewing under cond.
func runSession(t *testing.T, seed uint64, cond profiles.Condition) *session.Trace {
	t.Helper()
	g := script.Bandersnatch()
	enc := media.Encode(g, media.DefaultLadder, 42)
	pop := viewer.SamplePopulation(1, wire.NewRNG(seed))
	tr, err := session.Run(session.Config{
		Graph: g, Encoding: enc, Viewer: pop[0],
		Condition: cond, SessionID: "atk", Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func trainedAttacker(t *testing.T, cond profiles.Condition, trainSeeds []uint64) *Attacker {
	t.Helper()
	var traces []*session.Trace
	for _, s := range trainSeeds {
		traces = append(traces, runSession(t, s, cond))
	}
	// Keep profiling until both report types have been observed (a
	// training viewer who took only defaults never sent a type-2).
	for extra := uint64(0); extra < 12 && !bothClassesPresent(traces); extra++ {
		traces = append(traces, runSession(t, trainSeeds[0]+1000+extra, cond))
	}
	a, err := NewAttacker(traces, script.Bandersnatch(), script.BandersnatchMaxChoices)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func bothClassesPresent(traces []*session.Trace) bool {
	var t1, t2 bool
	for _, e := range TrainingSetFromTraces(traces) {
		switch e.Class {
		case ClassType1:
			t1 = true
		case ClassType2:
			t2 = true
		}
	}
	return t1 && t2
}

func TestEndToEndAttackRecoversChoices(t *testing.T) {
	cond := profiles.Fig2Ubuntu
	a := trainedAttacker(t, cond, []uint64{100, 101})

	for seed := uint64(1); seed <= 5; seed++ {
		tr := runSession(t, seed, cond)
		var buf bytes.Buffer
		if err := capture.WritePcap(&buf, tr, capture.Options{Seed: seed}); err != nil {
			t.Fatal(err)
		}
		inf, err := a.InferPcap(buf.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		truth := tr.GroundTruthDecisions()
		correct, total := ScoreDecisions(inf.Decisions, truth)
		if correct != total {
			t.Errorf("seed %d: recovered %d/%d decisions (truth %v, got %v)",
				seed, correct, total, truth, inf.Decisions)
		}
		// The reconstructed path must equal the played path.
		if len(inf.Path.Segments) != len(tr.Result.Path.Segments) {
			t.Errorf("seed %d: path length %d, want %d",
				seed, len(inf.Path.Segments), len(tr.Result.Path.Segments))
			continue
		}
		for i := range inf.Path.Segments {
			if inf.Path.Segments[i] != tr.Result.Path.Segments[i] {
				t.Errorf("seed %d: path[%d] = %s, want %s",
					seed, i, inf.Path.Segments[i], tr.Result.Path.Segments[i])
			}
		}
	}
}

func TestAttackAcrossConditions(t *testing.T) {
	// Train and test per condition, as the paper does; the attack must
	// work under every grid condition.
	conds := []profiles.Condition{
		profiles.Fig2Ubuntu,
		profiles.Fig2Windows,
		{OS: profiles.OSMac, Platform: profiles.PlatformLaptop,
			Browser: profiles.BrowserChrome, Medium: "wireless", TrafficTime: "night"},
	}
	for _, cond := range conds {
		a := trainedAttacker(t, cond, []uint64{200})
		tr := runSession(t, 7, cond)
		obs := observationFromTrace(t, tr)
		inf, err := a.Infer(obs)
		if err != nil {
			t.Fatalf("%s: %v", cond, err)
		}
		correct, total := ScoreDecisions(inf.Decisions, tr.GroundTruthDecisions())
		if correct != total {
			t.Errorf("%s: %d/%d decisions", cond, correct, total)
		}
	}
}

// observationFromTrace builds an Observation directly from stream bytes,
// bypassing pcap (faster for repeated tests).
func observationFromTrace(t *testing.T, tr *session.Trace) *Observation {
	t.Helper()
	cRecs, _, err := tlsrec.ParseStream(tr.ClientToServer.Bytes, tr.ClientToServer.TimeAt)
	if err != nil {
		t.Fatal(err)
	}
	sRecs, _, err := tlsrec.ParseStream(tr.ServerToClient.Bytes, tr.ServerToClient.TimeAt)
	if err != nil {
		t.Fatal(err)
	}
	return &Observation{ClientRecords: cRecs, ServerRecords: sRecs}
}

func TestTrainingSetLabels(t *testing.T) {
	tr := runSession(t, 11, profiles.Fig2Ubuntu)
	examples := TrainingSetFromTraces([]*session.Trace{tr})
	counts := map[Class]int{}
	for _, e := range examples {
		counts[e.Class]++
	}
	if counts[ClassType1] == 0 {
		t.Error("no type-1 training examples")
	}
	if counts[ClassOther] == 0 {
		t.Error("no 'other' training examples")
	}
	// Type-1 count equals choices met.
	if counts[ClassType1] != len(tr.Result.Choices) {
		t.Errorf("type-1 examples %d != choices %d", counts[ClassType1], len(tr.Result.Choices))
	}
}

func TestIntervalBandTrainerSeparation(t *testing.T) {
	examples := []Example{
		{2211, ClassType1}, {2212, ClassType1}, {2213, ClassType1},
		{3000, ClassType2}, {3010, ClassType2},
		{400, ClassOther}, {4600, ClassOther},
	}
	clf, err := (&IntervalBandTrainer{}).Train(examples)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		length int
		want   Class
	}{
		{2212, ClassType1}, {2211, ClassType1},
		{3005, ClassType2},
		{400, ClassOther}, {10000, ClassOther}, {2600, ClassOther},
	}
	for _, c := range cases {
		got, conf := clf.Classify(c.length)
		if got != c.want {
			t.Errorf("Classify(%d) = %v, want %v", c.length, got, c.want)
		}
		if conf <= 0 || conf > 1 {
			t.Errorf("Classify(%d) confidence %v out of range", c.length, conf)
		}
	}
}

func TestIntervalBandTrainerRejectsOverlap(t *testing.T) {
	examples := []Example{
		{2500, ClassType1}, {2502, ClassType2}, // margin makes these overlap
	}
	if _, err := (&IntervalBandTrainer{}).Train(examples); err == nil {
		t.Error("overlapping bands accepted")
	}
}

func TestIntervalBandTrainerRejectsPollutedOther(t *testing.T) {
	examples := []Example{
		{2211, ClassType1}, {3000, ClassType2},
		{2212, ClassOther}, // inside the type-1 band
	}
	if _, err := (&IntervalBandTrainer{}).Train(examples); err == nil {
		t.Error("polluted band accepted")
	}
}

func TestIntervalBandTrainerNeedsBothClasses(t *testing.T) {
	if _, err := (&IntervalBandTrainer{}).Train([]Example{{2211, ClassType1}}); err == nil {
		t.Error("missing type-2 class accepted")
	}
}

func TestNearestCentroidClassifier(t *testing.T) {
	examples := []Example{
		{2211, ClassType1}, {2213, ClassType1},
		{3000, ClassType2}, {3010, ClassType2},
		{400, ClassOther}, {450, ClassOther},
	}
	clf, err := (NearestCentroidTrainer{}).Train(examples)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := clf.Classify(2212); got != ClassType1 {
		t.Errorf("Classify(2212) = %v", got)
	}
	if got, _ := clf.Classify(3003); got != ClassType2 {
		t.Errorf("Classify(3003) = %v", got)
	}
	if got, _ := clf.Classify(430); got != ClassOther {
		t.Errorf("Classify(430) = %v", got)
	}
}

func TestKNNClassifier(t *testing.T) {
	examples := []Example{
		{2211, ClassType1}, {2212, ClassType1}, {2213, ClassType1},
		{3000, ClassType2}, {3005, ClassType2}, {3010, ClassType2},
		{400, ClassOther}, {420, ClassOther}, {440, ClassOther},
	}
	clf, err := (KNNTrainer{K: 3}).Train(examples)
	if err != nil {
		t.Fatal(err)
	}
	if got, conf := clf.Classify(2212); got != ClassType1 || conf != 1 {
		t.Errorf("Classify(2212) = %v/%v", got, conf)
	}
	if got, _ := clf.Classify(3002); got != ClassType2 {
		t.Errorf("Classify(3002) = %v", got)
	}
	if got, _ := clf.Classify(410); got != ClassOther {
		t.Errorf("Classify(410) = %v", got)
	}
}

func TestKNNTrainerEmpty(t *testing.T) {
	if _, err := (KNNTrainer{}).Train(nil); err == nil {
		t.Error("empty knn training accepted")
	}
}

func TestDecodeChoicesRule(t *testing.T) {
	mk := func(cls Class, at int64) ClassifiedRecord {
		return ClassifiedRecord{
			Record: tlsrec.Record{Time: time.Unix(at, 0)},
			Class:  cls, Confidence: 1,
		}
	}
	recs := []ClassifiedRecord{
		mk(ClassOther, 1),
		mk(ClassType1, 2), // Q1: default (no type-2 before next type-1)
		mk(ClassOther, 3),
		mk(ClassType1, 4), // Q2: non-default
		mk(ClassType2, 5),
		mk(ClassType1, 6), // Q3: default
	}
	choices := DecodeChoices(recs)
	if len(choices) != 3 {
		t.Fatalf("choices = %d", len(choices))
	}
	want := []bool{true, false, true}
	for i, w := range want {
		if choices[i].TookDefault != w {
			t.Errorf("choice %d default = %v, want %v", i, choices[i].TookDefault, w)
		}
	}
	if choices[1].DecidedAt.Unix() != 5 {
		t.Errorf("choice 1 DecidedAt = %v", choices[1].DecidedAt)
	}
}

func TestDecodeChoicesOrphanType2Ignored(t *testing.T) {
	recs := []ClassifiedRecord{
		{Record: tlsrec.Record{}, Class: ClassType2, Confidence: 1},
	}
	if got := DecodeChoices(recs); len(got) != 0 {
		t.Errorf("orphan type-2 produced %d choices", len(got))
	}
}

func TestConstrainedDecodeRepairsSlip(t *testing.T) {
	g := script.Bandersnatch()
	// Ground truth: all defaults — in the case-study graph the default at
	// the job-offer choice ends the film early, so this is a 3-choice path.
	p, err := g.Walk([]bool{true, true, true})
	if err != nil || len(p.Decisions) != 3 {
		t.Fatalf("walk: %v, decisions %d", err, len(p.Decisions))
	}
	// Observed events: the type-1 at Q2 was missed (classifier slip), so
	// the plain decode would see only 2 questions.
	recs := []ClassifiedRecord{
		{Class: ClassType1, Confidence: 1},
		{Class: ClassType1, Confidence: 1},
	}
	hyp, err := ConstrainedDecode(g, recs, script.BandersnatchMaxChoices)
	if err != nil {
		t.Fatal(err)
	}
	// The all-defaults path scores best: 2 of its 3 expected type-1
	// events match with one gap, beating paths with non-defaults (those
	// expect type-2 events never observed) and longer paths (more gaps).
	if len(hyp.Decisions) != 3 {
		t.Fatalf("repaired decisions = %v", hyp.Decisions)
	}
	for i, d := range hyp.Decisions {
		if !d {
			t.Errorf("decision %d = non-default, want default", i)
		}
	}
}

func TestScoreDecisions(t *testing.T) {
	cases := []struct {
		inf, truth     []bool
		correct, total int
	}{
		{[]bool{true, false}, []bool{true, false}, 2, 2},
		{[]bool{true, true}, []bool{true, false}, 1, 2},
		{[]bool{true}, []bool{true, false}, 1, 2},
		{[]bool{true, false, true}, []bool{true, false}, 2, 3},
		{nil, nil, 0, 0},
	}
	for i, c := range cases {
		correct, total := ScoreDecisions(c.inf, c.truth)
		if correct != c.correct || total != c.total {
			t.Errorf("case %d: ScoreDecisions = %d/%d, want %d/%d",
				i, correct, total, c.correct, c.total)
		}
	}
}

func TestExtractPcapErrors(t *testing.T) {
	if _, err := ExtractPcapBytes([]byte("not a pcap")); err == nil {
		t.Error("garbage capture accepted")
	}
}

func TestObservationApplicationRecords(t *testing.T) {
	obs := &Observation{ClientRecords: []tlsrec.Record{
		{Type: tlsrec.ContentHandshake, Length: 517},
		{Type: tlsrec.ContentApplicationData, Length: 2212},
		{Type: tlsrec.ContentChangeCipherSpec, Length: 1},
	}}
	if got := obs.ApplicationRecords(); len(got) != 1 || got[0].Length != 2212 {
		t.Errorf("ApplicationRecords = %+v", got)
	}
}

func TestClassifierNames(t *testing.T) {
	ib := &IntervalBand{}
	nc := &NearestCentroid{Centroids: map[Class]float64{}}
	knn := &KNN{K: 5}
	for _, c := range []Classifier{ib, nc, knn} {
		if c.Name() == "" {
			t.Errorf("%T has empty name", c)
		}
	}
	if Class(0).String() != "others" || ClassType1.String() != "type-1" || ClassType2.String() != "type-2" {
		t.Error("class names wrong")
	}
}
