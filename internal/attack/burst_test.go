package attack

import (
	"testing"
	"time"
)

var b0 = time.Unix(1735689600, 0)

// feedAll runs a (ts, size) sequence through a segmenter and returns every
// closed burst including the final flush.
func feedAll(s *BurstSegmenter, dgs [][2]int64) []Burst {
	var out []Burst
	for _, d := range dgs {
		if b, ok := s.Feed(b0.Add(time.Duration(d[0])*time.Microsecond), int(d[1])); ok {
			out = append(out, b)
		}
	}
	if b, ok := s.Flush(); ok {
		out = append(out, b)
	}
	return out
}

func TestBurstCoalescedDatagrams(t *testing.T) {
	// A 2-datagram write (type-1 over QUIC) followed 400ms later by a
	// 3-datagram write (type-2) must yield exactly two bursts with exact
	// byte totals, regardless of the sub-millisecond spacing inside each.
	var s BurstSegmenter
	bursts := feedAll(&s, [][2]int64{
		{0, 1350}, {500, 892},
		{400_000, 1350}, {400_500, 1350}, {401_000, 361},
	})
	if len(bursts) != 2 {
		t.Fatalf("bursts = %d, want 2", len(bursts))
	}
	if bursts[0].Bytes != 2242 || bursts[0].Datagrams != 2 {
		t.Errorf("burst 0 = %+v, want 2242 bytes / 2 datagrams", bursts[0])
	}
	if bursts[1].Bytes != 3061 || bursts[1].Datagrams != 3 {
		t.Errorf("burst 1 = %+v, want 3061 bytes / 3 datagrams", bursts[1])
	}
}

func TestBurstAckOnlyDatagrams(t *testing.T) {
	// Acks (~50 bytes) interleaved mid-burst must not contribute bytes,
	// must not split the burst, and must not extend its life; but an ack
	// arriving after a long silence must close the open burst.
	var s BurstSegmenter
	bursts := feedAll(&s, [][2]int64{
		{0, 1350}, {300, 50}, {600, 892}, // ack inside the write
		{100_000, 47}, // late lone ack: closes the burst, joins nothing
	})
	if len(bursts) != 1 {
		t.Fatalf("bursts = %d, want 1", len(bursts))
	}
	if bursts[0].Bytes != 2242 || bursts[0].Datagrams != 2 {
		t.Errorf("burst = %+v, want 2242 bytes / 2 datagrams (acks transparent)", bursts[0])
	}

	// A stream of only acks yields no bursts at all.
	var s2 BurstSegmenter
	if got := feedAll(&s2, [][2]int64{{0, 50}, {1000, 50}, {200_000, 50}}); len(got) != 0 {
		t.Errorf("ack-only stream produced %d bursts", len(got))
	}
}

func TestBurstGapStraddlesDeliberationWindow(t *testing.T) {
	// Two report writes separated by a deliberation pause barely above
	// the gap threshold must stay two bursts; the same writes squeezed
	// just inside the threshold merge into one. This pins the boundary
	// semantics: the gap is exclusive (spacing == Gap keeps a burst open).
	gap := 25 * time.Millisecond
	s := &BurstSegmenter{Gap: gap}
	above := feedAll(s, [][2]int64{
		{0, 2242},
		{int64(gap/time.Microsecond) + 1, 3061},
	})
	if len(above) != 2 {
		t.Fatalf("spacing just above gap: bursts = %d, want 2", len(above))
	}
	if above[0].Bytes != 2242 || above[1].Bytes != 3061 {
		t.Errorf("bursts = %+v", above)
	}

	s2 := &BurstSegmenter{Gap: gap}
	at := feedAll(s2, [][2]int64{
		{0, 2242},
		{int64(gap / time.Microsecond), 3061},
	})
	if len(at) != 1 || at[0].Bytes != 5303 {
		t.Fatalf("spacing exactly at gap: %+v, want one merged burst of 5303", at)
	}
}

func TestBurstOutOfOrderDelivery(t *testing.T) {
	// UDP reorders: the second datagram of a write can arrive first. The
	// burst must absorb the straggler — same totals, span extended
	// backward — rather than treat the negative gap as a new burst.
	var s BurstSegmenter
	bursts := feedAll(&s, [][2]int64{
		{1000, 1350}, {500, 892}, {1500, 1350},
	})
	if len(bursts) != 1 {
		t.Fatalf("bursts = %d, want 1", len(bursts))
	}
	b := bursts[0]
	if b.Bytes != 3592 || b.Datagrams != 3 {
		t.Errorf("burst = %+v, want 3592 bytes / 3 datagrams", b)
	}
	if got := b.End.Sub(b.Start); got != time.Microsecond*1000 {
		t.Errorf("span = %v, want 1ms (start pulled back to the straggler)", got)
	}
}

func TestBurstFlushAndReuse(t *testing.T) {
	var s BurstSegmenter
	if _, ok := s.Flush(); ok {
		t.Fatal("flush of an empty segmenter returned a burst")
	}
	s.Feed(b0, 1350)
	b, ok := s.Flush()
	if !ok || b.Bytes != 1350 {
		t.Fatalf("flush = %+v, %v", b, ok)
	}
	// The segmenter must be reusable after a flush.
	s.Feed(b0.Add(time.Hour), 500)
	if b, ok := s.Flush(); !ok || b.Bytes != 500 {
		t.Fatalf("post-flush burst = %+v, %v", b, ok)
	}
}
