package attack

import (
	"bytes"
	"io"
	"testing"
	"time"

	"repro/internal/capture"
	"repro/internal/media"
	"repro/internal/pcapio"
	"repro/internal/profiles"
	"repro/internal/script"
	"repro/internal/session"
	"repro/internal/viewer"
	"repro/internal/wire"
)

// runSessionDefended simulates a session with type-1/type-2 reports
// padded to a constant 4096 bytes.
func runSessionDefended(t *testing.T, seed uint64, cond profiles.Condition) *session.Trace {
	t.Helper()
	g := script.Bandersnatch()
	enc := media.Encode(g, media.DefaultLadder, 42)
	pop := viewer.SamplePopulation(1, wire.NewRNG(seed))
	tr, err := session.Run(session.Config{
		Graph: g, Encoding: enc, Viewer: pop[0],
		Condition: cond, SessionID: "defended", Seed: seed,
		Defense: func(label session.WriteLabel, plain int) []int {
			if label == session.LabelType1 || label == session.LabelType2 {
				if plain < 4096 {
					plain = 4096
				}
			}
			return []int{plain}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestCrossConditionTrainingDegrades documents why the paper trains per
// condition: bands learned under Ubuntu/Firefox do not transfer to
// Windows/Firefox, whose reports are ~130 bytes larger.
func TestCrossConditionTrainingDegrades(t *testing.T) {
	aUbuntu := trainedAttacker(t, profiles.Fig2Ubuntu, []uint64{300, 301})
	tr := runSession(t, 42, profiles.Fig2Windows)
	obs := observationFromTrace(t, tr)

	classified := ClassifyRecords(obs.ClientRecords, aUbuntu.Classifier)
	var hits int
	for _, c := range classified {
		if c.Class == ClassType1 || c.Class == ClassType2 {
			hits++
		}
	}
	if hits != 0 {
		t.Errorf("Ubuntu-trained bands matched %d Windows records; conditions should not transfer", hits)
	}

	// And the right training fixes it.
	aWindows := trainedAttacker(t, profiles.Fig2Windows, []uint64{300, 301})
	inf, err := aWindows.Infer(obs)
	if err != nil {
		t.Fatal(err)
	}
	correct, total := ScoreDecisions(inf.Decisions, tr.GroundTruthDecisions())
	if correct != total {
		t.Errorf("condition-matched training recovered %d/%d", correct, total)
	}
}

// TestTruncatedCaptureGraceful injects a mid-stream truncation: the
// pipeline must recover the prefix without panicking and the constrained
// decoder must still return a valid path hypothesis.
func TestTruncatedCaptureGraceful(t *testing.T) {
	a := trainedAttacker(t, profiles.Fig2Ubuntu, []uint64{310, 311})
	tr := runSession(t, 55, profiles.Fig2Ubuntu)
	var buf bytes.Buffer
	if err := capture.WritePcap(&buf, tr, capture.Options{Seed: 55}); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	for _, frac := range []float64{0.25, 0.5, 0.75} {
		cut := int(float64(len(full)) * frac)
		inf, err := a.InferPcap(full[:cut])
		if err != nil {
			// Acceptable for very short prefixes (no conversation yet),
			// but must never panic.
			continue
		}
		if len(inf.Decisions) > len(tr.GroundTruthDecisions()) {
			t.Errorf("truncation at %.0f%% invented %d decisions (truth %d)",
				100*frac, len(inf.Decisions), len(tr.GroundTruthDecisions()))
		}
	}
}

// TestReorderedCaptureStillRecovers shuffles packets within small windows
// (as a busy capture box would deliver them) and re-runs the attack: TCP
// reassembly must absorb the reordering and the inference stay exact.
func TestReorderedCaptureStillRecovers(t *testing.T) {
	a := trainedAttacker(t, profiles.Fig2Ubuntu, []uint64{320, 321})
	tr := runSession(t, 66, profiles.Fig2Ubuntu)
	var buf bytes.Buffer
	if err := capture.WritePcap(&buf, tr, capture.Options{Seed: 66}); err != nil {
		t.Fatal(err)
	}

	// Read all records, shuffle within windows of 4, rewrite.
	r, err := pcapio.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	recs, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	rng := wire.NewRNG(1234)
	for i := 0; i+4 <= len(recs); i += 4 {
		window := recs[i : i+4]
		rng.Shuffle(len(window), func(a, b int) { window[a], window[b] = window[b], window[a] })
	}
	var out bytes.Buffer
	w := pcapio.NewWriter(&out)
	for _, rec := range recs {
		if err := w.WritePacket(rec.Timestamp, rec.Data); err != nil {
			t.Fatal(err)
		}
	}

	inf, err := a.InferPcap(out.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	correct, total := ScoreDecisions(inf.Decisions, tr.GroundTruthDecisions())
	if correct != total {
		t.Errorf("reordered capture recovered %d/%d decisions", correct, total)
	}
}

// TestDuplicatedPacketsStillRecover duplicates every 5th packet
// (retransmissions / capture duplicates); reassembly must dedupe.
func TestDuplicatedPacketsStillRecover(t *testing.T) {
	a := trainedAttacker(t, profiles.Fig2Ubuntu, []uint64{330, 331})
	tr := runSession(t, 77, profiles.Fig2Ubuntu)
	var buf bytes.Buffer
	if err := capture.WritePcap(&buf, tr, capture.Options{Seed: 77}); err != nil {
		t.Fatal(err)
	}
	r, err := pcapio.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	w := pcapio.NewWriter(&out)
	i := 0
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := w.WritePacket(rec.Timestamp, rec.Data); err != nil {
			t.Fatal(err)
		}
		if i%5 == 0 {
			if err := w.WritePacket(rec.Timestamp.Add(time.Millisecond), rec.Data); err != nil {
				t.Fatal(err)
			}
		}
		i++
	}
	inf, err := a.InferPcap(out.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	correct, total := ScoreDecisions(inf.Decisions, tr.GroundTruthDecisions())
	if correct != total {
		t.Errorf("duplicated capture recovered %d/%d decisions", correct, total)
	}
}

// TestForeignTrafficIgnored interleaves unrelated frames (ARP-like, other
// flows) into the capture; the extractor must pick the streaming
// conversation and ignore the rest.
func TestForeignTrafficIgnored(t *testing.T) {
	a := trainedAttacker(t, profiles.Fig2Ubuntu, []uint64{340, 341})
	tr := runSession(t, 88, profiles.Fig2Ubuntu)
	var buf bytes.Buffer
	if err := capture.WritePcap(&buf, tr, capture.Options{Seed: 88}); err != nil {
		t.Fatal(err)
	}
	r, err := pcapio.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	w := pcapio.NewWriter(&out)
	junk := make([]byte, 60) // undecodable frame (bad ethertype)
	junk[12], junk[13] = 0x08, 0x06
	i := 0
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if i%7 == 0 {
			if err := w.WritePacket(rec.Timestamp, junk); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.WritePacket(rec.Timestamp, rec.Data); err != nil {
			t.Fatal(err)
		}
		i++
	}
	inf, err := a.InferPcap(out.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	correct, total := ScoreDecisions(inf.Decisions, tr.GroundTruthDecisions())
	if correct != total {
		t.Errorf("capture with foreign traffic recovered %d/%d decisions", correct, total)
	}
}

// TestDefendedTrafficDefeatsRecordAttack is the C1 negative control at
// the unit level: padding makes the trained bands miss everything.
func TestDefendedTrafficDefeatsRecordAttack(t *testing.T) {
	a := trainedAttacker(t, profiles.Fig2Ubuntu, []uint64{350, 351})
	tr := runSessionDefended(t, 99, profiles.Fig2Ubuntu)
	obs := observationFromTrace(t, tr)
	classified := ClassifyRecords(obs.ClientRecords, a.Classifier)
	for _, c := range classified {
		if c.Class != ClassOther {
			t.Fatalf("padded record of %d bytes classified %v", c.Record.Length, c.Class)
		}
	}
}
