package attack

import (
	"fmt"
	"math"
	"time"

	"repro/internal/script"
	"repro/internal/tlsrec"
)

// ClassifiedRecord pairs an observed client record with its classification.
type ClassifiedRecord struct {
	Record     tlsrec.Record
	Class      Class
	Confidence float64
}

// ClassifyRecords runs the classifier over the client application records.
func ClassifyRecords(recs []tlsrec.Record, c Classifier) []ClassifiedRecord {
	out := make([]ClassifiedRecord, 0, len(recs))
	for _, r := range recs {
		if r.Type != tlsrec.ContentApplicationData {
			continue
		}
		cls, conf := c.Classify(r.Length)
		out = append(out, ClassifiedRecord{Record: r, Class: cls, Confidence: conf})
	}
	return out
}

// InferredChoice is one decoded choice: the i-th question encountered and
// whether the viewer took the default branch.
type InferredChoice struct {
	Index       int
	TookDefault bool
	// QuestionAt is the capture time of the type-1 record.
	QuestionAt time.Time
	// DecidedAt is the capture time of the type-2 record for non-default
	// choices (zero when the default was taken: no second report exists).
	DecidedAt time.Time
}

// DecodeChoices converts a classified record sequence into a choice
// sequence using the paper's rule: each type-1 record marks a question;
// a type-2 record before the next type-1 marks the non-default branch at
// that question, otherwise the default was taken.
func DecodeChoices(recs []ClassifiedRecord) []InferredChoice {
	var out []InferredChoice
	for _, r := range recs {
		switch r.Class {
		case ClassType1:
			out = append(out, InferredChoice{
				Index: len(out), TookDefault: true, QuestionAt: r.Record.Time,
			})
		case ClassType2:
			if len(out) == 0 {
				// A type-2 with no preceding type-1 is a classifier slip;
				// ignore it (the constrained decoder handles these better).
				continue
			}
			out[len(out)-1].TookDefault = false
			out[len(out)-1].DecidedAt = r.Record.Time
		}
	}
	return out
}

// Decisions converts inferred choices to the decision vector.
func Decisions(choices []InferredChoice) []bool {
	out := make([]bool, len(choices))
	for i, c := range choices {
		out[i] = c.TookDefault
	}
	return out
}

// --- Graph-constrained decoding ----------------------------------------------
//
// The plain decoder trusts every classification. The constrained decoder
// instead searches over all root-to-ending paths of the script graph and
// scores each path's expected report sequence against the observed,
// confidence-weighted classifications; the best-scoring path wins. This
// corrects isolated classifier slips (e.g. a telemetry record that fell
// into a band) because wrong report sequences rarely correspond to any
// valid path.

// PathHypothesis is one scored candidate.
type PathHypothesis struct {
	Decisions []bool
	Score     float64
}

// ConstrainedDecode enumerates the graph's decision vectors (binary
// choices make this 2^depth, bounded by maxChoices) and returns the best
// hypothesis. Records classified ClassOther contribute nothing; the
// score matches observed type-1/type-2 events against each candidate
// path's expected sequence.
func ConstrainedDecode(g *script.Graph, recs []ClassifiedRecord, maxChoices int) (PathHypothesis, error) {
	observed := observedEvents(recs)
	best := PathHypothesis{Score: math.Inf(-1)}
	n := 0
	enumeratePaths(g, maxChoices, func(decisions []bool) {
		n++
		score := scorePath(decisions, observed)
		if score > best.Score {
			best = PathHypothesis{
				Decisions: append([]bool(nil), decisions...),
				Score:     score,
			}
		}
	})
	if n == 0 {
		return best, fmt.Errorf("attack: graph has no complete paths within %d choices", maxChoices)
	}
	return best, nil
}

// observedEvent is a type-1 or type-2 observation with confidence.
type observedEvent struct {
	class Class
	conf  float64
}

func observedEvents(recs []ClassifiedRecord) []observedEvent {
	var out []observedEvent
	for _, r := range recs {
		if r.Class == ClassType1 || r.Class == ClassType2 {
			out = append(out, observedEvent{class: r.Class, conf: r.Confidence})
		}
	}
	return out
}

// expectedEvents renders the report sequence a decision vector produces:
// type-1 at each choice, followed by type-2 when the alternative is taken.
func expectedEvents(decisions []bool) []Class {
	var out []Class
	for _, d := range decisions {
		out = append(out, ClassType1)
		if !d {
			out = append(out, ClassType2)
		}
	}
	return out
}

// scorePath aligns the expected sequence against the observations with a
// simple edit-style score: matches earn the observation's confidence,
// mismatches and indels pay a penalty. Alignment is needed because a slip
// can insert or delete an event.
func scorePath(decisions []bool, observed []observedEvent) float64 {
	expected := expectedEvents(decisions)
	const gapPenalty = -1.2
	const mismatchPenalty = -1.5
	// Needleman–Wunsch over (expected × observed).
	m, n := len(expected), len(observed)
	prev := make([]float64, n+1)
	cur := make([]float64, n+1)
	for j := 1; j <= n; j++ {
		prev[j] = prev[j-1] + gapPenalty
	}
	for i := 1; i <= m; i++ {
		cur[0] = prev[0] + gapPenalty
		for j := 1; j <= n; j++ {
			match := mismatchPenalty
			if expected[i-1] == observed[j-1].class {
				match = observed[j-1].conf
			}
			cur[j] = math.Max(prev[j-1]+match,
				math.Max(prev[j]+gapPenalty, cur[j-1]+gapPenalty))
		}
		prev, cur = cur, prev
	}
	return prev[n]
}

// enumeratePaths walks every root-to-ending decision vector of g up to
// maxChoices deep, invoking fn with each complete vector.
func enumeratePaths(g *script.Graph, maxChoices int, fn func([]bool)) {
	var rec func(id script.SegmentID, decisions []bool)
	rec = func(id script.SegmentID, decisions []bool) {
		for {
			s, ok := g.Segment(id)
			if !ok {
				return
			}
			if s.Ending {
				fn(decisions)
				return
			}
			if s.Choice == nil {
				id = s.Next
				continue
			}
			if len(decisions) >= maxChoices {
				return // too deep; prune
			}
			rec(s.Choice.Default, append(decisions, true))
			rec(s.Choice.Alternative, append(decisions, false))
			return
		}
	}
	rec(g.Start, nil)
}
