package attack

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/script"
	"repro/internal/tlsrec"
)

// ClassifiedRecord pairs an observed client record with its classification.
type ClassifiedRecord struct {
	Record     tlsrec.Record
	Class      Class
	Confidence float64
	// SoftClass and SoftConfidence carry a weak secondary hypothesis for
	// records classified ClassOther whose length falls just outside a
	// learned band — the signature of a report whose band drifted between
	// profiling and attack (longer sessions, other browser builds). The
	// decoder treats them as speculative evidence: cheap to ignore,
	// rewarded when a path explains them at the right time. Zero-valued
	// when no band is near or the classifier has no soft refinement.
	SoftClass      Class
	SoftConfidence float64
}

// ClassifyRecords runs the classifier over the client application records.
func ClassifyRecords(recs []tlsrec.Record, c Classifier) []ClassifiedRecord {
	soft, _ := c.(SoftClassifier)
	out := make([]ClassifiedRecord, 0, len(recs))
	for _, r := range recs {
		if r.Type != tlsrec.ContentApplicationData {
			continue
		}
		out = append(out, classifyRecord(r, c, soft))
	}
	return out
}

// classifyRecord classifies a single application record — the unit the
// streaming monitor applies as each record completes, and the body of the
// batch ClassifyRecords loop, so both paths classify identically.
func classifyRecord(r tlsrec.Record, c Classifier, soft SoftClassifier) ClassifiedRecord {
	cls, conf := c.Classify(r.Length)
	cr := ClassifiedRecord{Record: r, Class: cls, Confidence: conf}
	if cls == ClassOther && soft != nil {
		cr.SoftClass, cr.SoftConfidence = soft.SoftClassify(r.Length)
	}
	return cr
}

// InferredChoice is one decoded choice: the i-th question encountered and
// whether the viewer took the default branch.
type InferredChoice struct {
	Index       int
	TookDefault bool
	// QuestionAt is the capture time of the type-1 record.
	QuestionAt time.Time
	// DecidedAt is the capture time of the type-2 record for non-default
	// choices (zero when the default was taken: no second report exists).
	DecidedAt time.Time
}

// DecodeChoices converts a classified record sequence into a choice
// sequence using the paper's rule: each type-1 record marks a question;
// a type-2 record before the next type-1 marks the non-default branch at
// that question, otherwise the default was taken.
func DecodeChoices(recs []ClassifiedRecord) []InferredChoice {
	var out []InferredChoice
	for _, r := range recs {
		switch r.Class {
		case ClassType1:
			out = append(out, InferredChoice{
				Index: len(out), TookDefault: true, QuestionAt: r.Record.Time,
			})
		case ClassType2:
			if len(out) == 0 {
				// A type-2 with no preceding type-1 is a classifier slip;
				// ignore it (the constrained decoder handles these better).
				continue
			}
			out[len(out)-1].TookDefault = false
			out[len(out)-1].DecidedAt = r.Record.Time
		}
	}
	return out
}

// Decisions converts inferred choices to the decision vector.
func Decisions(choices []InferredChoice) []bool {
	out := make([]bool, len(choices))
	for i, c := range choices {
		out[i] = c.TookDefault
	}
	return out
}

// --- Graph-constrained decoding ----------------------------------------------
//
// The plain decoder trusts every classification. The constrained decoder
// instead searches over all root-to-ending paths of the script graph and
// scores each path's expected report sequence against the observed,
// confidence-weighted classifications; the best-scoring path wins. This
// corrects isolated classifier slips (e.g. a telemetry record that fell
// into a band) because wrong report sequences rarely correspond to any
// valid path.
//
// Two properties make the score honest for long sessions:
//
//   - It is time-aware. Every expected event carries the playback-time
//     offset at which its report must appear (segment durations plus the
//     nominal half of each earlier decision window), and every observation
//     carries its capture timestamp. A candidate only earns a match when
//     the classes agree AND the times align within a slack that grows with
//     elapsed playback — so a short path can no longer "explain" a report
//     captured minutes after it would have ended.
//   - It is length-normalized. The raw alignment score is divided by the
//     alignment size, so a long true walk that explains most observations
//     beats a short escape path that merely pays fewer penalties in total.
//
// Unexplained high-confidence observations additionally pay a
// per-event, confidence-scaled penalty: evidence a path cannot account
// for counts against it, which is what broke the pre-fix decoder (it
// charged a flat indel cost, making "see nothing, claim the shortest
// path" the cheapest hypothesis).

// PathHypothesis is one scored candidate.
type PathHypothesis struct {
	// Decisions is the candidate decision vector (true = default).
	Decisions []bool
	// Score is the calibrated per-event alignment score: raw alignment
	// divided by (expected events + hard observations), so hypotheses are
	// comparable across paths and across sessions of different lengths.
	Score float64
	// Matched counts the hard (in-band) observations the path explains.
	Matched int
	// Events is the number of state reports the path is expected to emit.
	Events int

	// match maps expected-event index -> classified-record index for the
	// alignment that produced Score (-1 for unmatched); populated only for
	// hypotheses returned by Decode, and used to rebuild choice timestamps.
	match []int
}

// ExpectedEvent is one state report a path is expected to emit.
type ExpectedEvent struct {
	Class Class
	// Choice is the index of the choice that emits this report.
	Choice int
	// Offset is the nominal playback-time offset (seconds since session
	// start) at which the report is sent: cumulative segment durations
	// plus half of every earlier decision window (the viewer's expected
	// deliberation).
	Offset float64
	// Slack is the alignment tolerance (seconds) at this event: a base
	// allowance plus the deliberation uncertainty accumulated so far plus
	// a fraction of elapsed playback for stall/download drift.
	Slack float64
}

// TablePath is one precomputed root-to-ending walk.
type TablePath struct {
	Decisions []bool
	Segments  []script.SegmentID
	Events    []ExpectedEvent
}

// PathTable is the per-graph decoding table: every complete decision
// vector with its expected report sequence and cumulative playback-time
// offsets. Built once per (graph, maxChoices) and shared across bulk
// inferences — the pre-table decoder re-enumerated 2^depth paths on every
// call.
type PathTable struct {
	MaxChoices int
	Paths      []TablePath
}

// Timing-model constants for expected-event offsets. The session clock
// runs ahead of pure playback time by download pacing and rebuffering,
// and each choice adds an unknown deliberation in [0, window]; slack
// absorbs both. Deliberations are independent per choice, so their
// accumulated uncertainty grows in quadrature, not linearly — a linear
// model makes late-film slack so wide that a mistimed event one choice
// early can absorb an observation that belongs to the next one.
const (
	baseSlackSec = 10.0
	driftFrac    = 0.05
)

// NewPathTable builds the decoding table for g.
func NewPathTable(g *script.Graph, maxChoices int) (*PathTable, error) {
	t := &PathTable{MaxChoices: maxChoices}
	g.WalkPaths(maxChoices, func(p script.Path) {
		tp := TablePath{Decisions: p.Decisions, Segments: p.Segments}
		var cum, delib, spreadSq float64 // playback s, nominal deliberation s, deliberation variance s²
		di := 0
		for _, id := range p.Segments {
			s, ok := g.Segment(id)
			if !ok {
				continue
			}
			cum += s.Duration.Seconds()
			if s.Choice == nil || di >= len(p.Decisions) {
				continue
			}
			w := s.Choice.Window.Seconds()
			slack := baseSlackSec + math.Sqrt(spreadSq) + driftFrac*cum
			tp.Events = append(tp.Events, ExpectedEvent{
				Class: ClassType1, Choice: di, Offset: cum + delib, Slack: slack,
			})
			if !p.Decisions[di] {
				// The type-2 report lands somewhere inside the decision
				// window; expect it mid-window with widened slack.
				tp.Events = append(tp.Events, ExpectedEvent{
					Class: ClassType2, Choice: di, Offset: cum + delib + w/2, Slack: slack + w/2,
				})
			}
			delib += w / 2
			spreadSq += (w / 2) * (w / 2)
			di++
		}
		t.Paths = append(t.Paths, tp)
	})
	if len(t.Paths) == 0 {
		return nil, fmt.Errorf("attack: graph has no complete paths within %d choices", maxChoices)
	}
	return t, nil
}

// pathTableCache memoizes tables process-wide, the same pattern
// media.EncodeCached uses for title encodings: content-keyed (graph
// pointer identity deliberately does not matter — repeated
// script.Bandersnatch() and dataset.Generate calls build fresh but
// identical graphs, and a pointer key would leak one table per build)
// and bounded, emptied wholesale when full (tables are cheap to rebuild
// and workloads cycle very few keys).
var pathTableCache struct {
	sync.Mutex
	m map[string]*PathTable
}

const pathTableCacheLimit = 16

// pathTableKey fingerprints everything the table depends on: the start
// segment, every segment's duration and successors, each choice's
// branches and decision window, and the enumeration depth.
func pathTableKey(g *script.Graph, maxChoices int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\x00%s\x00%d\x00", g.Title, g.Start, maxChoices)
	for _, s := range g.Segments() {
		fmt.Fprintf(&b, "%s\x01%d\x01%s\x01%v\x01", s.ID, s.Duration, s.Next, s.Ending)
		if c := s.Choice; c != nil {
			fmt.Fprintf(&b, "%s\x02%s\x02%d", c.Default, c.Alternative, c.Window)
		}
		b.WriteByte(0)
	}
	return b.String()
}

// PathTableFor returns the shared decoding table for (g, maxChoices),
// building it at most once per distinct graph content. The returned
// table is read-only and safe to share across goroutines.
func PathTableFor(g *script.Graph, maxChoices int) (*PathTable, error) {
	key := pathTableKey(g, maxChoices)
	pathTableCache.Lock()
	if t, ok := pathTableCache.m[key]; ok {
		pathTableCache.Unlock()
		return t, nil
	}
	pathTableCache.Unlock()

	t, err := NewPathTable(g, maxChoices)
	if err != nil {
		return nil, err
	}

	pathTableCache.Lock()
	defer pathTableCache.Unlock()
	if prior, ok := pathTableCache.m[key]; ok {
		return prior, nil // a racing builder won; keep one canonical copy
	}
	if pathTableCache.m == nil || len(pathTableCache.m) >= pathTableCacheLimit {
		pathTableCache.m = make(map[string]*PathTable)
	}
	pathTableCache.m[key] = t
	return t, nil
}

// DecodeParams tune the alignment score. The zero value selects the
// defaults, so callers can set individual knobs without spelling out the
// rest.
type DecodeParams struct {
	// TopK bounds the ranked hypothesis list Decode returns (default 3).
	TopK int
	// ExpectedGapPenalty is charged per expected report that no
	// observation accounts for — kept mild, because band drift and
	// classifier slips legitimately hide true events (default 0.4).
	ExpectedGapPenalty float64
	// ObservedGapPenalty is charged per unexplained hard observation,
	// scaled by its confidence: a path that cannot account for an in-band
	// report it supposedly produced is probably wrong (default 1.5).
	ObservedGapPenalty float64
	// MismatchPenalty is charged when an expected report aligns against
	// an observation of the other class (default 1.5).
	MismatchPenalty float64
	// SoftSkipPenalty is charged per unexplained soft observation —
	// nearly free, soft evidence is speculative (default 0.02).
	SoftSkipPenalty float64
}

// DefaultDecodeParams returns the tuned defaults.
func DefaultDecodeParams() DecodeParams {
	return DecodeParams{
		TopK:               3,
		ExpectedGapPenalty: 0.4,
		ObservedGapPenalty: 1.5,
		MismatchPenalty:    1.5,
		SoftSkipPenalty:    0.02,
	}
}

func (p DecodeParams) withDefaults() DecodeParams {
	d := DefaultDecodeParams()
	if p.TopK <= 0 {
		p.TopK = d.TopK
	}
	if p.ExpectedGapPenalty <= 0 {
		p.ExpectedGapPenalty = d.ExpectedGapPenalty
	}
	if p.ObservedGapPenalty <= 0 {
		p.ObservedGapPenalty = d.ObservedGapPenalty
	}
	if p.MismatchPenalty <= 0 {
		p.MismatchPenalty = d.MismatchPenalty
	}
	if p.SoftSkipPenalty <= 0 {
		p.SoftSkipPenalty = d.SoftSkipPenalty
	}
	return p
}

// observedEvent is a type-1 or type-2 observation with confidence and a
// capture-time offset from the session anchor.
type observedEvent struct {
	class  Class
	conf   float64
	hard   bool
	recIdx int     // index into the classified record slice
	offset float64 // seconds since anchor
	timed  bool    // false when the record carried no timestamp
}

// observedEvents extracts hard (in-band) and soft (near-band) report
// observations. anchor approximates session start; when zero, the first
// classified record's time is used (the first chunk request fires ~200ms
// after the handshake, well inside every slack).
func observedEvents(recs []ClassifiedRecord, anchor time.Time) []observedEvent {
	if anchor.IsZero() {
		for _, r := range recs {
			if !r.Record.Time.IsZero() {
				anchor = r.Record.Time
				break
			}
		}
	}
	var out []observedEvent
	for i, r := range recs {
		if ev, ok := observedEventFrom(r, i, anchor); ok {
			out = append(out, ev)
		}
	}
	return out
}

// observedEventFrom builds the observation for one classified record —
// hard for in-band reports, soft for near-band refinements — or reports
// ok=false for records that carry no report evidence. The streaming
// monitor uses it to extend a flow's observation sequence one record at a
// time, with exactly the batch extraction's semantics.
func observedEventFrom(r ClassifiedRecord, idx int, anchor time.Time) (observedEvent, bool) {
	ev := observedEvent{recIdx: idx}
	switch {
	case r.Class == ClassType1 || r.Class == ClassType2:
		ev.class, ev.conf, ev.hard = r.Class, r.Confidence, true
	case r.SoftConfidence > 0:
		ev.class, ev.conf = r.SoftClass, r.SoftConfidence
	default:
		return observedEvent{}, false
	}
	if !r.Record.Time.IsZero() && !anchor.IsZero() {
		ev.offset = r.Record.Time.Sub(anchor).Seconds()
		ev.timed = true
	}
	return ev, true
}

// Decode scores every table path against the classified records and
// returns the top-k hypotheses, best first. anchor is the capture time of
// session start (the first client record); pass the zero time to fall
// back to the first classified record. The returned scores are
// normalized per event, so the margin between ranks is a calibrated
// decode confidence.
func (t *PathTable) Decode(recs []ClassifiedRecord, anchor time.Time, prm DecodeParams) ([]PathHypothesis, error) {
	if len(t.Paths) == 0 {
		return nil, fmt.Errorf("attack: empty path table")
	}
	prm = prm.withDefaults()
	obs := observedEvents(recs, anchor)
	nHard := 0
	for _, o := range obs {
		if o.hard {
			nHard++
		}
	}
	// Scratch NW rows sized for the longest expected sequence.
	maxM := 0
	for i := range t.Paths {
		if m := len(t.Paths[i].Events); m > maxM {
			maxM = m
		}
	}
	scratch := newAligner(maxM, len(obs))

	hyps := make([]PathHypothesis, len(t.Paths))
	order := make([]int, len(t.Paths))
	for i := range t.Paths {
		p := &t.Paths[i]
		raw := scratch.score(p.Events, obs, prm)
		denom := float64(len(p.Events) + nHard)
		if denom < 1 {
			denom = 1
		}
		hyps[i] = PathHypothesis{
			Decisions: p.Decisions,
			Score:     raw / denom,
			Events:    len(p.Events),
		}
		order[i] = i
	}
	// Rank best-first on the score nudged by a tiny Occam prior (1e-7 per
	// expected event): when evidence does not discriminate — e.g. fully
	// padded traffic, where every path ties up to float rounding — the
	// fewest-events path wins, and exact ties keep enumeration order
	// (defaults-first, earliest ending first). That reproduces the blind
	// all-defaults prior instead of letting 1-ulp noise pick a walk. The
	// nudge is orders of magnitude below any real decode margin and is
	// excluded from the reported Score.
	rank := func(i int) float64 { return hyps[i].Score - 1e-7*float64(hyps[i].Events) }
	sort.SliceStable(order, func(a, b int) bool {
		return rank(order[a]) > rank(order[b])
	})
	k := prm.TopK
	if k > len(order) {
		k = len(order)
	}
	out := make([]PathHypothesis, 0, k)
	for _, idx := range order[:k] {
		h := hyps[idx]
		// Hand out a copy: the table's vectors are shared across every
		// inference in the process and must never alias caller state.
		h.Decisions = append([]bool(nil), h.Decisions...)
		h.match, h.Matched = scratch.traceback(t.Paths[idx].Events, obs, prm)
		out = append(out, h)
	}
	return out, nil
}

// ConstrainedDecode scores the graph's complete decision vectors against
// the classified records and returns the best hypothesis. It is the
// single-shot form of PathTable.Decode and shares the memoized table.
func ConstrainedDecode(g *script.Graph, recs []ClassifiedRecord, maxChoices int) (PathHypothesis, error) {
	t, err := PathTableFor(g, maxChoices)
	if err != nil {
		return PathHypothesis{Score: math.Inf(-1)}, err
	}
	hyps, err := t.Decode(recs, time.Time{}, DecodeParams{TopK: 1})
	if err != nil {
		return PathHypothesis{Score: math.Inf(-1)}, err
	}
	return hyps[0], nil
}

// --- Needleman–Wunsch alignment ----------------------------------------------

// aligner holds reusable scoring state: two rolling rows for the cheap
// scoring pass, plus full score and move matrices for the ranked
// hypotheses' tracebacks — all reused across paths within one Decode.
type aligner struct {
	prev, cur []float64
	grid      []float64 // (m+1)*(n+1) score matrix, reused per traceback
	moves     []byte    // (m+1)*(n+1) move matrix, reused per traceback
}

const (
	moveDiag = byte(iota + 1)
	moveUp   // gap in observed (expected event unobserved)
	moveLeft // gap in expected (observation unexplained)
)

func newAligner(maxM, n int) *aligner {
	full := (maxM + 1) * (n + 1)
	return &aligner{
		prev:  make([]float64, n+1),
		cur:   make([]float64, n+1),
		grid:  make([]float64, full),
		moves: make([]byte, full),
	}
}

// cell scores aligning expected event e against observation o.
func alignScore(e ExpectedEvent, o observedEvent, prm DecodeParams) float64 {
	if e.Class != o.class {
		// Soft observations mismatch mildly: they were never confidently
		// claimed to be reports at all.
		return -prm.MismatchPenalty * o.conf
	}
	return o.conf * timeFactor(e, o)
}

// timeFactor scales a class match by temporal plausibility with a
// Gaussian decay in the deviation measured in slacks: a report near its
// expected time keeps its full confidence, one a whole slack out keeps
// ~61%, and one several slacks out earns effectively nothing — at which
// point the aligner's gap options take over.
func timeFactor(e ExpectedEvent, o observedEvent) float64 {
	if !o.timed {
		return 1
	}
	dev := math.Abs(o.offset-e.Offset) / e.Slack
	return math.Exp(-0.5 * dev * dev)
}

// skipObserved is the cost of leaving observation o unexplained.
func skipObserved(o observedEvent, prm DecodeParams) float64 {
	if o.hard {
		return -prm.ObservedGapPenalty * o.conf
	}
	return -prm.SoftSkipPenalty
}

// score runs the rolling-row NW pass and returns the raw alignment score.
func (a *aligner) score(expected []ExpectedEvent, obs []observedEvent, prm DecodeParams) float64 {
	m, n := len(expected), len(obs)
	prev, cur := a.prev[:n+1], a.cur[:n+1]
	prev[0] = 0
	for j := 1; j <= n; j++ {
		prev[j] = prev[j-1] + skipObserved(obs[j-1], prm)
	}
	for i := 1; i <= m; i++ {
		cur[0] = prev[0] - prm.ExpectedGapPenalty
		for j := 1; j <= n; j++ {
			best := prev[j-1] + alignScore(expected[i-1], obs[j-1], prm)
			if up := prev[j] - prm.ExpectedGapPenalty; up > best {
				best = up
			}
			if left := cur[j-1] + skipObserved(obs[j-1], prm); left > best {
				best = left
			}
			cur[j] = best
		}
		prev, cur = cur, prev
	}
	return prev[n]
}

// --- Incremental prefix alignment --------------------------------------------
//
// The streaming monitor cannot afford to re-run the full alignment on
// every feed: it extends the DP column-by-column instead. For each
// candidate path the aligner keeps the Needleman–Wunsch column
// S[0..m][j] — the score of aligning the path's first i expected events
// against all j observations so far — and each new observation advances
// every column by one step in O(events) per path. The recurrence, the
// candidate order and therefore the floating-point results are identical
// to the batch aligner's, so the column's final cell after the last
// observation equals the batch raw score exactly; the running ranking in
// between scores the best *prefix* of each path, which is what a partial
// session can honestly be compared against.

// prefixAligner is the incremental per-flow decoding state.
type prefixAligner struct {
	table  *PathTable
	prm    DecodeParams
	cols   [][]float64 // per path: S[0..m][observations so far]
	scores []float64   // scratch: per-path prefix scores for one ranking
	nObs   int
	nHard  int
}

// newPrefixAligner initializes the zero-observation columns (every
// expected event unmatched).
func newPrefixAligner(t *PathTable, prm DecodeParams) *prefixAligner {
	pa := &prefixAligner{table: t, prm: prm.withDefaults()}
	pa.cols = make([][]float64, len(t.Paths))
	for i := range t.Paths {
		col := make([]float64, len(t.Paths[i].Events)+1)
		for j := 1; j < len(col); j++ {
			col[j] = col[j-1] - pa.prm.ExpectedGapPenalty
		}
		pa.cols[i] = col
	}
	return pa
}

// observe extends every path's column with one new observation.
func (pa *prefixAligner) observe(o observedEvent) {
	pa.nObs++
	if o.hard {
		pa.nHard++
	}
	skip := skipObserved(o, pa.prm)
	for pi := range pa.table.Paths {
		events := pa.table.Paths[pi].Events
		col := pa.cols[pi]
		prevDiag := col[0] // S[i-1][j-1], seeded with S[0][j-1]
		col[0] += skip
		for i := 1; i <= len(events); i++ {
			oldCol := col[i] // S[i][j-1]
			best := prevDiag + alignScore(events[i-1], o, pa.prm)
			if up := col[i-1] - pa.prm.ExpectedGapPenalty; up > best {
				best = up
			}
			if left := oldCol + skip; left > best {
				best = left
			}
			col[i] = best
			prevDiag = oldCol
		}
	}
}

// prefixScore is a path's running score: the best per-event-normalized
// alignment over every prefix of its expected events, so a long path is
// judged on the part of the film that has plausibly played out rather
// than charged for reports that are not yet due.
func (pa *prefixAligner) prefixScore(pi int) float64 {
	col := pa.cols[pi]
	best := math.Inf(-1)
	for i, v := range col {
		denom := float64(i + pa.nHard)
		if denom < 1 {
			denom = 1
		}
		if s := v / denom; s > best {
			best = s
		}
	}
	return best
}

// ranking returns the running best path index and the margin to the best
// path that *disagrees within the first k decisions* — the choices the
// session has evidenced so far. Competing completions of the same
// decision prefix are indistinguishable mid-session by construction, so
// the margin measures confidence in what has actually been decided; it is
// 0 while nothing discriminates (k = 0, or a single path). Candidates are
// ranked with the batch decoder's Occam nudge (fewest expected events
// wins a tie, enumeration order breaks exact ties), so under
// non-discriminating evidence the live best hypothesis agrees with what
// Decode will finalize.
func (pa *prefixAligner) ranking(k int) (best int, margin float64) {
	if cap(pa.scores) < len(pa.cols) {
		pa.scores = make([]float64, len(pa.cols))
	}
	scores := pa.scores[:len(pa.cols)]
	rank := func(pi int) float64 {
		return scores[pi] - 1e-7*float64(len(pa.table.Paths[pi].Events))
	}
	bestRank := math.Inf(-1)
	for pi := range pa.cols {
		scores[pi] = pa.prefixScore(pi)
		if r := rank(pi); r > bestRank {
			bestRank, best = r, pi
		}
	}
	bestDec := pa.table.Paths[best].Decisions
	rival, found := math.Inf(-1), false
	for pi := range pa.cols {
		if !prefixEqual(pa.table.Paths[pi].Decisions, bestDec, k) && scores[pi] > rival {
			rival, found = scores[pi], true
		}
	}
	if !found {
		return best, 0
	}
	// The margin, like the batch DecodeMargin, is the raw score gap.
	if m := scores[best] - rival; m > 0 {
		return best, m
	}
	return best, 0
}

// prefixEqual reports whether two decision vectors agree on their first k
// entries (shorter vectors compare over their available length; a length
// difference inside the prefix is a disagreement).
func prefixEqual(a, b []bool, k int) bool {
	for i := 0; i < k; i++ {
		if i >= len(a) || i >= len(b) {
			return len(a) == len(b)
		}
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// traceback re-runs the alignment with a full move matrix and returns the
// expected-event -> record-index match table plus the hard-match count.
func (a *aligner) traceback(expected []ExpectedEvent, obs []observedEvent, prm DecodeParams) ([]int, int) {
	m, n := len(expected), len(obs)
	need := (m + 1) * (n + 1)
	if cap(a.moves) < need {
		a.moves = make([]byte, need)
		a.grid = make([]float64, need)
	}
	moves, row := a.moves[:need], a.grid[:need]
	at := func(i, j int) int { return i*(n+1) + j }

	for j := 1; j <= n; j++ {
		row[at(0, j)] = row[at(0, j-1)] + skipObserved(obs[j-1], prm)
		moves[at(0, j)] = moveLeft
	}
	for i := 1; i <= m; i++ {
		row[at(i, 0)] = row[at(i-1, 0)] - prm.ExpectedGapPenalty
		moves[at(i, 0)] = moveUp
		for j := 1; j <= n; j++ {
			best := row[at(i-1, j-1)] + alignScore(expected[i-1], obs[j-1], prm)
			move := moveDiag
			if up := row[at(i-1, j)] - prm.ExpectedGapPenalty; up > best {
				best, move = up, moveUp
			}
			if left := row[at(i, j-1)] + skipObserved(obs[j-1], prm); left > best {
				best, move = left, moveLeft
			}
			row[at(i, j)] = best
			moves[at(i, j)] = move
		}
	}

	match := make([]int, m)
	for i := range match {
		match[i] = -1
	}
	matched := 0
	for i, j := m, n; i > 0 || j > 0; {
		switch moves[at(i, j)] {
		case moveDiag:
			if expected[i-1].Class == obs[j-1].class {
				match[i-1] = obs[j-1].recIdx
				if obs[j-1].hard {
					matched++
				}
			}
			i, j = i-1, j-1
		case moveUp:
			i--
		default:
			j--
		}
	}
	return match, matched
}
