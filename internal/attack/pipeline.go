// Package attack implements the paper's contribution: recovering the
// choices a viewer made in an interactive movie from passively captured
// encrypted traffic, using client-side SSL record lengths as the
// side-channel.
//
// The pipeline is capture → TCP reassembly → TLS record extraction →
// record-length classification (type-1 / type-2 / other) → choice-sequence
// decoding, optionally constrained by the title's branching script graph.
package attack

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/layers"
	"repro/internal/pcapio"
	"repro/internal/tcpreasm"
	"repro/internal/tlsrec"
)

// Observation is the attacker's view of one TLS connection: the client
// and server record sequences with lengths and timestamps, and nothing
// else (bodies are opaque ciphertext).
type Observation struct {
	// ClientRecords are the client→server records in stream order.
	ClientRecords []tlsrec.Record
	// ServerRecords are the server→client records in stream order.
	ServerRecords []tlsrec.Record
}

// ErrNoTLSConversation is returned when a capture contains no parseable
// TLS conversation.
var ErrNoTLSConversation = errors.New("attack: no TLS conversation in capture")

// ExtractPcap parses a pcap stream and extracts the observation for the
// largest TLS conversation (by total bytes). Undecodable frames are
// skipped, mirroring how an eavesdropper tolerates unrelated traffic.
func ExtractPcap(r io.Reader) (*Observation, error) {
	pr, err := pcapio.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("attack: %w", err)
	}
	return extractFromReader(pr)
}

// ExtractPcapBytes is ExtractPcap over an in-memory capture; the capture
// bytes are never copied (packets and reassembly sub-slice them).
func ExtractPcapBytes(data []byte) (*Observation, error) {
	pr, err := pcapio.NewBytesReader(data)
	if err != nil {
		return nil, fmt.Errorf("attack: %w", err)
	}
	return extractFromReader(pr)
}

func extractFromReader(pr *pcapio.Reader) (*Observation, error) {
	asm := tcpreasm.NewAssembler()
	// Record data sub-slices the reader's arena, which outlives the
	// extraction; reassembly can own the payload slices outright.
	asm.SetStablePayloads(true)
	for {
		rec, err := pr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("attack: reading capture: %w", err)
		}
		p, err := layers.DecodePacket(rec.Timestamp, rec.Data)
		if err != nil {
			continue // non-TCP or foreign traffic
		}
		asm.Feed(p)
	}
	return extractFromAssembler(asm)
}

func extractFromAssembler(asm *tcpreasm.Assembler) (*Observation, error) {
	var best *Observation
	var bestBytes int64
	for _, conv := range asm.Conversations() {
		if conv.ClientToServer == nil || conv.ServerToClient == nil {
			continue
		}
		obs, err := observeConversation(conv)
		if err != nil {
			continue // not TLS
		}
		total := conv.ClientToServer.Len() + conv.ServerToClient.Len()
		if total > bestBytes {
			best, bestBytes = obs, total
		}
	}
	if best == nil {
		return nil, ErrNoTLSConversation
	}
	return best, nil
}

// observeConversation extracts records from both direction streams with
// per-record timestamps recovered from segment arrival times.
func observeConversation(conv tcpreasm.Conversation) (*Observation, error) {
	cRecs, err := recordsFromStream(conv.ClientToServer)
	if err != nil {
		return nil, err
	}
	sRecs, err := recordsFromStream(conv.ServerToClient)
	if err != nil {
		return nil, err
	}
	return &Observation{ClientRecords: cRecs, ServerRecords: sRecs}, nil
}

// recordsFromStream extracts record descriptors straight from the
// reassembled chunk list with a streaming header-only scan: no
// concatenated stream copy, no body buffering. Each record's timestamp is
// the arrival time of the chunk that carried its first header byte —
// identical to the offset lookup the full parse performed.
func recordsFromStream(st *tcpreasm.Stream) ([]tlsrec.Record, error) {
	sc := tlsrec.NewRecordScanner()
	for _, c := range st.Chunks() {
		sc.Feed(c.Time, c.Data)
		if err := sc.Err(); err != nil {
			return nil, err
		}
	}
	return sc.Records(), nil
}

// ApplicationRecords filters an observation's client records down to
// application-data records — the candidates for state-report detection.
func (o *Observation) ApplicationRecords() []tlsrec.Record {
	var out []tlsrec.Record
	for _, r := range o.ClientRecords {
		if r.Type == tlsrec.ContentApplicationData {
			out = append(out, r)
		}
	}
	return out
}
