// Package profiles defines the operational condition axes from the
// paper's Table I (operating system, platform, browser, connection type,
// traffic time) and maps each combination to the concrete wire-level
// parameters that shape SSL record lengths: the negotiated cipher suite,
// the TLS stack's record-splitting behaviour, the HTTP framing overhead a
// given browser adds to the interactive state-report bodies, and the MTU.
//
// Two profiles are calibrated against the paper's Figure 2 so the
// reproduction's record-length histograms land in the published bins:
//
//	(Desktop, Firefox, Ethernet, Ubuntu):  type-1 ≈ 2211–2213 bytes,
//	                                       type-2 ≈ 2992–3017 bytes
//	(Desktop, Firefox, Ethernet, Windows): type-1 ≈ 2341–2343 bytes,
//	                                       type-2 ≈ 3118–3147 bytes
//
// All other combinations derive self-consistent (deterministic) variants:
// the bands move, as the paper observed across conditions, but type-1 and
// type-2 stay separable, which is the invariant the attack relies on.
package profiles

import (
	"fmt"

	"repro/internal/netem"
	"repro/internal/quicrec"
	"repro/internal/tlsrec"
)

// OS is the viewer's operating system (Table I).
type OS string

// Platform is the viewer's device class (Table I).
type Platform string

// Browser is the viewer's browser (Table I).
type Browser string

// Attribute values from Table I.
const (
	OSWindows OS = "windows"
	OSLinux   OS = "linux"
	OSMac     OS = "mac"

	PlatformDesktop Platform = "desktop"
	PlatformLaptop  Platform = "laptop"

	BrowserChrome  Browser = "chrome"
	BrowserFirefox Browser = "firefox"
)

// AllOS, AllPlatforms, AllBrowsers, AllMedia and AllTrafficTimes enumerate
// the Table I axes for dataset generation.
var (
	AllOS           = []OS{OSWindows, OSLinux, OSMac}
	AllPlatforms    = []Platform{PlatformDesktop, PlatformLaptop}
	AllBrowsers     = []Browser{BrowserChrome, BrowserFirefox}
	AllMedia        = []netem.Medium{netem.MediumWired, netem.MediumWireless}
	AllTrafficTimes = []netem.TrafficTime{netem.TrafficMorning, netem.TrafficNoon, netem.TrafficNight}
)

// Condition is one cell of the Table I operational grid.
type Condition struct {
	OS          OS
	Platform    Platform
	Browser     Browser
	Medium      netem.Medium
	TrafficTime netem.TrafficTime
}

// String renders the condition compactly, e.g.
// "desktop/firefox/wired/linux/morning".
func (c Condition) String() string {
	return fmt.Sprintf("%s/%s/%s/%s/%s", c.Platform, c.Browser, c.Medium, c.OS, c.TrafficTime)
}

// Figure-2 conditions from the paper.
var (
	// Fig2Ubuntu is (Desktop, Firefox, Ethernet, Ubuntu).
	Fig2Ubuntu = Condition{OS: OSLinux, Platform: PlatformDesktop,
		Browser: BrowserFirefox, Medium: netem.MediumWired, TrafficTime: netem.TrafficMorning}
	// Fig2Windows is (Desktop, Firefox, Ethernet, Windows).
	Fig2Windows = Condition{OS: OSWindows, Platform: PlatformDesktop,
		Browser: BrowserFirefox, Medium: netem.MediumWired, TrafficTime: netem.TrafficMorning}
)

// Profile is the wire-level behaviour of one condition.
type Profile struct {
	Condition Condition
	// Suite is the negotiated cipher suite; its length arithmetic maps
	// plaintext bytes to ciphertext record lengths.
	Suite tlsrec.CipherSuite
	// Splitter is the TLS stack's record fragmentation rule.
	Splitter tlsrec.Splitter
	// MTU bounds TCP segment payloads on the access link.
	MTU int
	// ClientHelloLen is the browser's ClientHello size (browser- and
	// OS-dependent; the attack must skip handshake records of any size).
	ClientHelloLen int
	// Type1BodyLen is the plaintext size (state-report JSON plus the
	// browser's HTTP framing) of a type-1 report under this condition.
	Type1BodyLen int
	// Type1Jitter is the half-width of uniform size variation of type-1
	// bodies (session tokens of slightly varying length).
	Type1Jitter int
	// Type2BodyLen and Type2Jitter describe type-2 reports likewise.
	Type2BodyLen int
	Type2Jitter  int
	// RequestLen and RequestJitter describe ordinary chunk-request
	// messages ("others" in Figure 2) — small client packets.
	RequestLen    int
	RequestJitter int
	// TelemetryLen describes the periodic large telemetry uploads that
	// form the big-record tail of the "others" class.
	TelemetryLen    int
	TelemetryJitter int
	// Net is the network path parameterization for the condition.
	Net netem.PathParams
}

// gcmOverhead is the record expansion of the default suite; used by the
// Figure-2 calibration arithmetic below.
const gcmOverhead = 24 // 8-byte explicit nonce + 16-byte tag

// Lookup returns the profile for a condition. Every combination of the
// Table I axes yields a valid, deterministic profile.
func Lookup(c Condition) Profile {
	p := Profile{
		Condition:      c,
		Suite:          tlsrec.SuiteAESGCM128TLS12,
		Splitter:       tlsrec.DefaultSplitter,
		MTU:            1500,
		ClientHelloLen: 517,
		// Baseline body sizes before per-axis adjustments: calibrated so
		// the Fig2Ubuntu condition lands exactly in the paper's bins.
		// Record length = body + gcmOverhead, so a 2212-byte record needs
		// a 2188-byte body.
		Type1BodyLen: 2212 - gcmOverhead, Type1Jitter: 1,
		Type2BodyLen: 3004 - gcmOverhead, Type2Jitter: 12,
		RequestLen: 420, RequestJitter: 60,
		TelemetryLen: 4600, TelemetryJitter: 260,
		Net: netem.Profile(c.Medium, c.TrafficTime),
	}

	// OS shifts: user-agent strings, cookie jars and platform headers
	// change the HTTP request size. Windows Firefox lands in the paper's
	// second Figure 2 panel: type-1 ≈ 2342, type-2 ≈ 3132.
	switch c.OS {
	case OSWindows:
		p.Type1BodyLen += 130 // 2318 body -> 2342 record
		p.Type2BodyLen += 128 // 3108 body -> 3132 record
		p.Type2Jitter = 14
	case OSMac:
		p.Type1BodyLen += 58
		p.Type2BodyLen += 64
	case OSLinux:
		// Baseline.
	}

	// Browser shifts: Chrome pads its ClientHello (GREASE) and sends
	// slightly different header sets; it also caps early records.
	switch c.Browser {
	case BrowserChrome:
		p.ClientHelloLen = 1516
		p.Type1BodyLen -= 36
		p.Type2BodyLen -= 24
		p.RequestLen += 85
	case BrowserFirefox:
		// Baseline.
	}

	// Platform shifts: laptops report different device capability strings.
	if c.Platform == PlatformLaptop {
		p.Type1BodyLen += 17
		p.Type2BodyLen += 17
	}

	// Wireless interfaces often run a lower MTU (PPPoE/tunnel overhead).
	if c.Medium == netem.MediumWireless {
		p.MTU = 1420
	}
	return p
}

// ForVersion returns the profile as negotiated under a record-layer
// generation: RecordTLS12 returns p unchanged (the paper's 2019 stack),
// RecordTLS13 swaps the cipher suite for its 1.3 equivalent — no explicit
// nonce, one hidden inner content-type byte — which moves every record
// band a handful of bytes, one more reason the attack trains per record
// version exactly as it trains per condition. The report bodies
// themselves do not change: the interactive application is oblivious to
// the record layer beneath it.
func (p Profile) ForVersion(v tlsrec.RecordVersion) Profile {
	if v != tlsrec.RecordTLS13 {
		return p
	}
	p.Suite = tlsrec.Suite13Equivalent(p.Suite)
	return p
}

// ForTransport returns the profile as negotiated over a transport:
// TransportTCP returns p unchanged, TransportQUIC applies the HTTP/3
// framing shifts — QPACK's dynamic-table compression trims the HTTP
// header bytes around every report and request body (the JSON payloads
// themselves are transport-oblivious). The bands move, exactly as they
// move across record versions, so the attack profiles per transport the
// same way it profiles per condition.
func (p Profile) ForTransport(t quicrec.Transport) Profile {
	if t != quicrec.TransportQUIC {
		return p
	}
	p.Type1BodyLen -= 34
	p.Type2BodyLen -= 34
	p.RequestLen -= 120
	p.TelemetryLen -= 34
	return p
}

// RecordVersion reports the record generation the profile's suite speaks,
// inferred from the suite's framing parameters.
func (p Profile) RecordVersion() tlsrec.RecordVersion {
	if p.Suite.InnerTypeByte > 0 {
		return tlsrec.RecordTLS13
	}
	return tlsrec.RecordTLS12
}

// Type1RecordRange returns the [lo, hi] SSL record lengths a type-1
// report can produce under p — the ground-truth band used to verify the
// trained classifier in tests.
func (p Profile) Type1RecordRange() (lo, hi int) {
	lo = p.Suite.CiphertextLen(p.Type1BodyLen - p.Type1Jitter)
	hi = p.Suite.CiphertextLen(p.Type1BodyLen + p.Type1Jitter)
	return lo, hi
}

// Type2RecordRange returns the record-length band of type-2 reports.
func (p Profile) Type2RecordRange() (lo, hi int) {
	lo = p.Suite.CiphertextLen(p.Type2BodyLen - p.Type2Jitter)
	hi = p.Suite.CiphertextLen(p.Type2BodyLen + p.Type2Jitter)
	return lo, hi
}

// Grid enumerates every condition in the Table I grid, in a fixed order.
func Grid() []Condition {
	var out []Condition
	for _, os := range AllOS {
		for _, pl := range AllPlatforms {
			for _, br := range AllBrowsers {
				for _, m := range AllMedia {
					for _, tt := range AllTrafficTimes {
						out = append(out, Condition{OS: os, Platform: pl,
							Browser: br, Medium: m, TrafficTime: tt})
					}
				}
			}
		}
	}
	return out
}
