package profiles

import (
	"strings"
	"testing"

	"repro/internal/netem"
)

func TestFig2UbuntuCalibration(t *testing.T) {
	// The paper's Figure 2 left panel: type-1 records fall in 2211–2213,
	// type-2 in 2992–3017 for (Desktop, Firefox, Ethernet, Ubuntu).
	p := Lookup(Fig2Ubuntu)
	lo1, hi1 := p.Type1RecordRange()
	if lo1 < 2211 || hi1 > 2213 {
		t.Errorf("Ubuntu type-1 band [%d,%d], want within [2211,2213]", lo1, hi1)
	}
	lo2, hi2 := p.Type2RecordRange()
	if lo2 < 2992 || hi2 > 3017 {
		t.Errorf("Ubuntu type-2 band [%d,%d], want within [2992,3017]", lo2, hi2)
	}
}

func TestFig2WindowsCalibration(t *testing.T) {
	// Right panel: type-1 in 2341–2343, type-2 in 3118–3147.
	p := Lookup(Fig2Windows)
	lo1, hi1 := p.Type1RecordRange()
	if lo1 < 2341 || hi1 > 2343 {
		t.Errorf("Windows type-1 band [%d,%d], want within [2341,2343]", lo1, hi1)
	}
	lo2, hi2 := p.Type2RecordRange()
	if lo2 < 3118 || hi2 > 3147 {
		t.Errorf("Windows type-2 band [%d,%d], want within [3118,3147]", lo2, hi2)
	}
}

func TestBandsSeparableEverywhere(t *testing.T) {
	// The side-channel invariant: under every condition in the grid the
	// type-1 band, the type-2 band and the small-request range must not
	// overlap.
	for _, c := range Grid() {
		p := Lookup(c)
		lo1, hi1 := p.Type1RecordRange()
		lo2, hi2 := p.Type2RecordRange()
		if hi1 >= lo2 {
			t.Errorf("%s: type-1 [%d,%d] overlaps type-2 [%d,%d]", c, lo1, hi1, lo2, hi2)
		}
		reqHi := p.Suite.CiphertextLen(p.RequestLen + p.RequestJitter)
		if reqHi >= lo1 {
			t.Errorf("%s: requests reach %d, into type-1 band starting %d", c, reqHi, lo1)
		}
		telLo := p.Suite.CiphertextLen(p.TelemetryLen - p.TelemetryJitter)
		if telLo <= hi2 {
			t.Errorf("%s: telemetry floor %d inside type-2 band ending %d", c, telLo, hi2)
		}
	}
}

func TestBandsDifferAcrossOS(t *testing.T) {
	// The paper's Figure 2 point: the bins move between conditions, which
	// is why the attack trains per condition.
	u := Lookup(Fig2Ubuntu)
	w := Lookup(Fig2Windows)
	ulo, _ := u.Type1RecordRange()
	wlo, _ := w.Type1RecordRange()
	if ulo == wlo {
		t.Error("Ubuntu and Windows type-1 bands coincide; Figure 2 shows them apart")
	}
}

func TestGridComplete(t *testing.T) {
	grid := Grid()
	want := len(AllOS) * len(AllPlatforms) * len(AllBrowsers) * len(AllMedia) * len(AllTrafficTimes)
	if len(grid) != want {
		t.Fatalf("grid has %d cells, want %d", len(grid), want)
	}
	seen := map[string]bool{}
	for _, c := range grid {
		s := c.String()
		if seen[s] {
			t.Errorf("duplicate grid cell %s", s)
		}
		seen[s] = true
	}
}

func TestLookupDeterministic(t *testing.T) {
	for _, c := range Grid() {
		a, b := Lookup(c), Lookup(c)
		if a != b {
			t.Fatalf("%s: Lookup not deterministic", c)
		}
	}
}

func TestProfilesPlausible(t *testing.T) {
	for _, c := range Grid() {
		p := Lookup(c)
		if p.MTU < 576 || p.MTU > 9000 {
			t.Errorf("%s: MTU %d implausible", c, p.MTU)
		}
		if p.Type1BodyLen <= 0 || p.Type2BodyLen <= p.Type1BodyLen {
			t.Errorf("%s: body lengths %d/%d out of order", c, p.Type1BodyLen, p.Type2BodyLen)
		}
		if p.Net.BandwidthBps <= 0 {
			t.Errorf("%s: no bandwidth", c)
		}
		if p.ClientHelloLen <= 0 {
			t.Errorf("%s: no ClientHello length", c)
		}
	}
}

func TestChromeDiffersFromFirefox(t *testing.T) {
	ff := Lookup(Condition{OS: OSLinux, Platform: PlatformDesktop,
		Browser: BrowserFirefox, Medium: netem.MediumWired, TrafficTime: netem.TrafficMorning})
	ch := Lookup(Condition{OS: OSLinux, Platform: PlatformDesktop,
		Browser: BrowserChrome, Medium: netem.MediumWired, TrafficTime: netem.TrafficMorning})
	if ff.Type1BodyLen == ch.Type1BodyLen {
		t.Error("Chrome and Firefox type-1 bodies identical")
	}
	if ff.ClientHelloLen == ch.ClientHelloLen {
		t.Error("Chrome and Firefox ClientHello identical")
	}
}

func TestWirelessLowersMTU(t *testing.T) {
	c := Fig2Ubuntu
	c.Medium = netem.MediumWireless
	if Lookup(c).MTU >= Lookup(Fig2Ubuntu).MTU {
		t.Error("wireless MTU not reduced")
	}
}

func TestConditionString(t *testing.T) {
	s := Fig2Ubuntu.String()
	for _, part := range []string{"desktop", "firefox", "wired", "linux", "morning"} {
		if !strings.Contains(s, part) {
			t.Errorf("Condition.String %q missing %q", s, part)
		}
	}
}
