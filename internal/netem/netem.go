// Package netem emulates the network path between the viewer and the CDN:
// access-link bandwidth, propagation delay, jitter, random loss (as extra
// retransmission delay — the simulator works at the byte-schedule level),
// and diurnal congestion. The paper's dataset spans wired and wireless
// connections captured in the morning, at noon and at night; netem's
// condition knobs reproduce those axes so the side-channel can be shown to
// survive them.
package netem

import (
	"time"

	"repro/internal/wire"
)

// Medium is the access technology.
type Medium string

// Connection media from the paper's Table I.
const (
	MediumWired    Medium = "wired"
	MediumWireless Medium = "wireless"
)

// TrafficTime is the diurnal congestion regime from the paper's Table I.
type TrafficTime string

// Traffic conditions.
const (
	TrafficMorning TrafficTime = "morning"
	TrafficNoon    TrafficTime = "noon"
	TrafficNight   TrafficTime = "night"
)

// PathParams describes one direction of the emulated path.
type PathParams struct {
	// BandwidthBps is the bottleneck rate in bits per second.
	BandwidthBps float64
	// BaseRTT is the round-trip propagation delay.
	BaseRTT time.Duration
	// JitterStd is the standard deviation of per-transfer jitter.
	JitterStd time.Duration
	// LossRate is the probability a transfer suffers one retransmission
	// timeout's worth of extra delay.
	LossRate float64
	// RTOPenalty is the extra delay charged per loss event.
	RTOPenalty time.Duration
}

// Profile derives path parameters for a medium and traffic time. The
// numbers model a 2019 home broadband link: 50 Mbit/s wired with ~12 ms
// RTT; wireless sheds ~40% bandwidth and adds jitter; peak-hour (night)
// congestion halves the spare capacity and inflates delay.
func Profile(m Medium, tt TrafficTime) PathParams {
	p := PathParams{
		BandwidthBps: 50_000_000,
		BaseRTT:      12 * time.Millisecond,
		JitterStd:    1 * time.Millisecond,
		LossRate:     0.001,
		RTOPenalty:   200 * time.Millisecond,
	}
	if m == MediumWireless {
		p.BandwidthBps *= 0.6
		p.BaseRTT += 6 * time.Millisecond
		p.JitterStd = 5 * time.Millisecond
		p.LossRate = 0.01
	}
	switch tt {
	case TrafficMorning:
		// Light load: defaults stand.
	case TrafficNoon:
		p.BandwidthBps *= 0.8
		p.BaseRTT += 4 * time.Millisecond
	case TrafficNight:
		p.BandwidthBps *= 0.5
		p.BaseRTT += 15 * time.Millisecond
		p.JitterStd *= 2
		p.LossRate *= 3
	}
	return p
}

// Path is a stateful one-direction link that schedules byte deliveries in
// virtual time. It is not safe for concurrent use; the simulator is
// single-threaded virtual-time code.
type Path struct {
	Params PathParams
	rng    *wire.RNG
	// busyUntil is when the bottleneck finishes its current backlog.
	busyUntil time.Time
}

// NewPath returns a Path over params seeded by rng (which must not be
// shared with other consumers that require stream stability).
func NewPath(params PathParams, rng *wire.RNG) *Path {
	return &Path{Params: params, rng: rng}
}

// Transfer schedules n bytes entering the link at start and returns the
// delivery completion time. Serialization queues behind earlier transfers
// (FIFO bottleneck); propagation, jitter and loss penalties follow.
func (p *Path) Transfer(start time.Time, n int) time.Time {
	if start.After(p.busyUntil) {
		p.busyUntil = start
	}
	serialization := time.Duration(float64(n*8) / p.Params.BandwidthBps * float64(time.Second))
	p.busyUntil = p.busyUntil.Add(serialization)
	done := p.busyUntil

	oneWay := p.Params.BaseRTT / 2
	done = done.Add(oneWay)
	if p.Params.JitterStd > 0 {
		j := time.Duration(p.rng.Normal(0, float64(p.Params.JitterStd)))
		if j < -oneWay {
			j = -oneWay
		}
		done = done.Add(j)
	}
	if p.Params.LossRate > 0 && p.rng.Bool(p.Params.LossRate) {
		done = done.Add(p.Params.RTOPenalty)
	}
	return done
}

// RTT returns one sampled round-trip time including jitter.
func (p *Path) RTT() time.Duration {
	rtt := p.Params.BaseRTT
	if p.Params.JitterStd > 0 {
		j := time.Duration(p.rng.Normal(0, float64(p.Params.JitterStd)))
		if j < -rtt/2 {
			j = -rtt / 2
		}
		rtt += j
	}
	return rtt
}

// Idle resets the bottleneck backlog, modelling a pause long enough for
// queues to drain (e.g. the player waiting at a choice point with a full
// buffer).
func (p *Path) Idle() { p.busyUntil = time.Time{} }
