package netem

import (
	"testing"
	"time"

	"repro/internal/wire"
)

func TestProfileAxes(t *testing.T) {
	wiredMorning := Profile(MediumWired, TrafficMorning)
	wirelessMorning := Profile(MediumWireless, TrafficMorning)
	wiredNight := Profile(MediumWired, TrafficNight)

	if wirelessMorning.BandwidthBps >= wiredMorning.BandwidthBps {
		t.Error("wireless should be slower than wired")
	}
	if wirelessMorning.LossRate <= wiredMorning.LossRate {
		t.Error("wireless should be lossier than wired")
	}
	if wiredNight.BandwidthBps >= wiredMorning.BandwidthBps {
		t.Error("night congestion should reduce bandwidth")
	}
	if wiredNight.BaseRTT <= wiredMorning.BaseRTT {
		t.Error("night congestion should inflate RTT")
	}
}

func TestTransferSerialization(t *testing.T) {
	p := NewPath(PathParams{BandwidthBps: 8_000_000, BaseRTT: 0}, wire.NewRNG(1))
	start := time.Unix(1000, 0)
	// 1 MB at 8 Mbit/s = 1 second.
	done := p.Transfer(start, 1_000_000)
	got := done.Sub(start)
	if got < 900*time.Millisecond || got > 1100*time.Millisecond {
		t.Errorf("1MB transfer took %v, want ~1s", got)
	}
}

func TestTransferQueuesFIFO(t *testing.T) {
	p := NewPath(PathParams{BandwidthBps: 8_000_000, BaseRTT: 0}, wire.NewRNG(1))
	start := time.Unix(1000, 0)
	first := p.Transfer(start, 1_000_000)
	// Second transfer entering at the same instant must queue behind the
	// first: ~2 s total.
	second := p.Transfer(start, 1_000_000)
	if !second.After(first) {
		t.Errorf("second transfer (%v) did not queue behind first (%v)", second, first)
	}
	if got := second.Sub(start); got < 1900*time.Millisecond {
		t.Errorf("queued transfer completed in %v, want ~2s", got)
	}
}

func TestTransferPropagationDelay(t *testing.T) {
	p := NewPath(PathParams{BandwidthBps: 1e12, BaseRTT: 20 * time.Millisecond}, wire.NewRNG(1))
	start := time.Unix(1000, 0)
	done := p.Transfer(start, 100)
	if got := done.Sub(start); got < 9*time.Millisecond || got > 11*time.Millisecond {
		t.Errorf("tiny transfer delay = %v, want ~10ms one-way", got)
	}
}

func TestTransferLossPenalty(t *testing.T) {
	params := PathParams{BandwidthBps: 1e12, LossRate: 1.0, RTOPenalty: 300 * time.Millisecond}
	p := NewPath(params, wire.NewRNG(1))
	start := time.Unix(1000, 0)
	done := p.Transfer(start, 100)
	if got := done.Sub(start); got < 300*time.Millisecond {
		t.Errorf("certain-loss transfer delay = %v, want >= RTO penalty", got)
	}
}

func TestTransferMonotoneCompletion(t *testing.T) {
	p := NewPath(Profile(MediumWired, TrafficMorning), wire.NewRNG(2))
	start := time.Unix(1000, 0)
	prev := time.Time{}
	for i := 0; i < 50; i++ {
		done := p.Transfer(start.Add(time.Duration(i)*time.Millisecond), 100_000)
		// Jitter can reorder completion very slightly, but the bottleneck
		// itself must never go backwards by more than the jitter budget.
		if !prev.IsZero() && done.Before(prev.Add(-50*time.Millisecond)) {
			t.Fatalf("completion time jumped backwards: %v then %v", prev, done)
		}
		prev = done
	}
}

func TestIdleResetsBacklog(t *testing.T) {
	p := NewPath(PathParams{BandwidthBps: 8_000_000}, wire.NewRNG(1))
	start := time.Unix(1000, 0)
	p.Transfer(start, 10_000_000) // builds a long backlog
	p.Idle()
	later := start.Add(time.Millisecond)
	done := p.Transfer(later, 1000)
	if done.Sub(later) > 100*time.Millisecond {
		t.Errorf("post-Idle transfer delayed %v by stale backlog", done.Sub(later))
	}
}

func TestRTTJitterBounded(t *testing.T) {
	p := NewPath(Profile(MediumWireless, TrafficNight), wire.NewRNG(3))
	for i := 0; i < 1000; i++ {
		rtt := p.RTT()
		if rtt <= 0 {
			t.Fatalf("RTT = %v, must stay positive", rtt)
		}
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []time.Time {
		p := NewPath(Profile(MediumWireless, TrafficNoon), wire.NewRNG(77))
		start := time.Unix(1000, 0)
		var out []time.Time
		for i := 0; i < 20; i++ {
			out = append(out, p.Transfer(start.Add(time.Duration(i)*time.Second), 500_000))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("run diverged at transfer %d", i)
		}
	}
}
