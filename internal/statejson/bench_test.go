package statejson

import (
	"testing"

	"repro/internal/profiles"
	"repro/internal/wire"
)

func BenchmarkEncodeReports(b *testing.B) {
	p := profiles.Lookup(profiles.Fig2Ubuntu)
	bld := NewBuilder(p, "movie", "bench-sess", wire.NewRNG(7))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := bld.Type1("S2", int64(i)); err != nil {
			b.Fatal(err)
		}
		if _, _, err := bld.Type2("S2", "S3b", int64(i)); err != nil {
			b.Fatal(err)
		}
		bld.RequestBody()
		bld.TelemetryBody()
	}
}
