package statejson

import (
	"encoding/json"
	"testing"
	"testing/quick"

	"repro/internal/profiles"
	"repro/internal/script"
	"repro/internal/wire"
)

// TestAppendEscapedMatchesEncodingJSON: the append-only escaper must be
// byte-identical to json.Marshal's string rendering (escapeHTML mode) on
// every input — the corpus format documents report bodies as real
// encoding/json documents, so the fast path may not drift by a byte.
func TestAppendEscapedMatchesEncodingJSON(t *testing.T) {
	check := func(s string) {
		t.Helper()
		want, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("marshal %q: %v", s, err)
		}
		got := append([]byte{'"'}, appendEscaped(nil, s)...)
		got = append(got, '"')
		if string(got) != string(want) {
			t.Errorf("escape %q:\n got %s\nwant %s", s, got, want)
		}
	}
	for _, s := range []string{
		"", "plain ascii", `quotes " and \ slashes`,
		"\b\f\n\r\t", "\x00\x01\x1f\x7f", "<script>&amp;</script>",
		"h\u00e9llo w\u00f6rld \u4e16\u754c", "\u2028\u2029",
		string([]byte{0xff, 0xfe, 'a'}), string([]byte{0xc3}), // truncated rune
		"mixed \xffinvalid\u2028and<html>&\"quoted\"",
	} {
		check(s)
	}
	if err := quick.Check(func(s string) bool {
		want, _ := json.Marshal(s)
		got := append([]byte{'"'}, appendEscaped(nil, s)...)
		got = append(got, '"')
		return string(got) == string(want)
	}, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// marshalReport is the retired encoder: the double json.Marshal round
// trip the append-only writer replaced. Kept as the test oracle.
func marshalReport(b *Builder, r Report, target int) ([]byte, error) {
	r.State = ""
	base, err := json.Marshal(r)
	if err != nil {
		return nil, err
	}
	need := target - len(base)
	if need < 0 {
		return nil, nil
	}
	r.State = b.token(need)
	return json.Marshal(r)
}

// TestEncodeMatchesMarshalOracle: full documents from the plan-cached
// encoder are byte-identical to the marshal-based oracle under every
// grid profile, including builders whose IDs need escaping. The two
// builders share a seed so the oracle's token draw reproduces the
// encoder's state blob.
func TestEncodeMatchesMarshalOracle(t *testing.T) {
	grid := profiles.Grid()
	ids := []struct{ movie, sess string }{
		{"movie", "sess-001"},
		{"m<tag>&x", `q"uo\te`},
		{"line\u2028break", "ctrl\tchars\n"},
	}
	for _, id := range ids {
		for ci, cond := range grid {
			p := profiles.Lookup(cond)
			seed := uint64(ci*31 + 7)
			enc := NewBuilder(p, id.movie, id.sess, wire.NewRNG(seed))
			oracle := NewBuilder(p, id.movie, id.sess, wire.NewRNG(seed))
			for k := 0; k < 4; k++ {
				pos := int64(k * 12345)
				got, gr, err := enc.Type1(script.SegmentID("S2"), pos)
				if err != nil {
					t.Fatalf("%v/%q: %v", cond, id.movie, err)
				}
				target := len(got)
				// Rewind the oracle identically: jitter draw, then encode.
				oracle.jitter(p.Type1Jitter)
				want, err := marshalReport(oracle, Report{
					Kind: Type1, Event: "interactive.choicePointReached",
					MovieID: id.movie, SessionID: id.sess,
					ChoicePoint: "S2", PositionMs: pos,
				}, target)
				if err != nil {
					t.Fatal(err)
				}
				if string(got) != string(want) {
					t.Fatalf("%v/%q type-1 drifted:\n got %s\nwant %s", cond, id.movie, got, want)
				}
				if gr.State == "" && target > 0 && len(want) > 0 {
					// State is the pad; an empty one is legal only when the
					// base exactly hits the target.
					var chk Report
					if err := json.Unmarshal(want, &chk); err != nil {
						t.Fatal(err)
					}
					if chk.State != gr.State {
						t.Fatalf("state mismatch: %q vs %q", gr.State, chk.State)
					}
				}

				got2, _, err := enc.Type2(script.SegmentID("S2"), script.SegmentID("S3b"), pos)
				if err != nil {
					t.Fatal(err)
				}
				oracle.jitter(p.Type2Jitter)
				want2, err := marshalReport(oracle, Report{
					Kind: Type2, Event: "interactive.selectionCommitted",
					MovieID: id.movie, SessionID: id.sess,
					ChoicePoint: "S2", Selection: "S3b", PositionMs: pos,
				}, len(got2))
				if err != nil {
					t.Fatal(err)
				}
				if string(got2) != string(want2) {
					t.Fatalf("%v/%q type-2 drifted:\n got %s\nwant %s", cond, id.movie, got2, want2)
				}
			}
		}
	}
}

// TestOpaqueBodiesRoundTrip: request/telemetry bodies are valid JSON of
// the calibrated lengths and their RNG consumption matches the padded
// report path (one draw per token character after the jitter draw).
func TestOpaqueBodiesRoundTrip(t *testing.T) {
	p := profiles.Lookup(profiles.Grid()[0])
	b := NewBuilder(p, "m", "s", wire.NewRNG(99))
	req := b.RequestBody()
	var doc map[string]string
	if err := json.Unmarshal(req, &doc); err != nil {
		t.Fatalf("request body is not JSON: %s", req)
	}
	tel := b.TelemetryBody()
	if err := json.Unmarshal(tel, &doc); err != nil {
		t.Fatalf("telemetry body is not JSON: %s", tel)
	}
	if len(tel) <= len(req) {
		t.Fatalf("telemetry (%d) should outsize requests (%d)", len(tel), len(req))
	}
}
