package statejson

import (
	"encoding/json"
	"testing"

	"repro/internal/profiles"
	"repro/internal/wire"
)

func newTestBuilder(t *testing.T) *Builder {
	t.Helper()
	p := profiles.Lookup(profiles.Fig2Ubuntu)
	return NewBuilder(p, "bandersnatch", "sess-001", wire.NewRNG(5))
}

func TestType1SizeCalibrated(t *testing.T) {
	b := newTestBuilder(t)
	p := profiles.Lookup(profiles.Fig2Ubuntu)
	for i := 0; i < 50; i++ {
		body, r, err := b.Type1("S0", 480000)
		if err != nil {
			t.Fatal(err)
		}
		lo := p.Type1BodyLen - p.Type1Jitter
		hi := p.Type1BodyLen + p.Type1Jitter
		if len(body) < lo || len(body) > hi {
			t.Fatalf("type-1 body %d bytes, want [%d,%d]", len(body), lo, hi)
		}
		if r.Kind != Type1 {
			t.Fatal("wrong kind")
		}
	}
}

func TestType2SizeCalibrated(t *testing.T) {
	b := newTestBuilder(t)
	p := profiles.Lookup(profiles.Fig2Ubuntu)
	for i := 0; i < 50; i++ {
		body, _, err := b.Type2("S0", "S1b", 480000)
		if err != nil {
			t.Fatal(err)
		}
		lo := p.Type2BodyLen - p.Type2Jitter
		hi := p.Type2BodyLen + p.Type2Jitter
		if len(body) < lo || len(body) > hi {
			t.Fatalf("type-2 body %d bytes, want [%d,%d]", len(body), lo, hi)
		}
	}
}

func TestBodiesAreValidJSON(t *testing.T) {
	b := newTestBuilder(t)
	body1, _, err := b.Type1("S2", 60000)
	if err != nil {
		t.Fatal(err)
	}
	body2, _, err := b.Type2("S2", "S3b", 61000)
	if err != nil {
		t.Fatal(err)
	}
	for _, body := range [][]byte{body1, body2} {
		var m map[string]any
		if err := json.Unmarshal(body, &m); err != nil {
			t.Errorf("body not valid JSON: %v", err)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	b := newTestBuilder(t)
	body, want, err := b.Type2("S10", "S11b", 123456)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Parse(body)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != Type2 || got.ChoicePoint != "S10" || got.Selection != "S11b" ||
		got.PositionMs != 123456 || got.SessionID != want.SessionID {
		t.Errorf("parsed = %+v", got)
	}
}

func TestParseType1(t *testing.T) {
	b := newTestBuilder(t)
	body, _, err := b.Type1("S4", 99)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Parse(body)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != Type1 || got.Selection != "" {
		t.Errorf("parsed = %+v", got)
	}
}

func TestParseRejectsUnknownEvent(t *testing.T) {
	if _, err := Parse([]byte(`{"event":"mystery"}`)); err == nil {
		t.Error("unknown event accepted")
	}
	if _, err := Parse([]byte(`not json`)); err == nil {
		t.Error("garbage accepted")
	}
}

func TestType1SmallerThanType2(t *testing.T) {
	// The separability premise: under every grid condition, type-1 bodies
	// are strictly smaller than type-2 bodies.
	for _, c := range profiles.Grid() {
		p := profiles.Lookup(c)
		b := NewBuilder(p, "m", "s", wire.NewRNG(9))
		b1, _, err := b.Type1("S0", 0)
		if err != nil {
			t.Fatalf("%s: %v", c, err)
		}
		b2, _, err := b.Type2("S0", "S1b", 0)
		if err != nil {
			t.Fatalf("%s: %v", c, err)
		}
		if len(b1) >= len(b2) {
			t.Errorf("%s: type-1 %d >= type-2 %d", c, len(b1), len(b2))
		}
	}
}

func TestRequestAndTelemetrySizes(t *testing.T) {
	b := newTestBuilder(t)
	p := profiles.Lookup(profiles.Fig2Ubuntu)
	for i := 0; i < 30; i++ {
		req := b.RequestBody()
		if len(req) > p.Type1BodyLen-p.Type1Jitter {
			t.Fatalf("request body %d bytes reaches type-1 band", len(req))
		}
		tel := b.TelemetryBody()
		if len(tel) < p.Type2BodyLen+p.Type2Jitter {
			t.Fatalf("telemetry body %d bytes below type-2 band", len(tel))
		}
	}
}

func TestDifferentSessionsDifferentTokens(t *testing.T) {
	p := profiles.Lookup(profiles.Fig2Ubuntu)
	b1 := NewBuilder(p, "m", "s1", wire.NewRNG(1))
	b2 := NewBuilder(p, "m", "s2", wire.NewRNG(2))
	body1, _, _ := b1.Type1("S0", 0)
	body2, _, _ := b2.Type1("S0", 0)
	if string(body1) == string(body2) {
		t.Error("distinct sessions produced identical bodies")
	}
}

func TestKindString(t *testing.T) {
	if Type1.String() != "type-1" || Type2.String() != "type-2" {
		t.Error("kind names wrong")
	}
	if Kind(9).String() == "" {
		t.Error("unknown kind has empty name")
	}
}
