// Package statejson synthesizes the interactive state-report messages the
// viewer's browser sends to the streaming service: a type-1 report when a
// choice question appears on screen and a type-2 report when the viewer
// selects the non-default option. The reports are real JSON documents
// (the simulator round-trips them through encoding/json) padded with an
// opaque session-state blob so their plaintext size matches the condition
// profile's calibrated body length — the quantity the side-channel leaks.
package statejson

import (
	"encoding/json"
	"fmt"
	"strconv"
	"unicode/utf8"

	"repro/internal/profiles"
	"repro/internal/script"
	"repro/internal/wire"
)

// Kind distinguishes the two report types the paper identifies.
type Kind int

// Report kinds.
const (
	// Type1 is sent when the viewer's playback reaches a choice question.
	Type1 Kind = 1
	// Type2 is additionally sent when the viewer picks the non-default
	// branch, cancelling the prefetched default segment.
	Type2 Kind = 2
)

// String names the kind as the paper does.
func (k Kind) String() string {
	switch k {
	case Type1:
		return "type-1"
	case Type2:
		return "type-2"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Report is the logical content of a state report.
type Report struct {
	Kind Kind `json:"-"`
	// Event mirrors the interactive player's event name.
	Event string `json:"event"`
	// MovieID identifies the title.
	MovieID string `json:"movieId"`
	// SessionID identifies the viewing session.
	SessionID string `json:"sessionId"`
	// ChoicePoint is the script segment whose question was reached.
	ChoicePoint string `json:"choicePointId"`
	// Selection, for type-2 reports, is the chosen (non-default) segment.
	Selection string `json:"selection,omitempty"`
	// PositionMs is the playback position in milliseconds.
	PositionMs int64 `json:"positionMs"`
	// State is an opaque base36 session-state blob; its length pads the
	// document to the profile-calibrated body size.
	State string `json:"state"`
}

// Builder mints size-calibrated reports for one session under one
// condition profile. Serialization is an append-only buffer writer over
// cached struct plans: the invariant JSON skeleton of each report shape
// (event name, movie and session IDs, field punctuation) is escaped and
// measured once at construction, so the per-report hot path appends the
// variable parts — choice point, selection, position digits, state blob
// — into a reused buffer without ever calling encoding/json. The bytes
// produced are exactly what json.Marshal(Report) emits (the property
// suite pins this), because the trace corpus format documents report
// bodies as real encoding/json documents.
type Builder struct {
	profile profiles.Profile
	movieID string
	session string
	rng     *wire.RNG
	buf     []byte // reused per-document scratch; outputs are exact-size copies
	type1   plan
	type2   plan
}

// plan caches one report shape's invariant skeleton: the byte prefix up
// to the choicePointId value and the number of fixed bytes a document of
// this shape costs before its variable parts are added.
type plan struct {
	// prefix is `{"event":"…","movieId":"…","sessionId":"…","choicePointId":"`.
	prefix []byte
	// fixed is the document length with empty choice point, selection,
	// position and state: len(prefix) + the punctuation appended around
	// the variable fields (selKey for type-2, posKey, stateTail).
	fixed int
	// selection marks the type-2 shape (a `","selection":"…` field
	// between the choice point and the position).
	selection bool
}

// Skeleton fragments shared by both report shapes.
var (
	selKey    = []byte(`","selection":"`)
	posKey    = []byte(`","positionMs":`)
	stateKey  = []byte(`,"state":"`)
	docClose  = []byte(`"}`)
	stateTail = len(stateKey) + len(docClose) // `,"state":""}` with empty blob
)

// NewBuilder returns a Builder. rng drives token generation and the small
// per-report size jitter; it must be the session's dedicated stream.
func NewBuilder(p profiles.Profile, movieID, sessionID string, rng *wire.RNG) *Builder {
	b := &Builder{profile: p, movieID: movieID, session: sessionID, rng: rng}
	b.type1 = newPlan("interactive.choicePointReached", movieID, sessionID, false)
	b.type2 = newPlan("interactive.selectionCommitted", movieID, sessionID, true)
	return b
}

// newPlan escapes and measures one report shape's skeleton.
func newPlan(event, movieID, sessionID string, selection bool) plan {
	var p []byte
	p = append(p, `{"event":"`...)
	p = appendEscaped(p, event)
	p = append(p, `","movieId":"`...)
	p = appendEscaped(p, movieID)
	p = append(p, `","sessionId":"`...)
	p = appendEscaped(p, sessionID)
	p = append(p, `","choicePointId":"`...)
	fixed := len(p) + len(posKey) + stateTail
	if selection {
		fixed += len(selKey)
	}
	return plan{prefix: p, fixed: fixed, selection: selection}
}

// Type1 builds the report sent when playback reaches the question at cp.
// The returned bytes are the exact plaintext the browser would hand to
// TLS (JSON body plus the browser's HTTP framing, represented by the
// calibrated total length).
func (b *Builder) Type1(cp script.SegmentID, positionMs int64) ([]byte, Report, error) {
	target := b.profile.Type1BodyLen + b.jitter(b.profile.Type1Jitter)
	r := Report{
		Kind:        Type1,
		Event:       "interactive.choicePointReached",
		MovieID:     b.movieID,
		SessionID:   b.session,
		ChoicePoint: string(cp),
		PositionMs:  positionMs,
	}
	body, err := b.encode(&b.type1, &r, target)
	return body, r, err
}

// Type2 builds the report sent when the viewer selects the non-default
// branch sel at choice point cp.
func (b *Builder) Type2(cp, sel script.SegmentID, positionMs int64) ([]byte, Report, error) {
	target := b.profile.Type2BodyLen + b.jitter(b.profile.Type2Jitter)
	r := Report{
		Kind:        Type2,
		Event:       "interactive.selectionCommitted",
		MovieID:     b.movieID,
		SessionID:   b.session,
		ChoicePoint: string(cp),
		Selection:   string(sel),
		PositionMs:  positionMs,
	}
	body, err := b.encode(&b.type2, &r, target)
	return body, r, err
}

// jitter returns a uniform draw in [-j, +j].
func (b *Builder) jitter(j int) int {
	if j <= 0 {
		return 0
	}
	return b.rng.IntRange(-j, j)
}

// encode renders r through its cached plan, sizing the State blob so the
// document is exactly target bytes long — the arithmetic replaces the
// old double json.Marshal round trip, byte for byte. The state token is
// minted into the document first and r.State aliases a copy of it, so
// the RNG draw sequence (jitter, then one draw per state character) is
// identical to the marshal-based encoder's.
func (b *Builder) encode(p *plan, r *Report, target int) ([]byte, error) {
	buf := append(b.buf[:0], p.prefix...)
	buf = appendEscaped(buf, r.ChoicePoint)
	base := p.fixed - len(p.prefix) + len(buf)
	if p.selection {
		buf = append(buf, selKey...)
		sel := len(buf)
		buf = appendEscaped(buf, r.Selection)
		base += len(buf) - sel
	}
	buf = append(buf, posKey...)
	digits := len(buf)
	buf = strconv.AppendInt(buf, r.PositionMs, 10)
	base += len(buf) - digits
	need := target - base
	if need < 0 {
		b.buf = buf[:0]
		return nil, fmt.Errorf("statejson: %s report base %d bytes exceeds target %d",
			r.Kind, base, target)
	}
	buf = append(buf, stateKey...)
	state := len(buf)
	buf = b.appendToken(buf, need)
	r.State = string(buf[state:])
	buf = append(buf, docClose...)
	b.buf = buf[:0]
	if len(buf) != target {
		return nil, fmt.Errorf("statejson: padded %s report is %d bytes, want %d",
			r.Kind, len(buf), target)
	}
	return append([]byte(nil), buf...), nil
}

const tokenAlphabet = "abcdefghijklmnopqrstuvwxyz0123456789"

// appendToken appends n JSON-safe random characters (one RNG draw each).
func (b *Builder) appendToken(dst []byte, n int) []byte {
	for i := 0; i < n; i++ {
		dst = append(dst, tokenAlphabet[b.rng.Intn(len(tokenAlphabet))])
	}
	return dst
}

// token returns n JSON-safe random characters.
func (b *Builder) token(n int) string {
	if n <= 0 {
		return ""
	}
	return string(b.appendToken(make([]byte, 0, n), n))
}

// Parse decodes a report body and infers its kind from the event name,
// used by the simulated server and by tests to verify ground truth.
func Parse(body []byte) (Report, error) {
	var r Report
	if err := json.Unmarshal(body, &r); err != nil {
		return Report{}, fmt.Errorf("statejson: parse: %w", err)
	}
	switch r.Event {
	case "interactive.choicePointReached":
		r.Kind = Type1
	case "interactive.selectionCommitted":
		r.Kind = Type2
	default:
		return Report{}, fmt.Errorf("statejson: unknown event %q", r.Event)
	}
	return r, nil
}

// RequestBody synthesizes an ordinary chunk-request message of the
// profile's request size class ("others" in Figure 2).
func (b *Builder) RequestBody() []byte {
	n := b.profile.RequestLen + b.jitter(b.profile.RequestJitter)
	if n < 16 {
		n = 16
	}
	return b.opaqueBody(`{"req":"`, n-11)
}

// TelemetryBody synthesizes a periodic telemetry upload (large "others").
func (b *Builder) TelemetryBody() []byte {
	n := b.profile.TelemetryLen + b.jitter(b.profile.TelemetryJitter)
	return b.opaqueBody(`{"tel":"`, n-11)
}

// opaqueBody appends key + tokens chars + `"}` through the reused buffer.
func (b *Builder) opaqueBody(key string, tokens int) []byte {
	buf := append(b.buf[:0], key...)
	if tokens > 0 {
		buf = b.appendToken(buf, tokens)
	}
	buf = append(buf, docClose...)
	b.buf = buf[:0]
	return append([]byte(nil), buf...)
}

// appendEscaped appends s as the inside of a JSON string literal, byte
// for byte as encoding/json (escapeHTML mode, the json.Marshal default)
// renders it: short escapes for \b \f \n \r \t, \u00xx for the other
// control bytes, \u003c/\u003e/\u0026 for the HTML-sensitive
// characters, U+FFFD for invalid UTF-8 bytes and \u2028/\u2029 for the
// JS line separators. TestAppendEscapedMatchesEncodingJSON pins the
// equivalence.
func appendEscaped(dst []byte, s string) []byte {
	const hexDigits = "0123456789abcdef"
	start := 0
	for i := 0; i < len(s); {
		if c := s[i]; c < utf8.RuneSelf {
			if c >= 0x20 && c != '"' && c != '\\' && c != '<' && c != '>' && c != '&' {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch c {
			case '"', '\\':
				dst = append(dst, '\\', c)
			case '\b':
				dst = append(dst, '\\', 'b')
			case '\f':
				dst = append(dst, '\\', 'f')
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				dst = append(dst, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xf])
			}
			i++
			start = i
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', 'f', 'f', 'f', 'd')
			i++
			start = i
			continue
		}
		if r == '\u2028' || r == '\u2029' {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', hexDigits[r&0xf])
			i += size
			start = i
			continue
		}
		i += size
	}
	return append(dst, s[start:]...)
}
