// Package statejson synthesizes the interactive state-report messages the
// viewer's browser sends to the streaming service: a type-1 report when a
// choice question appears on screen and a type-2 report when the viewer
// selects the non-default option. The reports are real JSON documents
// (the simulator round-trips them through encoding/json) padded with an
// opaque session-state blob so their plaintext size matches the condition
// profile's calibrated body length — the quantity the side-channel leaks.
package statejson

import (
	"encoding/json"
	"fmt"

	"repro/internal/profiles"
	"repro/internal/script"
	"repro/internal/wire"
)

// Kind distinguishes the two report types the paper identifies.
type Kind int

// Report kinds.
const (
	// Type1 is sent when the viewer's playback reaches a choice question.
	Type1 Kind = 1
	// Type2 is additionally sent when the viewer picks the non-default
	// branch, cancelling the prefetched default segment.
	Type2 Kind = 2
)

// String names the kind as the paper does.
func (k Kind) String() string {
	switch k {
	case Type1:
		return "type-1"
	case Type2:
		return "type-2"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Report is the logical content of a state report.
type Report struct {
	Kind Kind `json:"-"`
	// Event mirrors the interactive player's event name.
	Event string `json:"event"`
	// MovieID identifies the title.
	MovieID string `json:"movieId"`
	// SessionID identifies the viewing session.
	SessionID string `json:"sessionId"`
	// ChoicePoint is the script segment whose question was reached.
	ChoicePoint string `json:"choicePointId"`
	// Selection, for type-2 reports, is the chosen (non-default) segment.
	Selection string `json:"selection,omitempty"`
	// PositionMs is the playback position in milliseconds.
	PositionMs int64 `json:"positionMs"`
	// State is an opaque base36 session-state blob; its length pads the
	// document to the profile-calibrated body size.
	State string `json:"state"`
}

// Builder mints size-calibrated reports for one session under one
// condition profile.
type Builder struct {
	profile profiles.Profile
	movieID string
	session string
	rng     *wire.RNG
}

// NewBuilder returns a Builder. rng drives token generation and the small
// per-report size jitter; it must be the session's dedicated stream.
func NewBuilder(p profiles.Profile, movieID, sessionID string, rng *wire.RNG) *Builder {
	return &Builder{profile: p, movieID: movieID, session: sessionID, rng: rng}
}

// Type1 builds the report sent when playback reaches the question at cp.
// The returned bytes are the exact plaintext the browser would hand to
// TLS (JSON body plus the browser's HTTP framing, represented by the
// calibrated total length).
func (b *Builder) Type1(cp script.SegmentID, positionMs int64) ([]byte, Report, error) {
	target := b.profile.Type1BodyLen + b.jitter(b.profile.Type1Jitter)
	r := Report{
		Kind:        Type1,
		Event:       "interactive.choicePointReached",
		MovieID:     b.movieID,
		SessionID:   b.session,
		ChoicePoint: string(cp),
		PositionMs:  positionMs,
	}
	body, err := b.padToTarget(&r, target)
	return body, r, err
}

// Type2 builds the report sent when the viewer selects the non-default
// branch sel at choice point cp.
func (b *Builder) Type2(cp, sel script.SegmentID, positionMs int64) ([]byte, Report, error) {
	target := b.profile.Type2BodyLen + b.jitter(b.profile.Type2Jitter)
	r := Report{
		Kind:        Type2,
		Event:       "interactive.selectionCommitted",
		MovieID:     b.movieID,
		SessionID:   b.session,
		ChoicePoint: string(cp),
		Selection:   string(sel),
		PositionMs:  positionMs,
	}
	body, err := b.padToTarget(&r, target)
	return body, r, err
}

// jitter returns a uniform draw in [-j, +j].
func (b *Builder) jitter(j int) int {
	if j <= 0 {
		return 0
	}
	return b.rng.IntRange(-j, j)
}

// padToTarget sizes the State blob so the marshalled document is exactly
// target bytes long.
func (b *Builder) padToTarget(r *Report, target int) ([]byte, error) {
	r.State = ""
	base, err := json.Marshal(r)
	if err != nil {
		return nil, fmt.Errorf("statejson: marshal: %w", err)
	}
	need := target - len(base)
	if need < 0 {
		return nil, fmt.Errorf("statejson: %s report base %d bytes exceeds target %d",
			r.Kind, len(base), target)
	}
	r.State = b.token(need)
	body, err := json.Marshal(r)
	if err != nil {
		return nil, fmt.Errorf("statejson: marshal padded: %w", err)
	}
	if len(body) != target {
		return nil, fmt.Errorf("statejson: padded %s report is %d bytes, want %d",
			r.Kind, len(body), target)
	}
	return body, nil
}

const tokenAlphabet = "abcdefghijklmnopqrstuvwxyz0123456789"

// token returns n JSON-safe random characters.
func (b *Builder) token(n int) string {
	if n <= 0 {
		return ""
	}
	out := make([]byte, n)
	for i := range out {
		out[i] = tokenAlphabet[b.rng.Intn(len(tokenAlphabet))]
	}
	return string(out)
}

// Parse decodes a report body and infers its kind from the event name,
// used by the simulated server and by tests to verify ground truth.
func Parse(body []byte) (Report, error) {
	var r Report
	if err := json.Unmarshal(body, &r); err != nil {
		return Report{}, fmt.Errorf("statejson: parse: %w", err)
	}
	switch r.Event {
	case "interactive.choicePointReached":
		r.Kind = Type1
	case "interactive.selectionCommitted":
		r.Kind = Type2
	default:
		return Report{}, fmt.Errorf("statejson: unknown event %q", r.Event)
	}
	return r, nil
}

// RequestBody synthesizes an ordinary chunk-request message of the
// profile's request size class ("others" in Figure 2).
func (b *Builder) RequestBody() []byte {
	n := b.profile.RequestLen + b.jitter(b.profile.RequestJitter)
	if n < 16 {
		n = 16
	}
	return []byte(fmt.Sprintf(`{"req":"%s"}`, b.token(n-11)))
}

// TelemetryBody synthesizes a periodic telemetry upload (large "others").
func (b *Builder) TelemetryBody() []byte {
	n := b.profile.TelemetryLen + b.jitter(b.profile.TelemetryJitter)
	return []byte(fmt.Sprintf(`{"tel":"%s"}`, b.token(n-11)))
}
