package statejson

import (
	"testing"
	"testing/quick"

	"repro/internal/profiles"
	"repro/internal/script"
	"repro/internal/wire"
)

// TestPaddingInvariantProperty: under every grid condition and any RNG
// stream, report bodies always land inside the profile's calibrated
// jitter window, parse back to the same logical content, and type-1 stays
// strictly below type-2 — the invariants the whole side-channel rests on.
func TestPaddingInvariantProperty(t *testing.T) {
	grid := profiles.Grid()
	f := func(seed uint64, condIdx uint8, pos int64) bool {
		p := profiles.Lookup(grid[int(condIdx)%len(grid)])
		b := NewBuilder(p, "movie", "prop-sess", wire.NewRNG(seed))
		if pos < 0 {
			pos = -pos
		}

		b1, r1, err := b.Type1(script.SegmentID("S0"), pos)
		if err != nil {
			return false
		}
		if len(b1) < p.Type1BodyLen-p.Type1Jitter || len(b1) > p.Type1BodyLen+p.Type1Jitter {
			return false
		}
		got1, err := Parse(b1)
		if err != nil || got1.Kind != Type1 || got1.ChoicePoint != "S0" || got1.PositionMs != pos {
			return false
		}

		b2, r2, err := b.Type2(script.SegmentID("S0"), script.SegmentID("S1b"), pos)
		if err != nil {
			return false
		}
		if len(b2) < p.Type2BodyLen-p.Type2Jitter || len(b2) > p.Type2BodyLen+p.Type2Jitter {
			return false
		}
		got2, err := Parse(b2)
		if err != nil || got2.Kind != Type2 || got2.Selection != "S1b" {
			return false
		}
		_ = r1
		_ = r2
		return len(b1) < len(b2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestRecordBandInvariantProperty: composing the builder with the
// profile's cipher suite always produces record lengths inside the
// published bands; this is the statejson↔profiles↔tlsrec contract.
func TestRecordBandInvariantProperty(t *testing.T) {
	grid := profiles.Grid()
	f := func(seed uint64, condIdx uint8) bool {
		p := profiles.Lookup(grid[int(condIdx)%len(grid)])
		b := NewBuilder(p, "m", "s", wire.NewRNG(seed))
		body, _, err := b.Type1("S2", 1)
		if err != nil {
			return false
		}
		lo, hi := p.Type1RecordRange()
		rec := p.Suite.CiphertextLen(len(body))
		if rec < lo || rec > hi {
			return false
		}
		body2, _, err := b.Type2("S2", "S3b", 1)
		if err != nil {
			return false
		}
		lo2, hi2 := p.Type2RecordRange()
		rec2 := p.Suite.CiphertextLen(len(body2))
		return rec2 >= lo2 && rec2 <= hi2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
