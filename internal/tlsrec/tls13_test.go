package tlsrec

import (
	"errors"
	"testing"
	"time"

	"repro/internal/wire"
)

// build13Stream synthesizes a client-side TLS 1.3 flight plus a few
// application writes and returns the wire bytes with their record ground
// truth.
func build13Stream(t *testing.T, pad PaddingPolicy, writes []int) ([]byte, []Record) {
	t.Helper()
	enc := NewEncryptor(SuiteAESGCM128TLS13, DefaultSplitter, VersionTLS13, wire.NewRNG(7))
	enc.SetPadding(pad, wire.NewRNG(11))
	w := wire.NewWriter(1 << 16)
	ts := time.Unix(1735689600, 0)
	recs := enc.HandshakeTranscript(w, ts, 517)
	for i, n := range writes {
		recs = append(recs, enc.WriteApplicationData(w, ts.Add(time.Duration(i)*time.Second), n)...)
	}
	return w.Bytes(), recs
}

// scanAll feeds a stream to a fresh scanner in one piece.
func scanAll(t *testing.T, stream []byte) *RecordScanner {
	t.Helper()
	sc := NewRecordScanner()
	sc.Feed(time.Unix(0, 0), stream)
	if err := sc.Err(); err != nil {
		t.Fatalf("scan: %v", err)
	}
	return sc
}

// TestScanner13Framing checks the synthesized 1.3 flight end to end: the
// hello is the only plaintext handshake record, everything after the CCS
// is outer application_data under the legacy version, and the scanner
// infers the 1.3 generation from exactly that shape.
func TestScanner13Framing(t *testing.T) {
	stream, truth := build13Stream(t, PaddingPolicy{}, []int{400, 2188})
	sc := scanAll(t, stream)
	got := sc.Records()
	if len(got) != len(truth) {
		t.Fatalf("scanned %d records, synthesized %d", len(got), len(truth))
	}
	for i, r := range got {
		if r.Type != truth[i].Type || r.Length != truth[i].Length || r.Version != truth[i].Version {
			t.Fatalf("record %d: scanned %+v, synthesized %+v", i, r, truth[i])
		}
	}
	if got[0].Type != ContentHandshake {
		t.Errorf("first record is %s, want the plaintext hello", got[0].Type)
	}
	if got[1].Type != ContentChangeCipherSpec {
		t.Errorf("second record is %s, want the compatibility CCS", got[1].Type)
	}
	for i, r := range got[2:] {
		if r.Type != ContentApplicationData {
			t.Errorf("post-CCS record %d is %s, want application_data (1.3 hides types)", i+2, r.Type)
		}
		if r.Version != VersionTLS12 {
			t.Errorf("post-CCS record %d carries version %#04x, want legacy 0x0303", i+2, uint16(r.Version))
		}
	}
	ver, known := sc.NegotiatedVersion()
	if !known || ver != RecordTLS13 {
		t.Errorf("negotiated version (%v, %v), want (tls1.3, true)", ver, known)
	}
}

// TestScanner12VersionInference pins the other side of the discriminator:
// a 1.2 flight's post-CCS Finished is a visible handshake record.
func TestScanner12VersionInference(t *testing.T) {
	enc := NewEncryptor(SuiteAESGCM128TLS12, DefaultSplitter, VersionTLS12, wire.NewRNG(7))
	w := wire.NewWriter(1 << 14)
	enc.HandshakeTranscript(w, time.Unix(0, 0), 517)
	enc.WriteApplicationData(w, time.Unix(1, 0), 400)
	sc := scanAll(t, w.Bytes())
	ver, known := sc.NegotiatedVersion()
	if !known || ver != RecordTLS12 {
		t.Errorf("negotiated version (%v, %v), want (tls1.2, true)", ver, known)
	}
}

// TestScanner13SplitAtInnerTypeByte feeds a 1.3 stream byte-split exactly
// at each record's final body byte — the position of the hidden inner
// content-type byte — and at every other offset, and requires the scan to
// be identical to the whole-stream scan. A scanner that confused the
// body-skip cursor at that boundary would shift every later record.
func TestScanner13SplitAtInnerTypeByte(t *testing.T) {
	stream, _ := build13Stream(t, PadToMultipleOf(64), []int{400, 2188, 60})
	want := scanAll(t, stream).Records()
	if len(want) < 5 {
		t.Fatalf("fixture too small: %d records", len(want))
	}
	// Split points: one byte before each record's end (the inner-type
	// byte of that record), plus each record end itself.
	var cuts []int
	for _, r := range want {
		end := int(r.StreamOffset) + r.WireLen()
		cuts = append(cuts, end-1, end)
	}
	for _, cut := range cuts {
		if cut <= 0 || cut >= len(stream) {
			continue
		}
		sc := NewRecordScanner()
		sc.Feed(time.Unix(0, 0), stream[:cut])
		sc.Feed(time.Unix(0, 0), stream[cut:])
		if err := sc.Err(); err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		got := sc.Records()
		if len(got) != len(want) {
			t.Fatalf("cut %d: %d records, want %d", cut, len(got), len(want))
		}
		for i := range got {
			if got[i].Type != want[i].Type || got[i].Length != want[i].Length ||
				got[i].StreamOffset != want[i].StreamOffset {
				t.Fatalf("cut %d: record %d = %+v, want %+v", cut, i, got[i], want[i])
			}
		}
	}
}

// TestPaddingZeroLengthRuns pins the zero-pad edges of the policy
// arithmetic: an already-aligned inner plaintext draws no pad under
// PadToMultiple, PadRandom may legitimately draw zero, and a zero-pad
// record is byte-identical to an unpadded one.
func TestPaddingZeroLengthRuns(t *testing.T) {
	pol := PadToMultipleOf(64)
	if got := pol.PadBytes(128, nil); got != 0 {
		t.Errorf("aligned inner plaintext padded by %d, want 0", got)
	}
	if got := pol.PadBytes(129, nil); got != 63 {
		t.Errorf("129 padded by %d, want 63", got)
	}
	if got := (PaddingPolicy{}).PadBytes(500, nil); got != 0 {
		t.Errorf("PadNone padded by %d", got)
	}
	// PadRandom over a seeded stream must hit zero-length pads and stay
	// within [0, Param].
	rng := wire.NewRNG(3)
	rp := PadRandomUpTo(8)
	sawZero := false
	for i := 0; i < 256; i++ {
		p := rp.PadBytes(777, rng)
		if p < 0 || p > 8 {
			t.Fatalf("random pad %d outside [0, 8]", p)
		}
		if p == 0 {
			sawZero = true
		}
	}
	if !sawZero {
		t.Error("random padding never drew a zero-length run in 256 draws")
	}
	// A zero-pad record is byte-identical to an unpadded one (isolated
	// writes: the handshake's Finished is not bucket-aligned and would
	// legitimately differ).
	aligned := 128 - SuiteAESGCM128TLS13.InnerTypeByte // inner lands on the bucket exactly
	record13 := func(p PaddingPolicy) []byte {
		enc := NewEncryptor(SuiteAESGCM128TLS13, DefaultSplitter, VersionTLS13, wire.NewRNG(7))
		enc.SetPadding(p, wire.NewRNG(11))
		w := wire.NewWriter(1 << 10)
		enc.WriteApplicationData(w, time.Unix(0, 0), aligned)
		return w.CopyBytes()
	}
	if string(record13(PaddingPolicy{})) != string(record13(PadToMultipleOf(64))) {
		t.Error("zero-length pad changed the wire bytes")
	}
	// Envelope arithmetic the trainer relies on.
	if e := PadToMultipleOf(64).Envelope(); e != 63 {
		t.Errorf("pad-to-64 envelope %d, want 63", e)
	}
	if e := PadRandomUpTo(128).Envelope(); e != 128 {
		t.Errorf("pad-random-128 envelope %d, want 128", e)
	}
	if e := (PaddingPolicy{}).Envelope(); e != 0 {
		t.Errorf("none envelope %d, want 0", e)
	}
}

// TestPaddingClampedAtMaxRecord pins the RFC 8446 §5.4 bound: padding
// must never push a record past the protocol maximum. A full 16 KiB
// fragment leaves ~2 KiB of headroom, so a wide random policy must be
// clamped per record rather than panic in AppendRecordHeader.
func TestPaddingClampedAtMaxRecord(t *testing.T) {
	enc := NewEncryptor(SuiteAESGCM128TLS13, DefaultSplitter, VersionTLS13, nil)
	enc.SetPadding(PadRandomUpTo(4096), wire.NewRNG(5))
	w := wire.NewDiscardWriter()
	for i := 0; i < 64; i++ {
		recs := enc.WriteApplicationData(w, time.Unix(int64(i), 0), 16384)
		for _, r := range recs {
			if r.Length > MaxRecordPayload {
				t.Fatalf("padded record of %d bytes exceeds the %d maximum", r.Length, MaxRecordPayload)
			}
		}
	}
}

// TestHandshake13Direction pins the flight shapes: a client sends its
// whole ClientHello in the clear — including Chrome's 1.5 KiB GREASE-
// padded one — while a server shows only the ServerHello and wraps the
// certificate material. Direction is declared on the Encryptor, never
// guessed from hello sizes.
func TestHandshake13Direction(t *testing.T) {
	for _, helloLen := range []int{517, 1516} { // Firefox, Chrome
		c := NewEncryptor(SuiteAESGCM128TLS13, DefaultSplitter, VersionTLS13, wire.NewRNG(1))
		recs := c.HandshakeTranscript(wire.NewDiscardWriter(), time.Unix(0, 0), helloLen)
		if recs[0].Type != ContentHandshake || recs[0].Length != helloLen {
			t.Errorf("client hello of %d bytes framed as (%s, %d)", helloLen, recs[0].Type, recs[0].Length)
		}
	}
	s := NewEncryptor(SuiteAESGCM128TLS13, DefaultSplitter, VersionTLS13, nil)
	s.Server = true
	recs := s.HandshakeTranscript(wire.NewDiscardWriter(), time.Unix(0, 0), 3700)
	if recs[0].Length != serverHello13Len {
		t.Errorf("server flight shows %d plaintext bytes, want the bare ServerHello (%d)",
			recs[0].Length, serverHello13Len)
	}
	if last := recs[len(recs)-1]; last.Type != ContentApplicationData {
		t.Errorf("server certificate material framed as %s, want wrapped application_data", last.Type)
	}
}

// TestScannerRejectsMixedVersions splices 1.2-style framing into a flow
// that negotiated 1.3 — the one-tap port-reuse / corruption case — and
// requires a clean ErrMixedVersions instead of misread records.
func TestScannerRejectsMixedVersions(t *testing.T) {
	stream, _ := build13Stream(t, PaddingPolicy{}, []int{400})
	// Append a 1.2-style visible handshake record (a renegotiation that
	// cannot exist under 1.3).
	w := wire.NewWriter(64)
	AppendRecord(w, ContentHandshake, VersionTLS12, make([]byte, 40))
	mixed := append(append([]byte(nil), stream...), w.Bytes()...)

	sc := NewRecordScanner()
	sc.Feed(time.Unix(0, 0), mixed)
	if err := sc.Err(); !errors.Is(err, ErrMixedVersions) {
		t.Fatalf("mixed handshake framing: err = %v, want ErrMixedVersions", err)
	}
	// A late CCS is equally impossible under 1.3.
	w = wire.NewWriter(8)
	AppendRecord(w, ContentChangeCipherSpec, VersionTLS12, []byte{1})
	mixed = append(append([]byte(nil), stream...), w.Bytes()...)
	sc = NewRecordScanner()
	sc.Feed(time.Unix(0, 0), mixed)
	if err := sc.Err(); !errors.Is(err, ErrMixedVersions) {
		t.Fatalf("mixed CCS framing: err = %v, want ErrMixedVersions", err)
	}
	// The scan up to the violation survives: records before the splice
	// are intact, so the monitor can still account for the prefix.
	if n := len(scanAll(t, stream).Records()); n == 0 {
		t.Fatal("no records before the splice")
	}
}
