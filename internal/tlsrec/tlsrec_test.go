package tlsrec

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/wire"
)

func TestAppendAndParseSingleRecord(t *testing.T) {
	w := wire.NewWriter(64)
	body := []byte("opaque ciphertext")
	AppendRecord(w, ContentHandshake, VersionTLS12, body)

	recs, rest, err := ParseStream(w.Bytes(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if rest != 0 {
		t.Errorf("unparsed bytes = %d", rest)
	}
	if len(recs) != 1 {
		t.Fatalf("records = %d", len(recs))
	}
	r := recs[0]
	if r.Type != ContentHandshake || r.Version != VersionTLS12 ||
		r.Length != len(body) || r.StreamOffset != 0 {
		t.Errorf("record = %+v", r)
	}
	if r.WireLen() != 5+len(body) {
		t.Errorf("WireLen = %d", r.WireLen())
	}
}

func TestParseMultipleRecordsOffsets(t *testing.T) {
	w := wire.NewWriter(128)
	AppendRecord(w, ContentHandshake, VersionTLS12, make([]byte, 10))
	AppendRecord(w, ContentApplicationData, VersionTLS12, make([]byte, 20))
	AppendRecord(w, ContentApplicationData, VersionTLS12, make([]byte, 30))
	recs, _, err := ParseStream(w.Bytes(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("records = %d", len(recs))
	}
	if recs[1].StreamOffset != 15 || recs[2].StreamOffset != 40 {
		t.Errorf("offsets = %d, %d", recs[1].StreamOffset, recs[2].StreamOffset)
	}
}

func TestParseTrailingPartialRecord(t *testing.T) {
	w := wire.NewWriter(64)
	AppendRecord(w, ContentHandshake, VersionTLS12, make([]byte, 8))
	AppendRecord(w, ContentApplicationData, VersionTLS12, make([]byte, 100))
	data := w.Bytes()[:w.Len()-40] // truncate mid-record
	recs, rest, err := ParseStream(data, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Errorf("records = %d, want 1", len(recs))
	}
	if rest != 65 { // 5 header + 60 delivered of the partial record
		t.Errorf("rest = %d, want 65", rest)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	_, _, err := ParseStream([]byte{0x47, 0x45, 0x54, 0x20, 0x2f, 0x20}, nil) // "GET / "
	if err == nil {
		t.Fatal("expected error on non-TLS bytes")
	}
}

func TestParseRejectsBadFirstVersion(t *testing.T) {
	w := wire.NewWriter(16)
	AppendRecord(w, ContentHandshake, Version(0x4747), make([]byte, 4))
	_, _, err := ParseStream(w.Bytes(), nil)
	if !errors.Is(err, ErrBadVersion) {
		t.Errorf("err = %v, want ErrBadVersion", err)
	}
}

func TestParseRejectsOversizedLength(t *testing.T) {
	buf := []byte{byte(ContentApplicationData), 0x03, 0x03, 0xff, 0xff}
	_, _, err := ParseStream(buf, nil)
	if !errors.Is(err, ErrBadLength) {
		t.Errorf("err = %v, want ErrBadLength", err)
	}
}

func TestParseTimestampResolution(t *testing.T) {
	w := wire.NewWriter(64)
	AppendRecord(w, ContentHandshake, VersionTLS12, make([]byte, 10))
	AppendRecord(w, ContentApplicationData, VersionTLS12, make([]byte, 10))
	ts := []time.Time{time.Unix(100, 0), time.Unix(200, 0)}
	at := func(off int64) time.Time {
		if off < 15 {
			return ts[0]
		}
		return ts[1]
	}
	recs, _, err := ParseStream(w.Bytes(), at)
	if err != nil {
		t.Fatal(err)
	}
	if !recs[0].Time.Equal(ts[0]) || !recs[1].Time.Equal(ts[1]) {
		t.Errorf("times = %v, %v", recs[0].Time, recs[1].Time)
	}
}

func TestStreamParserIncremental(t *testing.T) {
	w := wire.NewWriter(64)
	AppendRecord(w, ContentHandshake, VersionTLS12, make([]byte, 10))
	AppendRecord(w, ContentApplicationData, VersionTLS12, make([]byte, 20))
	data := w.Bytes()

	p := NewStreamParser()
	// Feed in awkward 7-byte slices.
	for i := 0; i < len(data); i += 7 {
		end := min(i+7, len(data))
		p.Feed(time.Unix(int64(i), 0), data[i:end])
	}
	if p.Err() != nil {
		t.Fatal(p.Err())
	}
	recs := p.Records()
	if len(recs) != 2 {
		t.Fatalf("records = %d", len(recs))
	}
	if recs[0].Length != 10 || recs[1].Length != 20 {
		t.Errorf("lengths = %d, %d", recs[0].Length, recs[1].Length)
	}
	if p.Pending() != 0 {
		t.Errorf("pending = %d", p.Pending())
	}
	// Records drains.
	if len(p.Records()) != 0 {
		t.Error("Records did not drain")
	}
}

func TestStreamParserErrorSticky(t *testing.T) {
	p := NewStreamParser()
	p.Feed(time.Now(), []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	if p.Err() == nil {
		t.Fatal("expected framing error")
	}
	first := p.Err()
	p.Feed(time.Now(), []byte{1, 2, 3})
	if p.Err() != first {
		t.Error("error not sticky")
	}
}

func TestContentTypeString(t *testing.T) {
	cases := map[ContentType]string{
		ContentHandshake:        "handshake",
		ContentApplicationData:  "application_data",
		ContentAlert:            "alert",
		ContentChangeCipherSpec: "change_cipher_spec",
		ContentType(99):         "content(99)",
	}
	for ct, want := range cases {
		if got := ct.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", ct, got, want)
		}
	}
}

func TestSuiteGCMLengths(t *testing.T) {
	s := SuiteAESGCM128TLS12
	// nonce(8) + plaintext + tag(16)
	if got := s.CiphertextLen(100); got != 124 {
		t.Errorf("GCM CiphertextLen(100) = %d, want 124", got)
	}
	if got := s.PlaintextLen(124); got != 100 {
		t.Errorf("GCM PlaintextLen(124) = %d, want 100", got)
	}
}

func TestSuiteChaChaLengths(t *testing.T) {
	s := SuiteChaChaTLS12
	if got := s.CiphertextLen(100); got != 116 {
		t.Errorf("ChaCha CiphertextLen(100) = %d, want 116", got)
	}
}

func TestSuiteTLS13InnerByte(t *testing.T) {
	s := SuiteAESGCM128TLS13
	// plaintext + inner type byte + tag(16)
	if got := s.CiphertextLen(100); got != 117 {
		t.Errorf("TLS1.3 CiphertextLen(100) = %d, want 117", got)
	}
}

func TestSuiteCBCBlockAlignment(t *testing.T) {
	s := SuiteAESCBC256TLS12
	// IV(16) + ceil16(pt + mac(20) + 1 pad byte)
	got := s.CiphertextLen(100)
	// 100+20+1 = 121 -> 128; + 16 IV = 144
	if got != 144 {
		t.Errorf("CBC CiphertextLen(100) = %d, want 144", got)
	}
	// All plaintexts within one block window give the same ciphertext len.
	if s.CiphertextLen(101) != s.CiphertextLen(107) {
		t.Error("CBC lengths should be block-quantized")
	}
}

func TestSuitePadToQuantizes(t *testing.T) {
	s := SuiteAESGCM128TLS13
	s.PadTo = 256
	a, b := s.CiphertextLen(100), s.CiphertextLen(200)
	if a != b {
		t.Errorf("padded lengths differ: %d vs %d", a, b)
	}
	if s.CiphertextLen(100) == SuiteAESGCM128TLS13.CiphertextLen(100) {
		t.Error("PadTo had no effect")
	}
}

func TestSuiteRoundTripProperty(t *testing.T) {
	f := func(n uint16) bool {
		pt := int(n % 16384)
		for _, s := range []CipherSuite{SuiteAESGCM128TLS12, SuiteChaChaTLS12, SuiteAESGCM128TLS13} {
			if s.PlaintextLen(s.CiphertextLen(pt)) != pt {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSuiteMonotoneProperty(t *testing.T) {
	// Ciphertext length must be non-decreasing in plaintext length for
	// every suite — the attack's interval classifier relies on it.
	f := func(a, b uint16) bool {
		x, y := int(a%16384), int(b%16384)
		if x > y {
			x, y = y, x
		}
		for _, s := range []CipherSuite{SuiteAESGCM128TLS12, SuiteChaChaTLS12,
			SuiteAESGCM128TLS13, SuiteAESCBC256TLS12} {
			if s.CiphertextLen(x) > s.CiphertextLen(y) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSplitterWholeWrite(t *testing.T) {
	got := DefaultSplitter.Split(1000)
	if len(got) != 1 || got[0] != 1000 {
		t.Errorf("Split(1000) = %v", got)
	}
}

func TestSplitterLargeWrite(t *testing.T) {
	got := DefaultSplitter.Split(40000)
	want := []int{16384, 16384, 7232}
	if len(got) != len(want) {
		t.Fatalf("Split(40000) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Split[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestSplitterFirstRecordMax(t *testing.T) {
	sp := Splitter{MaxPlaintext: 16384, FirstRecordMax: 1}
	got := sp.Split(100)
	if len(got) != 2 || got[0] != 1 || got[1] != 99 {
		t.Errorf("1/n-1 Split(100) = %v", got)
	}
}

func TestSplitterZeroWrite(t *testing.T) {
	got := DefaultSplitter.Split(0)
	if len(got) != 1 || got[0] != 0 {
		t.Errorf("Split(0) = %v", got)
	}
}

func TestSplitterConservesBytesProperty(t *testing.T) {
	f := func(n uint32, maxPT uint16, firstMax uint8) bool {
		sp := Splitter{MaxPlaintext: int(maxPT), FirstRecordMax: int(firstMax)}
		total := int(n % 100000)
		sum := 0
		for _, k := range sp.Split(total) {
			if k < 0 || k > 16384 {
				return false
			}
			sum += k
		}
		return sum == total || (total == 0 && sum == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncryptorWriteParsesBack(t *testing.T) {
	rng := wire.NewRNG(1)
	e := NewEncryptor(SuiteAESGCM128TLS12, DefaultSplitter, VersionTLS12, rng)
	w := wire.NewWriter(64 << 10)
	ts := time.Unix(1700000000, 0)
	hs := e.HandshakeTranscript(w, ts, 517)
	app := e.WriteApplicationData(w, ts.Add(time.Second), 2500)

	recs, rest, err := ParseStream(w.Bytes(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if rest != 0 {
		t.Errorf("unparsed = %d", rest)
	}
	if len(recs) != len(hs)+len(app) {
		t.Fatalf("parsed %d records, wrote %d", len(recs), len(hs)+len(app))
	}
	// The application record length must equal the suite's arithmetic.
	last := recs[len(recs)-1]
	if want := SuiteAESGCM128TLS12.CiphertextLen(2500); last.Length != want {
		t.Errorf("app record length = %d, want %d", last.Length, want)
	}
	if last.Type != ContentApplicationData {
		t.Errorf("app record type = %v", last.Type)
	}
}

func TestEncryptorLargeWriteSplits(t *testing.T) {
	e := NewEncryptor(SuiteAESGCM128TLS12, DefaultSplitter, VersionTLS12, nil)
	w := wire.NewWriter(1 << 20)
	recs := e.WriteApplicationData(w, time.Now(), 50000)
	if len(recs) != 4 { // 16384*3 + 848
		t.Errorf("records = %d, want 4", len(recs))
	}
	var pt int
	for _, r := range recs {
		pt += SuiteAESGCM128TLS12.PlaintextLen(r.Length)
	}
	if pt != 50000 {
		t.Errorf("recovered plaintext total = %d, want 50000", pt)
	}
}
