package tlsrec

// CipherSuite describes how a cipher transforms plaintext length into
// ciphertext fragment length. Only the length arithmetic matters to the
// side-channel, so suites are modelled by their expansion parameters
// rather than actual cryptography.
type CipherSuite struct {
	Name string
	// ExplicitNonceLen bytes are prepended to each fragment (8 for
	// AES-GCM in TLS 1.2, 0 for ChaCha20-Poly1305 and TLS 1.3 suites).
	ExplicitNonceLen int
	// TagLen is the AEAD tag or MAC appended to each fragment.
	TagLen int
	// BlockLen, when nonzero, pads plaintext+MAC to a multiple of the
	// block size plus one padding-length byte (CBC suites).
	BlockLen int
	// InnerTypeByte is 1 for TLS 1.3, whose TLSInnerPlaintext appends a
	// content-type byte (plus optional padding, see PadTo).
	InnerTypeByte int
	// PadTo, when nonzero, pads the TLS 1.3 inner plaintext up to a
	// multiple of PadTo bytes before encryption (record padding defense).
	PadTo int
}

// Standard suites used by the condition profiles.
var (
	// SuiteAESGCM128TLS12 models TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256,
	// the suite Netflix negotiated with desktop browsers in 2018/19.
	SuiteAESGCM128TLS12 = CipherSuite{
		Name: "AES_128_GCM/TLS1.2", ExplicitNonceLen: 8, TagLen: 16,
	}
	// SuiteChaChaTLS12 models TLS_ECDHE_RSA_WITH_CHACHA20_POLY1305.
	SuiteChaChaTLS12 = CipherSuite{
		Name: "CHACHA20_POLY1305/TLS1.2", TagLen: 16,
	}
	// SuiteAESCBC256TLS12 models an older CBC+HMAC-SHA1 suite, giving the
	// block-aligned record lengths seen from some legacy stacks.
	SuiteAESCBC256TLS12 = CipherSuite{
		Name: "AES_256_CBC_SHA/TLS1.2", TagLen: 20, BlockLen: 16,
		ExplicitNonceLen: 16, // explicit IV
	}
	// SuiteAESGCM128TLS13 models TLS_AES_128_GCM_SHA256 under TLS 1.3.
	SuiteAESGCM128TLS13 = CipherSuite{
		Name: "AES_128_GCM/TLS1.3", TagLen: 16, InnerTypeByte: 1,
	}
	// SuiteChaChaTLS13 models TLS_CHACHA20_POLY1305_SHA256 under TLS 1.3;
	// identical length arithmetic to the GCM suite (1.3 has no explicit
	// nonces), kept distinct for profile descriptions.
	SuiteChaChaTLS13 = CipherSuite{
		Name: "CHACHA20_POLY1305/TLS1.3", TagLen: 16, InnerTypeByte: 1,
	}
)

// Suite13Equivalent maps a TLS 1.2 suite to the suite the same peers
// negotiate under TLS 1.3: ChaCha keeps ChaCha, and everything else —
// including the CBC suites, which 1.3 abolished — lands on AES-GCM. A
// suite that is already 1.3 (it has an inner type byte) maps to itself.
func Suite13Equivalent(s CipherSuite) CipherSuite {
	if s.InnerTypeByte > 0 {
		return s
	}
	if s.Name == SuiteChaChaTLS12.Name {
		return SuiteChaChaTLS13
	}
	return SuiteAESGCM128TLS13
}

// CiphertextLen returns the ciphertext fragment length produced by
// encrypting a plaintext of n bytes.
func (s CipherSuite) CiphertextLen(n int) int {
	inner := n + s.InnerTypeByte
	if s.PadTo > 0 {
		if rem := inner % s.PadTo; rem != 0 {
			inner += s.PadTo - rem
		}
	}
	if s.BlockLen > 0 {
		// CBC: plaintext + MAC + at least one padding byte, rounded up to
		// the block size, plus the explicit IV.
		body := inner + s.TagLen + 1
		if rem := body % s.BlockLen; rem != 0 {
			body += s.BlockLen - rem
		}
		return s.ExplicitNonceLen + body
	}
	return s.ExplicitNonceLen + inner + s.TagLen
}

// PlaintextLen inverts CiphertextLen for stream/AEAD suites; for CBC
// suites the inverse is ambiguous (padding), so the maximum plaintext
// consistent with the ciphertext length is returned.
func (s CipherSuite) PlaintextLen(ct int) int {
	if s.BlockLen > 0 {
		return ct - s.ExplicitNonceLen - s.TagLen - 1 - s.InnerTypeByte
	}
	n := ct - s.ExplicitNonceLen - s.TagLen - s.InnerTypeByte
	if n < 0 {
		n = 0
	}
	return n
}

// Splitter models how a TLS stack fragments one application write into
// records. Real stacks differ: most write up to 16 KiB per record, some
// cap records near the TCP MSS, and some split the first record
// (1/n-1 splitting against BEAST). These differences move the record
// lengths between conditions — the reason the paper trains per condition.
type Splitter struct {
	// MaxPlaintext caps the plaintext bytes per record (<= 16384).
	MaxPlaintext int
	// FirstRecordMax, when nonzero, caps only the first record of each
	// write (1/n-1-style splitting uses 1).
	FirstRecordMax int
}

// DefaultSplitter writes full 16 KiB records.
var DefaultSplitter = Splitter{MaxPlaintext: 16384}

// Split returns the plaintext record sizes for one application write of
// n bytes. A zero-byte write still produces one empty record.
func (sp Splitter) Split(n int) []int { return sp.AppendSplit(nil, n) }

// AppendSplit appends the record sizes for a write of n bytes to dst and
// returns the extended slice, so hot loops can reuse one scratch buffer
// instead of allocating per write.
func (sp Splitter) AppendSplit(dst []int, n int) []int {
	maxPT := sp.MaxPlaintext
	if maxPT <= 0 || maxPT > 16384 {
		maxPT = 16384
	}
	if n == 0 {
		return append(dst, 0)
	}
	remaining := n
	if sp.FirstRecordMax > 0 && sp.FirstRecordMax < maxPT {
		first := min(sp.FirstRecordMax, remaining)
		dst = append(dst, first)
		remaining -= first
	}
	for remaining > 0 {
		k := min(maxPT, remaining)
		dst = append(dst, k)
		remaining -= k
	}
	return dst
}
