package tlsrec

import (
	"time"

	"repro/internal/wire"
)

// Encryptor is the write-side length model: it turns application writes
// into sequences of framed records exactly as a TLS stack would, so the
// simulator can synthesize the ciphertext byte stream an eavesdropper
// observes. Record bodies are filled with PRNG noise (they are opaque to
// the attack; realistic entropy keeps accidental structure out of tests).
//
// An Encryptor belongs to one session and is not safe for concurrent use;
// it reuses internal scratch space so the per-record simulation hot loop
// stays allocation-free apart from the record descriptors themselves.
//
// Passing VersionTLS13 selects the RFC 8446 record layer: every protected
// record is framed as outer-type application_data with the legacy 0x0303
// version (the true content type would hide inside the ciphertext), the
// handshake transcript takes the 1.3 shape, and a PaddingPolicy set via
// SetPadding inflates record lengths.
type Encryptor struct {
	Suite    CipherSuite
	Splitter Splitter
	Version  Version
	// Server marks this encryptor as the server side of the connection.
	// The TLS 1.3 handshake flight differs by direction — a client sends
	// its whole ClientHello in the clear (even Chrome's 1.5 KiB GREASE-
	// padded one), a server shows only the ServerHello and wraps the
	// certificate material — so the direction is declared, not guessed
	// from sizes. Ignored under TLS 1.2, whose transcript shape is
	// symmetric at this level of modelling.
	Server   bool
	rng      *wire.RNG
	padding  PaddingPolicy
	padRng   *wire.RNG
	splitBuf []int // reused across writes by write()
}

// NewEncryptor returns an Encryptor for the given suite and splitter.
// rng may be nil, in which case record bodies are zero-filled.
func NewEncryptor(suite CipherSuite, sp Splitter, ver Version, rng *wire.RNG) *Encryptor {
	if ver == 0 {
		ver = VersionTLS12
	}
	return &Encryptor{Suite: suite, Splitter: sp, Version: ver, rng: rng}
}

// SetPadding installs an RFC 8446 record-padding policy. padRng seeds the
// per-record draw of PadRandom policies (deterministic policies may pass
// nil); it must be a dedicated stream so lean and full-fidelity runs of
// the same session consume identical randomness. Padding is a TLS 1.3
// mechanism and is ignored by a 1.2 Encryptor.
func (e *Encryptor) SetPadding(p PaddingPolicy, padRng *wire.RNG) {
	e.padding = p
	e.padRng = padRng
}

// generation resolves the record layer the encryptor speaks.
func (e *Encryptor) generation() RecordVersion {
	if e.Version == VersionTLS13 {
		return RecordTLS13
	}
	return RecordTLS12
}

// WriteApplicationData frames one application-layer write of n plaintext
// bytes into w and returns the resulting record descriptors (with Time
// set to ts). Only the length of the plaintext matters; bodies are noise.
func (e *Encryptor) WriteApplicationData(w *wire.Writer, ts time.Time, n int) []Record {
	return e.write(w, ts, ContentApplicationData, n)
}

// WriteHandshake frames a handshake message of n bytes.
func (e *Encryptor) WriteHandshake(w *wire.Writer, ts time.Time, n int) []Record {
	return e.write(w, ts, ContentHandshake, n)
}

// appendBody emits one record of n body bytes directly into w — zero or
// PRNG fill in place, with no intermediate body buffer.
func (e *Encryptor) appendBody(w *wire.Writer, typ ContentType, ver Version, n int) {
	AppendRecordHeader(w, typ, ver, n)
	if e.rng != nil {
		w.Fill(n, e.rng)
	} else {
		w.Zero(n)
	}
}

func (e *Encryptor) write(w *wire.Writer, ts time.Time, typ ContentType, n int) []Record {
	wireTyp, wireVer := typ, e.Version
	pad13 := false
	if e.generation() == RecordTLS13 {
		// Every protected 1.3 record travels as outer application_data
		// under the legacy version; the true type is the hidden inner byte
		// the suite's InnerTypeByte already accounts for.
		wireTyp, wireVer = ContentApplicationData, VersionTLS12
		pad13 = true
	}
	e.splitBuf = e.Splitter.AppendSplit(e.splitBuf[:0], n)
	out := make([]Record, 0, len(e.splitBuf))
	for _, pt := range e.splitBuf {
		if pad13 {
			pad := e.padding.PadBytes(pt+e.Suite.InnerTypeByte, e.padRng)
			// RFC 8446 §5.4: padding must not push a record past the
			// protocol maximum. A full 16 KiB fragment leaves little
			// headroom, so wide policies are clamped per record (the RNG
			// draw above is taken regardless, keeping lean and full runs
			// on identical streams).
			if maxPad := MaxRecordPayload - e.Suite.CiphertextLen(pt); pad > maxPad {
				pad = maxPad
			}
			pt += pad
		}
		ct := e.Suite.CiphertextLen(pt)
		off := int64(w.Len())
		e.appendBody(w, wireTyp, wireVer, ct)
		out = append(out, Record{
			Type: wireTyp, Version: wireVer, Length: ct,
			Time: ts, StreamOffset: off,
		})
	}
	return out
}

// HandshakeTranscript appends a plausible TLS handshake flight to w:
// under TLS 1.2 the hello (ClientHello, or ServerHello plus certificate
// chain — the caller sizes it), then ChangeCipherSpec and Finished; under
// TLS 1.3 the 8446 shape via handshake13. Sizes follow the observed
// ranges for 2019-era browsers: the attack must correctly skip these
// records, so captures include them.
func (e *Encryptor) HandshakeTranscript(w *wire.Writer, ts time.Time, helloLen int) []Record {
	if e.generation() == RecordTLS13 {
		return e.handshake13(w, ts, helloLen)
	}
	out := make([]Record, 0, 3)
	off := int64(w.Len())
	e.appendBody(w, ContentHandshake, VersionTLS10, helloLen)
	out = append(out, Record{Type: ContentHandshake, Version: VersionTLS10,
		Length: helloLen, Time: ts, StreamOffset: off})

	off = int64(w.Len())
	AppendRecord(w, ContentChangeCipherSpec, e.Version, []byte{1})
	out = append(out, Record{Type: ContentChangeCipherSpec, Version: e.Version,
		Length: 1, Time: ts, StreamOffset: off})

	finished := e.Suite.CiphertextLen(16)
	off = int64(w.Len())
	AppendRecordHeader(w, ContentHandshake, e.Version, finished)
	w.Zero(finished)
	out = append(out, Record{Type: ContentHandshake, Version: e.Version,
		Length: finished, Time: ts, StreamOffset: off})
	return out
}

// tls13FinishedLen is the plaintext Finished message under the 1.3
// suites' SHA-256 transcripts (4-byte handshake header + 32-byte MAC).
const tls13FinishedLen = 36

// serverHello13Len is the plaintext ServerHello of a 1.3 flight; unlike
// 1.2, the certificate chain travels encrypted after it.
const serverHello13Len = 155

// handshake13 appends an RFC 8446 handshake flight: the hello itself in
// the clear (the only plaintext record 1.3 ever shows), the dummy
// ChangeCipherSpec middleboxes expect, and the remainder of the flight —
// Finished client-side; EncryptedExtensions through Finished server-side
// — wrapped in protected records an eavesdropper cannot tell from
// application data.
func (e *Encryptor) handshake13(w *wire.Writer, ts time.Time, helloLen int) []Record {
	// A ClientHello travels whole; the server's flight keeps only the
	// ServerHello in the clear and wraps the certificate material.
	plain := helloLen
	if e.Server && plain > serverHello13Len {
		plain = serverHello13Len
	}
	out := make([]Record, 0, 4)
	off := int64(w.Len())
	e.appendBody(w, ContentHandshake, VersionTLS10, plain)
	out = append(out, Record{Type: ContentHandshake, Version: VersionTLS10,
		Length: plain, Time: ts, StreamOffset: off})

	off = int64(w.Len())
	AppendRecord(w, ContentChangeCipherSpec, VersionTLS12, []byte{1})
	out = append(out, Record{Type: ContentChangeCipherSpec, Version: VersionTLS12,
		Length: 1, Time: ts, StreamOffset: off})

	rest := helloLen - plain + tls13FinishedLen
	return append(out, e.write(w, ts, ContentHandshake, rest)...)
}
