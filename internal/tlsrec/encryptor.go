package tlsrec

import (
	"time"

	"repro/internal/wire"
)

// Encryptor is the write-side length model: it turns application writes
// into sequences of framed records exactly as a TLS stack would, so the
// simulator can synthesize the ciphertext byte stream an eavesdropper
// observes. Record bodies are filled with PRNG noise (they are opaque to
// the attack; realistic entropy keeps accidental structure out of tests).
//
// An Encryptor belongs to one session and is not safe for concurrent use;
// it reuses internal scratch space so the per-record simulation hot loop
// stays allocation-free apart from the record descriptors themselves.
type Encryptor struct {
	Suite    CipherSuite
	Splitter Splitter
	Version  Version
	rng      *wire.RNG
	splitBuf []int // reused across writes by write()
}

// NewEncryptor returns an Encryptor for the given suite and splitter.
// rng may be nil, in which case record bodies are zero-filled.
func NewEncryptor(suite CipherSuite, sp Splitter, ver Version, rng *wire.RNG) *Encryptor {
	if ver == 0 {
		ver = VersionTLS12
	}
	return &Encryptor{Suite: suite, Splitter: sp, Version: ver, rng: rng}
}

// WriteApplicationData frames one application-layer write of n plaintext
// bytes into w and returns the resulting record descriptors (with Time
// set to ts). Only the length of the plaintext matters; bodies are noise.
func (e *Encryptor) WriteApplicationData(w *wire.Writer, ts time.Time, n int) []Record {
	return e.write(w, ts, ContentApplicationData, n)
}

// WriteHandshake frames a handshake message of n bytes.
func (e *Encryptor) WriteHandshake(w *wire.Writer, ts time.Time, n int) []Record {
	return e.write(w, ts, ContentHandshake, n)
}

// appendBody emits one record of n body bytes directly into w — zero or
// PRNG fill in place, with no intermediate body buffer.
func (e *Encryptor) appendBody(w *wire.Writer, typ ContentType, ver Version, n int) {
	AppendRecordHeader(w, typ, ver, n)
	if e.rng != nil {
		w.Fill(n, e.rng)
	} else {
		w.Zero(n)
	}
}

func (e *Encryptor) write(w *wire.Writer, ts time.Time, typ ContentType, n int) []Record {
	e.splitBuf = e.Splitter.AppendSplit(e.splitBuf[:0], n)
	out := make([]Record, 0, len(e.splitBuf))
	for _, pt := range e.splitBuf {
		ct := e.Suite.CiphertextLen(pt)
		off := int64(w.Len())
		e.appendBody(w, typ, e.Version, ct)
		out = append(out, Record{
			Type: typ, Version: e.Version, Length: ct,
			Time: ts, StreamOffset: off,
		})
	}
	return out
}

// HandshakeTranscript appends a plausible client-side TLS handshake
// (ClientHello, then ChangeCipherSpec + Finished) to w. Sizes follow the
// observed ranges for 2019-era browsers: the attack must correctly skip
// these records, so captures include them.
func (e *Encryptor) HandshakeTranscript(w *wire.Writer, ts time.Time, helloLen int) []Record {
	out := make([]Record, 0, 3)
	off := int64(w.Len())
	e.appendBody(w, ContentHandshake, VersionTLS10, helloLen)
	out = append(out, Record{Type: ContentHandshake, Version: VersionTLS10,
		Length: helloLen, Time: ts, StreamOffset: off})

	off = int64(w.Len())
	AppendRecord(w, ContentChangeCipherSpec, e.Version, []byte{1})
	out = append(out, Record{Type: ContentChangeCipherSpec, Version: e.Version,
		Length: 1, Time: ts, StreamOffset: off})

	finished := e.Suite.CiphertextLen(16)
	off = int64(w.Len())
	AppendRecordHeader(w, ContentHandshake, e.Version, finished)
	w.Zero(finished)
	out = append(out, Record{Type: ContentHandshake, Version: e.Version,
		Length: finished, Time: ts, StreamOffset: off})
	return out
}
