package tlsrec

import (
	"time"

	"repro/internal/wire"
)

// Encryptor is the write-side length model: it turns application writes
// into sequences of framed records exactly as a TLS stack would, so the
// simulator can synthesize the ciphertext byte stream an eavesdropper
// observes. Record bodies are filled with PRNG noise (they are opaque to
// the attack; realistic entropy keeps accidental structure out of tests).
type Encryptor struct {
	Suite    CipherSuite
	Splitter Splitter
	Version  Version
	rng      *wire.RNG
}

// NewEncryptor returns an Encryptor for the given suite and splitter.
// rng may be nil, in which case record bodies are zero-filled.
func NewEncryptor(suite CipherSuite, sp Splitter, ver Version, rng *wire.RNG) *Encryptor {
	if ver == 0 {
		ver = VersionTLS12
	}
	return &Encryptor{Suite: suite, Splitter: sp, Version: ver, rng: rng}
}

// WriteApplicationData frames one application-layer write of n plaintext
// bytes into w and returns the resulting record descriptors (with Time
// set to ts). Only the length of the plaintext matters; bodies are noise.
func (e *Encryptor) WriteApplicationData(w *wire.Writer, ts time.Time, n int) []Record {
	return e.write(w, ts, ContentApplicationData, n)
}

// WriteHandshake frames a handshake message of n bytes.
func (e *Encryptor) WriteHandshake(w *wire.Writer, ts time.Time, n int) []Record {
	return e.write(w, ts, ContentHandshake, n)
}

func (e *Encryptor) write(w *wire.Writer, ts time.Time, typ ContentType, n int) []Record {
	var out []Record
	for _, pt := range e.Splitter.Split(n) {
		ct := e.Suite.CiphertextLen(pt)
		body := make([]byte, ct)
		if e.rng != nil {
			for i := range body {
				body[i] = byte(e.rng.Uint64())
			}
		}
		off := int64(w.Len())
		AppendRecord(w, typ, e.Version, body)
		out = append(out, Record{
			Type: typ, Version: e.Version, Length: ct,
			Time: ts, StreamOffset: off,
		})
	}
	return out
}

// HandshakeTranscript appends a plausible client-side TLS handshake
// (ClientHello, then ChangeCipherSpec + Finished) to w. Sizes follow the
// observed ranges for 2019-era browsers: the attack must correctly skip
// these records, so captures include them.
func (e *Encryptor) HandshakeTranscript(w *wire.Writer, ts time.Time, helloLen int) []Record {
	var out []Record
	hello := make([]byte, helloLen)
	if e.rng != nil {
		for i := range hello {
			hello[i] = byte(e.rng.Uint64())
		}
	}
	off := int64(w.Len())
	AppendRecord(w, ContentHandshake, VersionTLS10, hello)
	out = append(out, Record{Type: ContentHandshake, Version: VersionTLS10,
		Length: helloLen, Time: ts, StreamOffset: off})

	off = int64(w.Len())
	AppendRecord(w, ContentChangeCipherSpec, e.Version, []byte{1})
	out = append(out, Record{Type: ContentChangeCipherSpec, Version: e.Version,
		Length: 1, Time: ts, StreamOffset: off})

	finished := e.Suite.CiphertextLen(16)
	body := make([]byte, finished)
	off = int64(w.Len())
	AppendRecord(w, ContentHandshake, e.Version, body)
	out = append(out, Record{Type: ContentHandshake, Version: e.Version,
		Length: finished, Time: ts, StreamOffset: off})
	return out
}
