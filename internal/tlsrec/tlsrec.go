// Package tlsrec models the TLS/SSL record layer as seen by a passive
// eavesdropper: the 5-byte plaintext record header (content type, version,
// length) followed by an opaque ciphertext body.
//
// The White Mirror side-channel is exactly the record length field, which
// stays visible after encryption. This package provides (a) framing —
// writing and parsing record streams — and (b) a length model: how many
// ciphertext bytes a given plaintext produces under a cipher suite, and
// how a TLS stack splits large writes into records. The simulator uses the
// forward direction to synthesize traffic and the attack uses the parser.
package tlsrec

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/wire"
)

// ContentType is the TLS record content type byte.
type ContentType uint8

// Content types relevant to the pipeline.
const (
	ContentChangeCipherSpec ContentType = 20
	ContentAlert            ContentType = 21
	ContentHandshake        ContentType = 22
	ContentApplicationData  ContentType = 23
)

// String names the content type.
func (c ContentType) String() string {
	switch c {
	case ContentChangeCipherSpec:
		return "change_cipher_spec"
	case ContentAlert:
		return "alert"
	case ContentHandshake:
		return "handshake"
	case ContentApplicationData:
		return "application_data"
	default:
		return fmt.Sprintf("content(%d)", uint8(c))
	}
}

// Version is the TLS record-layer protocol version.
type Version uint16

// Record-layer versions.
const (
	VersionTLS10 Version = 0x0301
	VersionTLS12 Version = 0x0303
	// VersionTLS13 records still carry 0x0303 on the wire; the constant
	// marks an Encryptor as speaking the 1.3 record layer and never
	// appears in a synthesized header.
	VersionTLS13 Version = 0x0304
)

// RecordVersion identifies the record-layer *generation* a TLS stack
// speaks — the framing an eavesdropper observes — as opposed to the
// Version carried in record headers (TLS 1.3 records carry the 1.2 value
// 0x0303 for middlebox compatibility, RFC 8446 §5.1).
type RecordVersion int

// Record-layer generations.
const (
	// RecordTLS12 is the classic record layer: true content types visible
	// in every header, handshake and CCS records interleaved with data.
	RecordTLS12 RecordVersion = iota
	// RecordTLS13 is the RFC 8446 record layer: after the hello exchange
	// every protected record travels as outer-type application_data, the
	// true content type hides in the encrypted TLSInnerPlaintext, and a
	// padding policy may inflate record lengths.
	RecordTLS13
)

// WireVersion returns the Version an Encryptor of this generation is
// constructed with — the one place the generation→version rule lives, so
// every producer (session, capture noise flows) frames identically.
func (v RecordVersion) WireVersion() Version {
	if v == RecordTLS13 {
		return VersionTLS13
	}
	return VersionTLS12
}

// String names the record generation.
func (v RecordVersion) String() string {
	switch v {
	case RecordTLS12:
		return "tls1.2"
	case RecordTLS13:
		return "tls1.3"
	default:
		return fmt.Sprintf("record-version(%d)", int(v))
	}
}

// headerLen is the record header size: type(1) + version(2) + length(2).
const headerLen = 5

// MaxRecordPayload is the maximum TLSCiphertext fragment length
// (2^14 + 2048, RFC 5246 §6.2.3).
const MaxRecordPayload = 16384 + 2048

// Errors from the parser.
var (
	ErrShortRecord = errors.New("tlsrec: record extends past available bytes")
	ErrBadLength   = errors.New("tlsrec: record length exceeds protocol maximum")
	ErrBadVersion  = errors.New("tlsrec: implausible record version")
	// ErrMixedVersions marks a flow whose framing switches record-layer
	// generations mid-stream — e.g. a plaintext handshake or CCS record
	// appearing after TLS 1.3 framing was negotiated. One TCP conversation
	// speaks one record layer; a violation means the scanner is not
	// looking at a single well-formed TLS flow (port reuse spliced two
	// captures together, or the stream is corrupt) and the flow is
	// rejected rather than misread.
	ErrMixedVersions = errors.New("tlsrec: mixed TLS 1.2/1.3 record framing in one flow")
)

// Record is one TLS record as observed on the wire.
type Record struct {
	Type    ContentType
	Version Version
	// Length is the ciphertext fragment length from the header — the
	// side-channel value the attack classifies.
	Length int
	// Time is the capture timestamp of the TCP segment that carried the
	// record's first byte.
	Time time.Time
	// StreamOffset is the record header's byte offset in the TCP stream.
	StreamOffset int64
	// Body holds the (opaque) fragment bytes when parsed from a full
	// stream; nil when only lengths were recovered.
	Body []byte
}

// WireLen is the record's total on-wire size including the header.
func (r Record) WireLen() int { return headerLen + r.Length }

// AppendRecord frames body as a single record. It panics if body exceeds
// MaxRecordPayload, which indicates a splitter bug upstream.
func AppendRecord(w *wire.Writer, typ ContentType, ver Version, body []byte) {
	AppendRecordHeader(w, typ, ver, len(body))
	w.Write(body)
}

// AppendRecordHeader frames the 5-byte header of a record whose body the
// caller will append next (e.g. in place via Writer.Zero/Fill). It panics
// if n exceeds MaxRecordPayload, which indicates a splitter bug upstream.
func AppendRecordHeader(w *wire.Writer, typ ContentType, ver Version, n int) {
	if n > MaxRecordPayload {
		panic(fmt.Sprintf("tlsrec: fragment of %d bytes exceeds maximum", n))
	}
	w.U8(uint8(typ))
	w.U16(uint16(ver))
	w.U16(uint16(n))
}

// timeAt resolves the capture time for a stream offset given chunk
// boundaries, implemented by the caller as a closure; see ParseStream.
type timeAt func(off int64) time.Time

// ParseStream scans a reassembled TCP byte stream and returns every
// complete TLS record. at maps stream offsets to capture times (pass nil
// to leave timestamps zero). Parsing is strict about structure (lengths,
// known content types for the first record) but tolerates a trailing
// partial record, returning the records recovered so far plus the number
// of trailing bytes it could not consume.
func ParseStream(stream []byte, at timeAt) ([]Record, int, error) {
	var recs []Record
	off := 0
	for off+headerLen <= len(stream) {
		typ := ContentType(stream[off])
		ver := Version(uint16(stream[off+1])<<8 | uint16(stream[off+2]))
		length := int(stream[off+3])<<8 | int(stream[off+4])
		if err := validateHeader(typ, ver, length, len(recs) == 0); err != nil {
			return recs, len(stream) - off, err
		}
		if off+headerLen+length > len(stream) {
			// Trailing partial record: normal for live or truncated captures.
			break
		}
		rec := Record{
			Type: typ, Version: ver, Length: length,
			StreamOffset: int64(off),
			Body:         stream[off+headerLen : off+headerLen+length],
		}
		if at != nil {
			rec.Time = at(int64(off))
		}
		recs = append(recs, rec)
		off += headerLen + length
	}
	return recs, len(stream) - off, nil
}

func validateHeader(typ ContentType, ver Version, length int, first bool) error {
	if length > MaxRecordPayload {
		return fmt.Errorf("%w: %d", ErrBadLength, length)
	}
	switch typ {
	case ContentChangeCipherSpec, ContentAlert, ContentHandshake, ContentApplicationData:
	default:
		return fmt.Errorf("tlsrec: unknown content type %d at record boundary", typ)
	}
	if first {
		// The first record of a TLS connection is a handshake record with
		// a plausible version; anything else means we are not looking at
		// TLS (or the capture started mid-record).
		if ver>>8 != 0x03 {
			return fmt.Errorf("%w: %#04x", ErrBadVersion, uint16(ver))
		}
	}
	return nil
}

// StreamParser is an incremental record scanner for live feeds: bytes are
// appended as segments arrive and completed records pop out.
type StreamParser struct {
	buf    []byte
	offset int64 // stream offset of buf[0]
	now    time.Time
	recs   []Record
	err    error
}

// NewStreamParser returns an empty incremental parser.
func NewStreamParser() *StreamParser { return &StreamParser{} }

// Feed appends stream bytes that arrived at time ts. Completed records are
// retrievable via Records.
func (p *StreamParser) Feed(ts time.Time, data []byte) {
	if p.err != nil {
		return
	}
	p.now = ts
	p.buf = append(p.buf, data...)
	for len(p.buf) >= headerLen {
		typ := ContentType(p.buf[0])
		ver := Version(uint16(p.buf[1])<<8 | uint16(p.buf[2]))
		length := int(p.buf[3])<<8 | int(p.buf[4])
		if err := validateHeader(typ, ver, length, p.offset == 0 && len(p.recs) == 0); err != nil {
			p.err = err
			return
		}
		if len(p.buf) < headerLen+length {
			return
		}
		body := append([]byte(nil), p.buf[headerLen:headerLen+length]...)
		p.recs = append(p.recs, Record{
			Type: typ, Version: ver, Length: length,
			Time: ts, StreamOffset: p.offset, Body: body,
		})
		p.buf = p.buf[headerLen+length:]
		p.offset += int64(headerLen + length)
	}
}

// Records drains and returns the completed records.
func (p *StreamParser) Records() []Record {
	out := p.recs
	p.recs = nil
	return out
}

// Err reports a fatal framing error, after which Feed is a no-op.
func (p *StreamParser) Err() error { return p.err }

// Pending returns the number of buffered bytes not yet forming a record.
func (p *StreamParser) Pending() int { return len(p.buf) }

// RecordScanner is a header-only streaming record extractor: bytes are fed
// in arrival order (e.g. straight from TCP reassembly chunks) and only the
// 5-byte headers are ever buffered — body bytes are counted and skipped
// without being copied or concatenated. This is the attack pipeline's hot
// path: the side-channel needs lengths and times, never bodies, so a
// multi-megabyte capture costs a record-descriptor slice and nothing else.
type RecordScanner struct {
	recs     []Record
	released int // records dropped from the front by ReleaseRecords
	hdr      [headerLen]byte
	// hdrLen counts header bytes accumulated so far for the record being
	// started; hdrOff/hdrTime pin its stream offset and arrival time.
	hdrLen  int
	hdrOff  int64
	hdrTime time.Time
	skip    int   // body bytes of the current record still to discard
	off     int64 // absolute stream offset of the next input byte
	err     error

	// Version inference from framing: the first record after a
	// ChangeCipherSpec discriminates the generations (see note).
	ccsSeen  bool
	verKnown bool
	version  RecordVersion
}

// NewRecordScanner returns an empty scanner positioned at stream offset 0.
func NewRecordScanner() *RecordScanner { return &RecordScanner{} }

// Feed consumes stream bytes that arrived at time ts. Completed record
// headers are appended to the result list; bodies are skipped in place.
func (s *RecordScanner) Feed(ts time.Time, data []byte) {
	if s.err != nil {
		return
	}
	for len(data) > 0 {
		if s.skip > 0 {
			n := s.skip
			if n > len(data) {
				n = len(data)
			}
			s.skip -= n
			s.off += int64(n)
			data = data[n:]
			continue
		}
		if s.hdrLen == 0 {
			s.hdrOff, s.hdrTime = s.off, ts
		}
		n := copy(s.hdr[s.hdrLen:], data)
		s.hdrLen += n
		s.off += int64(n)
		data = data[n:]
		if s.hdrLen < headerLen {
			return
		}
		typ := ContentType(s.hdr[0])
		ver := Version(uint16(s.hdr[1])<<8 | uint16(s.hdr[2]))
		length := int(s.hdr[3])<<8 | int(s.hdr[4])
		if err := validateHeader(typ, ver, length, s.released+len(s.recs) == 0); err != nil {
			s.err = err
			return
		}
		if err := s.noteFraming(typ); err != nil {
			s.err = err
			return
		}
		s.recs = append(s.recs, Record{
			Type: typ, Version: ver, Length: length,
			Time: s.hdrTime, StreamOffset: s.hdrOff,
		})
		s.hdrLen = 0
		s.skip = length
	}
}

// Records returns the complete records scanned and not yet released. A
// trailing partial record (header or body cut off mid-stream) is absent,
// matching ParseStream's tolerance for truncated captures.
func (s *RecordScanner) Records() []Record {
	if s.skip > 0 && len(s.recs) > 0 {
		// The last record's body never finished arriving; exclude it so a
		// truncated capture parses exactly as it does through ParseStream.
		return s.recs[:len(s.recs)-1]
	}
	return s.recs
}

// Released returns the number of record descriptors dropped by
// ReleaseRecords; Records()[0], when present, has absolute index
// Released().
func (s *RecordScanner) Released() int { return s.released }

// ReleaseRecords drops every complete record with absolute index < n from
// the scanner's retention — the descriptor-level analogue of
// tcpreasm.Stream.ReleaseThrough. A rolling-window consumer that has
// classified a record and will never revisit it (a rejected noise flow,
// the server direction whose lengths the attack never reads) releases it
// so descriptor memory is bounded by the window, not the tap's lifetime.
// Scanning continues unaffected; a record whose body is still arriving is
// never released. Releasing past the completed count is clamped.
func (s *RecordScanner) ReleaseRecords(n int) {
	if complete := s.released + len(s.Records()); n > complete {
		n = complete
	}
	k := n - s.released
	if k <= 0 {
		return
	}
	rest := copy(s.recs, s.recs[k:])
	for i := rest; i < len(s.recs); i++ {
		s.recs[i] = Record{}
	}
	s.recs = s.recs[:rest]
	s.released = n
}

// noteFraming drives the record-generation inference. Both generations
// put the hello exchange in the clear, so the discriminator is the first
// record after the ChangeCipherSpec: TLS 1.2 carries its encrypted
// Finished as a visible handshake record (type 22), while TLS 1.3 wraps
// everything from that point in outer application_data (type 23, the CCS
// itself being a compatibility dummy). Once 1.3 framing is established,
// a later plaintext handshake or CCS record is a generation violation.
func (s *RecordScanner) noteFraming(typ ContentType) error {
	if s.verKnown && s.version == RecordTLS13 &&
		(typ == ContentHandshake || typ == ContentChangeCipherSpec) {
		return fmt.Errorf("%w: %s record after TLS 1.3 framing", ErrMixedVersions, typ)
	}
	switch {
	case typ == ContentChangeCipherSpec:
		s.ccsSeen = true
	case s.ccsSeen && !s.verKnown:
		s.verKnown = true
		if typ == ContentApplicationData {
			s.version = RecordTLS13
		} else {
			s.version = RecordTLS12
		}
	}
	return nil
}

// NegotiatedVersion reports the record generation inferred from the
// flow's framing, and whether enough of the handshake has been seen to
// infer it (the discriminating record is the first one after the
// ChangeCipherSpec).
func (s *RecordScanner) NegotiatedVersion() (RecordVersion, bool) {
	return s.version, s.verKnown
}

// Err reports a fatal framing error, after which Feed is a no-op.
func (s *RecordScanner) Err() error { return s.err }
