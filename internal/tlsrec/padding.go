package tlsrec

import (
	"fmt"

	"repro/internal/wire"
)

// PaddingMode selects how a TLS 1.3 stack pads records.
type PaddingMode int

// Padding modes.
const (
	// PadNone sends every record at its natural length (the default; what
	// production stacks do today).
	PadNone PaddingMode = iota
	// PadToMultiple rounds every TLSInnerPlaintext up to a multiple of
	// the parameter, collapsing nearby plaintext lengths onto shared
	// buckets — the classic length-hiding countermeasure.
	PadToMultiple
	// PadRandom appends a per-record uniform random pad in [0, Param],
	// drawn from a seeded stream, smearing each plaintext length across
	// an interval instead of a point.
	PadRandom
)

// PaddingPolicy models RFC 8446 §5.4 record padding: zeros appended to
// the TLSInnerPlaintext (after the hidden content-type byte) before
// encryption. The eavesdropper sees only the inflated ciphertext length,
// which is exactly the side-channel this repository measures — a policy
// is therefore described entirely by its length arithmetic.
//
// The zero value is PadNone. Padding is a TLS 1.3 mechanism; 1.2 record
// synthesis ignores any policy.
type PaddingPolicy struct {
	// Mode selects the padding scheme.
	Mode PaddingMode
	// Param is the bucket multiple (PadToMultiple) or the maximum
	// per-record pad in bytes, inclusive (PadRandom). Ignored by PadNone.
	Param int
}

// PadToMultipleOf returns the policy that rounds every inner plaintext up
// to a multiple of n bytes.
func PadToMultipleOf(n int) PaddingPolicy {
	return PaddingPolicy{Mode: PadToMultiple, Param: n}
}

// PadRandomUpTo returns the policy that appends a uniform random pad of
// [0, n] bytes per record.
func PadRandomUpTo(n int) PaddingPolicy {
	return PaddingPolicy{Mode: PadRandom, Param: n}
}

// String renders the policy the way reports and flags spell it:
// "none", "pad-to-64", "pad-random-128".
func (p PaddingPolicy) String() string {
	switch p.Mode {
	case PadToMultiple:
		return fmt.Sprintf("pad-to-%d", p.Param)
	case PadRandom:
		return fmt.Sprintf("pad-random-%d", p.Param)
	default:
		return "none"
	}
}

// Envelope returns the maximum number of bytes the policy can add to any
// record — the band widening a padding-aware classifier trainer applies,
// since training examples only cover the pads that happened to be drawn.
func (p PaddingPolicy) Envelope() int {
	switch p.Mode {
	case PadToMultiple:
		if p.Param > 1 {
			return p.Param - 1
		}
	case PadRandom:
		if p.Param > 0 {
			return p.Param
		}
	}
	return 0
}

// ResolveRecordFlags maps the record-layer CLI flags the cmds share
// (-tls13, -pad-to, -pad-random) to a record version and padding policy,
// enforcing the cross-flag rules in one place: the pad modes are
// mutually exclusive, and padding requires the 1.3 record layer (1.2 has
// no padding mechanism).
func ResolveRecordFlags(tls13 bool, padTo, padRandom int) (RecordVersion, PaddingPolicy, error) {
	var pad PaddingPolicy
	switch {
	case padTo > 0 && padRandom > 0:
		return 0, pad, fmt.Errorf("tlsrec: -pad-to and -pad-random are mutually exclusive")
	case padTo > 0:
		pad = PadToMultipleOf(padTo)
	case padRandom > 0:
		pad = PadRandomUpTo(padRandom)
	}
	if pad.Mode != PadNone && !tls13 {
		return 0, pad, fmt.Errorf("tlsrec: record padding requires -tls13 (TLS 1.2 has no padding mechanism)")
	}
	if tls13 {
		return RecordTLS13, pad, nil
	}
	return RecordTLS12, pad, nil
}

// PadBytes returns the pad for one record whose TLSInnerPlaintext
// (content plus the hidden type byte) is n bytes. rng is consulted only
// by PadRandom; passing nil there draws no pad, so deterministic callers
// must supply a seeded stream.
func (p PaddingPolicy) PadBytes(n int, rng *wire.RNG) int {
	switch p.Mode {
	case PadToMultiple:
		if p.Param > 1 {
			if rem := n % p.Param; rem != 0 {
				return p.Param - rem
			}
		}
	case PadRandom:
		if p.Param > 0 && rng != nil {
			return rng.IntRange(0, p.Param)
		}
	}
	return 0
}
