package tlsrec

import (
	"testing"
	"time"

	"repro/internal/wire"
)

// buildStream frames a few records and returns the wire bytes.
func buildStream(t *testing.T) ([]byte, []Record) {
	t.Helper()
	w := wire.NewWriter(0)
	enc := NewEncryptor(SuiteAESGCM128TLS12, DefaultSplitter, VersionTLS12, wire.NewRNG(5))
	ts := time.Unix(100, 0)
	var want []Record
	want = append(want, enc.HandshakeTranscript(w, ts, 517)...)
	for i, n := range []int{300, 2000, 40000, 0, 16384} {
		at := ts.Add(time.Duration(i+1) * time.Second)
		want = append(want, enc.WriteApplicationData(w, at, n)...)
	}
	return w.Bytes(), want
}

// TestRecordScannerMatchesParseStream feeds the same stream through the
// full parser and the header-only scanner in awkward chunkings and
// demands identical record sequences (minus bodies).
func TestRecordScannerMatchesParseStream(t *testing.T) {
	stream, _ := buildStream(t)
	full, rest, err := ParseStream(stream, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rest != 0 {
		t.Fatalf("trailing bytes: %d", rest)
	}
	for _, chunk := range []int{1, 2, 3, 5, 7, 1000, len(stream)} {
		sc := NewRecordScanner()
		for off := 0; off < len(stream); off += chunk {
			end := min(off+chunk, len(stream))
			sc.Feed(time.Unix(int64(200+off), 0), stream[off:end])
			if err := sc.Err(); err != nil {
				t.Fatalf("chunk=%d: %v", chunk, err)
			}
		}
		got := sc.Records()
		if len(got) != len(full) {
			t.Fatalf("chunk=%d: %d records, want %d", chunk, len(got), len(full))
		}
		for i := range full {
			if got[i].Type != full[i].Type || got[i].Length != full[i].Length ||
				got[i].Version != full[i].Version || got[i].StreamOffset != full[i].StreamOffset {
				t.Fatalf("chunk=%d: record %d = %+v, want %+v", chunk, i, got[i], full[i])
			}
		}
	}
}

// TestRecordScannerTimestampsFirstHeaderByte pins the timestamp
// semantics: a record is stamped with the arrival time of the chunk that
// carried its first header byte.
func TestRecordScannerTimestampsFirstHeaderByte(t *testing.T) {
	stream, _ := buildStream(t)
	sc := NewRecordScanner()
	// Two chunks, split mid-record somewhere in the middle.
	split := len(stream) / 2
	t0, t1 := time.Unix(10, 0), time.Unix(20, 0)
	sc.Feed(t0, stream[:split])
	sc.Feed(t1, stream[split:])
	for _, r := range sc.Records() {
		want := t0
		if r.StreamOffset >= int64(split) {
			want = t1
		}
		if !r.Time.Equal(want) {
			t.Fatalf("record at offset %d has time %v, want %v", r.StreamOffset, r.Time, want)
		}
	}
}

// TestRecordScannerTruncatedBody matches ParseStream's behaviour: a
// record whose body is cut off is not reported.
func TestRecordScannerTruncatedBody(t *testing.T) {
	stream, _ := buildStream(t)
	cut := stream[:len(stream)-3]
	full, _, err := ParseStream(cut, nil)
	if err != nil {
		t.Fatal(err)
	}
	sc := NewRecordScanner()
	sc.Feed(time.Unix(1, 0), cut)
	if got := sc.Records(); len(got) != len(full) {
		t.Fatalf("scanner recovered %d records from truncated stream, parser %d", len(got), len(full))
	}
}

// TestRecordScannerRejectsGarbage mirrors the parser's validation.
func TestRecordScannerRejectsGarbage(t *testing.T) {
	sc := NewRecordScanner()
	sc.Feed(time.Unix(1, 0), []byte{0x99, 0x03, 0x03, 0x00, 0x01, 0x00})
	if sc.Err() == nil {
		t.Fatal("scanner accepted an unknown content type")
	}
}

func TestAppendSplitMatchesSplit(t *testing.T) {
	sps := []Splitter{
		{},
		{MaxPlaintext: 1400},
		{MaxPlaintext: 16384, FirstRecordMax: 1},
	}
	for _, sp := range sps {
		for _, n := range []int{0, 1, 1399, 1400, 1401, 16384, 16385, 50000} {
			a := sp.Split(n)
			b := sp.AppendSplit(nil, n)
			if len(a) != len(b) {
				t.Fatalf("split mismatch for %+v n=%d", sp, n)
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("split mismatch for %+v n=%d at %d", sp, n, i)
				}
			}
		}
	}
}

// TestRecordScannerReleaseRecords pins the descriptor-release cursor: the
// released prefix is gone, Released stays absolute, scanning continues,
// and a record whose body is still arriving can never be released.
func TestRecordScannerReleaseRecords(t *testing.T) {
	stream, _ := buildStream(t)
	sc := NewRecordScanner()
	// Feed all but the final byte: the last record's body is incomplete.
	sc.Feed(time.Unix(300, 0), stream[:len(stream)-1])
	complete := len(sc.Records())
	if complete == 0 {
		t.Fatal("no complete records")
	}
	all := append([]Record(nil), sc.Records()...)

	sc.ReleaseRecords(2)
	if sc.Released() != 2 {
		t.Fatalf("Released = %d", sc.Released())
	}
	if got := sc.Records(); len(got) != complete-2 || got[0].StreamOffset != all[2].StreamOffset {
		t.Fatalf("retained tail wrong: %d records, first %+v", len(got), got[0])
	}

	// Releasing "everything" is clamped to the complete records; the
	// in-flight partial record survives and completes on the last byte.
	sc.ReleaseRecords(1 << 30)
	if sc.Released() != complete {
		t.Fatalf("clamped release: Released = %d, want %d", sc.Released(), complete)
	}
	sc.Feed(time.Unix(301, 0), stream[len(stream)-1:])
	if got := sc.Records(); len(got) != 1 {
		t.Fatalf("final record lost across release: %d retained", len(got))
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	// Backwards release is a no-op.
	sc.ReleaseRecords(1)
	if sc.Released() != complete {
		t.Errorf("backwards release moved the cursor: %d", sc.Released())
	}
}
