// Package wire provides low-level byte packing/unpacking helpers, the
// Internet checksum, and a deterministic PRNG shared by every simulator
// module so that whole-repo experiments are reproducible from a single seed.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// ErrShortBuffer is returned when a decode runs past the end of its input.
var ErrShortBuffer = errors.New("wire: short buffer")

// Reader is a bounds-checked big-endian cursor over a byte slice.
// All Read* methods record the first error and become no-ops afterwards,
// so a decode routine can issue a sequence of reads and check Err once.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader returns a Reader positioned at the start of buf.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// Err reports the first error encountered by any Read* call.
func (r *Reader) Err() error { return r.err }

// Offset returns the number of bytes consumed so far.
func (r *Reader) Offset() int { return r.off }

// Remaining returns the number of unconsumed bytes.
func (r *Reader) Remaining() int {
	if r.off >= len(r.buf) {
		return 0
	}
	return len(r.buf) - r.off
}

func (r *Reader) need(n int) bool {
	if r.err != nil {
		return false
	}
	if r.Remaining() < n {
		r.err = fmt.Errorf("%w: need %d bytes at offset %d, have %d",
			ErrShortBuffer, n, r.off, r.Remaining())
		return false
	}
	return true
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	if !r.need(1) {
		return 0
	}
	v := r.buf[r.off]
	r.off++
	return v
}

// U16 reads a big-endian uint16.
func (r *Reader) U16() uint16 {
	if !r.need(2) {
		return 0
	}
	v := binary.BigEndian.Uint16(r.buf[r.off:])
	r.off += 2
	return v
}

// U32 reads a big-endian uint32.
func (r *Reader) U32() uint32 {
	if !r.need(4) {
		return 0
	}
	v := binary.BigEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

// U64 reads a big-endian uint64.
func (r *Reader) U64() uint64 {
	if !r.need(8) {
		return 0
	}
	v := binary.BigEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

// Bytes reads n bytes, returning a sub-slice of the underlying buffer
// (no copy). The caller must not mutate it.
func (r *Reader) Bytes(n int) []byte {
	if n < 0 {
		if r.err == nil {
			r.err = fmt.Errorf("wire: negative read length %d", n)
		}
		return nil
	}
	if !r.need(n) {
		return nil
	}
	v := r.buf[r.off : r.off+n]
	r.off += n
	return v
}

// Skip advances the cursor n bytes.
func (r *Reader) Skip(n int) {
	if !r.need(n) {
		return
	}
	r.off += n
}

// Rest returns every unconsumed byte and advances to the end.
func (r *Reader) Rest() []byte {
	v := r.buf[r.off:]
	r.off = len(r.buf)
	return v
}

// Writer is an append-only big-endian byte builder.
type Writer struct {
	buf []byte
	// dirty reports whether bytes beyond len(buf) may be nonzero. A fresh
	// backing array from make is zero everywhere, and appends only ever
	// write at len, so bytes past the high-water mark stay zero until the
	// Writer is reset or recycled; Zero exploits this to skip memclr on
	// pristine regions — the simulation writes megabytes of zero record
	// bodies per session.
	dirty bool
	// discard turns the Writer into a pure length model: appends advance
	// virtual without storing bytes. Used by lean simulations that need
	// exact stream offsets but never read the payload back.
	discard bool
	virtual int
}

// NewWriter returns a Writer with the given initial capacity hint.
func NewWriter(capHint int) *Writer {
	return &Writer{buf: make([]byte, 0, capHint)}
}

// NewDiscardWriter returns a Writer that tracks offsets but stores
// nothing: Len advances exactly as a real Writer's would, Bytes stays
// nil. It models a byte stream whose contents nobody will ever read —
// e.g. the multi-megabyte server direction of a profiling session, where
// only record descriptors and offsets matter.
func NewDiscardWriter() *Writer { return &Writer{discard: true} }

// Len returns the number of bytes written so far.
func (w *Writer) Len() int {
	if w.discard {
		return w.virtual
	}
	return len(w.buf)
}

// Bytes returns the accumulated buffer (nil for a discard Writer).
func (w *Writer) Bytes() []byte { return w.buf }

// U8 appends one byte.
func (w *Writer) U8(v uint8) {
	if w.discard {
		w.virtual++
		return
	}
	w.buf = append(w.buf, v)
}

// U16 appends a big-endian uint16.
func (w *Writer) U16(v uint16) {
	if w.discard {
		w.virtual += 2
		return
	}
	w.buf = binary.BigEndian.AppendUint16(w.buf, v)
}

// U32 appends a big-endian uint32.
func (w *Writer) U32(v uint32) {
	if w.discard {
		w.virtual += 4
		return
	}
	w.buf = binary.BigEndian.AppendUint32(w.buf, v)
}

// U64 appends a big-endian uint64.
func (w *Writer) U64(v uint64) {
	if w.discard {
		w.virtual += 8
		return
	}
	w.buf = binary.BigEndian.AppendUint64(w.buf, v)
}

// Write appends raw bytes.
func (w *Writer) Write(p []byte) {
	if w.discard {
		w.virtual += len(p)
		return
	}
	w.buf = append(w.buf, p...)
}

// grow extends the buffer length by n, reallocating geometrically when
// capacity runs out. The extended region may contain stale bytes when the
// Writer is dirty; callers overwrite or clear it.
func (w *Writer) grow(n int) (l int) {
	l = len(w.buf)
	if cap(w.buf)-l >= n {
		w.buf = w.buf[:l+n]
		return l
	}
	newCap := 2 * cap(w.buf)
	if newCap < l+n {
		newCap = l + n
	}
	nb := make([]byte, l+n, newCap)
	copy(nb, w.buf)
	w.buf = nb
	// Only the copied prefix [0, l) carries old data; everything beyond
	// came zeroed from make, so the writer is pristine again.
	w.dirty = false
	return l
}

// Zero appends n zero bytes in place, without the intermediate make+copy
// of append — the hot path when synthesizing megabytes of opaque record
// bodies per session. On a pristine (never recycled) backing array the
// extension is free: the bytes are already zero.
func (w *Writer) Zero(n int) {
	if n <= 0 {
		return
	}
	if w.discard {
		w.virtual += n
		return
	}
	l := w.grow(n)
	if w.dirty {
		clear(w.buf[l : l+n])
	}
}

// Fill appends n pseudo-random bytes drawn from rng directly into the
// buffer, eight bytes per generator step.
func (w *Writer) Fill(n int, rng *RNG) {
	if n <= 0 {
		return
	}
	if w.discard {
		// Advance the generator as the materialized path would, so a lean
		// run consumes the identical RNG stream.
		for i := 0; i < (n+7)/8; i++ {
			rng.Uint64()
		}
		w.virtual += n
		return
	}
	l := w.grow(n)
	b := w.buf[l : l+n]
	i := 0
	for ; i+8 <= n; i += 8 {
		binary.LittleEndian.PutUint64(b[i:], rng.Uint64())
	}
	if i < n {
		v := rng.Uint64()
		for ; i < n; i++ {
			b[i] = byte(v)
			v >>= 8
		}
	}
}

// Reset truncates the buffer to zero length, keeping its capacity. The
// truncated-away bytes remain in the backing array, so the Writer becomes
// dirty (Zero must clear from here on).
func (w *Writer) Reset() {
	if len(w.buf) > 0 {
		w.dirty = true
	}
	w.buf = w.buf[:0]
}

// CopyBytes returns an exact-size copy of the accumulated bytes, so a
// pooled Writer can be recycled while the caller keeps the data.
func (w *Writer) CopyBytes() []byte {
	out := make([]byte, len(w.buf))
	copy(out, w.buf)
	return out
}

// maxPooledWriterCap bounds how large a buffer the pool retains; anything
// bigger is dropped so one pathological session cannot pin memory forever.
const maxPooledWriterCap = 64 << 20

// writerPool recycles the multi-megabyte per-session stream buffers, the
// single largest allocation in the simulation hot path.
var writerPool = sync.Pool{New: func() any { return &Writer{} }}

// GetWriter returns a pooled Writer with at least capHint capacity and
// zero length. Pair with PutWriter once the contents have been copied out.
// Recycled writers are dirty: their Zero pays a memclr, so pool writers
// only where the contents are fully overwritten (e.g. frame arenas).
func GetWriter(capHint int) *Writer {
	w := writerPool.Get().(*Writer)
	if cap(w.buf) < capHint {
		w.buf = make([]byte, 0, capHint)
		w.dirty = false
	} else {
		w.Reset()
	}
	return w
}

// PutWriter returns a Writer to the pool. The caller must not retain the
// Writer or any slice of its buffer (use CopyBytes for surviving data).
// Discard Writers are not pooled.
func PutWriter(w *Writer) {
	if w == nil || w.discard {
		return
	}
	if cap(w.buf) > maxPooledWriterCap {
		w.buf = nil
	}
	writerPool.Put(w)
}

// SetU16 overwrites a big-endian uint16 at an absolute offset, used to
// back-patch length and checksum fields after a payload is appended.
// It is a no-op on a discard Writer.
func (w *Writer) SetU16(off int, v uint16) {
	if w.discard {
		return
	}
	binary.BigEndian.PutUint16(w.buf[off:], v)
}

// Checksum computes the 16-bit one's-complement Internet checksum
// (RFC 1071) over data. An odd trailing byte is padded with zero.
func Checksum(data []byte) uint16 {
	var sum uint32
	n := len(data)
	for i := 0; i+1 < n; i += 2 {
		sum += uint32(binary.BigEndian.Uint16(data[i:]))
	}
	if n%2 == 1 {
		sum += uint32(data[n-1]) << 8
	}
	for sum > 0xffff {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}

// AddChecksum folds a partial sum with additional data, for pseudo-header
// checksums computed in pieces. Pass the running sum from a previous call
// (0 initially) and finish with FinishChecksum.
func AddChecksum(sum uint32, data []byte) uint32 {
	n := len(data)
	for i := 0; i+1 < n; i += 2 {
		sum += uint32(binary.BigEndian.Uint16(data[i:]))
	}
	if n%2 == 1 {
		sum += uint32(data[n-1]) << 8
	}
	return sum
}

// FinishChecksum folds carries and complements a running sum started with
// AddChecksum.
func FinishChecksum(sum uint32) uint16 {
	for sum > 0xffff {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}
