// Package wire provides low-level byte packing/unpacking helpers, the
// Internet checksum, and a deterministic PRNG shared by every simulator
// module so that whole-repo experiments are reproducible from a single seed.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrShortBuffer is returned when a decode runs past the end of its input.
var ErrShortBuffer = errors.New("wire: short buffer")

// Reader is a bounds-checked big-endian cursor over a byte slice.
// All Read* methods record the first error and become no-ops afterwards,
// so a decode routine can issue a sequence of reads and check Err once.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader returns a Reader positioned at the start of buf.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// Err reports the first error encountered by any Read* call.
func (r *Reader) Err() error { return r.err }

// Offset returns the number of bytes consumed so far.
func (r *Reader) Offset() int { return r.off }

// Remaining returns the number of unconsumed bytes.
func (r *Reader) Remaining() int {
	if r.off >= len(r.buf) {
		return 0
	}
	return len(r.buf) - r.off
}

func (r *Reader) need(n int) bool {
	if r.err != nil {
		return false
	}
	if r.Remaining() < n {
		r.err = fmt.Errorf("%w: need %d bytes at offset %d, have %d",
			ErrShortBuffer, n, r.off, r.Remaining())
		return false
	}
	return true
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	if !r.need(1) {
		return 0
	}
	v := r.buf[r.off]
	r.off++
	return v
}

// U16 reads a big-endian uint16.
func (r *Reader) U16() uint16 {
	if !r.need(2) {
		return 0
	}
	v := binary.BigEndian.Uint16(r.buf[r.off:])
	r.off += 2
	return v
}

// U32 reads a big-endian uint32.
func (r *Reader) U32() uint32 {
	if !r.need(4) {
		return 0
	}
	v := binary.BigEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

// U64 reads a big-endian uint64.
func (r *Reader) U64() uint64 {
	if !r.need(8) {
		return 0
	}
	v := binary.BigEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

// Bytes reads n bytes, returning a sub-slice of the underlying buffer
// (no copy). The caller must not mutate it.
func (r *Reader) Bytes(n int) []byte {
	if n < 0 {
		if r.err == nil {
			r.err = fmt.Errorf("wire: negative read length %d", n)
		}
		return nil
	}
	if !r.need(n) {
		return nil
	}
	v := r.buf[r.off : r.off+n]
	r.off += n
	return v
}

// Skip advances the cursor n bytes.
func (r *Reader) Skip(n int) {
	if !r.need(n) {
		return
	}
	r.off += n
}

// Rest returns every unconsumed byte and advances to the end.
func (r *Reader) Rest() []byte {
	v := r.buf[r.off:]
	r.off = len(r.buf)
	return v
}

// Writer is an append-only big-endian byte builder.
type Writer struct {
	buf []byte
}

// NewWriter returns a Writer with the given initial capacity hint.
func NewWriter(capHint int) *Writer {
	return &Writer{buf: make([]byte, 0, capHint)}
}

// Len returns the number of bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

// Bytes returns the accumulated buffer.
func (w *Writer) Bytes() []byte { return w.buf }

// U8 appends one byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// U16 appends a big-endian uint16.
func (w *Writer) U16(v uint16) {
	w.buf = binary.BigEndian.AppendUint16(w.buf, v)
}

// U32 appends a big-endian uint32.
func (w *Writer) U32(v uint32) {
	w.buf = binary.BigEndian.AppendUint32(w.buf, v)
}

// U64 appends a big-endian uint64.
func (w *Writer) U64(v uint64) {
	w.buf = binary.BigEndian.AppendUint64(w.buf, v)
}

// Write appends raw bytes.
func (w *Writer) Write(p []byte) { w.buf = append(w.buf, p...) }

// Zero appends n zero bytes.
func (w *Writer) Zero(n int) {
	w.buf = append(w.buf, make([]byte, n)...)
}

// SetU16 overwrites a big-endian uint16 at an absolute offset, used to
// back-patch length and checksum fields after a payload is appended.
func (w *Writer) SetU16(off int, v uint16) {
	binary.BigEndian.PutUint16(w.buf[off:], v)
}

// Checksum computes the 16-bit one's-complement Internet checksum
// (RFC 1071) over data. An odd trailing byte is padded with zero.
func Checksum(data []byte) uint16 {
	var sum uint32
	n := len(data)
	for i := 0; i+1 < n; i += 2 {
		sum += uint32(binary.BigEndian.Uint16(data[i:]))
	}
	if n%2 == 1 {
		sum += uint32(data[n-1]) << 8
	}
	for sum > 0xffff {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}

// AddChecksum folds a partial sum with additional data, for pseudo-header
// checksums computed in pieces. Pass the running sum from a previous call
// (0 initially) and finish with FinishChecksum.
func AddChecksum(sum uint32, data []byte) uint32 {
	n := len(data)
	for i := 0; i+1 < n; i += 2 {
		sum += uint32(binary.BigEndian.Uint16(data[i:]))
	}
	if n%2 == 1 {
		sum += uint32(data[n-1]) << 8
	}
	return sum
}

// FinishChecksum folds carries and complements a running sum started with
// AddChecksum.
func FinishChecksum(sum uint32) uint16 {
	for sum > 0xffff {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}
