package wire

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestReaderSequence(t *testing.T) {
	w := NewWriter(32)
	w.U8(0xab)
	w.U16(0x1234)
	w.U32(0xdeadbeef)
	w.U64(0x0102030405060708)
	w.Write([]byte{9, 9, 9})

	r := NewReader(w.Bytes())
	if got := r.U8(); got != 0xab {
		t.Errorf("U8 = %#x, want 0xab", got)
	}
	if got := r.U16(); got != 0x1234 {
		t.Errorf("U16 = %#x, want 0x1234", got)
	}
	if got := r.U32(); got != 0xdeadbeef {
		t.Errorf("U32 = %#x, want 0xdeadbeef", got)
	}
	if got := r.U64(); got != 0x0102030405060708 {
		t.Errorf("U64 = %#x", got)
	}
	if got := r.Bytes(3); !bytes.Equal(got, []byte{9, 9, 9}) {
		t.Errorf("Bytes = %v", got)
	}
	if r.Err() != nil {
		t.Fatalf("unexpected error: %v", r.Err())
	}
	if r.Remaining() != 0 {
		t.Errorf("Remaining = %d, want 0", r.Remaining())
	}
}

func TestReaderShort(t *testing.T) {
	r := NewReader([]byte{1, 2})
	_ = r.U32()
	if r.Err() == nil {
		t.Fatal("expected short-buffer error")
	}
	// Subsequent reads must stay no-ops and keep the first error.
	first := r.Err()
	_ = r.U64()
	if r.Err() != first {
		t.Errorf("error changed after sticky failure")
	}
}

func TestReaderNegativeLength(t *testing.T) {
	r := NewReader([]byte{1, 2, 3})
	if got := r.Bytes(-1); got != nil {
		t.Errorf("Bytes(-1) = %v, want nil", got)
	}
	if r.Err() == nil {
		t.Fatal("expected error for negative length")
	}
}

func TestReaderSkipRest(t *testing.T) {
	r := NewReader([]byte{1, 2, 3, 4, 5})
	r.Skip(2)
	if got := r.Rest(); !bytes.Equal(got, []byte{3, 4, 5}) {
		t.Errorf("Rest = %v", got)
	}
	if r.Remaining() != 0 {
		t.Errorf("Remaining after Rest = %d", r.Remaining())
	}
}

func TestWriterSetU16(t *testing.T) {
	w := NewWriter(8)
	w.U16(0) // placeholder
	w.Write([]byte{1, 2, 3, 4})
	w.SetU16(0, uint16(w.Len()))
	r := NewReader(w.Bytes())
	if got := r.U16(); got != 6 {
		t.Errorf("back-patched length = %d, want 6", got)
	}
}

func TestWriterZero(t *testing.T) {
	w := NewWriter(4)
	w.Zero(5)
	if w.Len() != 5 {
		t.Fatalf("Len = %d, want 5", w.Len())
	}
	for i, b := range w.Bytes() {
		if b != 0 {
			t.Errorf("byte %d = %d, want 0", i, b)
		}
	}
}

func TestChecksumKnownVector(t *testing.T) {
	// RFC 1071 worked example: 0x0001 0xf203 0xf4f5 0xf6f7 -> sum 0xddf2,
	// checksum = ^0xddf2 = 0x220d.
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(data); got != 0x220d {
		t.Errorf("Checksum = %#04x, want 0x220d", got)
	}
}

func TestChecksumOddLength(t *testing.T) {
	// An odd trailing byte is padded with zero on the right.
	if got, want := Checksum([]byte{0xab}), ^uint16(0xab00); got != want {
		t.Errorf("Checksum odd = %#04x, want %#04x", got, want)
	}
}

func TestChecksumIncrementalMatchesOneShot(t *testing.T) {
	f := func(a, b []byte) bool {
		if len(a)%2 == 1 {
			// Incremental summation is only defined on 16-bit boundaries
			// between chunks; keep the first chunk even.
			a = a[:len(a)-1]
		}
		joined := append(append([]byte{}, a...), b...)
		one := Checksum(joined)
		two := FinishChecksum(AddChecksum(AddChecksum(0, a), b))
		return one == two
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChecksumVerifies(t *testing.T) {
	// Inserting the checksum into the data must make the raw sum 0xffff.
	data := []byte{0x45, 0x00, 0x00, 0x28, 0x1c, 0x46, 0x40, 0x00, 0x40, 0x06,
		0x00, 0x00, 0xc0, 0xa8, 0x00, 0x68, 0xc0, 0xa8, 0x00, 0x01}
	ck := Checksum(data)
	data[10] = byte(ck >> 8)
	data[11] = byte(ck)
	if got := Checksum(data); got != 0 {
		t.Errorf("checksum over self-checksummed data = %#04x, want 0", got)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("sequence diverged at step %d", i)
		}
	}
}

func TestRNGZeroSeedUsable(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Error("zero-seeded RNG looks degenerate")
	}
}

func TestRNGForkIndependence(t *testing.T) {
	parent := NewRNG(7)
	c1 := parent.Fork(1)
	c2 := parent.Fork(2)
	same := 0
	for i := 0; i < 64; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("forked streams collide too often: %d/64", same)
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d out of range", v)
		}
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGIntRange(t *testing.T) {
	r := NewRNG(5)
	seen := map[int]bool{}
	for i := 0; i < 500; i++ {
		v := r.IntRange(10, 12)
		if v < 10 || v > 12 {
			t.Fatalf("IntRange out of bounds: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 3 {
		t.Errorf("IntRange did not cover [10,12]: %v", seen)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(11)
	for i := 0; i < 1000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
	}
}

func TestRNGNormalMoments(t *testing.T) {
	r := NewRNG(13)
	const n = 20000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Normal(10, 2)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-10) > 0.1 {
		t.Errorf("Normal mean = %v, want ~10", mean)
	}
	if math.Abs(math.Sqrt(variance)-2) > 0.1 {
		t.Errorf("Normal stddev = %v, want ~2", math.Sqrt(variance))
	}
}

func TestRNGExponentialMean(t *testing.T) {
	r := NewRNG(17)
	const n = 20000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Exponential(5)
	}
	if mean := sum / n; math.Abs(mean-5) > 0.25 {
		t.Errorf("Exponential mean = %v, want ~5", mean)
	}
}

func TestRNGChoiceWeights(t *testing.T) {
	r := NewRNG(19)
	counts := [3]int{}
	for i := 0; i < 30000; i++ {
		counts[r.Choice([]float64{1, 2, 1})]++
	}
	// Middle weight is twice the others: expect ~50% of draws.
	frac := float64(counts[1]) / 30000
	if math.Abs(frac-0.5) > 0.03 {
		t.Errorf("weight-2 option drawn %v of the time, want ~0.5", frac)
	}
}

func TestRNGChoiceDegenerate(t *testing.T) {
	r := NewRNG(23)
	if got := r.Choice([]float64{0, 0, 0}); got != 0 {
		t.Errorf("all-zero weights Choice = %d, want 0", got)
	}
	if got := r.Choice([]float64{-1, 0, 5}); got != 2 {
		t.Errorf("negative weights Choice = %d, want 2", got)
	}
}

func TestRNGShufflePermutes(t *testing.T) {
	r := NewRNG(29)
	s := []int{0, 1, 2, 3, 4, 5, 6, 7}
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	seen := map[int]bool{}
	for _, v := range s {
		seen[v] = true
	}
	if len(seen) != 8 {
		t.Errorf("shuffle lost elements: %v", s)
	}
}
