package wire

import (
	"bytes"
	"testing"
)

func TestWriterZeroClearsDirtyRegions(t *testing.T) {
	w := NewWriter(64)
	w.Fill(32, NewRNG(1))
	w.Reset() // stale nonzero bytes now sit beyond len
	w.Zero(32)
	if !bytes.Equal(w.Bytes(), make([]byte, 32)) {
		t.Fatal("Zero left stale bytes after Reset")
	}
}

func TestWriterZeroPristineSkipsNothingObservable(t *testing.T) {
	w := NewWriter(8)
	w.U8(0xff)
	w.Zero(100) // forces growth past the hint
	w.U8(0xee)
	b := w.Bytes()
	if b[0] != 0xff || b[101] != 0xee {
		t.Fatal("writes misplaced around Zero")
	}
	if !bytes.Equal(b[1:101], make([]byte, 100)) {
		t.Fatal("Zero region not zero")
	}
}

func TestWriterFillDeterministic(t *testing.T) {
	a, b := NewWriter(0), NewWriter(0)
	a.Fill(37, NewRNG(9))
	b.Fill(37, NewRNG(9))
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("Fill not deterministic")
	}
	var nonzero bool
	for _, v := range a.Bytes() {
		nonzero = nonzero || v != 0
	}
	if !nonzero {
		t.Fatal("Fill produced all zeros")
	}
}

func TestDiscardWriterTracksOffsets(t *testing.T) {
	real, lean := NewWriter(0), NewDiscardWriter()
	ops := func(w *Writer, rng *RNG) {
		w.U8(1)
		w.U16(2)
		w.U32(3)
		w.U64(4)
		w.Write([]byte("hello"))
		w.Zero(1000)
		w.Fill(17, rng)
	}
	r1, r2 := NewRNG(3), NewRNG(3)
	ops(real, r1)
	ops(lean, r2)
	if real.Len() != lean.Len() {
		t.Fatalf("discard len %d, real len %d", lean.Len(), real.Len())
	}
	if lean.Bytes() != nil {
		t.Fatal("discard writer materialized bytes")
	}
	// Both paths must consume the same RNG stream so lean and
	// materialized simulations stay byte-identical downstream.
	if r1.Uint64() != r2.Uint64() {
		t.Fatal("discard Fill desynchronized the RNG stream")
	}
}

func TestWriterPoolRoundTrip(t *testing.T) {
	w := GetWriter(128)
	w.Fill(64, NewRNG(2))
	PutWriter(w)
	w2 := GetWriter(16)
	if w2.Len() != 0 {
		t.Fatal("pooled writer not reset")
	}
	w2.Zero(64)
	if !bytes.Equal(w2.Bytes(), make([]byte, 64)) {
		t.Fatal("recycled writer leaked stale bytes through Zero")
	}
	PutWriter(w2)
}

func TestCopyBytesIndependent(t *testing.T) {
	w := NewWriter(0)
	w.Write([]byte{1, 2, 3})
	c := w.CopyBytes()
	w.Write([]byte{4})
	if !bytes.Equal(c, []byte{1, 2, 3}) {
		t.Fatal("CopyBytes aliases the writer buffer")
	}
}

func TestRNGStreamPureAndDecorrelated(t *testing.T) {
	r := NewRNG(77)
	a1 := r.Stream(1).Uint64()
	a2 := r.Stream(1).Uint64()
	if a1 != a2 {
		t.Fatal("Stream advanced the parent state")
	}
	if r.Stream(1).Uint64() == r.Stream(2).Uint64() {
		t.Fatal("distinct labels produced identical streams")
	}
	// Fork, by contrast, advances the parent.
	before := *r
	r.Fork(1)
	if before.state == r.state {
		t.Fatal("Fork did not advance the parent")
	}
}
