package wire

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (splitmix64 core) used by every simulator module. The whole repository
// avoids math/rand so that a single uint64 seed reproduces an entire
// experiment byte-for-byte across Go versions.
type RNG struct {
	state uint64
}

// NewRNG returns an RNG seeded with seed. A zero seed is remapped to a
// fixed non-zero constant so the zero value is still usable.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &RNG{state: seed}
}

// Fork derives an independent child generator from the current state and a
// stream label, so sub-simulations do not perturb each other's sequences.
// Fork advances the parent, making the child depend on how many forks were
// taken before it; sequentially threaded code relies on that. Concurrent
// code must use Stream instead.
func (r *RNG) Fork(label uint64) *RNG {
	return NewRNG(r.Uint64() ^ (label*0xbf58476d1ce4e5b9 + 0x94d049bb133111eb))
}

// Stream derives an independent child generator from the current state and
// a stream label WITHOUT advancing the parent. Distinct labels yield
// decorrelated streams, and the derivation is a pure function of (state,
// label), so tasks fanned out across a worker pool draw identical
// randomness regardless of scheduling or worker count. Concurrent Stream
// calls on one parent are safe as long as nothing advances it.
func (r *RNG) Stream(label uint64) *RNG {
	z := r.state + (label+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return NewRNG(z ^ (z >> 31))
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("wire: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// IntRange returns a uniform integer in [lo, hi]. It panics if hi < lo.
func (r *RNG) IntRange(lo, hi int) int {
	if hi < lo {
		panic("wire: IntRange with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// Float64 returns a uniform float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Normal returns a normally distributed value with the given mean and
// standard deviation (Box–Muller).
func (r *RNG) Normal(mean, stddev float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// LogNormal returns exp(Normal(mu, sigma)), useful for heavy-tailed chunk
// size and latency models.
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// Exponential returns an exponentially distributed value with the given
// mean (inverse rate).
func (r *RNG) Exponential(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Choice returns an index in [0, len(weights)) drawn with the given
// relative weights. Zero or negative weights are treated as zero. If all
// weights are zero the first index is returned.
func (r *RNG) Choice(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return 0
	}
	x := r.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		if x < w {
			return i
		}
		x -= w
	}
	return len(weights) - 1
}

// Shuffle permutes the first n indices via the supplied swap function
// (Fisher–Yates).
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}
