package dataset

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/profiles"
)

var (
	smallOnce sync.Once
	smallDS   *Dataset
	smallErr  error
)

// smallDataset generates a 12-point dataset once and shares it across
// tests (full generation of 100 is exercised by the benchmark harness;
// tests keep runtime modest).
func smallDataset(t *testing.T) *Dataset {
	t.Helper()
	smallOnce.Do(func() {
		smallDS, smallErr = Generate(Config{N: 12, Seed: 7})
	})
	if smallErr != nil {
		t.Fatal(smallErr)
	}
	return smallDS
}

func TestGenerateCount(t *testing.T) {
	ds := smallDataset(t)
	if len(ds.Points) != 12 {
		t.Fatalf("points = %d", len(ds.Points))
	}
	for i, p := range ds.Points {
		if p.Trace == nil {
			t.Fatalf("point %d has no trace", i)
		}
		if len(p.Trace.GroundTruthDecisions()) == 0 {
			t.Errorf("point %d has no decisions", i)
		}
		if p.Trace.SessionID == "" {
			t.Errorf("point %d has no session ID", i)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(Config{N: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Config{N: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Points {
		da := a.Points[i].Trace.GroundTruthDecisions()
		db := b.Points[i].Trace.GroundTruthDecisions()
		if len(da) != len(db) {
			t.Fatalf("point %d decision counts differ", i)
		}
		for j := range da {
			if da[j] != db[j] {
				t.Fatalf("point %d decision %d differs", i, j)
			}
		}
	}
}

func TestConditionsVary(t *testing.T) {
	ds := smallDataset(t)
	seen := map[string]bool{}
	for _, p := range ds.Points {
		seen[p.Condition.String()] = true
	}
	if len(seen) < 6 {
		t.Errorf("only %d distinct conditions over 12 points", len(seen))
	}
}

func TestWriteAndReadBack(t *testing.T) {
	ds, err := Generate(Config{N: 3, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := ds.WriteTo(dir); err != nil {
		t.Fatal(err)
	}
	// Three pcap + three label json files, plus the manifest.
	pcaps, _ := filepath.Glob(filepath.Join(dir, "*.pcap"))
	jsons, _ := filepath.Glob(filepath.Join(dir, "*.json"))
	if len(pcaps) != 3 || len(jsons) != 4 {
		t.Fatalf("files: %d pcap, %d json", len(pcaps), len(jsons))
	}
	man, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(man.Points) != 3 || man.N != 3 || man.Shard != "" {
		t.Fatalf("manifest: n=%d shard=%q points=%d", man.N, man.Shard, len(man.Points))
	}
	// Pcaps must be non-trivial.
	for _, p := range pcaps {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() < 10_000 {
			t.Errorf("%s is only %d bytes", p, st.Size())
		}
	}
	metas, err := ReadMetadata(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(metas) != 3 {
		t.Fatalf("metadata entries = %d", len(metas))
	}
	for i, m := range metas {
		want := ds.Points[i].Trace.GroundTruthDecisions()
		if len(m.Decisions) != len(want) {
			t.Errorf("meta %d decisions = %d, want %d", i, len(m.Decisions), len(want))
		}
		if len(m.Segments) == 0 {
			t.Errorf("meta %d has no segments", i)
		}
	}
}

func TestTableIContainsAllAxes(t *testing.T) {
	ds := smallDataset(t)
	table := ds.TableI()
	for _, want := range []string{
		"Operating System", "Platform", "Traffic Conditions", "Connection Type",
		"Browser", "Age-group", "Gender", "Political Alignment", "State of Mind",
		"windows", "linux", "mac", "wired", "wireless",
	} {
		if !strings.Contains(table, want) {
			t.Errorf("Table I missing %q", want)
		}
	}
}

func TestTableICountsSum(t *testing.T) {
	ds := smallDataset(t)
	table := ds.TableI()
	// Each attribute's counts must sum to N; spot-check the platform axis
	// by parsing its two rows.
	var desktop, laptop int
	for _, line := range strings.Split(table, "\n") {
		f := strings.Fields(line)
		if len(f) >= 4 && f[1] == "Platform" {
			switch f[2] {
			case "desktop":
				desktop = atoiOr(t, f[3])
			case "laptop":
				laptop = atoiOr(t, f[3])
			}
		}
	}
	if desktop+laptop != len(ds.Points) {
		t.Errorf("platform counts %d+%d != %d", desktop, laptop, len(ds.Points))
	}
}

func atoiOr(t *testing.T, s string) int {
	t.Helper()
	var n int
	for _, c := range s {
		if c < '0' || c > '9' {
			t.Fatalf("not a number: %q", s)
		}
		n = n*10 + int(c-'0')
	}
	return n
}

func TestAttributesCSV(t *testing.T) {
	ds := smallDataset(t)
	var buf bytes.Buffer
	if err := ds.WriteAttributesCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 13 { // header + 12 rows
		t.Fatalf("CSV lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "session,os,platform") {
		t.Errorf("header = %q", lines[0])
	}
	// Decisions column uses D/A strings.
	if !strings.Contains(lines[1], ",D") && !strings.Contains(lines[1], ",A") {
		t.Errorf("row lacks decision string: %q", lines[1])
	}
}

func TestGenerateCustomConditions(t *testing.T) {
	ds, err := Generate(Config{N: 4, Seed: 13,
		Conditions: []profiles.Condition{profiles.Fig2Ubuntu}})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range ds.Points {
		if p.Condition != profiles.Fig2Ubuntu {
			t.Errorf("point condition = %v", p.Condition)
		}
	}
}
