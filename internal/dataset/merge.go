package dataset

import (
	"bytes"
	"crypto/sha256"
	"encoding/csv"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// MergeShards reassembles shard directories into a full corpus at out,
// byte-identical to a single-process run of the same Config (the
// shard-equivalence invariant; TestShardEquivalence_Dataset pins it).
// It validates that every shard carries the same generation fingerprint,
// that the shards cover each point index exactly once, and that every
// copied file matches its manifest hash; one point is resident at a
// time. When writeCSV is set, attributes.csv is rebuilt from the label
// sidecars — identical to what the unsharded writer emits. The merged
// manifest is returned and persisted with the shard marker cleared.
func MergeShards(out string, writeCSV bool, shardDirs ...string) (*Manifest, error) {
	if len(shardDirs) == 0 {
		return nil, fmt.Errorf("dataset: merge: no shard directories")
	}
	type located struct {
		entry ManifestEntry
		dir   string
	}
	var header Manifest
	byIndex := map[int]located{}
	for _, dir := range shardDirs {
		m, err := ReadManifest(dir)
		if err != nil {
			return nil, err
		}
		if header.Format == "" {
			header = Manifest{Format: m.Format, N: m.N, Seed: m.Seed, Graph: m.Graph, Wire: m.Wire}
		} else if m.N != header.N || m.Seed != header.Seed ||
			m.Graph != header.Graph || m.Wire != header.Wire {
			return nil, fmt.Errorf("dataset: merge: %s was generated under a different configuration (n=%d seed=%d graph=%q wire=%q, want n=%d seed=%d graph=%q wire=%q)",
				dir, m.N, m.Seed, m.Graph, m.Wire, header.N, header.Seed, header.Graph, header.Wire)
		}
		for _, e := range m.Points {
			if e.Index < 0 || e.Index >= header.N {
				return nil, fmt.Errorf("dataset: merge: %s lists point %d outside [0,%d)", dir, e.Index, header.N)
			}
			if prev, dup := byIndex[e.Index]; dup {
				return nil, fmt.Errorf("dataset: merge: point %d appears in both %s and %s", e.Index, prev.dir, dir)
			}
			byIndex[e.Index] = located{entry: e, dir: dir}
		}
	}
	if len(byIndex) != header.N {
		for i := 0; i < header.N; i++ {
			if _, ok := byIndex[i]; !ok {
				return nil, fmt.Errorf("dataset: merge: shards cover %d of %d points; point %d is missing",
					len(byIndex), header.N, i)
			}
		}
	}
	if err := os.MkdirAll(out, 0o755); err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	var csvBuf bytes.Buffer
	csvW := csv.NewWriter(&csvBuf)
	if writeCSV {
		if err := csvW.Write(attributesHeader); err != nil {
			return nil, fmt.Errorf("dataset: %w", err)
		}
	}
	for i := 0; i < header.N; i++ {
		loc := byIndex[i]
		e := loc.entry
		if err := copyVerified(loc.dir, out, e.Pcap, e.PcapSHA256, e.PcapBytes); err != nil {
			return nil, err
		}
		labels, err := copyVerifiedBytes(loc.dir, out, e.Labels, e.LabelsSHA256, e.LabelsBytes)
		if err != nil {
			return nil, err
		}
		if writeCSV {
			var m Metadata
			if err := json.Unmarshal(labels, &m); err != nil {
				return nil, fmt.Errorf("dataset: merge: parsing %s: %w", filepath.Join(loc.dir, e.Labels), err)
			}
			if err := csvW.Write(attributesRow(m)); err != nil {
				return nil, fmt.Errorf("dataset: %w", err)
			}
		}
		header.Points = append(header.Points, e)
	}
	if err := writeManifest(out, &header); err != nil {
		return nil, err
	}
	if writeCSV {
		csvW.Flush()
		if err := csvW.Error(); err != nil {
			return nil, fmt.Errorf("dataset: %w", err)
		}
		if err := os.WriteFile(filepath.Join(out, AttributesName), csvBuf.Bytes(), 0o644); err != nil {
			return nil, fmt.Errorf("dataset: %w", err)
		}
	}
	return &header, nil
}

// copyVerifiedBytes copies name from src to dst, checking the bytes
// against the manifest's hash and size, and returns the file contents.
func copyVerifiedBytes(src, dst, name, wantSHA string, wantBytes int64) ([]byte, error) {
	buf, err := os.ReadFile(filepath.Join(src, name))
	if err != nil {
		return nil, fmt.Errorf("dataset: merge: %w", err)
	}
	if int64(len(buf)) != wantBytes {
		return nil, fmt.Errorf("dataset: merge: %s is %d bytes, manifest says %d",
			filepath.Join(src, name), len(buf), wantBytes)
	}
	sum := sha256.Sum256(buf)
	if got := hex.EncodeToString(sum[:]); got != wantSHA {
		return nil, fmt.Errorf("dataset: merge: %s hash %s does not match manifest %s",
			filepath.Join(src, name), got, wantSHA)
	}
	if err := os.WriteFile(filepath.Join(dst, name), buf, 0o644); err != nil {
		return nil, fmt.Errorf("dataset: merge: %w", err)
	}
	return buf, nil
}

// copyVerified is copyVerifiedBytes for callers that discard the bytes.
func copyVerified(src, dst, name, wantSHA string, wantBytes int64) error {
	_, err := copyVerifiedBytes(src, dst, name, wantSHA, wantBytes)
	return err
}
