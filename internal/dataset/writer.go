package dataset

import (
	"bytes"
	"crypto/sha256"
	"encoding/csv"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"repro/internal/capture"
)

// Corpus format constants (see DATASET.md).
const (
	// ManifestName is the manifest's filename inside a corpus directory.
	ManifestName = "manifest.json"
	// ManifestFormat is the format tag every manifest carries; MergeShards
	// refuses to combine directories that disagree on it.
	ManifestFormat = "whitemirror-corpus/1"
	// AttributesName is the attribute-table filename inside a corpus
	// directory.
	AttributesName = "attributes.csv"
)

// Manifest is the corpus index persisted as manifest.json: the effective
// generation fingerprint plus one content-hashed entry per point. Shard
// manifests carry the same header (so MergeShards can check the shards
// belong together) and only their own points; the merged manifest is
// byte-identical to a single-process run's.
type Manifest struct {
	// Format is ManifestFormat.
	Format string `json:"format"`
	// N is the full corpus size, even in a shard manifest.
	N int `json:"n"`
	// Seed is the corpus seed.
	Seed uint64 `json:"seed"`
	// Graph is the script graph's title.
	Graph string `json:"graph"`
	// Wire fingerprints the transport and framing policy
	// (e.g. "tls1.2", "tls1.3+pad-to-256", "quic+pad-full-1252").
	Wire string `json:"wire"`
	// Shard is "index/count" for a shard directory, omitted for a full
	// corpus.
	Shard string `json:"shard,omitempty"`
	// Points lists the persisted points in ascending index order.
	Points []ManifestEntry `json:"points"`
}

// ManifestEntry records one persisted point and the content hashes that
// make shard merges verifiable.
type ManifestEntry struct {
	// Index is the point's global corpus index (0-based).
	Index int `json:"index"`
	// SessionID is the trace's session identifier.
	SessionID string `json:"sessionId"`
	// Pcap is the capture's filename relative to the corpus directory.
	Pcap string `json:"pcap"`
	// PcapSHA256 is the hex SHA-256 of the capture bytes.
	PcapSHA256 string `json:"pcapSha256"`
	// PcapBytes is the capture's size.
	PcapBytes int64 `json:"pcapBytes"`
	// Labels is the sidecar's filename relative to the corpus directory.
	Labels string `json:"labels"`
	// LabelsSHA256 is the hex SHA-256 of the sidecar bytes.
	LabelsSHA256 string `json:"labelsSha256"`
	// LabelsBytes is the sidecar's size.
	LabelsBytes int64 `json:"labelsBytes"`
}

// ReadManifest loads a corpus directory's manifest.json.
func ReadManifest(dir string) (*Manifest, error) {
	buf, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(buf, &m); err != nil {
		return nil, fmt.Errorf("dataset: parsing %s: %w", filepath.Join(dir, ManifestName), err)
	}
	if m.Format != ManifestFormat {
		return nil, fmt.Errorf("dataset: %s: unsupported format %q (want %q)",
			dir, m.Format, ManifestFormat)
	}
	return &m, nil
}

// writeManifest persists m under dir.
func writeManifest(dir string, m *Manifest) error {
	buf, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(filepath.Join(dir, ManifestName), buf, 0o644); err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	return nil
}

// nameWidth returns the zero-padded filename width for an N-point
// corpus: at least 3 digits (the historical layout) and enough for N so
// lexical directory order equals index order at any size.
func nameWidth(n int) int {
	if w := len(strconv.Itoa(n)); w > 3 {
		return w
	}
	return 3
}

// DatasetWriter streams a corpus to disk one point at a time: each Write
// persists the point's capture and label sidecar and appends its
// content-hashed manifest entry, so nothing but the manifest (a few
// hundred bytes per point) accumulates in memory. Close flushes the
// manifest and, when CSV is set, the attribute table. Writers are not
// safe for concurrent use; feed one from a Stream sink.
type DatasetWriter struct {
	// CSV controls whether Close writes attributes.csv. NewDatasetWriter
	// defaults it to true for full-corpus writers and false for shard
	// writers: the merged corpus rebuilds the table from sidecars, and a
	// per-shard fragment would not be the documented file.
	CSV bool

	dir    string
	cfg    Config
	width  int
	man    Manifest
	csvBuf bytes.Buffer
	csvW   *csv.Writer
	closed bool
}

// NewDatasetWriter creates dir (if needed) and returns a writer that
// lays out the corpus format documented in DATASET.md. cfg must be the
// generation config — the writer normalizes it and stamps the manifest
// header from it. Lean configs are rejected: captures need the payload
// bytes.
func NewDatasetWriter(dir string, cfg Config) (*DatasetWriter, error) {
	cfg = cfg.withDefaults()
	if cfg.Lean {
		return nil, fmt.Errorf("dataset: cannot persist a lean corpus (Config.Lean drops the payload bytes captures are made of)")
	}
	if err := cfg.Shard.validate(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	w := &DatasetWriter{
		CSV:   !cfg.Shard.enabled(),
		dir:   dir,
		cfg:   cfg,
		width: nameWidth(cfg.N),
		man: Manifest{
			Format: ManifestFormat,
			N:      cfg.N,
			Seed:   cfg.Seed,
			Graph:  cfg.Graph.Title,
			Wire:   cfg.wireLabel(),
			Shard:  cfg.Shard.String(),
		},
	}
	w.csvW = csv.NewWriter(&w.csvBuf)
	if err := w.csvW.Write(attributesHeader); err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	return w, nil
}

// Write persists one point as NNN.pcap + NNN.json and appends its
// manifest entry. The point's trace must still hold its wire bytes; the
// caller remains responsible for releasing it afterwards.
func (w *DatasetWriter) Write(p Point) error {
	if w.closed {
		return fmt.Errorf("dataset: write to closed writer")
	}
	if p.Trace == nil {
		return fmt.Errorf("dataset: point %d has no trace", p.Index)
	}
	if len(p.Trace.ClientToServer.Bytes) == 0 || len(p.Trace.ServerToClient.Bytes) == 0 {
		return fmt.Errorf("dataset: point %d trace holds no payload bytes (generated with Config.Lean, or already Released)", p.Index)
	}
	name := fmt.Sprintf("%0*d", w.width, p.Index+1)
	var pcap bytes.Buffer
	if err := capture.WritePcap(&pcap, p.Trace, capture.Options{Seed: uint64(p.Index)}); err != nil {
		return fmt.Errorf("dataset: writing %s.pcap: %w", name, err)
	}
	if err := os.WriteFile(filepath.Join(w.dir, name+".pcap"), pcap.Bytes(), 0o644); err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	meta := metadataOf(p)
	labels, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	if err := os.WriteFile(filepath.Join(w.dir, name+".json"), labels, 0o644); err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	pcapSum := sha256.Sum256(pcap.Bytes())
	labelsSum := sha256.Sum256(labels)
	w.man.Points = append(w.man.Points, ManifestEntry{
		Index:        p.Index,
		SessionID:    meta.SessionID,
		Pcap:         name + ".pcap",
		PcapSHA256:   hex.EncodeToString(pcapSum[:]),
		PcapBytes:    int64(pcap.Len()),
		Labels:       name + ".json",
		LabelsSHA256: hex.EncodeToString(labelsSum[:]),
		LabelsBytes:  int64(len(labels)),
	})
	if w.CSV {
		if err := w.csvW.Write(attributesRow(meta)); err != nil {
			return fmt.Errorf("dataset: %w", err)
		}
	}
	return nil
}

// Close flushes the manifest (and the attribute table when CSV is set).
// The writer is unusable afterwards.
func (w *DatasetWriter) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	if err := writeManifest(w.dir, &w.man); err != nil {
		return err
	}
	if w.CSV {
		w.csvW.Flush()
		if err := w.csvW.Error(); err != nil {
			return fmt.Errorf("dataset: %w", err)
		}
		if err := os.WriteFile(filepath.Join(w.dir, AttributesName), w.csvBuf.Bytes(), 0o644); err != nil {
			return fmt.Errorf("dataset: %w", err)
		}
	}
	return nil
}

// Manifest returns the entries written so far; it is complete once Close
// has run.
func (w *DatasetWriter) Manifest() *Manifest { return &w.man }

// GenerateTo streams a corpus straight to disk: each point is generated,
// persisted and its trace released before the next point lands, so
// resident memory is constant in cfg.N (TestGenerateConstantMemory pins
// this). The returned points carry viewer, condition and the released
// trace — enough for TableI — and the manifest describes what was
// written. writeCSV controls attributes.csv for full-corpus runs; shard
// runs never write it (MergeShards rebuilds it).
func GenerateTo(cfg Config, dir string, writeCSV bool) (*Manifest, []Point, error) {
	cfg = cfg.withDefaults()
	w, err := NewDatasetWriter(dir, cfg)
	if err != nil {
		return nil, nil, err
	}
	w.CSV = writeCSV && !cfg.Shard.enabled()
	var points []Point
	err = Stream(cfg, func(p Point) error {
		if err := w.Write(p); err != nil {
			return err
		}
		p.Trace.Release()
		points = append(points, p)
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	if err := w.Close(); err != nil {
		return nil, nil, err
	}
	return w.Manifest(), points, nil
}
