package dataset_test

import (
	"fmt"

	"repro/internal/dataset"
)

// ExampleGenerate_sharded splits a 4-point corpus across two shards.
// Every shard computes the full corpus's viewer population, condition
// assignment and per-point seeds, then generates only the points it
// owns (index mod count), so each point is byte-identical no matter
// which shard — or how many — produced it. wmdataset -shard i/k and
// wmdataset -merge drive the same machinery from the command line.
func ExampleGenerate_sharded() {
	for count := 0; count < 2; count++ {
		ds, err := dataset.Generate(dataset.Config{
			N: 4, Seed: 1, Lean: true, Workers: 1,
			Shard: dataset.Shard{Index: count, Count: 2},
		})
		if err != nil {
			fmt.Println(err)
			return
		}
		for _, p := range ds.Points {
			fmt.Printf("shard %d/2 owns point %d (%s)\n", count, p.Index, p.Trace.SessionID)
		}
	}
	// Output:
	// shard 0/2 owns point 0 (iitm-001)
	// shard 0/2 owns point 2 (iitm-003)
	// shard 1/2 owns point 1 (iitm-002)
	// shard 1/2 owns point 3 (iitm-004)
}
