package dataset

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"testing"
)

// readTree returns name -> contents for every regular file in dir.
func readTree(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string][]byte{}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		buf, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = buf
	}
	return out
}

// TestShardEquivalence_Dataset pins the shard-equivalence invariant:
// splitting generation across 2, 4 or 8 processes and merging the shard
// directories yields a corpus byte-identical to the single-process run —
// pcaps, label sidecars, attributes.csv and the manifest itself.
func TestShardEquivalence_Dataset(t *testing.T) {
	cfg := Config{N: 8, Seed: 21}
	refDir := t.TempDir()
	if _, _, err := GenerateTo(cfg, refDir, true); err != nil {
		t.Fatal(err)
	}
	ref := readTree(t, refDir)
	if len(ref) != 2*cfg.N+2 { // pcap+json per point, manifest, attributes.csv
		names := make([]string, 0, len(ref))
		for n := range ref {
			names = append(names, n)
		}
		sort.Strings(names)
		t.Fatalf("reference corpus has %d files: %v", len(ref), names)
	}

	for _, count := range []int{2, 4, 8} {
		t.Run(fmt.Sprintf("shards=%d", count), func(t *testing.T) {
			dirs := make([]string, count)
			for i := 0; i < count; i++ {
				dirs[i] = t.TempDir()
				shardCfg := cfg
				shardCfg.Shard = Shard{Index: i, Count: count}
				man, _, err := GenerateTo(shardCfg, dirs[i], true)
				if err != nil {
					t.Fatal(err)
				}
				if man.Shard != fmt.Sprintf("%d/%d", i, count) {
					t.Fatalf("shard manifest marker = %q", man.Shard)
				}
				for _, e := range man.Points {
					if e.Index%count != i {
						t.Fatalf("shard %d/%d produced point %d", i, count, e.Index)
					}
				}
			}
			out := t.TempDir()
			if _, err := MergeShards(out, true, dirs...); err != nil {
				t.Fatal(err)
			}
			got := readTree(t, out)
			if len(got) != len(ref) {
				t.Fatalf("merged corpus has %d files, reference %d", len(got), len(ref))
			}
			for name, want := range ref {
				if string(got[name]) != string(want) {
					t.Errorf("%s differs from the single-process corpus", name)
				}
			}
		})
	}
}

// TestMergeShardsRejectsGaps: a merge missing a shard must name the
// first uncovered point instead of silently writing a partial corpus.
func TestMergeShardsRejectsGaps(t *testing.T) {
	cfg := Config{N: 4, Seed: 5}
	shard0, shard1 := t.TempDir(), t.TempDir()
	c0 := cfg
	c0.Shard = Shard{Index: 0, Count: 2}
	if _, _, err := GenerateTo(c0, shard0, false); err != nil {
		t.Fatal(err)
	}
	c1 := cfg
	c1.Shard = Shard{Index: 1, Count: 2}
	if _, _, err := GenerateTo(c1, shard1, false); err != nil {
		t.Fatal(err)
	}
	if _, err := MergeShards(t.TempDir(), false, shard0); err == nil {
		t.Fatal("merge of half the shards succeeded")
	}
	// Mismatched seeds must be rejected too.
	other := t.TempDir()
	cOther := cfg
	cOther.Seed = 6
	cOther.Shard = Shard{Index: 1, Count: 2}
	if _, _, err := GenerateTo(cOther, other, false); err != nil {
		t.Fatal(err)
	}
	if _, err := MergeShards(t.TempDir(), false, shard0, other); err == nil {
		t.Fatal("merge across different seeds succeeded")
	}
	// The well-formed merge still works.
	if _, err := MergeShards(t.TempDir(), false, shard0, shard1); err != nil {
		t.Fatal(err)
	}
}

// TestShardSpecRoundTrip covers the CLI spelling.
func TestShardSpecRoundTrip(t *testing.T) {
	s, err := ParseShard("2/4")
	if err != nil {
		t.Fatal(err)
	}
	if s != (Shard{Index: 2, Count: 4}) || s.String() != "2/4" {
		t.Fatalf("parsed %+v (%q)", s, s.String())
	}
	for _, bad := range []string{"", "3", "4/4", "-1/4", "a/b", "0/0"} {
		if _, err := ParseShard(bad); err == nil {
			t.Errorf("ParseShard(%q) succeeded", bad)
		}
	}
}

// TestGenerateConstantMemory pins the streaming path's memory bound:
// generating a 1,000-point lean corpus holds resident heap flat — a
// bounded window of in-flight traces, never O(N) retention. Checkpoints
// sample HeapAlloc after a forced GC every 100 points; later checkpoints
// may not grow materially over the warmed-up baseline.
func TestGenerateConstantMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("soak-style memory regression; skipped in -short")
	}
	const (
		n     = 1000
		every = 100
	)
	var samples []uint64
	count := 0
	err := Stream(Config{N: n, Seed: 3, Lean: true}, func(p Point) error {
		p.Trace.Release()
		count++
		if count%every == 0 {
			runtime.GC()
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			samples = append(samples, ms.HeapAlloc)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("streamed %d of %d points", count, n)
	}
	// Baseline after two checkpoints: caches (encoding, profiles) are
	// warm. Allow 50% growth plus fixed slack before calling it a leak —
	// O(N) retention would blow through this by orders of magnitude.
	base := samples[1]
	limit := base + base/2 + 8<<20
	for i, s := range samples[2:] {
		if s > limit {
			t.Fatalf("heap grew with corpus size: checkpoint %d retains %d bytes (baseline %d, limit %d)",
				i+2, s, base, limit)
		}
	}
	t.Logf("heap checkpoints (bytes): first=%d base=%d last=%d", samples[0], base, samples[len(samples)-1])
}
