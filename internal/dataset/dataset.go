// Package dataset assembles the reproduction's analogue of the paper's
// IITM-Bandersnatch dataset: data points of the form {encrypted trace,
// ground-truth choices} for a population of viewers spanning the Table I
// operational and behavioural attributes.
//
// Generation is streaming-first: Stream hands points to a sink in index
// order while retaining only a bounded window of in-flight traces, so
// resident memory is constant in the corpus size; Generate is a thin
// accumulator over it for callers that want the whole corpus in memory.
// A deterministic shard protocol (Config.Shard) lets K processes split a
// corpus and MergeShards reassemble it byte-identically — every point's
// bytes depend only on (Config.Seed, point index), never on which shard
// produced it or how many workers ran. DATASET.md documents the on-disk
// corpus format, the manifest schema and the determinism guarantees.
package dataset

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/media"
	"repro/internal/netem"
	"repro/internal/parallel"
	"repro/internal/profiles"
	"repro/internal/quicrec"
	"repro/internal/script"
	"repro/internal/session"
	"repro/internal/stats"
	"repro/internal/tlsrec"
	"repro/internal/viewer"
	"repro/internal/wire"
)

// Point is one dataset entry.
type Point struct {
	Index     int
	Viewer    viewer.Viewer
	Condition profiles.Condition
	Trace     *session.Trace
}

// Dataset is the generated study.
type Dataset struct {
	Points []Point
	Graph  *script.Graph
	// Config is the normalized configuration that generated the dataset;
	// WriteTo stamps it into the corpus manifest.
	Config Config
}

// Shard identifies one slice of the deterministic corpus partition:
// shard Index of Count owns every point whose global index i satisfies
// i % Count == Index. Point bytes are a pure function of (Seed, index),
// so the K shard outputs of a corpus are disjoint subsets of the
// single-process output and MergeShards reassembles them byte-identically
// (the shard-equivalence invariant; see DATASET.md).
type Shard struct {
	// Index is this shard's position, in [0, Count).
	Index int
	// Count is the total number of shards; zero or one means unsharded.
	Count int
}

// enabled reports whether the shard actually partitions the corpus.
func (s Shard) enabled() bool { return s.Count > 1 }

// owns reports whether this shard generates point i.
func (s Shard) owns(i int) bool { return !s.enabled() || i%s.Count == s.Index }

// String renders the shard as the CLI spells it — "index/count" — or ""
// when unsharded, which is also how the manifest records it.
func (s Shard) String() string {
	if !s.enabled() {
		return ""
	}
	return fmt.Sprintf("%d/%d", s.Index, s.Count)
}

// validate rejects out-of-range shard coordinates.
func (s Shard) validate() error {
	if s.Count <= 1 {
		if s.Count < 0 || s.Index != 0 {
			return fmt.Errorf("dataset: invalid shard %d/%d", s.Index, s.Count)
		}
		return nil
	}
	if s.Index < 0 || s.Index >= s.Count {
		return fmt.Errorf("dataset: shard index %d out of range [0,%d)", s.Index, s.Count)
	}
	return nil
}

// ParseShard parses the CLI spelling "index/count" (e.g. "0/4").
func ParseShard(spec string) (Shard, error) {
	idx, cnt, ok := strings.Cut(spec, "/")
	if !ok {
		return Shard{}, fmt.Errorf("dataset: shard spec %q is not index/count", spec)
	}
	i, err := strconv.Atoi(idx)
	if err != nil {
		return Shard{}, fmt.Errorf("dataset: shard spec %q: bad index: %w", spec, err)
	}
	c, err := strconv.Atoi(cnt)
	if err != nil {
		return Shard{}, fmt.Errorf("dataset: shard spec %q: bad count: %w", spec, err)
	}
	if c < 1 {
		return Shard{}, fmt.Errorf("dataset: shard spec %q: count must be >= 1", spec)
	}
	s := Shard{Index: i, Count: c}
	if err := s.validate(); err != nil {
		return Shard{}, err
	}
	return s, nil
}

// Config controls generation.
type Config struct {
	// N is the number of viewers (the paper collected 100).
	N int
	// Seed drives the whole generation deterministically.
	Seed uint64
	// Graph defaults to the Bandersnatch case-study script.
	Graph *script.Graph
	// Encoding defaults to the graph encoded at the default ladder.
	Encoding *media.Encoding
	// Conditions defaults to the full Table I grid, assigned round-robin
	// with shuffling so every axis value appears.
	Conditions []profiles.Condition
	// Workers bounds the session fan-out (0 = the process default:
	// WM_WORKERS or GOMAXPROCS). Output is byte-identical at any count.
	Workers int
	// RecordVersion selects the TLS record layer every session speaks
	// (zero = TLS 1.2, the paper's 2019 stack; RecordTLS13 generates a
	// modern-stack dataset).
	RecordVersion tlsrec.RecordVersion
	// Padding applies an RFC 8446 record-padding policy under TLS 1.3.
	Padding tlsrec.PaddingPolicy
	// Transport selects the wire transport (zero = TLS over TCP;
	// TransportQUIC generates an HTTP/3-era dataset of UDP captures, under
	// which RecordVersion and Padding are ignored — framing is sealed
	// inside 1-RTT packets).
	Transport quicrec.Transport
	// Sizing applies a datagram sizing policy under QUIC.
	Sizing quicrec.SizingPolicy
	// Shard restricts generation to one slice of the deterministic
	// partition: only points with index i where i % Shard.Count ==
	// Shard.Index are produced. The viewer population, condition
	// assignment and per-point seeds are computed for the full corpus in
	// every shard, so each point's bytes are identical at any shard
	// count. The zero value generates the full corpus.
	Shard Shard
	// Lean omits server payload bytes from generated traces
	// (session.Config.OmitServerPayload): record and datagram geometry,
	// client bytes and ground truth stay exact while the large server
	// payloads are never materialized. Lean corpora feed size-only
	// consumers — attackers, Table 1, decode experiments — at a fraction
	// of the memory; they cannot be persisted by DatasetWriter, which
	// needs the payload bytes to synthesize captures.
	Lean bool
}

// withDefaults resolves zero fields to the documented defaults, so every
// consumer (Stream, writers, manifests) agrees on the effective
// configuration.
func (cfg Config) withDefaults() Config {
	if cfg.N <= 0 {
		cfg.N = 100
	}
	if cfg.Graph == nil {
		cfg.Graph = script.Bandersnatch()
	}
	if cfg.Encoding == nil {
		cfg.Encoding = media.EncodeCached(cfg.Graph, media.DefaultLadder, cfg.Seed^0xabcd)
	}
	if len(cfg.Conditions) == 0 {
		cfg.Conditions = profiles.Grid()
	}
	return cfg
}

// wireLabel fingerprints the wire configuration for the manifest: the
// transport plus whichever framing policy shapes observable lengths.
func (cfg Config) wireLabel() string {
	if cfg.Transport == quicrec.TransportQUIC {
		return "quic+" + cfg.Sizing.Label()
	}
	label := cfg.RecordVersion.String()
	if cfg.RecordVersion == tlsrec.RecordTLS13 {
		if pad := cfg.Padding.String(); pad != "none" {
			label += "+" + pad
		}
	}
	return label
}

// Stream generates the corpus one point at a time, handing each owned
// point to sink in ascending index order. Only a bounded window of
// traces (O(Workers), via parallel.StreamN) is in flight at once, so
// resident memory is constant in N — the property that lets wmdataset
// write fleet-scale corpora. The sink must be done with the point's
// trace when it returns (call Trace.Release to drop the wire bytes);
// a sink error aborts generation.
func Stream(cfg Config, sink func(Point) error) error {
	cfg = cfg.withDefaults()
	if err := cfg.Shard.validate(); err != nil {
		return err
	}
	rng := wire.NewRNG(cfg.Seed)
	// Population and condition assignment are computed for the FULL
	// corpus in every shard — they are cheap, and doing so keeps point i
	// identical no matter which shard produces it.
	pop := viewer.SamplePopulation(cfg.N, rng.Fork(1))
	order := make([]int, cfg.N)
	for i := range order {
		order[i] = i % len(cfg.Conditions)
	}
	rng.Fork(2).Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })

	var own []int
	for i := 0; i < cfg.N; i++ {
		if cfg.Shard.owns(i) {
			own = append(own, i)
		}
	}
	return parallel.StreamN(cfg.Workers, len(own), func(j int) (Point, error) {
		i := own[j]
		cond := cfg.Conditions[order[i]]
		tr, err := session.Run(session.Config{
			Graph:             cfg.Graph,
			Encoding:          cfg.Encoding,
			Viewer:            pop[i],
			Condition:         cond,
			SessionID:         fmt.Sprintf("iitm-%03d", i+1),
			Seed:              cfg.Seed*1_000_003 + uint64(i),
			RecordVersion:     cfg.RecordVersion,
			Padding:           cfg.Padding,
			Transport:         cfg.Transport,
			Sizing:            cfg.Sizing,
			OmitServerPayload: cfg.Lean,
		})
		if err != nil {
			return Point{}, fmt.Errorf("dataset: session %d: %w", i, err)
		}
		return Point{Index: i, Viewer: pop[i], Condition: cond, Trace: tr}, nil
	}, func(_ int, p Point) error {
		return sink(p)
	})
}

// Generate builds a dataset of N labeled sessions. Sessions are
// independent given their pre-assigned viewer, condition and seed, so
// they fan out across the worker pool; the result is byte-identical to a
// sequential run at any worker count. All N traces are held in memory —
// for large corpora, use Stream or GenerateTo instead.
func Generate(cfg Config) (*Dataset, error) {
	cfg = cfg.withDefaults()
	points := make([]Point, 0, cfg.N)
	if err := Stream(cfg, func(p Point) error {
		points = append(points, p)
		return nil
	}); err != nil {
		return nil, err
	}
	return &Dataset{Points: points, Graph: cfg.Graph, Config: cfg}, nil
}

// Metadata is the JSON sidecar persisted per point.
type Metadata struct {
	SessionID string `json:"sessionId"`
	Viewer    viewer.Viewer
	Condition conditionJSON `json:"condition"`
	Decisions []bool        `json:"decisions"`
	Segments  []string      `json:"segments"`
}

type conditionJSON struct {
	OS          string `json:"os"`
	Platform    string `json:"platform"`
	Browser     string `json:"browser"`
	Medium      string `json:"medium"`
	TrafficTime string `json:"trafficTime"`
}

// metadataOf builds a point's sidecar document from its trace.
func metadataOf(p Point) Metadata {
	meta := Metadata{
		SessionID: p.Trace.SessionID,
		Viewer:    p.Viewer,
		Condition: conditionJSON{
			OS:          string(p.Condition.OS),
			Platform:    string(p.Condition.Platform),
			Browser:     string(p.Condition.Browser),
			Medium:      string(p.Condition.Medium),
			TrafficTime: string(p.Condition.TrafficTime),
		},
		Decisions: p.Trace.GroundTruthDecisions(),
	}
	for _, s := range p.Trace.Result.Path.Segments {
		meta.Segments = append(meta.Segments, string(s))
	}
	return meta
}

// WriteTo persists the dataset under dir as NNN.pcap + NNN.json pairs
// plus a manifest.json (see DATASET.md). Traces are left intact; callers
// that stream should prefer GenerateTo, which also releases each trace.
func (ds *Dataset) WriteTo(dir string) error {
	w, err := NewDatasetWriter(dir, ds.Config)
	if err != nil {
		return err
	}
	w.CSV = false
	for _, p := range ds.Points {
		if err := w.Write(p); err != nil {
			return err
		}
	}
	return w.Close()
}

// ReadMetadata loads the sidecar files from a persisted dataset
// directory, skipping the corpus manifest.
func ReadMetadata(dir string) ([]Metadata, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	var out []Metadata
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".json" || e.Name() == ManifestName {
			continue
		}
		buf, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, fmt.Errorf("dataset: %w", err)
		}
		var m Metadata
		if err := json.Unmarshal(buf, &m); err != nil {
			return nil, fmt.Errorf("dataset: parsing %s: %w", e.Name(), err)
		}
		out = append(out, m)
	}
	return out, nil
}

// TableI renders the paper's Table I for this dataset: every attribute
// axis with the values present.
func (ds *Dataset) TableI() string {
	countCond := func(f func(profiles.Condition) string) map[string]int {
		m := map[string]int{}
		for _, p := range ds.Points {
			m[f(p.Condition)]++
		}
		return m
	}
	countView := func(f func(viewer.Viewer) string) map[string]int {
		m := map[string]int{}
		for _, p := range ds.Points {
			m[f(p.Viewer)]++
		}
		return m
	}
	rows := [][]string{}
	addRows := func(group, attr string, counts map[string]int, order []string) {
		for _, k := range order {
			rows = append(rows, []string{group, attr, k, fmt.Sprintf("%d", counts[k])})
		}
	}
	addRows("Operational", "Operating System",
		countCond(func(c profiles.Condition) string { return string(c.OS) }),
		[]string{"windows", "linux", "mac"})
	addRows("Operational", "Platform",
		countCond(func(c profiles.Condition) string { return string(c.Platform) }),
		[]string{"desktop", "laptop"})
	addRows("Operational", "Traffic Conditions",
		countCond(func(c profiles.Condition) string { return string(c.TrafficTime) }),
		[]string{string(netem.TrafficMorning), string(netem.TrafficNoon), string(netem.TrafficNight)})
	addRows("Operational", "Connection Type",
		countCond(func(c profiles.Condition) string { return string(c.Medium) }),
		[]string{string(netem.MediumWired), string(netem.MediumWireless)})
	addRows("Operational", "Browser",
		countCond(func(c profiles.Condition) string { return string(c.Browser) }),
		[]string{"chrome", "firefox"})
	addRows("Behavioral", "Age-group",
		countView(func(v viewer.Viewer) string { return string(v.Age) }),
		[]string{"<20", "20-25", "25-30", ">30"})
	addRows("Behavioral", "Gender",
		countView(func(v viewer.Viewer) string { return string(v.Gender) }),
		[]string{"male", "female", "undisclosed"})
	addRows("Behavioral", "Political Alignment",
		countView(func(v viewer.Viewer) string { return string(v.Politics) }),
		[]string{"liberal", "centrist", "communist", "undisclosed"})
	addRows("Behavioral", "State of Mind",
		countView(func(v viewer.Viewer) string { return string(v.Mind) }),
		[]string{"happy", "stressed", "sad", "undisclosed"})
	return stats.RenderTable([]string{"Conditions", "Attribute", "Value", "Viewers"}, rows)
}

// attributesHeader is the CSV schema behavioural-sciences consumers of
// the corpus ingest; DATASET.md documents it.
var attributesHeader = []string{"session", "os", "platform", "browser", "medium",
	"traffic", "age", "gender", "politics", "mind", "decisions"}

// attributesRow renders one point's CSV row from its sidecar document,
// so the streaming writer and MergeShards (which rebuilds the table from
// persisted sidecars) produce identical bytes.
func attributesRow(m Metadata) []string {
	dec := ""
	for _, d := range m.Decisions {
		if d {
			dec += "D"
		} else {
			dec += "A"
		}
	}
	return []string{
		m.SessionID,
		m.Condition.OS, m.Condition.Platform,
		m.Condition.Browser, m.Condition.Medium,
		m.Condition.TrafficTime,
		string(m.Viewer.Age), string(m.Viewer.Gender),
		string(m.Viewer.Politics), string(m.Viewer.Mind),
		dec,
	}
}

// WriteAttributesCSV emits the behavioural/operational attribute table as
// CSV, the form behavioural-sciences consumers of the paper's dataset
// would ingest.
func (ds *Dataset) WriteAttributesCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(attributesHeader); err != nil {
		return err
	}
	for _, p := range ds.Points {
		if err := cw.Write(attributesRow(metadataOf(p))); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
