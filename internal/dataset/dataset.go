// Package dataset assembles the reproduction's analogue of the paper's
// IITM-Bandersnatch dataset: data points of the form {encrypted trace,
// ground-truth choices} for a population of viewers spanning the Table I
// operational and behavioural attributes. Points carry the full session
// trace in memory and can persist to disk as {pcap, metadata JSON} pairs.
package dataset

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/capture"
	"repro/internal/media"
	"repro/internal/netem"
	"repro/internal/parallel"
	"repro/internal/profiles"
	"repro/internal/quicrec"
	"repro/internal/script"
	"repro/internal/session"
	"repro/internal/stats"
	"repro/internal/tlsrec"
	"repro/internal/viewer"
	"repro/internal/wire"
)

// Point is one dataset entry.
type Point struct {
	Index     int
	Viewer    viewer.Viewer
	Condition profiles.Condition
	Trace     *session.Trace
}

// Dataset is the generated study.
type Dataset struct {
	Points []Point
	Graph  *script.Graph
}

// Config controls generation.
type Config struct {
	// N is the number of viewers (the paper collected 100).
	N int
	// Seed drives the whole generation deterministically.
	Seed uint64
	// Graph defaults to the Bandersnatch case-study script.
	Graph *script.Graph
	// Encoding defaults to the graph encoded at the default ladder.
	Encoding *media.Encoding
	// Conditions defaults to the full Table I grid, assigned round-robin
	// with shuffling so every axis value appears.
	Conditions []profiles.Condition
	// Workers bounds the session fan-out (0 = the process default:
	// WM_WORKERS or GOMAXPROCS). Output is byte-identical at any count.
	Workers int
	// RecordVersion selects the TLS record layer every session speaks
	// (zero = TLS 1.2, the paper's 2019 stack; RecordTLS13 generates a
	// modern-stack dataset).
	RecordVersion tlsrec.RecordVersion
	// Padding applies an RFC 8446 record-padding policy under TLS 1.3.
	Padding tlsrec.PaddingPolicy
	// Transport selects the wire transport (zero = TLS over TCP;
	// TransportQUIC generates an HTTP/3-era dataset of UDP captures, under
	// which RecordVersion and Padding are ignored — framing is sealed
	// inside 1-RTT packets).
	Transport quicrec.Transport
	// Sizing applies a datagram sizing policy under QUIC.
	Sizing quicrec.SizingPolicy
}

// Generate builds a dataset of N labeled sessions. Sessions are
// independent given their pre-assigned viewer, condition and seed, so
// they fan out across the worker pool; the result is byte-identical to a
// sequential run at any worker count.
func Generate(cfg Config) (*Dataset, error) {
	if cfg.N <= 0 {
		cfg.N = 100
	}
	if cfg.Graph == nil {
		cfg.Graph = script.Bandersnatch()
	}
	if cfg.Encoding == nil {
		cfg.Encoding = media.EncodeCached(cfg.Graph, media.DefaultLadder, cfg.Seed^0xabcd)
	}
	conds := cfg.Conditions
	if len(conds) == 0 {
		conds = profiles.Grid()
	}
	rng := wire.NewRNG(cfg.Seed)
	pop := viewer.SamplePopulation(cfg.N, rng.Fork(1))

	// Shuffle condition assignment so axes mix across viewers.
	order := make([]int, cfg.N)
	for i := range order {
		order[i] = i % len(conds)
	}
	rng.Fork(2).Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })

	points, err := parallel.MapN(cfg.Workers, cfg.N, func(i int) (Point, error) {
		cond := conds[order[i]]
		tr, err := session.Run(session.Config{
			Graph:         cfg.Graph,
			Encoding:      cfg.Encoding,
			Viewer:        pop[i],
			Condition:     cond,
			SessionID:     fmt.Sprintf("iitm-%03d", i+1),
			Seed:          cfg.Seed*1_000_003 + uint64(i),
			RecordVersion: cfg.RecordVersion,
			Padding:       cfg.Padding,
			Transport:     cfg.Transport,
			Sizing:        cfg.Sizing,
		})
		if err != nil {
			return Point{}, fmt.Errorf("dataset: session %d: %w", i, err)
		}
		return Point{Index: i, Viewer: pop[i], Condition: cond, Trace: tr}, nil
	})
	if err != nil {
		return nil, err
	}
	return &Dataset{Points: points, Graph: cfg.Graph}, nil
}

// Metadata is the JSON sidecar persisted per point.
type Metadata struct {
	SessionID string `json:"sessionId"`
	Viewer    viewer.Viewer
	Condition conditionJSON `json:"condition"`
	Decisions []bool        `json:"decisions"`
	Segments  []string      `json:"segments"`
}

type conditionJSON struct {
	OS          string `json:"os"`
	Platform    string `json:"platform"`
	Browser     string `json:"browser"`
	Medium      string `json:"medium"`
	TrafficTime string `json:"trafficTime"`
}

// WriteTo persists the dataset under dir as NNN.pcap + NNN.json pairs.
func (ds *Dataset) WriteTo(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	for _, p := range ds.Points {
		base := filepath.Join(dir, fmt.Sprintf("%03d", p.Index+1))
		f, err := os.Create(base + ".pcap")
		if err != nil {
			return fmt.Errorf("dataset: %w", err)
		}
		err = capture.WritePcap(f, p.Trace, capture.Options{Seed: uint64(p.Index)})
		cerr := f.Close()
		if err != nil {
			return fmt.Errorf("dataset: writing %s.pcap: %w", base, err)
		}
		if cerr != nil {
			return fmt.Errorf("dataset: closing %s.pcap: %w", base, cerr)
		}
		meta := Metadata{
			SessionID: p.Trace.SessionID,
			Viewer:    p.Viewer,
			Condition: conditionJSON{
				OS:          string(p.Condition.OS),
				Platform:    string(p.Condition.Platform),
				Browser:     string(p.Condition.Browser),
				Medium:      string(p.Condition.Medium),
				TrafficTime: string(p.Condition.TrafficTime),
			},
			Decisions: p.Trace.GroundTruthDecisions(),
		}
		for _, s := range p.Trace.Result.Path.Segments {
			meta.Segments = append(meta.Segments, string(s))
		}
		buf, err := json.MarshalIndent(meta, "", "  ")
		if err != nil {
			return fmt.Errorf("dataset: %w", err)
		}
		if err := os.WriteFile(base+".json", buf, 0o644); err != nil {
			return fmt.Errorf("dataset: %w", err)
		}
	}
	return nil
}

// ReadMetadata loads the sidecar files from a persisted dataset directory.
func ReadMetadata(dir string) ([]Metadata, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	var out []Metadata
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".json" {
			continue
		}
		buf, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, fmt.Errorf("dataset: %w", err)
		}
		var m Metadata
		if err := json.Unmarshal(buf, &m); err != nil {
			return nil, fmt.Errorf("dataset: parsing %s: %w", e.Name(), err)
		}
		out = append(out, m)
	}
	return out, nil
}

// TableI renders the paper's Table I for this dataset: every attribute
// axis with the values present.
func (ds *Dataset) TableI() string {
	countCond := func(f func(profiles.Condition) string) map[string]int {
		m := map[string]int{}
		for _, p := range ds.Points {
			m[f(p.Condition)]++
		}
		return m
	}
	countView := func(f func(viewer.Viewer) string) map[string]int {
		m := map[string]int{}
		for _, p := range ds.Points {
			m[f(p.Viewer)]++
		}
		return m
	}
	rows := [][]string{}
	addRows := func(group, attr string, counts map[string]int, order []string) {
		for _, k := range order {
			rows = append(rows, []string{group, attr, k, fmt.Sprintf("%d", counts[k])})
		}
	}
	addRows("Operational", "Operating System",
		countCond(func(c profiles.Condition) string { return string(c.OS) }),
		[]string{"windows", "linux", "mac"})
	addRows("Operational", "Platform",
		countCond(func(c profiles.Condition) string { return string(c.Platform) }),
		[]string{"desktop", "laptop"})
	addRows("Operational", "Traffic Conditions",
		countCond(func(c profiles.Condition) string { return string(c.TrafficTime) }),
		[]string{string(netem.TrafficMorning), string(netem.TrafficNoon), string(netem.TrafficNight)})
	addRows("Operational", "Connection Type",
		countCond(func(c profiles.Condition) string { return string(c.Medium) }),
		[]string{string(netem.MediumWired), string(netem.MediumWireless)})
	addRows("Operational", "Browser",
		countCond(func(c profiles.Condition) string { return string(c.Browser) }),
		[]string{"chrome", "firefox"})
	addRows("Behavioral", "Age-group",
		countView(func(v viewer.Viewer) string { return string(v.Age) }),
		[]string{"<20", "20-25", "25-30", ">30"})
	addRows("Behavioral", "Gender",
		countView(func(v viewer.Viewer) string { return string(v.Gender) }),
		[]string{"male", "female", "undisclosed"})
	addRows("Behavioral", "Political Alignment",
		countView(func(v viewer.Viewer) string { return string(v.Politics) }),
		[]string{"liberal", "centrist", "communist", "undisclosed"})
	addRows("Behavioral", "State of Mind",
		countView(func(v viewer.Viewer) string { return string(v.Mind) }),
		[]string{"happy", "stressed", "sad", "undisclosed"})
	return stats.RenderTable([]string{"Conditions", "Attribute", "Value", "Viewers"}, rows)
}

// WriteAttributesCSV emits the behavioural/operational attribute table as
// CSV, the form behavioural-sciences consumers of the paper's dataset
// would ingest.
func (ds *Dataset) WriteAttributesCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"session", "os", "platform", "browser", "medium",
		"traffic", "age", "gender", "politics", "mind", "decisions"}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, p := range ds.Points {
		dec := ""
		for _, d := range p.Trace.GroundTruthDecisions() {
			if d {
				dec += "D"
			} else {
				dec += "A"
			}
		}
		row := []string{
			p.Trace.SessionID,
			string(p.Condition.OS), string(p.Condition.Platform),
			string(p.Condition.Browser), string(p.Condition.Medium),
			string(p.Condition.TrafficTime),
			string(p.Viewer.Age), string(p.Viewer.Gender),
			string(p.Viewer.Politics), string(p.Viewer.Mind),
			dec,
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
