package parallel

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestStreamNOrderedEmission(t *testing.T) {
	for _, w := range []int{1, 2, 4, 8} {
		var got []int
		err := StreamN(w, 100, func(i int) (int, error) {
			// Perturb completion order so ordering is earned, not luck.
			if i%7 == 0 {
				time.Sleep(time.Millisecond)
			}
			return i * i, nil
		}, func(i, r int) error {
			if r != i*i {
				t.Fatalf("workers=%d: emit(%d) = %d, want %d", w, i, r, i*i)
			}
			got = append(got, i)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if len(got) != 100 {
			t.Fatalf("workers=%d: emitted %d results", w, len(got))
		}
		for i, v := range got {
			if v != i {
				t.Fatalf("workers=%d: emission order %v", w, got[:i+1])
			}
		}
	}
}

func TestStreamNBoundedWindow(t *testing.T) {
	// With emit slowed down, at most 2×workers results may sit between
	// completion and emission; the token gate also bounds how many fn
	// calls can start ahead of the cursor.
	const workers = 4
	var cursor atomic.Int64
	var maxAhead atomic.Int64
	err := StreamN(workers, 200, func(i int) (int, error) {
		ahead := int64(i) - cursor.Load()
		for {
			m := maxAhead.Load()
			if ahead <= m || maxAhead.CompareAndSwap(m, ahead) {
				break
			}
		}
		return i, nil
	}, func(i, r int) error {
		cursor.Store(int64(i))
		time.Sleep(100 * time.Microsecond)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// The cursor sample races the claim by design; allow one extra
	// window of slack on top of the documented 2×workers bound.
	if limit := int64(4*streamWindow*workers + 1); maxAhead.Load() > limit {
		t.Fatalf("worker ran %d indices ahead of the emit cursor (limit %d)",
			maxAhead.Load(), limit)
	}
}

func TestStreamNMinimalErrorIndex(t *testing.T) {
	sentinel := errors.New("boom")
	for _, w := range []int{1, 3, 8} {
		var emitted []int
		err := StreamN(w, 64, func(i int) (int, error) {
			if i == 20 || i == 41 {
				return 0, fmt.Errorf("task %d: %w", i, sentinel)
			}
			return i, nil
		}, func(i, r int) error {
			emitted = append(emitted, i)
			return nil
		})
		if err == nil || err.Error() != "task 20: boom" {
			t.Fatalf("workers=%d: err = %v, want task 20", w, err)
		}
		if len(emitted) < 20 {
			t.Fatalf("workers=%d: only %d results emitted before the failing index", w, len(emitted))
		}
		for i := 0; i < 20; i++ {
			if emitted[i] != i {
				t.Fatalf("workers=%d: emission prefix %v", w, emitted[:i+1])
			}
		}
		for _, i := range emitted {
			if i >= 20 {
				t.Fatalf("workers=%d: index %d emitted past the failing index", w, i)
			}
		}
	}
}

func TestStreamNEmitError(t *testing.T) {
	sentinel := errors.New("sink full")
	for _, w := range []int{1, 4} {
		var emitted int
		err := StreamN(w, 50, func(i int) (int, error) {
			return i, nil
		}, func(i, r int) error {
			if i == 10 {
				return sentinel
			}
			emitted++
			return nil
		})
		if !errors.Is(err, sentinel) {
			t.Fatalf("workers=%d: err = %v", w, err)
		}
		if emitted != 10 {
			t.Fatalf("workers=%d: emitted %d before the sink error", w, emitted)
		}
	}
}

func TestStreamNPanicPropagates(t *testing.T) {
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("panic did not propagate")
		}
		if p != "kaboom-7" {
			t.Fatalf("recovered %v, want the minimal-index panic", p)
		}
	}()
	_ = StreamN(4, 32, func(i int) (int, error) {
		if i == 7 || i == 23 {
			panic(fmt.Sprintf("kaboom-%d", i))
		}
		return i, nil
	}, func(i, r int) error { return nil })
}

func TestStreamNEmpty(t *testing.T) {
	called := false
	if err := StreamN(4, 0, func(i int) (int, error) { return 0, nil },
		func(i, r int) error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Fatal("emit called for empty range")
	}
}
