// Package parallel is the deterministic parallel execution engine for the
// whole compute stack: a bounded worker pool with an ordered fan-out/fan-in
// primitive used by dataset generation, attacker training and every
// experiment driver.
//
// Determinism is the design constraint. Map dispatches items strictly by
// index, writes results into an index-addressed slice, and reports the
// error of the lowest failing index, so the observable output is
// byte-identical to a sequential run at any worker count. Callers keep
// per-task randomness independent by deriving one RNG stream per index
// from the root seed (wire.RNG.Stream) instead of threading a shared
// generator through the loop.
package parallel

import (
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// EnvWorkers is the environment variable that overrides the default
// worker count for the whole process (flags take precedence over it).
const EnvWorkers = "WM_WORKERS"

// defaultWorkers holds the process-wide override (0 = GOMAXPROCS).
var defaultWorkers atomic.Int64

func init() {
	if v := os.Getenv(EnvWorkers); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			defaultWorkers.Store(int64(n))
		}
	}
}

// SetDefaultWorkers fixes the worker count used when a caller passes 0.
// n <= 0 restores the GOMAXPROCS default. It exists so command-line
// -workers flags can set the knob once for every layer beneath them.
func SetDefaultWorkers(n int) {
	if n < 0 {
		n = 0
	}
	defaultWorkers.Store(int64(n))
}

// Workers resolves a requested worker count: an explicit n > 0 wins, then
// the process default (WM_WORKERS or SetDefaultWorkers), then GOMAXPROCS.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	if d := int(defaultWorkers.Load()); d > 0 {
		return d
	}
	return runtime.GOMAXPROCS(0)
}

// taskPanic carries a worker panic to the caller's goroutine.
type taskPanic struct {
	index int
	value any
}

// Map applies fn to every item with at most Workers(workers) goroutines
// and returns the results in input order. fn must be deterministic per
// index for the engine's reproducibility guarantee to hold; it must not
// assume anything about the order in which indices run concurrently.
//
// On error, remaining items are skipped and the error of the lowest
// failing index is returned — exactly the error a sequential loop would
// have stopped on, because every index below the minimal failing one is
// always computed. A panic inside fn is re-raised on the calling
// goroutine, lowest index first.
func Map[T, R any](workers int, items []T, fn func(i int, item T) (R, error)) ([]R, error) {
	return MapN(workers, len(items), func(i int) (R, error) {
		return fn(i, items[i])
	})
}

// MapN is Map over the index range [0, n) for loops that have no backing
// slice.
func MapN[R any](workers, n int, fn func(i int) (R, error)) ([]R, error) {
	if n <= 0 {
		return nil, nil
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	results := make([]R, n)
	if w <= 1 {
		for i := 0; i < n; i++ {
			r, err := fn(i)
			if err != nil {
				return nil, err
			}
			results[i] = r
		}
		return results, nil
	}

	errs := make([]error, n)
	panics := make([]*taskPanic, n)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	run := func(i int) {
		defer func() {
			if p := recover(); p != nil {
				panics[i] = &taskPanic{index: i, value: p}
				failed.Store(true)
			}
		}()
		r, err := fn(i)
		if err != nil {
			errs[i] = err
			failed.Store(true)
			return
		}
		results[i] = r
	}
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				// Check failed BEFORE claiming: once an index is claimed it
				// always executes, so the minimal failing index is never
				// skipped and error selection stays deterministic.
				if failed.Load() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				run(i)
			}
		}()
	}
	wg.Wait()

	if failed.Load() {
		// Deterministic failure selection: indices are claimed in order, so
		// the minimal failing index always ran to completion; report it
		// exactly as the sequential loop would — including re-raising the
		// original panic value, so recover() sees the same thing at any
		// worker count.
		for i := 0; i < n; i++ {
			if p := panics[i]; p != nil {
				panic(p.value)
			}
			if errs[i] != nil {
				return nil, errs[i]
			}
		}
	}
	return results, nil
}

// For runs fn for every index in [0, n) with bounded concurrency and the
// same deterministic error semantics as MapN, for fan-outs that produce no
// per-item result.
func For(workers, n int, fn func(i int) error) error {
	_, err := MapN(workers, n, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}
