package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/wire"
)

func TestMapOrdersResults(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	for _, workers := range []int{1, 2, 4, 16} {
		got, err := Map(workers, items, func(i, v int) (int, error) {
			return v * v, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapNEmpty(t *testing.T) {
	got, err := MapN(4, 0, func(i int) (int, error) { return 0, nil })
	if err != nil || got != nil {
		t.Fatalf("MapN(0) = %v, %v", got, err)
	}
}

func TestMapReportsLowestIndexError(t *testing.T) {
	wantErr := errors.New("boom-3")
	for _, workers := range []int{1, 4, 8} {
		_, err := MapN(workers, 64, func(i int) (int, error) {
			if i == 3 {
				return 0, wantErr
			}
			if i == 40 {
				return 0, errors.New("boom-40")
			}
			return i, nil
		})
		if !errors.Is(err, wantErr) {
			t.Fatalf("workers=%d: err = %v, want boom-3", workers, err)
		}
	}
}

func TestMapErrorMatchesSequential(t *testing.T) {
	// The parallel engine must stop on exactly the error a sequential loop
	// would: the lowest failing index, with every earlier index computed.
	fail := func(i int) (int, error) {
		if i%7 == 5 {
			return 0, fmt.Errorf("task %d failed", i)
		}
		return i, nil
	}
	_, seqErr := MapN(1, 50, fail)
	_, parErr := MapN(8, 50, fail)
	if seqErr == nil || parErr == nil || seqErr.Error() != parErr.Error() {
		t.Fatalf("sequential err %v != parallel err %v", seqErr, parErr)
	}
}

func TestMapPanicPropagatesOriginalValue(t *testing.T) {
	// The original panic value of the lowest panicking index must reach
	// the caller unchanged at any worker count (matching sequential).
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				p := recover()
				if p == nil {
					t.Fatalf("workers=%d: panic did not propagate", workers)
				}
				if fmt.Sprint(p) != "kaboom-2" {
					t.Fatalf("workers=%d: panic = %v, want kaboom-2", workers, p)
				}
			}()
			MapN(workers, 16, func(i int) (int, error) {
				if i == 2 || i == 9 {
					panic(fmt.Sprintf("kaboom-%d", i))
				}
				return i, nil
			})
		}()
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	var inFlight, peak atomic.Int64
	const workers = 3
	_, err := MapN(workers, 30, func(i int) (int, error) {
		n := inFlight.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		inFlight.Add(-1)
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := peak.Load(); got > workers {
		t.Fatalf("peak concurrency %d exceeds %d workers", got, workers)
	}
}

func TestMapDeterministicWithStreams(t *testing.T) {
	// The canonical usage pattern: per-task RNG streams derived from a
	// root seed produce identical outputs at any worker count.
	run := func(workers int) []uint64 {
		root := wire.NewRNG(42)
		out, err := MapN(workers, 64, func(i int) (uint64, error) {
			rng := root.Stream(uint64(i))
			v := rng.Uint64()
			for k := 0; k < i%5; k++ {
				v ^= rng.Uint64()
			}
			return v, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	want := run(1)
	for _, workers := range []int{2, 4, runtime.GOMAXPROCS(0), 16} {
		got := run(workers)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: result[%d] differs", workers, i)
			}
		}
	}
}

func TestWorkersResolution(t *testing.T) {
	if got := Workers(5); got != 5 {
		t.Errorf("Workers(5) = %d", got)
	}
	SetDefaultWorkers(7)
	if got := Workers(0); got != 7 {
		t.Errorf("Workers(0) with default 7 = %d", got)
	}
	SetDefaultWorkers(0)
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS", got)
	}
}

func TestForPropagatesError(t *testing.T) {
	wantErr := errors.New("stop")
	err := For(4, 10, func(i int) error {
		if i == 6 {
			return wantErr
		}
		return nil
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("For err = %v", err)
	}
}
