package parallel

import (
	"sync"
)

// streamWindow bounds how many results StreamN may hold between the
// worker that produced them and the in-order emit cursor, as a multiple
// of the worker count. The window is what makes StreamN a constant-memory
// primitive: a slow emit (disk flush) backpressures the pool instead of
// letting finished results accumulate without bound.
const streamWindow = 2

// StreamN runs fn over the index range [0, n) with at most
// Workers(workers) goroutines and delivers every result to emit in
// strict index order — ordered streaming completion, not ordered
// collection. Each result is handed to emit as soon as it and all lower
// indices have completed, then dropped; at no time are more than
// 2×workers results retained, so resident memory is constant in n. emit
// is never called concurrently and always observes indices 0, 1, 2, …
//
// Error semantics mirror MapN: emit sees every index below the minimal
// failing one (fn error, emit error or panic), and that minimal-index
// error is returned — exactly where a sequential fn/emit loop would have
// stopped. A panic inside fn is re-raised on the calling goroutine.
func StreamN[R any](workers, n int, fn func(i int) (R, error), emit func(i int, r R) error) error {
	if n <= 0 {
		return nil
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			r, err := fn(i)
			if err != nil {
				return err
			}
			if err := emit(i, r); err != nil {
				return err
			}
		}
		return nil
	}

	win := streamWindow * w
	s := &streamState[R]{
		pending: make(map[int]R, win),
		errs:    make(map[int]error),
		panics:  make(map[int]any),
		tokens:  make(chan struct{}, win),
		done:    make(chan struct{}),
		emit:    emit,
	}
	for i := 0; i < win; i++ {
		s.tokens <- struct{}{}
	}

	var next int
	var nextMu sync.Mutex
	claim := func() (int, bool) {
		// A token gates the claim, not the deposit: at most win indices
		// are ever past this point, which is the retained-results bound.
		select {
		case <-s.tokens:
		case <-s.done:
			return 0, false
		}
		nextMu.Lock()
		i := next
		next++
		nextMu.Unlock()
		if i >= n {
			return 0, false
		}
		return i, true
	}

	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i, ok := claim()
				if !ok {
					return
				}
				s.run(i, fn)
			}
		}()
	}
	wg.Wait()
	s.drain() // pick up any deposit that raced the last drainer's exit

	// Deterministic failure selection: claims are issued in index order
	// and a claimed index always runs, so the minimal failing index is
	// always present; report it exactly as the sequential loop would,
	// re-raising an original panic value ahead of returning an error.
	if s.failed {
		for i := 0; i < n; i++ {
			if p, ok := s.panics[i]; ok {
				panic(p)
			}
			if err := s.errs[i]; err != nil {
				return err
			}
		}
	}
	return nil
}

// streamState is StreamN's shared reorder buffer and cursor.
type streamState[R any] struct {
	mu       sync.Mutex
	pending  map[int]R // completed, not yet emitted
	errs     map[int]error
	panics   map[int]any
	cursor   int // next index to emit
	draining bool
	failed   bool
	closed   bool
	tokens   chan struct{}
	done     chan struct{}
	emit     func(i int, r R) error
}

// fail marks the run failed and unblocks workers parked on the token
// channel. Callers hold mu.
func (s *streamState[R]) fail() {
	s.failed = true
	if !s.closed {
		s.closed = true
		close(s.done)
	}
}

// run executes fn(i), deposits the result and drains the in-order
// prefix. A panic is captured for deterministic re-raise.
func (s *streamState[R]) run(i int, fn func(int) (R, error)) {
	var r R
	var err error
	panicked := true
	func() {
		defer func() {
			if panicked {
				if p := recover(); p != nil {
					s.mu.Lock()
					s.panics[i] = p
					s.fail()
					s.mu.Unlock()
				}
			}
		}()
		r, err = fn(i)
		panicked = false
	}()
	if panicked {
		return
	}
	s.mu.Lock()
	if err != nil {
		s.errs[i] = err
		s.fail()
		s.mu.Unlock()
		return
	}
	s.pending[i] = r
	s.mu.Unlock()
	s.drain()
}

// drain emits the contiguous completed prefix at the cursor. Only one
// goroutine drains at a time; emit runs outside the lock so depositors
// are never blocked behind sink I/O. An index is only emitted once every
// lower index has been emitted without error.
func (s *streamState[R]) drain() {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return
	}
	s.draining = true
	for {
		if s.errAt(s.cursor) {
			break
		}
		r, ok := s.pending[s.cursor]
		if !ok {
			break
		}
		delete(s.pending, s.cursor)
		i := s.cursor
		s.mu.Unlock()
		err := s.emit(i, r)
		s.mu.Lock()
		if err != nil {
			s.errs[i] = err
			s.fail()
			break
		}
		s.cursor++
		// Never blocks: capacity equals the number of outstanding tokens.
		s.tokens <- struct{}{}
	}
	s.draining = false
	s.mu.Unlock()
}

// errAt reports whether index i already failed (fn error or panic), in
// which case nothing at or above it may be emitted. Callers hold mu.
func (s *streamState[R]) errAt(i int) bool {
	if _, ok := s.errs[i]; ok {
		return true
	}
	_, ok := s.panics[i]
	return ok
}
