package parallel

import (
	"sync"
	"testing"
	"time"
)

// TestSPSCOrdering pushes a long sequence through a small ring (forcing
// both ends to block repeatedly) and checks FIFO delivery, exactly once.
func TestSPSCOrdering(t *testing.T) {
	q := NewSPSC[int](8)
	const n = 100000
	done := make(chan []int, 1)
	go func() {
		var got []int
		for {
			v, ok := q.Pop()
			if !ok {
				done <- got
				return
			}
			got = append(got, v)
		}
	}()
	for i := 0; i < n; i++ {
		if !q.Push(i) {
			t.Fatalf("Push(%d) refused before Close", i)
		}
	}
	q.Close()
	got := <-done
	if len(got) != n {
		t.Fatalf("popped %d values, want %d", len(got), n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got[%d] = %d, out of order", i, v)
		}
	}
}

// TestSPSCBlockingBackpressure checks a producer actually blocks on a
// full ring and resumes when the consumer drains.
func TestSPSCBlockingBackpressure(t *testing.T) {
	q := NewSPSC[int](2)
	for i := 0; i < 2; i++ {
		q.Push(i)
	}
	pushed := make(chan struct{})
	go func() {
		q.Push(2) // must block until a Pop frees a slot
		close(pushed)
	}()
	select {
	case <-pushed:
		t.Fatal("Push on a full ring did not block")
	case <-time.After(20 * time.Millisecond):
	}
	if v, ok := q.Pop(); !ok || v != 0 {
		t.Fatalf("Pop = (%d, %v), want (0, true)", v, ok)
	}
	select {
	case <-pushed:
	case <-time.After(time.Second):
		t.Fatal("Push did not resume after Pop freed a slot")
	}
}

// TestSPSCCloseDrains checks Close wakes a blocked consumer, queued
// elements stay poppable after Close, and both ends then report done.
func TestSPSCCloseDrains(t *testing.T) {
	q := NewSPSC[string](4)
	q.Push("a")
	q.Push("b")
	q.Close()
	if v, ok := q.Pop(); !ok || v != "a" {
		t.Fatalf("Pop = (%q, %v), want (a, true)", v, ok)
	}
	if v, ok := q.Pop(); !ok || v != "b" {
		t.Fatalf("Pop = (%q, %v), want (b, true)", v, ok)
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop on a closed drained queue reported ok")
	}
	if q.Push("c") {
		t.Fatal("Push after Close reported ok")
	}

	// A consumer blocked on an empty queue must wake on Close.
	q2 := NewSPSC[int](4)
	woke := make(chan struct{})
	go func() {
		if _, ok := q2.Pop(); ok {
			t.Error("blocked Pop returned ok after Close")
		}
		close(woke)
	}()
	time.Sleep(10 * time.Millisecond)
	q2.Close()
	select {
	case <-woke:
	case <-time.After(time.Second):
		t.Fatal("Close did not wake the blocked consumer")
	}
}

// TestSPSCConcurrentStress hammers several queues at once under the race
// detector: distinct payloads, tiny rings, producers and consumers
// racing against Close-driven shutdown.
func TestSPSCConcurrentStress(t *testing.T) {
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		q := NewSPSC[uint64](4)
		wg.Add(2)
		go func() {
			defer wg.Done()
			for i := uint64(0); i < 20000; i++ {
				if !q.Push(i) {
					return
				}
			}
			q.Close()
		}()
		go func() {
			defer wg.Done()
			var want uint64
			for {
				v, ok := q.Pop()
				if !ok {
					return
				}
				if v != want {
					t.Errorf("popped %d, want %d", v, want)
					return
				}
				want++
			}
		}()
	}
	wg.Wait()
}
