package parallel

import "sync/atomic"

// SPSC is a bounded single-producer/single-consumer queue: one goroutine
// Pushes, one goroutine Pops, and the ring buffer between them is
// coordinated by two atomic cursors — no mutex on the hot path. Both
// ends block when they must (Push on a full ring, Pop on an empty one),
// parking on a notification channel only after publishing a waiting
// flag, so the steady-state cost is two atomic loads and one store per
// operation.
//
// The bounded capacity is the backpressure mechanism in a fan-out
// pipeline: a producer that outruns a consumer fills the ring and
// blocks, rather than growing an unbounded backlog.
type SPSC[T any] struct {
	buf  []T
	mask uint64

	head atomic.Uint64 // next slot to Pop (owned by the consumer)
	tail atomic.Uint64 // next slot to Push (owned by the producer)

	closed   atomic.Bool
	prodWait atomic.Bool   // producer is parking on prodPark
	consWait atomic.Bool   // consumer is parking on consPark
	prodPark chan struct{} // capacity 1: a wakeup is never lost
	consPark chan struct{}
}

// NewSPSC returns a queue holding at least capacity elements (rounded up
// to a power of two, minimum 2).
func NewSPSC[T any](capacity int) *SPSC[T] {
	n := 2
	for n < capacity {
		n <<= 1
	}
	return &SPSC[T]{
		buf:      make([]T, n),
		mask:     uint64(n - 1),
		prodPark: make(chan struct{}, 1),
		consPark: make(chan struct{}, 1),
	}
}

// Push appends v, blocking while the ring is full. It returns false —
// without enqueueing — once the queue is closed. Only the producer
// goroutine may call Push.
func (q *SPSC[T]) Push(v T) bool {
	for {
		if q.closed.Load() {
			return false
		}
		t := q.tail.Load()
		if t-q.head.Load() < uint64(len(q.buf)) {
			q.buf[t&q.mask] = v
			q.tail.Store(t + 1) // publishes the slot write
			if q.consWait.Load() {
				select {
				case q.consPark <- struct{}{}:
				default:
				}
			}
			return true
		}
		// Full: publish intent to sleep, re-check (the consumer may have
		// drained between the check and the flag — its wakeup send only
		// happens after it sees the flag), then park.
		q.prodWait.Store(true)
		if t-q.head.Load() < uint64(len(q.buf)) || q.closed.Load() {
			q.prodWait.Store(false)
			continue
		}
		<-q.prodPark
		q.prodWait.Store(false)
	}
}

// Pop removes the oldest element, blocking while the ring is empty. It
// returns ok == false once the queue is closed and drained. Only the
// consumer goroutine may call Pop.
func (q *SPSC[T]) Pop() (v T, ok bool) {
	for {
		h := q.head.Load()
		if h < q.tail.Load() {
			v = q.buf[h&q.mask]
			var zero T
			q.buf[h&q.mask] = zero // drop the queue's reference
			q.head.Store(h + 1)    // publishes the slot release
			if q.prodWait.Load() {
				select {
				case q.prodPark <- struct{}{}:
				default:
				}
			}
			return v, true
		}
		if q.closed.Load() {
			if q.head.Load() >= q.tail.Load() {
				var zero T
				return zero, false
			}
			continue
		}
		q.consWait.Store(true)
		if q.head.Load() < q.tail.Load() || q.closed.Load() {
			q.consWait.Store(false)
			continue
		}
		<-q.consPark
		q.consWait.Store(false)
	}
}

// Len is the number of queued elements (racy by nature; exact only when
// both ends are quiescent).
func (q *SPSC[T]) Len() int {
	return int(q.tail.Load() - q.head.Load())
}

// Close marks the queue closed and wakes both ends: a blocked Push
// returns false, a blocked Pop drains what remains and then reports
// done. Elements already queued stay poppable.
func (q *SPSC[T]) Close() {
	q.closed.Store(true)
	select {
	case q.prodPark <- struct{}{}:
	default:
	}
	select {
	case q.consPark <- struct{}{}:
	default:
	}
}
