package experiments

import (
	"bytes"
	"fmt"
	"strings"

	"repro/internal/attack"
	"repro/internal/capture"
	"repro/internal/media"
	"repro/internal/parallel"
	"repro/internal/profiles"
	"repro/internal/script"
	"repro/internal/session"
	"repro/internal/stats"
	"repro/internal/tlsrec"
	"repro/internal/viewer"
	"repro/internal/wire"
)

// TLS13Policy is one cell of the record-version sweep: a record-layer
// generation plus the padding policy in force.
type TLS13Policy struct {
	Version tlsrec.RecordVersion
	Padding tlsrec.PaddingPolicy
}

// Label renders the cell the way the report and wmbench metrics spell it.
func (p TLS13Policy) Label() string {
	return fmt.Sprintf("%s/%s", p.Version, p.Padding)
}

// DefaultTLS13Policies is the sweep the tls13 experiment runs: the TLS 1.2
// baseline, unpadded TLS 1.3, two bucket paddings, and two random
// paddings — the last wide enough to defeat interval-band training.
func DefaultTLS13Policies() []TLS13Policy {
	return []TLS13Policy{
		{Version: tlsrec.RecordTLS12},
		{Version: tlsrec.RecordTLS13},
		{Version: tlsrec.RecordTLS13, Padding: tlsrec.PadToMultipleOf(64)},
		{Version: tlsrec.RecordTLS13, Padding: tlsrec.PadToMultipleOf(256)},
		{Version: tlsrec.RecordTLS13, Padding: tlsrec.PadRandomUpTo(128)},
		{Version: tlsrec.RecordTLS13, Padding: tlsrec.PadRandomUpTo(512)},
	}
}

// TLS13Point aggregates one policy's results.
type TLS13Point struct {
	Policy TLS13Policy
	// Trainable reports whether interval-band profiling succeeded under
	// the policy; a padding envelope that smears the report classes
	// together fails training ("condition not separable") and every rate
	// below reads zero.
	Trainable bool
	// TrainError carries the training failure for the report.
	TrainError string
	// Sessions is the number of attacked captures.
	Sessions int
	// Detected counts captures where the streaming monitor finalized on
	// the interactive flow rather than a noise flow.
	Detected int
	// DetectionRate is Detected / Sessions.
	DetectionRate float64
	// MeanAccuracy is the mean per-choice recovery over detected
	// captures (0 when none detected).
	MeanAccuracy float64
	// FullPathRate is the fraction of sessions whose complete decision
	// vector was recovered.
	FullPathRate float64
	// MeanMargin is the mean decode margin over detected captures.
	MeanMargin float64
	// ClientBytes is the total client-direction TLS stream volume across
	// the test sessions — the figure padding inflates.
	ClientBytes int64
	// PadOverheadPct is the client-direction byte overhead relative to
	// the unpadded TLS 1.3 run of the same sessions (0 for the 1.2 and
	// unpadded-1.3 rows).
	PadOverheadPct float64
}

// TLS13Result is the record-version sweep summary: how the attack fares
// when the service negotiates TLS 1.3, and what each padding policy buys.
type TLS13Result struct {
	Points []TLS13Point
	Report string
}

// TLS13 runs the modern-stack scenario end to end for every policy in the
// sweep: profile the service under (version, padding) — widening the
// learned bands by the policy's envelope — then render test sessions as
// interleaved multi-flow captures (noise flows negotiate the same record
// generation) and attack them through the streaming Monitor, scoring
// whether the interactive flow was found and how many choices were
// recovered. Policies share test viewers and seeds, so rows are directly
// comparable; sessions fan out across the worker pool deterministically.
func TLS13(sessions int, policies []TLS13Policy, seed uint64) (*TLS13Result, error) {
	if sessions <= 0 {
		sessions = 4
	}
	if len(policies) == 0 {
		policies = DefaultTLS13Policies()
	}
	const noiseFlows = 2
	g := script.Bandersnatch()
	enc := sharedEncoding(g, seed)
	cond := profiles.Fig2Ubuntu
	root := wire.NewRNG(seed)
	pop := viewer.SamplePopulation(sessions, root.Stream(77))

	res := &TLS13Result{}
	for _, pol := range policies {
		pt, err := tls13Point(g, enc, cond, pol, pop, sessions, noiseFlows, seed, root)
		if err != nil {
			return nil, fmt.Errorf("tls13 %s: %w", pol.Label(), err)
		}
		res.Points = append(res.Points, *pt)
	}
	// Overhead is measured against the unpadded 1.3 row, which carries
	// the identical sessions minus the padding.
	var base int64
	for _, p := range res.Points {
		if p.Policy.Version == tlsrec.RecordTLS13 && p.Policy.Padding.Mode == tlsrec.PadNone {
			base = p.ClientBytes
			break
		}
	}
	if base > 0 {
		for i := range res.Points {
			p := &res.Points[i]
			// Untrainable rows never simulated test sessions (ClientBytes
			// is zero); overhead is meaningful only where traffic exists.
			if p.Policy.Version == tlsrec.RecordTLS13 && p.ClientBytes > 0 {
				p.PadOverheadPct = 100 * float64(p.ClientBytes-base) / float64(base)
			}
		}
	}
	res.Report = renderTLS13(res)
	return res, nil
}

// tls13Point trains and attacks under one policy.
func tls13Point(g *script.Graph, enc *media.Encoding, cond profiles.Condition, pol TLS13Policy,
	pop []viewer.Viewer, sessions, noiseFlows int, seed uint64, root *wire.RNG) (*TLS13Point, error) {
	pt := &TLS13Point{Policy: pol, Sessions: sessions}
	withPolicy := func(cfg *session.Config) {
		cfg.RecordVersion = pol.Version
		cfg.Padding = pol.Padding
	}

	training, err := profileSessions(g, enc, cond, 3, 10,
		func(t int) (viewer.Viewer, uint64) {
			return viewer.SamplePopulation(1, root.Stream(uint64(t+1)))[0],
				seed + uint64(t)*131
		},
		func(t int, cfg *session.Config) { withPolicy(cfg) })
	if err != nil {
		return nil, err
	}
	atk, err := attack.NewAttackerWithTrainer(attack.TrainerFor(pol.Version, pol.Padding),
		training, g, script.BandersnatchMaxChoices)
	if err != nil {
		// A padding policy wide enough to smear the bands together is a
		// measured outcome of the sweep, not a driver failure.
		pt.TrainError = err.Error()
		return pt, nil
	}
	pt.Trainable = true

	type unit struct {
		detected       bool
		correct, total int
		margin         float64
		clientBytes    int64
	}
	units, err := parallel.MapN(0, sessions, func(s int) (unit, error) {
		tr, err := runOne(g, enc, pop[s], cond, seed+uint64(4000+s*59),
			func(cfg *session.Config) {
				cfg.OmitServerPayload = false
				withPolicy(cfg)
			})
		if err != nil {
			return unit{}, err
		}
		var buf bytes.Buffer
		if err := capture.WritePcapMulti(&buf, tr, capture.MultiOptions{
			Options:    capture.Options{Seed: seed + uint64(s)*13},
			NoiseFlows: noiseFlows,
		}); err != nil {
			return unit{}, err
		}

		var finalized *attack.SessionFinalized
		m := attack.NewMonitor(atk, attack.MonitorOptions{OnEvent: func(ev attack.Event) {
			if f, ok := ev.(attack.SessionFinalized); ok {
				finalized = &f
			}
		}})
		data := buf.Bytes()
		const chunk = 256 << 10
		for off := 0; off < len(data); off += chunk {
			end := off + chunk
			if end > len(data) {
				end = len(data)
			}
			if err := m.Feed(data[off:end]); err != nil {
				return unit{}, err
			}
		}
		inf, err := m.Close()
		if err != nil {
			return unit{}, err
		}
		ep := capture.DefaultEndpoints()
		u := unit{margin: inf.DecodeMargin, clientBytes: int64(len(tr.ClientToServer.Bytes))}
		u.detected = finalized != nil &&
			finalized.Flow.SrcAddr == ep.ClientAddr && finalized.Flow.SrcPort == ep.ClientPort
		u.correct, u.total = attack.ScoreDecisions(inf.Decisions, tr.GroundTruthDecisions())
		return u, nil
	})
	if err != nil {
		return nil, err
	}

	var accs, margins []float64
	full := 0
	for _, u := range units {
		pt.ClientBytes += u.clientBytes
		if u.total > 0 && u.correct == u.total {
			full++
		}
		if !u.detected {
			continue
		}
		pt.Detected++
		if u.total > 0 {
			accs = append(accs, float64(u.correct)/float64(u.total))
		}
		margins = append(margins, u.margin)
	}
	pt.DetectionRate = float64(pt.Detected) / float64(sessions)
	pt.MeanAccuracy = stats.Mean(accs)
	pt.FullPathRate = float64(full) / float64(sessions)
	pt.MeanMargin = stats.Mean(margins)
	return pt, nil
}

func renderTLS13(res *TLS13Result) string {
	var b strings.Builder
	b.WriteString("TLS 1.3 record layer: attack vs record version and padding policy\n")
	b.WriteString("(interleaved captures, 2 noise flows, streaming attack.Monitor; bands widened by the padding envelope)\n")
	rows := [][]string{}
	for _, p := range res.Points {
		if !p.Trainable {
			rows = append(rows, []string{p.Policy.Label(), "not separable", "-", "-", "-", "-"})
			continue
		}
		rows = append(rows, []string{
			p.Policy.Label(),
			fmt.Sprintf("%d/%d (%.0f%%)", p.Detected, p.Sessions, 100*p.DetectionRate),
			fmt.Sprintf("%.1f%%", 100*p.MeanAccuracy),
			fmt.Sprintf("%.0f%%", 100*p.FullPathRate),
			fmt.Sprintf("%.3f", p.MeanMargin),
			fmt.Sprintf("%+.1f%%", p.PadOverheadPct),
		})
	}
	b.WriteString(stats.RenderTable(
		[]string{"record layer", "detection", "choice accuracy", "full paths", "margin", "pad overhead"}, rows))
	b.WriteString("\nA policy marked \"not separable\" defeated interval-band profiling outright\n")
	b.WriteString("(the widened type-1 and type-2 bands overlap); the attack declines to train.\n")
	return b.String()
}
