// Package experiments contains one driver per paper artefact: Table I,
// Figure 1, Figure 2, the §V headline accuracy result, and the ablations
// DESIGN.md calls out (baseline failure intra-video, countermeasures, the
// residual timing channel, classifier and decoder variants). Each driver
// returns structured results plus a rendered text report, and is invoked
// both by cmd/wmbench and by the root-level benchmark harness.
package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/attack"
	"repro/internal/dataset"
	"repro/internal/media"
	"repro/internal/parallel"
	"repro/internal/profiles"
	"repro/internal/script"
	"repro/internal/session"
	"repro/internal/stats"
	"repro/internal/tlsrec"
	"repro/internal/viewer"
	"repro/internal/wire"
)

// sharedEncoding returns the cached default title encoding shared across
// experiments and sessions.
func sharedEncoding(g *script.Graph, seed uint64) *media.Encoding {
	return media.EncodeCached(g, media.DefaultLadder, seed)
}

// runOne simulates a single session. Experiment traces never leave the
// driver (no pcap serialization), so the server payload is not
// materialized — the trace's offsets, timings and record ground truth are
// exact either way.
func runOne(g *script.Graph, enc *media.Encoding, v viewer.Viewer,
	cond profiles.Condition, seed uint64, opts func(*session.Config)) (*session.Trace, error) {
	cfg := session.Config{
		Graph: g, Encoding: enc, Viewer: v, Condition: cond,
		SessionID: fmt.Sprintf("exp-%d", seed), Seed: seed,
		OmitServerPayload: true,
	}
	if opts != nil {
		opts(&cfg)
	}
	return session.Run(cfg)
}

// profileSessions simulates training sessions under one condition until
// both report classes are present: at least minN sessions, at most maxN.
// at supplies the viewer and session seed for index t, and opts (may be
// nil) adjusts the t-th session's config; the loop is sequential because
// its length is data-dependent, but every caller runs it from inside a
// parallel task of its own.
func profileSessions(g *script.Graph, enc *media.Encoding, cond profiles.Condition,
	minN, maxN int, at func(t int) (viewer.Viewer, uint64),
	opts func(t int, cfg *session.Config)) ([]*session.Trace, error) {
	var training []*session.Trace
	for t := 0; t < maxN; t++ {
		v, s := at(t)
		var perSession func(*session.Config)
		if opts != nil {
			tt := t
			perSession = func(cfg *session.Config) { opts(tt, cfg) }
		}
		tr, err := runOne(g, enc, v, cond, s, perSession)
		if err != nil {
			return nil, err
		}
		training = append(training, tr)
		if t >= minN-1 && attack.HasBothClasses(training) {
			break
		}
	}
	return training, nil
}

// observationOf turns a trace into an attacker observation (equivalent to
// the pcap path, which the attack tests exercise; the experiment drivers
// skip pcap serialization for speed). The client stream is parsed as an
// eavesdropper would see it; the server direction reuses the trace's
// record ground truth, which is byte-for-byte what parsing the (possibly
// unmaterialized) server stream recovers.
func observationOf(tr *session.Trace) (*attack.Observation, error) {
	cRecs, _, err := tlsrec.ParseStream(tr.ClientToServer.Bytes, tr.ClientToServer.TimeAt)
	if err != nil {
		return nil, err
	}
	return &attack.Observation{ClientRecords: cRecs, ServerRecords: tr.ServerRecords}, nil
}

// --- T1: Table I --------------------------------------------------------------

// Table1Result carries the dataset summary.
type Table1Result struct {
	N      int
	Report string
}

// Table1 generates an n-viewer dataset and renders its attribute table.
// Generation is lean — the table reads only viewer and condition
// attributes, so server payloads are never materialized.
func Table1(n int, seed uint64) (*Table1Result, error) {
	ds, err := dataset.Generate(dataset.Config{N: n, Seed: seed, Lean: true})
	if err != nil {
		return nil, err
	}
	return &Table1Result{
		N:      len(ds.Points),
		Report: "Table I: Attributes of the synthetic IITM-Bandersnatch dataset\n" + ds.TableI(),
	}, nil
}

// --- F1: Figure 1 -------------------------------------------------------------

// Figure1Event is one row of the streaming-process timeline.
type Figure1Event struct {
	AtSeconds float64
	Kind      string
	Detail    string
}

// Figure1Result reproduces the paper's streaming-process walkthrough:
// the viewer meets Q1 and takes the default, then meets Q2 and takes the
// non-default branch.
type Figure1Result struct {
	Events []Figure1Event
	Report string
}

// Figure1 runs the two-choice example session (default at Q1,
// non-default at Q2, exactly as the paper's Figure 1 narrates) and
// renders the observable event timeline.
func Figure1(seed uint64) (*Figure1Result, error) {
	g := script.TinyScript()
	enc := sharedEncoding(g, seed)
	// A scripted viewer: decisive, choices fixed by construction below.
	v := viewer.Viewer{ID: "figure1", Decisiveness: 0.9}
	// Find a seed whose decision rolls yield (default, non-default): the
	// viewer model is probabilistic, so search nearby seeds.
	for s := seed; s < seed+200; s++ {
		tr, err := runOne(g, enc, v, profiles.Fig2Ubuntu, s, nil)
		if err != nil {
			return nil, err
		}
		d := tr.GroundTruthDecisions()
		if len(d) == 2 && d[0] && !d[1] {
			return figure1Render(tr)
		}
	}
	return nil, fmt.Errorf("experiments: no seed in range produced the Figure 1 decision pattern")
}

func figure1Render(tr *session.Trace) (*Figure1Result, error) {
	res := &Figure1Result{}
	start := tr.ClientWrites[0].Time
	push := func(at float64, kind, detail string) {
		res.Events = append(res.Events, Figure1Event{AtSeconds: at, Kind: kind, Detail: detail})
	}
	for _, w := range tr.ClientWrites {
		at := w.Time.Sub(start).Seconds()
		switch w.Label {
		case session.LabelHandshake:
			push(at, "tls-handshake", fmt.Sprintf("ClientHello %d bytes", w.Plain))
		case session.LabelType1:
			push(at, "type-1 JSON", fmt.Sprintf("record %d bytes: choice question on screen", w.Records[0].Length))
		case session.LabelType2:
			push(at, "type-2 JSON", fmt.Sprintf("record %d bytes: non-default selected, prefetch discarded", w.Records[0].Length))
		}
	}
	for i, c := range tr.Result.Choices {
		branch := "default (S%d)"
		if !c.TookDefault {
			branch = "non-default (S%d')"
		}
		push(c.DecidedAt.Sub(start).Seconds(), "decision",
			fmt.Sprintf("Q%d resolved: "+branch, i+1, i+1))
	}
	sort.SliceStable(res.Events, func(i, j int) bool {
		return res.Events[i].AtSeconds < res.Events[j].AtSeconds
	})
	var b strings.Builder
	b.WriteString("Figure 1: the streaming process of the interactive title\n")
	b.WriteString("(viewer takes the default at Q1 and the non-default at Q2)\n\n")
	rows := [][]string{}
	for _, e := range res.Events {
		rows = append(rows, []string{fmt.Sprintf("%8.1fs", e.AtSeconds), e.Kind, e.Detail})
	}
	b.WriteString(stats.RenderTable([]string{"time", "event", "detail"}, rows))
	res.Report = b.String()
	return res, nil
}

// --- F2: Figure 2 -------------------------------------------------------------

// Figure2Panel is one condition's histogram.
type Figure2Panel struct {
	Condition profiles.Condition
	Histogram *stats.Histogram
}

// Figure2Result carries both panels.
type Figure2Result struct {
	Panels []Figure2Panel
	Report string
}

// figure2Bins reproduces the paper's printed bin edges per panel.
func figure2Bins(cond profiles.Condition) []stats.Bin {
	if cond == profiles.Fig2Windows {
		return []stats.Bin{
			{Lo: math.MinInt, Hi: 2335},
			{Lo: 2341, Hi: 2343},
			{Lo: 2398, Hi: 3056},
			{Lo: 3118, Hi: 3147},
			{Lo: 3159, Hi: math.MaxInt},
		}
	}
	return []stats.Bin{
		{Lo: math.MinInt, Hi: 2188},
		{Lo: 2211, Hi: 2213},
		{Lo: 2219, Hi: 2823},
		{Lo: 2992, Hi: 3017},
		{Lo: 4334, Hi: math.MaxInt},
	}
}

// Figure2 runs sessions under the two paper conditions and bins the
// client application record lengths by ground-truth class. Sessions fan
// out across the worker pool; histogram observations are folded in
// session order so the panels are identical at any worker count.
func Figure2(sessionsPerPanel int, seed uint64) (*Figure2Result, error) {
	if sessionsPerPanel <= 0 {
		sessionsPerPanel = 5
	}
	res := &Figure2Result{}
	var b strings.Builder
	for _, cond := range []profiles.Condition{profiles.Fig2Ubuntu, profiles.Fig2Windows} {
		g := script.Bandersnatch()
		enc := sharedEncoding(g, seed)
		h := stats.NewHistogram(figure2Bins(cond), "type-1 JSON", "type-2 JSON", "others")
		pop := viewer.SamplePopulation(sessionsPerPanel, wire.NewRNG(seed^uint64(len(cond.String()))))
		traces, err := parallel.Map(0, pop, func(i int, v viewer.Viewer) (*session.Trace, error) {
			return runOne(g, enc, v, cond, seed+uint64(i)*977, nil)
		})
		if err != nil {
			return nil, err
		}
		for _, tr := range traces {
			for _, w := range tr.ClientWrites {
				series := "others"
				switch w.Label {
				case session.LabelType1:
					series = "type-1 JSON"
				case session.LabelType2:
					series = "type-2 JSON"
				case session.LabelHandshake:
					continue
				}
				for _, r := range w.Records {
					h.Observe(series, r.Length)
				}
			}
		}
		res.Panels = append(res.Panels, Figure2Panel{Condition: cond, Histogram: h})
		title := fmt.Sprintf("Figure 2 panel: SSL record length distribution for (%s)", cond)
		b.WriteString(h.Render(title))
		b.WriteString("\n")
	}
	res.Report = b.String()
	return res, nil
}

// Type1Purity returns, for a panel, the percentage of type-1 records in
// the panel's narrow type-1 bin (index 1) — the quantity the paper's bars
// show at 100%.
func (p Figure2Panel) Type1Purity() float64 { return p.Histogram.Percent("type-1 JSON", 1) }

// Type2Purity is the analogue for type-2 records (bin index 3).
func (p Figure2Panel) Type2Purity() float64 { return p.Histogram.Percent("type-2 JSON", 3) }
