package experiments

import (
	"strings"
	"testing"
)

func TestTable1(t *testing.T) {
	res, err := Table1(12, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.N != 12 {
		t.Errorf("N = %d", res.N)
	}
	for _, want := range []string{"Table I", "Operating System", "Political Alignment"} {
		if !strings.Contains(res.Report, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestFigure1(t *testing.T) {
	res, err := Figure1(1)
	if err != nil {
		t.Fatal(err)
	}
	var type1, type2 int
	for _, e := range res.Events {
		switch e.Kind {
		case "type-1 JSON":
			type1++
		case "type-2 JSON":
			type2++
		}
	}
	// The Figure 1 narrative: two questions, one non-default choice.
	if type1 != 2 {
		t.Errorf("type-1 events = %d, want 2", type1)
	}
	if type2 != 1 {
		t.Errorf("type-2 events = %d, want 1", type2)
	}
	if !strings.Contains(res.Report, "Figure 1") {
		t.Error("report missing title")
	}
	// Events are time-ordered relative to session start.
	for i := 1; i < len(res.Events); i++ {
		if res.Events[i].Kind == "decision" {
			continue // decisions are appended after writes
		}
	}
}

func TestFigure2PanelsMatchPaperShape(t *testing.T) {
	res, err := Figure2(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Panels) != 2 {
		t.Fatalf("panels = %d", len(res.Panels))
	}
	for _, p := range res.Panels {
		// The paper's bars: essentially all type-1 mass in the narrow
		// type-1 bin, all type-2 mass in the type-2 bin.
		if got := p.Type1Purity(); got < 99 {
			t.Errorf("%s: type-1 purity %.1f%%, want ~100%%", p.Condition, got)
		}
		if got := p.Type2Purity(); got < 99 {
			t.Errorf("%s: type-2 purity %.1f%%, want ~100%%", p.Condition, got)
		}
		// "Others" must not pollute the two report bins.
		if leak := p.Histogram.Percent("others", 1) + p.Histogram.Percent("others", 3); leak > 1 {
			t.Errorf("%s: others leak %.1f%% into report bins", p.Condition, leak)
		}
	}
	if !strings.Contains(res.Report, "SSL record length distribution") {
		t.Error("report missing title")
	}
}

func TestAccuracyHeadline(t *testing.T) {
	res, err := Accuracy(10, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sessions) != 10 {
		t.Fatalf("sessions = %d", len(res.Sessions))
	}
	// The paper reports 96% worst case; the reproduction's clean
	// separability should meet or beat that.
	if res.WorstCase < 0.96 {
		t.Errorf("worst-case accuracy %.2f, want >= 0.96", res.WorstCase)
	}
	if res.Mean < res.WorstCase {
		t.Error("mean below worst case")
	}
	if !strings.Contains(res.Report, "worst case") {
		t.Error("report missing worst case line")
	}
}

func TestClassifierAblation(t *testing.T) {
	res, err := ClassifierAblation(5)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"interval-band", "nearest-centroid", "knn-5"} {
		acc, ok := res.PerClassifier[name]
		if !ok {
			t.Fatalf("missing classifier %s", name)
		}
		if acc < 0.9 {
			t.Errorf("%s accuracy %.2f, implausibly low", name, acc)
		}
	}
	// The paper's interval rule should be at least as good as centroid
	// here (centroid has no 'other' rejection region by distance).
	if res.PerClassifier["interval-band"] < res.PerClassifier["nearest-centroid"]-0.05 {
		t.Errorf("interval-band (%.2f) far below centroid (%.2f)",
			res.PerClassifier["interval-band"], res.PerClassifier["nearest-centroid"])
	}
}

func TestBaselinesShape(t *testing.T) {
	res, err := Baselines(20, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"bitrate", "burst-knn"} {
		intra := res.IntraTitleAccuracy[name]
		inter := res.InterTitleAccuracy[name]
		// Intra-title: near chance (0.5). Allow up to 0.75 for small trials.
		if intra > 0.75 {
			t.Errorf("%s intra-title accuracy %.2f: branches too separable", name, intra)
		}
		// Inter-title: clearly above chance (0.33), confirming the
		// implementation is no strawman.
		if inter < 0.8 {
			t.Errorf("%s inter-title accuracy %.2f: baseline broken", name, inter)
		}
		if inter <= intra {
			t.Errorf("%s: inter (%.2f) should exceed intra (%.2f)", name, inter, intra)
		}
	}
}

func TestDefensesShape(t *testing.T) {
	res, err := Defenses(4, 9)
	if err != nil {
		t.Fatal(err)
	}
	none := res.PerDefense["none"]
	if none < 0.95 {
		t.Errorf("undefended accuracy %.2f, want ~1", none)
	}
	// The blind-guess floor is well below the undefended attack (the
	// default-branch prior is strong but not perfect).
	if res.PriorGuess >= none {
		t.Errorf("prior guess %.2f not below undefended attack %.2f", res.PriorGuess, none)
	}
	for _, d := range []string{"pad-to-4096", "split-1200", "compress-55%"} {
		acc, ok := res.PerDefense[d]
		if !ok {
			t.Fatalf("missing defense %s", d)
		}
		// Each defense must push the attack down to (about) the
		// blind-guess floor: the signal is gone, only the prior remains.
		if acc > res.PriorGuess+0.12 {
			t.Errorf("defense %s leaves accuracy %.2f above prior floor %.2f",
				d, acc, res.PriorGuess)
		}
	}
}

func TestTimingChannelSurvives(t *testing.T) {
	res, err := Timing(6, 11)
	if err != nil {
		t.Fatal(err)
	}
	if res.EventDetectionRate < 0.9 {
		t.Errorf("timing detector finds %.0f%% of choice points, want >= 90%%",
			100*res.EventDetectionRate)
	}
	if res.DecisionAccuracy < 0.85 {
		t.Errorf("timing decision accuracy %.2f, want >= 0.85 (the channel should survive padding)",
			res.DecisionAccuracy)
	}
}

func TestPrefetchAblation(t *testing.T) {
	res, err := PrefetchAblation(4, 13)
	if err != nil {
		t.Fatal(err)
	}
	// Without prefetch, the default/non-default gap asymmetry should
	// shrink, degrading the timing attack toward chance.
	if res.WithoutPrefetch > res.WithPrefetch {
		t.Errorf("prefetch-off accuracy %.2f exceeds prefetch-on %.2f",
			res.WithoutPrefetch, res.WithPrefetch)
	}
}
