package experiments

import (
	"bytes"
	"fmt"
	"strings"

	"repro/internal/attack"
	"repro/internal/capture"
	"repro/internal/media"
	"repro/internal/parallel"
	"repro/internal/profiles"
	"repro/internal/quicrec"
	"repro/internal/script"
	"repro/internal/session"
	"repro/internal/stats"
	"repro/internal/viewer"
	"repro/internal/wire"
)

// QUICPolicy is one cell of the QUIC sweep: a datagram sizing policy plus
// the number of interleaved noise flows the capture carries. Noise varies
// inside the sweep (unlike the tls13 experiment's fixed 2) because the
// burst pipeline's detection step — picking the interactive flow out of
// same-transport cover traffic — is the part QUIC changes most.
type QUICPolicy struct {
	Sizing     quicrec.SizingPolicy
	NoiseFlows int
}

// Label renders the cell the way the report and wmbench metrics spell it.
func (p QUICPolicy) Label() string {
	return fmt.Sprintf("%s/noise-%d", p.Sizing.Label(), p.NoiseFlows)
}

// DefaultQUICPolicies is the sweep the quic experiment runs: default
// sizing under growing cover traffic, a smaller fixed datagram cap, the
// pad-to-full defense (deterministic, so still trainable), and a random
// dummy-datagram defense wide enough to defeat interval-band training.
func DefaultQUICPolicies() []QUICPolicy {
	return []QUICPolicy{
		{NoiseFlows: 0},
		{NoiseFlows: 1},
		{NoiseFlows: 2},
		{Sizing: quicrec.Fixed(1200), NoiseFlows: 2},
		{Sizing: quicrec.PadFull(1350), NoiseFlows: 2},
		{Sizing: quicrec.PadRandom(1350, 2), NoiseFlows: 2},
	}
}

// QUICPoint aggregates one policy's results.
type QUICPoint struct {
	Policy QUICPolicy
	// Trainable reports whether interval-band profiling succeeded on
	// burst totals under the sizing policy; a dummy-datagram envelope
	// that smears the report classes together fails training and every
	// rate below reads zero.
	Trainable bool
	// TrainError carries the training failure for the report.
	TrainError string
	// Sessions is the number of attacked captures.
	Sessions int
	// Detected counts captures where the streaming monitor finalized on
	// the interactive flow rather than a noise flow.
	Detected int
	// DetectionRate is Detected / Sessions.
	DetectionRate float64
	// MeanAccuracy is the mean per-choice recovery over detected
	// captures (0 when none detected).
	MeanAccuracy float64
	// FullPathRate is the fraction of sessions whose complete decision
	// vector was recovered.
	FullPathRate float64
	// MeanMargin is the mean decode margin over detected captures.
	MeanMargin float64
	// ClientBytes is the total client-direction UDP payload volume
	// across the test sessions — the figure sizing policies inflate.
	ClientBytes int64
	// PadOverheadPct is the client-direction byte overhead relative to
	// the default-sizing run of the same sessions at the same noise
	// level (0 for default rows).
	PadOverheadPct float64
}

// QUICResult is the QUIC sweep summary: how the attack fares when record
// boundaries vanish and only burst features remain, and what each
// datagram sizing defense buys.
type QUICResult struct {
	Points []QUICPoint
	Report string
}

// QUIC runs the HTTP/3 scenario end to end for every policy in the
// sweep: profile the service over QUIC — training interval bands on
// labeled burst totals, widened by the sizing policy's envelope — then
// render test sessions as interleaved multi-flow UDP captures (noise
// flows inherit the transport) and attack them through the streaming
// Monitor, scoring whether the interactive flow was found and how many
// choices were recovered. Policies share test viewers and seeds, so rows
// are directly comparable; sessions fan out across the worker pool
// deterministically.
func QUIC(sessions int, policies []QUICPolicy, seed uint64) (*QUICResult, error) {
	if sessions <= 0 {
		sessions = 4
	}
	if len(policies) == 0 {
		policies = DefaultQUICPolicies()
	}
	g := script.Bandersnatch()
	enc := sharedEncoding(g, seed)
	cond := profiles.Fig2Ubuntu
	root := wire.NewRNG(seed)
	pop := viewer.SamplePopulation(sessions, root.Stream(77))

	res := &QUICResult{}
	for _, pol := range policies {
		pt, err := quicPoint(g, enc, cond, pol, pop, sessions, seed, root)
		if err != nil {
			return nil, fmt.Errorf("quic %s: %w", pol.Label(), err)
		}
		res.Points = append(res.Points, *pt)
	}
	// Overhead is measured against the default-sizing row, which carries
	// the identical sessions minus the defense.
	var base int64
	for _, p := range res.Points {
		if p.Policy.Sizing.Mode == quicrec.SizeDefault && p.ClientBytes > 0 {
			base = p.ClientBytes
			break
		}
	}
	if base > 0 {
		for i := range res.Points {
			p := &res.Points[i]
			// Untrainable rows never simulated test sessions (ClientBytes
			// is zero); overhead is meaningful only where traffic exists.
			if p.Policy.Sizing.Mode != quicrec.SizeDefault && p.ClientBytes > 0 {
				p.PadOverheadPct = 100 * float64(p.ClientBytes-base) / float64(base)
			}
		}
	}
	res.Report = renderQUIC(res)
	return res, nil
}

// quicPoint trains and attacks under one policy.
func quicPoint(g *script.Graph, enc *media.Encoding, cond profiles.Condition, pol QUICPolicy,
	pop []viewer.Viewer, sessions int, seed uint64, root *wire.RNG) (*QUICPoint, error) {
	pt := &QUICPoint{Policy: pol, Sessions: sessions}
	withPolicy := func(cfg *session.Config) {
		cfg.Transport = quicrec.TransportQUIC
		cfg.Sizing = pol.Sizing
	}

	training, err := profileSessions(g, enc, cond, 3, 10,
		func(t int) (viewer.Viewer, uint64) {
			return viewer.SamplePopulation(1, root.Stream(uint64(t+1)))[0],
				seed + uint64(t)*131
		},
		func(t int, cfg *session.Config) { withPolicy(cfg) })
	if err != nil {
		return nil, err
	}
	atk, err := attack.NewAttackerWithTrainer(attack.TrainerForQUIC(pol.Sizing),
		training, g, script.BandersnatchMaxChoices)
	if err != nil {
		// A sizing policy whose dummy datagrams smear the burst bands
		// together is a measured outcome of the sweep, not a failure.
		pt.TrainError = err.Error()
		return pt, nil
	}
	pt.Trainable = true

	type unit struct {
		detected       bool
		correct, total int
		margin         float64
		clientBytes    int64
	}
	units, err := parallel.MapN(0, sessions, func(s int) (unit, error) {
		tr, err := runOne(g, enc, pop[s], cond, seed+uint64(4000+s*59),
			func(cfg *session.Config) {
				cfg.OmitServerPayload = false
				withPolicy(cfg)
			})
		if err != nil {
			return unit{}, err
		}
		var buf bytes.Buffer
		if err := capture.WritePcapMulti(&buf, tr, capture.MultiOptions{
			Options:    capture.Options{Seed: seed + uint64(s)*13},
			NoiseFlows: pol.NoiseFlows,
		}); err != nil {
			return unit{}, err
		}

		var finalized *attack.SessionFinalized
		m := attack.NewMonitor(atk, attack.MonitorOptions{OnEvent: func(ev attack.Event) {
			if f, ok := ev.(attack.SessionFinalized); ok {
				finalized = &f
			}
		}})
		data := buf.Bytes()
		const chunk = 256 << 10
		for off := 0; off < len(data); off += chunk {
			end := off + chunk
			if end > len(data) {
				end = len(data)
			}
			if err := m.Feed(data[off:end]); err != nil {
				return unit{}, err
			}
		}
		inf, err := m.Close()
		if err != nil {
			return unit{}, err
		}
		ep := capture.DefaultEndpoints()
		u := unit{margin: inf.DecodeMargin, clientBytes: int64(len(tr.ClientToServer.Bytes))}
		u.detected = finalized != nil &&
			finalized.Flow.SrcAddr == ep.ClientAddr && finalized.Flow.SrcPort == ep.ClientPort
		u.correct, u.total = attack.ScoreDecisions(inf.Decisions, tr.GroundTruthDecisions())
		return u, nil
	})
	if err != nil {
		return nil, err
	}

	var accs, margins []float64
	full := 0
	for _, u := range units {
		pt.ClientBytes += u.clientBytes
		if u.total > 0 && u.correct == u.total {
			full++
		}
		if !u.detected {
			continue
		}
		pt.Detected++
		if u.total > 0 {
			accs = append(accs, float64(u.correct)/float64(u.total))
		}
		margins = append(margins, u.margin)
	}
	pt.DetectionRate = float64(pt.Detected) / float64(sessions)
	pt.MeanAccuracy = stats.Mean(accs)
	pt.FullPathRate = float64(full) / float64(sessions)
	pt.MeanMargin = stats.Mean(margins)
	return pt, nil
}

func renderQUIC(res *QUICResult) string {
	var b strings.Builder
	b.WriteString("QUIC/HTTP3: burst-feature attack vs datagram sizing and cover traffic\n")
	b.WriteString("(UDP captures, noise flows on the same transport, streaming attack.Monitor on burst totals)\n")
	rows := [][]string{}
	for _, p := range res.Points {
		if !p.Trainable {
			rows = append(rows, []string{p.Policy.Label(), "not separable", "-", "-", "-", "-"})
			continue
		}
		rows = append(rows, []string{
			p.Policy.Label(),
			fmt.Sprintf("%d/%d (%.0f%%)", p.Detected, p.Sessions, 100*p.DetectionRate),
			fmt.Sprintf("%.1f%%", 100*p.MeanAccuracy),
			fmt.Sprintf("%.0f%%", 100*p.FullPathRate),
			fmt.Sprintf("%.3f", p.MeanMargin),
			fmt.Sprintf("%+.1f%%", p.PadOverheadPct),
		})
	}
	b.WriteString(stats.RenderTable(
		[]string{"sizing/noise", "detection", "choice accuracy", "full paths", "margin", "size overhead"}, rows))
	b.WriteString("\nRecord boundaries are gone under QUIC; the attack survives on burst totals\n")
	b.WriteString("until a defense reshapes them (\"not separable\": the bands — widened by a\n")
	b.WriteString("random policy's envelope, or quantized to datagram multiples by pad-full —\n")
	b.WriteString("overlap, and the attack declines to train).\n")
	return b.String()
}
