package experiments

import (
	"fmt"
	"strings"

	"repro/internal/attack"
	"repro/internal/parallel"
	"repro/internal/profiles"
	"repro/internal/script"
	"repro/internal/session"
	"repro/internal/stats"
	"repro/internal/viewer"
	"repro/internal/wire"
)

// AccuracyResult reproduces the §V headline: per-session choice-recovery
// accuracy over sessions viewed by different people under different
// operational and network conditions; the paper reports 96% in the worst
// case.
type AccuracyResult struct {
	Sessions  []SessionAccuracy
	Mean      float64
	WorstCase float64
	// MeanMargin is the mean decode margin (score gap between the
	// decoder's best and second-best path hypotheses) across sessions — a
	// calibrated confidence the headline number alone does not expose.
	MeanMargin float64
	Report     string
}

// SessionAccuracy scores one session.
type SessionAccuracy struct {
	Condition profiles.Condition
	ViewerID  string
	Correct   int
	Total     int
	// Margin is the session's decode margin.
	Margin float64
}

// Accuracy runs n test sessions (the paper used 10), each under a
// different condition drawn from the Table I grid, trains the paper's
// interval-band classifier per condition on trainPerCond held-out
// sessions, and scores per-choice recovery.
//
// Each (train, test, score) unit is independent — its randomness comes
// from per-index streams off the root seed — so the units fan out across
// the worker pool and the result is identical at any worker count.
func Accuracy(n, trainPerCond int, seed uint64) (*AccuracyResult, error) {
	if n <= 0 {
		n = 10
	}
	if trainPerCond <= 0 {
		trainPerCond = 2
	}
	g := script.Bandersnatch()
	enc := sharedEncoding(g, seed)
	grid := profiles.Grid()
	root := wire.NewRNG(seed)
	pop := viewer.SamplePopulation(n, root.Stream(1))

	sessions, err := parallel.MapN(0, n, func(i int) (SessionAccuracy, error) {
		cond := grid[(i*7)%len(grid)] // stride the grid for variety
		// Train per condition on sessions disjoint from the test session,
		// collecting more until both report types have been observed (a
		// viewer who took only defaults never sent a type-2, and the
		// attacker keeps profiling until both bands are known).
		training, err := profileSessions(g, enc, cond, trainPerCond, trainPerCond+8,
			func(t int) (viewer.Viewer, uint64) {
				return viewer.SamplePopulation(1, root.Stream(uint64(1000+i*100+t)))[0],
					seed + uint64(9000+i*100+t)
			}, nil)
		if err != nil {
			return SessionAccuracy{}, err
		}
		atk, err := attack.NewAttacker(training, g, script.BandersnatchMaxChoices)
		if err != nil {
			return SessionAccuracy{}, fmt.Errorf("training under %s: %w", cond, err)
		}

		tr, err := runOne(g, enc, pop[i], cond, seed+uint64(i)*31, nil)
		if err != nil {
			return SessionAccuracy{}, err
		}
		obs, err := observationOf(tr)
		if err != nil {
			return SessionAccuracy{}, err
		}
		inf, err := atk.Infer(obs)
		if err != nil {
			return SessionAccuracy{}, err
		}
		correct, total := attack.ScoreDecisions(inf.Decisions, tr.GroundTruthDecisions())
		return SessionAccuracy{
			Condition: cond, ViewerID: pop[i].ID, Correct: correct, Total: total,
			Margin: inf.DecodeMargin,
		}, nil
	})
	if err != nil {
		return nil, err
	}

	res := &AccuracyResult{Sessions: sessions}
	var accs, margins []float64
	for _, s := range sessions {
		if s.Total > 0 {
			accs = append(accs, float64(s.Correct)/float64(s.Total))
		}
		margins = append(margins, s.Margin)
	}
	res.Mean = stats.Mean(accs)
	res.WorstCase = stats.Min(accs)
	res.MeanMargin = stats.Mean(margins)
	res.Report = renderAccuracy(res)
	return res, nil
}

func renderAccuracy(res *AccuracyResult) string {
	var b strings.Builder
	b.WriteString("Headline result (§V): choice recovery from encrypted traffic\n")
	rows := [][]string{}
	for i, s := range res.Sessions {
		rows = append(rows, []string{
			fmt.Sprintf("%d", i+1), s.ViewerID, s.Condition.String(),
			fmt.Sprintf("%d/%d", s.Correct, s.Total),
			fmt.Sprintf("%.0f%%", 100*float64(s.Correct)/float64(max(s.Total, 1))),
			fmt.Sprintf("%.3f", s.Margin),
		})
	}
	b.WriteString(stats.RenderTable(
		[]string{"session", "viewer", "condition", "choices", "accuracy", "margin"}, rows))
	fmt.Fprintf(&b, "\nmean accuracy:  %.1f%%\n", 100*res.Mean)
	fmt.Fprintf(&b, "worst case:     %.1f%%   (paper: 96%% worst case)\n", 100*res.WorstCase)
	fmt.Fprintf(&b, "decode margin:  %.3f mean score gap to the runner-up hypothesis\n", res.MeanMargin)
	return b.String()
}

// --- Ablation: classifier comparison ------------------------------------------

// ClassifierAblationResult compares the paper's interval-band rule with
// nearest-centroid and kNN on the same per-record classification task.
type ClassifierAblationResult struct {
	PerClassifier map[string]float64 // record-level accuracy
	Report        string
}

// ClassifierAblation trains each classifier under one condition and
// scores per-record classification on held-out sessions. The held-out
// sessions are simulated once, in parallel, and shared by every
// classifier (they score the same task), and classifiers are evaluated in
// a fixed order, so the ablation is deterministic.
func ClassifierAblation(seed uint64) (*ClassifierAblationResult, error) {
	g := script.Bandersnatch()
	enc := sharedEncoding(g, seed)
	cond := profiles.Fig2Ubuntu
	root := wire.NewRNG(seed)

	training, err := profileSessions(g, enc, cond, 3, 10,
		func(t int) (viewer.Viewer, uint64) {
			return viewer.SamplePopulation(1, root.Stream(uint64(t+1)))[0],
				seed + uint64(t)*131
		}, nil)
	if err != nil {
		return nil, err
	}
	examples := attack.TrainingSetFromTraces(training)

	heldOut, err := parallel.MapN(0, 4, func(t int) (*session.Trace, error) {
		return runOne(g, enc, viewer.SamplePopulation(1, root.Stream(uint64(100+t)))[0],
			cond, seed+uint64(5000+t*17), nil)
	})
	if err != nil {
		return nil, err
	}

	trainers := []struct {
		name    string
		trainer attack.Trainer
	}{
		{"interval-band", &attack.IntervalBandTrainer{}},
		{"nearest-centroid", attack.NearestCentroidTrainer{}},
		{"knn-5", attack.KNNTrainer{K: 5}},
	}
	res := &ClassifierAblationResult{PerClassifier: map[string]float64{}}
	for _, tc := range trainers {
		clf, err := tc.trainer.Train(examples)
		if err != nil {
			return nil, fmt.Errorf("training %s: %w", tc.name, err)
		}
		cm := stats.NewConfusionMatrix("others", "type-1", "type-2")
		for _, trc := range heldOut {
			for _, w := range trc.ClientWrites {
				if w.Label == session.LabelHandshake {
					continue
				}
				actual := "others"
				switch w.Label {
				case session.LabelType1:
					actual = "type-1"
				case session.LabelType2:
					actual = "type-2"
				}
				for _, r := range w.Records {
					got, _ := clf.Classify(r.Length)
					cm.Observe(actual, got.String())
				}
			}
		}
		res.PerClassifier[tc.name] = cm.Accuracy()
	}
	var b strings.Builder
	b.WriteString("Ablation: record classifier comparison (record-level accuracy)\n")
	rows := [][]string{}
	for _, tc := range trainers {
		rows = append(rows, []string{tc.name, fmt.Sprintf("%.2f%%", 100*res.PerClassifier[tc.name])})
	}
	b.WriteString(stats.RenderTable([]string{"classifier", "accuracy"}, rows))
	res.Report = b.String()
	return res, nil
}
