package experiments

import (
	"fmt"
	"strings"

	"repro/internal/attack"
	"repro/internal/profiles"
	"repro/internal/script"
	"repro/internal/session"
	"repro/internal/stats"
	"repro/internal/viewer"
	"repro/internal/wire"
)

// AccuracyResult reproduces the §V headline: per-session choice-recovery
// accuracy over sessions viewed by different people under different
// operational and network conditions; the paper reports 96% in the worst
// case.
type AccuracyResult struct {
	Sessions  []SessionAccuracy
	Mean      float64
	WorstCase float64
	Report    string
}

// SessionAccuracy scores one session.
type SessionAccuracy struct {
	Condition profiles.Condition
	ViewerID  string
	Correct   int
	Total     int
}

// Accuracy runs n test sessions (the paper used 10), each under a
// different condition drawn from the Table I grid, trains the paper's
// interval-band classifier per condition on trainPerCond held-out
// sessions, and scores per-choice recovery.
func Accuracy(n, trainPerCond int, seed uint64) (*AccuracyResult, error) {
	if n <= 0 {
		n = 10
	}
	if trainPerCond <= 0 {
		trainPerCond = 2
	}
	g := script.Bandersnatch()
	enc := sharedEncoding(g, seed)
	grid := profiles.Grid()
	rng := wire.NewRNG(seed)
	pop := viewer.SamplePopulation(n, rng.Fork(1))

	res := &AccuracyResult{}
	var accs []float64
	for i := 0; i < n; i++ {
		cond := grid[(i*7)%len(grid)] // stride the grid for variety
		// Train per condition on sessions disjoint from the test session,
		// collecting more until both report types have been observed (a
		// viewer who took only defaults never sent a type-2, and the
		// attacker keeps profiling until both bands are known).
		var training []*session.Trace
		for t := 0; t < trainPerCond+8; t++ {
			tr, err := runOne(g, enc, viewer.SamplePopulation(1, rng.Fork(uint64(1000+i*10+t)))[0],
				cond, seed+uint64(9000+i*100+t), nil)
			if err != nil {
				return nil, err
			}
			training = append(training, tr)
			if t >= trainPerCond-1 && trainingHasBothClasses(training) {
				break
			}
		}
		atk, err := attack.NewAttacker(training, g, script.BandersnatchMaxChoices)
		if err != nil {
			return nil, fmt.Errorf("training under %s: %w", cond, err)
		}

		tr, err := runOne(g, enc, pop[i], cond, seed+uint64(i)*31, nil)
		if err != nil {
			return nil, err
		}
		obs, err := observationOf(tr)
		if err != nil {
			return nil, err
		}
		inf, err := atk.Infer(obs)
		if err != nil {
			return nil, err
		}
		correct, total := attack.ScoreDecisions(inf.Decisions, tr.GroundTruthDecisions())
		res.Sessions = append(res.Sessions, SessionAccuracy{
			Condition: cond, ViewerID: pop[i].ID, Correct: correct, Total: total,
		})
		if total > 0 {
			accs = append(accs, float64(correct)/float64(total))
		}
	}
	res.Mean = stats.Mean(accs)
	res.WorstCase = stats.Min(accs)
	res.Report = renderAccuracy(res)
	return res, nil
}

// trainingHasBothClasses reports whether the traces contain at least one
// type-1 and one type-2 example.
func trainingHasBothClasses(traces []*session.Trace) bool {
	var has1, has2 bool
	for _, e := range attack.TrainingSetFromTraces(traces) {
		switch e.Class {
		case attack.ClassType1:
			has1 = true
		case attack.ClassType2:
			has2 = true
		}
	}
	return has1 && has2
}

func renderAccuracy(res *AccuracyResult) string {
	var b strings.Builder
	b.WriteString("Headline result (§V): choice recovery from encrypted traffic\n")
	rows := [][]string{}
	for i, s := range res.Sessions {
		rows = append(rows, []string{
			fmt.Sprintf("%d", i+1), s.ViewerID, s.Condition.String(),
			fmt.Sprintf("%d/%d", s.Correct, s.Total),
			fmt.Sprintf("%.0f%%", 100*float64(s.Correct)/float64(max(s.Total, 1))),
		})
	}
	b.WriteString(stats.RenderTable(
		[]string{"session", "viewer", "condition", "choices", "accuracy"}, rows))
	fmt.Fprintf(&b, "\nmean accuracy:  %.1f%%\n", 100*res.Mean)
	fmt.Fprintf(&b, "worst case:     %.1f%%   (paper: 96%% worst case)\n", 100*res.WorstCase)
	return b.String()
}

// --- Ablation: classifier comparison ------------------------------------------

// ClassifierAblationResult compares the paper's interval-band rule with
// nearest-centroid and kNN on the same per-record classification task.
type ClassifierAblationResult struct {
	PerClassifier map[string]float64 // record-level accuracy
	Report        string
}

// ClassifierAblation trains each classifier under one condition and
// scores per-record classification on held-out sessions.
func ClassifierAblation(seed uint64) (*ClassifierAblationResult, error) {
	g := script.Bandersnatch()
	enc := sharedEncoding(g, seed)
	cond := profiles.Fig2Ubuntu
	rng := wire.NewRNG(seed)

	var training []*session.Trace
	for t := 0; t < 10; t++ {
		tr, err := runOne(g, enc, viewer.SamplePopulation(1, rng.Fork(uint64(t+1)))[0],
			cond, seed+uint64(t)*131, nil)
		if err != nil {
			return nil, err
		}
		training = append(training, tr)
		if t >= 2 && trainingHasBothClasses(training) {
			break
		}
	}
	examples := attack.TrainingSetFromTraces(training)

	trainers := map[string]attack.Trainer{
		"interval-band":    &attack.IntervalBandTrainer{},
		"nearest-centroid": attack.NearestCentroidTrainer{},
		"knn-5":            attack.KNNTrainer{K: 5},
	}
	res := &ClassifierAblationResult{PerClassifier: map[string]float64{}}
	for name, tr := range trainers {
		clf, err := tr.Train(examples)
		if err != nil {
			return nil, fmt.Errorf("training %s: %w", name, err)
		}
		cm := stats.NewConfusionMatrix("others", "type-1", "type-2")
		for t := 0; t < 4; t++ {
			trc, err := runOne(g, enc, viewer.SamplePopulation(1, rng.Fork(uint64(100+t)))[0],
				cond, seed+uint64(5000+t*17), nil)
			if err != nil {
				return nil, err
			}
			for _, w := range trc.ClientWrites {
				if w.Label == session.LabelHandshake {
					continue
				}
				actual := "others"
				switch w.Label {
				case session.LabelType1:
					actual = "type-1"
				case session.LabelType2:
					actual = "type-2"
				}
				for _, r := range w.Records {
					got, _ := clf.Classify(r.Length)
					cm.Observe(actual, got.String())
				}
			}
		}
		res.PerClassifier[name] = cm.Accuracy()
	}
	var b strings.Builder
	b.WriteString("Ablation: record classifier comparison (record-level accuracy)\n")
	rows := [][]string{}
	for _, name := range []string{"interval-band", "nearest-centroid", "knn-5"} {
		rows = append(rows, []string{name, fmt.Sprintf("%.2f%%", 100*res.PerClassifier[name])})
	}
	b.WriteString(stats.RenderTable([]string{"classifier", "accuracy"}, rows))
	res.Report = b.String()
	return res, nil
}
