package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/attack"
	"repro/internal/defense"
	"repro/internal/parallel"
	"repro/internal/profiles"
	"repro/internal/script"
	"repro/internal/session"
	"repro/internal/stats"
	"repro/internal/viewer"
	"repro/internal/wire"
)

// DefenseResult evaluates the §VI countermeasures (C1) against the
// record-length attack: attack accuracy with no defense, with padded
// reports, with split reports, and with compressed reports. PriorGuess
// is the accuracy of an attacker who sees nothing and guesses the
// graph's most likely (all-default) path — the floor the defenses should
// push the attack down to.
type DefenseResult struct {
	// PerDefense maps defense name to choice-recovery accuracy.
	PerDefense map[string]float64
	// PerDefenseMargin maps defense name to the mean decode margin — a
	// working defense drives the margin to ~0 (every candidate path looks
	// alike) even before accuracy reaches the floor, so it doubles as an
	// early-warning metric for partial countermeasures.
	PerDefenseMargin map[string]float64
	// PriorGuess is the blind all-defaults baseline accuracy.
	PriorGuess float64
	Report     string
}

// defenseUnderTest pairs a name with the session transform.
type defenseUnderTest struct {
	name      string
	transform defense.Transform
}

// Defenses runs the record-length attack against each countermeasure.
// Training happens on undefended traffic (the realistic threat model:
// the defense deploys after the attacker profiled the service). Every
// (defense, session) cell is independent — the same viewers and session
// seeds are reused across defenses, which makes the comparison paired —
// so the full grid fans out across the worker pool.
func Defenses(sessions int, seed uint64) (*DefenseResult, error) {
	if sessions <= 0 {
		sessions = 5
	}
	g := script.Bandersnatch()
	enc := sharedEncoding(g, seed)
	cond := profiles.Fig2Ubuntu
	root := wire.NewRNG(seed)

	// Train once on undefended traffic, profiling until both report
	// types have been seen.
	training, err := profileSessions(g, enc, cond, 2, 10,
		func(t int) (viewer.Viewer, uint64) {
			return viewer.SamplePopulation(1, root.Stream(uint64(t+1)))[0],
				seed + uint64(t)*211
		}, nil)
	if err != nil {
		return nil, err
	}
	atk, err := attack.NewAttacker(training, g, script.BandersnatchMaxChoices)
	if err != nil {
		return nil, err
	}

	cases := []defenseUnderTest{
		{"none", nil},
		{"pad-to-4096", defense.PadReports(4096)},
		{"split-1200", defense.SplitReports(1200)},
		{"compress-55%", defense.CompressReports(55, 40)},
	}
	type cell struct {
		correct, total int
		margin         float64
		truth          []bool
	}
	cells, err := parallel.MapN(0, len(cases)*sessions, func(k int) (cell, error) {
		dc, i := cases[k/sessions], k%sessions
		v := viewer.SamplePopulation(1, root.Stream(uint64(100+i)))[0]
		tr, err := runOne(g, enc, v, cond, seed+uint64(3000+i*37), func(c *session.Config) {
			if dc.transform != nil {
				c.Defense = dc.transform
			}
		})
		if err != nil {
			return cell{}, err
		}
		out := cell{truth: tr.GroundTruthDecisions()}
		obs, err := observationOf(tr)
		if err != nil {
			return cell{}, err
		}
		inf, err := atk.Infer(obs)
		if err != nil {
			// Constrained decode can fail when the defense removes
			// every detectable event; count all choices wrong.
			out.total = len(out.truth)
			return out, nil
		}
		out.correct, out.total = attack.ScoreDecisions(inf.Decisions, out.truth)
		out.margin = inf.DecodeMargin
		return out, nil
	})
	if err != nil {
		return nil, err
	}

	res := &DefenseResult{
		PerDefense:       map[string]float64{},
		PerDefenseMargin: map[string]float64{},
	}
	var priorCorrect, priorTotal int
	for d, dc := range cases {
		var correct, total int
		var margin float64
		for i := 0; i < sessions; i++ {
			c := cells[d*sessions+i]
			correct += c.correct
			total += c.total
			margin += c.margin
			if dc.name == "none" {
				// The blind baseline guesses all defaults on the same set
				// of test sessions.
				for _, dec := range c.truth {
					priorTotal++
					if dec {
						priorCorrect++
					}
				}
			}
		}
		if total > 0 {
			res.PerDefense[dc.name] = float64(correct) / float64(total)
		}
		res.PerDefenseMargin[dc.name] = margin / float64(sessions)
	}
	if priorTotal > 0 {
		res.PriorGuess = float64(priorCorrect) / float64(priorTotal)
	}

	var b strings.Builder
	b.WriteString("Countermeasures (§VI): record-length attack vs JSON transforms\n")
	rows := [][]string{}
	for _, dc := range cases {
		rows = append(rows, []string{dc.name,
			fmt.Sprintf("%.0f%%", 100*res.PerDefense[dc.name]),
			fmt.Sprintf("%.3f", res.PerDefenseMargin[dc.name])})
	}
	rows = append(rows, []string{"(blind all-defaults guess)",
		fmt.Sprintf("%.0f%%", 100*res.PriorGuess), ""})
	b.WriteString(stats.RenderTable([]string{"defense", "choice recovery accuracy", "decode margin"}, rows))
	b.WriteString("\nEach transform removes the record-length signal; the attack falls to\n" +
		"the blind-guess floor (the graph's default-branch prior), not to zero.\n")
	res.Report = b.String()
	return res, nil
}

// --- C2: the residual timing side-channel -------------------------------------

// TimingResult evaluates the timing attack with the record-length
// defense active — the paper's closing warning that fixing lengths does
// not close the channel.
type TimingResult struct {
	// EventDetectionRate is the fraction of true choice points the
	// timing detector finds under the padded defense.
	EventDetectionRate float64
	// DecisionAccuracy is the default/non-default accuracy at detected
	// choice points.
	DecisionAccuracy float64
	Report           string
}

// Timing runs padded-defense sessions and attacks them with traffic
// structure only: detected events are matched to ground-truth question
// times and decisions classified by the decision-time client record pair
// (a non-default choice posts the type-2 report and fires the first
// alternative chunk request back-to-back; no calibration needed).
// Sessions fan out across the worker pool and per-session tallies fold in
// session order.
func Timing(sessions int, seed uint64) (*TimingResult, error) {
	if sessions <= 0 {
		sessions = 6
	}
	g := script.Bandersnatch()
	enc := sharedEncoding(g, seed)
	cond := profiles.Fig2Ubuntu
	root := wire.NewRNG(seed)
	pad := defense.PadReports(4096)

	ta := &defense.TimingAttack{QuietBefore: 3 * time.Second, Feature: defense.FeaturePairs}
	const matchTolerance = 6 * time.Second

	type tally struct{ detected, trueEvents, correct, scored int }
	tallies, err := parallel.MapN(0, sessions, func(i int) (tally, error) {
		tr, err := runOne(g, enc, viewer.SamplePopulation(1, root.Stream(uint64(100+i)))[0],
			cond, seed+uint64(7000+i*53), func(c *session.Config) { c.Defense = pad })
		if err != nil {
			return tally{}, err
		}
		obs, err := observationOf(tr)
		if err != nil {
			return tally{}, err
		}
		events := ta.DetectEvents(obs.ClientRecords, obs.ServerRecords)
		decisions := ta.ClassifyEvents(events)
		truth := tr.Result.Choices
		times := make([]time.Time, len(truth))
		for k, c := range truth {
			times[k] = c.QuestionAt
		}
		out := tally{trueEvents: len(truth)}
		for k, j := range defense.MatchEvents(events, times, matchTolerance) {
			if j < 0 {
				continue
			}
			out.detected++
			out.scored++
			if decisions[j] == truth[k].TookDefault {
				out.correct++
			}
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	var detected, trueEvents, correct, scored int
	for _, t := range tallies {
		detected += t.detected
		trueEvents += t.trueEvents
		correct += t.correct
		scored += t.scored
	}

	res := &TimingResult{}
	if trueEvents > 0 {
		res.EventDetectionRate = float64(detected) / float64(trueEvents)
	}
	if scored > 0 {
		res.DecisionAccuracy = float64(correct) / float64(scored)
	}
	var b strings.Builder
	b.WriteString("Residual timing side-channel (§VI warning), record lengths padded:\n")
	rows := [][]string{
		{"choice points detected", fmt.Sprintf("%.0f%%", 100*res.EventDetectionRate)},
		{"default/non-default accuracy", fmt.Sprintf("%.0f%%", 100*res.DecisionAccuracy)},
	}
	b.WriteString(stats.RenderTable([]string{"metric", "value"}, rows))
	b.WriteString("\nPadding hides which report was sent, but the check-pointed pause and\n" +
		"the prefetch-cancel stall remain visible in timing, as the paper warns.\n")
	res.Report = b.String()
	return res, nil
}

// --- Ablation: prefetch off ----------------------------------------------------

// PrefetchAblationResult shows the timing channel collapsing when the
// player does not prefetch the default branch.
type PrefetchAblationResult struct {
	WithPrefetch    float64 // timing-attack decision accuracy
	WithoutPrefetch float64
	Report          string
}

// PrefetchAblation compares volume-based timing-attack accuracy with and
// without default-branch prefetching (record lengths padded in both).
// Without prefetch there is no discarded download, so the volume
// asymmetry between default and non-default choices shrinks. Within each
// player mode the calibration batch and the scored sessions fan out
// across the pool.
func PrefetchAblation(sessions int, seed uint64) (*PrefetchAblationResult, error) {
	if sessions <= 0 {
		sessions = 5
	}
	run := func(disablePrefetch bool) (float64, error) {
		g := script.Bandersnatch()
		enc := sharedEncoding(g, seed)
		cond := profiles.Fig2Ubuntu
		root := wire.NewRNG(seed ^ 0x5eed)
		pad := defense.PadReports(4096)
		// The ablation deliberately uses the volume feature: it is the
		// one that depends on the prefetch-cancel creating a redundant
		// download (the pair feature keys on the client side and works
		// either way).
		ta := &defense.TimingAttack{QuietBefore: 3 * time.Second, Feature: defense.FeatureVolume}
		const matchTolerance = 6 * time.Second

		padded := func(c *session.Config) {
			c.Defense = pad
			c.DisablePrefetch = disablePrefetch
		}
		// calibrationVols extracts matched event volumes from one
		// calibration session.
		type vols struct{ def, alt []int }
		calibrate := func(t int) (vols, error) {
			tr, err := runOne(g, enc, viewer.SamplePopulation(1, root.Stream(uint64(t+900)))[0],
				cond, seed+uint64(t)*881, padded)
			if err != nil {
				return vols{}, err
			}
			obs, err := observationOf(tr)
			if err != nil {
				return vols{}, err
			}
			events := ta.DetectEvents(obs.ClientRecords, obs.ServerRecords)
			truth := tr.Result.Choices
			times := make([]time.Time, len(truth))
			for k, c := range truth {
				times[k] = c.QuestionAt
			}
			var out vols
			for k, j := range defense.MatchEvents(events, times, matchTolerance) {
				if j < 0 {
					continue
				}
				if truth[k].TookDefault {
					out.def = append(out.def, events[j].DownlinkBytes)
				} else {
					out.alt = append(out.alt, events[j].DownlinkBytes)
				}
			}
			return out, nil
		}

		// Calibrate per player mode on held-out sessions: a parallel batch
		// of six so the class means are stable, extended sequentially while
		// a class is still unrepresented.
		var defVols, altVols []int
		batch, err := parallel.MapN(0, 6, func(t int) (vols, error) { return calibrate(t) })
		if err != nil {
			return 0, err
		}
		for _, v := range batch {
			defVols = append(defVols, v.def...)
			altVols = append(altVols, v.alt...)
		}
		for t := 6; t < 12 && (len(defVols) == 0 || len(altVols) == 0); t++ {
			v, err := calibrate(t)
			if err != nil {
				return 0, err
			}
			defVols = append(defVols, v.def...)
			altVols = append(altVols, v.alt...)
		}
		ta.CalibrateVolume(defVols, altVols)

		type score struct{ correct, scored int }
		scores, err := parallel.MapN(0, sessions, func(i int) (score, error) {
			tr, err := runOne(g, enc, viewer.SamplePopulation(1, root.Stream(uint64(i+1)))[0],
				cond, seed+uint64(i)*67, padded)
			if err != nil {
				return score{}, err
			}
			obs, err := observationOf(tr)
			if err != nil {
				return score{}, err
			}
			events := ta.DetectEvents(obs.ClientRecords, obs.ServerRecords)
			decisions := ta.ClassifyEvents(events)
			truth := tr.Result.Choices
			times := make([]time.Time, len(truth))
			for k, c := range truth {
				times[k] = c.QuestionAt
			}
			var out score
			for k, j := range defense.MatchEvents(events, times, matchTolerance) {
				if j < 0 {
					continue
				}
				out.scored++
				if decisions[j] == truth[k].TookDefault {
					out.correct++
				}
			}
			return out, nil
		})
		if err != nil {
			return 0, err
		}
		var correct, scored int
		for _, s := range scores {
			correct += s.correct
			scored += s.scored
		}
		if scored == 0 {
			return 0, nil
		}
		return float64(correct) / float64(scored), nil
	}
	// The two player modes run back to back: each already saturates the
	// worker pool through its calibration and scoring fan-outs, and
	// nesting them in another MapN would double the configured bound.
	with, err := run(false)
	if err != nil {
		return nil, err
	}
	without, err := run(true)
	if err != nil {
		return nil, err
	}
	res := &PrefetchAblationResult{WithPrefetch: with, WithoutPrefetch: without}
	var b strings.Builder
	b.WriteString("Ablation: the timing channel needs the prefetch-cancel\n")
	rows := [][]string{
		{"prefetch enabled (film behaviour)", fmt.Sprintf("%.0f%%", 100*res.WithPrefetch)},
		{"prefetch disabled", fmt.Sprintf("%.0f%%", 100*res.WithoutPrefetch)},
	}
	b.WriteString(stats.RenderTable([]string{"player mode", "timing-attack accuracy"}, rows))
	res.Report = b.String()
	return res, nil
}
