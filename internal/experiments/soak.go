package experiments

import (
	"bytes"
	"fmt"
	"io"
	"reflect"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/attack"
	"repro/internal/capture"
	"repro/internal/layers"
	"repro/internal/pcapio"
	"repro/internal/profiles"
	"repro/internal/script"
	"repro/internal/session"
	"repro/internal/stats"
	"repro/internal/viewer"
	"repro/internal/wire"
)

// SoakResult summarizes the long-run harness: many back-to-back
// interactive sessions, each interleaved with noise flows, streamed
// through ONE rolling-window monitor as a continuous link tap.
type SoakResult struct {
	// Sessions is the number of consecutive interactive sessions fed.
	Sessions int
	// NoiseFlows is the concurrent bulk-streaming flows per session.
	NoiseFlows int
	// Shards is the monitor's shard count (0 = single-threaded).
	Shards int
	// Decoded counts sessions whose windowed per-flow inference is
	// byte-identical (reflect.DeepEqual) to the one-shot InferPcap run on
	// the same capture in isolation — the batch-equivalence bar.
	Decoded int
	// DecisionsOK counts sessions where at least the decision vector
	// matched the one-shot baseline (a weaker bar than Decoded).
	DecisionsOK int
	// Finalized counts SessionFinalized events over the whole run.
	Finalized int
	// ExpiredByReason tallies FlowExpired events by reason.
	ExpiredByReason map[string]int
	// RetainedBySession samples Monitor.Stats().RetainedBytes after each
	// session's flows have closed — the figure that must stay flat in N.
	RetainedBySession []int64
	// HeapBySession samples runtime HeapAlloc (after GC) at the same
	// points; unlike RetainedBySession it includes harness overhead, so
	// flatness is asserted with slack.
	HeapBySession []uint64
	// PeakRetainedBytes is the max of RetainedBySession.
	PeakRetainedBytes int64
	// RingBlocks is the packet ring's block count at the end — a flat
	// figure proves frame slots recycle rather than leak.
	RingBlocks int
	// RingInUseEnd is the ring bytes still referenced after Close.
	RingInUseEnd int64
	// Sweeps and SweepTouched are the monitor's idle-sweep counters at the
	// end of the run: SweepTouched stays O(expired flows), not
	// O(flows × sweeps), now that expiry rides the timing wheel.
	Sweeps       int64
	SweepTouched int64
	// ShardRetainedBySession samples each shard's RetainedBytes after each
	// session (sharded runs only): every per-shard series must stay as
	// flat as the aggregate — no shard may accumulate what the others
	// release.
	ShardRetainedBySession [][]int64
	// Events is the monitor's full ordered event stream, recorded so a
	// sharded soak can be checked byte-identical against the
	// single-threaded run.
	Events []attack.Event
	Report string
}

// Soak is the bounded-memory proof for the rolling-window monitor: it
// streams `sessions` consecutive interactive sessions — each rendered as
// an interleaved capture with `noiseFlows` concurrent bulk flows and laid
// end to end on one capture timeline — through a single windowed Monitor
// via the zero-copy FeedPacketOwned/PacketRing path, and checks that
// every session's SessionFinalized inference equals the one-shot
// InferPcap baseline for that capture while the monitor's retained memory
// stays O(window), not O(sessions).
func Soak(sessions, noiseFlows int, seed uint64) (*SoakResult, error) {
	return soakRun(sessions, noiseFlows, seed, 0)
}

// SoakSharded is Soak on the multi-core monitor: the same continuous tap
// streams through `shards` per-core monitor shards, and the result must
// be indistinguishable — the recorded Events stream is byte-identical to
// the single-threaded soak's, and every shard's retained footprint stays
// flat in the session count.
func SoakSharded(sessions, noiseFlows int, seed uint64, shards int) (*SoakResult, error) {
	if shards < 1 {
		shards = 1
	}
	return soakRun(sessions, noiseFlows, seed, shards)
}

func soakRun(sessions, noiseFlows int, seed uint64, shards int) (*SoakResult, error) {
	if sessions <= 0 {
		sessions = 20
	}
	if noiseFlows < 0 {
		noiseFlows = 2
	}
	g := script.Bandersnatch()
	enc := sharedEncoding(g, seed)
	cond := profiles.Fig2Ubuntu
	root := wire.NewRNG(seed)

	training, err := profileSessions(g, enc, cond, 3, 10,
		func(t int) (viewer.Viewer, uint64) {
			return viewer.SamplePopulation(1, root.Stream(uint64(t+1)))[0],
				seed + uint64(t)*131
		}, nil)
	if err != nil {
		return nil, err
	}
	atk, err := attack.NewAttacker(training, g, script.BandersnatchMaxChoices)
	if err != nil {
		return nil, err
	}

	res := &SoakResult{
		Sessions: sessions, NoiseFlows: noiseFlows, Shards: shards,
		ExpiredByReason: map[string]int{},
	}
	ring := pcapio.NewPacketRing(0)
	// The soak's per-flow inferences arrive through events; index them by
	// full flow key (each session's conversation has its own 5-tuple).
	finals := map[layers.FlowKey]*attack.Inference{}
	m := attack.NewMonitor(atk, attack.MonitorOptions{
		FrameRing: ring,
		Shards:    shards,
		Window:    &attack.Window{IdleTimeout: 60 * time.Second},
		OnEvent: func(ev attack.Event) {
			res.Events = append(res.Events, ev)
			switch e := ev.(type) {
			case attack.FlowDetected, attack.ChoiceInferred:
				// Counted via res.Events above; the soak only tallies
				// terminal outcomes per flow.
			case attack.SessionFinalized:
				res.Finalized++
				finals[e.Flow] = e.Inference
			case attack.FlowExpired:
				res.ExpiredByReason[e.Reason]++
			case attack.QUICFlowObserved:
				// Transport observation, not a terminal outcome.
			}
		},
	})

	pop := viewer.SamplePopulation(sessions, root.Stream(77))
	var cursor time.Duration // end of the tap timeline laid so far
	var timelineZero time.Time
	type expect struct {
		key      layers.FlowKey
		baseline *attack.Inference
	}
	expects := make([]expect, 0, sessions)
	for s := 0; s < sessions; s++ {
		tr, err := runOne(g, enc, pop[s], cond, seed+uint64(4000+s*59),
			func(cfg *session.Config) { cfg.OmitServerPayload = false })
		if err != nil {
			return nil, err
		}
		ep := capture.DefaultEndpoints()
		// Distinct client port per session: a fresh ephemeral socket, and
		// distinct noise 5-tuples derived from it.
		ep.ClientPort += uint16(s * 16)

		start := tr.ClientToServer.Writes[0].Time
		if timelineZero.IsZero() {
			timelineZero = start
		}
		offset := cursor - start.Sub(timelineZero)
		var buf bytes.Buffer
		if err := capture.WritePcapMulti(&buf, tr, capture.MultiOptions{
			Options: capture.Options{
				Seed: seed + uint64(s)*13, Endpoints: ep, TimeOffset: offset,
			},
			NoiseFlows: noiseFlows,
		}); err != nil {
			return nil, err
		}
		data := buf.Bytes()

		// One-shot baseline on the very same capture bytes.
		baseline, err := atk.InferPcap(data)
		if err != nil {
			return nil, err
		}
		expects = append(expects, expect{baseline: baseline, key: layers.FlowKey{
			SrcAddr: ep.ClientAddr, DstAddr: ep.ServerAddr,
			SrcPort: ep.ClientPort, DstPort: ep.ServerPort,
		}})

		// Stream the capture's packets through the shared monitor via the
		// ring: each frame lands in a ring slot and is handed over without
		// further copies; the monitor releases spans as the window drops
		// them, recycling the slots.
		pr, err := pcapio.NewBytesReader(data)
		if err != nil {
			return nil, err
		}
		var last time.Time
		for {
			rec, err := pr.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return nil, err
			}
			if err := m.FeedPacketOwned(rec.Timestamp, ring.AllocFrame(rec.Data)); err != nil {
				return nil, err
			}
			last = rec.Timestamp
		}
		// Advance the tap timeline: the next session starts shortly after
		// this one's last frame.
		cursor = last.Sub(timelineZero) + 2*time.Second

		// Sample the monitor's footprint with the capture dropped — the
		// series a bounded-memory monitor keeps flat.
		st := m.Stats()
		retained := st.RetainedBytes + ring.InUse()
		res.RetainedBySession = append(res.RetainedBySession, retained)
		if len(st.Shards) > 0 {
			perShard := make([]int64, len(st.Shards))
			for i, sh := range st.Shards {
				perShard[i] = sh.RetainedBytes
			}
			res.ShardRetainedBySession = append(res.ShardRetainedBySession, perShard)
		}
		if retained > res.PeakRetainedBytes {
			res.PeakRetainedBytes = retained
		}
		data, buf = nil, bytes.Buffer{} // drop the capture before sampling the heap
		_ = data
		var ms runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&ms)
		res.HeapBySession = append(res.HeapBySession, ms.HeapAlloc)
	}
	if _, err := m.Close(); err != nil {
		return nil, err
	}
	end := m.Stats()
	res.Sweeps, res.SweepTouched = end.Sweeps, end.SweepTouched
	res.RingBlocks = ring.Blocks()
	res.RingInUseEnd = ring.InUse()

	for _, e := range expects {
		inf := finals[e.key]
		if inf == nil {
			continue
		}
		if reflect.DeepEqual(inf, e.baseline) {
			res.Decoded++
		}
		if reflect.DeepEqual(inf.Decisions, e.baseline.Decisions) {
			res.DecisionsOK++
		}
	}
	res.Report = renderSoak(res)
	return res, nil
}

func renderSoak(res *SoakResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Rolling-window soak: %d back-to-back sessions + %d noise flows each through ONE monitor\n",
		res.Sessions, res.NoiseFlows)
	if res.Shards > 0 {
		fmt.Fprintf(&b, "(sharded engine: %d per-core monitor shards behind the same API)\n", res.Shards)
	}
	fmt.Fprintf(&b, "(zero-copy FeedPacketOwned via PacketRing; per-flow FIN/idle finalization)\n")
	rows := [][]string{
		{"sessions decoded byte-identical to one-shot InferPcap",
			fmt.Sprintf("%d/%d", res.Decoded, res.Sessions)},
		{"sessions with matching decision vector",
			fmt.Sprintf("%d/%d", res.DecisionsOK, res.Sessions)},
		{"SessionFinalized events", fmt.Sprintf("%d", res.Finalized)},
		{"peak retained (monitor + ring)", fmt.Sprintf("%.1f KiB", float64(res.PeakRetainedBytes)/1024)},
		{"ring blocks at end / bytes in use", fmt.Sprintf("%d / %d", res.RingBlocks, res.RingInUseEnd)},
		{"idle sweeps / wheel entries touched", fmt.Sprintf("%d / %d", res.Sweeps, res.SweepTouched)},
	}
	if n := len(res.ShardRetainedBySession); n > 0 {
		lastRow := res.ShardRetainedBySession[n-1]
		parts := make([]string, len(lastRow))
		for i, v := range lastRow {
			parts[i] = fmt.Sprintf("%.1f", float64(v)/1024)
		}
		rows = append(rows, []string{"per-shard retained after last session (KiB)",
			strings.Join(parts, " / ")})
	}
	if n := len(res.RetainedBySession); n > 0 {
		rows = append(rows, []string{"retained after first/last session",
			fmt.Sprintf("%.1f / %.1f KiB",
				float64(res.RetainedBySession[0])/1024,
				float64(res.RetainedBySession[n-1])/1024)})
	}
	if n := len(res.HeapBySession); n > 0 {
		rows = append(rows, []string{"heap after first/last session",
			fmt.Sprintf("%.1f / %.1f MiB",
				float64(res.HeapBySession[0])/(1<<20),
				float64(res.HeapBySession[n-1])/(1<<20))})
	}
	var reasons []string
	for r, n := range res.ExpiredByReason {
		reasons = append(reasons, fmt.Sprintf("%s:%d", r, n))
	}
	if len(reasons) > 0 {
		sort.Strings(reasons)
		rows = append(rows, []string{"flows expired", strings.Join(reasons, " ")})
	}
	b.WriteString(stats.RenderTable([]string{"metric", "value"}, rows))
	return b.String()
}
