package experiments

import (
	"fmt"
	"strings"

	"repro/internal/attack"
	"repro/internal/dataset"
	"repro/internal/netem"
	"repro/internal/parallel"
	"repro/internal/profiles"
	"repro/internal/script"
	"repro/internal/session"
	"repro/internal/stats"
	"repro/internal/viewer"
	"repro/internal/wire"
)

// DecodeRobustnessResult measures the constrained decoder under band
// drift: the attacker's profiling condition differs from the capture's
// (firefox bands against chrome traffic), so every type-1 and the low
// tail of the type-2 reports fall outside the learned bands. The
// pre-engine decoder collapsed these sessions onto short escape paths —
// the ROADMAP's session-003 accuracy bug — so this driver is the bugfix's
// experiment-level regression surface.
type DecodeRobustnessResult struct {
	Sessions []DecodeRobustnessSession
	// MeanAccuracy is the per-decision recovery accuracy across sessions.
	MeanAccuracy float64
	// MeanMargin is the mean decode margin (best minus runner-up score).
	MeanMargin float64
	// FullPathRate is the fraction of sessions whose complete decision
	// vector was recovered exactly.
	FullPathRate float64
	Report       string
}

// DecodeRobustnessSession is one session's outcome.
type DecodeRobustnessSession struct {
	SessionID string
	Truth     int // ground-truth choice count
	Inferred  int
	Correct   int
	Total     int
	Margin    float64
}

// DecodeRobustness generates the wmdataset fixture (`-n` sessions at
// `seed`; the ROADMAP bug used -n 6 -seed 5, whose session 003 is a
// 9-choice mostly-non-default walk), trains one attacker under a
// deliberately drifted condition, and decodes every session through the
// shared memoized path table. Sessions fan out across the worker pool.
func DecodeRobustness(n int, seed uint64) (*DecodeRobustnessResult, error) {
	if n <= 0 {
		n = 6
	}
	// Lean: the decoder reads client bytes and server record geometry,
	// never server payloads, so skip materializing them.
	ds, err := dataset.Generate(dataset.Config{N: n, Seed: seed, Lean: true})
	if err != nil {
		return nil, err
	}
	g := ds.Graph
	enc := sharedEncoding(g, 1000^0xabcd)
	// The dataset's conditions are all windows/chrome variants at small n;
	// profile under windows/firefox so the bands sit a few bytes off.
	driftCond := profiles.Condition{
		OS: profiles.OSWindows, Platform: profiles.PlatformDesktop,
		Browser: profiles.BrowserFirefox,
		Medium:  netem.MediumWired, TrafficTime: netem.TrafficMorning,
	}
	// Train exactly as cmd/wmattack does (same session IDs, viewers and
	// seeds — report bodies embed the session ID, so even the ID string
	// moves the learned band edges by a byte or two).
	training, err := profileSessions(g, enc, driftCond, 3, 11,
		func(t int) (viewer.Viewer, uint64) {
			return viewer.SamplePopulation(1, wire.NewRNG(1000+uint64(t)*17))[0],
				1000 + uint64(t)*101
		},
		func(t int, cfg *session.Config) {
			cfg.SessionID = fmt.Sprintf("train-%d", t)
		})
	if err != nil {
		return nil, err
	}
	atk, err := attack.NewAttacker(training, g, script.BandersnatchMaxChoices)
	if err != nil {
		return nil, fmt.Errorf("training under %s: %w", driftCond, err)
	}

	sessions, err := parallel.MapN(0, len(ds.Points), func(i int) (DecodeRobustnessSession, error) {
		tr := ds.Points[i].Trace
		truth := tr.GroundTruthDecisions()
		obs, err := observationOf(tr)
		if err != nil {
			return DecodeRobustnessSession{}, err
		}
		inf, err := atk.Infer(obs)
		if err != nil {
			return DecodeRobustnessSession{}, err
		}
		correct, total := attack.ScoreDecisions(inf.Decisions, truth)
		return DecodeRobustnessSession{
			SessionID: tr.SessionID, Truth: len(truth), Inferred: len(inf.Decisions),
			Correct: correct, Total: total, Margin: inf.DecodeMargin,
		}, nil
	})
	if err != nil {
		return nil, err
	}

	res := &DecodeRobustnessResult{Sessions: sessions}
	var accs, margins []float64
	full := 0
	for _, s := range sessions {
		if s.Total > 0 {
			accs = append(accs, float64(s.Correct)/float64(s.Total))
		}
		margins = append(margins, s.Margin)
		if s.Correct == s.Total {
			full++
		}
	}
	res.MeanAccuracy = stats.Mean(accs)
	res.MeanMargin = stats.Mean(margins)
	if len(sessions) > 0 {
		res.FullPathRate = float64(full) / float64(len(sessions))
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Decoder robustness under band drift (trained %s, attacked wmdataset -n %d -seed %d)\n",
		driftCond, n, seed)
	rows := [][]string{}
	for _, s := range sessions {
		rows = append(rows, []string{
			s.SessionID,
			fmt.Sprintf("%d", s.Truth), fmt.Sprintf("%d", s.Inferred),
			fmt.Sprintf("%d/%d", s.Correct, s.Total),
			fmt.Sprintf("%.3f", s.Margin),
		})
	}
	b.WriteString(stats.RenderTable(
		[]string{"session", "truth choices", "inferred", "recovered", "margin"}, rows))
	fmt.Fprintf(&b, "\nmean decision accuracy: %.1f%%   full paths: %.0f%%   mean margin: %.3f\n",
		100*res.MeanAccuracy, 100*res.FullPathRate, res.MeanMargin)
	b.WriteString("\nEvery type-1 and the low type-2 tail fall outside the drifted bands;\n" +
		"the time-aware engine recovers the walks the length-only score lost to\n" +
		"short escape paths.\n")
	res.Report = b.String()
	return res, nil
}
