package experiments

import (
	"bytes"
	"fmt"
	"strings"

	"repro/internal/attack"
	"repro/internal/capture"
	"repro/internal/parallel"
	"repro/internal/profiles"
	"repro/internal/script"
	"repro/internal/session"
	"repro/internal/stats"
	"repro/internal/viewer"
	"repro/internal/wire"
)

// InterleavedPoint aggregates one noise level.
type InterleavedPoint struct {
	// NoiseFlows is the number of concurrent bulk-streaming flows mixed
	// into each capture.
	NoiseFlows int
	// Sessions is the number of attacked captures at this level.
	Sessions int
	// Detected counts captures where the monitor finalized on the
	// interactive flow rather than a noise flow.
	Detected int
	// DetectionRate is Detected / Sessions.
	DetectionRate float64
	// MeanAccuracy is the mean per-choice recovery over the captures
	// where detection succeeded (0 when none did).
	MeanAccuracy float64
	// MeanMargin is the mean decode margin over detected captures.
	MeanMargin float64
}

// InterleavedResult is the multi-flow scenario summary: how well the
// streaming monitor finds and decodes the interactive session when the
// capture interleaves it with background streaming noise.
type InterleavedResult struct {
	Points []InterleavedPoint
	Report string
}

// Interleaved runs the interleaved-capture experiment: for each noise
// level, render sessions with WritePcapMulti, feed each capture to an
// attack.Monitor in chunks (exercising the streaming path end to end),
// and score whether the monitor attacked the interactive flow and how
// many choices it recovered. The attacker trains once under
// ConditionUbuntu; units fan out across the worker pool deterministically.
func Interleaved(sessions int, noiseCounts []int, seed uint64) (*InterleavedResult, error) {
	if sessions <= 0 {
		sessions = 5
	}
	if len(noiseCounts) == 0 {
		noiseCounts = []int{0, 1, 2, 4}
	}
	g := script.Bandersnatch()
	enc := sharedEncoding(g, seed)
	cond := profiles.Fig2Ubuntu
	root := wire.NewRNG(seed)

	training, err := profileSessions(g, enc, cond, 3, 10,
		func(t int) (viewer.Viewer, uint64) {
			return viewer.SamplePopulation(1, root.Stream(uint64(t+1)))[0],
				seed + uint64(t)*131
		}, nil)
	if err != nil {
		return nil, err
	}
	atk, err := attack.NewAttacker(training, g, script.BandersnatchMaxChoices)
	if err != nil {
		return nil, err
	}

	// Simulate the test sessions once (full-fidelity: the server payload
	// must be materialized for pcap rendering) and attack each under every
	// noise level, so levels differ only in the interleaved noise.
	pop := viewer.SamplePopulation(sessions, root.Stream(77))
	traces, err := parallel.MapN(0, sessions, func(s int) (*session.Trace, error) {
		return runOne(g, enc, pop[s], cond, seed+uint64(4000+s*59),
			func(cfg *session.Config) { cfg.OmitServerPayload = false })
	})
	if err != nil {
		return nil, err
	}

	type unit struct {
		detected       bool
		correct, total int
		margin         float64
	}
	units, err := parallel.MapN(0, len(noiseCounts)*sessions, func(i int) (unit, error) {
		ni, si := i/sessions, i%sessions
		tr := traces[si]
		var buf bytes.Buffer
		if err := capture.WritePcapMulti(&buf, tr, capture.MultiOptions{
			Options:    capture.Options{Seed: seed + uint64(i)*13},
			NoiseFlows: noiseCounts[ni],
		}); err != nil {
			return unit{}, err
		}

		var finalized *attack.SessionFinalized
		m := attack.NewMonitor(atk, attack.MonitorOptions{OnEvent: func(ev attack.Event) {
			if f, ok := ev.(attack.SessionFinalized); ok {
				finalized = &f
			}
		}})
		data := buf.Bytes()
		const chunk = 256 << 10
		for off := 0; off < len(data); off += chunk {
			end := off + chunk
			if end > len(data) {
				end = len(data)
			}
			if err := m.Feed(data[off:end]); err != nil {
				return unit{}, err
			}
		}
		inf, err := m.Close()
		if err != nil {
			return unit{}, err
		}
		ep := capture.DefaultEndpoints()
		u := unit{margin: inf.DecodeMargin}
		u.detected = finalized != nil &&
			finalized.Flow.SrcAddr == ep.ClientAddr && finalized.Flow.SrcPort == ep.ClientPort
		u.correct, u.total = attack.ScoreDecisions(inf.Decisions, tr.GroundTruthDecisions())
		return u, nil
	})
	if err != nil {
		return nil, err
	}

	res := &InterleavedResult{}
	for ni, n := range noiseCounts {
		p := InterleavedPoint{NoiseFlows: n, Sessions: sessions}
		var accs, margins []float64
		for si := 0; si < sessions; si++ {
			u := units[ni*sessions+si]
			if !u.detected {
				continue
			}
			p.Detected++
			if u.total > 0 {
				accs = append(accs, float64(u.correct)/float64(u.total))
			}
			margins = append(margins, u.margin)
		}
		p.DetectionRate = float64(p.Detected) / float64(sessions)
		p.MeanAccuracy = stats.Mean(accs)
		p.MeanMargin = stats.Mean(margins)
		res.Points = append(res.Points, p)
	}
	res.Report = renderInterleaved(res)
	return res, nil
}

func renderInterleaved(res *InterleavedResult) string {
	var b strings.Builder
	b.WriteString("Interleaved captures: finding the interactive session among noise flows\n")
	b.WriteString("(streaming attack.Monitor fed in 256 KiB chunks per capture)\n")
	rows := [][]string{}
	for _, p := range res.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.NoiseFlows),
			fmt.Sprintf("%d/%d", p.Detected, p.Sessions),
			fmt.Sprintf("%.0f%%", 100*p.DetectionRate),
			fmt.Sprintf("%.1f%%", 100*p.MeanAccuracy),
			fmt.Sprintf("%.3f", p.MeanMargin),
		})
	}
	b.WriteString(stats.RenderTable(
		[]string{"noise flows", "detected", "detection", "choice accuracy", "margin"}, rows))
	return b.String()
}
