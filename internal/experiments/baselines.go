package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/baseline"
	"repro/internal/media"
	"repro/internal/parallel"
	"repro/internal/script"
	"repro/internal/stats"
	"repro/internal/wire"
)

// BaselineResult reproduces the §II argument (A1 in DESIGN.md): prior
// inter-video techniques cannot tell same-title segments apart, while the
// same implementations separate distinct titles reliably.
type BaselineResult struct {
	// IntraTitleAccuracy is the branch-identification accuracy of each
	// baseline on same-title segment pairs (chance = 0.5).
	IntraTitleAccuracy map[string]float64
	// InterTitleAccuracy is the title-identification accuracy of each
	// baseline across distinct synthetic titles (sanity: near 1.0).
	InterTitleAccuracy map[string]float64
	Report             string
}

// branchPairs are same-title segment pairs that follow a choice: the
// task is to tell which branch streamed, given reference traffic for both.
var branchPairs = [][2]script.SegmentID{
	{"S1", "S1b"},   // breakfast branches
	{"S3", "S3b"},   // soundtrack branches
	{"S9", "S9b"},   // therapy-session branches
	{"S11", "S11b"}, // aftermath branches
	{"S13", "S13b"}, // pamphlet branches
}

// segmentSample renders a segment's downlink traffic as a baseline
// Sample the way an eavesdropper would observe it from an independent
// session: chunk deliveries paced by buffer dynamics rather than media
// time (exponential inter-arrival around the chunk duration), sizes
// perturbed by session-level variation (ABR micro-adjustments, TLS and
// container overhead differences, reassembly aggregation). Two samples
// of the same segment therefore differ in exactly the ways two real
// captures of it would — which is what makes same-title branches hard
// for inter-video features while distinct titles, whose rates differ at
// the ladder scale, stay separable.
func segmentSample(enc *media.Encoding, id script.SegmentID, quality int,
	label string, rng *wire.RNG) (baseline.Sample, error) {
	chunks, err := enc.Chunks(id, quality)
	if err != nil {
		return baseline.Sample{}, err
	}
	s := baseline.Sample{Label: label}
	at := time.Unix(1000, 0)
	// One multiplicative size factor per session (player/overhead level)
	// plus per-chunk dispersion.
	sessionScale := rng.LogNormal(0, 0.08)
	for _, c := range chunks {
		s.Times = append(s.Times, at)
		size := int(float64(c.Size) * sessionScale * rng.LogNormal(0, 0.2))
		if size < 256 {
			size = 256
		}
		s.Lengths = append(s.Lengths, size)
		// Buffer-paced delivery: jitter around the nominal cadence rather
		// than exact media time (σ = a quarter of the chunk duration).
		gap := time.Duration(rng.Normal(float64(c.Duration), 0.25*float64(c.Duration)))
		if gap < c.Duration/4 {
			gap = c.Duration / 4
		}
		at = at.Add(gap)
	}
	return s, nil
}

// Baselines runs both tasks over `trials` train/test draws. Trials are
// independent — each draws its randomness from per-trial streams off the
// root seed — so both tasks fan their trials out across the worker pool
// and fold the correctness counts in trial order.
func Baselines(trials int, seed uint64) (*BaselineResult, error) {
	if trials <= 0 {
		trials = 20
	}
	g := script.Bandersnatch()
	enc := sharedEncoding(g, seed)
	root := wire.NewRNG(seed)

	res := &BaselineResult{
		IntraTitleAccuracy: map[string]float64{},
		InterTitleAccuracy: map[string]float64{},
	}

	// trialOutcome records which baselines identified the probe correctly.
	type trialOutcome struct{ bitrate, burst bool }

	// --- Intra-title task: classify which branch of a pair streamed.
	intra, err := parallel.MapN(0, trials, func(trial int) (trialOutcome, error) {
		base := uint64(trial) * 211
		pair := branchPairs[trial%len(branchPairs)]
		refA, err := segmentSample(enc, pair[0], 2, "A", root.Stream(base+1))
		if err != nil {
			return trialOutcome{}, err
		}
		refB, err := segmentSample(enc, pair[1], 2, "B", root.Stream(base+2))
		if err != nil {
			return trialOutcome{}, err
		}
		truth := "A"
		probeSeg := pair[0]
		if trial%2 == 1 {
			truth, probeSeg = "B", pair[1]
		}
		probe, err := segmentSample(enc, probeSeg, 2, "?", root.Stream(base+3))
		if err != nil {
			return trialOutcome{}, err
		}
		bc, err := baseline.NewBitrateClassifier([]baseline.Sample{refA, refB})
		if err != nil {
			return trialOutcome{}, err
		}
		bu, err := baseline.NewBurstClassifier([]baseline.Sample{refA, refB}, 1)
		if err != nil {
			return trialOutcome{}, err
		}
		return trialOutcome{
			bitrate: bc.Classify(probe) == truth,
			burst:   bu.Classify(probe) == truth,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	var intraCorrect trialCounts
	for _, o := range intra {
		intraCorrect.add(o.bitrate, o.burst)
	}
	res.IntraTitleAccuracy["bitrate"] = float64(intraCorrect.bitrate) / float64(trials)
	res.IntraTitleAccuracy["burst-knn"] = float64(intraCorrect.burst) / float64(trials)

	// --- Inter-title task: three synthetic titles with their own
	// encodings (different seeds model genuinely different content).
	titles := []string{"title-a", "title-b", "title-c"}
	encs := map[string]*media.Encoding{}
	for i, t := range titles {
		encs[t] = media.EncodeCached(g, ladderScaled(1.0+0.8*float64(i)), seed+uint64(i+1)*7919)
	}
	inter, err := parallel.MapN(0, trials, func(trial int) (trialOutcome, error) {
		base := uint64(trial)*103 + (1 << 32) // disjoint from the intra labels
		var refs []baseline.Sample
		for k, t := range titles {
			s, err := segmentSample(encs[t], "S0", 2, t, root.Stream(base+10+uint64(k)))
			if err != nil {
				return trialOutcome{}, err
			}
			refs = append(refs, s)
		}
		truth := titles[trial%len(titles)]
		probe, err := segmentSample(encs[truth], "S0", 2, "?", root.Stream(base+20))
		if err != nil {
			return trialOutcome{}, err
		}
		bc, err := baseline.NewBitrateClassifier(refs)
		if err != nil {
			return trialOutcome{}, err
		}
		bu, err := baseline.NewBurstClassifier(refs, 1)
		if err != nil {
			return trialOutcome{}, err
		}
		return trialOutcome{
			bitrate: bc.Classify(probe) == truth,
			burst:   bu.Classify(probe) == truth,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	var interCorrect trialCounts
	for _, o := range inter {
		interCorrect.add(o.bitrate, o.burst)
	}
	res.InterTitleAccuracy["bitrate"] = float64(interCorrect.bitrate) / float64(trials)
	res.InterTitleAccuracy["burst-knn"] = float64(interCorrect.burst) / float64(trials)

	var b strings.Builder
	b.WriteString("Ablation A1 (§II): inter-video baselines on intra-video tasks\n")
	rows := [][]string{}
	for _, name := range []string{"bitrate", "burst-knn"} {
		rows = append(rows, []string{
			name,
			fmt.Sprintf("%.0f%%", 100*res.IntraTitleAccuracy[name]),
			fmt.Sprintf("%.0f%%", 100*res.InterTitleAccuracy[name]),
		})
	}
	b.WriteString(stats.RenderTable(
		[]string{"baseline", "same-title branch id (chance 50%)", "distinct-title id (chance 33%)"}, rows))
	b.WriteString("\nSame-title branches share the encode ladder, so bitrate/burst\n" +
		"features collapse (the paper's motivation for an intra-video channel).\n")
	res.Report = b.String()
	return res, nil
}

// trialCounts tallies per-baseline correct trials.
type trialCounts struct{ bitrate, burst int }

func (c *trialCounts) add(bitrate, burst bool) {
	if bitrate {
		c.bitrate++
	}
	if burst {
		c.burst++
	}
}

// ladderScaled returns the default ladder with every bitrate multiplied
// by f — a crude but effective model of a different title's rate profile.
func ladderScaled(f float64) []media.Quality {
	out := make([]media.Quality, len(media.DefaultLadder))
	for i, q := range media.DefaultLadder {
		out[i] = media.Quality{Name: q.Name, Bitrate: int(float64(q.Bitrate) * f)}
	}
	return out
}
