package quicrec

import (
	"testing"
	"time"

	"repro/internal/wire"
)

var t0 = time.Unix(1735689600, 0)

func sum(dgs []Datagram) int {
	n := 0
	for _, d := range dgs {
		n += d.Size
	}
	return n
}

func TestWriteApplicationDataDefaultSizing(t *testing.T) {
	c := NewConn(Params{}, false, wire.NewRNG(1))
	w := wire.NewWriter(8 << 10)
	dgs := c.WriteApplicationData(w, t0, 2188)
	if len(dgs) != 2 {
		t.Fatalf("datagrams = %d, want 2", len(dgs))
	}
	if dgs[0].Size != DefaultMaxDatagram {
		t.Errorf("first datagram = %d, want full %d", dgs[0].Size, DefaultMaxDatagram)
	}
	overhead := c.params.PacketOverhead()
	want := 2188 + 2*overhead
	if got := sum(dgs); got != want {
		t.Errorf("burst bytes = %d, want %d", got, want)
	}
	if got := w.Len(); got != want {
		t.Errorf("wire bytes = %d, want %d (descriptors must match emitted bytes)", got, want)
	}
	for _, d := range dgs {
		if d.Long {
			t.Error("1-RTT datagram marked long")
		}
	}
	if !dgs[1].Time.After(dgs[0].Time) {
		t.Error("datagram times must be strictly increasing within a write")
	}
}

func TestWriteApplicationDataPadFull(t *testing.T) {
	c := NewConn(Params{Sizing: PadFull(1350)}, false, wire.NewRNG(1))
	w := wire.NewWriter(8 << 10)
	dgs := c.WriteApplicationData(w, t0, 2188)
	if len(dgs) != 2 {
		t.Fatalf("datagrams = %d, want 2", len(dgs))
	}
	for _, d := range dgs {
		if d.Size != 1350 {
			t.Errorf("padded datagram = %d, want 1350", d.Size)
		}
	}
	if w.Len() != 2700 {
		t.Errorf("wire bytes = %d, want 2700", w.Len())
	}
}

func TestWriteApplicationDataPadRandomAddsDummies(t *testing.T) {
	// Across many writes the dummy count must span 0..K and every
	// datagram must be full-size.
	c := NewConn(Params{Sizing: PadRandom(1350, 2)}, false, wire.NewRNG(7))
	w := wire.NewDiscardWriter()
	seen := map[int]bool{}
	for i := 0; i < 64; i++ {
		dgs := c.WriteApplicationData(w, t0, 2188)
		extra := len(dgs) - 2
		if extra < 0 || extra > 2 {
			t.Fatalf("write %d: %d datagrams", i, len(dgs))
		}
		seen[extra] = true
		for _, d := range dgs {
			if d.Size != 1350 {
				t.Fatalf("pad-random datagram = %d, want 1350", d.Size)
			}
		}
	}
	if !seen[0] || !seen[1] || !seen[2] {
		t.Errorf("dummy counts seen = %v, want all of 0..2", seen)
	}
}

func TestSizingEnvelope(t *testing.T) {
	if e := (SizingPolicy{}).Envelope(); e != 0 {
		t.Errorf("default envelope = %d", e)
	}
	if e := PadFull(1350).Envelope(); e != 0 {
		t.Errorf("pad-full envelope = %d (deterministic padding smears nothing)", e)
	}
	if e := PadRandom(1350, 2).Envelope(); e != 2700 {
		t.Errorf("pad-random envelope = %d, want 2700", e)
	}
}

func TestHandshakeTranscriptClient(t *testing.T) {
	c := NewConn(Params{}, false, wire.NewRNG(3))
	w := wire.NewWriter(4 << 10)
	dgs := c.HandshakeTranscript(w, t0, 517)
	if len(dgs) != 1 {
		t.Fatalf("client flight = %d datagrams, want 1", len(dgs))
	}
	if dgs[0].Size != MinInitialDatagram {
		t.Errorf("client Initial datagram = %d, want padded to %d", dgs[0].Size, MinInitialDatagram)
	}
	if !dgs[0].Long {
		t.Error("handshake datagram must be long-header")
	}
	if w.Len() != MinInitialDatagram {
		t.Errorf("wire bytes = %d, want %d", w.Len(), MinInitialDatagram)
	}
	b := w.Bytes()
	if !IsLongHeader(b[0]) || !Sniff(b) {
		t.Error("client Initial must sniff as long-header QUIC")
	}
	ver, dcidLen, ok := ParseLongHeader(b)
	if !ok || ver != 1 || dcidLen != defaultDCIDLen {
		t.Errorf("ParseLongHeader = (%d, %d, %v)", ver, dcidLen, ok)
	}
}

func TestHandshakeTranscriptServerCoalesces(t *testing.T) {
	c := NewConn(Params{}, true, wire.NewRNG(3))
	w := wire.NewWriter(8 << 10)
	dgs := c.HandshakeTranscript(w, t0, 3700)
	if len(dgs) < 3 {
		t.Fatalf("server flight = %d datagrams, want >= 3", len(dgs))
	}
	if dgs[0].Packets < 2 {
		t.Errorf("first server datagram coalesces %d packets, want >= 2 (Initial + Handshake)", dgs[0].Packets)
	}
	for _, d := range dgs {
		if d.Size > DefaultMaxDatagram {
			t.Errorf("datagram %d exceeds cap", d.Size)
		}
		if !d.Long {
			t.Error("server handshake datagram must be long-header")
		}
	}
	if got := sum(dgs); got != w.Len() {
		t.Errorf("descriptor sum %d != wire bytes %d", got, w.Len())
	}
}

func TestWriteAckStaysSmall(t *testing.T) {
	c := NewConn(Params{}, false, wire.NewRNG(5))
	w := wire.NewDiscardWriter()
	for i := 0; i < 32; i++ {
		d := c.WriteAck(w, t0)
		if d.Size < 40 || d.Size > 64 {
			t.Fatalf("ack datagram = %d bytes, want small", d.Size)
		}
	}
}

func TestLeanEqualsFull(t *testing.T) {
	// The same Conn operations against a discard writer must consume the
	// identical rng stream and describe identical datagrams — the lean
	// simulation invariant.
	run := func(w *wire.Writer) []Datagram {
		c := NewConn(Params{Sizing: PadRandom(1350, 2)}, true, wire.NewRNG(11))
		var out []Datagram
		out = append(out, c.HandshakeTranscript(w, t0, 3700)...)
		for i := 0; i < 8; i++ {
			out = append(out, c.WriteApplicationData(w, t0.Add(time.Duration(i)*time.Second), 2980)...)
			out = append(out, c.WriteAck(w, t0.Add(time.Duration(i)*time.Second+time.Millisecond)))
		}
		return out
	}
	full := run(wire.NewWriter(1 << 20))
	lean := run(wire.NewDiscardWriter())
	if len(full) != len(lean) {
		t.Fatalf("datagram counts differ: %d vs %d", len(full), len(lean))
	}
	for i := range full {
		if full[i] != lean[i] {
			t.Fatalf("datagram %d differs: full %+v lean %+v", i, full[i], lean[i])
		}
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() ([]Datagram, []byte) {
		c := NewConn(Params{DCIDLen: 12}, false, wire.NewRNG(99))
		w := wire.NewWriter(1 << 16)
		dgs := c.WriteApplicationData(w, t0, 4600)
		return dgs, w.Bytes()
	}
	d1, b1 := run()
	d2, b2 := run()
	if len(d1) != len(d2) {
		t.Fatal("datagram counts differ across identical runs")
	}
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("datagram %d differs", i)
		}
	}
	if string(b1) != string(b2) {
		t.Fatal("wire bytes differ across identical runs")
	}
}

func TestShortHeaderSniffs(t *testing.T) {
	c := NewConn(Params{}, false, nil)
	w := wire.NewWriter(2 << 10)
	c.WriteApplicationData(w, t0, 100)
	b := w.Bytes()
	if !Sniff(b) {
		t.Error("short-header packet must sniff as QUIC (fixed bit)")
	}
	if IsLongHeader(b[0]) {
		t.Error("1-RTT packet must not be long-header")
	}
	if Sniff([]byte{0x00, 0x01}) {
		t.Error("a DNS-looking payload must not sniff as QUIC")
	}
	if Sniff(nil) {
		t.Error("empty payload must not sniff as QUIC")
	}
}

func TestTransportString(t *testing.T) {
	if TransportTCP.String() != "tcp" || TransportQUIC.String() != "quic" {
		t.Error("transport labels")
	}
}

func TestPacketOverhead(t *testing.T) {
	if got := (Params{}).PacketOverhead(); got != 27 {
		t.Errorf("default overhead = %d, want 27", got)
	}
	if got := (Params{DCIDLen: 20}).PacketOverhead(); got != 39 {
		t.Errorf("20-byte-CID overhead = %d, want 39", got)
	}
}
