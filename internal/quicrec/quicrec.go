// Package quicrec synthesizes the QUIC datagram layer the way tlsrec
// synthesizes the TLS record layer: deterministic wire bytes whose
// *lengths and timings* carry the side channel, with the cryptography
// modeled rather than performed. A Conn writes genuine-looking QUIC
// packets — long-header Initial/Handshake packets with version and
// variable-length connection IDs, coalesced into datagrams; short-header
// 1-RTT packets whose protected payloads are opaque bytes — and returns
// one Datagram descriptor per UDP datagram emitted, the unit an on-path
// eavesdropper can see.
//
// That unit is the whole point. Under TLS the attack reads cleartext
// record headers; under QUIC every framing boundary is encrypted, so the
// only observables are datagram sizes and inter-arrival times. The
// attack side (internal/attack's burst segmenter) groups datagrams into
// bursts by inter-arrival gap and classifies burst byte totals with the
// same interval-band machinery that classified record lengths.
//
// Everything is deterministic under explicit wire.RNG streams: a Conn
// given the same rng produces identical datagrams, and a Conn writing to
// a discard Writer consumes the identical rng stream (wire.Writer.Fill
// advances the rng even when discarding), so lean simulations equal full
// ones byte-for-byte in every retained observable.
package quicrec

import (
	"fmt"
	"time"

	"repro/internal/wire"
)

// Transport selects the wire transport a simulated session speaks. The
// zero value is TCP/TLS — the paper's stack and the historical default —
// so every existing configuration keeps its meaning.
type Transport int

const (
	// TransportTCP is TLS records over TCP (the zero value).
	TransportTCP Transport = iota
	// TransportQUIC is QUIC v1 datagrams over UDP: no cleartext record
	// boundaries, HTTP/3-style framing inside opaque 1-RTT packets.
	TransportQUIC
)

// String renders the transport for labels and reports.
func (t Transport) String() string {
	if t == TransportQUIC {
		return "quic"
	}
	return "tcp"
}

// Datagram describes one UDP datagram a Conn emitted: the observable
// unit of a QUIC conversation. Size is the full UDP payload length
// (QUIC packet bytes, coalesced packets included); Packets counts the
// QUIC packets coalesced inside; Long marks datagrams that begin with a
// long-header packet (handshake flights, visible as such on the wire).
type Datagram struct {
	Size    int
	Packets int
	Long    bool
	Time    time.Time
	// Offset is the datagram's byte offset in the direction's stream of
	// datagram payloads (set by the caller that owns the stream writer).
	Offset int64
}

// SizingMode enumerates the datagram-sizing policies a sender can apply
// to 1-RTT traffic — the QUIC analogue of tlsrec's record padding.
type SizingMode int

const (
	// SizeDefault packs application data into datagrams up to the
	// default max size, the final datagram sized to its content.
	SizeDefault SizingMode = iota
	// SizeFixed is SizeDefault with a non-default max datagram size.
	SizeFixed
	// SizePadFull pads every 1-RTT datagram to the max size, so the
	// only signal left is the datagram *count* per burst.
	SizePadFull
	// SizePadRandom pads every datagram full and appends a seeded
	// uniform 0..K extra full-size dummy datagrams per write, smearing
	// the burst byte total across K+1 count buckets.
	SizePadRandom
)

// SizingPolicy is a 1-RTT datagram sizing policy: the mode plus its
// parameters. The zero value is the default policy.
type SizingPolicy struct {
	Mode SizingMode
	// N is the max datagram size (0 = DefaultMaxDatagram).
	N int
	// K is SizePadRandom's dummy-datagram bound.
	K int
}

// Fixed returns the policy that caps datagrams at n bytes.
func Fixed(n int) SizingPolicy { return SizingPolicy{Mode: SizeFixed, N: n} }

// PadFull returns the policy that pads every 1-RTT datagram to n bytes.
func PadFull(n int) SizingPolicy { return SizingPolicy{Mode: SizePadFull, N: n} }

// PadRandom returns the policy that pads datagrams to n bytes and
// appends a seeded uniform 0..k extra dummy datagrams per write.
func PadRandom(n, k int) SizingPolicy { return SizingPolicy{Mode: SizePadRandom, N: n, K: k} }

// DefaultMaxDatagram is the default QUIC max datagram size: a common
// post-handshake PMTU-probed value on 1500-MTU paths.
const DefaultMaxDatagram = 1350

// MinInitialDatagram is RFC 9000's minimum size for datagrams carrying
// Initial packets; clients pad their first flight up to it.
const MinInitialDatagram = 1200

// MaxDatagram returns the policy's datagram size cap.
func (p SizingPolicy) MaxDatagram() int {
	if p.N > 0 {
		return p.N
	}
	return DefaultMaxDatagram
}

// Envelope returns the maximum number of bytes the policy can add to a
// write's burst beyond the tightest packing — the amount an interval-band
// trainer must widen its learned bands by, exactly as
// tlsrec.PaddingPolicy.Envelope does for record padding. Deterministic
// padding (SizePadFull) adds the same bytes to every instance of a given
// write size, so its envelope is zero; only the random dummy datagrams
// of SizePadRandom smear a class across a range.
func (p SizingPolicy) Envelope() int {
	if p.Mode == SizePadRandom {
		return p.K * p.MaxDatagram()
	}
	return 0
}

// Label renders the policy for experiment tables.
func (p SizingPolicy) Label() string {
	switch p.Mode {
	case SizeFixed:
		return fmt.Sprintf("fixed-%d", p.MaxDatagram())
	case SizePadFull:
		return fmt.Sprintf("pad-full-%d", p.MaxDatagram())
	case SizePadRandom:
		return fmt.Sprintf("pad-random-%d+%d", p.MaxDatagram(), p.K)
	default:
		return fmt.Sprintf("default-%d", p.MaxDatagram())
	}
}

// ParseSizing is Label's inverse: it parses a sizing policy spelled the
// way the experiment tables render it — "default", "fixed-1200",
// "pad-full-1350", "pad-random-1350+2" — so CLI flags and reports share
// one vocabulary. The size suffix is optional on "default".
func ParseSizing(s string) (SizingPolicy, error) {
	if s == "" || s == "default" {
		return SizingPolicy{}, nil
	}
	var n, k int
	switch {
	case matchSizing(s, "default-%d", &n):
		return SizingPolicy{N: n}, nil
	case matchSizing(s, "fixed-%d", &n):
		return Fixed(n), nil
	case matchSizing(s, "pad-full-%d", &n):
		return PadFull(n), nil
	case matchSizing(s, "pad-random-%d+%d", &n, &k):
		return PadRandom(n, k), nil
	}
	return SizingPolicy{}, fmt.Errorf("quicrec: unknown sizing policy %q (want default | fixed-N | pad-full-N | pad-random-N+K)", s)
}

// matchSizing reports whether s parses fully under the Sscanf format.
func matchSizing(s, format string, args ...any) bool {
	var rest string
	n, err := fmt.Sscanf(s+"\x00", format+"%s", append(args, &rest)...)
	return err == nil && n == len(args)+1 && rest == "\x00"
}

// ResolveTransportFlags maps the transport CLI flags the cmds share
// (-quic, -sizing) to a transport and datagram sizing policy, enforcing
// the cross-flag rule in one place: a sizing policy requires the QUIC
// transport (TCP sessions shape traffic with record padding instead).
func ResolveTransportFlags(quic bool, sizing string) (Transport, SizingPolicy, error) {
	pol, err := ParseSizing(sizing)
	if err != nil {
		return 0, pol, err
	}
	if !quic {
		if pol != (SizingPolicy{}) {
			return 0, pol, fmt.Errorf("quicrec: -sizing requires -quic (TCP sessions pad records, not datagrams)")
		}
		return TransportTCP, SizingPolicy{}, nil
	}
	return TransportQUIC, pol, nil
}

// Params configures a Conn.
type Params struct {
	// DCIDLen is the destination connection ID length carried in this
	// direction's short headers (0 = the default 8; QUIC allows 0..20,
	// and the length is invisible in short headers — the receiver knows
	// it, the eavesdropper guesses).
	DCIDLen int
	// Sizing is the 1-RTT datagram sizing policy.
	Sizing SizingPolicy
	// Spacing is the serialization gap between consecutive datagrams of
	// one write (0 = the default 500µs — far inside any burst gap).
	Spacing time.Duration
}

const defaultDCIDLen = 8

func (p Params) withDefaults() Params {
	if p.DCIDLen <= 0 {
		p.DCIDLen = defaultDCIDLen
	}
	if p.DCIDLen > 20 {
		p.DCIDLen = 20
	}
	if p.Spacing <= 0 {
		p.Spacing = 500 * time.Microsecond
	}
	return p
}

// shortOverhead is the per-packet overhead of a 1-RTT short-header
// packet beyond the DCID: flags byte, 2-byte packet number, 16-byte
// AEAD tag.
const shortOverhead = 1 + 2 + 16

// PacketOverhead returns the bytes a single 1-RTT packet adds around its
// plaintext under these params — the QUIC analogue of a cipher suite's
// CiphertextLen arithmetic.
func (p Params) PacketOverhead() int {
	return shortOverhead + p.withDefaults().DCIDLen
}

// Conn is one direction of a QUIC connection: it seals that direction's
// packets into a wire.Writer and describes every datagram it emits. The
// mirror of tlsrec.Encryptor.
type Conn struct {
	params Params
	server bool
	rng    *wire.RNG
	dcid   []byte
	scid   []byte
	pn     uint64
}

// NewConn returns a directional QUIC sealer. rng seeds the connection
// IDs, the opaque protected payloads and any randomized sizing policy; a
// nil rng zero-fills all of them (fine for callers that only consume
// lengths and timings).
func NewConn(p Params, server bool, rng *wire.RNG) *Conn {
	p = p.withDefaults()
	c := &Conn{params: p, server: server, rng: rng}
	c.dcid = make([]byte, p.DCIDLen)
	c.scid = make([]byte, p.DCIDLen)
	if rng != nil {
		fillBytes(c.dcid, rng)
		fillBytes(c.scid, rng)
	}
	return c
}

func fillBytes(b []byte, rng *wire.RNG) {
	for i := range b {
		b[i] = byte(rng.Uint64())
	}
}

// fill writes n opaque protected-payload bytes.
func (c *Conn) fill(w *wire.Writer, n int) {
	if c.rng != nil {
		w.Fill(n, c.rng)
	} else {
		w.Zero(n)
	}
}

// varint16 appends a QUIC 2-byte variable-length integer (values up to
// 16383 — every length this package emits fits).
func varint16(w *wire.Writer, v int) {
	w.U16(uint16(v) | 0x4000)
}

// Long-header packet types (RFC 9000 §17.2), pre-shifted into the first
// byte: fixed bit set, long form.
const (
	longInitial   = 0xc0
	longHandshake = 0xe0
)

// appendLong writes one long-header packet carrying payloadLen protected
// bytes and returns the packet's total size.
func (c *Conn) appendLong(w *wire.Writer, typeByte byte, payloadLen int) int {
	start := w.Len()
	w.U8(typeByte | 0x01) // 2-byte packet number length
	w.U32(1)              // QUIC v1
	w.U8(uint8(len(c.dcid)))
	w.Write(c.dcid)
	w.U8(uint8(len(c.scid)))
	w.Write(c.scid)
	if typeByte == longInitial {
		w.U8(0) // empty token
	}
	varint16(w, payloadLen+2) // length covers packet number + payload
	w.U16(uint16(c.pn))
	c.pn++
	c.fill(w, payloadLen)
	return w.Len() - start
}

// appendShort writes one 1-RTT short-header packet whose total size is
// exactly pktLen (header + protected payload + tag) and stamps it into
// the datagram descriptor.
func (c *Conn) appendShort(w *wire.Writer, pktLen int) {
	w.U8(0x40 | 0x01) // short form, fixed bit, 2-byte packet number
	w.Write(c.dcid)
	w.U16(uint16(c.pn))
	c.pn++
	// Everything after the packet number — protected payload and AEAD
	// tag alike — is opaque bytes to the eavesdropper.
	c.fill(w, pktLen-3-len(c.dcid))
}

// longOverhead is a long-header packet's framing cost beyond its
// protected payload: flags + version + two CID length bytes + both CIDs
// + token length (Initial only) + 2-byte length + 2-byte packet number.
func (c *Conn) longOverhead(typeByte byte) int {
	n := 1 + 4 + 1 + len(c.dcid) + 1 + len(c.scid) + 2 + 2
	if typeByte == longInitial {
		n++
	}
	return n
}

// HandshakeTranscript writes the direction's handshake flight:
// transcriptLen bytes of CRYPTO payload sealed into long-header packets,
// coalesced into datagrams up to the sizing cap (the server's small
// Initial shares its datagram with the first Handshake packet, the shape
// real QUIC stacks emit). The client's Initial datagram is padded up to
// MinInitialDatagram as RFC 9000 requires. The returned datagrams carry
// Long=true — the handshake is the one phase an eavesdropper can still
// recognize structurally.
func (c *Conn) HandshakeTranscript(w *wire.Writer, ts time.Time, transcriptLen int) []Datagram {
	maxDG := c.params.Sizing.MaxDatagram()
	var out []Datagram
	cur := Datagram{Long: true}
	flush := func() {
		if cur.Packets > 0 {
			cur.Time = ts.Add(time.Duration(len(out)) * c.params.Spacing)
			out = append(out, cur)
			cur = Datagram{Long: true}
		}
	}
	typeByte := byte(longInitial)
	for remaining := transcriptLen; remaining > 0; {
		chunk := remaining
		// The server Initial carries only the ACK and the ServerHello
		// head; the bulk of the flight rides in Handshake packets
		// coalesced behind it.
		if typeByte == longInitial && c.server && chunk > 160 {
			chunk = 160
		}
		if room := maxDG - cur.Size - c.longOverhead(typeByte) - 16; chunk > room {
			if room < 64 && cur.Packets > 0 {
				// Not worth splitting a sliver into this datagram.
				flush()
				continue
			}
			if room < 1 {
				room = 1 // degenerate cap: emit minimal packets
			}
			chunk = room
		}
		remaining -= chunk
		cur.Size += c.appendLong(w, typeByte, chunk+16)
		cur.Packets++
		typeByte = longHandshake
	}
	if !c.server && len(out) == 0 && cur.Packets > 0 && cur.Size < MinInitialDatagram {
		// PADDING frames bring the client's first flight to 1200 bytes.
		w.Zero(MinInitialDatagram - cur.Size)
		cur.Size = MinInitialDatagram
	}
	flush()
	return out
}

// WriteApplicationData seals plainLen bytes of 1-RTT application data
// under the sizing policy and returns one descriptor per datagram
// emitted — the write's burst, in capture terms. Dummy datagrams added
// by SizePadRandom are included: the eavesdropper cannot tell them from
// data.
func (c *Conn) WriteApplicationData(w *wire.Writer, ts time.Time, plainLen int) []Datagram {
	p := c.params
	maxDG := p.Sizing.MaxDatagram()
	capacity := maxDG - shortOverhead - len(c.dcid)
	if capacity < 1 {
		capacity = 1
	}
	padFull := p.Sizing.Mode == SizePadFull || p.Sizing.Mode == SizePadRandom
	var out []Datagram
	emit := func(chunk int) {
		pktLen := chunk + shortOverhead + len(c.dcid)
		if padFull {
			pktLen = maxDG
		}
		c.appendShort(w, pktLen)
		out = append(out, Datagram{
			Size: pktLen, Packets: 1,
			Time: ts.Add(time.Duration(len(out)) * p.Spacing),
		})
	}
	for remaining := plainLen; remaining > 0; {
		chunk := remaining
		if chunk > capacity {
			chunk = capacity
		}
		remaining -= chunk
		emit(chunk)
	}
	if plainLen <= 0 {
		emit(0)
	}
	if p.Sizing.Mode == SizePadRandom && c.rng != nil && p.Sizing.K > 0 {
		for extra := c.rng.IntRange(0, p.Sizing.K); extra > 0; extra-- {
			emit(capacity)
		}
	}
	return out
}

// WriteAck seals a small 1-RTT packet carrying only an ACK frame — the
// chatter half of a QUIC conversation. Ack datagrams sit far below any
// application write and carry no choice signal; the attack's burst
// segmenter filters them by size.
func (c *Conn) WriteAck(w *wire.Writer, ts time.Time) Datagram {
	ackFrame := 17
	if c.rng != nil {
		ackFrame += c.rng.IntRange(0, 6) // ack-range count varies
	}
	pktLen := ackFrame + shortOverhead + len(c.dcid)
	c.appendShort(w, pktLen)
	return Datagram{Size: pktLen, Packets: 1, Time: ts}
}

// Sniff reports whether a UDP payload plausibly begins a QUIC v1 packet:
// the fixed bit (0x40) must be set in the first byte. The monitor uses
// it to deaden non-QUIC UDP flows on their first datagram.
func Sniff(payload []byte) bool {
	return len(payload) > 0 && payload[0]&0x40 != 0
}

// IsLongHeader reports whether a QUIC packet byte begins a long-header
// packet — the handshake-phase framing that is still structurally
// visible on the wire, version and connection IDs included.
func IsLongHeader(b byte) bool { return b&0x80 != 0 }

// ParseLongHeader extracts the cleartext fields of a long-header packet:
// QUIC version and destination connection ID length. Returns ok=false on
// anything too short or not long-form.
func ParseLongHeader(payload []byte) (version uint32, dcidLen int, ok bool) {
	if len(payload) < 6 || !IsLongHeader(payload[0]) {
		return 0, 0, false
	}
	r := wire.NewReader(payload[1:])
	version = r.U32()
	dcidLen = int(r.U8())
	if r.Err() != nil || dcidLen > 20 {
		return 0, 0, false
	}
	return version, dcidLen, true
}
