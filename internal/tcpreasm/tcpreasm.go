// Package tcpreasm reassembles TCP byte streams from captured segments.
//
// The White Mirror attack operates on TLS records, which span TCP segment
// boundaries; the analyzer therefore needs per-direction, in-order byte
// streams with the arrival time of each contributing segment preserved so
// record timestamps can be recovered. The reassembler handles out-of-order
// arrival, duplicate segments, overlapping retransmissions (first-copy
// wins, matching common capture semantics) and sequence-number wraparound.
package tcpreasm

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/layers"
)

// Chunk is a contiguous run of in-order stream bytes together with the
// capture timestamp of the segment that first delivered its initial byte.
type Chunk struct {
	Time time.Time
	Data []byte
	// StreamOffset is the byte offset of Data[0] from the start of the
	// application stream (the byte after SYN).
	StreamOffset int64
}

// Stream is one direction of a TCP conversation.
type Stream struct {
	Key layers.FlowKey

	noCopy   bool // payloads are stable: buffer them without copying
	synSeen  bool
	isn      uint32 // initial sequence number (of SYN)
	nextRel  int64  // next expected relative offset (bytes delivered)
	chunks   []Chunk
	pending  map[int64]pendingSeg // keyed by relative offset
	finSeen  bool
	finRel   int64
	bytesIn  int64 // total payload bytes accepted (including dups trimmed away)
	segCount int
}

type pendingSeg struct {
	time time.Time
	data []byte
}

// Chunks returns the in-order chunks delivered so far.
func (s *Stream) Chunks() []Chunk { return s.chunks }

// DeliveredChunks returns the chunks delivered at or after index since —
// the incremental form of Chunks. A streaming consumer remembers how many
// chunks it has processed and asks for the delta after each packet, so
// per-flow analysis (e.g. a TLS record scanner) advances in lock-step
// with reassembly instead of rescanning from the start of the stream.
func (s *Stream) DeliveredChunks(since int) []Chunk {
	if since >= len(s.chunks) {
		return nil
	}
	return s.chunks[since:]
}

// Bytes concatenates the delivered stream.
func (s *Stream) Bytes() []byte {
	var n int
	for _, c := range s.chunks {
		n += len(c.Data)
	}
	out := make([]byte, 0, n)
	for _, c := range s.chunks {
		out = append(out, c.Data...)
	}
	return out
}

// Len returns the number of contiguous bytes delivered.
func (s *Stream) Len() int64 { return s.nextRel }

// Complete reports whether a FIN was seen and every byte up to it has
// been delivered.
func (s *Stream) Complete() bool { return s.finSeen && s.nextRel >= s.finRel }

// Gaps reports the number of byte ranges still missing before the highest
// buffered segment, useful for diagnosing lossy captures.
func (s *Stream) Gaps() int { return len(s.pending) }

// Segments returns the count of payload-bearing segments fed to the stream.
func (s *Stream) Segments() int { return s.segCount }

// relOffset converts an absolute sequence number to a relative stream
// offset, tolerating 32-bit wraparound by choosing the representative
// nearest to the current delivery point.
func (s *Stream) relOffset(seq uint32) int64 {
	diff := int64(int32(seq - s.isn - 1)) // -1: SYN consumes one seq number
	// Unwrap: pick diff + k*2^32 closest to nextRel.
	const span = int64(1) << 32
	base := diff
	for base < s.nextRel-span/2 {
		base += span
	}
	return base
}

// addSegment ingests one segment's payload.
func (s *Stream) addSegment(ts time.Time, tcp layers.TCP, payload []byte) {
	if tcp.Flags&layers.TCPSyn != 0 && !s.synSeen {
		s.synSeen = true
		s.isn = tcp.Seq
		if s.pending == nil {
			s.pending = make(map[int64]pendingSeg)
		}
		return
	}
	if !s.synSeen {
		// Mid-stream capture: adopt the first segment's sequence number as
		// the stream origin so analysis still works without the handshake.
		s.synSeen = true
		s.isn = tcp.Seq - 1
		if s.pending == nil {
			s.pending = make(map[int64]pendingSeg)
		}
	}
	if tcp.Flags&layers.TCPFin != 0 {
		rel := s.relOffset(tcp.Seq) + int64(len(payload))
		if !s.finSeen || rel < s.finRel {
			s.finSeen, s.finRel = true, rel
		}
	}
	if len(payload) == 0 {
		return
	}
	s.segCount++
	s.bytesIn += int64(len(payload))

	rel := s.relOffset(tcp.Seq)
	end := rel + int64(len(payload))
	if end <= s.nextRel {
		return // pure retransmission of delivered data
	}
	if rel < s.nextRel {
		// Partial overlap with delivered data: keep only the new tail.
		payload = payload[s.nextRel-rel:]
		rel = s.nextRel
	}
	if existing, ok := s.pending[rel]; ok && int64(len(existing.data)) >= int64(len(payload)) {
		return // duplicate of a buffered segment
	}
	if !s.noCopy {
		payload = append([]byte(nil), payload...)
	}
	s.pending[rel] = pendingSeg{time: ts, data: payload}
	s.drain()
}

// drain moves every now-contiguous pending segment into the chunk list.
func (s *Stream) drain() {
	for {
		seg, ok := s.pending[s.nextRel]
		if !ok {
			// A buffered segment may start before nextRel if a retransmit
			// filled a gap with overlap; find any segment covering nextRel.
			found := false
			for off, p := range s.pending {
				if off < s.nextRel && off+int64(len(p.data)) > s.nextRel {
					trimmed := p.data[s.nextRel-off:]
					delete(s.pending, off)
					s.pending[s.nextRel] = pendingSeg{time: p.time, data: trimmed}
					found = true
					break
				}
			}
			if !found {
				return
			}
			continue
		}
		delete(s.pending, s.nextRel)
		s.chunks = append(s.chunks, Chunk{
			Time: seg.time, Data: seg.data, StreamOffset: s.nextRel,
		})
		s.nextRel += int64(len(seg.data))
		// Drop any buffered segments now wholly superseded.
		for off, p := range s.pending {
			if off+int64(len(p.data)) <= s.nextRel {
				delete(s.pending, off)
			}
		}
	}
}

// Assembler demultiplexes packets into per-direction streams.
type Assembler struct {
	streams map[layers.FlowKey]*Stream
	order   []layers.FlowKey // creation order, for deterministic iteration
	noCopy  bool
}

// NewAssembler returns an empty assembler.
func NewAssembler() *Assembler {
	return &Assembler{streams: make(map[layers.FlowKey]*Stream)}
}

// SetStablePayloads declares that every payload fed from now on aliases
// memory that outlives the assembler (an arena-backed pcap read, a
// grow-only feed buffer), so reassembly may take ownership of the decoded
// payload slices instead of copying each into its buffer — the zero-copy
// contract the attack's read path relies on. Affects streams created
// after the call.
func (a *Assembler) SetStablePayloads(stable bool) { a.noCopy = stable }

// Feed routes one decoded packet to its directional stream, creating the
// stream on first sight, and returns the stream the packet landed in so
// incremental consumers can follow up on exactly the flow that changed.
func (a *Assembler) Feed(p *layers.Packet) *Stream {
	key := p.Flow()
	st, ok := a.streams[key]
	if !ok {
		st = &Stream{Key: key, noCopy: a.noCopy, pending: make(map[int64]pendingSeg)}
		a.streams[key] = st
		a.order = append(a.order, key)
	}
	st.addSegment(p.Timestamp, p.TCP, p.Payload)
	return st
}

// Stream returns the stream for a directional key, or nil.
func (a *Assembler) Stream(key layers.FlowKey) *Stream {
	return a.streams[key]
}

// Streams returns all streams in first-seen order.
func (a *Assembler) Streams() []*Stream {
	out := make([]*Stream, 0, len(a.order))
	for _, k := range a.order {
		out = append(out, a.streams[k])
	}
	return out
}

// Conversations pairs up directional streams that belong to the same TCP
// conversation, client side first. The client is taken to be the endpoint
// with the higher port number when one side uses a well-known port (<1024),
// otherwise the direction seen first.
type Conversation struct {
	ClientToServer *Stream
	ServerToClient *Stream
}

// Conversations returns every paired conversation, sorted by the client
// endpoint for determinism. One-sided captures yield a conversation with a
// nil reverse stream.
func (a *Assembler) Conversations() []Conversation {
	seen := make(map[layers.FlowKey]bool)
	var convs []Conversation
	for _, k := range a.order {
		if seen[k] {
			continue
		}
		seen[k] = true
		fwd := a.streams[k]
		var rev *Stream
		if r, ok := a.streams[k.Reverse()]; ok {
			rev = r
			seen[k.Reverse()] = true
		}
		c := orient(fwd, rev)
		convs = append(convs, c)
	}
	sort.Slice(convs, func(i, j int) bool {
		return convKey(convs[i]) < convKey(convs[j])
	})
	return convs
}

func convKey(c Conversation) string {
	if c.ClientToServer != nil {
		return c.ClientToServer.Key.String()
	}
	return fmt.Sprintf("~%s", c.ServerToClient.Key)
}

// orient decides which stream is client→server.
func orient(fwd, rev *Stream) Conversation {
	clientFirst := true
	if fwd.Key.DstPort < 1024 && fwd.Key.SrcPort >= 1024 {
		clientFirst = true
	} else if fwd.Key.SrcPort < 1024 && fwd.Key.DstPort >= 1024 {
		clientFirst = false
	}
	if clientFirst {
		return Conversation{ClientToServer: fwd, ServerToClient: rev}
	}
	return Conversation{ClientToServer: rev, ServerToClient: fwd}
}
