// Package tcpreasm reassembles TCP byte streams from captured segments.
//
// The White Mirror attack operates on TLS records, which span TCP segment
// boundaries; the analyzer therefore needs per-direction, in-order byte
// streams with the arrival time of each contributing segment preserved so
// record timestamps can be recovered. The reassembler handles out-of-order
// arrival, duplicate segments, overlapping retransmissions (first-copy
// wins, matching common capture semantics) and sequence-number wraparound.
package tcpreasm

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/layers"
)

// Chunk is a contiguous run of in-order stream bytes together with the
// capture timestamp of the segment that first delivered its initial byte.
type Chunk struct {
	Time time.Time
	Data []byte
	// StreamOffset is the byte offset of Data[0] from the start of the
	// application stream (the byte after SYN).
	StreamOffset int64
}

// Stream is one direction of a TCP conversation.
type Stream struct {
	Key layers.FlowKey

	noCopy   bool // payloads are stable: buffer them without copying
	discard  bool // rolling-window eviction: count bytes, buffer nothing
	synSeen  bool
	isn      uint32 // initial sequence number (of SYN)
	nextRel  int64  // next expected relative offset (bytes delivered)
	chunks   []Chunk
	released int                  // chunks dropped from the front by ReleaseThrough
	pending  map[int64]pendingSeg // keyed by relative offset
	finSeen  bool
	finRel   int64
	rstSeen  bool
	bytesIn  int64 // total payload bytes accepted (including dups trimmed away)
	segCount int
	unref    func([]byte) // optional: called for every payload span dropped
}

type pendingSeg struct {
	time time.Time
	data []byte
}

// drop hands a payload span the stream permanently stops referencing to
// the release callback, if any (the zero-copy live path recycles frame
// memory through it).
func (s *Stream) drop(b []byte) {
	if s.unref != nil && len(b) > 0 {
		s.unref(b)
	}
}

// Chunks returns the in-order chunks delivered and not yet released.
func (s *Stream) Chunks() []Chunk { return s.chunks }

// DeliveredChunks returns the chunks delivered at or after index since —
// the incremental form of Chunks. A streaming consumer remembers how many
// chunks it has processed and asks for the delta after each packet, so
// per-flow analysis (e.g. a TLS record scanner) advances in lock-step
// with reassembly instead of rescanning from the start of the stream.
// The index is absolute over the stream's lifetime: chunks dropped by
// ReleaseThrough still count, and asking for an index inside the released
// prefix returns from the first retained chunk.
func (s *Stream) DeliveredChunks(since int) []Chunk {
	since -= s.released
	if since >= len(s.chunks) {
		return nil
	}
	if since < 0 {
		since = 0
	}
	return s.chunks[since:]
}

// ReleaseThrough drops every delivered chunk with absolute index < n,
// handing their payload spans to the release callback. It is the
// rolling-window consumer's half of the DeliveredChunks cursor contract:
// once a chunk has been scanned, releasing it lets the memory behind it
// (the feed buffer, a caller-owned packet ring) be reclaimed, so a
// monitor can run indefinitely without retaining the whole stream.
// Releasing past the delivered count is clamped.
func (s *Stream) ReleaseThrough(n int) {
	k := n - s.released
	if k <= 0 {
		return
	}
	if k > len(s.chunks) {
		k = len(s.chunks)
	}
	for i := 0; i < k; i++ {
		s.drop(s.chunks[i].Data)
	}
	rest := copy(s.chunks, s.chunks[k:])
	// Zero the tail so the backing array stops pinning payload memory.
	for i := rest; i < len(s.chunks); i++ {
		s.chunks[i] = Chunk{}
	}
	s.chunks = s.chunks[:rest]
	s.released += k
}

// Released returns the number of chunks dropped by ReleaseThrough.
func (s *Stream) Released() int { return s.released }

// Discard evicts the stream: every buffered chunk and pending segment is
// released now, and future payloads are counted but never buffered (the
// delivery cursor jumps over them, so Len stays meaningful and FIN/RST
// completion still tracks). A rolling-window monitor uses it for flows
// that can never be attacked — non-TLS conversations, rejected noise —
// so their reassembly state stops growing.
func (s *Stream) Discard() {
	if s.discard {
		return
	}
	s.discard = true
	s.ReleaseThrough(s.released + len(s.chunks))
	for off, p := range s.pending {
		s.drop(p.data)
		delete(s.pending, off)
	}
}

// Bytes concatenates the retained (unreleased) delivered stream.
func (s *Stream) Bytes() []byte {
	var n int
	for _, c := range s.chunks {
		n += len(c.Data)
	}
	out := make([]byte, 0, n)
	for _, c := range s.chunks {
		out = append(out, c.Data...)
	}
	return out
}

// Len returns the number of contiguous bytes delivered.
func (s *Stream) Len() int64 { return s.nextRel }

// BufferedBytes returns the payload bytes the stream currently retains:
// unreleased delivered chunks plus out-of-order pending segments. It is
// the figure a rolling-window monitor's memory accounting sums per flow.
func (s *Stream) BufferedBytes() int64 {
	var n int64
	for _, c := range s.chunks {
		n += int64(len(c.Data))
	}
	for _, p := range s.pending {
		n += int64(len(p.data))
	}
	return n
}

// Complete reports whether a FIN was seen and every byte up to it has
// been delivered.
func (s *Stream) Complete() bool { return s.finSeen && s.nextRel >= s.finRel }

// Aborted reports whether an RST was seen; the conversation is dead from
// that point and a streaming consumer finalizes the flow immediately.
func (s *Stream) Aborted() bool { return s.rstSeen }

// Gaps reports the number of byte ranges still missing before the highest
// buffered segment, useful for diagnosing lossy captures.
func (s *Stream) Gaps() int { return len(s.pending) }

// Segments returns the count of payload-bearing segments fed to the stream.
func (s *Stream) Segments() int { return s.segCount }

// relOffset converts an absolute sequence number to a relative stream
// offset, tolerating 32-bit wraparound by choosing the representative
// nearest to the current delivery point.
func (s *Stream) relOffset(seq uint32) int64 {
	diff := int64(int32(seq - s.isn - 1)) // -1: SYN consumes one seq number
	// Unwrap: pick diff + k*2^32 closest to nextRel.
	const span = int64(1) << 32
	base := diff
	for base < s.nextRel-span/2 {
		base += span
	}
	return base
}

// addSegment ingests one segment's payload.
func (s *Stream) addSegment(ts time.Time, tcp layers.TCP, payload []byte) {
	if tcp.Flags&layers.TCPSyn != 0 && !s.synSeen {
		s.synSeen = true
		s.isn = tcp.Seq
		if s.pending == nil {
			s.pending = make(map[int64]pendingSeg)
		}
		s.drop(payload) // TFO-style SYN data is not reassembled
		return
	}
	if !s.synSeen {
		// Mid-stream capture: adopt the first segment's sequence number as
		// the stream origin so analysis still works without the handshake.
		s.synSeen = true
		s.isn = tcp.Seq - 1
		if s.pending == nil {
			s.pending = make(map[int64]pendingSeg)
		}
	}
	if tcp.Flags&layers.TCPFin != 0 {
		rel := s.relOffset(tcp.Seq) + int64(len(payload))
		if !s.finSeen || rel < s.finRel {
			s.finSeen, s.finRel = true, rel
		}
	}
	if tcp.Flags&layers.TCPRst != 0 {
		s.rstSeen = true
	}
	if len(payload) == 0 {
		return
	}
	s.segCount++
	s.bytesIn += int64(len(payload))

	rel := s.relOffset(tcp.Seq)
	end := rel + int64(len(payload))
	if s.discard {
		// Evicted stream: advance the delivery cursor past the data (gaps
		// are of no consequence once nothing downstream reads bytes) and
		// hand the payload straight back.
		if end > s.nextRel {
			s.nextRel = end
		}
		s.drop(payload)
		return
	}
	if end <= s.nextRel {
		s.drop(payload)
		return // pure retransmission of delivered data
	}
	if rel < s.nextRel {
		// Partial overlap with delivered data: keep only the new tail.
		s.drop(payload[:s.nextRel-rel])
		payload = payload[s.nextRel-rel:]
		rel = s.nextRel
	}
	if existing, ok := s.pending[rel]; ok {
		if int64(len(existing.data)) >= int64(len(payload)) {
			s.drop(payload)
			return // duplicate of a buffered segment
		}
		s.drop(existing.data) // superseded by the longer arrival
	}
	if !s.noCopy {
		payload = append([]byte(nil), payload...)
	}
	s.pending[rel] = pendingSeg{time: ts, data: payload}
	s.drain()
}

// drain moves every now-contiguous pending segment into the chunk list.
func (s *Stream) drain() {
	for {
		seg, ok := s.pending[s.nextRel]
		if !ok {
			// A buffered segment may start before nextRel if a retransmit
			// filled a gap with overlap; find any segment covering nextRel.
			found := false
			for off, p := range s.pending {
				if off < s.nextRel && off+int64(len(p.data)) > s.nextRel {
					s.drop(p.data[:s.nextRel-off])
					trimmed := p.data[s.nextRel-off:]
					delete(s.pending, off)
					s.pending[s.nextRel] = pendingSeg{time: p.time, data: trimmed}
					found = true
					break
				}
			}
			if !found {
				return
			}
			continue
		}
		delete(s.pending, s.nextRel)
		s.chunks = append(s.chunks, Chunk{
			Time: seg.time, Data: seg.data, StreamOffset: s.nextRel,
		})
		s.nextRel += int64(len(seg.data))
		// Drop any buffered segments now wholly superseded.
		for off, p := range s.pending {
			if off+int64(len(p.data)) <= s.nextRel {
				s.drop(p.data)
				delete(s.pending, off)
			}
		}
	}
}

// Assembler demultiplexes packets into per-direction streams.
type Assembler struct {
	streams map[layers.FlowKey]*Stream
	order   []layers.FlowKey // creation order, for deterministic iteration
	dropped int              // streams removed since the last order compaction
	noCopy  bool
	unref   func([]byte)
}

// NewAssembler returns an empty assembler.
func NewAssembler() *Assembler {
	return &Assembler{streams: make(map[layers.FlowKey]*Stream)}
}

// SetStablePayloads declares that every payload fed from now on aliases
// memory that outlives the assembler (an arena-backed pcap read, a
// grow-only feed buffer), so reassembly may take ownership of the decoded
// payload slices instead of copying each into its buffer — the zero-copy
// contract the attack's read path relies on. Affects streams created
// after the call.
func (a *Assembler) SetStablePayloads(stable bool) { a.noCopy = stable }

// SetReleaseFunc installs a callback that receives every payload span the
// assembler permanently stops referencing: duplicate and overlapping
// retransmissions, chunks dropped by Stream.ReleaseThrough, and buffers
// evicted by Stream.Discard or Drop. A caller feeding frames from its own
// ring (pcapio.PacketRing) recycles slots through it; spans from other
// memory may be passed too — the ring ignores what it does not own. Only
// meaningful with stable payloads, and affects streams created after the
// call.
func (a *Assembler) SetReleaseFunc(f func([]byte)) { a.unref = f }

// Feed routes one decoded packet to its directional stream, creating the
// stream on first sight, and returns the stream the packet landed in so
// incremental consumers can follow up on exactly the flow that changed.
func (a *Assembler) Feed(p *layers.Packet) *Stream {
	key := p.Flow()
	st, ok := a.streams[key]
	if !ok {
		st = &Stream{Key: key, noCopy: a.noCopy, unref: a.unref,
			pending: make(map[int64]pendingSeg)}
		a.streams[key] = st
		a.order = append(a.order, key)
	}
	st.addSegment(p.Timestamp, p.TCP, p.Payload)
	return st
}

// Stream returns the stream for a directional key, or nil.
func (a *Assembler) Stream(key layers.FlowKey) *Stream {
	return a.streams[key]
}

// Drop releases a directional stream's buffers and removes it from the
// assembler. A rolling-window monitor calls it when a flow finalizes
// (FIN/RST/idle) so the demultiplexer's footprint tracks the set of live
// conversations, not every conversation ever seen. A later packet on the
// same key starts a fresh stream (mid-stream adoption), which is exactly
// how port reuse on a long-lived tap should behave.
func (a *Assembler) Drop(key layers.FlowKey) {
	st, ok := a.streams[key]
	if !ok {
		return
	}
	st.Discard()
	delete(a.streams, key)
	a.dropped++
	if a.dropped > 64 && a.dropped*2 > len(a.order) {
		a.compactOrder()
	}
}

// compactOrder rebuilds the first-seen order without dropped keys.
func (a *Assembler) compactOrder() {
	kept := a.order[:0]
	for _, k := range a.order {
		if _, ok := a.streams[k]; ok {
			kept = append(kept, k)
		}
	}
	a.order, a.dropped = kept, 0
}

// Streams returns all live streams in first-seen order.
func (a *Assembler) Streams() []*Stream {
	out := make([]*Stream, 0, len(a.order))
	for _, k := range a.order {
		if st, ok := a.streams[k]; ok {
			out = append(out, st)
		}
	}
	return out
}

// Conversations pairs up directional streams that belong to the same TCP
// conversation, client side first. The client is taken to be the endpoint
// with the higher port number when one side uses a well-known port (<1024),
// otherwise the direction seen first.
type Conversation struct {
	ClientToServer *Stream
	ServerToClient *Stream
}

// Conversations returns every paired conversation, sorted by the client
// endpoint for determinism. One-sided captures yield a conversation with a
// nil reverse stream.
func (a *Assembler) Conversations() []Conversation {
	seen := make(map[layers.FlowKey]bool)
	var convs []Conversation
	for _, k := range a.order {
		if seen[k] {
			continue
		}
		seen[k] = true
		fwd, ok := a.streams[k]
		if !ok {
			continue // dropped
		}
		var rev *Stream
		if r, ok := a.streams[k.Reverse()]; ok {
			rev = r
			seen[k.Reverse()] = true
		}
		c := orient(fwd, rev)
		convs = append(convs, c)
	}
	sort.Slice(convs, func(i, j int) bool {
		return convKey(convs[i]) < convKey(convs[j])
	})
	return convs
}

func convKey(c Conversation) string {
	if c.ClientToServer != nil {
		return c.ClientToServer.Key.String()
	}
	return fmt.Sprintf("~%s", c.ServerToClient.Key)
}

// orient decides which stream is client→server.
func orient(fwd, rev *Stream) Conversation {
	clientFirst := true
	if fwd.Key.DstPort < 1024 && fwd.Key.SrcPort >= 1024 {
		clientFirst = true
	} else if fwd.Key.SrcPort < 1024 && fwd.Key.DstPort >= 1024 {
		clientFirst = false
	}
	if clientFirst {
		return Conversation{ClientToServer: fwd, ServerToClient: rev}
	}
	return Conversation{ClientToServer: rev, ServerToClient: fwd}
}
