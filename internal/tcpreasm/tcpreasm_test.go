package tcpreasm

import (
	"bytes"
	"net/netip"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/layers"
	"repro/internal/wire"
)

var (
	cli = netip.MustParseAddr("10.0.0.2")
	srv = netip.MustParseAddr("10.0.0.1")
	key = layers.FlowKey{SrcAddr: cli, DstAddr: srv, SrcPort: 51000, DstPort: 443}
)

// seg builds a decoded packet for the test flow.
func seg(seq uint32, flags layers.TCPFlags, payload []byte, at int) *layers.Packet {
	return &layers.Packet{
		Timestamp: time.Unix(1700000000, int64(at)*1e6),
		IPVersion: 4,
		IP4:       layers.IPv4{Src: cli, Dst: srv, Protocol: layers.IPProtocolTCP},
		TCP: layers.TCP{SrcPort: key.SrcPort, DstPort: key.DstPort,
			Seq: seq, Flags: flags},
		Payload: payload,
	}
}

func TestInOrderDelivery(t *testing.T) {
	a := NewAssembler()
	a.Feed(seg(1000, layers.TCPSyn, nil, 0))
	a.Feed(seg(1001, layers.TCPPsh|layers.TCPAck, []byte("hello "), 1))
	a.Feed(seg(1007, layers.TCPPsh|layers.TCPAck, []byte("world"), 2))
	st := a.Stream(key)
	if st == nil {
		t.Fatal("stream not created")
	}
	if got := string(st.Bytes()); got != "hello world" {
		t.Errorf("stream = %q", got)
	}
	if st.Len() != 11 {
		t.Errorf("Len = %d", st.Len())
	}
	if st.Gaps() != 0 {
		t.Errorf("Gaps = %d", st.Gaps())
	}
}

func TestOutOfOrderDelivery(t *testing.T) {
	a := NewAssembler()
	a.Feed(seg(1000, layers.TCPSyn, nil, 0))
	a.Feed(seg(1007, layers.TCPAck, []byte("world"), 1)) // arrives early
	st := a.Stream(key)
	if st.Len() != 0 {
		t.Fatalf("delivered %d bytes before gap filled", st.Len())
	}
	if st.Gaps() != 1 {
		t.Errorf("Gaps = %d, want 1", st.Gaps())
	}
	a.Feed(seg(1001, layers.TCPAck, []byte("hello "), 2))
	if got := string(st.Bytes()); got != "hello world" {
		t.Errorf("stream = %q", got)
	}
}

func TestDuplicateSegmentsIgnored(t *testing.T) {
	a := NewAssembler()
	a.Feed(seg(1000, layers.TCPSyn, nil, 0))
	a.Feed(seg(1001, layers.TCPAck, []byte("abc"), 1))
	a.Feed(seg(1001, layers.TCPAck, []byte("abc"), 2)) // exact retransmit
	st := a.Stream(key)
	if got := string(st.Bytes()); got != "abc" {
		t.Errorf("stream = %q", got)
	}
}

func TestOverlappingRetransmitTrimmed(t *testing.T) {
	a := NewAssembler()
	a.Feed(seg(1000, layers.TCPSyn, nil, 0))
	a.Feed(seg(1001, layers.TCPAck, []byte("abcd"), 1))
	// Retransmit covering old data plus two new bytes.
	a.Feed(seg(1003, layers.TCPAck, []byte("cdEF"), 2))
	st := a.Stream(key)
	if got := string(st.Bytes()); got != "abcdEF" {
		t.Errorf("stream = %q, want abcdEF", got)
	}
}

func TestOverlapFillsGapThenTrims(t *testing.T) {
	a := NewAssembler()
	a.Feed(seg(1000, layers.TCPSyn, nil, 0))
	a.Feed(seg(1001, layers.TCPAck, []byte("ab"), 1))
	// Out-of-order segment at offset 4.
	a.Feed(seg(1005, layers.TCPAck, []byte("ef"), 2))
	// A retransmit spanning offsets 1..5 bridges the gap with overlap on
	// both sides.
	a.Feed(seg(1002, layers.TCPAck, []byte("bcde"), 3))
	st := a.Stream(key)
	if got := string(st.Bytes()); got != "abcdef" {
		t.Errorf("stream = %q, want abcdef", got)
	}
	if st.Gaps() != 0 {
		t.Errorf("Gaps = %d", st.Gaps())
	}
}

func TestChunkTimestampsPreserved(t *testing.T) {
	a := NewAssembler()
	a.Feed(seg(1000, layers.TCPSyn, nil, 0))
	a.Feed(seg(1001, layers.TCPAck, []byte("aa"), 5))
	a.Feed(seg(1003, layers.TCPAck, []byte("bb"), 9))
	st := a.Stream(key)
	chunks := st.Chunks()
	if len(chunks) != 2 {
		t.Fatalf("chunks = %d", len(chunks))
	}
	if chunks[0].Time.Nanosecond() != 5e6 || chunks[1].Time.Nanosecond() != 9e6 {
		t.Errorf("chunk times: %v, %v", chunks[0].Time, chunks[1].Time)
	}
	if chunks[0].StreamOffset != 0 || chunks[1].StreamOffset != 2 {
		t.Errorf("offsets: %d, %d", chunks[0].StreamOffset, chunks[1].StreamOffset)
	}
}

func TestFinCompletion(t *testing.T) {
	a := NewAssembler()
	a.Feed(seg(1000, layers.TCPSyn, nil, 0))
	a.Feed(seg(1001, layers.TCPAck, []byte("xyz"), 1))
	st := a.Stream(key)
	if st.Complete() {
		t.Error("complete before FIN")
	}
	a.Feed(seg(1004, layers.TCPFin|layers.TCPAck, nil, 2))
	if !st.Complete() {
		t.Error("not complete after FIN with all bytes delivered")
	}
}

func TestFinBeforeGapNotComplete(t *testing.T) {
	a := NewAssembler()
	a.Feed(seg(1000, layers.TCPSyn, nil, 0))
	a.Feed(seg(1004, layers.TCPAck, []byte("later"), 1)) // gap at 0..3
	a.Feed(seg(1009, layers.TCPFin|layers.TCPAck, nil, 2))
	st := a.Stream(key)
	if st.Complete() {
		t.Error("complete despite missing bytes")
	}
}

func TestMidStreamCaptureAdoptsOrigin(t *testing.T) {
	// No SYN: first data segment defines the origin.
	a := NewAssembler()
	a.Feed(seg(5000, layers.TCPAck, []byte("mid"), 0))
	a.Feed(seg(5003, layers.TCPAck, []byte("str"), 1))
	st := a.Stream(key)
	if got := string(st.Bytes()); got != "midstr" {
		t.Errorf("stream = %q", got)
	}
}

func TestSequenceWraparound(t *testing.T) {
	a := NewAssembler()
	isn := uint32(0xfffffff0)
	a.Feed(seg(isn, layers.TCPSyn, nil, 0))
	payload1 := bytes.Repeat([]byte("a"), 20) // crosses the 2^32 boundary
	a.Feed(seg(isn+1, layers.TCPAck, payload1, 1))
	a.Feed(seg(isn+21, layers.TCPAck, []byte("tail"), 2)) // wrapped seq
	st := a.Stream(key)
	want := string(payload1) + "tail"
	if got := string(st.Bytes()); got != want {
		t.Errorf("wraparound stream = %q (len %d), want len %d", got, len(got), len(want))
	}
}

func TestConversationPairing(t *testing.T) {
	a := NewAssembler()
	a.Feed(seg(1000, layers.TCPSyn, nil, 0))
	a.Feed(seg(1001, layers.TCPAck, []byte("req"), 1))
	// Reverse direction.
	back := &layers.Packet{
		Timestamp: time.Unix(1700000000, 0),
		IPVersion: 4,
		IP4:       layers.IPv4{Src: srv, Dst: cli},
		TCP: layers.TCP{SrcPort: 443, DstPort: 51000, Seq: 9000,
			Flags: layers.TCPSyn | layers.TCPAck},
	}
	a.Feed(back)
	back2 := *back
	back2.TCP.Seq = 9001
	back2.TCP.Flags = layers.TCPAck
	back2.Payload = []byte("resp")
	a.Feed(&back2)

	convs := a.Conversations()
	if len(convs) != 1 {
		t.Fatalf("conversations = %d, want 1", len(convs))
	}
	c := convs[0]
	if c.ClientToServer == nil || c.ServerToClient == nil {
		t.Fatal("conversation not fully paired")
	}
	if c.ClientToServer.Key.DstPort != 443 {
		t.Errorf("client→server misoriented: %v", c.ClientToServer.Key)
	}
	if got := string(c.ClientToServer.Bytes()); got != "req" {
		t.Errorf("c2s = %q", got)
	}
	if got := string(c.ServerToClient.Bytes()); got != "resp" {
		t.Errorf("s2c = %q", got)
	}
}

func TestConversationOrientationByPort(t *testing.T) {
	// Server→client direction seen first must still orient client first.
	a := NewAssembler()
	back := &layers.Packet{
		Timestamp: time.Unix(0, 0), IPVersion: 4,
		IP4: layers.IPv4{Src: srv, Dst: cli},
		TCP: layers.TCP{SrcPort: 443, DstPort: 51000, Seq: 1,
			Flags: layers.TCPAck},
		Payload: []byte("early"),
	}
	a.Feed(back)
	convs := a.Conversations()
	if len(convs) != 1 {
		t.Fatalf("conversations = %d", len(convs))
	}
	if convs[0].ServerToClient == nil {
		t.Fatal("server stream missing")
	}
	if convs[0].ServerToClient.Key.SrcPort != 443 {
		t.Errorf("orientation wrong: %v", convs[0].ServerToClient.Key)
	}
	if convs[0].ClientToServer != nil {
		t.Errorf("one-sided capture should leave client stream nil")
	}
}

// TestRandomizedReorderProperty verifies the core reassembly invariant:
// any segmentation of a byte stream, delivered in any order with random
// duplication, reproduces exactly the original stream.
func TestRandomizedReorderProperty(t *testing.T) {
	f := func(seed uint64, streamLen16 uint16) bool {
		rng := wire.NewRNG(seed)
		streamLen := int(streamLen16%2000) + 1
		stream := make([]byte, streamLen)
		for i := range stream {
			stream[i] = byte(rng.Uint64())
		}
		// Random segmentation.
		type rawSeg struct {
			off, n int
		}
		var segs []rawSeg
		for off := 0; off < streamLen; {
			n := rng.IntRange(1, 400)
			if off+n > streamLen {
				n = streamLen - off
			}
			segs = append(segs, rawSeg{off, n})
			off += n
		}
		// Duplicate ~20% of segments, then shuffle.
		for _, s := range segs {
			if rng.Bool(0.2) {
				segs = append(segs, s)
			}
		}
		rng.Shuffle(len(segs), func(i, j int) { segs[i], segs[j] = segs[j], segs[i] })

		a := NewAssembler()
		isn := uint32(rng.Uint64())
		a.Feed(seg(isn, layers.TCPSyn, nil, 0))
		for i, s := range segs {
			a.Feed(seg(isn+1+uint32(s.off), layers.TCPAck, stream[s.off:s.off+s.n], i+1))
		}
		st := a.Stream(key)
		return bytes.Equal(st.Bytes(), stream) && st.Gaps() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestFeedReturnsTouchedStream pins the incremental contract: Feed hands
// back the stream the segment landed in, so a streaming consumer can
// follow the delta without scanning every flow.
func TestFeedReturnsTouchedStream(t *testing.T) {
	a := NewAssembler()
	st := a.Feed(seg(1000, layers.TCPSyn, nil, 0))
	if st == nil || st.Key != key {
		t.Fatalf("Feed returned %+v, want stream for %v", st, key)
	}
	if got := a.Feed(seg(1001, layers.TCPAck, []byte("abc"), 1)); got != st {
		t.Error("Feed returned a different stream for the same flow")
	}
}

// TestDeliveredChunksCursor walks the incremental chunk API the way a
// live monitor does: after each segment, consume only the new chunks.
func TestDeliveredChunksCursor(t *testing.T) {
	a := NewAssembler()
	a.Feed(seg(1000, layers.TCPSyn, nil, 0))
	var got []byte
	consumed := 0
	feed := func(p *layers.Packet) {
		st := a.Feed(p)
		for _, c := range st.DeliveredChunks(consumed) {
			got = append(got, c.Data...)
			consumed++
		}
	}
	feed(seg(1001, layers.TCPAck, []byte("he"), 1))
	feed(seg(1007, layers.TCPAck, []byte("world"), 2)) // out of order
	feed(seg(1003, layers.TCPAck, []byte("llo "), 3))  // fills the gap
	if string(got) != "hello world" {
		t.Errorf("incremental consumption = %q", got)
	}
	if st := a.Stream(key); st.DeliveredChunks(consumed) != nil {
		t.Error("cursor at end should yield no chunks")
	}
}

// TestStablePayloadsNotCopied verifies the zero-copy ownership mode:
// buffered out-of-order payloads alias the caller's memory.
func TestStablePayloadsNotCopied(t *testing.T) {
	a := NewAssembler()
	a.SetStablePayloads(true)
	a.Feed(seg(1000, layers.TCPSyn, nil, 0))
	payload := []byte("world")
	a.Feed(seg(1007, layers.TCPAck, payload, 1)) // buffered: gap before it
	a.Feed(seg(1001, layers.TCPAck, []byte("hello "), 2))
	st := a.Stream(key)
	if got := string(st.Bytes()); got != "hello world" {
		t.Fatalf("stream = %q", got)
	}
	// The delivered chunk must alias the original payload backing array.
	chunks := st.Chunks()
	last := chunks[len(chunks)-1]
	if &last.Data[0] != &payload[0] {
		t.Error("stable payload was copied")
	}
}

// TestReleaseThroughCursor pins the rolling-window half of the
// DeliveredChunks contract: indices stay absolute across releases, the
// released prefix is gone, and releasing is clamped and idempotent.
func TestReleaseThroughCursor(t *testing.T) {
	a := NewAssembler()
	a.Feed(seg(1000, layers.TCPSyn, nil, 0))
	a.Feed(seg(1001, layers.TCPAck, []byte("aa"), 1))
	a.Feed(seg(1003, layers.TCPAck, []byte("bb"), 2))
	a.Feed(seg(1005, layers.TCPAck, []byte("cc"), 3))
	st := a.Stream(key)
	if len(st.Chunks()) != 3 {
		t.Fatalf("chunks = %d", len(st.Chunks()))
	}
	st.ReleaseThrough(2)
	if st.Released() != 2 || len(st.Chunks()) != 1 {
		t.Fatalf("after release: released=%d retained=%d", st.Released(), len(st.Chunks()))
	}
	if got := st.DeliveredChunks(2); len(got) != 1 || string(got[0].Data) != "cc" {
		t.Fatalf("DeliveredChunks(2) = %v", got)
	}
	// New data keeps flowing behind the released prefix.
	a.Feed(seg(1007, layers.TCPAck, []byte("dd"), 4))
	if got := st.DeliveredChunks(3); len(got) != 1 || string(got[0].Data) != "dd" {
		t.Fatalf("DeliveredChunks(3) = %v", got)
	}
	if st.Len() != 8 {
		t.Errorf("Len = %d after releases (must stay absolute)", st.Len())
	}
	st.ReleaseThrough(100) // clamped
	if len(st.Chunks()) != 0 || st.Released() != 4 {
		t.Errorf("clamped release: released=%d retained=%d", st.Released(), len(st.Chunks()))
	}
	st.ReleaseThrough(1) // backwards: no-op
	if st.Released() != 4 {
		t.Errorf("backwards release moved the cursor: %d", st.Released())
	}
}

// TestReleaseCallbackAccounting proves every payload byte fed to the
// assembler in stable mode comes back through the release callback
// exactly once — duplicates, overlaps, trims, released chunks and
// discards included. This is the invariant the caller-owned packet ring
// needs to recycle frame memory.
func TestReleaseCallbackAccounting(t *testing.T) {
	var released int
	a := NewAssembler()
	a.SetStablePayloads(true)
	a.SetReleaseFunc(func(b []byte) { released += len(b) })
	fed := 0
	feed := func(p *layers.Packet) {
		fed += len(p.Payload)
		a.Feed(p)
	}
	feed(seg(1000, layers.TCPSyn, nil, 0))
	feed(seg(1001, layers.TCPAck, []byte("hello "), 1))
	feed(seg(1001, layers.TCPAck, []byte("hello "), 2)) // pure retransmission
	feed(seg(1004, layers.TCPAck, []byte("lo wor"), 3)) // partial overlap with delivered
	feed(seg(1011, layers.TCPAck, []byte("ld"), 4))     // out of order (pending)
	feed(seg(1011, layers.TCPAck, []byte("l"), 5))      // shorter duplicate of pending
	feed(seg(1009, layers.TCPAck, []byte("rld!"), 6))   // fills gap, supersedes pending
	st := a.Stream(key)
	if got := string(st.Bytes()); got != "hello world!" {
		t.Fatalf("stream = %q", got)
	}
	// Everything not retained must have been released already.
	if want := fed - int(st.BufferedBytes()); released != want {
		t.Fatalf("released %d bytes, want %d (fed %d, buffered %d)",
			released, want, fed, st.BufferedBytes())
	}
	st.ReleaseThrough(st.Released() + len(st.Chunks()))
	if released != fed {
		t.Fatalf("after full release: released %d of %d fed bytes", released, fed)
	}
	if st.BufferedBytes() != 0 {
		t.Errorf("BufferedBytes = %d after full release", st.BufferedBytes())
	}
}

// TestDiscardStopsBuffering covers eviction: a discarded stream releases
// what it held, buffers nothing new, and still tracks delivery length and
// FIN completion so transport-state finalization keeps working.
func TestDiscardStopsBuffering(t *testing.T) {
	var released int
	a := NewAssembler()
	a.SetStablePayloads(true)
	a.SetReleaseFunc(func(b []byte) { released += len(b) })
	a.Feed(seg(1000, layers.TCPSyn, nil, 0))
	a.Feed(seg(1001, layers.TCPAck, []byte("hello "), 1))
	a.Feed(seg(1010, layers.TCPAck, []byte("xx"), 2)) // pending behind a gap
	st := a.Stream(key)
	st.Discard()
	if released != 8 {
		t.Fatalf("discard released %d bytes, want 8", released)
	}
	a.Feed(seg(1007, layers.TCPAck, []byte("world"), 3))
	if released != 13 {
		t.Errorf("post-discard payload not released (released=%d)", released)
	}
	if st.BufferedBytes() != 0 || len(st.Chunks()) != 0 {
		t.Errorf("discarded stream retains memory: %d bytes", st.BufferedBytes())
	}
	if st.Len() != 11 {
		t.Errorf("Len = %d, want 11 (cursor advances past dropped data)", st.Len())
	}
	a.Feed(seg(1012, layers.TCPFin|layers.TCPAck, nil, 4))
	if !st.Complete() {
		t.Error("FIN completion lost in discard mode")
	}
}

// TestAbortedOnRST pins RST tracking: the stream reports Aborted so a
// streaming consumer can finalize the flow at the reset.
func TestAbortedOnRST(t *testing.T) {
	a := NewAssembler()
	a.Feed(seg(1000, layers.TCPSyn, nil, 0))
	a.Feed(seg(1001, layers.TCPAck, []byte("data"), 1))
	st := a.Stream(key)
	if st.Aborted() {
		t.Fatal("aborted before RST")
	}
	a.Feed(seg(1005, layers.TCPRst, nil, 2))
	if !st.Aborted() {
		t.Fatal("RST not tracked")
	}
	if st.Complete() {
		t.Error("RST must not masquerade as a clean FIN close")
	}
}

// TestAssemblerDrop verifies eviction from the demultiplexer: the stream's
// memory is released, iteration skips it, and a later packet on the same
// key starts a fresh conversation (port reuse on a long tap).
func TestAssemblerDrop(t *testing.T) {
	var released int
	a := NewAssembler()
	a.SetStablePayloads(true)
	a.SetReleaseFunc(func(b []byte) { released += len(b) })
	a.Feed(seg(1000, layers.TCPSyn, nil, 0))
	a.Feed(seg(1001, layers.TCPAck, []byte("hello"), 1))
	a.Drop(key)
	if released != 5 {
		t.Fatalf("drop released %d bytes, want 5", released)
	}
	if a.Stream(key) != nil {
		t.Fatal("dropped stream still resolvable")
	}
	if len(a.Streams()) != 0 || len(a.Conversations()) != 0 {
		t.Fatal("dropped stream still iterable")
	}
	st := a.Feed(seg(9000, layers.TCPAck, []byte("fresh"), 2))
	if got := string(st.Bytes()); got != "fresh" {
		t.Fatalf("reused key did not start fresh: %q", got)
	}
}
