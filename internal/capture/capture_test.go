package capture

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/layers"
	"repro/internal/media"
	"repro/internal/pcapio"
	"repro/internal/profiles"
	"repro/internal/script"
	"repro/internal/session"
	"repro/internal/tcpreasm"
	"repro/internal/tlsrec"
	"repro/internal/viewer"
	"repro/internal/wire"
)

func captureTrace(t *testing.T, seed uint64) (*session.Trace, []byte) {
	t.Helper()
	g := script.TinyScript()
	enc := media.Encode(g, media.DefaultLadder, 42)
	pop := viewer.SamplePopulation(1, wire.NewRNG(seed))
	tr, err := session.Run(session.Config{
		Graph: g, Encoding: enc, Viewer: pop[0],
		Condition: profiles.Fig2Ubuntu, SessionID: "cap-test", Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WritePcap(&buf, tr, Options{Seed: seed}); err != nil {
		t.Fatal(err)
	}
	return tr, buf.Bytes()
}

// reassemble parses a pcap back into per-direction streams.
func reassemble(t *testing.T, pcapBytes []byte) *tcpreasm.Assembler {
	t.Helper()
	r, err := pcapio.NewReader(bytes.NewReader(pcapBytes))
	if err != nil {
		t.Fatal(err)
	}
	asm := tcpreasm.NewAssembler()
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		p, err := layers.DecodePacket(rec.Timestamp, rec.Data)
		if err != nil {
			t.Fatalf("undecodable frame in own capture: %v", err)
		}
		asm.Feed(p)
	}
	return asm
}

func TestPcapRoundTripsClientStream(t *testing.T) {
	tr, pcapBytes := captureTrace(t, 1)
	asm := reassemble(t, pcapBytes)
	convs := asm.Conversations()
	if len(convs) != 1 {
		t.Fatalf("conversations = %d", len(convs))
	}
	c := convs[0]
	if c.ClientToServer == nil || c.ServerToClient == nil {
		t.Fatal("conversation not fully captured")
	}
	if !bytes.Equal(c.ClientToServer.Bytes(), tr.ClientToServer.Bytes) {
		t.Errorf("client stream mismatch: got %d bytes, want %d",
			len(c.ClientToServer.Bytes()), len(tr.ClientToServer.Bytes))
	}
	if !bytes.Equal(c.ServerToClient.Bytes(), tr.ServerToClient.Bytes) {
		t.Errorf("server stream mismatch: got %d bytes, want %d",
			len(c.ServerToClient.Bytes()), len(tr.ServerToClient.Bytes))
	}
}

func TestPcapStreamsParseAsTLS(t *testing.T) {
	_, pcapBytes := captureTrace(t, 2)
	asm := reassemble(t, pcapBytes)
	c := asm.Conversations()[0]
	recs, rest, err := tlsrec.ParseStream(c.ClientToServer.Bytes(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if rest != 0 || len(recs) == 0 {
		t.Errorf("client records = %d, unparsed = %d", len(recs), rest)
	}
}

func TestPcapSegmentsRespectMSS(t *testing.T) {
	tr, pcapBytes := captureTrace(t, 3)
	r, err := pcapio.NewReader(bytes.NewReader(pcapBytes))
	if err != nil {
		t.Fatal(err)
	}
	mss := tr.Profile.MTU - 40
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		p, err := layers.DecodePacket(rec.Timestamp, rec.Data)
		if err != nil {
			t.Fatal(err)
		}
		if len(p.Payload) > mss {
			t.Fatalf("segment payload %d exceeds MSS %d", len(p.Payload), mss)
		}
		if len(rec.Data) > tr.Profile.MTU+14 { // + Ethernet header
			t.Fatalf("frame %d exceeds MTU", len(rec.Data))
		}
	}
}

func TestPcapTimestampsMonotone(t *testing.T) {
	_, pcapBytes := captureTrace(t, 4)
	r, err := pcapio.NewReader(bytes.NewReader(pcapBytes))
	if err != nil {
		t.Fatal(err)
	}
	recs, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) < 10 {
		t.Fatalf("only %d packets captured", len(recs))
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Timestamp.Before(recs[i-1].Timestamp) {
			t.Fatalf("packet %d timestamp went backwards", i)
		}
	}
}

func TestPcapHasHandshakeAndFin(t *testing.T) {
	_, pcapBytes := captureTrace(t, 5)
	r, _ := pcapio.NewReader(bytes.NewReader(pcapBytes))
	recs, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	var syn, synAck, fin int
	for _, rec := range recs {
		p, err := layers.DecodePacket(rec.Timestamp, rec.Data)
		if err != nil {
			t.Fatal(err)
		}
		f := p.TCP.Flags
		switch {
		case f&layers.TCPSyn != 0 && f&layers.TCPAck == 0:
			syn++
		case f&layers.TCPSyn != 0 && f&layers.TCPAck != 0:
			synAck++
		case f&layers.TCPFin != 0:
			fin++
		}
	}
	if syn != 1 || synAck != 1 {
		t.Errorf("handshake: %d SYN, %d SYN+ACK", syn, synAck)
	}
	if fin != 2 {
		t.Errorf("teardown: %d FIN", fin)
	}
}

func TestWriteBoundariesAlignWithSegments(t *testing.T) {
	// Application write boundaries must start fresh TCP segments so that
	// per-record timestamps are recoverable: verify every client write
	// mark's offset coincides with a segment start in the capture.
	tr, pcapBytes := captureTrace(t, 6)
	asm := reassemble(t, pcapBytes)
	c := asm.Conversations()[0]
	startOffsets := map[int64]bool{}
	for _, ch := range c.ClientToServer.Chunks() {
		startOffsets[ch.StreamOffset] = true
	}
	for _, m := range tr.ClientToServer.Writes {
		if !startOffsets[m.Offset] {
			t.Errorf("write mark at offset %d does not start a TCP segment", m.Offset)
		}
	}
}

func TestOptionsValidation(t *testing.T) {
	tr, _ := captureTrace(t, 7)
	var buf bytes.Buffer
	if err := WritePcap(&buf, tr, Options{MTU: 100}); err == nil {
		t.Error("tiny MTU accepted")
	}
}

func TestDeterministicCapture(t *testing.T) {
	_, a := captureTrace(t, 8)
	_, b := captureTrace(t, 8)
	if !bytes.Equal(a, b) {
		t.Error("captures differ across identical seeds")
	}
}

// TestWritePcapMultiInterleavesFlows renders the interleaved scenario and
// checks every conversation — the interactive one plus each noise flow —
// survives the round trip as a complete, TLS-parsable TCP conversation,
// with the interactive client stream byte-intact among the noise.
func TestWritePcapMultiInterleavesFlows(t *testing.T) {
	tr, _ := captureTrace(t, 3)
	const noise = 3
	var buf bytes.Buffer
	if err := WritePcapMulti(&buf, tr, MultiOptions{
		Options: Options{Seed: 3}, NoiseFlows: noise,
	}); err != nil {
		t.Fatal(err)
	}
	asm := reassemble(t, buf.Bytes())
	convs := asm.Conversations()
	if len(convs) != noise+1 {
		t.Fatalf("conversations = %d, want %d", len(convs), noise+1)
	}
	ep := DefaultEndpoints()
	foundInteractive := false
	for _, c := range convs {
		if c.ClientToServer == nil || c.ServerToClient == nil {
			t.Fatal("conversation not fully captured")
		}
		if _, _, err := tlsrec.ParseStream(c.ClientToServer.Bytes(), nil); err != nil {
			t.Fatalf("client stream of %v not TLS: %v", c.ClientToServer.Key, err)
		}
		if c.ClientToServer.Key.SrcPort == ep.ClientPort {
			foundInteractive = true
			if !bytes.Equal(c.ClientToServer.Bytes(), tr.ClientToServer.Bytes) {
				t.Error("interactive client stream corrupted by interleaving")
			}
		}
	}
	if !foundInteractive {
		t.Fatal("interactive conversation missing from multi-flow capture")
	}
}

// TestWritePcapMultiDeterministic pins seeded reproducibility.
func TestWritePcapMultiDeterministic(t *testing.T) {
	tr, _ := captureTrace(t, 4)
	render := func() []byte {
		var buf bytes.Buffer
		if err := WritePcapMulti(&buf, tr, MultiOptions{
			Options: Options{Seed: 9}, NoiseFlows: 2,
		}); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(render(), render()) {
		t.Error("WritePcapMulti not deterministic for equal options")
	}
}
