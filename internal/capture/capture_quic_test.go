package capture

import (
	"bytes"
	"testing"

	"repro/internal/layers"
	"repro/internal/media"
	"repro/internal/pcapio"
	"repro/internal/profiles"
	"repro/internal/quicrec"
	"repro/internal/script"
	"repro/internal/session"
	"repro/internal/viewer"
	"repro/internal/wire"
)

func quicTestTrace(t *testing.T, seed uint64) *session.Trace {
	t.Helper()
	g := script.Bandersnatch()
	enc := media.Encode(g, media.DefaultLadder, 42)
	pop := viewer.SamplePopulation(1, wire.NewRNG(seed))
	tr, err := session.Run(session.Config{
		Graph: g, Encoding: enc, Viewer: pop[0],
		Condition: profiles.Fig2Ubuntu, SessionID: "q-sess", Seed: seed,
		Transport: quicrec.TransportQUIC,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestWritePcapQUIC(t *testing.T) {
	tr := quicTestTrace(t, 7)
	var buf bytes.Buffer
	if err := WritePcap(&buf, tr, Options{Seed: 7}); err != nil {
		t.Fatal(err)
	}
	r, err := pcapio.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	ep := DefaultEndpoints()
	var cFrames, sFrames, cBytes, longHeaders int
	for {
		rec, err := r.Next()
		if err != nil {
			break
		}
		p, err := layers.DecodePacket(rec.Timestamp, rec.Data)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if p.Proto != layers.IPProtocolUDP {
			t.Fatalf("QUIC capture contains a non-UDP packet: proto %d", p.Proto)
		}
		k := p.Flow()
		switch {
		case k.SrcPort == ep.ClientPort:
			cFrames++
			cBytes += len(p.Payload)
			if quicrec.IsLongHeader(p.Payload[0]) {
				longHeaders++
			}
		case k.DstPort == ep.ClientPort:
			sFrames++
		default:
			t.Fatalf("unexpected flow %v", k)
		}
		if !quicrec.Sniff(p.Payload) {
			t.Fatal("payload does not sniff as QUIC")
		}
	}
	if cFrames != len(tr.ClientToServer.Datagrams) {
		t.Errorf("client frames = %d, want one per datagram (%d)",
			cFrames, len(tr.ClientToServer.Datagrams))
	}
	if sFrames != len(tr.ServerToClient.Datagrams) {
		t.Errorf("server frames = %d, want %d", sFrames, len(tr.ServerToClient.Datagrams))
	}
	if cBytes != len(tr.ClientToServer.Bytes) {
		t.Errorf("client UDP payload bytes = %d, want %d", cBytes, len(tr.ClientToServer.Bytes))
	}
	if longHeaders == 0 {
		t.Error("no long-header client datagrams (handshake missing)")
	}
}

func TestWritePcapMultiQUICNoiseInheritsTransport(t *testing.T) {
	tr := quicTestTrace(t, 11)
	var buf bytes.Buffer
	if err := WritePcapMulti(&buf, tr, MultiOptions{
		Options: Options{Seed: 11}, NoiseFlows: 2,
	}); err != nil {
		t.Fatal(err)
	}
	r, err := pcapio.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	flows := map[layers.FlowKey]int{}
	var last int64
	for {
		rec, err := r.Next()
		if err != nil {
			break
		}
		p, err := layers.DecodePacket(rec.Timestamp, rec.Data)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if p.Proto != layers.IPProtocolUDP {
			t.Fatalf("noise did not inherit QUIC transport: proto %d", p.Proto)
		}
		k, _ := p.Flow().Canonical()
		flows[k]++
		if ns := rec.Timestamp.UnixNano(); ns < last {
			t.Fatal("frames not in time order")
		} else {
			last = ns
		}
	}
	if len(flows) != 3 {
		t.Errorf("distinct conversations = %d, want 3 (session + 2 noise)", len(flows))
	}
}

func TestWritePcapQUICLeanTraceErrors(t *testing.T) {
	g := script.Bandersnatch()
	enc := media.Encode(g, media.DefaultLadder, 42)
	pop := viewer.SamplePopulation(1, wire.NewRNG(3))
	tr, err := session.Run(session.Config{
		Graph: g, Encoding: enc, Viewer: pop[0],
		Condition: profiles.Fig2Ubuntu, Seed: 3,
		Transport: quicrec.TransportQUIC, OmitServerPayload: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WritePcap(&buf, tr, Options{Seed: 3}); err == nil {
		t.Fatal("want error rendering a lean QUIC trace (server payload missing)")
	}
}
