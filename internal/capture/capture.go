// Package capture materializes a simulated session trace as a genuine
// libpcap file: each direction's TLS byte stream is cut into MTU-bounded
// TCP segments, wrapped in IPv4/Ethernet frames with a proper three-way
// handshake and FIN exchange, timestamped from the trace's write schedule,
// and interleaved in time order. The resulting file is indistinguishable
// in structure from a tcpdump capture of the same conversation, which is
// what the attack pipeline consumes.
package capture

import (
	"fmt"
	"io"
	"net/netip"
	"sort"
	"time"

	"repro/internal/layers"
	"repro/internal/pcapio"
	"repro/internal/session"
	"repro/internal/wire"
)

// Endpoints fixes the addresses used in synthesized captures.
type Endpoints struct {
	ClientAddr netip.Addr
	ServerAddr netip.Addr
	ClientPort uint16
	ServerPort uint16
	ClientMAC  layers.MAC
	ServerMAC  layers.MAC
}

// DefaultEndpoints resemble a home viewer reaching a CDN edge over 443.
func DefaultEndpoints() Endpoints {
	return Endpoints{
		ClientAddr: netip.MustParseAddr("192.168.1.23"),
		ServerAddr: netip.MustParseAddr("198.51.100.7"),
		ClientPort: 51732,
		ServerPort: 443,
		ClientMAC:  layers.MAC{0x02, 0x42, 0xc0, 0xa8, 0x01, 0x17},
		ServerMAC:  layers.MAC{0x02, 0x42, 0xc6, 0x33, 0x64, 0x07},
	}
}

// Options tunes the synthesis.
type Options struct {
	Endpoints Endpoints
	// MTU bounds frame payloads (TCP MSS = MTU - 40). Zero uses 1500.
	MTU int
	// Seed drives small segmentation jitter (segments occasionally carry
	// less than a full MSS, as real stacks emit on flush boundaries).
	Seed uint64
}

// frame is one synthesized packet awaiting interleave. Frame bytes live
// in a shared arena (start/end offsets) so a capture costs one buffer, not
// one allocation per packet.
type frame struct {
	ts         time.Time
	start, end int
	// seqKey breaks timestamp ties so a direction's segments stay ordered.
	seqKey int
}

// WritePcap renders tr as a pcap stream into w.
func WritePcap(w io.Writer, tr *session.Trace, opts Options) error {
	if opts.MTU == 0 {
		opts.MTU = tr.Profile.MTU
	}
	if opts.MTU < 576 {
		return fmt.Errorf("capture: MTU %d too small", opts.MTU)
	}
	var zero Endpoints
	if opts.Endpoints == zero {
		opts.Endpoints = DefaultEndpoints()
	}
	ep := opts.Endpoints
	mss := opts.MTU - 40 // IPv4 + TCP headers
	rng := wire.NewRNG(opts.Seed + 0x9e37)

	c2s := layers.FlowKey{SrcAddr: ep.ClientAddr, DstAddr: ep.ServerAddr,
		SrcPort: ep.ClientPort, DstPort: ep.ServerPort}
	s2c := c2s.Reverse()
	cEth := layers.Ethernet{Src: ep.ClientMAC, Dst: ep.ServerMAC}
	sEth := layers.Ethernet{Src: ep.ServerMAC, Dst: ep.ClientMAC}

	// Size the arena and frame list from the streams: one frame per MSS of
	// payload plus the handshake/FIN scaffolding, ~54 bytes of headers each.
	streamBytes := len(tr.ClientToServer.Bytes) + len(tr.ServerToClient.Bytes)
	frameEstimate := streamBytes/mss + len(tr.ClientToServer.Writes) +
		len(tr.ServerToClient.Writes) + 8
	arena := wire.GetWriter(streamBytes + 64*frameEstimate)
	defer wire.PutWriter(arena)
	frames := make([]frame, 0, frameEstimate)
	var ipID uint16 = 1
	addFrame := func(ts time.Time, key layers.FlowKey, eth layers.Ethernet,
		tcp layers.TCP, payload []byte) error {
		start := arena.Len()
		if err := layers.AppendTCPFrame(arena, key, eth, tcp, payload, ipID); err != nil {
			return err
		}
		ipID++
		frames = append(frames, frame{ts: ts, start: start, end: arena.Len(), seqKey: len(frames)})
		return nil
	}

	start := handshakeStart(tr)
	cISN, sISN := uint32(rng.Uint64()), uint32(rng.Uint64())

	// Three-way handshake slightly before the first TLS byte.
	hs := start.Add(-30 * time.Millisecond)
	if err := addFrame(hs, c2s, cEth,
		layers.TCP{Seq: cISN, Flags: layers.TCPSyn, Window: 64240}, nil); err != nil {
		return err
	}
	if err := addFrame(hs.Add(10*time.Millisecond), s2c, sEth,
		layers.TCP{Seq: sISN, Ack: cISN + 1, Flags: layers.TCPSyn | layers.TCPAck, Window: 65160}, nil); err != nil {
		return err
	}
	if err := addFrame(hs.Add(20*time.Millisecond), c2s, cEth,
		layers.TCP{Seq: cISN + 1, Ack: sISN + 1, Flags: layers.TCPAck, Window: 64240}, nil); err != nil {
		return err
	}

	// Data segments for each direction.
	cEnd, err := segmentDirection(addFrame, tr.ClientToServer, c2s, cEth,
		cISN+1, sISN+1, mss, rng)
	if err != nil {
		return err
	}
	sEnd, err := segmentDirection(addFrame, tr.ServerToClient, s2c, sEth,
		sISN+1, cISN+1, mss, rng)
	if err != nil {
		return err
	}

	// FIN exchange after the last data in either direction.
	finAt := tr.Result.EndedAt.Add(50 * time.Millisecond)
	if err := addFrame(finAt, c2s, cEth,
		layers.TCP{Seq: cEnd, Ack: sEnd, Flags: layers.TCPFin | layers.TCPAck, Window: 64240}, nil); err != nil {
		return err
	}
	if err := addFrame(finAt.Add(12*time.Millisecond), s2c, sEth,
		layers.TCP{Seq: sEnd, Ack: cEnd + 1, Flags: layers.TCPFin | layers.TCPAck, Window: 65160}, nil); err != nil {
		return err
	}

	// Interleave by timestamp (stable on insertion order within a tie).
	sort.SliceStable(frames, func(i, j int) bool {
		if frames[i].ts.Equal(frames[j].ts) {
			return frames[i].seqKey < frames[j].seqKey
		}
		return frames[i].ts.Before(frames[j].ts)
	})

	pw := pcapio.NewWriter(w)
	raw := arena.Bytes()
	for _, f := range frames {
		if err := pw.WritePacket(f.ts, raw[f.start:f.end]); err != nil {
			return err
		}
	}
	return nil
}

// addFrameFunc matches the addFrame closure's signature.
type addFrameFunc func(ts time.Time, key layers.FlowKey, eth layers.Ethernet,
	tcp layers.TCP, payload []byte) error

// segmentDirection cuts one direction's byte stream into MSS-bounded
// segments timestamped from the write schedule. Returns the next sequence
// number after the stream.
func segmentDirection(add addFrameFunc,
	d session.DirStream, key layers.FlowKey, eth layers.Ethernet,
	isn, peerSeq uint32, mss int, rng *wire.RNG) (uint32, error) {
	stream := d.Bytes
	off := 0
	seq := isn
	for off < len(stream) {
		n := mss
		// Real senders flush on application write boundaries: end the
		// segment early at the next write mark so segment boundaries and
		// timestamps line up with application behaviour.
		ts := d.TimeAt(int64(off))
		if nextOff, ok := nextMark(d, int64(off)); ok && nextOff-int64(off) < int64(n) {
			n = int(nextOff - int64(off))
		}
		if off+n > len(stream) {
			n = len(stream) - off
		}
		// Occasional sub-MSS flush (ack-clocking artefacts).
		if n == mss && rng.Bool(0.02) {
			n = rng.IntRange(mss/2, mss)
		}
		payload := stream[off : off+n]
		flags := layers.TCPAck
		// PSH on write boundaries (the last segment of an application
		// write), approximated by checking whether the next byte starts a
		// new write.
		if nextOff, ok := nextMark(d, int64(off)); !ok || nextOff == int64(off+n) {
			flags |= layers.TCPPsh
		}
		if err := add(ts, key, eth, layers.TCP{
			Seq: seq, Ack: peerSeq, Flags: flags, Window: 64240,
		}, payload); err != nil {
			return 0, err
		}
		seq += uint32(n)
		off += n
	}
	return seq, nil
}

// nextMark returns the first write-mark offset strictly greater than off.
func nextMark(d session.DirStream, off int64) (int64, bool) {
	lo, hi := 0, len(d.Writes)
	for lo < hi {
		mid := (lo + hi) / 2
		if d.Writes[mid].Offset <= off {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(d.Writes) {
		return 0, false
	}
	return d.Writes[lo].Offset, true
}

// handshakeStart returns the trace's earliest write time.
func handshakeStart(tr *session.Trace) time.Time {
	if len(tr.ClientToServer.Writes) > 0 {
		return tr.ClientToServer.Writes[0].Time
	}
	return time.Unix(0, 0)
}
