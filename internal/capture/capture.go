// Package capture materializes simulated traffic as a genuine libpcap
// file: each direction's TLS byte stream is cut into MTU-bounded TCP
// segments, wrapped in IPv4/Ethernet frames with a proper three-way
// handshake and FIN exchange, timestamped from the trace's write schedule,
// and interleaved in time order. The resulting file is indistinguishable
// in structure from a tcpdump capture of the same conversation, which is
// what the attack pipeline consumes.
//
// WritePcap renders one session's conversation. WritePcapMulti renders
// the interleaved scenario: the interactive session plus N seeded
// bulk-streaming noise flows sharing the capture, which is what an
// on-path eavesdropper actually sees on a household link.
package capture

import (
	"fmt"
	"io"
	"net/netip"
	"sort"
	"time"

	"repro/internal/cdn"
	"repro/internal/layers"
	"repro/internal/netem"
	"repro/internal/pcapio"
	"repro/internal/quicrec"
	"repro/internal/session"
	"repro/internal/tlsrec"
	"repro/internal/wire"
)

// Endpoints fixes the addresses used in synthesized captures.
type Endpoints struct {
	ClientAddr netip.Addr
	ServerAddr netip.Addr
	ClientPort uint16
	ServerPort uint16
	ClientMAC  layers.MAC
	ServerMAC  layers.MAC
}

// DefaultEndpoints resemble a home viewer reaching a CDN edge over 443.
func DefaultEndpoints() Endpoints {
	return Endpoints{
		ClientAddr: netip.MustParseAddr("192.168.1.23"),
		ServerAddr: netip.MustParseAddr("198.51.100.7"),
		ClientPort: 51732,
		ServerPort: 443,
		ClientMAC:  layers.MAC{0x02, 0x42, 0xc0, 0xa8, 0x01, 0x17},
		ServerMAC:  layers.MAC{0x02, 0x42, 0xc6, 0x33, 0x64, 0x07},
	}
}

// noiseEndpoints derives distinct addresses for the i-th noise flow: the
// same household client reaching other CDN edges from other ephemeral
// ports. The derivation is relative to the session's endpoints so a
// long-run harness rendering many sessions with shifted client ports (a
// soak through one monitor) gets distinct noise 5-tuples per session; for
// the default endpoints it reproduces the historical 52000+i ports
// exactly.
func noiseEndpoints(base Endpoints, i int) Endpoints {
	ep := base
	ep.ClientPort = base.ClientPort + 268 + uint16(i)
	a := ep.ServerAddr.As4()
	a[3] += byte(10 + i)
	ep.ServerAddr = netip.AddrFrom4(a)
	ep.ServerMAC[5] += byte(10 + i)
	return ep
}

// Options tunes the synthesis.
type Options struct {
	Endpoints Endpoints
	// MTU bounds frame payloads (TCP MSS = MTU - 40). Zero uses 1500.
	MTU int
	// Seed drives small segmentation jitter (segments occasionally carry
	// less than a full MSS, as real stacks emit on flush boundaries).
	Seed uint64
	// TimeOffset shifts every frame's capture timestamp. A long-run
	// harness rendering back-to-back sessions uses it to lay them on one
	// continuous tap timeline; the attack is shift-invariant (all timing
	// evidence is relative to the session anchor).
	TimeOffset time.Duration
}

// MultiOptions tunes WritePcapMulti.
type MultiOptions struct {
	// Options applies to the interactive session's conversation.
	Options
	// NoiseFlows is the number of concurrent bulk-streaming flows mixed
	// into the capture.
	NoiseFlows int
	// RecordVersion is the record layer the noise flows negotiate. The
	// zero value inherits the interactive trace's own generation, so a
	// TLS 1.3 household produces TLS 1.3 noise; set it explicitly to mix
	// generations on one tap.
	RecordVersion tlsrec.RecordVersion
	// RecordVersionSet marks RecordVersion as explicit (needed because
	// RecordTLS12 is the zero value).
	RecordVersionSet bool
	// Transport is the transport the noise flows speak. The zero value
	// inherits the interactive trace's transport — a QUIC household
	// produces QUIC noise — mirroring RecordVersion inheritance; set
	// TransportSet to mix transports on one tap.
	Transport    quicrec.Transport
	TransportSet bool
}

// frame is one synthesized packet awaiting interleave. Frame bytes live
// in a shared arena (start/end offsets) so a capture costs one buffer, not
// one allocation per packet.
type frame struct {
	ts         time.Time
	start, end int
	// seqKey breaks timestamp ties so a direction's segments stay ordered.
	seqKey int
}

// muxer accumulates every conversation's frames in one arena before the
// final time interleave.
type muxer struct {
	arena  *wire.Writer
	frames []frame
	ipID   uint16
	shift  time.Duration // applied to every frame timestamp
}

// add serializes one frame into the arena.
func (m *muxer) add(ts time.Time, key layers.FlowKey, eth layers.Ethernet,
	tcp layers.TCP, payload []byte) error {
	start := m.arena.Len()
	if err := layers.AppendTCPFrame(m.arena, key, eth, tcp, payload, m.ipID); err != nil {
		return err
	}
	m.ipID++
	m.frames = append(m.frames, frame{ts: ts.Add(m.shift), start: start, end: m.arena.Len(), seqKey: len(m.frames)})
	return nil
}

// addUDP serializes one UDP frame into the arena.
func (m *muxer) addUDP(ts time.Time, key layers.FlowKey, eth layers.Ethernet, payload []byte) error {
	start := m.arena.Len()
	if err := layers.AppendUDPFrame(m.arena, key, eth, payload, m.ipID); err != nil {
		return err
	}
	m.ipID++
	m.frames = append(m.frames, frame{ts: ts.Add(m.shift), start: start, end: m.arena.Len(), seqKey: len(m.frames)})
	return nil
}

// writeTo interleaves all frames by timestamp (stable on insertion order
// within a tie) and emits the pcap file.
func (m *muxer) writeTo(w io.Writer) error {
	sort.SliceStable(m.frames, func(i, j int) bool {
		if m.frames[i].ts.Equal(m.frames[j].ts) {
			return m.frames[i].seqKey < m.frames[j].seqKey
		}
		return m.frames[i].ts.Before(m.frames[j].ts)
	})
	pw := pcapio.NewWriter(w)
	raw := m.arena.Bytes()
	for _, f := range m.frames {
		if err := pw.WritePacket(f.ts, raw[f.start:f.end]); err != nil {
			return err
		}
	}
	return nil
}

// addConversation synthesizes one full conversation into the muxer. A
// direction carrying datagram descriptors renders as a QUIC/UDP exchange
// (one frame per datagram, no TCP ceremony); otherwise the byte stream is
// cut into TCP segments with a three-way handshake, both directions' data
// segments and a FIN exchange. finAt is when the FIN exchange starts.
func (m *muxer) addConversation(cl, sv session.DirStream, ep Endpoints,
	mtu int, finAt time.Time, rng *wire.RNG) error {
	if cl.Datagrams != nil {
		return m.addQUICConversation(cl, sv, ep)
	}
	if mtu < 576 {
		return fmt.Errorf("capture: MTU %d too small", mtu)
	}
	mss := mtu - 40 // IPv4 + TCP headers

	c2s := layers.FlowKey{SrcAddr: ep.ClientAddr, DstAddr: ep.ServerAddr,
		SrcPort: ep.ClientPort, DstPort: ep.ServerPort}
	s2c := c2s.Reverse()
	cEth := layers.Ethernet{Src: ep.ClientMAC, Dst: ep.ServerMAC}
	sEth := layers.Ethernet{Src: ep.ServerMAC, Dst: ep.ClientMAC}

	start := streamStart(cl)
	cISN, sISN := uint32(rng.Uint64()), uint32(rng.Uint64())

	// Three-way handshake slightly before the first TLS byte.
	hs := start.Add(-30 * time.Millisecond)
	if err := m.add(hs, c2s, cEth,
		layers.TCP{Seq: cISN, Flags: layers.TCPSyn, Window: 64240}, nil); err != nil {
		return err
	}
	if err := m.add(hs.Add(10*time.Millisecond), s2c, sEth,
		layers.TCP{Seq: sISN, Ack: cISN + 1, Flags: layers.TCPSyn | layers.TCPAck, Window: 65160}, nil); err != nil {
		return err
	}
	if err := m.add(hs.Add(20*time.Millisecond), c2s, cEth,
		layers.TCP{Seq: cISN + 1, Ack: sISN + 1, Flags: layers.TCPAck, Window: 64240}, nil); err != nil {
		return err
	}

	// Data segments for each direction.
	cEnd, err := m.segmentDirection(cl, c2s, cEth, cISN+1, sISN+1, mss, rng)
	if err != nil {
		return err
	}
	sEnd, err := m.segmentDirection(sv, s2c, sEth, sISN+1, cISN+1, mss, rng)
	if err != nil {
		return err
	}

	// FIN exchange after the last data in either direction.
	fin := finAt.Add(50 * time.Millisecond)
	if err := m.add(fin, c2s, cEth,
		layers.TCP{Seq: cEnd, Ack: sEnd, Flags: layers.TCPFin | layers.TCPAck, Window: 64240}, nil); err != nil {
		return err
	}
	return m.add(fin.Add(12*time.Millisecond), s2c, sEth,
		layers.TCP{Seq: sEnd, Ack: cEnd + 1, Flags: layers.TCPFin | layers.TCPAck, Window: 65160}, nil)
}

// addQUICConversation renders a QUIC conversation: exactly one UDP frame
// per datagram descriptor in each direction, timestamped from the
// descriptor itself. QUIC has no transport-layer ceremony on the wire —
// connection open and close are themselves encrypted datagrams.
func (m *muxer) addQUICConversation(cl, sv session.DirStream, ep Endpoints) error {
	c2s := layers.FlowKey{SrcAddr: ep.ClientAddr, DstAddr: ep.ServerAddr,
		SrcPort: ep.ClientPort, DstPort: ep.ServerPort, Proto: layers.IPProtocolUDP}
	s2c := c2s.Reverse()
	cEth := layers.Ethernet{Src: ep.ClientMAC, Dst: ep.ServerMAC}
	sEth := layers.Ethernet{Src: ep.ServerMAC, Dst: ep.ClientMAC}
	if err := m.datagramDirection(cl, c2s, cEth); err != nil {
		return err
	}
	return m.datagramDirection(sv, s2c, sEth)
}

// datagramDirection emits one direction's datagrams as UDP frames.
func (m *muxer) datagramDirection(d session.DirStream, key layers.FlowKey, eth layers.Ethernet) error {
	for _, dg := range d.Datagrams {
		end := dg.Offset + int64(dg.Size)
		if dg.Offset < 0 || end > int64(len(d.Bytes)) {
			return fmt.Errorf("capture: datagram [%d,%d) outside %d-byte stream (lean trace?)",
				dg.Offset, end, len(d.Bytes))
		}
		if err := m.addUDP(dg.Time, key, eth, d.Bytes[dg.Offset:end]); err != nil {
			return err
		}
	}
	return nil
}

// withDefaults resolves the zero values against a trace.
func (o Options) withDefaults(tr *session.Trace) Options {
	if o.MTU == 0 {
		o.MTU = tr.Profile.MTU
	}
	if o.MTU == 0 {
		o.MTU = 1500
	}
	var zero Endpoints
	if o.Endpoints == zero {
		o.Endpoints = DefaultEndpoints()
	}
	return o
}

// arenaFor sizes the shared frame arena for the given stream volume.
func arenaFor(streamBytes, writes int) (*wire.Writer, int) {
	frameEstimate := streamBytes/1400 + writes + 16
	return wire.GetWriter(streamBytes + 64*frameEstimate), frameEstimate
}

// WritePcap renders tr as a pcap stream into w.
func WritePcap(w io.Writer, tr *session.Trace, opts Options) error {
	opts = opts.withDefaults(tr)
	streamBytes := len(tr.ClientToServer.Bytes) + len(tr.ServerToClient.Bytes)
	arena, frameEstimate := arenaFor(streamBytes,
		len(tr.ClientToServer.Writes)+len(tr.ServerToClient.Writes)+
			len(tr.ClientToServer.Datagrams)+len(tr.ServerToClient.Datagrams))
	defer wire.PutWriter(arena)
	m := &muxer{arena: arena, frames: make([]frame, 0, frameEstimate), ipID: 1, shift: opts.TimeOffset}
	rng := wire.NewRNG(opts.Seed + 0x9e37)
	if err := m.addConversation(tr.ClientToServer, tr.ServerToClient,
		opts.Endpoints, opts.MTU, tr.Result.EndedAt, rng); err != nil {
		return err
	}
	return m.writeTo(w)
}

// WritePcapMulti renders the interleaved scenario: tr's conversation plus
// opts.NoiseFlows concurrent bulk-streaming flows spanning the same
// capture window, all interleaved in time order. Noise flows are seeded
// off opts.Seed, so equal options reproduce byte-identical captures.
func WritePcapMulti(w io.Writer, tr *session.Trace, opts MultiOptions) error {
	opts.Options = opts.Options.withDefaults(tr)
	start := streamStart(tr.ClientToServer)
	end := tr.Result.EndedAt

	recVer := opts.RecordVersion
	if !opts.RecordVersionSet {
		recVer = tr.Profile.RecordVersion()
	}

	transport := opts.Transport
	if !opts.TransportSet {
		transport = tr.Transport
	}

	// Synthesize the noise flows first so the arena can be sized for the
	// whole capture.
	noise := make([]noiseFlow, opts.NoiseFlows)
	streamBytes := len(tr.ClientToServer.Bytes) + len(tr.ServerToClient.Bytes)
	writes := len(tr.ClientToServer.Writes) + len(tr.ServerToClient.Writes) +
		len(tr.ClientToServer.Datagrams) + len(tr.ServerToClient.Datagrams)
	for i := range noise {
		seed := opts.Seed ^ uint64(0xbeef+i*7919)
		if transport == quicrec.TransportQUIC {
			noise[i] = synthNoiseFlowQUIC(seed, start, end)
		} else {
			noise[i] = synthNoiseFlow(seed, start, end, recVer)
		}
		streamBytes += len(noise[i].client.Bytes) + len(noise[i].server.Bytes)
		writes += len(noise[i].client.Writes) + len(noise[i].server.Writes) +
			len(noise[i].client.Datagrams) + len(noise[i].server.Datagrams)
	}

	arena, frameEstimate := arenaFor(streamBytes, writes)
	defer wire.PutWriter(arena)
	m := &muxer{arena: arena, frames: make([]frame, 0, frameEstimate), ipID: 1, shift: opts.TimeOffset}
	rng := wire.NewRNG(opts.Seed + 0x9e37)
	if err := m.addConversation(tr.ClientToServer, tr.ServerToClient,
		opts.Endpoints, opts.MTU, end, rng); err != nil {
		return err
	}
	for i := range noise {
		if err := m.addConversation(noise[i].client, noise[i].server,
			noiseEndpoints(opts.Endpoints, i), opts.MTU, noise[i].endedAt, rng.Fork(uint64(i+1))); err != nil {
			return err
		}
	}
	return m.writeTo(w)
}

// noiseFlow is one synthesized background conversation.
type noiseFlow struct {
	client, server session.DirStream
	endedAt        time.Time
}

// synthNoiseFlow builds a bulk-streaming background flow covering
// [start, end]: a TLS handshake, then a request/response loop of small
// client messages answered by multi-hundred-kilobyte media responses
// paced by an emulated wired path — the traffic shape of a second
// (non-interactive) stream sharing the household link. Client requests
// occasionally fall inside a report-length band by accident, so finding
// the interactive flow takes more than spotting any in-band record. The
// flow speaks the requested record generation (a 1.3 tap carries 1.3
// noise), unpadded — padding is the defended client's knob, not the
// bystander's.
func synthNoiseFlow(seed uint64, start, end time.Time, ver tlsrec.RecordVersion) noiseFlow {
	rng := wire.NewRNG(seed)
	suite, recVer := tlsrec.SuiteAESGCM128TLS12, ver.WireVersion()
	if ver == tlsrec.RecordTLS13 {
		suite = tlsrec.Suite13Equivalent(suite)
	}
	cEnc := tlsrec.NewEncryptor(suite, tlsrec.DefaultSplitter, recVer, rng.Fork(1))
	sEnc := tlsrec.NewEncryptor(suite, tlsrec.DefaultSplitter, recVer, nil)
	sEnc.Server = true
	path := netem.NewPath(netem.Profile(netem.MediumWired, netem.TrafficMorning), rng.Fork(2))

	var f noiseFlow
	cBuf := wire.NewWriter(64 << 10)
	sBuf := wire.NewWriter(4 << 20)

	// The flow opens within the first seconds of the capture window.
	t := start.Add(time.Duration(rng.IntRange(200, 4000)) * time.Millisecond)
	f.client.Writes = append(f.client.Writes, session.WriteMark{Offset: 0, Time: t})
	cEnc.HandshakeTranscript(cBuf, t, rng.IntRange(280, 560))
	st := t.Add(path.RTT() / 2)
	f.server.Writes = append(f.server.Writes, session.WriteMark{Offset: 0, Time: st})
	sEnc.HandshakeTranscript(sBuf, st, 3700)

	for t.Before(end) {
		// Client request. Mostly ordinary sizes; occasionally one that
		// lands near the report bands (session tokens, beacons).
		req := rng.IntRange(180, 1400)
		if rng.Bool(0.08) {
			req = rng.IntRange(2000, 3300)
		}
		f.client.Writes = append(f.client.Writes,
			session.WriteMark{Offset: int64(cBuf.Len()), Time: t})
		cEnc.WriteApplicationData(cBuf, t, req)

		// Server response: a media-sized chunk behind HTTP framing (sized
		// on the simulator's schematic media scale, so a noise flow's
		// volume is comparable to the interactive session's).
		respAt := path.Transfer(t, req+60)
		resp := rng.IntRange(30_000, 120_000) + cdn.ResponseOverhead
		f.server.Writes = append(f.server.Writes,
			session.WriteMark{Offset: int64(sBuf.Len()), Time: respAt})
		sEnc.WriteApplicationData(sBuf, respAt, resp)
		done := path.Transfer(respAt, resp)

		// Next request after the player drains some buffer.
		t = done.Add(time.Duration(rng.IntRange(3000, 9000)) * time.Millisecond)
	}
	f.client.Bytes = cBuf.CopyBytes()
	f.server.Bytes = sBuf.CopyBytes()
	f.endedAt = t
	return f
}

// appendNoiseDGs back-fills stream offsets for datagrams just written to
// w and records them on the noise direction.
func appendNoiseDGs(d *session.DirStream, w *wire.Writer, dgs []quicrec.Datagram) {
	off := int64(w.Len())
	for i := len(dgs) - 1; i >= 0; i-- {
		off -= int64(dgs[i].Size)
		dgs[i].Offset = off
	}
	d.Datagrams = append(d.Datagrams, dgs...)
}

// synthNoiseFlowQUIC is synthNoiseFlow's QUIC twin: the same bulk
// request/response shape carried as QUIC datagrams — handshake flights,
// short-header data bursts, download acks. Its request bursts stray into
// the report bands with the same 8% probability, so QUIC noise exerts the
// same false-positive pressure on the burst classifier that TCP noise
// exerts on the record classifier.
func synthNoiseFlowQUIC(seed uint64, start, end time.Time) noiseFlow {
	rng := wire.NewRNG(seed)
	cQ := quicrec.NewConn(quicrec.Params{}, false, rng.Fork(1))
	sQ := quicrec.NewConn(quicrec.Params{}, true, rng.Fork(3))
	path := netem.NewPath(netem.Profile(netem.MediumWired, netem.TrafficMorning), rng.Fork(2))

	var f noiseFlow
	cBuf := wire.NewWriter(64 << 10)
	sBuf := wire.NewWriter(4 << 20)

	t := start.Add(time.Duration(rng.IntRange(200, 4000)) * time.Millisecond)
	f.client.Writes = append(f.client.Writes, session.WriteMark{Offset: 0, Time: t})
	appendNoiseDGs(&f.client, cBuf, cQ.HandshakeTranscript(cBuf, t, rng.IntRange(280, 560)))
	st := t.Add(path.RTT() / 2)
	f.server.Writes = append(f.server.Writes, session.WriteMark{Offset: 0, Time: st})
	appendNoiseDGs(&f.server, sBuf, sQ.HandshakeTranscript(sBuf, st, 3700))

	for t.Before(end) {
		req := rng.IntRange(180, 1400)
		if rng.Bool(0.08) {
			req = rng.IntRange(2000, 3300)
		}
		f.client.Writes = append(f.client.Writes,
			session.WriteMark{Offset: int64(cBuf.Len()), Time: t})
		appendNoiseDGs(&f.client, cBuf, cQ.WriteApplicationData(cBuf, t, req))

		respAt := path.Transfer(t, req+60)
		resp := rng.IntRange(30_000, 120_000) + cdn.ResponseOverhead
		f.server.Writes = append(f.server.Writes,
			session.WriteMark{Offset: int64(sBuf.Len()), Time: respAt})
		dgs := sQ.WriteApplicationData(sBuf, respAt, resp)
		done := path.Transfer(respAt, resp)
		span := done.Sub(respAt)
		for i := range dgs {
			dgs[i].Time = respAt.Add(span * time.Duration(i+1) / time.Duration(len(dgs)))
		}
		appendNoiseDGs(&f.server, sBuf, dgs)
		for i := 9; i < len(dgs); i += 10 {
			ack := cQ.WriteAck(cBuf, dgs[i].Time.Add(path.RTT()/2))
			appendNoiseDGs(&f.client, cBuf, []quicrec.Datagram{ack})
		}

		t = done.Add(time.Duration(rng.IntRange(3000, 9000)) * time.Millisecond)
	}
	f.client.Bytes = cBuf.CopyBytes()
	f.server.Bytes = sBuf.CopyBytes()
	f.endedAt = t
	return f
}

// segmentDirection cuts one direction's byte stream into MSS-bounded
// segments timestamped from the write schedule. Returns the next sequence
// number after the stream.
func (m *muxer) segmentDirection(d session.DirStream, key layers.FlowKey, eth layers.Ethernet,
	isn, peerSeq uint32, mss int, rng *wire.RNG) (uint32, error) {
	stream := d.Bytes
	off := 0
	seq := isn
	for off < len(stream) {
		n := mss
		// Real senders flush on application write boundaries: end the
		// segment early at the next write mark so segment boundaries and
		// timestamps line up with application behaviour.
		ts := d.TimeAt(int64(off))
		if nextOff, ok := nextMark(d, int64(off)); ok && nextOff-int64(off) < int64(n) {
			n = int(nextOff - int64(off))
		}
		if off+n > len(stream) {
			n = len(stream) - off
		}
		// Occasional sub-MSS flush (ack-clocking artefacts).
		if n == mss && rng.Bool(0.02) {
			n = rng.IntRange(mss/2, mss)
		}
		payload := stream[off : off+n]
		flags := layers.TCPAck
		// PSH on write boundaries (the last segment of an application
		// write), approximated by checking whether the next byte starts a
		// new write.
		if nextOff, ok := nextMark(d, int64(off)); !ok || nextOff == int64(off+n) {
			flags |= layers.TCPPsh
		}
		if err := m.add(ts, key, eth, layers.TCP{
			Seq: seq, Ack: peerSeq, Flags: flags, Window: 64240,
		}, payload); err != nil {
			return 0, err
		}
		seq += uint32(n)
		off += n
	}
	return seq, nil
}

// nextMark returns the first write-mark offset strictly greater than off.
func nextMark(d session.DirStream, off int64) (int64, bool) {
	lo, hi := 0, len(d.Writes)
	for lo < hi {
		mid := (lo + hi) / 2
		if d.Writes[mid].Offset <= off {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(d.Writes) {
		return 0, false
	}
	return d.Writes[lo].Offset, true
}

// streamStart returns a direction's earliest write time.
func streamStart(d session.DirStream) time.Time {
	if len(d.Writes) > 0 {
		return d.Writes[0].Time
	}
	return time.Unix(0, 0)
}
