// Package viewer models the study population: the behavioural attributes
// the IITM-Bandersnatch dataset records for each volunteer (age group,
// gender, political alignment, state of mind — the paper's Table I) and a
// trait-conditioned choice model that turns those attributes into decision
// probabilities at each choice point. The model is synthetic but gives the
// dataset the property the paper needs: paths correlate with behavioural
// attributes, so recovering the path leaks information about the viewer.
package viewer

import (
	"fmt"

	"repro/internal/script"
	"repro/internal/wire"
)

// AgeGroup buckets follow the paper's Table I.
type AgeGroup string

// Age groups.
const (
	AgeUnder20 AgeGroup = "<20"
	Age20to25  AgeGroup = "20-25"
	Age25to30  AgeGroup = "25-30"
	AgeOver30  AgeGroup = ">30"
)

// Gender values from Table I.
type Gender string

// Genders.
const (
	GenderMale        Gender = "male"
	GenderFemale      Gender = "female"
	GenderUndisclosed Gender = "undisclosed"
)

// PoliticalAlignment values from Table I.
type PoliticalAlignment string

// Political alignments.
const (
	PoliticsLiberal     PoliticalAlignment = "liberal"
	PoliticsCentrist    PoliticalAlignment = "centrist"
	PoliticsCommunist   PoliticalAlignment = "communist"
	PoliticsUndisclosed PoliticalAlignment = "undisclosed"
)

// StateOfMind values from Table I.
type StateOfMind string

// States of mind.
const (
	MindHappy       StateOfMind = "happy"
	MindStressed    StateOfMind = "stressed"
	MindSad         StateOfMind = "sad"
	MindUndisclosed StateOfMind = "undisclosed"
)

// Enumerations of each behavioural axis, for dataset summaries.
var (
	AllAgeGroups = []AgeGroup{AgeUnder20, Age20to25, Age25to30, AgeOver30}
	AllGenders   = []Gender{GenderMale, GenderFemale, GenderUndisclosed}
	AllPolitics  = []PoliticalAlignment{PoliticsLiberal, PoliticsCentrist,
		PoliticsCommunist, PoliticsUndisclosed}
	AllMinds = []StateOfMind{MindHappy, MindStressed, MindSad, MindUndisclosed}
)

// Viewer is one study participant.
type Viewer struct {
	ID       string
	Age      AgeGroup
	Gender   Gender
	Politics PoliticalAlignment
	Mind     StateOfMind
	// Decisiveness in [0,1] scales how quickly the viewer answers choice
	// questions within the ten-second window; indecisive viewers also let
	// the timer expire (auto-default) more often.
	Decisiveness float64
}

// SamplePopulation draws n viewers with realistic attribute marginals.
func SamplePopulation(n int, rng *wire.RNG) []Viewer {
	out := make([]Viewer, n)
	for i := range out {
		out[i] = Viewer{
			ID:           fmt.Sprintf("viewer-%03d", i+1),
			Age:          AllAgeGroups[rng.Choice([]float64{0.15, 0.35, 0.3, 0.2})],
			Gender:       AllGenders[rng.Choice([]float64{0.48, 0.42, 0.10})],
			Politics:     AllPolitics[rng.Choice([]float64{0.3, 0.25, 0.15, 0.3})],
			Mind:         AllMinds[rng.Choice([]float64{0.35, 0.3, 0.15, 0.2})],
			Decisiveness: clamp01(rng.Normal(0.6, 0.2)),
		}
	}
	return out
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// DefaultProbability returns the probability that v takes the default
// branch at choice c. The mapping is the synthetic ground truth linking
// behaviour to choices: e.g. stressed viewers skew toward the
// anxiety-default (therapist) branch, politically aligned viewers pick
// the matching pamphlet, and high violence-affinity correlates with the
// aggressive alternative at violence-tagged choices.
func DefaultProbability(v Viewer, c script.Choice) float64 {
	p := 0.62 // base rate: defaults win more often (prefetch bias + timer expiry)
	switch c.Trait {
	case script.TraitFood, script.TraitMusic:
		// Benign taste choices: nearly uniform with mild default bias.
		p = 0.55
	case script.TraitAnxiety:
		switch v.Mind {
		case MindStressed:
			p += 0.18
		case MindSad:
			p += 0.08
		case MindHappy:
			p -= 0.10
		}
	case script.TraitViolence:
		// The default branches at violence choices are the non-violent
		// options in the case-study graph.
		switch v.Mind {
		case MindStressed:
			p -= 0.15
		case MindHappy:
			p += 0.10
		}
		if v.Age == AgeUnder20 {
			p -= 0.08
		}
	case script.TraitPolitics:
		// The default at the politics choice is the collectivist pamphlet.
		switch v.Politics {
		case PoliticsCommunist:
			p += 0.25
		case PoliticsLiberal:
			p -= 0.05
		case PoliticsCentrist:
			p -= 0.12
		}
	case script.TraitCuriosity:
		if v.Age == AgeUnder20 || v.Age == Age20to25 {
			p -= 0.10
		}
	}
	// Indecisive viewers ride the timer into the default more often.
	p += (1 - v.Decisiveness) * 0.1
	return clamp01n(p, 0.05, 0.95)
}

func clamp01n(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// DecisionDelayFraction returns where in the choice window the viewer
// commits, as a fraction in [0.1, 1.0] of the window; 1.0 means the timer
// expired (auto-default).
func DecisionDelayFraction(v Viewer, rng *wire.RNG) float64 {
	if rng.Bool((1 - v.Decisiveness) * 0.3) {
		return 1.0 // let the timer expire
	}
	f := rng.Normal(0.45+0.35*(1-v.Decisiveness), 0.15)
	return clamp01n(f, 0.1, 0.99)
}

// Decide rolls v's decision at choice c: returns true for the default
// branch, plus the fraction of the window consumed.
func Decide(v Viewer, c script.Choice, rng *wire.RNG) (tookDefault bool, delayFrac float64) {
	delayFrac = DecisionDelayFraction(v, rng)
	if delayFrac >= 1.0 {
		return true, 1.0 // timer expiry always yields the default
	}
	return rng.Bool(DefaultProbability(v, c)), delayFrac
}

// DecideWalk rolls a full decision vector for a walk through g.
func DecideWalk(v Viewer, g *script.Graph, maxChoices int, rng *wire.RNG) (script.Path, error) {
	decisions := make([]bool, 0, maxChoices)
	// Walk interactively: at each choice point roll a decision.
	cur := g.Start
	for len(decisions) <= maxChoices {
		s, ok := g.Segment(cur)
		if !ok {
			return script.Path{}, fmt.Errorf("viewer: walk reached missing segment %q", cur)
		}
		if s.Ending {
			break
		}
		if s.Choice == nil {
			cur = s.Next
			continue
		}
		d, _ := Decide(v, *s.Choice, rng)
		decisions = append(decisions, d)
		if d {
			cur = s.Choice.Default
		} else {
			cur = s.Choice.Alternative
		}
	}
	return g.Walk(decisions)
}
