package viewer

import (
	"testing"

	"repro/internal/script"
	"repro/internal/wire"
)

func TestSamplePopulationSize(t *testing.T) {
	pop := SamplePopulation(100, wire.NewRNG(1))
	if len(pop) != 100 {
		t.Fatalf("population = %d", len(pop))
	}
	ids := map[string]bool{}
	for _, v := range pop {
		if ids[v.ID] {
			t.Errorf("duplicate viewer ID %s", v.ID)
		}
		ids[v.ID] = true
		if v.Decisiveness < 0 || v.Decisiveness > 1 {
			t.Errorf("%s decisiveness %v out of [0,1]", v.ID, v.Decisiveness)
		}
	}
}

func TestSamplePopulationCoversAxes(t *testing.T) {
	pop := SamplePopulation(200, wire.NewRNG(2))
	ages := map[AgeGroup]int{}
	genders := map[Gender]int{}
	politics := map[PoliticalAlignment]int{}
	minds := map[StateOfMind]int{}
	for _, v := range pop {
		ages[v.Age]++
		genders[v.Gender]++
		politics[v.Politics]++
		minds[v.Mind]++
	}
	if len(ages) != len(AllAgeGroups) {
		t.Errorf("age groups covered: %d", len(ages))
	}
	if len(genders) != len(AllGenders) {
		t.Errorf("genders covered: %d", len(genders))
	}
	if len(politics) != len(AllPolitics) {
		t.Errorf("political alignments covered: %d", len(politics))
	}
	if len(minds) != len(AllMinds) {
		t.Errorf("states of mind covered: %d", len(minds))
	}
}

func TestSamplePopulationDeterministic(t *testing.T) {
	a := SamplePopulation(50, wire.NewRNG(7))
	b := SamplePopulation(50, wire.NewRNG(7))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("viewer %d differs across identical seeds", i)
		}
	}
}

func TestDefaultProbabilityBounded(t *testing.T) {
	g := script.Bandersnatch()
	pop := SamplePopulation(100, wire.NewRNG(3))
	for _, cp := range g.ChoicePoints() {
		for _, v := range pop {
			p := DefaultProbability(v, *cp.Choice)
			if p < 0.05 || p > 0.95 {
				t.Fatalf("P(default) = %v for %s at %s", p, v.ID, cp.ID)
			}
		}
	}
}

func TestPoliticsInfluencesPoliticalChoice(t *testing.T) {
	g := script.Bandersnatch()
	var politicalChoice *script.Choice
	for _, cp := range g.ChoicePoints() {
		if cp.Choice.Trait == script.TraitPolitics {
			politicalChoice = cp.Choice
			break
		}
	}
	if politicalChoice == nil {
		t.Fatal("no politics-tagged choice in graph")
	}
	base := Viewer{Decisiveness: 0.6}
	communist, centrist := base, base
	communist.Politics = PoliticsCommunist
	centrist.Politics = PoliticsCentrist
	if DefaultProbability(communist, *politicalChoice) <= DefaultProbability(centrist, *politicalChoice) {
		t.Error("political alignment does not shift the politics choice")
	}
}

func TestMindInfluencesAnxietyChoice(t *testing.T) {
	c := script.Choice{Trait: script.TraitAnxiety}
	stressed := Viewer{Mind: MindStressed, Decisiveness: 0.6}
	happy := Viewer{Mind: MindHappy, Decisiveness: 0.6}
	if DefaultProbability(stressed, c) <= DefaultProbability(happy, c) {
		t.Error("state of mind does not shift the anxiety choice")
	}
}

func TestDecisionDelayBounds(t *testing.T) {
	rng := wire.NewRNG(11)
	v := Viewer{Decisiveness: 0.5}
	sawExpiry := false
	for i := 0; i < 1000; i++ {
		f := DecisionDelayFraction(v, rng)
		if f < 0.1 || f > 1.0 {
			t.Fatalf("delay fraction %v out of bounds", f)
		}
		if f == 1.0 {
			sawExpiry = true
		}
	}
	if !sawExpiry {
		t.Error("timer expiry never sampled for a middling viewer")
	}
}

func TestTimerExpiryYieldsDefault(t *testing.T) {
	// A maximally indecisive viewer expires often; every expiry must
	// produce the default branch.
	rng := wire.NewRNG(13)
	v := Viewer{Decisiveness: 0}
	c := script.Choice{Trait: script.TraitViolence}
	for i := 0; i < 500; i++ {
		tookDefault, frac := Decide(v, c, rng)
		if frac >= 1.0 && !tookDefault {
			t.Fatal("timer expiry took the alternative branch")
		}
	}
}

func TestDecideWalkReachesEnding(t *testing.T) {
	g := script.Bandersnatch()
	rng := wire.NewRNG(17)
	pop := SamplePopulation(30, rng.Fork(1))
	for _, v := range pop {
		p, err := DecideWalk(v, g, script.BandersnatchMaxChoices, rng.Fork(uint64(len(v.ID))))
		if err != nil {
			t.Fatal(err)
		}
		last, _ := g.Segment(p.Segments[len(p.Segments)-1])
		if !last.Ending {
			t.Fatalf("%s walk stopped at %s", v.ID, last.ID)
		}
		if len(p.Decisions) == 0 {
			t.Fatalf("%s made no decisions", v.ID)
		}
	}
}

func TestPathsVaryAcrossPopulation(t *testing.T) {
	g := script.Bandersnatch()
	rng := wire.NewRNG(19)
	pop := SamplePopulation(40, rng.Fork(1))
	paths := map[string]int{}
	for i, v := range pop {
		p, err := DecideWalk(v, g, script.BandersnatchMaxChoices, rng.Fork(uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		key := ""
		for _, d := range p.Decisions {
			if d {
				key += "D"
			} else {
				key += "A"
			}
		}
		paths[key]++
	}
	if len(paths) < 5 {
		t.Errorf("only %d distinct paths over 40 viewers; choice model too rigid", len(paths))
	}
}
