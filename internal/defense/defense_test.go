package defense

import (
	"testing"
	"time"

	"repro/internal/session"
	"repro/internal/tlsrec"
)

func TestPadReportsEqualizes(t *testing.T) {
	tr := PadReports(4096)
	a := tr(session.LabelType1, 2188)
	b := tr(session.LabelType2, 2980)
	if len(a) != 1 || len(b) != 1 || a[0] != b[0] || a[0] != 4096 {
		t.Errorf("padded sizes = %v, %v, want both [4096]", a, b)
	}
	// Non-report traffic untouched.
	if got := tr(session.LabelRequest, 420); got[0] != 420 {
		t.Errorf("request padded: %v", got)
	}
	// Oversize inputs pass through unshrunk.
	if got := tr(session.LabelType2, 5000); got[0] != 5000 {
		t.Errorf("oversize report shrunk: %v", got)
	}
}

func TestSplitReportsChunks(t *testing.T) {
	tr := SplitReports(1000)
	got := tr(session.LabelType2, 2980)
	if len(got) != 3 || got[0] != 1000 || got[1] != 1000 || got[2] != 980 {
		t.Errorf("split = %v", got)
	}
	var sum int
	for _, n := range got {
		sum += n
	}
	if sum != 2980 {
		t.Errorf("split loses bytes: %d", sum)
	}
	if got := tr(session.LabelTelemetry, 4600); len(got) != 1 {
		t.Errorf("telemetry split: %v", got)
	}
}

func TestSplitReportsDegenerate(t *testing.T) {
	if got := SplitReports(0)(session.LabelType1, 100); got[0] != 100 {
		t.Errorf("zero chunk size mangled write: %v", got)
	}
}

func TestCompressReportsShrinksAndJitters(t *testing.T) {
	tr := CompressReports(55, 40)
	a := tr(session.LabelType1, 2188)[0]
	if a >= 2188 || a < 32 {
		t.Errorf("compressed size = %d", a)
	}
	// Different inputs with the same label produce non-linear outputs.
	b := tr(session.LabelType1, 2190)[0]
	if a == b && tr(session.LabelType1, 2192)[0] == a {
		t.Error("compression jitter absent")
	}
	// Determinism: same input, same output.
	if tr(session.LabelType1, 2188)[0] != a {
		t.Error("compression not deterministic")
	}
}

func TestChainComposes(t *testing.T) {
	tr := Chain(PadReports(4000), SplitReports(1500))
	got := tr(session.LabelType1, 2188)
	if len(got) != 3 { // 1500+1500+1000
		t.Fatalf("chained = %v", got)
	}
	var sum int
	for _, n := range got {
		sum += n
	}
	if sum != 4000 {
		t.Errorf("chained total = %d", sum)
	}
}

func mkClientRecs(times ...int64) []tlsrec.Record {
	var out []tlsrec.Record
	for _, s := range times {
		out = append(out, tlsrec.Record{
			Type: tlsrec.ContentApplicationData,
			Time: time.Unix(s, 0), Length: 1000,
		})
	}
	return out
}

func TestDetectEventsQuietRule(t *testing.T) {
	a := &TimingAttack{QuietBefore: 3 * time.Second}
	// Requests every second, then a 9s pause before a report.
	client := mkClientRecs(0, 1, 2, 3, 12, 13, 14)
	events := a.DetectEvents(client, nil)
	if len(events) != 1 {
		t.Fatalf("events = %+v", events)
	}
	if events[0].At.Unix() != 12 {
		t.Errorf("event at %v", events[0].At)
	}
}

func TestDetectEventsCoalesces(t *testing.T) {
	a := &TimingAttack{QuietBefore: 3 * time.Second}
	// A type-1 at t=10 and its type-2 at t=14 are one choice point.
	client := mkClientRecs(0, 1, 10, 14, 15, 16)
	events := a.DetectEvents(client, nil)
	if len(events) != 1 {
		t.Fatalf("events = %+v, want coalesced single event", events)
	}
}

func TestDownlinkGapMeasurement(t *testing.T) {
	a := &TimingAttack{QuietBefore: 3 * time.Second}
	client := mkClientRecs(0, 10)
	server := []tlsrec.Record{
		{Type: tlsrec.ContentApplicationData, Time: time.Unix(10, 0)},
		{Type: tlsrec.ContentApplicationData, Time: time.Unix(17, 0)}, // 7s gap
		{Type: tlsrec.ContentApplicationData, Time: time.Unix(18, 0)},
	}
	events := a.DetectEvents(client, server)
	if len(events) != 1 {
		t.Fatalf("events = %+v", events)
	}
	if events[0].DownlinkGap != 7*time.Second {
		t.Errorf("gap = %v, want 7s", events[0].DownlinkGap)
	}
}

func TestCalibrateAndClassifyByGap(t *testing.T) {
	a := &TimingAttack{Feature: FeatureGap}
	split := a.Calibrate(
		[]time.Duration{time.Second, 2 * time.Second},
		[]time.Duration{8 * time.Second, 10 * time.Second},
	)
	if split <= 2*time.Second || split >= 8*time.Second {
		t.Errorf("split = %v", split)
	}
	got := a.ClassifyEvents([]TimingEvent{
		{DownlinkGap: time.Second},
		{DownlinkGap: 9 * time.Second},
	})
	if !got[0] || got[1] {
		t.Errorf("classified = %v, want [true false]", got)
	}
}

func TestCalibrateAndClassifyByVolume(t *testing.T) {
	a := &TimingAttack{Feature: FeatureVolume}
	split := a.CalibrateVolume([]int{1_000_000, 1_200_000}, []int{2_400_000, 2_600_000})
	if split <= 1_200_000 || split >= 2_400_000 {
		t.Errorf("split = %d", split)
	}
	got := a.ClassifyEvents([]TimingEvent{
		{DownlinkBytes: 900_000},
		{DownlinkBytes: 2_500_000},
	})
	if !got[0] || got[1] {
		t.Errorf("classified = %v, want [true false]", got)
	}
}

func TestClassifyByPairs(t *testing.T) {
	a := &TimingAttack{} // FeaturePairs is the default
	// One pair is the question's own burst (default choice); two mark a
	// decision pair on top of it (non-default).
	got := a.ClassifyEvents([]TimingEvent{
		{PairCount: 1},
		{PairCount: 2},
	})
	if !got[0] || got[1] {
		t.Errorf("classified = %v, want [true false]", got)
	}
}

func TestClassifyUncalibratedFallsBackToDefault(t *testing.T) {
	a := &TimingAttack{Feature: FeatureGap}
	got := a.ClassifyEvents([]TimingEvent{{DownlinkGap: time.Hour}})
	if !got[0] {
		t.Error("uncalibrated gap attack should fall back to all-default")
	}
}

func TestPairCountDetection(t *testing.T) {
	a := &TimingAttack{QuietBefore: 3 * time.Second}
	// Event at t=10 (after 10s quiet): the question's report + prefetch
	// request 5ms apart are pair one; the type-2 + refetch at t=15 are
	// pair two; two merely-close records 20ms apart (telemetry drifting
	// over a chunk request) must not count.
	mk := func(sec int64, ns int64) tlsrec.Record {
		return tlsrec.Record{Type: tlsrec.ContentApplicationData,
			Time: time.Unix(sec, ns), Length: 1000}
	}
	client := []tlsrec.Record{
		mk(0, 0),
		mk(10, 0), mk(10, 5e6), // question: report + same-instant prefetch request
		mk(13, 0),              // prefetch request during deliberation
		mk(15, 0), mk(15, 5e6), // decision pair
		mk(17, 0), mk(17, 20e6), // close but not a pair
	}
	events := a.DetectEvents(client, nil)
	if len(events) != 1 {
		t.Fatalf("events = %+v", events)
	}
	if events[0].PairCount != 2 {
		t.Errorf("PairCount = %d, want 2 (question burst + decision pair)", events[0].PairCount)
	}
}

func TestMatchEventsAlignment(t *testing.T) {
	events := []TimingEvent{
		{At: time.Unix(10, 0)},
		{At: time.Unix(50, 0)},
		{At: time.Unix(90, 0)},
	}
	truth := []time.Time{time.Unix(11, 0), time.Unix(52, 0), time.Unix(200, 0)}
	m := MatchEvents(events, truth, 6*time.Second)
	if m[0] != 0 || m[1] != 1 || m[2] != -1 {
		t.Errorf("matches = %v, want [0 1 -1]", m)
	}
}

func TestMatchEventsNoDoubleUse(t *testing.T) {
	events := []TimingEvent{{At: time.Unix(10, 0)}}
	truth := []time.Time{time.Unix(9, 0), time.Unix(11, 0)}
	m := MatchEvents(events, truth, 6*time.Second)
	used := 0
	for _, j := range m {
		if j == 0 {
			used++
		}
	}
	if used != 1 {
		t.Errorf("event matched %d truth entries, want 1", used)
	}
}
