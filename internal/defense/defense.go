// Package defense implements the countermeasures the paper's §VI sketches
// against the record-length side-channel — padding the state-report JSON
// to a constant size, splitting it into small indistinguishable records,
// and compressing it — together with the residual *timing* side-channel
// the paper warns about: even with record lengths neutralized, the
// check-pointed streaming pattern (playback pause at the question, a
// client report, and the prefetch-cancel stall on non-default choices)
// remains visible in packet timing.
package defense

import (
	"sort"
	"time"

	"repro/internal/session"
	"repro/internal/tlsrec"
)

// Transform is a session.Config.Defense function.
type Transform func(label session.WriteLabel, plain int) []int

// PadReports pads type-1 and type-2 reports (and nothing else) up to a
// constant plaintext size, erasing the length difference between them.
func PadReports(target int) Transform {
	return func(label session.WriteLabel, plain int) []int {
		if label != session.LabelType1 && label != session.LabelType2 {
			return []int{plain}
		}
		if plain < target {
			plain = target
		}
		return []int{plain}
	}
}

// SplitReports splits report writes into records of at most chunk bytes,
// so their records blend with ordinary request traffic.
func SplitReports(chunk int) Transform {
	return func(label session.WriteLabel, plain int) []int {
		if label != session.LabelType1 && label != session.LabelType2 {
			return []int{plain}
		}
		if chunk <= 0 {
			return []int{plain}
		}
		var out []int
		for plain > 0 {
			n := chunk
			if n > plain {
				n = plain
			}
			out = append(out, n)
			plain -= n
		}
		if len(out) == 0 {
			out = []int{0}
		}
		return out
	}
}

// CompressReports models gzip of the JSON body: the high-entropy session
// state compresses poorly but the structural boilerplate collapses, and
// the output length becomes noisy. ratioPct is the residual size as a
// percentage (e.g. 55 keeps 55% of the bytes); jitter adds size noise so
// equal inputs stop producing equal outputs. A deterministic hash of the
// plain size drives the jitter so sessions stay reproducible.
func CompressReports(ratioPct, jitter int) Transform {
	return func(label session.WriteLabel, plain int) []int {
		if label != session.LabelType1 && label != session.LabelType2 {
			return []int{plain}
		}
		out := plain * ratioPct / 100
		if jitter > 0 {
			h := uint64(plain)*0x9e3779b97f4a7c15 + 0x243f6a8885a308d3
			h ^= h >> 29
			out += int(h % uint64(2*jitter+1))
			out -= jitter
		}
		if out < 32 {
			out = 32
		}
		return []int{out}
	}
}

// Chain composes transforms left to right (the output sizes of one feed
// the next; only the first stage sees the true label semantics, later
// stages apply to every produced size).
func Chain(ts ...Transform) Transform {
	return func(label session.WriteLabel, plain int) []int {
		sizes := []int{plain}
		for _, t := range ts {
			var next []int
			for _, n := range sizes {
				next = append(next, t(label, n)...)
			}
			sizes = next
		}
		return sizes
	}
}

// --- The residual timing side-channel ----------------------------------------

// TimingEvent is one suspected choice point recovered from timing alone.
type TimingEvent struct {
	// At is the time of the client record that triggered the detection.
	At time.Time
	// DownlinkGap is the longest server-silence within the horizon after
	// the event.
	DownlinkGap time.Duration
	// DownlinkBytes is the server volume delivered within the horizon
	// after the event. A non-default choice discards the prefetched
	// default branch and refetches the alternative, so its horizon
	// carries the discarded prefix *plus* the alternative segment —
	// measurably more than the default case.
	DownlinkBytes int
	// PairCount counts back-to-back client record pairs (sub-50ms apart)
	// in the window after the event, excluding the burst at the event
	// itself. When the viewer commits a non-default choice the browser
	// posts the type-2 report and the player fires the first alternative
	// chunk request in the same handler turn — two client records within
	// a round-trip of each other — whereas a default decision produces a
	// lone chunk request. The pair survives any length padding.
	PairCount int
}

// TimingAttack detects choice points from traffic timing and volume
// without using record lengths — the residual channel the paper's §VI
// warns about after the JSON is padded, split or compressed:
//
//   - At a choice question, playback is check-pointed: the player's
//     request pipeline goes quiet during segment playout, then a client
//     application record (the state report) appears after a long client
//     silence.
//   - On a non-default choice the prefetched default branch is discarded
//     and the alternative is fetched from scratch, so the downlink volume
//     in the window after the question carries the discarded prefix plus
//     the alternative segment — systematically more than the default
//     case, whatever the record lengths look like.
//
// The detector flags client records preceded by client-side quiet time
// of at least QuietBefore, then measures the downlink gap and volume in
// the following horizon; volumes above the learned split indicate
// non-default choices.
type TimingAttack struct {
	// QuietBefore is the minimum client-silence before a record to flag
	// it as a potential state report (default 3s: ordinary chunk requests
	// are rarely that far apart while streaming).
	QuietBefore time.Duration
	// GapSplit separates default from non-default downlink gaps (legacy
	// feature, kept for the prefetch ablation).
	GapSplit time.Duration
	// VolumeSplit separates default from non-default downlink volumes;
	// set by CalibrateVolume.
	VolumeSplit int
	// Feature selects the classification feature (default FeaturePairs,
	// which needs no calibration).
	Feature Feature
}

// Feature names the timing-attack classification feature.
type Feature int

// Features.
const (
	// FeaturePairs classifies on the decision-time client record pair —
	// the most robust feature, needing no calibration.
	FeaturePairs Feature = iota
	// FeatureVolume classifies on calibrated post-event downlink volume
	// (requires prefetch to create the redundant download).
	FeatureVolume
	// FeatureGap classifies on calibrated downlink-gap length.
	FeatureGap
)

// DetectionHorizon bounds the post-event window over which gap and
// volume are measured: the ten-second decision window plus restart slack.
const DetectionHorizon = 15 * time.Second

// DetectEvents flags suspected choice points in an observation's records.
func (a *TimingAttack) DetectEvents(client, server []tlsrec.Record) []TimingEvent {
	quiet := a.QuietBefore
	if quiet <= 0 {
		quiet = 3 * time.Second
	}
	// Flag every record that follows a client silence of at least quiet
	// — each is the potential start of a choice event.
	var starts []time.Time
	var lastClient time.Time
	for _, r := range client {
		if r.Type != tlsrec.ContentApplicationData {
			continue
		}
		if !lastClient.IsZero() && r.Time.Sub(lastClient) >= quiet {
			starts = append(starts, r.Time)
		}
		lastClient = r.Time
	}
	var events []TimingEvent
	for _, t := range starts {
		events = append(events, TimingEvent{
			At:            t,
			DownlinkGap:   downlinkGapAfter(server, t),
			DownlinkBytes: downlinkBytesAfter(server, t),
			PairCount:     pairCountAfter(client, t),
		})
	}
	return coalesceEvents(events, 5*time.Second)
}

// pairCountAfter counts near-simultaneous client record pairs in the
// window starting at t, the event's own burst included: the question's
// report and the prefetch request it triggers leave one event-loop turn
// back-to-back (pair one), and on a non-default choice the type-2
// report and refetch do the same at decision time (pair two). A default
// choice therefore shows one pair in its window and a non-default two —
// while a lone periodic telemetry upload, even one that opens the
// detection by breaking the pre-question quiet, pairs with nothing. The
// pair gap is tight: unrelated writes that merely land close —
// telemetry drifting across a chunk request — are tens of milliseconds
// apart.
func pairCountAfter(client []tlsrec.Record, t time.Time) int {
	const (
		pairGap    = 10 * time.Millisecond
		windowSpan = 12 * time.Second
	)
	var pairs int
	var prev time.Time
	for _, r := range client {
		if r.Type != tlsrec.ContentApplicationData {
			continue
		}
		d := r.Time.Sub(t)
		if d < 0 {
			continue
		}
		if d > windowSpan {
			break
		}
		if !prev.IsZero() && r.Time.Sub(prev) <= pairGap {
			pairs++
			prev = time.Time{} // a record belongs to at most one pair
			continue
		}
		prev = r.Time
	}
	return pairs
}

// coalesceEvents merges detections within window of each other (a type-1
// followed by a type-2 at the same question is one choice point; the
// longer gap and larger volume win).
func coalesceEvents(events []TimingEvent, window time.Duration) []TimingEvent {
	if len(events) == 0 {
		return events
	}
	out := []TimingEvent{events[0]}
	for _, e := range events[1:] {
		last := &out[len(out)-1]
		if e.At.Sub(last.At) <= window {
			if e.DownlinkGap > last.DownlinkGap {
				last.DownlinkGap = e.DownlinkGap
			}
			if e.DownlinkBytes > last.DownlinkBytes {
				last.DownlinkBytes = e.DownlinkBytes
			}
			if e.PairCount > last.PairCount {
				last.PairCount = e.PairCount
			}
			continue
		}
		out = append(out, e)
	}
	return out
}

// downlinkGapAfter returns the longest server-silence starting within the
// horizon after t. Trailing silence up to the horizon counts as a gap, so
// a downlink that goes quiet and stays quiet is measured rather than
// ignored.
func downlinkGapAfter(server []tlsrec.Record, t time.Time) time.Duration {
	// server records are time-ordered; find the first at/after t.
	i := sort.Search(len(server), func(i int) bool {
		return !server[i].Time.Before(t)
	})
	var longest time.Duration
	prev := t
	for ; i < len(server); i++ {
		st := server[i].Time
		if st.Sub(t) > DetectionHorizon {
			prev = t.Add(DetectionHorizon) // horizon reached with traffic beyond it
			break
		}
		if gap := st.Sub(prev); gap > longest {
			longest = gap
		}
		prev = st
	}
	// Trailing silence.
	if tail := t.Add(DetectionHorizon).Sub(prev); tail > longest {
		longest = tail
	}
	return longest
}

// downlinkBytesAfter totals the server record payload delivered within
// the horizon after t.
func downlinkBytesAfter(server []tlsrec.Record, t time.Time) int {
	i := sort.Search(len(server), func(i int) bool {
		return !server[i].Time.Before(t)
	})
	var total int
	for ; i < len(server); i++ {
		if server[i].Time.Sub(t) > DetectionHorizon {
			break
		}
		total += server[i].Length
	}
	return total
}

// Calibrate learns the gap split point from labeled examples: gaps for
// default and non-default choices. It sets GapSplit to the midpoint of
// the class means and returns it.
func (a *TimingAttack) Calibrate(defaultGaps, nonDefaultGaps []time.Duration) time.Duration {
	mean := func(ds []time.Duration) float64 {
		if len(ds) == 0 {
			return 0
		}
		var s float64
		for _, d := range ds {
			s += float64(d)
		}
		return s / float64(len(ds))
	}
	split := (mean(defaultGaps) + mean(nonDefaultGaps)) / 2
	a.GapSplit = time.Duration(split)
	return a.GapSplit
}

// CalibrateVolume learns the volume split from labeled horizon volumes
// for default and non-default choices, setting VolumeSplit to the
// midpoint of the class means.
func (a *TimingAttack) CalibrateVolume(defaultVols, nonDefaultVols []int) int {
	mean := func(vs []int) float64 {
		if len(vs) == 0 {
			return 0
		}
		var s float64
		for _, v := range vs {
			s += float64(v)
		}
		return s / float64(len(vs))
	}
	a.VolumeSplit = int((mean(defaultVols) + mean(nonDefaultVols)) / 2)
	return a.VolumeSplit
}

// ClassifyEvents converts detected events into a decision vector (true =
// default) using the configured feature. The default pair feature needs
// no calibration; volume and gap fall back to all-default when their
// split was never calibrated.
func (a *TimingAttack) ClassifyEvents(events []TimingEvent) []bool {
	out := make([]bool, len(events))
	for i, e := range events {
		switch a.Feature {
		case FeatureVolume:
			out[i] = a.VolumeSplit == 0 || e.DownlinkBytes <= a.VolumeSplit
		case FeatureGap:
			out[i] = a.GapSplit == 0 || e.DownlinkGap <= a.GapSplit
		default: // FeaturePairs
			// One pair is the question's own report+prefetch burst; a
			// second marks the type-2+refetch at a non-default decision.
			out[i] = e.PairCount < 2
		}
	}
	return out
}

// MatchEvents aligns detected events to ground-truth question times: for
// each truth time the nearest event within tolerance is matched (greedy,
// in time order). It returns the matched event index per truth entry
// (-1 = missed).
func MatchEvents(events []TimingEvent, truthTimes []time.Time, tolerance time.Duration) []int {
	out := make([]int, len(truthTimes))
	used := make([]bool, len(events))
	for i, tt := range truthTimes {
		out[i] = -1
		bestD := tolerance
		for j, e := range events {
			if used[j] {
				continue
			}
			d := e.At.Sub(tt)
			if d < 0 {
				d = -d
			}
			if d <= bestD {
				out[i], bestD = j, d
			}
		}
		if out[i] >= 0 {
			used[out[i]] = true
		}
	}
	return out
}
