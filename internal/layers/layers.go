// Package layers implements encoding and decoding for the small protocol
// stack the White Mirror pipeline needs: Ethernet II, IPv4, IPv6 and TCP.
// It is a deliberately minimal, allocation-light re-implementation of the
// corresponding gopacket layers, built on the stdlib only so that capture
// files written by the simulator are genuine wire-format frames and the
// attack consumes them through the same parsing steps it would apply to a
// real tcpdump capture.
package layers

import (
	"errors"
	"fmt"
	"net/netip"

	"repro/internal/wire"
)

// EtherType identifies the payload protocol of an Ethernet frame.
type EtherType uint16

// EtherTypes understood by this package.
const (
	EtherTypeIPv4 EtherType = 0x0800
	EtherTypeIPv6 EtherType = 0x86dd
)

// IPProtocol identifies the payload protocol of an IP packet.
type IPProtocol uint8

// IP protocol numbers understood by this package.
const (
	IPProtocolTCP IPProtocol = 6
	IPProtocolUDP IPProtocol = 17
)

// Common decode errors.
var (
	ErrTruncated   = errors.New("layers: truncated packet")
	ErrBadVersion  = errors.New("layers: bad IP version")
	ErrUnsupported = errors.New("layers: unsupported protocol")
)

// MAC is a 6-byte Ethernet hardware address.
type MAC [6]byte

// String renders the address in the canonical colon-separated form.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x",
		m[0], m[1], m[2], m[3], m[4], m[5])
}

// Ethernet is an Ethernet II header.
type Ethernet struct {
	Dst, Src  MAC
	EtherType EtherType
}

// ethernetHeaderLen is the fixed Ethernet II header size.
const ethernetHeaderLen = 14

// AppendTo serializes the header in front of payload semantics: callers
// append the header first, then the payload bytes.
func (e *Ethernet) AppendTo(w *wire.Writer) {
	w.Write(e.Dst[:])
	w.Write(e.Src[:])
	w.U16(uint16(e.EtherType))
}

// DecodeEthernet parses an Ethernet II header and returns it with the
// remaining payload bytes.
func DecodeEthernet(data []byte) (Ethernet, []byte, error) {
	if len(data) < ethernetHeaderLen {
		return Ethernet{}, nil, fmt.Errorf("%w: ethernet header needs %d bytes, have %d",
			ErrTruncated, ethernetHeaderLen, len(data))
	}
	var e Ethernet
	copy(e.Dst[:], data[0:6])
	copy(e.Src[:], data[6:12])
	e.EtherType = EtherType(uint16(data[12])<<8 | uint16(data[13]))
	return e, data[ethernetHeaderLen:], nil
}

// IPv4 is an IPv4 header without options (IHL is always 5 on encode;
// options are skipped on decode).
type IPv4 struct {
	TOS      uint8
	ID       uint16
	Flags    uint8 // upper 3 bits of the fragment field
	FragOff  uint16
	TTL      uint8
	Protocol IPProtocol
	Src, Dst netip.Addr
	// TotalLen is filled during decode; on encode it is computed from the
	// payload length handed to AppendTo.
	TotalLen uint16
}

const ipv4HeaderLen = 20

// AppendTo serializes the IPv4 header for a payload of payloadLen bytes,
// computing total length and header checksum.
func (ip *IPv4) AppendTo(w *wire.Writer, payloadLen int) error {
	if !ip.Src.Is4() || !ip.Dst.Is4() {
		return fmt.Errorf("layers: IPv4 header requires 4-byte addresses (src %v dst %v)",
			ip.Src, ip.Dst)
	}
	total := ipv4HeaderLen + payloadLen
	if total > 0xffff {
		return fmt.Errorf("layers: IPv4 total length %d exceeds 65535", total)
	}
	start := w.Len()
	w.U8(0x45) // version 4, IHL 5
	w.U8(ip.TOS)
	w.U16(uint16(total))
	w.U16(ip.ID)
	w.U16(uint16(ip.Flags)<<13 | ip.FragOff&0x1fff)
	w.U8(ip.TTL)
	w.U8(uint8(ip.Protocol))
	w.U16(0) // checksum placeholder
	src := ip.Src.As4()
	dst := ip.Dst.As4()
	w.Write(src[:])
	w.Write(dst[:])
	ck := wire.Checksum(w.Bytes()[start : start+ipv4HeaderLen])
	w.SetU16(start+10, ck)
	return nil
}

// DecodeIPv4 parses an IPv4 header and returns it with the payload bytes
// (bounded by the header's total length, which guards against trailing
// Ethernet padding reaching the TCP parser).
func DecodeIPv4(data []byte) (IPv4, []byte, error) {
	if len(data) < ipv4HeaderLen {
		return IPv4{}, nil, fmt.Errorf("%w: IPv4 header needs %d bytes, have %d",
			ErrTruncated, ipv4HeaderLen, len(data))
	}
	vihl := data[0]
	if vihl>>4 != 4 {
		return IPv4{}, nil, fmt.Errorf("%w: version %d", ErrBadVersion, vihl>>4)
	}
	hdrLen := int(vihl&0x0f) * 4
	if hdrLen < ipv4HeaderLen {
		return IPv4{}, nil, fmt.Errorf("layers: IPv4 IHL %d below minimum", hdrLen)
	}
	if len(data) < hdrLen {
		return IPv4{}, nil, fmt.Errorf("%w: IPv4 options extend past packet", ErrTruncated)
	}
	r := wire.NewReader(data)
	r.Skip(1)
	var ip IPv4
	ip.TOS = r.U8()
	ip.TotalLen = r.U16()
	ip.ID = r.U16()
	frag := r.U16()
	ip.Flags = uint8(frag >> 13)
	ip.FragOff = frag & 0x1fff
	ip.TTL = r.U8()
	ip.Protocol = IPProtocol(r.U8())
	r.Skip(2) // checksum: simulator-written captures are trusted
	ip.Src = netip.AddrFrom4([4]byte(r.Bytes(4)))
	ip.Dst = netip.AddrFrom4([4]byte(r.Bytes(4)))
	if err := r.Err(); err != nil {
		return IPv4{}, nil, err
	}
	if int(ip.TotalLen) < hdrLen || int(ip.TotalLen) > len(data) {
		return IPv4{}, nil, fmt.Errorf("%w: IPv4 total length %d vs %d captured",
			ErrTruncated, ip.TotalLen, len(data))
	}
	return ip, data[hdrLen:ip.TotalLen], nil
}

// IPv6 is a fixed IPv6 header (no extension headers).
type IPv6 struct {
	TrafficClass uint8
	FlowLabel    uint32
	NextHeader   IPProtocol
	HopLimit     uint8
	Src, Dst     netip.Addr
	PayloadLen   uint16 // filled on decode
}

const ipv6HeaderLen = 40

// AppendTo serializes the IPv6 header for a payload of payloadLen bytes.
func (ip *IPv6) AppendTo(w *wire.Writer, payloadLen int) error {
	if !ip.Src.Is6() || !ip.Dst.Is6() || ip.Src.Is4In6() || ip.Dst.Is4In6() {
		return fmt.Errorf("layers: IPv6 header requires 16-byte addresses (src %v dst %v)",
			ip.Src, ip.Dst)
	}
	if payloadLen > 0xffff {
		return fmt.Errorf("layers: IPv6 payload length %d exceeds 65535", payloadLen)
	}
	w.U32(6<<28 | uint32(ip.TrafficClass)<<20 | ip.FlowLabel&0xfffff)
	w.U16(uint16(payloadLen))
	w.U8(uint8(ip.NextHeader))
	w.U8(ip.HopLimit)
	src := ip.Src.As16()
	dst := ip.Dst.As16()
	w.Write(src[:])
	w.Write(dst[:])
	return nil
}

// DecodeIPv6 parses a fixed IPv6 header and returns it with the payload.
func DecodeIPv6(data []byte) (IPv6, []byte, error) {
	if len(data) < ipv6HeaderLen {
		return IPv6{}, nil, fmt.Errorf("%w: IPv6 header needs %d bytes, have %d",
			ErrTruncated, ipv6HeaderLen, len(data))
	}
	r := wire.NewReader(data)
	first := r.U32()
	if first>>28 != 6 {
		return IPv6{}, nil, fmt.Errorf("%w: version %d", ErrBadVersion, first>>28)
	}
	var ip IPv6
	ip.TrafficClass = uint8(first >> 20)
	ip.FlowLabel = first & 0xfffff
	ip.PayloadLen = r.U16()
	ip.NextHeader = IPProtocol(r.U8())
	ip.HopLimit = r.U8()
	ip.Src = netip.AddrFrom16([16]byte(r.Bytes(16)))
	ip.Dst = netip.AddrFrom16([16]byte(r.Bytes(16)))
	if err := r.Err(); err != nil {
		return IPv6{}, nil, err
	}
	end := ipv6HeaderLen + int(ip.PayloadLen)
	if end > len(data) {
		return IPv6{}, nil, fmt.Errorf("%w: IPv6 payload extends past packet", ErrTruncated)
	}
	return ip, data[ipv6HeaderLen:end], nil
}
