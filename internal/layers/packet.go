package layers

import (
	"fmt"
	"net/netip"
	"time"

	"repro/internal/wire"
)

// FlowKey identifies one direction of a transport conversation. Proto
// distinguishes a UDP 5-tuple from a TCP one sharing the same addresses
// and ports; its zero value means TCP, so every key built before UDP
// support existed keeps its meaning (and its map bucket).
type FlowKey struct {
	SrcAddr, DstAddr netip.Addr
	SrcPort, DstPort uint16
	Proto            IPProtocol
}

// Reverse returns the key for the opposite direction.
func (k FlowKey) Reverse() FlowKey {
	return FlowKey{SrcAddr: k.DstAddr, DstAddr: k.SrcAddr,
		SrcPort: k.DstPort, DstPort: k.SrcPort, Proto: k.Proto}
}

// Canonical returns the direction-independent form of the key (the lesser
// endpoint first) plus whether the receiver was already canonical, so both
// directions of a conversation map to the same bucket.
func (k FlowKey) Canonical() (FlowKey, bool) {
	if k.SrcAddr.Compare(k.DstAddr) < 0 ||
		(k.SrcAddr == k.DstAddr && k.SrcPort <= k.DstPort) {
		return k, true
	}
	return k.Reverse(), false
}

// String renders "src:port > dst:port", with a "udp" marker for UDP
// flows (TCP, the historical default, stays unadorned so existing
// rendered output is unchanged).
func (k FlowKey) String() string {
	if k.Proto == IPProtocolUDP {
		return fmt.Sprintf("udp %s:%d > %s:%d", k.SrcAddr, k.SrcPort, k.DstAddr, k.DstPort)
	}
	return fmt.Sprintf("%s:%d > %s:%d", k.SrcAddr, k.SrcPort, k.DstAddr, k.DstPort)
}

// Packet is a fully decoded frame: link, network and transport headers plus
// application payload and capture timestamp. Proto selects which transport
// header is populated: TCP (the zero value's meaning) or UDP.
type Packet struct {
	Timestamp time.Time
	Eth       Ethernet
	IPVersion int // 4 or 6
	IP4       IPv4
	IP6       IPv6
	Proto     IPProtocol
	TCP       TCP
	UDP       UDP
	Payload   []byte
}

// Flow returns the packet's directional flow key.
func (p *Packet) Flow() FlowKey {
	k := FlowKey{SrcPort: p.TCP.SrcPort, DstPort: p.TCP.DstPort}
	if p.Proto == IPProtocolUDP {
		k.SrcPort, k.DstPort, k.Proto = p.UDP.SrcPort, p.UDP.DstPort, IPProtocolUDP
	}
	if p.IPVersion == 4 {
		k.SrcAddr, k.DstAddr = p.IP4.Src, p.IP4.Dst
	} else {
		k.SrcAddr, k.DstAddr = p.IP6.Src, p.IP6.Dst
	}
	return k
}

// DecodePacket parses an Ethernet/IP/{TCP,UDP} frame. Frames carrying any
// other transport return ErrUnsupported; the caller typically skips them.
func DecodePacket(ts time.Time, frame []byte) (*Packet, error) {
	eth, rest, err := DecodeEthernet(frame)
	if err != nil {
		return nil, err
	}
	p := &Packet{Timestamp: ts, Eth: eth}
	var proto IPProtocol
	switch eth.EtherType {
	case EtherTypeIPv4:
		ip, payload, err := DecodeIPv4(rest)
		if err != nil {
			return nil, err
		}
		p.IPVersion, p.IP4, rest, proto = 4, ip, payload, ip.Protocol
	case EtherTypeIPv6:
		ip, payload, err := DecodeIPv6(rest)
		if err != nil {
			return nil, err
		}
		p.IPVersion, p.IP6, rest, proto = 6, ip, payload, ip.NextHeader
	default:
		return nil, fmt.Errorf("%w: ethertype %#04x", ErrUnsupported, uint16(eth.EtherType))
	}
	switch proto {
	case IPProtocolTCP:
		tcp, payload, err := DecodeTCP(rest)
		if err != nil {
			return nil, err
		}
		p.Proto, p.TCP, p.Payload = IPProtocolTCP, tcp, payload
	case IPProtocolUDP:
		udp, payload, err := DecodeUDP(rest)
		if err != nil {
			return nil, err
		}
		p.Proto, p.UDP, p.Payload = IPProtocolUDP, udp, payload
	default:
		return nil, fmt.Errorf("%w: IP protocol %d", ErrUnsupported, proto)
	}
	return p, nil
}

// BuildTCPFrame serializes a complete Ethernet/IPv4-or-IPv6/TCP frame.
// The address family of key.SrcAddr selects the IP version. ipID feeds the
// IPv4 identification field so consecutive frames look realistic.
func BuildTCPFrame(key FlowKey, eth Ethernet, tcp TCP, payload []byte, ipID uint16) ([]byte, error) {
	w := wire.NewWriter(ethernetHeaderLen + ipv4HeaderLen + tcpHeaderLen + len(payload))
	if err := AppendTCPFrame(w, key, eth, tcp, payload, ipID); err != nil {
		return nil, err
	}
	return w.Bytes(), nil
}

// AppendTCPFrame serializes the frame into an existing Writer, so callers
// synthesizing thousands of frames (pcap capture) can pack them into one
// arena instead of allocating per frame.
func AppendTCPFrame(w *wire.Writer, key FlowKey, eth Ethernet, tcp TCP, payload []byte, ipID uint16) error {
	switch {
	case key.SrcAddr.Is4():
		eth.EtherType = EtherTypeIPv4
		eth.AppendTo(w)
		ip := IPv4{TTL: 64, Protocol: IPProtocolTCP, ID: ipID,
			Flags: 0x2, // don't fragment
			Src:   key.SrcAddr, Dst: key.DstAddr}
		if err := ip.AppendTo(w, tcpHeaderLen+len(payload)); err != nil {
			return err
		}
	case key.SrcAddr.Is6():
		eth.EtherType = EtherTypeIPv6
		eth.AppendTo(w)
		ip := IPv6{HopLimit: 64, NextHeader: IPProtocolTCP,
			Src: key.SrcAddr, Dst: key.DstAddr}
		if err := ip.AppendTo(w, tcpHeaderLen+len(payload)); err != nil {
			return err
		}
	default:
		return fmt.Errorf("layers: flow key has no valid source address")
	}
	tcp.SrcPort, tcp.DstPort = key.SrcPort, key.DstPort
	return tcp.AppendTo(w, key.SrcAddr, key.DstAddr, payload)
}
