package layers

import (
	"fmt"
	"net/netip"

	"repro/internal/wire"
)

// UDP is a UDP header. QUIC conversations ride on it: every QUIC packet
// (or coalesced packet train) is one UDP datagram, so the eavesdropper's
// observable unit is the datagram length rather than a TLS record length.
type UDP struct {
	SrcPort, DstPort uint16
	// Length is the UDP length field: header plus payload.
	Length uint16
}

const udpHeaderLen = 8

// AppendTo serializes the UDP header followed by payload, computing the
// checksum over the IPv4/IPv6 pseudo-header. src and dst are the IP-layer
// addresses.
func (u *UDP) AppendTo(w *wire.Writer, src, dst netip.Addr, payload []byte) error {
	start := w.Len()
	segLen := udpHeaderLen + len(payload)
	w.U16(u.SrcPort)
	w.U16(u.DstPort)
	w.U16(uint16(segLen))
	w.U16(0) // checksum placeholder
	w.Write(payload)

	var sum uint32
	switch {
	case src.Is4() && dst.Is4():
		s4, d4 := src.As4(), dst.As4()
		sum = wire.AddChecksum(sum, s4[:])
		sum = wire.AddChecksum(sum, d4[:])
		sum = wire.AddChecksum(sum, []byte{0, uint8(IPProtocolUDP),
			byte(segLen >> 8), byte(segLen)})
	case src.Is6() && dst.Is6():
		s6, d6 := src.As16(), dst.As16()
		sum = wire.AddChecksum(sum, s6[:])
		sum = wire.AddChecksum(sum, d6[:])
		sum = wire.AddChecksum(sum, []byte{
			byte(segLen >> 24), byte(segLen >> 16), byte(segLen >> 8), byte(segLen),
			0, 0, 0, uint8(IPProtocolUDP)})
	default:
		return fmt.Errorf("layers: mismatched address families %v / %v", src, dst)
	}
	sum = wire.AddChecksum(sum, w.Bytes()[start:])
	ck := wire.FinishChecksum(sum)
	if ck == 0 {
		ck = 0xffff // RFC 768: transmitted all-ones when the sum is zero
	}
	w.SetU16(start+6, ck)
	return nil
}

// DecodeUDP parses a UDP header and returns it with the payload bytes,
// bounded by the header's length field.
func DecodeUDP(data []byte) (UDP, []byte, error) {
	if len(data) < udpHeaderLen {
		return UDP{}, nil, fmt.Errorf("%w: UDP header needs %d bytes, have %d",
			ErrTruncated, udpHeaderLen, len(data))
	}
	r := wire.NewReader(data)
	var u UDP
	u.SrcPort = r.U16()
	u.DstPort = r.U16()
	u.Length = r.U16()
	r.Skip(2) // checksum
	if err := r.Err(); err != nil {
		return UDP{}, nil, err
	}
	if int(u.Length) < udpHeaderLen {
		return UDP{}, nil, fmt.Errorf("layers: UDP length %d below header size", u.Length)
	}
	if int(u.Length) > len(data) {
		return UDP{}, nil, fmt.Errorf("%w: UDP length %d exceeds %d available",
			ErrTruncated, u.Length, len(data))
	}
	return u, data[udpHeaderLen:u.Length], nil
}

// BuildUDPFrame serializes a complete Ethernet/IPv4-or-IPv6/UDP frame.
// The address family of key.SrcAddr selects the IP version.
func BuildUDPFrame(key FlowKey, eth Ethernet, payload []byte, ipID uint16) ([]byte, error) {
	w := wire.NewWriter(ethernetHeaderLen + ipv4HeaderLen + udpHeaderLen + len(payload))
	if err := AppendUDPFrame(w, key, eth, payload, ipID); err != nil {
		return nil, err
	}
	return w.Bytes(), nil
}

// AppendUDPFrame serializes the frame into an existing Writer, the
// arena-packing form capture uses when rendering thousands of datagrams.
func AppendUDPFrame(w *wire.Writer, key FlowKey, eth Ethernet, payload []byte, ipID uint16) error {
	switch {
	case key.SrcAddr.Is4():
		eth.EtherType = EtherTypeIPv4
		eth.AppendTo(w)
		ip := IPv4{TTL: 64, Protocol: IPProtocolUDP, ID: ipID,
			Flags: 0x2, // don't fragment
			Src:   key.SrcAddr, Dst: key.DstAddr}
		if err := ip.AppendTo(w, udpHeaderLen+len(payload)); err != nil {
			return err
		}
	case key.SrcAddr.Is6():
		eth.EtherType = EtherTypeIPv6
		eth.AppendTo(w)
		ip := IPv6{HopLimit: 64, NextHeader: IPProtocolUDP,
			Src: key.SrcAddr, Dst: key.DstAddr}
		if err := ip.AppendTo(w, udpHeaderLen+len(payload)); err != nil {
			return err
		}
	default:
		return fmt.Errorf("layers: flow key has no valid source address")
	}
	u := UDP{SrcPort: key.SrcPort, DstPort: key.DstPort}
	return u.AppendTo(w, key.SrcAddr, key.DstAddr, payload)
}
