package layers

import (
	"fmt"
	"net/netip"

	"repro/internal/wire"
)

// TCPFlags is the TCP flag byte.
type TCPFlags uint8

// TCP flag bits.
const (
	TCPFin TCPFlags = 1 << iota
	TCPSyn
	TCPRst
	TCPPsh
	TCPAck
	TCPUrg
)

// String renders set flags in tcpdump-like order.
func (f TCPFlags) String() string {
	s := ""
	if f&TCPSyn != 0 {
		s += "S"
	}
	if f&TCPFin != 0 {
		s += "F"
	}
	if f&TCPRst != 0 {
		s += "R"
	}
	if f&TCPPsh != 0 {
		s += "P"
	}
	if f&TCPAck != 0 {
		s += "."
	}
	if f&TCPUrg != 0 {
		s += "U"
	}
	if s == "" {
		s = "none"
	}
	return s
}

// TCP is a TCP header without options (data offset 5 on encode; options
// skipped on decode).
type TCP struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            TCPFlags
	Window           uint16
	Urgent           uint16
}

const tcpHeaderLen = 20

// AppendTo serializes the TCP header followed by payload, computing the
// checksum over the IPv4/IPv6 pseudo-header. src and dst are the IP-layer
// addresses.
func (t *TCP) AppendTo(w *wire.Writer, src, dst netip.Addr, payload []byte) error {
	start := w.Len()
	w.U16(t.SrcPort)
	w.U16(t.DstPort)
	w.U32(t.Seq)
	w.U32(t.Ack)
	w.U8(5 << 4) // data offset 5, reserved 0
	w.U8(uint8(t.Flags))
	w.U16(t.Window)
	w.U16(0) // checksum placeholder
	w.U16(t.Urgent)
	w.Write(payload)

	segLen := tcpHeaderLen + len(payload)
	var sum uint32
	switch {
	case src.Is4() && dst.Is4():
		s4, d4 := src.As4(), dst.As4()
		sum = wire.AddChecksum(sum, s4[:])
		sum = wire.AddChecksum(sum, d4[:])
		sum = wire.AddChecksum(sum, []byte{0, uint8(IPProtocolTCP),
			byte(segLen >> 8), byte(segLen)})
	case src.Is6() && dst.Is6():
		s6, d6 := src.As16(), dst.As16()
		sum = wire.AddChecksum(sum, s6[:])
		sum = wire.AddChecksum(sum, d6[:])
		sum = wire.AddChecksum(sum, []byte{
			byte(segLen >> 24), byte(segLen >> 16), byte(segLen >> 8), byte(segLen),
			0, 0, 0, uint8(IPProtocolTCP)})
	default:
		return fmt.Errorf("layers: mismatched address families %v / %v", src, dst)
	}
	sum = wire.AddChecksum(sum, w.Bytes()[start:])
	w.SetU16(start+16, wire.FinishChecksum(sum))
	return nil
}

// DecodeTCP parses a TCP header and returns it with the payload bytes.
func DecodeTCP(data []byte) (TCP, []byte, error) {
	if len(data) < tcpHeaderLen {
		return TCP{}, nil, fmt.Errorf("%w: TCP header needs %d bytes, have %d",
			ErrTruncated, tcpHeaderLen, len(data))
	}
	r := wire.NewReader(data)
	var t TCP
	t.SrcPort = r.U16()
	t.DstPort = r.U16()
	t.Seq = r.U32()
	t.Ack = r.U32()
	off := int(r.U8()>>4) * 4
	t.Flags = TCPFlags(r.U8())
	t.Window = r.U16()
	r.Skip(2) // checksum
	t.Urgent = r.U16()
	if err := r.Err(); err != nil {
		return TCP{}, nil, err
	}
	if off < tcpHeaderLen {
		return TCP{}, nil, fmt.Errorf("layers: TCP data offset %d below minimum", off)
	}
	if off > len(data) {
		return TCP{}, nil, fmt.Errorf("%w: TCP options extend past segment", ErrTruncated)
	}
	return t, data[off:], nil
}
