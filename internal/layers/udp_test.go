package layers

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/wire"
)

func TestUDPRoundTrip(t *testing.T) {
	payload := []byte("quic datagram bytes")
	u := UDP{SrcPort: 51732, DstPort: 443}
	w := wire.NewWriter(64)
	if err := u.AppendTo(w, cli4, srv4, payload); err != nil {
		t.Fatal(err)
	}
	got, gotPayload, err := DecodeUDP(w.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if got.SrcPort != u.SrcPort || got.DstPort != u.DstPort {
		t.Errorf("ports = %d>%d, want %d>%d", got.SrcPort, got.DstPort, u.SrcPort, u.DstPort)
	}
	if int(got.Length) != udpHeaderLen+len(payload) {
		t.Errorf("length = %d, want %d", got.Length, udpHeaderLen+len(payload))
	}
	if !bytes.Equal(gotPayload, payload) {
		t.Errorf("payload = %q", gotPayload)
	}
}

func TestUDPChecksumPseudoHeaderV4(t *testing.T) {
	payload := []byte{1, 2, 3, 4, 5}
	u := UDP{SrcPort: 1000, DstPort: 2000}
	w := wire.NewWriter(32)
	if err := u.AppendTo(w, cli4, srv4, payload); err != nil {
		t.Fatal(err)
	}
	// Verifying over pseudo-header + segment (checksum field included)
	// must yield zero, the standard receiver check.
	seg := w.Bytes()
	s4, d4 := cli4.As4(), srv4.As4()
	var sum uint32
	sum = wire.AddChecksum(sum, s4[:])
	sum = wire.AddChecksum(sum, d4[:])
	sum = wire.AddChecksum(sum, []byte{0, uint8(IPProtocolUDP),
		byte(len(seg) >> 8), byte(len(seg))})
	sum = wire.AddChecksum(sum, seg)
	if wire.FinishChecksum(sum) != 0 {
		t.Errorf("checksum does not verify: residue %#04x", wire.FinishChecksum(sum))
	}
}

func TestUDPTruncated(t *testing.T) {
	if _, _, err := DecodeUDP(make([]byte, udpHeaderLen-1)); err == nil {
		t.Fatal("want error for short header")
	}
	u := UDP{SrcPort: 1, DstPort: 2}
	w := wire.NewWriter(32)
	if err := u.AppendTo(w, cli4, srv4, []byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := DecodeUDP(w.Bytes()[:udpHeaderLen+2]); err == nil {
		t.Fatal("want error when length field exceeds available bytes")
	}
}

func TestBuildAndDecodeUDPPacket(t *testing.T) {
	key := FlowKey{SrcAddr: cli4, DstAddr: srv4, SrcPort: 51732, DstPort: 443,
		Proto: IPProtocolUDP}
	eth := Ethernet{Dst: srvMAC, Src: cliMAC}
	payload := []byte("1-RTT short header packet")
	frame, err := BuildUDPFrame(key, eth, payload, 77)
	if err != nil {
		t.Fatal(err)
	}
	ts := time.Unix(1735689600, 0)
	p, err := DecodePacket(ts, frame)
	if err != nil {
		t.Fatal(err)
	}
	if p.Proto != IPProtocolUDP {
		t.Fatalf("proto = %d, want UDP", p.Proto)
	}
	if p.Flow() != key {
		t.Errorf("flow = %v, want %v", p.Flow(), key)
	}
	if !bytes.Equal(p.Payload, payload) {
		t.Errorf("payload = %q", p.Payload)
	}
	if got := key.String(); got != "udp 192.168.1.50:51732 > 45.57.40.1:443" {
		t.Errorf("String() = %q", got)
	}
}

func TestBuildAndDecodeUDPPacketV6(t *testing.T) {
	key := FlowKey{SrcAddr: cli6, DstAddr: srv6, SrcPort: 40000, DstPort: 443,
		Proto: IPProtocolUDP}
	eth := Ethernet{Dst: srvMAC, Src: cliMAC}
	payload := bytes.Repeat([]byte{0xab}, 1200)
	frame, err := BuildUDPFrame(key, eth, payload, 0)
	if err != nil {
		t.Fatal(err)
	}
	p, err := DecodePacket(time.Unix(0, 0), frame)
	if err != nil {
		t.Fatal(err)
	}
	if p.Flow() != key || !bytes.Equal(p.Payload, payload) {
		t.Errorf("v6 UDP round trip mismatch: flow %v", p.Flow())
	}
}

func TestFlowKeyProtoDistinguishesTransports(t *testing.T) {
	tcp := FlowKey{SrcAddr: cli4, DstAddr: srv4, SrcPort: 51732, DstPort: 443}
	udp := tcp
	udp.Proto = IPProtocolUDP
	if tcp == udp {
		t.Fatal("TCP and UDP keys over the same 5-tuple must differ")
	}
	if udp.Reverse().Proto != IPProtocolUDP {
		t.Error("Reverse dropped Proto")
	}
	canon, _ := udp.Canonical()
	if canon.Proto != IPProtocolUDP {
		t.Error("Canonical dropped Proto")
	}
}
