package layers

import (
	"bytes"
	"errors"
	"net/netip"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/wire"
)

var (
	cliMAC = MAC{0x02, 0x00, 0x00, 0x00, 0x00, 0x01}
	srvMAC = MAC{0x02, 0x00, 0x00, 0x00, 0x00, 0x02}
	cli4   = netip.MustParseAddr("192.168.1.50")
	srv4   = netip.MustParseAddr("45.57.40.1")
	cli6   = netip.MustParseAddr("2001:db8::50")
	srv6   = netip.MustParseAddr("2001:db8:cd::1")
)

func TestEthernetRoundTrip(t *testing.T) {
	e := Ethernet{Dst: srvMAC, Src: cliMAC, EtherType: EtherTypeIPv4}
	w := wire.NewWriter(16)
	e.AppendTo(w)
	got, rest, err := DecodeEthernet(append(w.Bytes(), 0xaa, 0xbb))
	if err != nil {
		t.Fatal(err)
	}
	if got != e {
		t.Errorf("round trip: got %+v, want %+v", got, e)
	}
	if !bytes.Equal(rest, []byte{0xaa, 0xbb}) {
		t.Errorf("payload = %v", rest)
	}
}

func TestEthernetTruncated(t *testing.T) {
	_, _, err := DecodeEthernet(make([]byte, 13))
	if !errors.Is(err, ErrTruncated) {
		t.Errorf("err = %v, want ErrTruncated", err)
	}
}

func TestMACString(t *testing.T) {
	if got := cliMAC.String(); got != "02:00:00:00:00:01" {
		t.Errorf("MAC.String = %q", got)
	}
}

func TestIPv4RoundTrip(t *testing.T) {
	ip := IPv4{TOS: 0x10, ID: 0x1234, Flags: 0x2, TTL: 64,
		Protocol: IPProtocolTCP, Src: cli4, Dst: srv4}
	payload := []byte("hello ipv4 payload")
	w := wire.NewWriter(64)
	if err := ip.AppendTo(w, len(payload)); err != nil {
		t.Fatal(err)
	}
	w.Write(payload)

	got, gotPayload, err := DecodeIPv4(w.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if got.Src != cli4 || got.Dst != srv4 || got.Protocol != IPProtocolTCP ||
		got.TTL != 64 || got.ID != 0x1234 || got.TOS != 0x10 || got.Flags != 0x2 {
		t.Errorf("header mismatch: %+v", got)
	}
	if int(got.TotalLen) != 20+len(payload) {
		t.Errorf("TotalLen = %d", got.TotalLen)
	}
	if !bytes.Equal(gotPayload, payload) {
		t.Errorf("payload mismatch")
	}
}

func TestIPv4HeaderChecksumValid(t *testing.T) {
	ip := IPv4{TTL: 64, Protocol: IPProtocolTCP, Src: cli4, Dst: srv4}
	w := wire.NewWriter(20)
	if err := ip.AppendTo(w, 0); err != nil {
		t.Fatal(err)
	}
	if ck := wire.Checksum(w.Bytes()); ck != 0 {
		t.Errorf("header does not self-verify: %#04x", ck)
	}
}

func TestIPv4PaddingIgnored(t *testing.T) {
	// Ethernet minimum-frame padding after the IP datagram must not leak
	// into the payload: DecodeIPv4 bounds payload by TotalLen.
	ip := IPv4{TTL: 64, Protocol: IPProtocolTCP, Src: cli4, Dst: srv4}
	w := wire.NewWriter(32)
	if err := ip.AppendTo(w, 4); err != nil {
		t.Fatal(err)
	}
	w.Write([]byte{1, 2, 3, 4})
	w.Zero(10) // padding
	_, payload, err := DecodeIPv4(w.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(payload) != 4 {
		t.Errorf("payload len = %d, want 4 (padding leaked)", len(payload))
	}
}

func TestIPv4RejectsWrongFamily(t *testing.T) {
	ip := IPv4{Src: cli6, Dst: srv4}
	if err := ip.AppendTo(wire.NewWriter(20), 0); err == nil {
		t.Error("expected error for IPv6 source in IPv4 header")
	}
}

func TestIPv4BadVersion(t *testing.T) {
	buf := make([]byte, 20)
	buf[0] = 0x65 // version 6, IHL 5
	_, _, err := DecodeIPv4(buf)
	if !errors.Is(err, ErrBadVersion) {
		t.Errorf("err = %v, want ErrBadVersion", err)
	}
}

func TestIPv4TruncatedTotalLen(t *testing.T) {
	ip := IPv4{TTL: 64, Protocol: IPProtocolTCP, Src: cli4, Dst: srv4}
	w := wire.NewWriter(32)
	if err := ip.AppendTo(w, 100); err != nil { // claims 100-byte payload
		t.Fatal(err)
	}
	w.Write([]byte{1, 2, 3}) // delivers 3
	_, _, err := DecodeIPv4(w.Bytes())
	if !errors.Is(err, ErrTruncated) {
		t.Errorf("err = %v, want ErrTruncated", err)
	}
}

func TestIPv6RoundTrip(t *testing.T) {
	ip := IPv6{TrafficClass: 0x20, FlowLabel: 0xabcde, NextHeader: IPProtocolTCP,
		HopLimit: 64, Src: cli6, Dst: srv6}
	payload := []byte("v6 payload")
	w := wire.NewWriter(64)
	if err := ip.AppendTo(w, len(payload)); err != nil {
		t.Fatal(err)
	}
	w.Write(payload)
	got, gotPayload, err := DecodeIPv6(w.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if got.Src != cli6 || got.Dst != srv6 || got.TrafficClass != 0x20 ||
		got.FlowLabel != 0xabcde || got.HopLimit != 64 {
		t.Errorf("header mismatch: %+v", got)
	}
	if !bytes.Equal(gotPayload, payload) {
		t.Errorf("payload mismatch")
	}
}

func TestIPv6RejectsMappedAddr(t *testing.T) {
	mapped := netip.AddrFrom16(netip.MustParseAddr("192.0.2.1").As16())
	ip := IPv6{Src: mapped, Dst: srv6}
	if err := ip.AppendTo(wire.NewWriter(40), 0); err == nil {
		t.Error("expected error for 4-in-6 mapped source")
	}
}

func TestTCPRoundTrip(t *testing.T) {
	tcp := TCP{SrcPort: 51000, DstPort: 443, Seq: 1000, Ack: 2000,
		Flags: TCPPsh | TCPAck, Window: 65535}
	payload := []byte("GET /chunk")
	w := wire.NewWriter(64)
	if err := tcp.AppendTo(w, cli4, srv4, payload); err != nil {
		t.Fatal(err)
	}
	got, gotPayload, err := DecodeTCP(w.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if got.SrcPort != 51000 || got.DstPort != 443 || got.Seq != 1000 ||
		got.Ack != 2000 || got.Flags != TCPPsh|TCPAck || got.Window != 65535 {
		t.Errorf("header mismatch: %+v", got)
	}
	if !bytes.Equal(gotPayload, payload) {
		t.Errorf("payload mismatch")
	}
}

func TestTCPChecksumPseudoHeaderV4(t *testing.T) {
	tcp := TCP{SrcPort: 1, DstPort: 2, Seq: 3, Ack: 4, Flags: TCPAck}
	payload := []byte{0xde, 0xad}
	w := wire.NewWriter(32)
	if err := tcp.AppendTo(w, cli4, srv4, payload); err != nil {
		t.Fatal(err)
	}
	// Recompute: pseudo-header + segment with embedded checksum == 0.
	seg := w.Bytes()
	s4, d4 := cli4.As4(), srv4.As4()
	sum := wire.AddChecksum(0, s4[:])
	sum = wire.AddChecksum(sum, d4[:])
	sum = wire.AddChecksum(sum, []byte{0, 6, 0, byte(len(seg))})
	sum = wire.AddChecksum(sum, seg)
	if ck := wire.FinishChecksum(sum); ck != 0 {
		t.Errorf("TCP/IPv4 checksum does not verify: %#04x", ck)
	}
}

func TestTCPChecksumPseudoHeaderV6(t *testing.T) {
	tcp := TCP{SrcPort: 1, DstPort: 2, Flags: TCPSyn}
	w := wire.NewWriter(32)
	if err := tcp.AppendTo(w, cli6, srv6, nil); err != nil {
		t.Fatal(err)
	}
	seg := w.Bytes()
	s6, d6 := cli6.As16(), srv6.As16()
	sum := wire.AddChecksum(0, s6[:])
	sum = wire.AddChecksum(sum, d6[:])
	sum = wire.AddChecksum(sum, []byte{0, 0, 0, byte(len(seg)), 0, 0, 0, 6})
	sum = wire.AddChecksum(sum, seg)
	if ck := wire.FinishChecksum(sum); ck != 0 {
		t.Errorf("TCP/IPv6 checksum does not verify: %#04x", ck)
	}
}

func TestTCPMismatchedFamilies(t *testing.T) {
	tcp := TCP{}
	if err := tcp.AppendTo(wire.NewWriter(32), cli4, srv6, nil); err == nil {
		t.Error("expected error for mixed address families")
	}
}

func TestTCPFlagsString(t *testing.T) {
	cases := []struct {
		f    TCPFlags
		want string
	}{
		{TCPSyn, "S"},
		{TCPSyn | TCPAck, "S."},
		{TCPPsh | TCPAck, "P."},
		{TCPFin | TCPAck, "F."},
		{TCPRst, "R"},
		{0, "none"},
	}
	for _, c := range cases {
		if got := c.f.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", c.f, got, c.want)
		}
	}
}

func TestFlowKeyReverseCanonical(t *testing.T) {
	k := FlowKey{SrcAddr: cli4, DstAddr: srv4, SrcPort: 51000, DstPort: 443}
	rev := k.Reverse()
	if rev.SrcAddr != srv4 || rev.DstPort != 51000 {
		t.Errorf("Reverse = %+v", rev)
	}
	c1, fwd1 := k.Canonical()
	c2, fwd2 := rev.Canonical()
	if c1 != c2 {
		t.Errorf("canonical forms differ: %v vs %v", c1, c2)
	}
	if fwd1 == fwd2 {
		t.Errorf("both directions claim the same orientation")
	}
}

func TestBuildAndDecodePacketV4(t *testing.T) {
	key := FlowKey{SrcAddr: cli4, DstAddr: srv4, SrcPort: 51000, DstPort: 443}
	eth := Ethernet{Dst: srvMAC, Src: cliMAC}
	tcp := TCP{Seq: 77, Ack: 88, Flags: TCPPsh | TCPAck, Window: 29200}
	payload := []byte("tls record bytes here")
	frame, err := BuildTCPFrame(key, eth, tcp, payload, 42)
	if err != nil {
		t.Fatal(err)
	}
	ts := time.Unix(1700000000, 123456789)
	p, err := DecodePacket(ts, frame)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Timestamp.Equal(ts) {
		t.Errorf("timestamp mismatch")
	}
	if p.IPVersion != 4 || p.IP4.ID != 42 {
		t.Errorf("IP fields: version=%d id=%d", p.IPVersion, p.IP4.ID)
	}
	if got := p.Flow(); got != key {
		t.Errorf("Flow = %v, want %v", got, key)
	}
	if !bytes.Equal(p.Payload, payload) {
		t.Errorf("payload mismatch")
	}
}

func TestBuildAndDecodePacketV6(t *testing.T) {
	key := FlowKey{SrcAddr: cli6, DstAddr: srv6, SrcPort: 50001, DstPort: 443}
	frame, err := BuildTCPFrame(key, Ethernet{Dst: srvMAC, Src: cliMAC},
		TCP{Seq: 1, Flags: TCPAck}, []byte("v6"), 0)
	if err != nil {
		t.Fatal(err)
	}
	p, err := DecodePacket(time.Now(), frame)
	if err != nil {
		t.Fatal(err)
	}
	if p.IPVersion != 6 {
		t.Errorf("IPVersion = %d, want 6", p.IPVersion)
	}
	if got := p.Flow(); got != key {
		t.Errorf("Flow = %v, want %v", got, key)
	}
}

func TestDecodePacketUnsupported(t *testing.T) {
	w := wire.NewWriter(16)
	e := Ethernet{EtherType: 0x0806} // ARP
	e.AppendTo(w)
	w.Zero(28)
	_, err := DecodePacket(time.Now(), w.Bytes())
	if !errors.Is(err, ErrUnsupported) {
		t.Errorf("err = %v, want ErrUnsupported", err)
	}
}

func TestTCPPayloadRoundTripProperty(t *testing.T) {
	key := FlowKey{SrcAddr: cli4, DstAddr: srv4, SrcPort: 51000, DstPort: 443}
	f := func(payload []byte, seq, ack uint32, win uint16) bool {
		if len(payload) > 60000 {
			payload = payload[:60000]
		}
		frame, err := BuildTCPFrame(key, Ethernet{Dst: srvMAC, Src: cliMAC},
			TCP{Seq: seq, Ack: ack, Flags: TCPPsh | TCPAck, Window: win}, payload, 7)
		if err != nil {
			return false
		}
		p, err := DecodePacket(time.Now(), frame)
		if err != nil {
			return false
		}
		return p.TCP.Seq == seq && p.TCP.Ack == ack && p.TCP.Window == win &&
			bytes.Equal(p.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
