package pcapio

import "unsafe"

// PacketRing is a caller-owned frame arena for zero-copy live feeds: a
// capture loop reads each frame into a slot from Alloc, hands the slot to
// Monitor.FeedPacketOwned without copying, and the consumer releases
// every span it stops referencing (immediately for headers and dead
// traffic, at rolling-window release for reassembled payloads). Blocks
// whose bytes have all come back are recycled, so a steady-state live
// path allocates nothing per packet and the ring's footprint is bounded
// by the consumer's window, not by uptime.
//
// Release is span-based: a slot may be returned in pieces (the TCP
// payload through one path, the frame headers through another) and the
// block recycles once the pieces add up. Slices the ring does not own are
// ignored, so a consumer can route every unreferenced span through one
// callback without tracking provenance. A PacketRing is single-consumer
// state and not safe for concurrent use.
type PacketRing struct {
	blockSize int
	cur       *ringBlock
	blocks    []*ringBlock // blocks with outstanding bytes (cur included)
	free      []*ringBlock
	inUse     int64
	allocated int64 // lifetime bytes handed out, for accounting tests
}

// ringBlock is one bump-allocated arena block.
type ringBlock struct {
	buf      []byte
	off      int // allocation watermark
	released int // bytes handed back
}

// DefaultRingBlock is the block size NewPacketRing uses for sizes <= 0.
const DefaultRingBlock = 256 << 10

// NewPacketRing returns a ring handing out slots from blocks of the given
// size (<= 0 selects DefaultRingBlock). Frames larger than the block size
// get a dedicated block.
func NewPacketRing(blockSize int) *PacketRing {
	if blockSize <= 0 {
		blockSize = DefaultRingBlock
	}
	return &PacketRing{blockSize: blockSize}
}

// Alloc returns a stable n-byte slot for the caller to read a frame into.
// The slot stays valid until every one of its bytes has been released.
func (r *PacketRing) Alloc(n int) []byte {
	if r.cur == nil || len(r.cur.buf)-r.cur.off < n {
		r.seal()
		r.cur = r.takeBlock(n)
		r.blocks = append(r.blocks, r.cur)
	}
	b := r.cur.buf[r.cur.off : r.cur.off+n : r.cur.off+n]
	r.cur.off += n
	r.inUse += int64(n)
	r.allocated += int64(n)
	return b
}

// AllocFrame copies frame into a fresh slot and returns the stable copy —
// the convenience form for callers whose source buffer is reused per
// packet (a capture library handing out its own memory).
func (r *PacketRing) AllocFrame(frame []byte) []byte {
	b := r.Alloc(len(frame))
	copy(b, frame)
	return b
}

// Trim shrinks a just-allocated slot to n bytes — a capture read that
// returned fewer bytes than reserved — releasing the tail immediately.
func (r *PacketRing) Trim(b []byte, n int) []byte {
	r.Release(b[n:])
	return b[:n]
}

// Release hands back a span previously obtained from Alloc (whole or in
// pieces). Spans the ring does not own are ignored. Releasing the same
// bytes twice corrupts the accounting; the reassembly release contract
// guarantees each span comes back exactly once.
func (r *PacketRing) Release(b []byte) {
	if len(b) == 0 {
		return
	}
	p := uintptr(unsafe.Pointer(&b[0]))
	for i, blk := range r.blocks {
		s := uintptr(unsafe.Pointer(&blk.buf[0]))
		if p < s || p >= s+uintptr(blk.off) {
			continue
		}
		blk.released += len(b)
		r.inUse -= int64(len(b))
		if blk.released == blk.off && blk != r.cur {
			blk.off, blk.released = 0, 0
			r.blocks = append(r.blocks[:i], r.blocks[i+1:]...)
			r.free = append(r.free, blk)
		}
		return
	}
}

// seal retires the current block: if all its bytes already came back it
// recycles immediately, otherwise Release will recycle it later.
func (r *PacketRing) seal() {
	blk := r.cur
	r.cur = nil
	if blk == nil || blk.released != blk.off {
		return
	}
	for i, b := range r.blocks {
		if b == blk {
			r.blocks = append(r.blocks[:i], r.blocks[i+1:]...)
			break
		}
	}
	blk.off, blk.released = 0, 0
	r.free = append(r.free, blk)
}

// takeBlock recycles a free block with room for n bytes or makes one.
func (r *PacketRing) takeBlock(n int) *ringBlock {
	for i := len(r.free) - 1; i >= 0; i-- {
		if blk := r.free[i]; len(blk.buf) >= n {
			r.free = append(r.free[:i], r.free[i+1:]...)
			return blk
		}
	}
	size := r.blockSize
	if n > size {
		size = n
	}
	return &ringBlock{buf: make([]byte, size)}
}

// ReleaseExcept releases the parts of slot not covered by kept, which
// must be a sub-slice of slot (or empty, releasing everything). A packet
// consumer uses it to hand back a frame's link/network/transport headers
// the moment the payload — the only part reassembly retains — has been
// carved out.
func (r *PacketRing) ReleaseExcept(slot, kept []byte) {
	if len(kept) == 0 {
		r.Release(slot)
		return
	}
	ss := uintptr(unsafe.Pointer(&slot[0]))
	ks := uintptr(unsafe.Pointer(&kept[0]))
	if ks < ss || ks+uintptr(len(kept)) > ss+uintptr(len(slot)) {
		r.Release(slot) // kept is foreign: nothing of the slot is retained
		return
	}
	head := int(ks - ss)
	r.Release(slot[:head])
	r.Release(slot[head+len(kept):])
}

// InUse returns the bytes handed out and not yet released.
func (r *PacketRing) InUse() int64 { return r.inUse }

// Allocated returns the lifetime bytes handed out — with InUse, the
// figure accounting tests use to prove slots cycle rather than leak.
func (r *PacketRing) Allocated() int64 { return r.allocated }

// Blocks returns the count of blocks currently backing the ring (live
// plus recycled). A flat Blocks over a long run is the bounded-memory
// proof for the live path.
func (r *PacketRing) Blocks() int { return len(r.blocks) + len(r.free) }
