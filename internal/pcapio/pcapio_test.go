package pcapio

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
	"testing/quick"
	"time"
)

func TestWriteReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	frames := [][]byte{
		{1, 2, 3, 4, 5},
		{0xaa},
		make([]byte, 1500),
	}
	base := time.Unix(1700000000, 0)
	for i, f := range frames {
		if err := w.WritePacket(base.Add(time.Duration(i)*time.Millisecond), f); err != nil {
			t.Fatal(err)
		}
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.LinkType() != LinkTypeEthernet {
		t.Errorf("LinkType = %d", r.LinkType())
	}
	recs, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(frames) {
		t.Fatalf("read %d records, want %d", len(recs), len(frames))
	}
	for i, rec := range recs {
		if !bytes.Equal(rec.Data, frames[i]) {
			t.Errorf("record %d data mismatch", i)
		}
		want := base.Add(time.Duration(i) * time.Millisecond)
		if !rec.Timestamp.Equal(want) {
			t.Errorf("record %d ts = %v, want %v", i, rec.Timestamp, want)
		}
		if rec.OrigLen != len(frames[i]) {
			t.Errorf("record %d OrigLen = %d", i, rec.OrigLen)
		}
	}
}

func TestNanosecondResolution(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, WithNanosecondResolution())
	ts := time.Unix(1700000000, 123456789)
	if err := w.WritePacket(ts, []byte{1}); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Timestamp.Equal(ts) {
		t.Errorf("nanosecond ts = %v, want %v", rec.Timestamp, ts)
	}
}

func TestMicrosecondTruncatesNanos(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	ts := time.Unix(1700000000, 123456789)
	if err := w.WritePacket(ts, []byte{1}); err != nil {
		t.Fatal(err)
	}
	r, _ := NewReader(&buf)
	rec, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	want := time.Unix(1700000000, 123456000)
	if !rec.Timestamp.Equal(want) {
		t.Errorf("microsecond ts = %v, want %v", rec.Timestamp, want)
	}
}

func TestLittleEndianRead(t *testing.T) {
	// Hand-build a little-endian microsecond file, the most common form
	// produced by tcpdump on x86.
	var buf bytes.Buffer
	le := binary.LittleEndian
	hdr := make([]byte, 24)
	le.PutUint32(hdr[0:], 0xa1b2c3d4)
	le.PutUint16(hdr[4:], 2)
	le.PutUint16(hdr[6:], 4)
	le.PutUint32(hdr[16:], 65535)
	le.PutUint32(hdr[20:], LinkTypeEthernet)
	buf.Write(hdr)
	rec := make([]byte, 16)
	le.PutUint32(rec[0:], 1700000000)
	le.PutUint32(rec[4:], 42)
	le.PutUint32(rec[8:], 3)
	le.PutUint32(rec[12:], 3)
	buf.Write(rec)
	buf.Write([]byte{7, 8, 9})

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Timestamp.Equal(time.Unix(1700000000, 42000)) {
		t.Errorf("ts = %v", got.Timestamp)
	}
	if !bytes.Equal(got.Data, []byte{7, 8, 9}) {
		t.Errorf("data = %v", got.Data)
	}
}

func TestBadMagic(t *testing.T) {
	_, err := NewReader(bytes.NewReader(make([]byte, 24)))
	if !errors.Is(err, ErrBadMagic) {
		t.Errorf("err = %v, want ErrBadMagic", err)
	}
}

func TestTruncatedHeader(t *testing.T) {
	_, err := NewReader(bytes.NewReader([]byte{0xa1, 0xb2}))
	if !errors.Is(err, ErrTruncated) {
		t.Errorf("err = %v, want ErrTruncated", err)
	}
}

func TestTruncatedRecordBody(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WritePacket(time.Now(), []byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	// Chop the last two payload bytes off.
	data := buf.Bytes()[:buf.Len()-2]
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); !errors.Is(err, ErrTruncated) {
		t.Errorf("err = %v, want ErrTruncated", err)
	}
}

func TestSnapLenTruncation(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, WithSnapLen(8))
	frame := make([]byte, 100)
	for i := range frame {
		frame[i] = byte(i)
	}
	if err := w.WritePacket(time.Now(), frame); err != nil {
		t.Fatal(err)
	}
	r, _ := NewReader(&buf)
	rec, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Data) != 8 {
		t.Errorf("captured %d bytes, want 8", len(rec.Data))
	}
	if rec.OrigLen != 100 {
		t.Errorf("OrigLen = %d, want 100", rec.OrigLen)
	}
}

func TestBogusCaptureLengthRejected(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, WithSnapLen(128))
	if err := w.WriteHeader(); err != nil {
		t.Fatal(err)
	}
	rec := make([]byte, 16)
	binary.BigEndian.PutUint32(rec[8:], 1<<30) // absurd caplen
	buf.Write(rec)
	r, _ := NewReader(&buf)
	if _, err := r.Next(); err == nil {
		t.Error("expected error for bogus capture length")
	}
}

func TestEmptyFileWithHeader(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteHeader(); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteHeader(); err != nil { // idempotent
		t.Fatal(err)
	}
	if buf.Len() != 24 {
		t.Fatalf("double header written: %d bytes", buf.Len())
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("err = %v, want io.EOF", err)
	}
}

// buildCapture renders n deterministic frames for the ChunkReader tests.
func buildCapture(t *testing.T, n int) ([]byte, [][]byte) {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	var frames [][]byte
	for i := 0; i < n; i++ {
		f := make([]byte, 1+(i*37)%1400)
		for j := range f {
			f[j] = byte(i + j)
		}
		frames = append(frames, f)
		if err := w.WritePacket(time.Unix(1700000000+int64(i), 0), f); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes(), frames
}

// TestChunkReaderMatchesReaderAtAnyGranularity feeds the same capture in
// chunks of various sizes — including single bytes — and requires the
// exact record sequence the batch Reader produces.
func TestChunkReaderMatchesReaderAtAnyGranularity(t *testing.T) {
	data, frames := buildCapture(t, 40)
	for _, chunk := range []int{1, 7, 1000, len(data)} {
		cr := NewChunkReader()
		var recs []Record
		for off := 0; off < len(data); off += chunk {
			end := off + chunk
			if end > len(data) {
				end = len(data)
			}
			cr.Feed(data[off:end])
			for {
				rec, ok, err := cr.Next()
				if err != nil {
					t.Fatalf("chunk %d: %v", chunk, err)
				}
				if !ok {
					break
				}
				recs = append(recs, rec)
			}
		}
		if err := cr.TailErr(); err != nil {
			t.Fatalf("chunk %d: TailErr = %v", chunk, err)
		}
		if len(recs) != len(frames) {
			t.Fatalf("chunk %d: %d records, want %d", chunk, len(recs), len(frames))
		}
		for i, rec := range recs {
			if !bytes.Equal(rec.Data, frames[i]) {
				t.Fatalf("chunk %d: record %d data mismatch", chunk, i)
			}
			if !rec.Timestamp.Equal(time.Unix(1700000000+int64(i), 0)) {
				t.Fatalf("chunk %d: record %d timestamp %v", chunk, i, rec.Timestamp)
			}
		}
	}
}

// TestChunkReaderDataStable pins the no-in-place-compaction guarantee:
// record Data obtained early must survive arbitrarily many later feeds.
func TestChunkReaderDataStable(t *testing.T) {
	data, frames := buildCapture(t, 200)
	cr := NewChunkReader()
	var held []Record
	for off := 0; off < len(data); off += 512 {
		end := off + 512
		if end > len(data) {
			end = len(data)
		}
		cr.Feed(data[off:end])
		for {
			rec, ok, err := cr.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			held = append(held, rec)
		}
	}
	for i, rec := range held {
		if !bytes.Equal(rec.Data, frames[i]) {
			t.Fatalf("record %d data corrupted by later feeds", i)
		}
	}
}

// TestChunkReaderTailErr mirrors the batch reader's truncation reporting.
func TestChunkReaderTailErr(t *testing.T) {
	data, _ := buildCapture(t, 2)
	cases := []struct {
		name string
		cut  int
	}{
		{"mid file header", 10},
		{"mid record header", 24 + 8},
		{"mid record body", len(data) - 1},
	}
	for _, tc := range cases {
		cr := NewChunkReader()
		cr.Feed(data[:tc.cut])
		for {
			_, ok, err := cr.Next()
			if err != nil || !ok {
				break
			}
		}
		if err := cr.TailErr(); !errors.Is(err, ErrTruncated) {
			t.Errorf("%s: TailErr = %v, want ErrTruncated", tc.name, err)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(payloads [][]byte, secs []uint32) bool {
		if len(payloads) > 50 {
			payloads = payloads[:50]
		}
		var buf bytes.Buffer
		w := NewWriter(&buf, WithNanosecondResolution())
		for i, p := range payloads {
			if len(p) > 4096 {
				p = p[:4096]
			}
			payloads[i] = p
			var sec uint32 = 1700000000
			if i < len(secs) {
				sec = secs[i] % 2000000000
			}
			if err := w.WritePacket(time.Unix(int64(sec), int64(i)), p); err != nil {
				return false
			}
		}
		if len(payloads) == 0 {
			return true
		}
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		recs, err := r.ReadAll()
		if err != nil || len(recs) != len(payloads) {
			return false
		}
		for i := range recs {
			if !bytes.Equal(recs[i].Data, payloads[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestChunkReaderFeedOwned pins the adoption fast path: an owned
// whole-capture feed parses identically to copied feeds and performs no
// buffer copy (records alias the caller's array).
func TestChunkReaderFeedOwned(t *testing.T) {
	data, frames := buildCapture(t, 10)
	cr := NewChunkReader()
	cr.FeedOwned(data)
	for i := 0; ; i++ {
		rec, ok, err := cr.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			if i != len(frames) {
				t.Fatalf("parsed %d records, want %d", i, len(frames))
			}
			break
		}
		if !bytes.Equal(rec.Data, frames[i]) {
			t.Fatalf("record %d data mismatch", i)
		}
		if len(rec.Data) > 0 && &rec.Data[0] != &data[recOffset(data, rec.Data)] {
			t.Fatalf("record %d data was copied", i)
		}
	}
	if err := cr.TailErr(); err != nil {
		t.Fatal(err)
	}
}

// recOffset locates sub's backing offset within data (sub must alias it).
func recOffset(data, sub []byte) int {
	for i := range data {
		if &data[i] == &sub[0] {
			return i
		}
	}
	return -1
}
