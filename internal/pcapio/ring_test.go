package pcapio

import "testing"

// TestPacketRingRecycles is the steady-state contract: allocating and
// releasing far more bytes than one block must cycle a bounded set of
// blocks rather than grow.
func TestPacketRingRecycles(t *testing.T) {
	r := NewPacketRing(1 << 10)
	var live [][]byte
	for i := 0; i < 1000; i++ {
		live = append(live, r.AllocFrame(make([]byte, 100)))
		if len(live) > 3 {
			r.Release(live[0]) // FIFO-ish consumer holding a small window
			live = live[1:]
		}
	}
	for _, b := range live {
		r.Release(b)
	}
	if r.InUse() != 0 {
		t.Fatalf("InUse = %d after releasing everything", r.InUse())
	}
	if r.Allocated() != 100*1000 {
		t.Fatalf("Allocated = %d", r.Allocated())
	}
	if n := r.Blocks(); n > 4 {
		t.Fatalf("ring grew to %d blocks; slots are not recycling", n)
	}
}

// TestPacketRingSpanRelease checks split release: a slot handed back in
// pieces (header now, payload later) recycles the block once the pieces
// add up, and ReleaseExcept releases exactly the non-kept spans.
func TestPacketRingSpanRelease(t *testing.T) {
	r := NewPacketRing(256)
	slot := r.Alloc(100)
	payload := slot[40:90]
	r.ReleaseExcept(slot, payload)
	if r.InUse() != 50 {
		t.Fatalf("InUse = %d after releasing around the payload", r.InUse())
	}
	r.Release(payload)
	if r.InUse() != 0 {
		t.Fatalf("InUse = %d after final span", r.InUse())
	}
	// The block must now be reusable.
	b2 := r.Alloc(200)
	if r.Blocks() != 1 {
		t.Fatalf("Blocks = %d, want 1 (recycled)", r.Blocks())
	}
	r.Release(b2)

	// ReleaseExcept with nothing kept releases the whole slot.
	s3 := r.Alloc(64)
	r.ReleaseExcept(s3, nil)
	if r.InUse() != 0 {
		t.Fatalf("InUse = %d after ReleaseExcept(all)", r.InUse())
	}
}

// TestPacketRingIgnoresForeignSpans: spans from memory the ring does not
// own must be ignored, so one release callback can serve every feed path.
func TestPacketRingIgnoresForeignSpans(t *testing.T) {
	r := NewPacketRing(256)
	b := r.Alloc(10)
	r.Release(make([]byte, 50))
	r.Release(nil)
	if r.InUse() != 10 {
		t.Fatalf("foreign release corrupted accounting: InUse = %d", r.InUse())
	}
	r.Release(b)
	if r.InUse() != 0 {
		t.Fatalf("InUse = %d", r.InUse())
	}
}

// TestPacketRingTrim: a capture read shorter than its reservation returns
// the tail immediately.
func TestPacketRingTrim(t *testing.T) {
	r := NewPacketRing(256)
	slot := r.Alloc(128)
	frame := r.Trim(slot, 60)
	if len(frame) != 60 || r.InUse() != 60 {
		t.Fatalf("Trim: len=%d InUse=%d", len(frame), r.InUse())
	}
	r.Release(frame)
	if r.InUse() != 0 {
		t.Fatalf("InUse = %d", r.InUse())
	}
}

// TestPacketRingOversizeFrame: frames larger than the block size get a
// dedicated block and still recycle.
func TestPacketRingOversizeFrame(t *testing.T) {
	r := NewPacketRing(64)
	big := r.AllocFrame(make([]byte, 1000))
	small := r.AllocFrame(make([]byte, 10))
	r.Release(big)
	r.Release(small)
	if r.InUse() != 0 {
		t.Fatalf("InUse = %d", r.InUse())
	}
	// The big block is reused for the next oversize frame.
	before := r.Blocks()
	r.Release(r.AllocFrame(make([]byte, 900)))
	if r.Blocks() != before {
		t.Fatalf("oversize alloc grew blocks %d -> %d", before, r.Blocks())
	}
}
