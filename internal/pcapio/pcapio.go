// Package pcapio reads and writes classic libpcap capture files
// (the tcpdump ".pcap" format) with the standard library only.
//
// The simulator writes its synthetic viewing sessions as genuine pcap
// files and the attack reads them back through this package, so the
// analysis pipeline is byte-compatible with captures produced by tcpdump
// or Wireshark. Both file endiannesses and both timestamp resolutions
// (microsecond magic 0xa1b2c3d4 and nanosecond magic 0xa1b23c4d) are
// supported on read; writes use the host-independent big-endian
// microsecond form by default.
//
// Reading is zero-copy: a Reader holds the whole capture in one arena
// buffer and every Record's Data sub-slices it, so a multi-megabyte
// capture costs one buffer (or none at all via NewBytesReader) instead of
// one allocation per packet. ChunkReader is the incremental form for live
// feeds: pcap bytes arrive in chunks of any size and complete records pop
// out as soon as their last byte is in.
package pcapio

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// Link types (a tiny subset of the registry).
const (
	// LinkTypeEthernet is DLT_EN10MB: Ethernet II frames.
	LinkTypeEthernet uint32 = 1
)

const (
	magicMicros        = 0xa1b2c3d4
	magicNanos         = 0xa1b23c4d
	magicMicrosSwapped = 0xd4c3b2a1
	magicNanosSwapped  = 0x4d3cb2a1

	fileHeaderLen   = 24
	recordHeaderLen = 16
)

// Errors returned by the reader.
var (
	ErrBadMagic  = errors.New("pcapio: not a pcap file (bad magic)")
	ErrTruncated = errors.New("pcapio: truncated capture file")
)

// Record is one captured frame.
type Record struct {
	Timestamp time.Time
	// OrigLen is the frame's length on the wire; Data may be shorter if
	// the capture used a snap length.
	OrigLen int
	// Data sub-slices the reader's arena buffer: it stays valid for the
	// reader's lifetime but must be copied if it should outlive it.
	Data []byte
}

// Writer emits a pcap file to an io.Writer.
type Writer struct {
	w       io.Writer
	snapLen uint32
	nanos   bool
	wrote   bool
}

// WriterOption customises a Writer.
type WriterOption func(*Writer)

// WithNanosecondResolution makes the writer use the nanosecond-precision
// magic number and timestamp encoding.
func WithNanosecondResolution() WriterOption {
	return func(w *Writer) { w.nanos = true }
}

// WithSnapLen sets the advertised snap length (default 262144, tcpdump's
// modern default).
func WithSnapLen(n uint32) WriterOption {
	return func(w *Writer) { w.snapLen = n }
}

// NewWriter creates a pcap writer for Ethernet frames. The file header is
// written lazily on the first WritePacket (or eagerly via Flush of a
// zero-packet file is not supported; call WriteHeader explicitly if an
// empty capture must still be a valid file).
func NewWriter(w io.Writer, opts ...WriterOption) *Writer {
	pw := &Writer{w: w, snapLen: 262144}
	for _, o := range opts {
		o(pw)
	}
	return pw
}

// WriteHeader writes the global file header. It is idempotent.
func (w *Writer) WriteHeader() error {
	if w.wrote {
		return nil
	}
	var hdr [fileHeaderLen]byte
	magic := uint32(magicMicros)
	if w.nanos {
		magic = magicNanos
	}
	binary.BigEndian.PutUint32(hdr[0:], magic)
	binary.BigEndian.PutUint16(hdr[4:], 2) // version major
	binary.BigEndian.PutUint16(hdr[6:], 4) // version minor
	// thiszone and sigfigs stay zero.
	binary.BigEndian.PutUint32(hdr[16:], w.snapLen)
	binary.BigEndian.PutUint32(hdr[20:], LinkTypeEthernet)
	if _, err := w.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("pcapio: writing file header: %w", err)
	}
	w.wrote = true
	return nil
}

// WritePacket appends one frame with the given capture timestamp.
func (w *Writer) WritePacket(ts time.Time, frame []byte) error {
	if err := w.WriteHeader(); err != nil {
		return err
	}
	capLen := len(frame)
	if uint32(capLen) > w.snapLen {
		capLen = int(w.snapLen)
	}
	var hdr [recordHeaderLen]byte
	sec := ts.Unix()
	var sub int64
	if w.nanos {
		sub = int64(ts.Nanosecond())
	} else {
		sub = int64(ts.Nanosecond() / 1000)
	}
	binary.BigEndian.PutUint32(hdr[0:], uint32(sec))
	binary.BigEndian.PutUint32(hdr[4:], uint32(sub))
	binary.BigEndian.PutUint32(hdr[8:], uint32(capLen))
	binary.BigEndian.PutUint32(hdr[12:], uint32(len(frame)))
	if _, err := w.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("pcapio: writing record header: %w", err)
	}
	if _, err := w.w.Write(frame[:capLen]); err != nil {
		return fmt.Errorf("pcapio: writing record data: %w", err)
	}
	return nil
}

// fileHeader is the decoded global header shared by both reader forms.
type fileHeader struct {
	order    binary.ByteOrder
	nanos    bool
	linkType uint32
	snapLen  uint32
}

// parseFileHeader decodes the 24-byte global header.
func parseFileHeader(hdr []byte) (fileHeader, error) {
	var fh fileHeader
	magic := binary.BigEndian.Uint32(hdr[0:])
	switch magic {
	case magicMicros:
		fh.order = binary.BigEndian
	case magicNanos:
		fh.order, fh.nanos = binary.BigEndian, true
	case magicMicrosSwapped:
		fh.order = binary.LittleEndian
	case magicNanosSwapped:
		fh.order, fh.nanos = binary.LittleEndian, true
	default:
		return fh, fmt.Errorf("%w: %#08x", ErrBadMagic, magic)
	}
	fh.snapLen = fh.order.Uint32(hdr[16:])
	fh.linkType = fh.order.Uint32(hdr[20:])
	return fh, nil
}

// recordTime decodes a record header's timestamp fields.
func (fh fileHeader) recordTime(hdr []byte) time.Time {
	sec := fh.order.Uint32(hdr[0:])
	sub := fh.order.Uint32(hdr[4:])
	if fh.nanos {
		return time.Unix(int64(sec), int64(sub))
	}
	return time.Unix(int64(sec), int64(sub)*1000)
}

// checkCapLen guards against nonsense lengths from corrupt files before
// slicing. (+64 tolerates writers that set snaplen loosely.)
func (fh fileHeader) checkCapLen(capLen uint32) error {
	if fh.snapLen > 0 && capLen > fh.snapLen+64 {
		return fmt.Errorf("pcapio: record capture length %d exceeds snap length %d",
			capLen, fh.snapLen)
	}
	return nil
}

// Reader parses a pcap capture held entirely in memory: the input is read
// into one arena up front and Next sub-slices it per record, so iterating
// a capture performs no per-packet allocation.
type Reader struct {
	fileHeader
	buf []byte
	off int
}

// NewReader drains r into the arena, parses the global header and returns
// a Reader positioned at the first record.
func NewReader(r io.Reader) (*Reader, error) {
	buf, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("pcapio: reading capture: %w", err)
	}
	return NewBytesReader(buf)
}

// NewBytesReader parses an in-memory capture without copying it: records
// sub-slice data directly.
func NewBytesReader(data []byte) (*Reader, error) {
	if len(data) < fileHeaderLen {
		return nil, fmt.Errorf("%w: file header: unexpected EOF", ErrTruncated)
	}
	fh, err := parseFileHeader(data)
	if err != nil {
		return nil, err
	}
	return &Reader{fileHeader: fh, buf: data, off: fileHeaderLen}, nil
}

// LinkType returns the capture's link-layer type.
func (r *Reader) LinkType() uint32 { return r.linkType }

// SnapLen returns the capture's snap length.
func (r *Reader) SnapLen() uint32 { return r.snapLen }

// Next returns the next record, or io.EOF at a clean end of file.
// A record header that promises more bytes than the file contains yields
// ErrTruncated, so partially written captures are detected rather than
// silently shortened. The record's Data sub-slices the reader's arena.
func (r *Reader) Next() (Record, error) {
	if r.off == len(r.buf) {
		return Record{}, io.EOF
	}
	if len(r.buf)-r.off < recordHeaderLen {
		return Record{}, fmt.Errorf("%w: record header: unexpected EOF", ErrTruncated)
	}
	hdr := r.buf[r.off:]
	capLen := r.order.Uint32(hdr[8:])
	origLen := r.order.Uint32(hdr[12:])
	if err := r.checkCapLen(capLen); err != nil {
		return Record{}, err
	}
	if len(r.buf)-r.off-recordHeaderLen < int(capLen) {
		return Record{}, fmt.Errorf("%w: record body: unexpected EOF", ErrTruncated)
	}
	start := r.off + recordHeaderLen
	r.off = start + int(capLen)
	return Record{
		Timestamp: r.recordTime(hdr),
		OrigLen:   int(origLen),
		Data:      r.buf[start:r.off:r.off],
	}, nil
}

// ReadAll drains the reader into a slice. It returns records read so far
// alongside any error other than io.EOF.
func (r *Reader) ReadAll() ([]Record, error) {
	var recs []Record
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return recs, nil
		}
		if err != nil {
			return recs, err
		}
		recs = append(recs, rec)
	}
}

// ChunkReader is the incremental reader for live feeds: pcap bytes are
// appended in chunks of any size — down to a single byte — and Next
// returns each record as soon as its last byte has arrived. Returned
// records sub-slice the reader's internal buffer; the buffer is never
// compacted in place, so outstanding Data slices stay valid for the
// reader's lifetime.
type ChunkReader struct {
	fileHeader
	headerDone bool
	buf        []byte
	off        int
	err        error
}

// NewChunkReader returns an empty incremental reader awaiting the global
// file header.
func NewChunkReader() *ChunkReader { return &ChunkReader{} }

// Feed appends capture bytes (copying them — the caller may reuse its
// buffer). Safe to call with any chunking, including mid-header and
// mid-record splits.
func (c *ChunkReader) Feed(data []byte) {
	if c.err != nil {
		return
	}
	// Retire the consumed prefix by moving the live tail to a fresh
	// buffer (never in place: outstanding Data sub-slices must survive).
	if c.off >= 4096 && c.off >= len(c.buf)-c.off {
		fresh := make([]byte, len(c.buf)-c.off, len(c.buf)-c.off+len(data)+4096)
		copy(fresh, c.buf[c.off:])
		c.buf, c.off = fresh, 0
	}
	c.buf = append(c.buf, data...)
}

// FeedOwned transfers ownership of data to the reader: when nothing is
// buffered the slice is adopted directly with no copy — the whole-capture
// fast path the one-shot wrapper uses — and otherwise it falls back to
// Feed. The caller must not mutate data afterwards.
func (c *ChunkReader) FeedOwned(data []byte) {
	if c.err == nil && c.Buffered() == 0 {
		// Cap to length so a later Feed appends into a fresh array rather
		// than the caller's spare capacity.
		c.buf, c.off = data[:len(data):len(data)], 0
		return
	}
	c.Feed(data)
}

// LinkType returns the capture's link-layer type (valid once the file
// header has been consumed).
func (c *ChunkReader) LinkType() uint32 { return c.linkType }

// SnapLen returns the capture's snap length (valid once the file header
// has been consumed).
func (c *ChunkReader) SnapLen() uint32 { return c.snapLen }

// Buffered reports the number of fed bytes not yet consumed by Next.
func (c *ChunkReader) Buffered() int { return len(c.buf) - c.off }

// HeaderDone reports whether the global file header has been consumed.
func (c *ChunkReader) HeaderDone() bool { return c.headerDone }

// Next returns the next complete record. ok is false when more bytes are
// needed; a malformed header yields an error, after which the reader is
// stuck (matching Reader's fail-stop behaviour).
func (c *ChunkReader) Next() (rec Record, ok bool, err error) {
	if c.err != nil {
		return Record{}, false, c.err
	}
	if !c.headerDone {
		if c.Buffered() < fileHeaderLen {
			return Record{}, false, nil
		}
		fh, err := parseFileHeader(c.buf[c.off:])
		if err != nil {
			c.err = err
			return Record{}, false, err
		}
		c.fileHeader = fh
		c.off += fileHeaderLen
		c.headerDone = true
	}
	if c.Buffered() < recordHeaderLen {
		return Record{}, false, nil
	}
	hdr := c.buf[c.off:]
	capLen := c.order.Uint32(hdr[8:])
	if err := c.checkCapLen(capLen); err != nil {
		c.err = err
		return Record{}, false, err
	}
	if c.Buffered() < recordHeaderLen+int(capLen) {
		return Record{}, false, nil
	}
	origLen := c.order.Uint32(hdr[12:])
	start := c.off + recordHeaderLen
	c.off = start + int(capLen)
	return Record{
		Timestamp: c.recordTime(hdr),
		OrigLen:   int(origLen),
		Data:      c.buf[start:c.off:c.off],
	}, true, nil
}

// TailErr reports whether the feed ended on a clean record boundary: nil
// when every fed byte was consumed, the same errors a batch Reader would
// return otherwise (missing file header, or a record cut off mid-header /
// mid-body). Call it when the feed is known to be complete.
func (c *ChunkReader) TailErr() error {
	if c.err != nil {
		return c.err
	}
	if !c.headerDone {
		return fmt.Errorf("%w: file header: unexpected EOF", ErrTruncated)
	}
	switch n := c.Buffered(); {
	case n == 0:
		return nil
	case n < recordHeaderLen:
		return fmt.Errorf("%w: record header: unexpected EOF", ErrTruncated)
	default:
		return fmt.Errorf("%w: record body: unexpected EOF", ErrTruncated)
	}
}
