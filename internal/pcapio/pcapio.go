// Package pcapio reads and writes classic libpcap capture files
// (the tcpdump ".pcap" format) with the standard library only.
//
// The simulator writes its synthetic viewing sessions as genuine pcap
// files and the attack reads them back through this package, so the
// analysis pipeline is byte-compatible with captures produced by tcpdump
// or Wireshark. Both file endiannesses and both timestamp resolutions
// (microsecond magic 0xa1b2c3d4 and nanosecond magic 0xa1b23c4d) are
// supported on read; writes use the host-independent big-endian
// microsecond form by default.
package pcapio

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// Link types (a tiny subset of the registry).
const (
	// LinkTypeEthernet is DLT_EN10MB: Ethernet II frames.
	LinkTypeEthernet uint32 = 1
)

const (
	magicMicros        = 0xa1b2c3d4
	magicNanos         = 0xa1b23c4d
	magicMicrosSwapped = 0xd4c3b2a1
	magicNanosSwapped  = 0x4d3cb2a1

	fileHeaderLen   = 24
	recordHeaderLen = 16
)

// Errors returned by the reader.
var (
	ErrBadMagic  = errors.New("pcapio: not a pcap file (bad magic)")
	ErrTruncated = errors.New("pcapio: truncated capture file")
)

// Record is one captured frame.
type Record struct {
	Timestamp time.Time
	// OrigLen is the frame's length on the wire; Data may be shorter if
	// the capture used a snap length.
	OrigLen int
	Data    []byte
}

// Writer emits a pcap file to an io.Writer.
type Writer struct {
	w       io.Writer
	snapLen uint32
	nanos   bool
	wrote   bool
}

// WriterOption customises a Writer.
type WriterOption func(*Writer)

// WithNanosecondResolution makes the writer use the nanosecond-precision
// magic number and timestamp encoding.
func WithNanosecondResolution() WriterOption {
	return func(w *Writer) { w.nanos = true }
}

// WithSnapLen sets the advertised snap length (default 262144, tcpdump's
// modern default).
func WithSnapLen(n uint32) WriterOption {
	return func(w *Writer) { w.snapLen = n }
}

// NewWriter creates a pcap writer for Ethernet frames. The file header is
// written lazily on the first WritePacket (or eagerly via Flush of a
// zero-packet file is not supported; call WriteHeader explicitly if an
// empty capture must still be a valid file).
func NewWriter(w io.Writer, opts ...WriterOption) *Writer {
	pw := &Writer{w: w, snapLen: 262144}
	for _, o := range opts {
		o(pw)
	}
	return pw
}

// WriteHeader writes the global file header. It is idempotent.
func (w *Writer) WriteHeader() error {
	if w.wrote {
		return nil
	}
	var hdr [fileHeaderLen]byte
	magic := uint32(magicMicros)
	if w.nanos {
		magic = magicNanos
	}
	binary.BigEndian.PutUint32(hdr[0:], magic)
	binary.BigEndian.PutUint16(hdr[4:], 2) // version major
	binary.BigEndian.PutUint16(hdr[6:], 4) // version minor
	// thiszone and sigfigs stay zero.
	binary.BigEndian.PutUint32(hdr[16:], w.snapLen)
	binary.BigEndian.PutUint32(hdr[20:], LinkTypeEthernet)
	if _, err := w.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("pcapio: writing file header: %w", err)
	}
	w.wrote = true
	return nil
}

// WritePacket appends one frame with the given capture timestamp.
func (w *Writer) WritePacket(ts time.Time, frame []byte) error {
	if err := w.WriteHeader(); err != nil {
		return err
	}
	capLen := len(frame)
	if uint32(capLen) > w.snapLen {
		capLen = int(w.snapLen)
	}
	var hdr [recordHeaderLen]byte
	sec := ts.Unix()
	var sub int64
	if w.nanos {
		sub = int64(ts.Nanosecond())
	} else {
		sub = int64(ts.Nanosecond() / 1000)
	}
	binary.BigEndian.PutUint32(hdr[0:], uint32(sec))
	binary.BigEndian.PutUint32(hdr[4:], uint32(sub))
	binary.BigEndian.PutUint32(hdr[8:], uint32(capLen))
	binary.BigEndian.PutUint32(hdr[12:], uint32(len(frame)))
	if _, err := w.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("pcapio: writing record header: %w", err)
	}
	if _, err := w.w.Write(frame[:capLen]); err != nil {
		return fmt.Errorf("pcapio: writing record data: %w", err)
	}
	return nil
}

// Reader parses a pcap file from an io.Reader.
type Reader struct {
	r        io.Reader
	order    binary.ByteOrder
	nanos    bool
	linkType uint32
	snapLen  uint32
}

// NewReader parses the global header and returns a Reader positioned at
// the first record.
func NewReader(r io.Reader) (*Reader, error) {
	var hdr [fileHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: file header: %v", ErrTruncated, err)
	}
	pr := &Reader{r: r}
	magic := binary.BigEndian.Uint32(hdr[0:])
	switch magic {
	case magicMicros:
		pr.order = binary.BigEndian
	case magicNanos:
		pr.order, pr.nanos = binary.BigEndian, true
	case magicMicrosSwapped:
		pr.order = binary.LittleEndian
	case magicNanosSwapped:
		pr.order, pr.nanos = binary.LittleEndian, true
	default:
		return nil, fmt.Errorf("%w: %#08x", ErrBadMagic, magic)
	}
	pr.snapLen = pr.order.Uint32(hdr[16:])
	pr.linkType = pr.order.Uint32(hdr[20:])
	return pr, nil
}

// LinkType returns the capture's link-layer type.
func (r *Reader) LinkType() uint32 { return r.linkType }

// SnapLen returns the capture's snap length.
func (r *Reader) SnapLen() uint32 { return r.snapLen }

// Next returns the next record, or io.EOF at a clean end of file.
// A record header that promises more bytes than the file contains yields
// ErrTruncated, so partially written captures are detected rather than
// silently shortened.
func (r *Reader) Next() (Record, error) {
	var hdr [recordHeaderLen]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		if err == io.EOF {
			return Record{}, io.EOF
		}
		return Record{}, fmt.Errorf("%w: record header: %v", ErrTruncated, err)
	}
	sec := r.order.Uint32(hdr[0:])
	sub := r.order.Uint32(hdr[4:])
	capLen := r.order.Uint32(hdr[8:])
	origLen := r.order.Uint32(hdr[12:])
	if r.snapLen > 0 && capLen > r.snapLen+64 {
		// Guard against nonsense lengths from corrupt files before
		// allocating. (+64 tolerates writers that set snaplen loosely.)
		return Record{}, fmt.Errorf("pcapio: record capture length %d exceeds snap length %d",
			capLen, r.snapLen)
	}
	data := make([]byte, capLen)
	if _, err := io.ReadFull(r.r, data); err != nil {
		return Record{}, fmt.Errorf("%w: record body: %v", ErrTruncated, err)
	}
	var ts time.Time
	if r.nanos {
		ts = time.Unix(int64(sec), int64(sub))
	} else {
		ts = time.Unix(int64(sec), int64(sub)*1000)
	}
	return Record{Timestamp: ts, OrigLen: int(origLen), Data: data}, nil
}

// ReadAll drains the reader into a slice. It returns records read so far
// alongside any error other than io.EOF.
func (r *Reader) ReadAll() ([]Record, error) {
	var recs []Record
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return recs, nil
		}
		if err != nil {
			return recs, err
		}
		recs = append(recs, rec)
	}
}
