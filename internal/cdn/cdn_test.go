package cdn

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"io"
	"net"
	"testing"

	"repro/internal/media"
	"repro/internal/profiles"
	"repro/internal/script"
	"repro/internal/statejson"
	"repro/internal/wire"
)

func testServer(t *testing.T) *Server {
	t.Helper()
	g := script.Bandersnatch()
	return New(g, media.Encode(g, media.DefaultLadder, 3))
}

func TestChunkResponseSize(t *testing.T) {
	s := testServer(t)
	chunks, err := s.Encoding.Chunks("S0", 1)
	if err != nil {
		t.Fatal(err)
	}
	got := s.ChunkResponseSize(chunks[0])
	if got != chunks[0].Size+ResponseOverhead {
		t.Errorf("response size = %d", got)
	}
}

func TestHandleReportType1(t *testing.T) {
	s := testServer(t)
	b := statejson.NewBuilder(profiles.Lookup(profiles.Fig2Ubuntu), "m", "sess", wire.NewRNG(1))
	body, _, err := b.Type1("S0", 1000)
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.HandleReport(body)
	if err != nil {
		t.Fatal(err)
	}
	if r.Kind != statejson.Type1 || r.ChoicePoint != "S0" {
		t.Errorf("report = %+v", r)
	}
	if got := s.Reports(); len(got) != 1 {
		t.Errorf("stored reports = %d", len(got))
	}
}

func TestHandleReportType2Validation(t *testing.T) {
	s := testServer(t)
	b := statejson.NewBuilder(profiles.Lookup(profiles.Fig2Ubuntu), "m", "sess", wire.NewRNG(1))

	// Valid: S0's alternative is S1b.
	body, _, err := b.Type2("S0", "S1b", 1000)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.HandleReport(body); err != nil {
		t.Errorf("valid type-2 rejected: %v", err)
	}

	// Invalid: S1 is not the alternative at S0.
	body, _, err = b.Type2("S0", "S1", 1000)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.HandleReport(body); err == nil {
		t.Error("selection of the default via type-2 accepted")
	}

	// Invalid: S1 is not a choice point at all.
	body, _, err = b.Type2("S1", "S2", 1000)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.HandleReport(body); err == nil {
		t.Error("type-2 at a non-choice segment accepted")
	}
}

func TestHandleReportGarbage(t *testing.T) {
	s := testServer(t)
	if _, err := s.HandleReport([]byte("junk")); err == nil {
		t.Error("garbage report accepted")
	}
}

// sockRequest writes one socket-protocol request and reads the response.
func sockRequest(t *testing.T, rw *bufio.ReadWriter, kind byte, body []byte) []byte {
	t.Helper()
	var lenBuf [4]byte
	if err := rw.WriteByte(kind); err != nil {
		t.Fatal(err)
	}
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(body)))
	rw.Write(lenBuf[:])
	rw.Write(body)
	if err := rw.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(rw, lenBuf[:]); err != nil {
		t.Fatal(err)
	}
	resp := make([]byte, binary.BigEndian.Uint32(lenBuf[:]))
	if _, err := io.ReadFull(rw, resp); err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestServeSocketProtocol(t *testing.T) {
	s := testServer(t)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go s.Serve(l)

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	rw := bufio.NewReadWriter(bufio.NewReader(conn), bufio.NewWriter(conn))

	// Chunk request.
	req, _ := json.Marshal(map[string]any{"segment": "S0", "index": 0, "quality": 1})
	resp := sockRequest(t, rw, SockChunk, req)
	chunks, _ := s.Encoding.Chunks("S0", 1)
	if len(resp) != s.ChunkResponseSize(chunks[0]) {
		t.Errorf("chunk response %d bytes, want %d", len(resp), s.ChunkResponseSize(chunks[0]))
	}

	// State report.
	b := statejson.NewBuilder(profiles.Lookup(profiles.Fig2Ubuntu), "m", "sock-sess", wire.NewRNG(2))
	body, _, err := b.Type1("S2", 5000)
	if err != nil {
		t.Fatal(err)
	}
	resp = sockRequest(t, rw, SockReport, body)
	if string(resp) != `{"ok":1}` {
		t.Errorf("report response = %q", resp)
	}
	if got := s.Reports(); len(got) != 1 || got[0].SessionID != "sock-sess" {
		t.Errorf("reports = %+v", got)
	}
}

func TestServeRejectsBadChunkIndex(t *testing.T) {
	s := testServer(t)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go s.Serve(l)

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	rw := bufio.NewReadWriter(bufio.NewReader(conn), bufio.NewWriter(conn))

	req, _ := json.Marshal(map[string]any{"segment": "S0", "index": 9999, "quality": 1})
	var lenBuf [4]byte
	rw.WriteByte(SockChunk)
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(req)))
	rw.Write(lenBuf[:])
	rw.Write(req)
	rw.Flush()
	// The server drops the connection on protocol errors.
	if _, err := io.ReadFull(rw, lenBuf[:]); err == nil {
		t.Error("expected connection close on bad index")
	}
}
