// Package cdn models the streaming service's server side: it owns the
// encoded title, answers chunk requests with response sizes (media bytes
// plus HTTP response framing) and ingests interactive state reports. The
// session simulator drives it in virtual time; a socket mode (Serve) runs
// the same logic over real TCP connections for the live-capture example.
package cdn

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/media"
	"repro/internal/script"
	"repro/internal/statejson"
)

// ResponseOverhead is the HTTP response framing added to each chunk
// (status line, headers, frame headers).
const ResponseOverhead = 310

// Server is the origin for one title.
type Server struct {
	Graph    *script.Graph
	Encoding *media.Encoding

	mu      sync.Mutex
	reports []statejson.Report
}

// New returns a Server for a title.
func New(g *script.Graph, e *media.Encoding) *Server {
	return &Server{Graph: g, Encoding: e}
}

// ChunkResponseSize returns the bytes the server sends for one chunk
// request: the media payload plus response framing.
func (s *Server) ChunkResponseSize(c media.Chunk) int {
	return c.Size + ResponseOverhead
}

// HandleReport ingests one state-report body, mirroring what the real
// service records. The parsed report is retained for ground-truth
// cross-checks.
func (s *Server) HandleReport(body []byte) (statejson.Report, error) {
	r, err := statejson.Parse(body)
	if err != nil {
		return statejson.Report{}, fmt.Errorf("cdn: %w", err)
	}
	// A type-2 selection must name a real segment that is an alternative
	// of the named choice point — the server-side sanity check Netflix
	// would apply.
	if r.Kind == statejson.Type2 {
		seg, ok := s.Graph.Segment(script.SegmentID(r.ChoicePoint))
		if !ok || seg.Choice == nil {
			return statejson.Report{}, fmt.Errorf("cdn: type-2 report names non-choice segment %q", r.ChoicePoint)
		}
		if script.SegmentID(r.Selection) != seg.Choice.Alternative {
			return statejson.Report{}, fmt.Errorf("cdn: type-2 selection %q is not the alternative of %q",
				r.Selection, r.ChoicePoint)
		}
	}
	s.mu.Lock()
	s.reports = append(s.reports, r)
	s.mu.Unlock()
	return r, nil
}

// Reports returns the ingested state reports in arrival order.
func (s *Server) Reports() []statejson.Report {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]statejson.Report(nil), s.reports...)
}

// --- Socket mode -----------------------------------------------------------
//
// The live example speaks a tiny length-prefixed protocol over a real TLS
// connection:
//
//	request  := u8 kind | u32 length | body
//	response := u32 length | body
//
// kind 1 = chunk request (body names "segment/index/quality"),
// kind 2 = state report (body is the JSON document, response is `{"ok":1}`).

// Request kinds on the socket protocol.
const (
	SockChunk  = 1
	SockReport = 2
)

// Serve accepts connections on l and answers the socket protocol until l
// closes. Each connection is handled on its own goroutine; Serve returns
// after the listener fails (normally because it was closed).
func (s *Server) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	for {
		if err := s.serveOne(r, w); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

func (s *Server) serveOne(r *bufio.Reader, w *bufio.Writer) error {
	kind, err := r.ReadByte()
	if err != nil {
		return err
	}
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n > 1<<20 {
		return fmt.Errorf("cdn: oversized request %d", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return err
	}

	var resp []byte
	switch kind {
	case SockChunk:
		var req struct {
			Segment string `json:"segment"`
			Index   int    `json:"index"`
			Quality int    `json:"quality"`
		}
		if err := json.Unmarshal(body, &req); err != nil {
			return fmt.Errorf("cdn: bad chunk request: %w", err)
		}
		chunks, err := s.Encoding.Chunks(script.SegmentID(req.Segment), req.Quality)
		if err != nil {
			return err
		}
		if req.Index < 0 || req.Index >= len(chunks) {
			return fmt.Errorf("cdn: chunk index %d out of range", req.Index)
		}
		resp = make([]byte, s.ChunkResponseSize(chunks[req.Index]))
	case SockReport:
		if _, err := s.HandleReport(body); err != nil {
			return err
		}
		resp = []byte(`{"ok":1}`)
	default:
		return fmt.Errorf("cdn: unknown request kind %d", kind)
	}

	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(resp)))
	if _, err := w.Write(lenBuf[:]); err != nil {
		return err
	}
	_, err = w.Write(resp)
	return err
}
