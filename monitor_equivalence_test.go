package whitemirror

import (
	"io"
	"reflect"
	"testing"

	"repro/internal/pcapio"
)

// feedChunks drives a fresh Monitor over data in fixed-size chunks.
func feedChunks(t *testing.T, atk *Attacker, data []byte, chunk int) *Inference {
	t.Helper()
	m := NewMonitor(atk, MonitorOptions{})
	for off := 0; off < len(data); off += chunk {
		end := off + chunk
		if end > len(data) {
			end = len(data)
		}
		if err := m.Feed(data[off:end]); err != nil {
			t.Fatal(err)
		}
	}
	inf, err := m.Close()
	if err != nil {
		t.Fatal(err)
	}
	return inf
}

// feedPackets drives a Monitor one decoded frame at a time.
func feedPackets(t *testing.T, atk *Attacker, data []byte) *Inference {
	t.Helper()
	pr, err := pcapio.NewBytesReader(data)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMonitor(atk, MonitorOptions{})
	for {
		rec, err := pr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := m.FeedPacket(rec.Timestamp, rec.Data); err != nil {
			t.Fatal(err)
		}
	}
	inf, err := m.Close()
	if err != nil {
		t.Fatal(err)
	}
	return inf
}

// TestMonitorChunkEquivalence is the wrapper contract for the streaming
// redesign: for every session of the `wmdataset -n 6 -seed 5` fixture
// (the PR-2 regression dataset), InferPcap — now a thin wrapper over
// attack.Monitor — and a Monitor fed the same capture in 1-byte chunks,
// packet by packet, and as one whole chunk all produce the identical
// Inference, down to every classified record, hypothesis and margin.
func TestMonitorChunkEquivalence(t *testing.T) {
	ds, err := GenerateDataset(6, 5)
	if err != nil {
		t.Fatal(err)
	}
	atk, err := TrainAttacker(TrainingOptions{Condition: ConditionUbuntu, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range ds.Points {
		// The same per-point seed wmdataset's WriteTo uses, so these are
		// byte-for-byte the published fixture captures.
		data, err := CapturePcap(p.Trace, uint64(p.Index))
		if err != nil {
			t.Fatal(err)
		}
		want, err := atk.InferPcap(data)
		if err != nil {
			t.Fatal(err)
		}
		if got := feedChunks(t, atk, data, len(data)); !reflect.DeepEqual(got, want) {
			t.Errorf("session %03d: whole-capture feed diverged from InferPcap", p.Index+1)
		}
		if got := feedPackets(t, atk, data); !reflect.DeepEqual(got, want) {
			t.Errorf("session %03d: per-packet feed diverged from InferPcap", p.Index+1)
		}
		if got := feedChunks(t, atk, data, 1); !reflect.DeepEqual(got, want) {
			t.Errorf("session %03d: 1-byte feed diverged from InferPcap", p.Index+1)
		}
	}
}

// TestInterleavedDetectionRegression pins the interleaved scenario: with
// the interactive session mixed among 4 concurrent bulk-streaming noise
// flows, the monitor must detect the interactive flow, finalize on it,
// and decode the same decisions it recovers from the clean single-flow
// capture.
func TestInterleavedDetectionRegression(t *testing.T) {
	atk, err := TrainAttacker(TrainingOptions{Condition: ConditionUbuntu, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(1); seed <= 3; seed++ {
		tr, err := Simulate(SessionOptions{Seed: seed, Condition: ConditionUbuntu})
		if err != nil {
			t.Fatal(err)
		}
		clean, err := CapturePcap(tr, seed)
		if err != nil {
			t.Fatal(err)
		}
		cleanInf, err := atk.InferPcap(clean)
		if err != nil {
			t.Fatal(err)
		}
		multi, err := CapturePcapMulti(tr, seed, 4)
		if err != nil {
			t.Fatal(err)
		}

		var detectedInteractive bool
		var finalized *SessionFinalized
		m := NewMonitor(atk, MonitorOptions{OnEvent: func(ev MonitorEvent) {
			switch e := ev.(type) {
			case FlowDetected:
				if e.Flow.SrcPort == 51732 {
					detectedInteractive = true
				}
			case SessionFinalized:
				finalized = &e
			}
		}})
		const chunk = 128 << 10
		for off := 0; off < len(multi); off += chunk {
			end := off + chunk
			if end > len(multi) {
				end = len(multi)
			}
			if err := m.Feed(multi[off:end]); err != nil {
				t.Fatal(err)
			}
		}
		inf, err := m.Close()
		if err != nil {
			t.Fatal(err)
		}
		if !detectedInteractive {
			t.Errorf("seed %d: interactive flow never detected among noise", seed)
		}
		if finalized == nil || finalized.Flow.SrcPort != 51732 {
			t.Fatalf("seed %d: finalized on %v, want the interactive flow", seed, finalized)
		}
		if !reflect.DeepEqual(inf.Decisions, cleanInf.Decisions) {
			t.Errorf("seed %d: interleaved decode %v differs from clean decode %v",
				seed, inf.Decisions, cleanInf.Decisions)
		}
		// The one-shot wrapper (no event callback, so candidate flows are
		// classified lazily at Close) must find the interactive flow too.
		oneShot, err := atk.InferPcap(multi)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(oneShot.Decisions, cleanInf.Decisions) {
			t.Errorf("seed %d: one-shot interleaved decode %v differs from clean decode %v",
				seed, oneShot.Decisions, cleanInf.Decisions)
		}
	}
}
